// Command lpsim replays an allocation trace through one of the allocator
// simulators — first-fit (Knuth), best-fit, BSD, or the lifetime-predicting
// arena allocator — and reports heap size, arena occupancy, and modeled
// instruction costs. Giving a site database (-sites, from lpprof) enables
// lifetime prediction; training and trace may come from different inputs,
// which is the paper's true prediction. With -obs the run is observed:
// counters, search-length histograms, a live/heap timeline, and structured
// replay events are exported as JSON for cmd/lpstats.
//
// Usage:
//
//	lpgen -program gawk -input train -o train.trc
//	lpgen -program gawk -input test  -o test.trc
//	lpprof -trace train.trc -o sites.json
//	lpsim -trace test.trc -alloc arena -sites sites.json
//	lpsim -trace test.trc -alloc arena -sites sites.json -obs metrics.json
//	lpstats -metrics metrics.json
//
// The trace streams through the replay, so it can also arrive on stdin
// with no intermediate file, at constant memory:
//
//	lpgen -program gawk -input test -o - | lpsim -trace - -alloc arena
package main

import (
	"fmt"
	"io"
	"os"

	"flag"

	lifetime "repro"
	"repro/internal/cliutil"
	"repro/internal/obs"
	"repro/internal/profile"
)

const name = "lpsim"

func main() {
	tracePath := flag.String("trace", "", "input trace file (binary format; - for stdin)")
	allocName := flag.String("alloc", "arena", "allocator: arena, firstfit, bestfit, bsd")
	sitesPath := flag.String("sites", "", "site database JSON (from lpprof); enables prediction")
	callsPerAlloc := flag.Float64("calls-per-alloc", 0, "function calls per allocation for the CCE cost column (0 = use the trace's metadata)")
	obsPath := flag.String("obs", "", "observe the run and write the metrics snapshot JSON here (- for stdout)")
	obsInterval := flag.Int64("obs-interval", 0, "timeline sampling cadence in bytes allocated (0 = default 64KB)")
	heapScan := flag.Bool("heapscan", false, "with -obs: walk the allocator's span layout at every timeline sample, decomposing fragmentation (heap.* families) and recording an address-space heatmap")
	heatmapBins := flag.Int("heatmap-bins", 0, "address-space heatmap column count (0 = default 32); needs -heapscan")
	startProfiles := cliutil.ProfileFlags(name)
	cliutil.Parse(name,
		"replay an allocation trace through an allocator simulator",
		"lpsim -trace test.trc -alloc arena -sites sites.json [-obs metrics.json]",
		"lpsim -trace test.trc -alloc firstfit -obs metrics.json -heapscan",
		"lpsim -trace test.trc -alloc arena -cpuprofile cpu.pprof")
	defer startProfiles()()

	if *tracePath == "" {
		cliutil.UsageError(name, "missing -trace")
	}
	// The trace streams through the replay: events decode one at a time
	// (from a file or a pipe), so `lpgen ... -o - | lpsim -trace -` runs
	// at constant memory regardless of trace length.
	var r io.Reader = os.Stdin
	if *tracePath != "-" {
		f, err := os.Open(*tracePath)
		if err != nil {
			cliutil.Fatal(name, err)
		}
		defer f.Close()
		r = f
	}
	src, err := lifetime.NewTraceReader(r)
	if err != nil {
		cliutil.Fatal(name, err)
	}

	var pred *lifetime.Predictor
	if *sitesPath != "" {
		sf, err := os.Open(*sitesPath)
		if err != nil {
			cliutil.Fatal(name, err)
		}
		pred, err = profile.ReadPredictor(sf)
		sf.Close()
		if err != nil {
			cliutil.Fatal(name, err)
		}
	}

	var alloc lifetime.Allocator
	switch *allocName {
	case "arena":
		alloc = lifetime.NewArenaAllocator()
	case "firstfit":
		alloc = lifetime.NewFirstFitAllocator()
	case "bestfit":
		alloc = lifetime.NewBestFitAllocator()
	case "bsd":
		alloc = lifetime.NewBSDAllocator()
	default:
		cliutil.UsageError(name, "unknown allocator %q (want arena, firstfit, bestfit, bsd)", *allocName)
	}

	var col *lifetime.ObsCollector
	if *obsPath != "" {
		// The program name comes from the stream header, available
		// before the first event.
		col = lifetime.NewObsCollector(lifetime.ObsOptions{
			Label:            src.Meta().Program + "/" + *allocName,
			TimelineInterval: *obsInterval,
			HeapScan:         *heapScan,
			HeatmapBins:      *heatmapBins,
		})
	}

	res, err := lifetime.SimulateSource(src, alloc, pred, col)
	if err != nil {
		cliutil.Fatal(name, err)
	}
	meta := src.Meta() // trailer totals are final after the replay

	// With -obs -, stdout carries the JSON snapshot; the human-readable
	// summary moves to stderr so the stream stays pipeable into lpstats.
	out := io.Writer(os.Stdout)
	if *obsPath == "-" {
		out = os.Stderr
	}
	fmt.Fprintf(out, "program:        %s (%s input)\n", meta.Program, meta.Input)
	fmt.Fprintf(out, "allocator:      %s\n", *allocName)
	fmt.Fprintf(out, "allocations:    %d (%d bytes)\n", res.TotalAllocs, res.TotalBytes)
	fmt.Fprintf(out, "max heap:       %d bytes (%d KB)\n", res.MaxHeap, res.MaxHeap>>10)
	if *allocName == "arena" {
		fmt.Fprintf(out, "arena allocs:   %.1f%%\n", res.ArenaAllocPct)
		fmt.Fprintf(out, "arena bytes:    %.1f%%\n", res.ArenaBytePct)
		fmt.Fprintf(out, "pinned arenas:  %d\n", res.PinnedArenas)
		fmt.Fprintf(out, "fallbacks:      %d\n", res.Counts.ArenaFallbacks)
	}

	params := lifetime.DefaultCostParams()
	var cost lifetime.PerOpCost
	switch *allocName {
	case "bsd":
		cost = lifetime.CostBSD(res.Counts, params)
	case "firstfit", "bestfit":
		cost = lifetime.CostFirstFit(res.Counts, params)
	case "arena":
		cost = lifetime.CostArenaLen4(res.Counts, params)
		cpa := *callsPerAlloc
		if cpa == 0 && res.TotalAllocs > 0 {
			cpa = float64(meta.FunctionCalls) / float64(res.TotalAllocs)
		}
		cce := lifetime.CostArenaCCE(res.Counts, params, cpa)
		fmt.Fprintf(out, "instr/op (cce): alloc %.1f, free %.1f, a+f %.1f\n",
			cce.Alloc, cce.Free, cce.Total())
	}
	fmt.Fprintf(out, "instr/op:       alloc %.1f, free %.1f, a+f %.1f\n",
		cost.Alloc, cost.Free, cost.Total())

	if *obsPath != "" {
		if err := writeObs(*obsPath, res.Obs); err != nil {
			cliutil.Fatal(name, err)
		}
		if *obsPath != "-" {
			fmt.Printf("metrics:        %s (render with lpstats -metrics %s)\n", *obsPath, *obsPath)
		}
	}
}

func writeObs(path string, snap *obs.Snapshot) error {
	if snap == nil {
		return fmt.Errorf("no observability snapshot was produced")
	}
	if path == "-" {
		return obs.WriteJSON(os.Stdout, snap)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := obs.WriteJSON(f, snap); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
