// Command lpsim replays an allocation trace through one of the allocator
// simulators — first-fit (Knuth), BSD, or the lifetime-predicting arena
// allocator — and reports heap size, arena occupancy, and modeled
// instruction costs. Giving a site database (-sites, from lpprof) enables
// lifetime prediction; training and trace may come from different inputs,
// which is the paper's true prediction.
//
// Usage:
//
//	lpgen -program gawk -input train -o train.trc
//	lpgen -program gawk -input test  -o test.trc
//	lpprof -trace train.trc -o sites.json
//	lpsim -trace test.trc -alloc arena -sites sites.json
//	lpsim -trace test.trc -alloc firstfit
package main

import (
	"flag"
	"fmt"
	"os"

	lifetime "repro"
	"repro/internal/profile"
)

func main() {
	tracePath := flag.String("trace", "", "input trace file (binary format)")
	allocName := flag.String("alloc", "arena", "allocator: arena, firstfit, bsd")
	sitesPath := flag.String("sites", "", "site database JSON (from lpprof); enables prediction")
	callsPerAlloc := flag.Float64("calls-per-alloc", 0, "function calls per allocation for the CCE cost column (0 = use the trace's metadata)")
	flag.Parse()

	if *tracePath == "" {
		fatal(fmt.Errorf("missing -trace"))
	}
	f, err := os.Open(*tracePath)
	if err != nil {
		fatal(err)
	}
	tr, err := lifetime.ReadTrace(f)
	f.Close()
	if err != nil {
		fatal(err)
	}

	var pred *lifetime.Predictor
	if *sitesPath != "" {
		sf, err := os.Open(*sitesPath)
		if err != nil {
			fatal(err)
		}
		pred, err = profile.ReadPredictor(sf)
		sf.Close()
		if err != nil {
			fatal(err)
		}
	}

	var alloc lifetime.Allocator
	switch *allocName {
	case "arena":
		alloc = lifetime.NewArenaAllocator()
	case "firstfit":
		alloc = lifetime.NewFirstFitAllocator()
	case "bsd":
		alloc = lifetime.NewBSDAllocator()
	default:
		fatal(fmt.Errorf("unknown allocator %q (want arena, firstfit, bsd)", *allocName))
	}

	res, err := lifetime.Simulate(tr, alloc, pred)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("program:        %s (%s input)\n", tr.Program, tr.Input)
	fmt.Printf("allocator:      %s\n", *allocName)
	fmt.Printf("allocations:    %d (%d bytes)\n", res.TotalAllocs, res.TotalBytes)
	fmt.Printf("max heap:       %d bytes (%d KB)\n", res.MaxHeap, res.MaxHeap>>10)
	if *allocName == "arena" {
		fmt.Printf("arena allocs:   %.1f%%\n", res.ArenaAllocPct)
		fmt.Printf("arena bytes:    %.1f%%\n", res.ArenaBytePct)
		fmt.Printf("pinned arenas:  %d\n", res.PinnedArenas)
		fmt.Printf("fallbacks:      %d\n", res.Counts.ArenaFallbacks)
	}

	params := lifetime.DefaultCostParams()
	var cost lifetime.PerOpCost
	switch *allocName {
	case "bsd":
		cost = lifetime.CostBSD(res.Counts, params)
	case "firstfit":
		cost = lifetime.CostFirstFit(res.Counts, params)
	case "arena":
		cost = lifetime.CostArenaLen4(res.Counts, params)
		cpa := *callsPerAlloc
		if cpa == 0 && res.TotalAllocs > 0 {
			cpa = float64(tr.FunctionCalls) / float64(res.TotalAllocs)
		}
		cce := lifetime.CostArenaCCE(res.Counts, params, cpa)
		fmt.Printf("instr/op (cce): alloc %.1f, free %.1f, a+f %.1f\n",
			cce.Alloc, cce.Free, cce.Total())
	}
	fmt.Printf("instr/op:       alloc %.1f, free %.1f, a+f %.1f\n",
		cost.Alloc, cost.Free, cost.Total())
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "lpsim: %v\n", err)
	os.Exit(1)
}
