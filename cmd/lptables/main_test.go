// Golden-file and CLI-contract tests for lptables. The goldens pin the
// exact report bytes at scale 0.02, seed 1993 — the determinism the
// engine guarantees at any worker count. Regenerate after an intentional
// output change with:
//
//	go test ./cmd/lptables -run TestGolden -update
//
// and review the diff like any other code change.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
)

var update = flag.Bool("update", false, "rewrite the golden files from the current engine output")

const (
	goldenScale = 0.02
	goldenSeed  = 1993
)

// One engine shared by the golden tests: the -tables A run reuses the
// full run's cached artifacts instead of rebuilding every trace.
var (
	engOnce sync.Once
	eng     *core.Engine
)

func goldenEngine() *core.Engine {
	engOnce.Do(func() {
		cfg := core.DefaultConfig(goldenScale)
		cfg.SeedBase = goldenSeed
		eng = core.NewEngine(cfg)
	})
	return eng
}

// render reproduces lptables stdout for the given table spec: the header
// lines followed by the engine's report.
func render(t *testing.T, tables string, workers int) []byte {
	t.Helper()
	want, err := core.ParseTables(tables)
	if err != nil {
		t.Fatal(err)
	}
	res, err := goldenEngine().Run(core.Spec{Tables: want, Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	fmt.Fprintf(&b, "lifetime-prediction reproduction; scale=%g seed=%d\n(paper values in parentheses)\n\n",
		goldenScale, goldenSeed)
	b.Write(res.Output)
	return b.Bytes()
}

func checkGolden(t *testing.T, path string, got []byte) {
	t.Helper()
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if bytes.Equal(want, got) {
		return
	}
	// Point at the first differing line so a drift is diagnosable
	// without a byte-offset hunt.
	wl, gl := strings.Split(string(want), "\n"), strings.Split(string(got), "\n")
	for i := 0; i < len(wl) || i < len(gl); i++ {
		w, g := "", ""
		if i < len(wl) {
			w = wl[i]
		}
		if i < len(gl) {
			g = gl[i]
		}
		if w != g {
			t.Fatalf("%s: first difference at line %d:\n golden: %q\n    got: %q\n(rerun with -update if the change is intentional)",
				filepath.Base(path), i+1, w, g)
		}
	}
	t.Fatalf("%s: outputs differ in length only: golden %d bytes, got %d", filepath.Base(path), len(want), len(got))
}

func TestGoldenFullReport(t *testing.T) {
	if testing.Short() {
		t.Skip("golden run is seconds-long; skipped in -short")
	}
	got := render(t, strings.Join(core.TableFlags, ","), 4)
	checkGolden(t, filepath.Join("testdata", "golden-scale0.02-seed1993.txt"), got)
}

func TestGoldenAblationsOnly(t *testing.T) {
	if testing.Short() {
		t.Skip("golden run is seconds-long; skipped in -short")
	}
	got := render(t, "A", 4)
	checkGolden(t, filepath.Join("testdata", "golden-scale0.02-seed1993-tablesA.txt"), got)
}

// renderTournament reproduces lptables -tournament stdout: the header
// lines followed by the ranked report. The gate is exercised separately
// (it writes nothing to stdout), so the golden pins the report bytes
// alone.
func renderTournament(t *testing.T, workers int) []byte {
	t.Helper()
	res, err := goldenEngine().RunTournament(core.TournamentSpec{Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	fmt.Fprintf(&b, "lifetime-prediction tournament; scale=%g seed=%d\n%d policies x %d allocators, conformance-gated\n\n",
		goldenScale, goldenSeed, len(core.PolicyNames()), len(core.TournamentAllocators))
	b.Write(res.Output)
	return b.Bytes()
}

func TestGoldenTournament(t *testing.T) {
	if testing.Short() {
		t.Skip("golden run is seconds-long; skipped in -short")
	}
	got := renderTournament(t, 4)
	checkGolden(t, filepath.Join("testdata", "golden-tournament-scale0.02-seed1993.txt"), got)
}

// TestGoldenTournamentWorkerInvariance: the tournament report the golden
// pinned is byte-identical when rendered serially.
func TestGoldenTournamentWorkerInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("golden run is seconds-long; skipped in -short")
	}
	if !bytes.Equal(renderTournament(t, 1), renderTournament(t, 4)) {
		t.Fatal("workers=1 and workers=4 rendered different tournament bytes")
	}
}

// TestGoldenWorkerInvariance re-renders a slice of the report serially
// and checks it against the workers=4 bytes that the goldens pinned —
// the user-visible face of the engine's determinism guarantee.
func TestGoldenWorkerInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("golden run is seconds-long; skipped in -short")
	}
	if !bytes.Equal(render(t, "A", 1), render(t, "A", 4)) {
		t.Fatal("workers=1 and workers=4 rendered different bytes")
	}
}

// --- CLI contract (exec-based): bad flags exit 2 with a usage pointer ---

var (
	binOnce sync.Once
	binPath string
	binErr  error
)

func lptablesBin(t *testing.T) string {
	t.Helper()
	binOnce.Do(func() {
		dir, err := os.MkdirTemp("", "lptables-bin")
		if err != nil {
			binErr = err
			return
		}
		binPath = filepath.Join(dir, "lptables")
		if out, err := exec.Command("go", "build", "-o", binPath, "repro/cmd/lptables").CombinedOutput(); err != nil {
			binErr = fmt.Errorf("go build: %v\n%s", err, out)
		}
	})
	if binErr != nil {
		t.Fatal(binErr)
	}
	return binPath
}

func runLptables(t *testing.T, args ...string) (stdout, stderr string, code int) {
	t.Helper()
	cmd := exec.Command(lptablesBin(t), args...)
	var out, errb bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &errb
	err := cmd.Run()
	if err != nil {
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("lptables %v: %v", args, err)
		}
		code = ee.ExitCode()
	}
	return out.String(), errb.String(), code
}

func TestUsageErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
		msg  string
	}{
		{"bad tables letter", []string{"-scale", "0.01", "-tables", "2,Q"}, `unknown table "Q"`},
		{"unknown program", []string{"-scale", "0.01", "-programs", "netscape"}, `unknown program "netscape"`},
		{"zero workers", []string{"-scale", "0.01", "-workers", "0"}, "-workers must be at least 1"},
		{"negative workers", []string{"-scale", "0.01", "-workers", "-2"}, "-workers must be at least 1"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			stdout, stderr, code := runLptables(t, tc.args...)
			if code != 2 {
				t.Fatalf("exit code = %d, want 2 (stderr: %s)", code, stderr)
			}
			if !strings.Contains(stderr, tc.msg) {
				t.Errorf("stderr missing %q:\n%s", tc.msg, stderr)
			}
			if !strings.Contains(stderr, "run lptables -help for usage") {
				t.Errorf("stderr missing usage pointer:\n%s", stderr)
			}
			if stdout != "" {
				t.Errorf("usage error wrote to stdout: %q", stdout)
			}
		})
	}
}

// TestUsageEnumeratesPrograms: -help must list every valid program name
// so an unknown -programs value is recoverable without reading source.
func TestUsageEnumeratesPrograms(t *testing.T) {
	_, stderr, code := runLptables(t, "-help")
	if code != 0 {
		t.Fatalf("-help exit code = %d, want 0", code)
	}
	for _, p := range core.ProgramOrder {
		if !strings.Contains(stderr, p) {
			t.Errorf("-help output missing program %q:\n%s", p, stderr)
		}
	}
}

// TestTournamentFlagRunsGateAndReport execs the real binary in
// -tournament mode on one small program: the conformance gate must
// announce itself on stderr and the ranked report must land on stdout.
func TestTournamentFlagRunsGateAndReport(t *testing.T) {
	if testing.Short() {
		t.Skip("exec run is seconds-long; skipped in -short")
	}
	stdout, stderr, code := runLptables(t,
		"-scale", "0.005", "-programs", "cfrac", "-tournament")
	if code != 0 {
		t.Fatalf("exit code = %d, stderr: %s", code, stderr)
	}
	if !strings.Contains(stderr, "conformance gate passed") {
		t.Errorf("stderr missing gate confirmation:\n%s", stderr)
	}
	if !strings.Contains(stdout, "lifetime-prediction tournament") ||
		!strings.Contains(stdout, "Tournament: policy x allocator ranking") {
		t.Errorf("stdout missing tournament report:\n%s", stdout)
	}
	for _, name := range core.TournamentAllocators {
		if !strings.Contains(stdout, name) {
			t.Errorf("report missing allocator %s", name)
		}
	}
	for _, name := range core.PolicyNames() {
		if !strings.Contains(stdout, name) {
			t.Errorf("report missing policy %s", name)
		}
	}
}

// TestTournamentUnknownProgramExitsTwo: the tournament path shares the
// usage-error contract, naming every valid program.
func TestTournamentUnknownProgramExitsTwo(t *testing.T) {
	stdout, stderr, code := runLptables(t,
		"-scale", "0.005", "-tournament", "-programs", "netscape")
	if code != 2 {
		t.Fatalf("exit code = %d, want 2 (stderr: %s)", code, stderr)
	}
	if !strings.Contains(stderr, `unknown program "netscape"`) {
		t.Errorf("stderr missing unknown-program message:\n%s", stderr)
	}
	for _, p := range core.ProgramOrder {
		if !strings.Contains(stderr, p) {
			t.Errorf("stderr missing valid program %q:\n%s", p, stderr)
		}
	}
	if stdout != "" {
		t.Errorf("usage error wrote to stdout: %q", stdout)
	}
}

func TestTimingsFlagWritesStderrOnly(t *testing.T) {
	if testing.Short() {
		t.Skip("exec run is seconds-long; skipped in -short")
	}
	stdout, stderr, code := runLptables(t,
		"-scale", "0.005", "-tables", "1", "-programs", "cfrac", "-timings")
	if code != 0 {
		t.Fatalf("exit code = %d, stderr: %s", code, stderr)
	}
	if !strings.Contains(stderr, "per-cell wall clock") || !strings.Contains(stderr, "overlap") {
		t.Errorf("stderr missing timing summary:\n%s", stderr)
	}
	if strings.Contains(stdout, "wall clock") {
		t.Error("timing summary leaked into stdout")
	}
	if !strings.Contains(stdout, "Table 1:") {
		t.Errorf("report missing from stdout:\n%s", stdout)
	}
}

func TestTraceFlagWritesChromeTrace(t *testing.T) {
	if testing.Short() {
		t.Skip("exec run is seconds-long; skipped in -short")
	}
	out := filepath.Join(t.TempDir(), "trace.json")
	stdout, stderr, code := runLptables(t,
		"-scale", "0.005", "-tables", "1", "-programs", "cfrac", "-trace", out)
	if code != 0 {
		t.Fatalf("exit code = %d, stderr: %s", code, stderr)
	}
	if !strings.Contains(stdout, "Table 1:") {
		t.Errorf("report missing from stdout:\n%s", stdout)
	}
	if !strings.Contains(stderr, "trace events") {
		t.Errorf("stderr missing trace confirmation:\n%s", stderr)
	}
	data, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			Tid  int    `json:"tid"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatalf("trace file is not JSON: %v", err)
	}
	// One build plus one Table 1 cell for the single program.
	if len(doc.TraceEvents) != 2 || doc.DisplayTimeUnit != "ms" {
		t.Fatalf("trace doc = %d events, unit %q", len(doc.TraceEvents), doc.DisplayTimeUnit)
	}
	names := map[string]bool{}
	for _, e := range doc.TraceEvents {
		names[e.Name] = true
		if e.Ph != "X" {
			t.Errorf("%s: ph = %q, want X", e.Name, e.Ph)
		}
	}
	if !names["cfrac/build"] || !names["cfrac/1"] {
		t.Errorf("trace events = %v, want cfrac/build and cfrac/1", names)
	}
}
