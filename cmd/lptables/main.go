// Command lptables regenerates every table of Barrett & Zorn's PLDI 1993
// lifetime-prediction paper from the synthetic workload models and the
// allocator simulators, printing measured values next to the paper's
// published ones.
//
// Usage:
//
//	lptables [-scale 0.25] [-seed 1993] [-tables 2,3,4,5,6,7,8,9]
//	         [-programs cfrac,perl] [-workers N] [-timings] [-tournament]
//
// Scale 1.0 reproduces the paper-scale traces (millions of objects);
// smaller scales run proportionally faster. Prediction percentages are
// essentially scale-invariant; live-heap figures are calibrated at 1.0.
//
// The run is scheduled as a DAG by core.Engine: each program's trace
// build fans out first, then every requested table computation for that
// program runs as soon as its build lands, all on a -workers pool. The
// printed report is byte-identical at any worker count; -timings adds a
// per-cell wall-clock summary on stderr.
//
// -tournament switches to the predictor-and-allocator shoot-out: every
// registered prediction policy (internal/profile's zoo) crossed with
// every simulated allocator, each cell scored for fragmentation,
// prediction accuracy, and misprediction cost, then ranked. The run is
// conformance-gated: internal/check's oracle-driven differential suite
// must pass for every policy and allocator first.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"repro/internal/check"
	"repro/internal/cliutil"
	"repro/internal/core"
)

const name = "lptables"

func main() {
	scale := flag.Float64("scale", 0.25, "trace scale relative to the paper's runs")
	seed := flag.Uint64("seed", 1993, "base RNG seed")
	tables := flag.String("tables", strings.Join(core.TableFlags, ","), "comma-separated tables to produce (L = locality extension, A = ablations)")
	programs := flag.String("programs", "",
		fmt.Sprintf("comma-separated subset of programs to run (valid: %s; default all)",
			strings.Join(core.ProgramOrder, ",")))
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "max concurrent builds/table cells")
	timings := flag.Bool("timings", false, "print per-cell wall-clock summary to stderr")
	tracePath := flag.String("trace", "", "write the engine schedule as Chrome trace_event JSON (load in Perfetto or chrome://tracing)")
	tournament := flag.Bool("tournament", false,
		fmt.Sprintf("run the predictor x allocator tournament (%s x %s) instead of the paper tables",
			strings.Join(core.PolicyNames(), ","), strings.Join(core.TournamentAllocators, ",")))
	cliutil.Parse(name,
		"regenerate the paper's tables from the models and simulators",
		"lptables -scale 0.25 -seed 1993 -tables 2,7,8 -workers 4",
		"lptables -scale 0.02 -trace schedule.json",
		"lptables -scale 0.02 -tournament")

	want, err := core.ParseTables(*tables)
	if err != nil {
		cliutil.UsageError(name, "%v", err)
	}
	if *workers < 1 {
		cliutil.UsageError(name, "-workers must be at least 1 (got %d)", *workers)
	}
	var progList []string
	if s := strings.TrimSpace(*programs); s != "" {
		progList = strings.Split(s, ",")
	}

	cfg := core.DefaultConfig(*scale)
	cfg.SeedBase = *seed
	eng := core.NewEngine(cfg)

	if *tournament {
		runTournament(eng, *scale, *seed, progList, *workers)
		return
	}

	res, err := eng.Run(core.Spec{
		Tables:   want,
		Programs: progList,
		Workers:  *workers,
		Progress: func(msg string) { fmt.Fprintln(os.Stderr, msg) },
	})
	if err != nil {
		if strings.Contains(err.Error(), "unknown program") {
			cliutil.UsageError(name, "%v", err)
		}
		fatal(err)
	}

	if _, err := fmt.Printf("lifetime-prediction reproduction; scale=%g seed=%d\n(paper values in parentheses)\n\n", *scale, *seed); err != nil {
		fatal(err)
	}
	if _, err := os.Stdout.Write(res.Output); err != nil {
		fatal(err)
	}

	if *timings {
		var b bytes.Buffer
		res.WriteTimings(&b)
		fmt.Fprint(os.Stderr, b.String())
	}

	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fatal(err)
		}
		if err := res.WriteChromeTrace(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "%s: wrote %d trace events to %s\n", name, len(res.Timings), *tracePath)
	}
}

// runTournament executes the -tournament mode: every zoo predictor
// crossed with every simulated allocator, ranked. Before any cell runs,
// the conformance gate replays internal/check's differential suite with
// every policy's hints driving every allocator — a policy or allocator
// that cannot pass the oracle-gated property harness never gets scored.
func runTournament(eng *core.Engine, scale float64, seed uint64, progList []string, workers int) {
	res, err := eng.RunTournament(core.TournamentSpec{
		Programs: progList,
		Workers:  workers,
		Gate:     tournamentGate(seed),
		Progress: func(msg string) { fmt.Fprintln(os.Stderr, msg) },
	})
	if err != nil {
		if strings.Contains(err.Error(), "unknown program") {
			cliutil.UsageError(name, "%v", err)
		}
		fatal(err)
	}
	if _, err := fmt.Printf("lifetime-prediction tournament; scale=%g seed=%d\n%d policies x %d allocators, conformance-gated\n\n",
		scale, seed, len(core.PolicyNames()), len(core.TournamentAllocators)); err != nil {
		fatal(err)
	}
	if _, err := os.Stdout.Write(res.Output); err != nil {
		fatal(err)
	}
}

// tournamentGate returns the conformance hook: a short property run over
// generated traces in which every zoo policy's verdicts drive every
// checkable allocator through the differential suite, with ddmin shrink
// on failure. Seeded from -seed so a gate failure reproduces exactly.
func tournamentGate(seed uint64) func() error {
	return func() error {
		fs, err := check.Factories()
		if err != nil {
			return err
		}
		return check.RunOracles(seed, 3, check.GenConfig{}, fs, check.Options{Stride: 16}, nil)
	}
}

func fatal(err error) {
	cliutil.Fatal(name, err)
}
