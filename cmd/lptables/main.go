// Command lptables regenerates every table of Barrett & Zorn's PLDI 1993
// lifetime-prediction paper from the synthetic workload models and the
// allocator simulators, printing measured values next to the paper's
// published ones.
//
// Usage:
//
//	lptables [-scale 0.25] [-seed 1993] [-tables 2,3,4,5,6,7,8,9]
//
// Scale 1.0 reproduces the paper-scale traces (millions of objects);
// smaller scales run proportionally faster. Prediction percentages are
// essentially scale-invariant; live-heap figures are calibrated at 1.0.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/table"
)

const name = "lptables"

func main() {
	scale := flag.Float64("scale", 0.25, "trace scale relative to the paper's runs")
	seed := flag.Uint64("seed", 1993, "base RNG seed")
	tables := flag.String("tables", "1,2,3,4,5,6,7,8,9,L,A", "comma-separated tables to produce (L = locality extension, A = ablations)")
	cliutil.Parse(name,
		"regenerate the paper's tables from the models and simulators",
		"lptables -scale 0.25 -seed 1993 -tables 2,7,8")

	want := map[string]bool{}
	for _, t := range strings.Split(*tables, ",") {
		want[strings.TrimSpace(t)] = true
	}

	cfg := core.DefaultConfig(*scale)
	cfg.SeedBase = *seed

	fmt.Printf("lifetime-prediction reproduction; scale=%g seed=%d\n", *scale, *seed)
	fmt.Printf("(paper values in parentheses)\n\n")

	// Build artifacts per model once; render requested tables.
	t1 := table.New("Table 1: the test programs (model descriptions)",
		"Program", "Source lines", "Description")
	t2 := table.New("Table 2: allocation behaviour",
		"Program", "Bytes(M)", "Objects(M)", "MaxKB", "MaxObjs", "HeapRef%")
	t3 := table.New("Table 3: object lifetime quartiles (bytes, byte-weighted)",
		"Program", "min", "25%", "50%", "75%", "max")
	t4 := table.New("Table 4: prediction from allocation site and size",
		"Program", "Sites", "Actual%", "SelfUsed", "Self%", "SelfErr%", "TrueUsed", "True%", "TrueErr%")
	t5 := table.New("Table 5: prediction from size only (self)",
		"Program", "Actual%", "Pred%", "SizesUsed")
	t6 := table.New("Table 6: call-chain length vs predicted short-lived % (self)",
		"Program", "len1", "len2", "len3", "len4", "len5", "len6", "len7", "complete")
	t6r := table.New("Table 6 (New Ref %): heap references to predicted-short objects",
		"Program", "len1", "len2", "len3", "len4", "len5", "len6", "len7", "complete")
	t7 := table.New("Table 7: arena occupancy under true prediction (16 x 4KB arenas)",
		"Program", "Allocs(K)", "Arena%", "NonArena%", "Bytes(KB)", "ArenaB%", "NonArenaB%")
	t8 := table.New("Table 8: maximum heap sizes (KB)",
		"Program", "FirstFit", "SelfArena", "Self/FF%", "TrueArena", "True/FF%")
	t9 := table.New("Table 9: instructions per operation (true prediction)",
		"Program", "BSD a", "BSD f", "FF a", "FF f", "Len4 a", "Len4 f", "CCE a", "CCE f")
	tl := table.New("Locality extension: 256KB 4-way cache, 256KB LRU resident set",
		"Program", "FF miss%", "Arena miss%", "FF fault%", "Arena fault%", "FF pages", "Arena pages")
	ta1 := table.New("Ablation: short-lived threshold (self prediction)",
		"Program", "8KB", "16KB", "32KB", "64KB", "128KB")
	ta2 := table.New("Ablation: admission fraction (self% / true-error%)",
		"Program", "1.00", "0.99", "0.95", "0.90")
	ta3 := table.New("Ablation: arena geometry at 64KB total (arena-alloc% / pinned)",
		"Program", "1x64KB", "4x16KB", "16x4KB", "64x1KB")
	ta4 := table.New("Ablation: free-list policy (max heap KB / probes per alloc)",
		"Program", "next-fit (A4')", "rover-on-free (K&R)", "best-fit")
	ta5 := table.New("Extension: call-chain-encryption predictor quality (self)",
		"Program", "exact%", "cce%", "collisions", "exact sites", "cce sites")
	ta6 := table.New("Extension: generational GC pretenuring (copied KB)",
		"Program", "baseline", "pretenured", "pretenured objs")
	ta7 := table.New("Extension: CUSTOMALLOC-style top-16-size allocator vs arena (max heap KB)",
		"Program", "fast-path%", "custom", "arena", "first-fit")
	ta8 := table.New("Extension: per-site arena pools vs shared arenas (true prediction)",
		"Program", "shared alloc%", "per-site alloc%", "shared KB", "per-site KB", "pinned pools")

	pct := func(measured, paper float64) string {
		return fmt.Sprintf("%.1f (%.1f)", measured, paper)
	}
	cnt := func(measured int, paper int) string {
		return fmt.Sprintf("%d (%d)", measured, paper)
	}
	kb := func(measured, paper int64) string {
		return fmt.Sprintf("%d (%d)", measured, paper)
	}

	for _, m := range cfg.Models {
		fmt.Fprintf(os.Stderr, "building %s...\n", m.Name)
		a, err := cfg.Build(m)
		if err != nil {
			fatal(err)
		}
		p2 := core.PaperTable2[m.Name]
		p3 := core.PaperTable3[m.Name]
		p4 := core.PaperTable4[m.Name]
		p5 := core.PaperTable5[m.Name]
		p6 := core.PaperTable6[m.Name]
		p7 := core.PaperTable7[m.Name]
		p8 := core.PaperTable8[m.Name]
		p9 := core.PaperTable9[m.Name]

		if want["1"] {
			t1.RowStrings(m.Name, fmt.Sprintf("%d", m.SourceLines), m.Description)
		}
		if want["2"] {
			row, err := cfg.Table2(a)
			if err != nil {
				fatal(err)
			}
			t2.RowStrings(m.Name,
				fmt.Sprintf("%.1f (%.1f)", float64(row.TotalBytes)/1e6, p2.TotalBytesM**scale),
				fmt.Sprintf("%.2f (%.2f)", float64(row.TotalObjects)/1e6, p2.TotalObjectsM**scale),
				kb(row.MaxBytes>>10, p2.MaxKB),
				kb(row.MaxObjects, p2.MaxObjects),
				pct(row.HeapRefPct, p2.HeapRefsPct))
		}
		if want["3"] {
			row := cfg.Table3(a)
			cells := []string{m.Name}
			for i := 0; i < 5; i++ {
				cells = append(cells, fmt.Sprintf("%.0f (%.0f)", row.Quartiles[i], p3[i]))
			}
			t3.RowStrings(cells...)
		}
		if want["4"] {
			row := cfg.Table4(a)
			t4.RowStrings(m.Name,
				cnt(row.TotalSites, p4.TotalSites),
				pct(row.ActualShortPct, p4.ActualShortPct),
				cnt(row.SelfSitesUsed, p4.SelfSitesUsed),
				pct(row.SelfPredPct, p4.SelfPredPct),
				pct(row.SelfErrorPct, p4.SelfErrorPct),
				cnt(row.TrueSitesUsed, p4.TrueSitesUsed),
				pct(row.TruePredPct, p4.TruePredPct),
				pct(row.TrueErrorPct, p4.TrueErrorPct))
		}
		if want["5"] {
			row := cfg.Table5(a)
			t5.RowStrings(m.Name,
				pct(row.ActualShortPct, p5.ActualShortPct),
				pct(row.PredPct, p5.PredPct),
				cnt(row.SitesUsed, p5.SitesUsed))
		}
		if want["6"] {
			row := cfg.Table6(a)
			cells := []string{m.Name}
			refs := []string{m.Name}
			for i := 0; i < 8; i++ {
				cells = append(cells, fmt.Sprintf("%.0f (%.0f)", row.PredPct[i], p6.PredPct[i]))
				refs = append(refs, fmt.Sprintf("%.0f (%.0f)", row.NewRef[i], p6.NewRef[i]))
			}
			t6.RowStrings(cells...)
			t6r.RowStrings(refs...)
		}
		if want["7"] {
			row, err := cfg.Table7(a)
			if err != nil {
				fatal(err)
			}
			t7.RowStrings(m.Name,
				fmt.Sprintf("%.1f (%.1f)", float64(row.TotalAllocs)/1e3, p7.TotalAllocsK**scale),
				pct(row.ArenaAllocPct, p7.ArenaAllocPct),
				pct(100-row.ArenaAllocPct, 100-p7.ArenaAllocPct),
				fmt.Sprintf("%d (%.0f)", row.TotalBytes>>10, float64(p7.TotalKB)**scale),
				pct(row.ArenaBytePct, p7.ArenaBytePct),
				pct(100-row.ArenaBytePct, 100-p7.ArenaBytePct))
		}
		if want["8"] {
			row, err := cfg.Table8(a)
			if err != nil {
				fatal(err)
			}
			t8.RowStrings(m.Name,
				kb(row.FirstFitKB, p8.FirstFitKB),
				kb(row.SelfArenaKB, p8.SelfArenaKB),
				pct(row.SelfRatioPct, p8.SelfRatioPct),
				kb(row.TrueArenaKB, p8.TrueArenaKB),
				pct(row.TrueRatioPct, p8.TrueRatioPct))
		}
		if want["9"] {
			row, err := cfg.Table9(a)
			if err != nil {
				fatal(err)
			}
			t9.RowStrings(m.Name,
				pct(row.BSD.Alloc, p9.BSDAlloc), pct(row.BSD.Free, p9.BSDFree),
				pct(row.FirstFit.Alloc, p9.FFAlloc), pct(row.FirstFit.Free, p9.FFFree),
				pct(row.Len4.Alloc, p9.Len4Alloc), pct(row.Len4.Free, p9.Len4Free),
				pct(row.CCE.Alloc, p9.CCEAlloc), pct(row.CCE.Free, p9.CCEFree))
		}
		if want["L"] {
			row, err := cfg.Locality(a)
			if err != nil {
				fatal(err)
			}
			tl.Row(m.Name,
				fmt.Sprintf("%.2f", row.FirstFitMissPct),
				fmt.Sprintf("%.2f", row.ArenaMissPct),
				fmt.Sprintf("%.3f", row.FirstFitFaultPct),
				fmt.Sprintf("%.3f", row.ArenaFaultPct),
				row.FirstFitPages, row.ArenaPages)
		}
		if want["A"] {
			th := cfg.ThresholdSweep(a, []int64{8, 16, 32, 64, 128})
			cells := []string{m.Name}
			for _, r := range th {
				cells = append(cells, fmt.Sprintf("%.1f", r.PredPct))
			}
			ta1.RowStrings(cells...)

			ad := cfg.AdmitSweep(a, []float64{1.0, 0.99, 0.95, 0.90})
			cells = []string{m.Name}
			for _, r := range ad {
				cells = append(cells, fmt.Sprintf("%.1f/%.2f", r.SelfPredPct, r.TrueErrorPct))
			}
			ta2.RowStrings(cells...)

			geo, err := cfg.ArenaGeometrySweep(a, [][2]int{{1, 64}, {4, 16}, {16, 4}, {64, 1}})
			if err != nil {
				fatal(err)
			}
			cells = []string{m.Name}
			for _, r := range geo {
				cells = append(cells, fmt.Sprintf("%.1f/%d", r.ArenaAllocPct, r.PinnedArenas))
			}
			ta3.RowStrings(cells...)

			fit, err := cfg.FitPolicySweep(a)
			if err != nil {
				fatal(err)
			}
			cells = []string{m.Name}
			for _, r := range fit {
				cells = append(cells, fmt.Sprintf("%d/%.1f", r.MaxHeapKB, r.ProbesPerOp))
			}
			ta4.RowStrings(cells...)

			cq := cfg.CCEQuality(a)
			ta5.RowStrings(m.Name,
				fmt.Sprintf("%.1f", cq.ExactPredPct),
				fmt.Sprintf("%.1f", cq.CCEPredPct),
				fmt.Sprintf("%d", cq.KeyCollisions),
				fmt.Sprintf("%d", cq.ExactSites),
				fmt.Sprintf("%d", cq.CCESites))

			gc, err := cfg.GCPretenuring(a)
			if err != nil {
				fatal(err)
			}
			ta6.RowStrings(m.Name,
				fmt.Sprintf("%d", gc.BaseCopiedKB),
				fmt.Sprintf("%d", gc.PreCopiedKB),
				fmt.Sprintf("%d", gc.Pretenured))

			cu, err := cfg.CustomAllocComparison(a)
			if err != nil {
				fatal(err)
			}
			ta7.RowStrings(m.Name,
				fmt.Sprintf("%.1f", cu.CustomFastPct),
				fmt.Sprintf("%d", cu.CustomHeapKB),
				fmt.Sprintf("%d", cu.ArenaHeapKB),
				fmt.Sprintf("%d", cu.FirstFitHeapKB))

			sa, err := cfg.SiteArenaComparison(a)
			if err != nil {
				fatal(err)
			}
			ta8.RowStrings(m.Name,
				fmt.Sprintf("%.1f", sa.SharedAllocPct),
				fmt.Sprintf("%.1f", sa.SitedAllocPct),
				fmt.Sprintf("%d", sa.SharedHeapKB),
				fmt.Sprintf("%d", sa.SitedHeapKB),
				fmt.Sprintf("%d", sa.PinnedPools))
		}
	}

	if want["1"] {
		t1.WriteTo(os.Stdout)
	}
	if want["2"] {
		t2.WriteTo(os.Stdout)
	}
	if want["3"] {
		t3.WriteTo(os.Stdout)
	}
	if want["4"] {
		t4.WriteTo(os.Stdout)
	}
	if want["5"] {
		t5.WriteTo(os.Stdout)
	}
	if want["6"] {
		t6.WriteTo(os.Stdout)
		t6r.WriteTo(os.Stdout)
	}
	if want["7"] {
		t7.WriteTo(os.Stdout)
	}
	if want["8"] {
		t8.WriteTo(os.Stdout)
	}
	if want["9"] {
		t9.WriteTo(os.Stdout)
	}
	if want["L"] {
		tl.WriteTo(os.Stdout)
	}
	if want["A"] {
		ta1.WriteTo(os.Stdout)
		ta2.WriteTo(os.Stdout)
		ta3.WriteTo(os.Stdout)
		ta4.WriteTo(os.Stdout)
		ta5.WriteTo(os.Stdout)
		ta6.WriteTo(os.Stdout)
		ta7.WriteTo(os.Stdout)
		ta8.WriteTo(os.Stdout)
	}
}

func fatal(err error) { cliutil.Fatal(name, err) }
