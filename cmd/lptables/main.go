// Command lptables regenerates every table of Barrett & Zorn's PLDI 1993
// lifetime-prediction paper from the synthetic workload models and the
// allocator simulators, printing measured values next to the paper's
// published ones.
//
// Usage:
//
//	lptables [-scale 0.25] [-seed 1993] [-tables 2,3,4,5,6,7,8,9]
//	         [-programs cfrac,perl] [-workers N] [-timings]
//
// Scale 1.0 reproduces the paper-scale traces (millions of objects);
// smaller scales run proportionally faster. Prediction percentages are
// essentially scale-invariant; live-heap figures are calibrated at 1.0.
//
// The run is scheduled as a DAG by core.Engine: each program's trace
// build fans out first, then every requested table computation for that
// program runs as soon as its build lands, all on a -workers pool. The
// printed report is byte-identical at any worker count; -timings adds a
// per-cell wall-clock summary on stderr.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"repro/internal/cliutil"
	"repro/internal/core"
)

const name = "lptables"

func main() {
	scale := flag.Float64("scale", 0.25, "trace scale relative to the paper's runs")
	seed := flag.Uint64("seed", 1993, "base RNG seed")
	tables := flag.String("tables", strings.Join(core.TableFlags, ","), "comma-separated tables to produce (L = locality extension, A = ablations)")
	programs := flag.String("programs", "", "comma-separated subset of programs to run (default all)")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "max concurrent builds/table cells")
	timings := flag.Bool("timings", false, "print per-cell wall-clock summary to stderr")
	tracePath := flag.String("trace", "", "write the engine schedule as Chrome trace_event JSON (load in Perfetto or chrome://tracing)")
	cliutil.Parse(name,
		"regenerate the paper's tables from the models and simulators",
		"lptables -scale 0.25 -seed 1993 -tables 2,7,8 -workers 4",
		"lptables -scale 0.02 -trace schedule.json")

	want, err := core.ParseTables(*tables)
	if err != nil {
		cliutil.UsageError(name, "%v", err)
	}
	if *workers < 1 {
		cliutil.UsageError(name, "-workers must be at least 1 (got %d)", *workers)
	}
	var progList []string
	if s := strings.TrimSpace(*programs); s != "" {
		progList = strings.Split(s, ",")
	}

	cfg := core.DefaultConfig(*scale)
	cfg.SeedBase = *seed
	eng := core.NewEngine(cfg)

	res, err := eng.Run(core.Spec{
		Tables:   want,
		Programs: progList,
		Workers:  *workers,
		Progress: func(msg string) { fmt.Fprintln(os.Stderr, msg) },
	})
	if err != nil {
		if strings.Contains(err.Error(), "unknown program") {
			cliutil.UsageError(name, "%v", err)
		}
		fatal(err)
	}

	if _, err := fmt.Printf("lifetime-prediction reproduction; scale=%g seed=%d\n(paper values in parentheses)\n\n", *scale, *seed); err != nil {
		fatal(err)
	}
	if _, err := os.Stdout.Write(res.Output); err != nil {
		fatal(err)
	}

	if *timings {
		var b bytes.Buffer
		res.WriteTimings(&b)
		fmt.Fprint(os.Stderr, b.String())
	}

	if *tracePath != "" {
		f, err := os.Create(*tracePath)
		if err != nil {
			fatal(err)
		}
		if err := res.WriteChromeTrace(f); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "%s: wrote %d trace events to %s\n", name, len(res.Timings), *tracePath)
	}
}

func fatal(err error) {
	cliutil.Fatal(name, err)
}
