package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/obs/expfmt"
)

// jobStatus is a simulation job's lifecycle state.
type jobStatus string

const (
	statusQueued  jobStatus = "queued"
	statusRunning jobStatus = "running"
	statusDone    jobStatus = "done"
	statusFailed  jobStatus = "failed"
)

// job is one submitted matrix cell. The collector is created at start
// and may be scraped (snapshotted) concurrently while the replay runs —
// that is the live half of /metrics.
type job struct {
	ID   int            `json:"id"`
	Spec core.MatrixJob `json:"spec"`

	mu     sync.Mutex
	status jobStatus
	errMsg string
	col    *obs.Collector
	snap   *obs.Snapshot // final snapshot once done
}

// jobView is the /jobs JSON shape.
type jobView struct {
	ID        int            `json:"id"`
	Spec      core.MatrixJob `json:"spec"`
	Status    jobStatus      `json:"status"`
	Error     string         `json:"error,omitempty"`
	Clock     int64          `json:"clock"` // live bytes-allocated clock
	SnapshotP string         `json:"snapshot"`
}

func (j *job) view() jobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	v := jobView{
		ID: j.ID, Spec: j.Spec, Status: j.status, Error: j.errMsg,
		SnapshotP: fmt.Sprintf("/snapshot/%d.json", j.ID),
	}
	v.Clock = j.col.Now() // nil-safe: 0 before start
	return v
}

// snapshot returns the freshest view of the job: the final snapshot when
// done, a live mid-replay snapshot while running, nil before start.
func (j *job) snapshot() *obs.Snapshot {
	j.mu.Lock()
	col, snap, spec := j.col, j.snap, j.Spec
	j.mu.Unlock()
	if snap != nil {
		return snap
	}
	if col == nil {
		return nil
	}
	s := col.Snapshot()
	// The replay tags program/allocator only at finish; a live scrape
	// labels itself from the job spec.
	s.Program, s.Allocator = spec.Model, spec.Allocator
	return s
}

func (j *job) setRunning(col *obs.Collector) {
	j.mu.Lock()
	j.status = statusRunning
	j.col = col
	j.mu.Unlock()
}

func (j *job) finish(snap *obs.Snapshot, err error) {
	j.mu.Lock()
	if err != nil {
		j.status = statusFailed
		j.errMsg = err.Error()
	} else {
		j.status = statusDone
		j.snap = snap
	}
	j.mu.Unlock()
}

// server owns the job queue, the worker pool, and the HTTP surface.
type server struct {
	runner  *core.MatrixRunner
	workers int
	busy    atomic.Int64 // workers currently inside a replay

	mu      sync.Mutex
	jobs    []*job
	closing bool

	queue chan *job
	wg    sync.WaitGroup

	broker *broker

	// drained is closed after the last worker exits, releasing SSE
	// clients before http.Server.Shutdown waits on their handlers.
	drained chan struct{}
}

// queueCap bounds the backlog; submissions beyond it are rejected with
// 503 rather than blocking the handler.
const queueCap = 1024

// newServer builds a server over one experiment config.
func newServer(cfg core.Config, workers int) *server {
	if workers < 1 {
		workers = 1
	}
	s := &server{
		runner:  core.NewMatrixRunner(cfg),
		workers: workers,
		queue:   make(chan *job, queueCap),
		broker:  newBroker(),
		drained: make(chan struct{}),
	}
	for i := 0; i < workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	go func() {
		s.wg.Wait()
		close(s.drained)
	}()
	return s
}

// submit validates and enqueues a job. The channel send happens under
// s.mu: the buffered send with default never blocks, and shutdown()
// only calls close(s.queue) after setting s.closing under the same
// lock, so a submission can never race the close and panic. The job is
// appended to s.jobs only once the send succeeds — a full queue leaves
// no phantom job behind in /jobs or /healthz.
func (s *server) submit(spec core.MatrixJob) (*job, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	s.mu.Lock()
	if s.closing {
		s.mu.Unlock()
		return nil, fmt.Errorf("lpserve: shutting down, not accepting jobs")
	}
	j := &job{ID: len(s.jobs) + 1, Spec: spec, status: statusQueued}
	select {
	case s.queue <- j:
		s.jobs = append(s.jobs, j)
	default:
		s.mu.Unlock()
		return nil, fmt.Errorf("lpserve: job queue is full (%d jobs)", queueCap)
	}
	s.mu.Unlock()
	s.broker.publishJob(j)
	return j, nil
}

// worker drains the queue, running one replay at a time with a live
// collector whose hooks feed the SSE broker.
func (s *server) worker() {
	defer s.wg.Done()
	for j := range s.queue {
		id := j.ID
		col := obs.NewCollector(obs.Options{
			Label:      j.Spec.String(),
			SampleHook: func(sm obs.Sample) { s.broker.publishSample(id, sm) },
			EventHook:  func(ev obs.Event) { s.broker.publishEvent(id, ev) },
			// Heap topology is always on for served jobs: a mid-replay
			// /metrics scrape shows the live lp_heap_* fragmentation
			// decomposition and heatmap alongside the counters.
			HeapScan: true,
		})
		j.setRunning(col)
		s.broker.publishJob(j)
		s.busy.Add(1)
		res, err := s.runner.Run(j.Spec, col)
		s.busy.Add(-1)
		j.finish(res.Obs, err)
		s.broker.publishJob(j)
	}
}

// shutdown stops accepting submissions, drains queued and in-flight
// jobs, and wakes every SSE client.
func (s *server) shutdown() {
	s.mu.Lock()
	if s.closing {
		s.mu.Unlock()
		<-s.drained
		return
	}
	s.closing = true
	s.mu.Unlock()
	close(s.queue)
	<-s.drained
	s.broker.closeAll()
}

// jobList copies the job slice under the lock.
func (s *server) jobList() []*job {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*job(nil), s.jobs...)
}

func (s *server) jobByID(id int) *job {
	s.mu.Lock()
	defer s.mu.Unlock()
	if id < 1 || id > len(s.jobs) {
		return nil
	}
	return s.jobs[id-1]
}

// routes builds the HTTP surface.
func (s *server) routes() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /jobs", s.handleJobs)
	mux.HandleFunc("POST /run", s.handleRun)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("GET /snapshot/{id}", s.handleSnapshot)
	mux.HandleFunc("GET /events", s.handleEvents)
	mux.HandleFunc("GET /debug/pprof/", pprof.Index)
	mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func (s *server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	counts := map[jobStatus]int{}
	for _, j := range s.jobList() {
		j.mu.Lock()
		counts[j.status]++
		j.mu.Unlock()
	}
	// Queue depth and busy workers let load tests see saturation: depth
	// near queue_cap means submissions will start bouncing with 503s, and
	// busy == total means no spare replay capacity.
	writeJSON(w, http.StatusOK, map[string]any{
		"status":  "ok",
		"version": cliutil.Version,
		"jobs": map[string]int{
			"queued":  counts[statusQueued],
			"running": counts[statusRunning],
			"done":    counts[statusDone],
			"failed":  counts[statusFailed],
		},
		"queue": map[string]int{
			"depth": len(s.queue),
			"cap":   queueCap,
		},
		"workers": map[string]int{
			"total": s.workers,
			"busy":  int(s.busy.Load()),
		},
	})
}

func (s *server) handleJobs(w http.ResponseWriter, r *http.Request) {
	jobs := s.jobList()
	views := make([]jobView, 0, len(jobs))
	for _, j := range jobs {
		views = append(views, j.view())
	}
	writeJSON(w, http.StatusOK, views)
}

// handleRun accepts {"model": ..., "allocator": ..., "predictor": ...}
// and enqueues the job.
func (s *server) handleRun(w http.ResponseWriter, r *http.Request) {
	var spec core.MatrixJob
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		writeJSON(w, http.StatusBadRequest, map[string]string{"error": err.Error()})
		return
	}
	if spec.Predictor == "" {
		spec.Predictor = "true"
	}
	j, err := s.submit(spec)
	if err != nil {
		code := http.StatusBadRequest
		if strings.Contains(err.Error(), "queue") || strings.Contains(err.Error(), "shutting down") {
			code = http.StatusServiceUnavailable
		}
		writeJSON(w, code, map[string]string{"error": err.Error()})
		return
	}
	writeJSON(w, http.StatusAccepted, j.view())
}

// handleMetrics renders every job's freshest snapshot — live mid-replay
// for running jobs — as one Prometheus exposition.
func (s *server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	sets := make([][]expfmt.Family, 0)
	for _, j := range s.jobList() {
		snap := j.snapshot()
		if snap == nil {
			continue
		}
		sets = append(sets, expfmt.Families(snap, map[string]string{
			"job": strconv.Itoa(j.ID),
		}))
	}
	fams, err := expfmt.Gather(sets...)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	expfmt.WriteFamilies(w, fams)
}

func (s *server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	idStr, ok := strings.CutSuffix(r.PathValue("id"), ".json")
	if !ok {
		http.Error(w, "want /snapshot/{id}.json", http.StatusNotFound)
		return
	}
	id, err := strconv.Atoi(idStr)
	if err != nil {
		http.Error(w, "bad job id", http.StatusNotFound)
		return
	}
	j := s.jobByID(id)
	if j == nil {
		http.Error(w, "no such job", http.StatusNotFound)
		return
	}
	snap := j.snapshot()
	if snap == nil {
		http.Error(w, "job has not started", http.StatusConflict)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	obs.WriteJSON(w, snap)
}

// heartbeatInterval is how often an idle /events stream emits an SSE
// comment so proxies do not reap the connection and clients can tell a
// quiet stream from a dead one. A variable so tests can shorten it.
var heartbeatInterval = 15 * time.Second

// handleEvents streams job transitions, timeline samples, and structured
// obs events as server-sent events until the client goes away or the
// server drains. Idle streams carry periodic heartbeat comments.
func (s *server) handleEvents(w http.ResponseWriter, r *http.Request) {
	fl, ok := w.(http.Flusher)
	if !ok {
		http.Error(w, "streaming unsupported", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)
	fmt.Fprintf(w, ": lpserve event stream\n\n")
	fl.Flush()

	sub := s.broker.subscribe()
	defer func() {
		// Best-effort: tell the client how many messages its slow
		// consumption cost it before the stream ends.
		if n := s.broker.unsubscribe(sub); n > 0 {
			fmt.Fprintf(w, ": dropped %d messages\n\n", n)
			fl.Flush()
		}
	}()
	heartbeat := time.NewTicker(heartbeatInterval)
	defer heartbeat.Stop()
	for {
		select {
		case msg, ok := <-sub.ch:
			if !ok {
				return
			}
			if _, err := w.Write(msg); err != nil {
				return
			}
			fl.Flush()
		case <-heartbeat.C:
			if _, err := io.WriteString(w, ": heartbeat\n\n"); err != nil {
				return
			}
			fl.Flush()
		case <-r.Context().Done():
			return
		case <-s.drained:
			return
		}
	}
}
