package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"

	"repro/internal/obs"
)

// broker fans live observability out to SSE subscribers. Publishers are
// the replay workers' collector hooks, which must never block: a slow
// subscriber's buffer fills and subsequent messages are dropped for it
// (counted, and reported by the /events handler as a final SSE comment
// when the stream closes).
type broker struct {
	mu     sync.Mutex
	subs   map[*subscriber]bool
	closed bool
}

type subscriber struct {
	ch      chan []byte
	dropped int64
}

// subBuffer is each subscriber's in-flight message window.
const subBuffer = 256

func newBroker() *broker {
	return &broker{subs: make(map[*subscriber]bool)}
}

func (b *broker) subscribe() *subscriber {
	sub := &subscriber{ch: make(chan []byte, subBuffer)}
	b.mu.Lock()
	if b.closed {
		close(sub.ch)
	} else {
		b.subs[sub] = true
	}
	b.mu.Unlock()
	return sub
}

// unsubscribe removes the subscriber and returns how many messages were
// dropped on it, so the stream handler can report the loss before the
// connection closes. Reading dropped under the lock is safe: once the
// subscriber is out of the map no publisher touches it again.
func (b *broker) unsubscribe(sub *subscriber) int64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.subs[sub] {
		delete(b.subs, sub)
		close(sub.ch)
	}
	return sub.dropped
}

// closeAll releases every subscriber (server drain).
func (b *broker) closeAll() {
	b.mu.Lock()
	b.closed = true
	for sub := range b.subs {
		delete(b.subs, sub)
		close(sub.ch)
	}
	b.mu.Unlock()
}

// publish formats one SSE frame and offers it to every subscriber.
func (b *broker) publish(event string, payload any) {
	data, err := json.Marshal(payload)
	if err != nil {
		return
	}
	var frame bytes.Buffer
	fmt.Fprintf(&frame, "event: %s\ndata: %s\n\n", event, data)
	msg := frame.Bytes()
	b.mu.Lock()
	for sub := range b.subs {
		select {
		case sub.ch <- msg:
		default:
			sub.dropped++
		}
	}
	b.mu.Unlock()
}

// publishJob announces a job lifecycle transition.
func (b *broker) publishJob(j *job) {
	b.publish("job", j.view())
}

// publishSample streams one timeline sample as it is recorded.
func (b *broker) publishSample(jobID int, s obs.Sample) {
	b.publish("sample", struct {
		Job int `json:"job"`
		obs.Sample
	}{jobID, s})
}

// publishEvent streams one structured replay event as it happens.
func (b *broker) publishEvent(jobID int, ev obs.Event) {
	b.publish("obs", struct {
		Job   int    `json:"job"`
		Kind  string `json:"kind"`
		Clock int64  `json:"clock"`
		Arg   int64  `json:"arg"`
	}{jobID, ev.Kind.String(), ev.Clock, ev.Arg})
}
