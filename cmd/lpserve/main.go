// Command lpserve is the live half of the observability stack: a
// long-running HTTP service that executes simulation jobs (model ×
// allocator × predictor cells) on a worker pool and exposes them while
// they run.
//
//	GET  /metrics            Prometheus text exposition of every job's
//	                         freshest snapshot — live mid-replay on the
//	                         bytes-allocated clock for running jobs
//	GET  /healthz            liveness + job counts (JSON)
//	GET  /jobs               job listing with status and clock (JSON)
//	POST /run                submit a job: {"model","allocator","predictor"}
//	GET  /snapshot/{id}.json the job's obs snapshot (live or final)
//	GET  /events             SSE stream of job transitions, timeline
//	                         samples, and structured obs events
//	GET  /debug/pprof/       the usual pprof surface
//
// SIGINT/SIGTERM drains: submissions are refused, queued and in-flight
// jobs run to completion, event streams close, then the listener stops.
//
// Usage:
//
//	lpserve -addr :8080 -matrix gawk,cfrac/arena -scale 0.05
//	curl -s localhost:8080/metrics | grep lp_arena_pinned
//	curl -s -XPOST localhost:8080/run -d '{"model":"perl","allocator":"bsd"}'
//	curl -N localhost:8080/events
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	"repro/internal/cliutil"
	"repro/internal/core"
)

const name = "lpserve"

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	matrixSpec := flag.String("matrix", "", "matrix spec to enqueue at startup (models/allocators/predictors, or all)")
	scale := flag.Float64("scale", 0.02, "trace scale relative to the paper's runs")
	seed := flag.Uint64("seed", 1993, "base RNG seed for trace generation")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent simulation workers")
	cliutil.Parse(name,
		"serve live simulation metrics over HTTP (Prometheus /metrics, SSE /events)",
		"lpserve -addr :8080 -matrix all -scale 0.05")

	cfg := core.DefaultConfig(*scale)
	cfg.SeedBase = *seed
	srv := newServer(cfg, *workers)

	if *matrixSpec != "" {
		jobs, err := core.ParseMatrix(*matrixSpec)
		if err != nil {
			cliutil.UsageError(name, "%v", err)
		}
		core.SortJobs(jobs)
		for _, spec := range jobs {
			if _, err := srv.submit(spec); err != nil {
				cliutil.Fatal(name, err)
			}
		}
		fmt.Fprintf(os.Stderr, "%s: enqueued %d matrix jobs\n", name, len(jobs))
	}

	httpSrv := &http.Server{Addr: *addr, Handler: srv.routes()}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	fmt.Fprintf(os.Stderr, "%s: listening on %s (scale %g, %d workers)\n", name, *addr, *scale, *workers)

	select {
	case err := <-errCh:
		cliutil.Fatal(name, err)
	case <-ctx.Done():
	}
	stop()
	fmt.Fprintf(os.Stderr, "%s: signal received, draining jobs...\n", name)
	srv.shutdown()
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil && !errors.Is(err, http.ErrServerClosed) {
		cliutil.Fatal(name, err)
	}
	fmt.Fprintf(os.Stderr, "%s: drained, bye\n", name)
}
