package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/obs/expfmt"
)

func testServer(t *testing.T) (*server, *httptest.Server) {
	t.Helper()
	srv := newServer(core.DefaultConfig(0.02), 2)
	ts := httptest.NewServer(srv.routes())
	t.Cleanup(ts.Close)
	return srv, ts
}

// waitDone polls /jobs until every job has left the queue, failing the
// test on timeout.
func waitDone(t *testing.T, ts *httptest.Server) []jobView {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for {
		resp, err := http.Get(ts.URL + "/jobs")
		if err != nil {
			t.Fatalf("GET /jobs: %v", err)
		}
		var views []jobView
		err = json.NewDecoder(resp.Body).Decode(&views)
		resp.Body.Close()
		if err != nil {
			t.Fatalf("decode /jobs: %v", err)
		}
		settled := true
		for _, v := range views {
			if v.Status == statusQueued || v.Status == statusRunning {
				settled = false
			}
		}
		if settled {
			return views
		}
		if time.Now().After(deadline) {
			t.Fatalf("jobs did not settle: %+v", views)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func TestHealthz(t *testing.T) {
	_, ts := testServer(t)
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status = %d", resp.StatusCode)
	}
	var body struct {
		Status  string         `json:"status"`
		Jobs    map[string]int `json:"jobs"`
		Queue   map[string]int `json:"queue"`
		Workers map[string]int `json:"workers"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Status != "ok" {
		t.Errorf("status = %q, want ok", body.Status)
	}
	if body.Jobs["done"] != 0 || body.Jobs["queued"] != 0 {
		t.Errorf("fresh server has jobs: %v", body.Jobs)
	}
	// Saturation signals: queue depth/cap and busy/total workers.
	if body.Queue["depth"] != 0 || body.Queue["cap"] != queueCap {
		t.Errorf("queue = %v, want depth 0 cap %d", body.Queue, queueCap)
	}
	if body.Workers["total"] != 2 || body.Workers["busy"] != 0 {
		t.Errorf("workers = %v, want total 2 busy 0", body.Workers)
	}
}

func TestRunJobLifecycle(t *testing.T) {
	_, ts := testServer(t)

	resp, err := http.Post(ts.URL+"/run", "application/json",
		strings.NewReader(`{"model":"gawk","allocator":"arena"}`))
	if err != nil {
		t.Fatal(err)
	}
	var accepted jobView
	err = json.NewDecoder(resp.Body).Decode(&accepted)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST /run status = %d, want 202", resp.StatusCode)
	}
	if accepted.ID != 1 || accepted.Spec.Predictor != "true" {
		t.Errorf("accepted job = %+v, want id 1 with default predictor", accepted)
	}

	// Unknown model is a 400, not a queued failure.
	resp, err = http.Post(ts.URL+"/run", "application/json",
		strings.NewReader(`{"model":"doom","allocator":"arena"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad model status = %d, want 400", resp.StatusCode)
	}

	views := waitDone(t, ts)
	if len(views) != 1 || views[0].Status != statusDone {
		t.Fatalf("jobs after drain = %+v", views)
	}
	if views[0].Clock <= 0 {
		t.Errorf("done job clock = %d, want > 0", views[0].Clock)
	}
}

func TestMetricsRoundTripExact(t *testing.T) {
	_, ts := testServer(t)
	for _, body := range []string{
		`{"model":"gawk","allocator":"arena"}`,
		`{"model":"cfrac","allocator":"firstfit","predictor":"none"}`,
	} {
		resp, err := http.Post(ts.URL+"/run", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	waitDone(t, ts)

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("Content-Type = %q", ct)
	}
	var raw bytes.Buffer
	if _, err := raw.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	text := raw.String()
	for _, want := range []string{
		`lp_clock_bytes{allocator="arena",job="1",program="gawk"}`,
		`lp_clock_bytes{allocator="firstfit",job="2",program="cfrac"}`,
		"# TYPE lp_clock_bytes counter",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition is missing %q", want)
		}
	}
	if n := strings.Count(text, "# TYPE lp_clock_bytes counter"); n != 1 {
		t.Errorf("lp_clock_bytes TYPE line appears %d times, want 1 (Gather merge)", n)
	}

	// The exposition must survive a parse → re-render byte-exactly.
	fams, err := expfmt.Parse(bytes.NewReader(raw.Bytes()))
	if err != nil {
		t.Fatalf("Parse(/metrics): %v", err)
	}
	var rendered bytes.Buffer
	if err := expfmt.WriteFamilies(&rendered, fams); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(raw.Bytes(), rendered.Bytes()) {
		t.Error("/metrics does not round-trip byte-exactly through the parser")
	}
}

// TestMetricsLiveMidReplay scrapes while jobs are in flight: the
// exposition must stay parseable and every re-render byte-exact even as
// collectors advance under the scrape.
func TestMetricsLiveMidReplay(t *testing.T) {
	_, ts := testServer(t)
	for _, body := range []string{
		`{"model":"gawk","allocator":"arena"}`,
		`{"model":"gawk","allocator":"bestfit"}`,
		`{"model":"perl","allocator":"bsd"}`,
	} {
		resp, err := http.Post(ts.URL+"/run", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	sawLive := false
	for i := 0; i < 50; i++ {
		resp, err := http.Get(ts.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		var raw bytes.Buffer
		_, err = raw.ReadFrom(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		if raw.Len() == 0 {
			continue
		}
		fams, err := expfmt.Parse(bytes.NewReader(raw.Bytes()))
		if err != nil {
			t.Fatalf("scrape %d unparseable: %v", i, err)
		}
		var rendered bytes.Buffer
		if err := expfmt.WriteFamilies(&rendered, fams); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(raw.Bytes(), rendered.Bytes()) {
			t.Fatalf("scrape %d not byte-exact after re-render", i)
		}
		if strings.Contains(raw.String(), "lp_clock_bytes") {
			sawLive = true
		}
		// Served jobs always run with the heap scanner on, so any scrape
		// that sees a started job also sees the lp_heap_* topology
		// families (at minimum the always-on scan counter and heatmap
		// row/bin gauges) live, mid-replay.
		if strings.Contains(raw.String(), "lp_clock_bytes") &&
			!strings.Contains(raw.String(), "lp_heap_scan_samples") {
			t.Fatalf("scrape %d has a live job but no lp_heap_ families", i)
		}
	}
	if !sawLive {
		t.Error("no scrape observed a started job (all 50 raced ahead of the workers?)")
	}
	waitDone(t, ts)
}

func TestSnapshotEndpoint(t *testing.T) {
	_, ts := testServer(t)
	resp, err := http.Post(ts.URL+"/run", "application/json",
		strings.NewReader(`{"model":"gawk","allocator":"arena"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	waitDone(t, ts)

	resp, err = http.Get(ts.URL + "/snapshot/1.json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("snapshot status = %d", resp.StatusCode)
	}
	snap, err := obs.ReadJSON(resp.Body)
	if err != nil {
		t.Fatalf("snapshot does not decode: %v", err)
	}
	if snap.Schema != obs.SnapshotSchema || snap.Program != "gawk" || snap.Allocator != "arena" {
		t.Errorf("snapshot = schema %d program %q allocator %q", snap.Schema, snap.Program, snap.Allocator)
	}
	if snap.Clock <= 0 {
		t.Errorf("snapshot clock = %d, want > 0", snap.Clock)
	}
	// Served jobs run with the heap scanner on, so the downloadable
	// snapshot carries the full topology: lpstats renders its
	// fragmentation-decomposition table and heatmap from exactly this
	// file (it keys off heap.scan_samples and the heatmap matrix).
	if snap.Counters["heap.scan_samples"] <= 0 {
		t.Error("snapshot has no heap.scan_samples; lpstats cannot render the frag table")
	}
	if snap.Heatmap == nil || len(snap.Heatmap.Rows) == 0 {
		t.Error("snapshot has no heatmap rows")
	}
	if n := int64(len(snap.Timeline)); snap.Counters["heap.scan_samples"] != n {
		t.Errorf("scan_samples = %d, timeline has %d samples", snap.Counters["heap.scan_samples"], n)
	}

	for _, path := range []string{"/snapshot/99.json", "/snapshot/1", "/snapshot/x.json"} {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET %s status = %d, want 404", path, resp.StatusCode)
		}
	}
}

func TestEventsStream(t *testing.T) {
	srv, ts := testServer(t)

	req, err := http.NewRequest("GET", ts.URL+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("Content-Type = %q", ct)
	}

	post, err := http.Post(ts.URL+"/run", "application/json",
		strings.NewReader(`{"model":"gawk","allocator":"arena"}`))
	if err != nil {
		t.Fatal(err)
	}
	post.Body.Close()

	// Read frames until the job reports done; the stream must carry job
	// transitions and at least one live sample.
	sc := bufio.NewScanner(resp.Body)
	events := map[string]int{}
	var lastData string
	done := false
	for !done && sc.Scan() {
		line := sc.Text()
		if ev, ok := strings.CutPrefix(line, "event: "); ok {
			events[ev]++
		}
		if data, ok := strings.CutPrefix(line, "data: "); ok {
			lastData = data
			if strings.Contains(data, `"status":"done"`) {
				done = true
			}
		}
	}
	if !done {
		t.Fatalf("stream ended before the job finished (last data %q, err %v)", lastData, sc.Err())
	}
	if events["job"] < 2 {
		t.Errorf("saw %d job transitions, want >= 2 (queued/running/done)", events["job"])
	}
	if events["sample"] == 0 {
		t.Error("no timeline samples streamed")
	}

	// Drain: the server must release remaining subscribers.
	srv.shutdown()
	drainDeadline := time.After(5 * time.Second)
	finished := make(chan struct{})
	go func() {
		for sc.Scan() {
		}
		close(finished)
	}()
	select {
	case <-finished:
	case <-drainDeadline:
		t.Fatal("SSE stream did not close on shutdown")
	}
}

// TestEventsHeartbeat shortens the heartbeat interval and checks an idle
// stream still carries periodic comments, so proxies see traffic.
func TestEventsHeartbeat(t *testing.T) {
	old := heartbeatInterval
	heartbeatInterval = 20 * time.Millisecond
	defer func() { heartbeatInterval = old }()

	srv, ts := testServer(t)
	resp, err := http.Get(ts.URL + "/events")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()

	sc := bufio.NewScanner(resp.Body)
	beats := 0
	deadline := time.After(5 * time.Second)
	got := make(chan string)
	go func() {
		for sc.Scan() {
			got <- sc.Text()
		}
		close(got)
	}()
	for beats < 2 {
		select {
		case line, ok := <-got:
			if !ok {
				t.Fatalf("stream closed after %d heartbeats (err %v)", beats, sc.Err())
			}
			if line == ": heartbeat" {
				beats++
			}
		case <-deadline:
			t.Fatalf("saw %d heartbeats in 5s, want 2", beats)
		}
	}
	srv.shutdown()
	for range got {
	}
}

func TestShutdownDrainsQueuedJobs(t *testing.T) {
	srv, ts := testServer(t)
	for i := 0; i < 3; i++ {
		resp, err := http.Post(ts.URL+"/run", "application/json",
			strings.NewReader(`{"model":"gawk","allocator":"arena"}`))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("POST %d status = %d", i, resp.StatusCode)
		}
	}
	srv.shutdown()

	// Every accepted job ran to completion before shutdown returned.
	for _, j := range srv.jobList() {
		j.mu.Lock()
		st := j.status
		j.mu.Unlock()
		if st != statusDone {
			t.Errorf("job %d status after drain = %s, want done", j.ID, st)
		}
	}

	// New submissions are refused with 503.
	resp, err := http.Post(ts.URL+"/run", "application/json",
		strings.NewReader(`{"model":"gawk","allocator":"arena"}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("post-shutdown POST /run status = %d, want 503", resp.StatusCode)
	}
}

// TestSubmitShutdownRace hammers submit from several goroutines while
// shutdown closes the queue. A submission that passes the closing check
// must never reach a closed channel (the old unlocked send panicked
// here), and every accepted job must still drain to done.
func TestSubmitShutdownRace(t *testing.T) {
	srv := newServer(core.DefaultConfig(0.02), 2)
	spec := core.MatrixJob{Model: "gawk", Allocator: "arena", Predictor: "true"}
	var wg sync.WaitGroup
	start := make(chan struct{})
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-start
			for n := 0; n < 25; n++ {
				srv.submit(spec) // rejected once closing; must never panic
			}
		}()
	}
	close(start)
	srv.shutdown()
	wg.Wait()
	for _, j := range srv.jobList() {
		j.mu.Lock()
		st := j.status
		j.mu.Unlock()
		if st != statusDone {
			t.Errorf("job %d status after drain = %s, want done", j.ID, st)
		}
	}
}

// TestBrokerDropReporting overfills a subscriber's buffer and checks
// unsubscribe surfaces exactly the overflow as the drop count.
func TestBrokerDropReporting(t *testing.T) {
	b := newBroker()
	sub := b.subscribe()
	for i := 0; i < subBuffer+5; i++ {
		b.publish("x", i)
	}
	if n := b.unsubscribe(sub); n != 5 {
		t.Errorf("dropped = %d, want 5", n)
	}
	if n := b.unsubscribe(sub); n != 5 {
		t.Errorf("second unsubscribe dropped = %d, want 5 (idempotent)", n)
	}
}

func TestSubmitValidates(t *testing.T) {
	srv := newServer(core.DefaultConfig(0.02), 1)
	defer srv.shutdown()
	if _, err := srv.submit(core.MatrixJob{Model: "gawk", Allocator: "nope", Predictor: "true"}); err == nil {
		t.Error("bad allocator accepted")
	}
	if _, err := srv.submit(core.MatrixJob{Model: "gawk", Allocator: "arena", Predictor: "maybe"}); err == nil {
		t.Error("bad predictor accepted")
	}
}
