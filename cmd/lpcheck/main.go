// Command lpcheck runs the allocator conformance harness: heap-invariant
// audits, differential replay of every allocator against a shared ledger,
// and seeded property-based testing with shrinking repros.
//
// Three modes, combinable in one invocation:
//
//	lpcheck -models all -allocs all -stride 1     # audit the synth models
//	lpcheck -cases 1000 -seed 1993                # seeded property run
//	lpcheck -repro fail.trc                       # replay a shrunk repro
//
// Exit status is 0 when every check passes, 1 on a conformance violation
// (with a replayable shrunk repro on stdout), 2 on usage errors.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/check"
	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/heapsim"
	"repro/internal/synth"
	"repro/internal/trace"
)

const name = "lpcheck"

func main() {
	models := flag.String("models", "",
		fmt.Sprintf("synth models to audit: all, or comma list (valid: %s); empty skips",
			strings.Join(core.ProgramOrder, ",")))
	allocs := flag.String("allocs", "all",
		fmt.Sprintf("allocators to check: all, or comma list (valid: %s)",
			strings.Join(check.AllocatorNames(), ",")))
	scale := flag.Float64("scale", 0.005, "model trace scale for -models audits (stride-1 audits are quadratic in trace length)")
	cases := flag.Int("cases", 0, "property-based cases to run (0 = only if no other mode selected, then 100)")
	seed := flag.Uint64("seed", 1993, "base seed for property-based generation")
	events := flag.Int("events", 400, "events per generated property case")
	stride := flag.Int("stride", 32, "audit every Nth event (1 = every event)")
	repro := flag.String("repro", "", "replay a saved repro trace (text or binary) through the full suite")
	cliutil.Parse(name,
		"audit allocator heap invariants, differentially replay traces, and property-test with shrinking",
		"lpcheck -models all -allocs all -stride 1",
		"lpcheck -cases 1000 -seed 1993",
		"lpcheck -repro fail.trc")

	fs, err := selectFactories(*allocs)
	if err != nil {
		cliutil.UsageError(name, "%v", err)
	}
	opt := check.Options{Stride: *stride, Predict: check.GenPredict(512)}

	ran := false
	if *repro != "" {
		ran = true
		tr, err := readTrace(*repro)
		if err != nil {
			cliutil.Fatal(name, err)
		}
		if err := check.CheckTrace(tr, fs, opt); err != nil {
			cliutil.Fatal(name, fmt.Errorf("repro %s: %w", *repro, err))
		}
		fmt.Printf("%s: repro %s: %d events, all checks pass\n", name, *repro, len(tr.Events))
	}

	if *models != "" {
		ran = true
		if err := auditModels(*models, *allocs, *scale, *stride); err != nil {
			cliutil.Fatal(name, err)
		}
	}

	n := *cases
	if n == 0 && !ran {
		n = 100
	}
	if n > 0 {
		gcfg := check.GenConfig{Events: *events}
		progress := func(done int) {
			if done%200 == 0 {
				fmt.Fprintf(os.Stderr, "%s: %d/%d cases\n", name, done, n)
			}
		}
		if err := check.Run(*seed, n, gcfg, fs, opt, progress); err != nil {
			if v, ok := err.(*check.Violation); ok {
				if werr := v.WriteRepro(os.Stdout); werr != nil {
					cliutil.Fatal(name, werr)
				}
			}
			cliutil.Fatal(name, err)
		}
		fmt.Printf("%s: %d property cases x %d allocators: all checks pass (seed %d)\n",
			name, n, len(fs), *seed)
	}
}

// selectFactories resolves the -allocs flag.
func selectFactories(spec string) ([]check.Factory, error) {
	if spec == "" || spec == "all" {
		return check.Factories()
	}
	return check.Factories(strings.Split(spec, ",")...)
}

// readTrace loads a repro file, accepting both the binary formats
// (LPTRACE magic) and the text format the shrinker prints.
func readTrace(path string) (*trace.Trace, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if bytes.HasPrefix(data, []byte("LPTRACE")) {
		return trace.ReadBinary(bytes.NewReader(data))
	}
	return trace.ReadText(bytes.NewReader(data))
}

// auditModels replays each selected synth model's Test trace through each
// selected allocator with invariant audits on the stride, using the
// model's own trained predictor for the lifetime hints and its top
// training sizes for CUSTOMALLOC — the same wiring the experiments use.
func auditModels(modelSpec, allocSpec string, scale float64, stride int) error {
	var ms []*synth.Model
	if modelSpec == "all" {
		ms = synth.All()
	} else {
		for _, mn := range strings.Split(modelSpec, ",") {
			m := synth.ByName(mn)
			if m == nil {
				return fmt.Errorf("unknown model %q (want %s)", mn, strings.Join(core.ProgramOrder, ", "))
			}
			ms = append(ms, m)
		}
	}
	cfg := core.DefaultConfig(scale)
	for _, m := range ms {
		art, err := cfg.Build(m)
		if err != nil {
			return err
		}
		mapper := art.TrainPredictor.NewMapper(art.TestTrace.Table)
		fs, err := selectFactories(allocSpec)
		if err != nil {
			return err
		}
		hot := art.TrainDB.TopSizes(16)
		for i := range fs {
			if fs[i].Name == "custom" && len(hot) > 0 {
				fs[i].New = func() heapsim.Allocator { return heapsim.NewCustom(hot) }
			}
		}
		opt := check.Options{Stride: stride, Predict: mapper.PredictShort}
		for _, f := range fs {
			src := trace.NewSliceSource(art.TestTrace)
			if err := check.Audit(src, f.Name, f.New(), opt); err != nil {
				return fmt.Errorf("model %s: %w", m.Name, err)
			}
		}
		fmt.Printf("%s: model %s: %d events x %d allocators audited (stride %d)\n",
			name, m.Name, len(art.TestTrace.Events), len(fs), stride)
	}
	return nil
}
