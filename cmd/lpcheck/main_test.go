// CLI-contract tests for lpcheck, exec-based: the usage surface must
// enumerate every valid allocator so an unknown -allocs value is
// recoverable without reading source, and bad names exit 2 with the full
// list.
package main

import (
	"bytes"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/check"
)

var (
	binOnce sync.Once
	binPath string
	binErr  error
)

func lpcheckBin(t *testing.T) string {
	t.Helper()
	binOnce.Do(func() {
		dir, err := os.MkdirTemp("", "lpcheck-bin")
		if err != nil {
			binErr = err
			return
		}
		binPath = filepath.Join(dir, "lpcheck")
		if out, err := exec.Command("go", "build", "-o", binPath, "repro/cmd/lpcheck").CombinedOutput(); err != nil {
			binErr = fmt.Errorf("go build: %v\n%s", err, out)
		}
	})
	if binErr != nil {
		t.Fatal(binErr)
	}
	return binPath
}

func runLpcheck(t *testing.T, args ...string) (stdout, stderr string, code int) {
	t.Helper()
	cmd := exec.Command(lpcheckBin(t), args...)
	var out, errb bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &errb
	err := cmd.Run()
	if err != nil {
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("lpcheck %v: %v", args, err)
		}
		code = ee.ExitCode()
	}
	return out.String(), errb.String(), code
}

// TestUnknownAllocExitsTwoWithFullList: a bad -allocs name is a usage
// error (exit 2) and the message names every valid allocator.
func TestUnknownAllocExitsTwoWithFullList(t *testing.T) {
	stdout, stderr, code := runLpcheck(t, "-allocs", "slab", "-cases", "1")
	if code != 2 {
		t.Fatalf("exit code = %d, want 2 (stderr: %s)", code, stderr)
	}
	if !strings.Contains(stderr, `unknown allocator "slab"`) {
		t.Errorf("stderr missing unknown-allocator message:\n%s", stderr)
	}
	for _, name := range check.AllocatorNames() {
		if !strings.Contains(stderr, name) {
			t.Errorf("stderr missing valid allocator %q:\n%s", name, stderr)
		}
	}
	if !strings.Contains(stderr, "run lpcheck -help for usage") {
		t.Errorf("stderr missing usage pointer:\n%s", stderr)
	}
	if stdout != "" {
		t.Errorf("usage error wrote to stdout: %q", stdout)
	}
}

// TestHelpEnumeratesAllocators: -help lists every allocator (including
// segfit) and every model, so the flag values are discoverable.
func TestHelpEnumeratesAllocators(t *testing.T) {
	_, stderr, code := runLpcheck(t, "-help")
	if code != 0 {
		t.Fatalf("-help exit code = %d, want 0", code)
	}
	for _, name := range check.AllocatorNames() {
		if !strings.Contains(stderr, name) {
			t.Errorf("-help output missing allocator %q:\n%s", name, stderr)
		}
	}
	for _, m := range []string{"cfrac", "espresso", "gawk", "ghost", "perl"} {
		if !strings.Contains(stderr, m) {
			t.Errorf("-help output missing model %q:\n%s", m, stderr)
		}
	}
}

// TestPropertyRunCoversSevenAllocators: a tiny clean property run over
// the full allocator set exits 0 and reports the allocator count.
func TestPropertyRunCoversSevenAllocators(t *testing.T) {
	if testing.Short() {
		t.Skip("exec run is seconds-long; skipped in -short")
	}
	stdout, stderr, code := runLpcheck(t, "-cases", "5", "-events", "150")
	if code != 0 {
		t.Fatalf("exit code = %d, stderr: %s", code, stderr)
	}
	want := fmt.Sprintf("x %d allocators", len(check.AllocatorNames()))
	if !strings.Contains(stdout, want) {
		t.Errorf("stdout missing %q:\n%s", want, stdout)
	}
}
