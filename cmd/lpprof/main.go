// Command lpprof trains a lifetime predictor from an allocation trace and
// writes the site database as JSON — the paper's training step: each
// allocation site (call-chain x rounded size) gets lifetime statistics and
// a P² quantile histogram, and sites whose objects were all short-lived
// are marked as predictors.
//
// Usage:
//
//	lpgen -program gawk -input train -o gawk.trc
//	lpprof -trace gawk.trc -o gawk-sites.json
//	lpprof -trace gawk.trc -threshold 16384 -chain-length 4 -o sites.json
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	lifetime "repro"
	"repro/internal/cliutil"
)

const name = "lpprof"

func main() {
	tracePath := flag.String("trace", "", "input trace file (binary format; - for stdin)")
	out := flag.String("o", "-", "output JSON file, - for stdout")
	threshold := flag.Int64("threshold", 32<<10, "short-lived threshold in bytes")
	rounding := flag.Int64("rounding", 4, "size rounding for site keys")
	chainLength := flag.Int("chain-length", 0, "sub-chain length (0 = complete chain with recursion elimination)")
	sizeOnly := flag.Bool("size-only", false, "key sites by size alone (Table 5 predictor)")
	admit := flag.Float64("admit", 1.0, "fraction of a site's objects that must be short-lived")
	cliutil.Parse(name,
		"train a lifetime predictor from an allocation trace",
		"lpprof -trace gawk.trc -o gawk-sites.json")

	if *tracePath == "" {
		cliutil.UsageError(name, "missing -trace")
	}
	var r io.Reader = os.Stdin
	if *tracePath != "-" {
		f, err := os.Open(*tracePath)
		if err != nil {
			cliutil.Fatal(name, err)
		}
		defer f.Close()
		r = f
	}
	// Training streams: events decode one at a time (file or pipe) and
	// fold into per-site statistics over a live-object map, so
	// `lpgen ... -o - | lpprof -trace -` runs at constant memory.
	src, err := lifetime.NewTraceReader(r)
	if err != nil {
		cliutil.Fatal(name, err)
	}
	program := src.Meta().Program

	cfg := lifetime.DefaultProfileConfig()
	cfg.ShortThreshold = *threshold
	cfg.SizeRounding = *rounding
	cfg.ChainLength = *chainLength
	cfg.SizeOnly = *sizeOnly
	cfg.AdmitFraction = *admit

	db, err := lifetime.TrainDBSource(src, cfg)
	if err != nil {
		cliutil.Fatal(name, err)
	}

	var w io.Writer = os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			cliutil.Fatal(name, err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				cliutil.Fatal(name, err)
			}
		}()
		w = f
	}
	if err := db.WriteJSON(w, program); err != nil {
		cliutil.Fatal(name, err)
	}
	p := db.Predictor()
	fmt.Fprintf(os.Stderr, "lpprof: %s: %d sites, %d admitted as short-lived predictors\n",
		program, db.NumSites(), p.NumSites())
}
