// Command lpbench runs the model × allocator × predictor simulation
// matrix with observability collectors attached and writes one
// deterministic bench JSON file: per-cell operation counts, byte-clock
// totals, search-length means, fragmentation peaks, and the full
// flattened metric set. Everything derives from seeded replays on the
// bytes-allocated clock, so the same code at the same scale produces the
// same bytes on any machine — commit the output (BENCH_<label>.json) and
// gate later changes with cmd/lpdiff.
//
// Usage:
//
//	lpbench -label seed -o BENCH_seed.json
//	lpbench -matrix gawk,cfrac/arena,firstfit -scale 0.05 -o -
//	lpbench -o new.json && lpdiff -threshold sim_bytes_per_op+10% BENCH_seed.json new.json
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/obs"
)

const name = "lpbench"

func main() {
	matrixSpec := flag.String("matrix", "all", "matrix spec: models/allocators/predictors, comma lists or all")
	label := flag.String("label", "run", "label embedded in the bench file (BENCH_<label>.json by convention)")
	scale := flag.Float64("scale", 0.02, "trace scale relative to the paper's runs")
	seed := flag.Uint64("seed", 1993, "base RNG seed for trace generation")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "concurrent simulation workers")
	out := flag.String("o", "-", "output bench JSON file, - for stdout")
	only := flag.String("only", "", "keep only metrics whose name starts with this prefix (e.g. pred.)")
	heapScan := flag.Bool("heapscan", false, "walk each allocator's span layout at every timeline sample, adding the deterministic heap.* fragmentation families")
	startProfiles := cliutil.ProfileFlags(name)
	cliutil.Parse(name,
		"run the simulation matrix and emit a deterministic bench JSON file",
		"lpbench -label seed -o BENCH_seed.json",
		"lpbench -only pred. -label accuracy-seed -o ACCURACY_seed.json",
		"lpbench -heapscan -only heap. -label frag-seed -o FRAG_seed.json",
		"lpbench -o new.json && lpdiff -threshold sim_bytes_per_op+10% BENCH_seed.json new.json",
		"lpbench -matrix gawk/arena -cpuprofile cpu.pprof -memprofile mem.pprof -o -")
	defer startProfiles()()

	jobs, err := core.ParseMatrix(*matrixSpec)
	if err != nil {
		cliutil.UsageError(name, "%v", err)
	}
	core.SortJobs(jobs)

	cfg := core.DefaultConfig(*scale)
	cfg.SeedBase = *seed
	runner := core.NewMatrixRunner(cfg)
	results := runner.RunAll(jobs, *workers, func(j core.MatrixJob) *obs.Collector {
		return obs.NewCollector(obs.Options{Label: j.String(), HeapScan: *heapScan})
	})

	file := &core.BenchFile{Label: *label, Scale: *scale, SeedBase: *seed}
	for _, res := range results {
		if res.Err != nil {
			cliutil.Fatal(name, fmt.Errorf("job %s: %w", res.Job, res.Err))
		}
		run := core.NewBenchRun(res.Job, res.Res)
		if *only != "" {
			// A filtered file (e.g. just the pred. accuracy families) keeps
			// exact-match gates focused and the committed baseline small.
			for k := range run.Metrics {
				if !strings.HasPrefix(k, *only) {
					delete(run.Metrics, k)
				}
			}
		}
		file.Runs = append(file.Runs, run)
		fmt.Fprintf(os.Stderr, "%s: %-28s ops=%-9d bytes=%-11d heap=%d\n",
			name, res.Job, res.Res.Counts.Allocs+res.Res.Counts.Frees,
			res.Res.TotalBytes, res.Res.MaxHeap)
	}

	w := os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			cliutil.Fatal(name, err)
		}
		defer f.Close()
		w = f
	}
	if err := core.WriteBench(w, file); err != nil {
		cliutil.Fatal(name, err)
	}
	if *out != "-" {
		fmt.Fprintf(os.Stderr, "%s: wrote %d runs to %s\n", name, len(file.Runs), *out)
	}
}
