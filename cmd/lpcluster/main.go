// Command lpcluster runs the multi-tenant shared-heap cluster
// tournament: every routing policy crossed with every pool shape over a
// fixed tenant population, each cell replayed twice — unconstrained (the
// fragmentation and fairness baseline) and stressed at half its own peak
// (or a fixed -budget) under the chosen admission mode — then ranked.
//
// Usage:
//
//	lpcluster [-scale 0.02] [-seed 1993]
//	          [-tenants cfrac,espresso,gawk] [-policies round-robin,...]
//	          [-pools 4xarena,4xfirstfit,2xbsd] [-admission reject]
//	          [-budget 0] [-workers N]
//
// Tenants are synth model names; "cfrac#2" adds a second cfrac instance
// whose test input is generated at a deterministic seed offset. Pool
// shapes are "NxKIND" with "+" for mixed pools ("2xarena+2xfirstfit").
//
// The run is conformance-gated: before any scenario is scored, every
// requested pool shape must pass internal/check's ledger-reconciled
// audit over generated traces. The printed report is byte-identical at
// any -workers count.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"

	"repro/internal/check"
	"repro/internal/cliutil"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/heapsim"
	"repro/internal/synth"
	"repro/internal/trace"
)

const name = "lpcluster"

func main() {
	scale := flag.Float64("scale", 0.02, "trace scale relative to the paper's runs")
	seed := flag.Uint64("seed", 1993, "base RNG seed")
	tenants := flag.String("tenants", "cfrac,espresso,gawk",
		fmt.Sprintf("comma-separated tenant models, optional #k duplicates (valid models: %s)",
			strings.Join(modelNames(), ",")))
	policies := flag.String("policies", strings.Join(cluster.PolicyNames(), ","),
		"comma-separated routing policies to rank")
	pools := flag.String("pools", "4xarena,4xfirstfit,2xbsd",
		"comma-separated pool shapes (NxKIND, + for mixed)")
	admission := flag.String("admission", "reject",
		fmt.Sprintf("admission mode for the stressed replay (%s)",
			strings.Join(cluster.AdmissionModes(), ",")))
	budget := flag.Int64("budget", 0, "stressed-replay live-byte budget (0: half of each scenario's unconstrained peak)")
	workers := flag.Int("workers", runtime.GOMAXPROCS(0), "max concurrent scenarios")
	cliutil.Parse(name,
		"rank routing policies x pool shapes for a multi-tenant shared heap",
		"lpcluster -scale 0.02 -seed 1993",
		"lpcluster -tenants cfrac,cfrac#2,gawk -pools 2xarena+2xfirstfit -admission evict",
		"lpcluster -pools 8xfirstfit -admission queue -workers 4")

	mode, err := cluster.ParseAdmission(*admission)
	if err != nil {
		cliutil.UsageError(name, "%v", err)
	}
	if *workers < 1 {
		cliutil.UsageError(name, "-workers must be at least 1 (got %d)", *workers)
	}
	cfg := cluster.MatrixConfig{
		Core:      core.DefaultConfig(*scale),
		Tenants:   splitList(*tenants),
		Policies:  splitList(*policies),
		Pools:     splitList(*pools),
		Admission: mode,
		Budget:    *budget,
		Workers:   *workers,
	}
	cfg.Core.SeedBase = *seed
	for _, s := range cfg.Tenants {
		if _, err := cluster.ParseTenantSpec(s); err != nil {
			cliutil.UsageError(name, "%v", err)
		}
	}
	for _, s := range cfg.Policies {
		if _, err := cluster.NewPolicy(s); err != nil {
			cliutil.UsageError(name, "%v", err)
		}
	}
	for _, s := range cfg.Pools {
		if _, err := cluster.ParsePoolSpec(s); err != nil {
			cliutil.UsageError(name, "%v", err)
		}
	}

	if err := conformanceGate(*seed, cfg.Pools); err != nil {
		cliutil.Fatal(name, fmt.Errorf("conformance gate: %w", err))
	}
	fmt.Fprintf(os.Stderr, "%s: conformance gate passed (%d pool shapes audited)\n", name, len(cfg.Pools))

	res, err := cluster.RunMatrix(cfg)
	if err != nil {
		cliutil.Fatal(name, err)
	}
	if _, err := fmt.Printf("lifetime-prediction cluster tournament; scale=%g seed=%d\n\n", *scale, *seed); err != nil {
		cliutil.Fatal(name, err)
	}
	if err := res.WriteReport(os.Stdout); err != nil {
		cliutil.Fatal(name, err)
	}
}

// conformanceGate audits every requested pool shape with the
// ledger-reconciled differential suite over generated traces: a pool
// composition that cannot keep the single-allocator invariants under
// round-robin placement never gets scored.
func conformanceGate(seed uint64, poolSpecs []string) error {
	for _, spec := range poolSpecs {
		kinds, err := cluster.ParsePoolSpec(spec)
		if err != nil {
			return err
		}
		for s := seed; s < seed+2; s++ {
			members := make([]heapsim.Allocator, len(kinds))
			for i, k := range kinds {
				members[i] = core.MustNewAllocator(k)
			}
			p, err := heapsim.NewPool("gate:"+spec, members...)
			if err != nil {
				return err
			}
			tr := check.GenTrace(s, check.GenConfig{})
			err = check.AuditPool(trace.NewSliceSource(tr), spec, p, check.Options{
				Stride:  32,
				Predict: check.GenPredict(1 << 12),
			})
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// splitList splits a comma-separated flag, dropping empty items.
func splitList(s string) []string {
	var out []string
	for _, p := range strings.Split(s, ",") {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// modelNames lists the synth models for -help.
func modelNames() []string {
	models := synth.All()
	out := make([]string, len(models))
	for i, m := range models {
		out[i] = m.Name
	}
	return out
}
