// Golden-file and CLI-contract tests for lpcluster. The golden pins the
// exact tournament report bytes at scale 0.02, seed 1993 — byte-identical
// at any -workers count. Regenerate after an intentional output change:
//
//	go test ./cmd/lpcluster -run TestGolden -update
//
// and review the diff like any other code change.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
)

var update = flag.Bool("update", false, "rewrite the golden file from the current tournament output")

const (
	goldenScale = 0.02
	goldenSeed  = 1993
)

// render reproduces lpcluster stdout at the default flag values: the
// header line followed by the ranked report.
func render(t *testing.T, workers int) []byte {
	t.Helper()
	cfg := cluster.MatrixConfig{
		Core:      core.DefaultConfig(goldenScale),
		Tenants:   []string{"cfrac", "espresso", "gawk"},
		Policies:  cluster.PolicyNames(),
		Pools:     []string{"4xarena", "4xfirstfit", "2xbsd"},
		Admission: cluster.Reject,
		Workers:   workers,
	}
	cfg.Core.SeedBase = goldenSeed
	res, err := cluster.RunMatrix(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var b bytes.Buffer
	fmt.Fprintf(&b, "lifetime-prediction cluster tournament; scale=%g seed=%d\n\n", goldenScale, goldenSeed)
	if err := res.WriteReport(&b); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

func checkGolden(t *testing.T, path string, got []byte) {
	t.Helper()
	if *update {
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run with -update to create it)", err)
	}
	if bytes.Equal(want, got) {
		return
	}
	wl, gl := strings.Split(string(want), "\n"), strings.Split(string(got), "\n")
	for i := 0; i < len(wl) || i < len(gl); i++ {
		w, g := "", ""
		if i < len(wl) {
			w = wl[i]
		}
		if i < len(gl) {
			g = gl[i]
		}
		if w != g {
			t.Fatalf("%s: first difference at line %d:\n golden: %q\n    got: %q\n(rerun with -update if the change is intentional)",
				filepath.Base(path), i+1, w, g)
		}
	}
	t.Fatalf("%s: outputs differ in length only: golden %d bytes, got %d", filepath.Base(path), len(want), len(got))
}

func TestGoldenClusterReport(t *testing.T) {
	if testing.Short() {
		t.Skip("golden run is seconds-long; skipped in -short")
	}
	got := render(t, 4)
	checkGolden(t, filepath.Join("testdata", "golden-cluster-scale0.02-seed1993.txt"), got)
}

// TestGoldenWorkerInvariance: the pinned report renders byte-identically
// serially and at a wide fan-out — the user-visible face of the matrix
// runner's determinism guarantee.
func TestGoldenWorkerInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("golden run is seconds-long; skipped in -short")
	}
	if !bytes.Equal(render(t, 1), render(t, 8)) {
		t.Fatal("workers=1 and workers=8 rendered different bytes")
	}
}

// --- CLI contract (exec-based) ---

var (
	binOnce sync.Once
	binPath string
	binErr  error
)

func lpclusterBin(t *testing.T) string {
	t.Helper()
	binOnce.Do(func() {
		dir, err := os.MkdirTemp("", "lpcluster-bin")
		if err != nil {
			binErr = err
			return
		}
		binPath = filepath.Join(dir, "lpcluster")
		if out, err := exec.Command("go", "build", "-o", binPath, "repro/cmd/lpcluster").CombinedOutput(); err != nil {
			binErr = fmt.Errorf("go build: %v\n%s", err, out)
		}
	})
	if binErr != nil {
		t.Fatal(binErr)
	}
	return binPath
}

func runLpcluster(t *testing.T, args ...string) (stdout, stderr string, code int) {
	t.Helper()
	cmd := exec.Command(lpclusterBin(t), args...)
	var out, errb bytes.Buffer
	cmd.Stdout, cmd.Stderr = &out, &errb
	err := cmd.Run()
	if err != nil {
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("lpcluster %v: %v", args, err)
		}
		code = ee.ExitCode()
	}
	return out.String(), errb.String(), code
}

func TestUsageErrors(t *testing.T) {
	cases := []struct {
		name string
		args []string
		msg  string
	}{
		{"bad admission", []string{"-admission", "lottery"}, `unknown admission mode "lottery"`},
		{"bad tenant model", []string{"-tenants", "netscape"}, `unknown tenant model "netscape"`},
		{"bad tenant instance", []string{"-tenants", "cfrac#0"}, "bad tenant instance"},
		{"bad policy", []string{"-policies", "random"}, `unknown routing policy "random"`},
		{"bad pool kind", []string{"-pools", "4xslab"}, `pool spec "4xslab"`},
		{"zero pool members", []string{"-pools", "0xarena"}, "bad member count"},
		{"zero workers", []string{"-workers", "0"}, "-workers must be at least 1"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			stdout, stderr, code := runLpcluster(t, append([]string{"-scale", "0.005"}, tc.args...)...)
			if code != 2 {
				t.Fatalf("exit code = %d, want 2 (stderr: %s)", code, stderr)
			}
			if !strings.Contains(stderr, tc.msg) {
				t.Errorf("stderr missing %q:\n%s", tc.msg, stderr)
			}
			if !strings.Contains(stderr, "run lpcluster -help for usage") {
				t.Errorf("stderr missing usage pointer:\n%s", stderr)
			}
			if stdout != "" {
				t.Errorf("usage error wrote to stdout: %q", stdout)
			}
		})
	}
}

// TestRunGateAndReport execs the real binary on a small configuration:
// the conformance gate announces itself on stderr, the ranked report
// lands on stdout, and every requested policy and pool appears in it.
func TestRunGateAndReport(t *testing.T) {
	if testing.Short() {
		t.Skip("exec run is seconds-long; skipped in -short")
	}
	stdout, stderr, code := runLpcluster(t,
		"-scale", "0.005", "-tenants", "cfrac,espresso", "-pools", "2xfirstfit,1xarena+1xbsd")
	if code != 0 {
		t.Fatalf("exit code = %d, stderr: %s", code, stderr)
	}
	if !strings.Contains(stderr, "conformance gate passed") {
		t.Errorf("stderr missing gate confirmation:\n%s", stderr)
	}
	if !strings.Contains(stdout, "lifetime-prediction cluster tournament") ||
		!strings.Contains(stdout, "Scenario leaderboard") ||
		!strings.Contains(stdout, "Per-tenant breakdown") {
		t.Errorf("stdout missing report sections:\n%s", stdout)
	}
	for _, p := range cluster.PolicyNames() {
		if !strings.Contains(stdout, p) {
			t.Errorf("report missing policy %s", p)
		}
	}
	for _, pool := range []string{"2xfirstfit", "1xarena+1xbsd"} {
		if !strings.Contains(stdout, pool) {
			t.Errorf("report missing pool %s", pool)
		}
	}
	for _, ten := range []string{"cfrac", "espresso"} {
		if !strings.Contains(stdout, ten) {
			t.Errorf("report missing tenant %s", ten)
		}
	}
}

// TestBinaryWorkerSweep runs the built binary serially and at a wide
// fan-out and compares stdout byte for byte — the exec-level determinism
// check CI repeats at golden scale.
func TestBinaryWorkerSweep(t *testing.T) {
	if testing.Short() {
		t.Skip("exec runs are seconds-long; skipped in -short")
	}
	args := []string{"-scale", "0.005", "-tenants", "cfrac,gawk", "-pools", "2xarena,2xfirstfit"}
	out1, _, code := runLpcluster(t, append(args, "-workers", "1")...)
	if code != 0 {
		t.Fatalf("workers=1 exit code %d", code)
	}
	out8, _, code := runLpcluster(t, append(args, "-workers", "8")...)
	if code != 0 {
		t.Fatalf("workers=8 exit code %d", code)
	}
	if out1 != out8 {
		t.Fatal("stdout differs between -workers 1 and -workers 8")
	}
}
