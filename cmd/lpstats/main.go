// Command lpstats renders the metrics snapshot exported by lpsim -obs as
// a text report: run header, counters and gauges, histograms, a
// fragmentation-over-time table built from the live/heap timeline, the
// structured-event summary, per-phase counter deltas, the top allocation
// sites by bytes, and — for observed replays, which always carry
// prediction-quality tracking — the confusion matrix, calibration drift,
// and top misprediction sites.
//
// Usage:
//
//	lpsim -trace test.trc -alloc arena -sites sites.json -obs metrics.json
//	lpstats -metrics metrics.json
//	lpstats -metrics metrics.json -top 10 -rows 12
//	lpsim -trace test.trc -alloc arena -obs - | lpstats -metrics -
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"repro/internal/cliutil"
	"repro/internal/obs"
	"repro/internal/table"
)

const name = "lpstats"

func main() {
	metricsPath := flag.String("metrics", "", "metrics snapshot JSON from lpsim -obs (- for stdin)")
	top := flag.Int("top", 15, "how many allocation sites to list")
	rows := flag.Int("rows", 16, "how many timeline rows in the fragmentation table")
	heatmapCSV := flag.String("heatmap-csv", "", "also write the address-space heatmap as CSV here (- for stdout)")
	cliutil.Parse(name,
		"render an lpsim -obs metrics snapshot as a text report",
		"lpsim -trace t.trc -alloc arena -obs - | lpstats -metrics -",
		"lpsim -trace t.trc -alloc firstfit -obs m.json -heapscan && lpstats -metrics m.json -heatmap-csv heat.csv")

	if *metricsPath == "" {
		cliutil.UsageError(name, "missing -metrics")
	}
	var r io.Reader = os.Stdin
	if *metricsPath != "-" {
		f, err := os.Open(*metricsPath)
		if err != nil {
			cliutil.Fatal(name, err)
		}
		defer f.Close()
		r = f
	}
	snap, err := obs.ReadJSON(r)
	if err != nil {
		cliutil.Fatal(name, fmt.Errorf("decoding %s: %w", *metricsPath, err))
	}

	printHeader(snap)
	printCounters(snap)
	printHistograms(snap)
	printTimeline(snap, *rows)
	printHeapTopology(snap, *rows)
	printEvents(snap)
	printPhases(snap)
	printSites(snap, *top)
	printAccuracy(snap, *top, *rows)

	if *heatmapCSV != "" {
		if err := writeHeatmapCSV(*heatmapCSV, snap); err != nil {
			cliutil.Fatal(name, err)
		}
		if *heatmapCSV != "-" {
			fmt.Printf("heatmap CSV: %s\n", *heatmapCSV)
		}
	}
}

// writeHeatmapCSV exports the snapshot's heatmap (header-only when the
// scanner never ran) to a file or stdout.
func writeHeatmapCSV(path string, snap *obs.Snapshot) error {
	if path == "-" {
		return obs.WriteHeatmapCSV(os.Stdout, snap)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := obs.WriteHeatmapCSV(f, snap); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func printHeader(s *obs.Snapshot) {
	if s.Label != "" {
		fmt.Printf("run:        %s\n", s.Label)
	}
	if s.Program != "" {
		fmt.Printf("program:    %s\n", s.Program)
	}
	if s.Allocator != "" {
		fmt.Printf("allocator:  %s\n", s.Allocator)
	}
	fmt.Printf("clock:      %d bytes allocated\n\n", s.Clock)
}

func printCounters(s *obs.Snapshot) {
	if len(s.Counters) == 0 && len(s.Gauges) == 0 {
		return
	}
	tb := table.New("counters and gauges", "Name", "Value", "Max")
	names := make([]string, 0, len(s.Counters)+len(s.Gauges))
	for n := range s.Counters {
		names = append(names, n)
	}
	for n := range s.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		if v, ok := s.Counters[n]; ok {
			tb.RowStrings(n, fmt.Sprintf("%d", v), "")
			continue
		}
		g := s.Gauges[n]
		tb.RowStrings(n, fmt.Sprintf("%d", g.Value), fmt.Sprintf("%d", g.Max))
	}
	tb.WriteTo(os.Stdout)
}

func printHistograms(s *obs.Snapshot) {
	names := make([]string, 0, len(s.Histograms))
	for n := range s.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := s.Histograms[n]
		if h.Count == 0 {
			continue
		}
		tb := table.New(
			fmt.Sprintf("%s (%s; n=%d mean=%.1f max=%d)", n, h.Kind, h.Count, h.Mean(), h.Max),
			"Bucket", "Count", "Share")
		for i, c := range h.Counts {
			if c == 0 {
				continue
			}
			lo, hi := h.BucketBounds(i)
			tb.RowStrings(boundLabel(lo, hi),
				fmt.Sprintf("%d", c),
				fmt.Sprintf("%.1f%%", 100*float64(c)/float64(h.Count)))
		}
		if h.Overflow > 0 {
			tb.RowStrings("overflow", fmt.Sprintf("%d", h.Overflow),
				fmt.Sprintf("%.1f%%", 100*float64(h.Overflow)/float64(h.Count)))
		}
		tb.WriteTo(os.Stdout)
	}
}

func boundLabel(lo, hi int64) string {
	if lo == hi {
		return fmt.Sprintf("%d", lo)
	}
	return fmt.Sprintf("[%d,%d]", lo, hi)
}

// printTimeline renders fragmentation over time: at each sampled clock,
// live bytes versus heap bytes and the utilisation ratio between them.
func printTimeline(s *obs.Snapshot, rows int) {
	if len(s.Timeline) == 0 || rows <= 0 {
		return
	}
	tb := table.New(
		fmt.Sprintf("fragmentation over time (%d samples, every %d bytes)",
			len(s.Timeline), s.TimelineInterval),
		"Clock", "Live KB", "Objects", "Heap KB", "Util%", "Arena occ%")
	stride := (len(s.Timeline) + rows - 1) / rows
	for i := 0; i < len(s.Timeline); i += stride {
		// Always end on the final sample so the table reaches the end
		// of the run.
		if i+stride >= len(s.Timeline) {
			i = len(s.Timeline) - 1
		}
		p := s.Timeline[i]
		util := "-"
		if p.HeapBytes > 0 {
			util = fmt.Sprintf("%.1f", 100*float64(p.LiveBytes)/float64(p.HeapBytes))
		}
		tb.RowStrings(
			fmt.Sprintf("%d", p.Clock),
			fmt.Sprintf("%d", p.LiveBytes>>10),
			fmt.Sprintf("%d", p.LiveObjects),
			fmt.Sprintf("%d", p.HeapBytes>>10),
			util,
			fmt.Sprintf("%.1f", 100*p.ArenaOccupancy))
		if i == len(s.Timeline)-1 {
			break
		}
	}
	tb.WriteTo(os.Stdout)
}

// printHeapTopology renders the heap scanner's output: the
// fragmentation decomposition over time and the ASCII address-space
// heatmap. Snapshots from replays without the scanner carry no
// heap.scan_samples counter and skip the section entirely.
func printHeapTopology(s *obs.Snapshot, rows int) {
	if _, ok := s.Counters["heap.scan_samples"]; !ok {
		return
	}
	printFragDecomposition(s, rows)
	printHeatmap(s, rows)
}

// printFragDecomposition tables the per-sample split of the heap into
// live payload, header overhead, internal and external fragmentation,
// and holes — the components that sum to the allocator footprint.
func printFragDecomposition(s *obs.Snapshot, rows int) {
	if len(s.Timeline) == 0 || rows <= 0 {
		return
	}
	tb := table.New(
		fmt.Sprintf("fragmentation decomposition (%d layout scans)",
			s.Counters["heap.scan_samples"]),
		"Clock", "Payload KB", "Header KB", "Intern KB", "Extern KB", "Holes KB", "Heap KB", "Free spans", "Max free KB")
	stride := (len(s.Timeline) + rows - 1) / rows
	for i := 0; i < len(s.Timeline); i += stride {
		if i+stride >= len(s.Timeline) {
			i = len(s.Timeline) - 1
		}
		p := s.Timeline[i]
		tb.RowStrings(
			fmt.Sprintf("%d", p.Clock),
			fmt.Sprintf("%d", p.HeapLivePayload>>10),
			fmt.Sprintf("%d", p.HeapHeaderBytes>>10),
			fmt.Sprintf("%d", p.HeapInternalFrag>>10),
			fmt.Sprintf("%d", p.HeapExternalFrag>>10),
			fmt.Sprintf("%d", p.HeapHoleBytes>>10),
			fmt.Sprintf("%d", p.HeapBytes>>10),
			fmt.Sprintf("%d", p.HeapFreeSpans),
			fmt.Sprintf("%d", p.HeapLargestFreeSpan>>10))
		if i == len(s.Timeline)-1 {
			break
		}
	}
	tb.WriteTo(os.Stdout)
}

// heatRamp maps bin density (live bytes / bin width) to glyphs, empty to
// full.
var heatRamp = []byte(" .:-=+*#%@")

// printHeatmap renders the address-space heatmap: one text row per
// (strided) timeline sample, one glyph per bin.
func printHeatmap(s *obs.Snapshot, rows int) {
	h := s.Heatmap
	if h == nil || len(h.Rows) == 0 || rows <= 0 {
		return
	}
	fmt.Printf("address-space heatmap (%d bins x %d rows; ' ' empty .. '@' full)\n",
		h.Bins, len(h.Rows))
	stride := (len(h.Rows) + rows - 1) / rows
	line := make([]byte, h.Bins)
	for i := 0; i < len(h.Rows); i += stride {
		if i+stride >= len(h.Rows) {
			i = len(h.Rows) - 1
		}
		row := h.Rows[i]
		var binW int64
		if h.Bins > 0 && row.Extent > 0 {
			binW = (row.Extent + int64(h.Bins) - 1) / int64(h.Bins)
		}
		for b := range line {
			line[b] = ' '
			if binW <= 0 || b >= len(row.Cells) {
				continue
			}
			c := row.Cells[b]
			idx := int(c * int64(len(heatRamp)-1) / binW)
			if idx >= len(heatRamp) {
				idx = len(heatRamp) - 1
			}
			if c > 0 && idx == 0 {
				idx = 1 // occupied bins always render, however faintly
			}
			line[b] = heatRamp[idx]
		}
		fmt.Printf("  %12d |%s|\n", row.Clock, line)
		if i == len(h.Rows)-1 {
			break
		}
	}
	fmt.Println()
}

func printEvents(s *obs.Snapshot) {
	if len(s.Events.Counts) == 0 {
		return
	}
	kinds := make([]string, 0, len(s.Events.Counts))
	for k := range s.Events.Counts {
		kinds = append(kinds, k)
	}
	sort.Strings(kinds)
	tb := table.New("replay events", "Kind", "Count")
	total := int64(0)
	for _, k := range kinds {
		tb.RowStrings(k, fmt.Sprintf("%d", s.Events.Counts[k]))
		total += s.Events.Counts[k]
	}
	tb.RowStrings("total", fmt.Sprintf("%d", total))
	tb.WriteTo(os.Stdout)
	if s.Events.Dropped > 0 {
		fmt.Printf("(event window dropped %d oldest events; totals above are exact)\n\n",
			s.Events.Dropped)
	}
}

func printPhases(s *obs.Snapshot) {
	if len(s.Phases) < 2 {
		return
	}
	// Pick the counters that actually move and show per-phase deltas.
	last := s.Phases[len(s.Phases)-1]
	names := make([]string, 0, len(last.Counters))
	for n, v := range last.Counters {
		if v != 0 {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	if len(names) == 0 {
		return
	}
	cols := []string{"Counter"}
	for _, ph := range s.Phases {
		cols = append(cols, ph.Label)
	}
	tb := table.New("counter deltas per phase", cols...)
	for _, n := range names {
		cells := []string{n}
		prev := int64(0)
		for _, ph := range s.Phases {
			v := ph.Counters[n]
			cells = append(cells, fmt.Sprintf("%d", v-prev))
			prev = v
		}
		tb.RowStrings(cells...)
	}
	tb.WriteTo(os.Stdout)
}

// printAccuracy renders the prediction-quality section: the confusion
// matrix by objects and bytes with derived accuracy/precision/recall, the
// false-positive byte-lifetime cost, calibration drift across the
// timeline's rolling-accuracy channel, and the top misprediction sites.
// Snapshots from replays without prediction tracking skip the section.
func printAccuracy(s *obs.Snapshot, top, rows int) {
	if _, ok := s.Counters["pred.tp_objects"]; !ok {
		return
	}
	tp, fp := s.Counters["pred.tp_objects"], s.Counters["pred.fp_objects"]
	fn, tn := s.Counters["pred.fn_objects"], s.Counters["pred.tn_objects"]
	tpB, fpB := s.Counters["pred.tp_bytes"], s.Counters["pred.fp_bytes"]
	fnB, tnB := s.Counters["pred.fn_bytes"], s.Counters["pred.tn_bytes"]

	tb := table.New(
		fmt.Sprintf("prediction accuracy (short threshold %d bytes)",
			s.Gauges["pred.threshold_bytes"].Value),
		"Outcome", "Objects", "Bytes")
	tb.RowStrings("true positive (short, died short)", fmt.Sprintf("%d", tp), fmt.Sprintf("%d", tpB))
	tb.RowStrings("false positive (short, lived long)", fmt.Sprintf("%d", fp), fmt.Sprintf("%d", fpB))
	tb.RowStrings("false negative (long, died short)", fmt.Sprintf("%d", fn), fmt.Sprintf("%d", fnB))
	tb.RowStrings("true negative (long, lived long)", fmt.Sprintf("%d", tn), fmt.Sprintf("%d", tnB))
	tb.RowStrings("accuracy", ratioPct(tp+tn, tp+fp+fn+tn), ratioPct(tpB+tnB, tpB+fpB+fnB+tnB))
	tb.RowStrings("precision", ratioPct(tp, tp+fp), ratioPct(tpB, tpB+fpB))
	tb.RowStrings("recall", ratioPct(tp, tp+fn), ratioPct(tpB, tpB+fnB))
	tb.WriteTo(os.Stdout)
	if cost := s.Counters["pred.fp_cost_bytelife"]; cost > 0 {
		fmt.Printf("false-positive cost: %d byte-lifetime units held past the threshold\n\n", cost)
	}

	printCalibration(s, rows)

	if len(s.PredSites) > 0 && top > 0 {
		n := len(s.PredSites)
		if n > top {
			n = top
		}
		st := table.New(fmt.Sprintf("top %d misprediction sites", n),
			"Site", "FP objs", "FP bytes", "FP cost", "FN objs", "FN bytes")
		for _, ps := range s.PredSites[:n] {
			st.RowStrings(ps.Site,
				fmt.Sprintf("%d", ps.FPObjects),
				fmt.Sprintf("%d", ps.FPBytes),
				fmt.Sprintf("%d", ps.FPCost),
				fmt.Sprintf("%d", ps.FNObjects),
				fmt.Sprintf("%d", ps.FNBytes))
		}
		st.WriteTo(os.Stdout)
	}
}

// printCalibration renders accuracy drift over the run: windowed (between
// consecutive shown rows) and cumulative accuracy from the timeline's
// rolling prediction counts.
func printCalibration(s *obs.Snapshot, rows int) {
	if rows <= 0 || len(s.Timeline) == 0 {
		return
	}
	last := s.Timeline[len(s.Timeline)-1]
	if last.PredDecidedObjects == 0 {
		return
	}
	tb := table.New("calibration drift (rolling accuracy)",
		"Clock", "Decided", "Cum acc%", "Window acc%")
	stride := (len(s.Timeline) + rows - 1) / rows
	var prevDecided, prevCorrect int64
	for i := 0; i < len(s.Timeline); i += stride {
		if i+stride >= len(s.Timeline) {
			i = len(s.Timeline) - 1
		}
		p := s.Timeline[i]
		tb.RowStrings(
			fmt.Sprintf("%d", p.Clock),
			fmt.Sprintf("%d", p.PredDecidedObjects),
			ratioPct(p.PredCorrectObjects, p.PredDecidedObjects),
			ratioPct(p.PredCorrectObjects-prevCorrect, p.PredDecidedObjects-prevDecided))
		prevDecided, prevCorrect = p.PredDecidedObjects, p.PredCorrectObjects
		if i == len(s.Timeline)-1 {
			break
		}
	}
	tb.WriteTo(os.Stdout)
}

// ratioPct formats 100*num/den, or "-" when the denominator is zero.
func ratioPct(num, den int64) string {
	if den == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(num)/float64(den))
}

func printSites(s *obs.Snapshot, top int) {
	if len(s.Sites) == 0 || top <= 0 {
		return
	}
	n := len(s.Sites)
	if n > top {
		n = top
	}
	tb := table.New(fmt.Sprintf("top %d sites by bytes", n),
		"Site", "Allocs", "Bytes")
	for _, site := range s.Sites[:n] {
		tb.RowStrings(site.Site,
			fmt.Sprintf("%d", site.Allocs),
			fmt.Sprintf("%d", site.Bytes))
	}
	tb.WriteTo(os.Stdout)
}
