// Command lpgen generates a synthetic allocation trace from one of the
// five calibrated program models and writes it to a file (or stdout) in
// the binary or text trace format.
//
// Usage:
//
//	lpgen -program gawk -input train -scale 0.1 -seed 1 -o gawk-train.trc
//	lpgen -program perl -input test -text -o -        # text to stdout
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	lifetime "repro"
	"repro/internal/cliutil"
	"repro/internal/trace"
)

const name = "lpgen"

func main() {
	program := flag.String("program", "gawk", "model: cfrac, espresso, gawk, ghost, perl")
	input := flag.String("input", "train", "workload input: train or test")
	scale := flag.Float64("scale", 0.1, "trace scale relative to the paper's run")
	seed := flag.Uint64("seed", 1, "RNG seed")
	out := flag.String("o", "-", "output file, - for stdout")
	text := flag.Bool("text", false, "write the human-readable text format")
	cliutil.Parse(name,
		"generate a synthetic allocation trace from a calibrated program model",
		"lpgen -program gawk -input train -scale 0.1 -seed 1 -o gawk-train.trc")

	m := lifetime.ModelByName(*program)
	if m == nil {
		cliutil.UsageError(name, "unknown program %q (want one of cfrac, espresso, gawk, ghost, perl)", *program)
	}
	var in lifetime.WorkloadInput
	switch *input {
	case "train":
		in = lifetime.TrainInput
	case "test":
		in = lifetime.TestInput
	default:
		cliutil.UsageError(name, "unknown input %q (want train or test)", *input)
	}

	// Generation, serialization, and the summary statistics all stream:
	// each event goes straight from the model to the output writer and
	// into the running statistics, so memory stays bounded by the live
	// object set no matter the scale.
	src, err := lifetime.GenerateSource(m, in, *seed, *scale)
	if err != nil {
		cliutil.Fatal(name, err)
	}

	var w io.Writer = os.Stdout
	if *out != "-" {
		f, err := os.Create(*out)
		if err != nil {
			cliutil.Fatal(name, err)
		}
		defer func() {
			if err := f.Close(); err != nil {
				cliutil.Fatal(name, err)
			}
		}()
		w = f
	}
	type eventWriter interface {
		Write(trace.Event) error
		Close(funcCalls, nonHeapRefs int64) error
	}
	var ew eventWriter
	if *text {
		ew, err = trace.NewTextWriter(w, src.Meta(), src.Table())
	} else {
		ew, err = lifetime.NewTraceStreamWriter(w, src.Meta(), src.Table())
	}
	if err != nil {
		cliutil.Fatal(name, err)
	}

	acc := trace.NewStatsAccum()
	for {
		ev, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			cliutil.Fatal(name, err)
		}
		if err := ew.Write(ev); err != nil {
			cliutil.Fatal(name, err)
		}
		if err := acc.Add(ev); err != nil {
			cliutil.Fatal(name, err)
		}
	}
	meta := src.Meta() // trailer totals are final after io.EOF
	if err := ew.Close(meta.FunctionCalls, meta.NonHeapRefs); err != nil {
		cliutil.Fatal(name, err)
	}
	st := acc.Finish(meta.NonHeapRefs)
	fmt.Fprintf(os.Stderr, "lpgen: %s/%s: %d events, %d objects, %d bytes, max live %d bytes\n",
		*program, *input, acc.Events(), st.TotalObjects, st.TotalBytes, st.MaxBytes)
}
