package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/obs"
)

func TestParseThresholds(t *testing.T) {
	ts, err := parseThresholds("sim_bytes_per_op+10%, arena.fallbacks-5%")
	if err != nil {
		t.Fatalf("parseThresholds: %v", err)
	}
	if len(ts) != 2 {
		t.Fatalf("got %d thresholds, want 2", len(ts))
	}
	if ts[0].Name != "sim_bytes_per_op" || !ts[0].Up || ts[0].Pct != 10 {
		t.Errorf("first threshold = %+v", ts[0])
	}
	if ts[1].Name != "arena.fallbacks" || ts[1].Up || ts[1].Pct != 5 {
		t.Errorf("second threshold = %+v", ts[1])
	}
	for _, bad := range []string{"", "noallowance", "x+10", "x+-1%", "+10%"} {
		if _, err := parseThresholds(bad); err == nil {
			t.Errorf("parseThresholds(%q) accepted", bad)
		}
	}
}

func TestThresholdMatchAndViolate(t *testing.T) {
	up := threshold{Name: "sim_bytes_per_op", Pct: 10, Up: true}
	if !up.matches("sim_bytes_per_op") || !up.matches("gawk/arena/true/sim_bytes_per_op") {
		t.Error("threshold does not match its metric spellings")
	}
	if up.matches("other") || up.matches("gawk/arena/true/sim_bytes_per_op2") {
		t.Error("threshold matches foreign metrics")
	}
	if up.violated(100, 109) {
		t.Error("within allowance flagged")
	}
	if !up.violated(100, 111) {
		t.Error("11% increase not flagged at +10%")
	}
	if up.violated(100, 50) {
		t.Error("improvement flagged by an increase gate")
	}
	if !up.violated(0, 1) {
		t.Error("appearance over a zero baseline not flagged")
	}
	down := threshold{Name: "x", Pct: 10, Up: false}
	if !down.violated(100, 89) || down.violated(100, 91) {
		t.Error("decrease gate misfires")
	}
}

func TestCheckThresholds(t *testing.T) {
	d := diff(
		map[string]float64{"a/b/c/m": 100, "n": 5},
		map[string]float64{"a/b/c/m": 120, "n": 5},
	)
	vs := checkThresholds(d, []threshold{{Name: "m", Pct: 10, Up: true}})
	if len(vs) != 1 || !strings.Contains(vs[0], "a/b/c/m") {
		t.Errorf("violations = %v, want one naming a/b/c/m", vs)
	}
	if vs := checkThresholds(d, []threshold{{Name: "n", Pct: 0, Up: true}}); len(vs) != 0 {
		t.Errorf("identical metric violated a 0%% gate: %v", vs)
	}
	// A gate that matches nothing must fail loudly, not pass silently.
	if vs := checkThresholds(d, []threshold{{Name: "ghost", Pct: 1, Up: true}}); len(vs) != 1 {
		t.Errorf("vacuous gate produced %v, want one failure", vs)
	}
}

func TestLoadMetricsSniffsBothFormats(t *testing.T) {
	dir := t.TempDir()

	benchPath := filepath.Join(dir, "bench.json")
	bf, err := os.Create(benchPath)
	if err != nil {
		t.Fatal(err)
	}
	err = core.WriteBench(bf, &core.BenchFile{
		Label: "t", Scale: 0.01,
		Runs: []core.BenchRun{{Model: "gawk", Allocator: "arena", Predictor: "true",
			Metrics: map[string]float64{"sim_ops": 10}}},
	})
	bf.Close()
	if err != nil {
		t.Fatal(err)
	}
	label, m, err := loadMetrics(benchPath)
	if err != nil {
		t.Fatalf("loadMetrics(bench): %v", err)
	}
	if !strings.Contains(label, "bench") || m["gawk/arena/true/sim_ops"] != 10 {
		t.Errorf("bench load: label %q metrics %v", label, m)
	}

	snapPath := filepath.Join(dir, "snap.json")
	sf, err := os.Create(snapPath)
	if err != nil {
		t.Fatal(err)
	}
	col := obs.NewCollector(obs.Options{Label: "gawk/arena"})
	col.Counter("arena.resets").Add(3)
	err = obs.WriteJSON(sf, col.Snapshot())
	sf.Close()
	if err != nil {
		t.Fatal(err)
	}
	label, m, err = loadMetrics(snapPath)
	if err != nil {
		t.Fatalf("loadMetrics(snapshot): %v", err)
	}
	if label != "gawk/arena" || m["arena.resets"] != 3 {
		t.Errorf("snapshot load: label %q metrics %v", label, m)
	}

	badPath := filepath.Join(dir, "bad.json")
	os.WriteFile(badPath, []byte(`{"clock": 1}`), 0o644)
	if _, _, err := loadMetrics(badPath); err == nil {
		t.Error("schemaless file accepted")
	}
}

func TestParseGoBenchDerivesNsPerEvent(t *testing.T) {
	out := `goos: linux
pkg: repro
BenchmarkRunSimStreaming/gawk/arena/10x-8    205   5000000 ns/op   50.0 Mevents/s   250000 events/op   141900 B/op   204 allocs/op
BenchmarkNoEvents-8                          100   1000 ns/op   16 B/op   1 allocs/op
`
	label, m, err := parseGoBench([]byte(out))
	if err != nil {
		t.Fatalf("parseGoBench: %v", err)
	}
	if label != "go-bench repro" {
		t.Errorf("label = %q", label)
	}
	const key = "BenchmarkRunSimStreaming/gawk/arena/10x/ns_per_event"
	if got := m[key]; got != 20 {
		t.Errorf("%s = %v, want 20", key, got)
	}
	if _, ok := m["BenchmarkNoEvents/ns_per_event"]; ok {
		t.Error("ns_per_event derived for a benchmark without events/op")
	}
	// The derived key must be gateable through the suffix grammar.
	vs := checkThresholds(
		diff(map[string]float64{key: 10}, m),
		[]threshold{{Name: "ns_per_event", Pct: 50, Up: true}})
	if len(vs) != 1 {
		t.Errorf("ns_per_event gate produced %v, want one violation", vs)
	}
}

func TestDiff(t *testing.T) {
	d := diff(map[string]float64{"a": 1, "b": 2}, map[string]float64{"b": 3, "c": 4})
	if len(d) != 3 {
		t.Fatalf("diff has %d entries, want 3", len(d))
	}
	// Sorted by name: a (old only), b (changed), c (new only).
	if d[0].Name != "a" || d[0].InNew || d[1].Name != "b" || d[1].Old != 2 || d[1].New != 3 || d[2].Name != "c" || d[2].InOld {
		t.Errorf("diff = %+v", d)
	}
}
