// Command lpdiff compares two observability exports — obs metric
// snapshots (lpsim -obs), bench files (lpbench), or `go test -bench
// -benchmem` text output — and prints per-metric delta and ratio tables.
// With -threshold it becomes a CI perf gate: exit status 1 when any
// matching metric drifts past its allowance, 0 otherwise.
//
// Usage:
//
//	lpdiff old-metrics.json new-metrics.json
//	lpdiff -threshold sim_bytes_per_op+10% BENCH_seed.json new-bench.json
//	lpdiff -threshold "sim_max_heap_bytes+5%,arena.fallbacks+0%" -all a.json b.json
//	lpdiff -threshold allocs_per_op+25% BENCH_streaming.txt fresh.txt
//
// A go-bench text file yields one metric per value/unit column, keyed
// BenchmarkName/sub/benchmark/unit with the GOMAXPROCS suffix stripped
// and / in units rewritten to _per_ (ns/op -> ns_per_op, allocs/op ->
// allocs_per_op), so `allocs_per_op+25%` gates every sub-benchmark's
// allocation count while ignoring machine-dependent wall-clock columns.
//
// A threshold is metric name, then + or -, then a percent allowance:
// name+10% fails when new > old×1.10 (an increase is a regression),
// name-10% fails when new < old×0.90 (a decrease is). The name matches a
// metric exactly or as the last /-separated component of a bench key
// (model/allocator/predictor/metric), so one threshold gates every cell
// of the matrix.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"repro/internal/cliutil"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/table"
)

const name = "lpdiff"

func main() {
	var thresholds []threshold
	flag.Func("threshold", "gate spec name+N% or name-N%, comma lists and repeats allowed", func(s string) error {
		ts, err := parseThresholds(s)
		if err != nil {
			return err
		}
		thresholds = append(thresholds, ts...)
		return nil
	})
	all := flag.Bool("all", false, "list unchanged metrics too")
	cliutil.Parse(name,
		"compare two obs snapshots or bench files; gate regressions with -threshold",
		"lpdiff -threshold sim_bytes_per_op+10% BENCH_seed.json new-bench.json")

	if flag.NArg() != 2 {
		cliutil.UsageError(name, "want exactly two files to compare, got %d", flag.NArg())
	}
	oldPath, newPath := flag.Arg(0), flag.Arg(1)
	oldLabel, oldM, err := loadMetrics(oldPath)
	if err != nil {
		cliutil.Fatal(name, err)
	}
	newLabel, newM, err := loadMetrics(newPath)
	if err != nil {
		cliutil.Fatal(name, err)
	}

	d := diff(oldM, newM)
	fmt.Printf("old: %s (%s, %d metrics)\n", oldPath, oldLabel, len(oldM))
	fmt.Printf("new: %s (%s, %d metrics)\n\n", newPath, newLabel, len(newM))
	printDiff(os.Stdout, d, *all)

	violations := checkThresholds(d, thresholds)
	for _, v := range violations {
		fmt.Printf("FAIL %s\n", v)
	}
	if len(violations) > 0 {
		os.Exit(1)
	}
	if len(thresholds) > 0 {
		fmt.Printf("all %d threshold(s) hold\n", len(thresholds))
	}
}

// metricDelta is one compared metric.
type metricDelta struct {
	Name     string
	Old, New float64
	InOld    bool
	InNew    bool
}

func (d metricDelta) changed() bool { return !d.InOld || !d.InNew || d.Old != d.New }

// diffSet is the full comparison, name-sorted.
type diffSet []metricDelta

// diff aligns two flattened metric maps by name.
func diff(oldM, newM map[string]float64) diffSet {
	names := make(map[string]bool, len(oldM)+len(newM))
	for k := range oldM {
		names[k] = true
	}
	for k := range newM {
		names[k] = true
	}
	out := make(diffSet, 0, len(names))
	for k := range names {
		ov, inOld := oldM[k]
		nv, inNew := newM[k]
		out = append(out, metricDelta{Name: k, Old: ov, New: nv, InOld: inOld, InNew: inNew})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// printDiff renders the comparison: changed metrics (all of them with
// all=true) as a delta/ratio table plus a one-line summary.
func printDiff(w *os.File, d diffSet, all bool) {
	changed, same, onlyOld, onlyNew := 0, 0, 0, 0
	tb := table.New("metric deltas", "Metric", "Old", "New", "Delta", "Ratio")
	for _, m := range d {
		switch {
		case !m.InNew:
			onlyOld++
			continue
		case !m.InOld:
			onlyNew++
			continue
		case m.Old == m.New:
			same++
			if !all {
				continue
			}
		default:
			changed++
		}
		ratio := "-"
		if m.Old != 0 {
			ratio = fmt.Sprintf("%.3f", m.New/m.Old)
		}
		tb.RowStrings(m.Name, formatVal(m.Old), formatVal(m.New),
			formatVal(m.New-m.Old), ratio)
	}
	if changed > 0 || all {
		tb.WriteTo(w)
	}
	if changed == 0 {
		fmt.Fprintf(w, "no metric changed (%d identical)\n", same)
	} else {
		fmt.Fprintf(w, "%d metric(s) changed, %d identical\n", changed, same)
	}
	if onlyOld > 0 || onlyNew > 0 {
		fmt.Fprintf(w, "%d metric(s) only in old, %d only in new\n", onlyOld, onlyNew)
	}
	fmt.Fprintln(w)
}

func formatVal(v float64) string {
	if v == float64(int64(v)) {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', 6, 64)
}

// threshold is one gate: fail when the named metric drifts more than
// Pct percent in the regression direction.
type threshold struct {
	Name string
	Pct  float64
	Up   bool // true: an increase is the regression; false: a decrease
}

func (t threshold) String() string {
	sign := "-"
	if t.Up {
		sign = "+"
	}
	return fmt.Sprintf("%s%s%g%%", t.Name, sign, t.Pct)
}

// parseThresholds parses a comma list of name+N% / name-N% specs.
func parseThresholds(spec string) ([]threshold, error) {
	var out []threshold
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		i := strings.LastIndexAny(part, "+-")
		if i <= 0 {
			return nil, fmt.Errorf("threshold %q: want name+N%% or name-N%%", part)
		}
		pctStr, ok := strings.CutSuffix(part[i+1:], "%")
		if !ok {
			return nil, fmt.Errorf("threshold %q: allowance must end in %%", part)
		}
		pct, err := strconv.ParseFloat(pctStr, 64)
		if err != nil || pct < 0 {
			return nil, fmt.Errorf("threshold %q: bad allowance %q", part, pctStr)
		}
		metric := part[:i]
		if strings.ContainsAny(metric, "+%") {
			return nil, fmt.Errorf("threshold %q: malformed metric name %q", part, metric)
		}
		out = append(out, threshold{Name: metric, Pct: pct, Up: part[i] == '+'})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("threshold %q: empty spec", spec)
	}
	return out, nil
}

// matches reports whether a threshold governs a metric: exact name, or
// the final /-separated component of a bench key.
func (t threshold) matches(metric string) bool {
	return metric == t.Name || strings.HasSuffix(metric, "/"+t.Name)
}

// violated reports whether the old→new movement crosses the threshold.
func (t threshold) violated(old, new float64) bool {
	if t.Up {
		if old == 0 {
			// A percent allowance of zero is zero: any appearance of a
			// nonzero value where the baseline had none is a regression.
			return new > 0
		}
		return new > old*(1+t.Pct/100)
	}
	if old == 0 {
		return new < 0
	}
	return new < old*(1-t.Pct/100)
}

// checkThresholds applies every threshold to every metric present in
// both files and describes each violation.
func checkThresholds(d diffSet, ts []threshold) []string {
	var out []string
	for _, t := range ts {
		matched := false
		for _, m := range d {
			if !m.InOld || !m.InNew || !t.matches(m.Name) {
				continue
			}
			matched = true
			if t.violated(m.Old, m.New) {
				out = append(out, fmt.Sprintf("%s: %s went %s -> %s (allowance %s)",
					t, m.Name, formatVal(m.Old), formatVal(m.New), t))
			}
		}
		if !matched {
			out = append(out, fmt.Sprintf("%s: no metric matches (gate is vacuous)", t))
		}
	}
	return out
}

// loadMetrics sniffs a file as a bench JSON file, an obs snapshot, or
// `go test -bench` text output and returns a label plus its flattened
// metrics. The two JSON formats both carry a schema field, so the sniff
// keys on "runs", which only bench files have; anything that is not
// JSON is tried as go-bench text.
func loadMetrics(path string) (string, map[string]float64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return "", nil, err
	}
	var probe struct {
		Runs json.RawMessage `json:"runs"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		label, m, berr := parseGoBench(data)
		if berr != nil {
			return "", nil, fmt.Errorf("%s: not JSON and %w", path, berr)
		}
		return label, m, nil
	}
	if probe.Runs != nil {
		bench, err := core.ReadBench(bytes.NewReader(data))
		if err != nil {
			return "", nil, fmt.Errorf("%s: %w", path, err)
		}
		return fmt.Sprintf("bench %q scale %g", bench.Label, bench.Scale), bench.Flatten(), nil
	}
	snap, err := obs.ReadJSON(bytes.NewReader(data))
	if err != nil {
		return "", nil, fmt.Errorf("%s is neither a bench file nor an obs snapshot: %w", path, err)
	}
	label := snap.Label
	if label == "" {
		label = "obs snapshot"
	}
	return label, snap.Flatten(), nil
}

// parseGoBench extracts metrics from `go test -bench [-benchmem]` text
// output. Each result line is the benchmark name, an iteration count,
// then value/unit pairs:
//
//	BenchmarkRunSimStreaming/gawk/arena/1x-8  253  4422542 ns/op  69346 B/op  738 allocs/op
//
// The -N GOMAXPROCS suffix is stripped from the name and / in units
// becomes _per_, giving keys like
// BenchmarkRunSimStreaming/gawk/arena/1x/allocs_per_op that the
// suffix-matching threshold grammar can gate across the whole matrix.
//
// A benchmark that reports both ns/op and an events/op custom metric
// additionally yields a derived ns_per_event = ns_per_op / events_per_op
// key. Per-op wall clock moves whenever a benchmark's batch size does,
// so gating it couples the gate to benchmark structure; per-event cost
// is the number that means "the replay engine got slower" regardless of
// how many events one iteration happens to process.
func parseGoBench(data []byte) (string, map[string]float64, error) {
	metrics := map[string]float64{}
	label := "go-bench text"
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if pkg, ok := strings.CutPrefix(line, "pkg: "); ok {
			label = "go-bench " + strings.TrimSpace(pkg)
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 4 {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			unit := strings.ReplaceAll(fields[i+1], "/", "_per_")
			metrics[name+"/"+unit] = v
		}
	}
	if len(metrics) == 0 {
		return "", nil, fmt.Errorf("no go-bench result lines found")
	}
	derived := map[string]float64{}
	for k, ev := range metrics {
		base, ok := strings.CutSuffix(k, "/events_per_op")
		if !ok || ev <= 0 {
			continue
		}
		if ns, ok := metrics[base+"/ns_per_op"]; ok {
			derived[base+"/ns_per_event"] = ns / ev
		}
	}
	for k, v := range derived {
		metrics[k] = v
	}
	return label, metrics, nil
}
