// Command lpreport renders a site database (lpprof's JSON) as a
// human-readable report: summary counts, then the top sites by allocation
// volume with their lifetime quartiles and predictor status — the view a
// programmer tuning an allocator with this tool would read.
//
// Usage:
//
//	lpprof -trace gawk.trc -o sites.json
//	lpreport -sites sites.json -top 20
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/cliutil"
	"repro/internal/profile"
	"repro/internal/table"
)

const name = "lpreport"

func main() {
	sitesPath := flag.String("sites", "", "site database JSON from lpprof")
	top := flag.Int("top", 25, "how many sites to list")
	onlyShort := flag.Bool("short-only", false, "list only admitted short-lived predictor sites")
	cliutil.Parse(name,
		"render a site database as a human-readable report",
		"lpreport -sites sites.json -top 20")

	if *sitesPath == "" {
		cliutil.UsageError(name, "missing -sites")
	}
	f, err := os.Open(*sitesPath)
	if err != nil {
		cliutil.Fatal(name, err)
	}
	defer f.Close()

	var db profile.DBFile
	if err := json.NewDecoder(f).Decode(&db); err != nil {
		cliutil.Fatal(name, fmt.Errorf("decoding %s: %w", *sitesPath, err))
	}

	var totalBytes, totalObjects, shortBytes int64
	admitted := 0
	for _, s := range db.Sites {
		totalBytes += s.Bytes
		totalObjects += s.Objects
		if s.Admitted {
			admitted++
			shortBytes += s.Bytes
		}
	}
	fmt.Printf("site database: %s\n", db.Program)
	fmt.Printf("threshold:     %d bytes  rounding: %d  chain: %s\n",
		db.Config.ShortThreshold, db.Config.SizeRounding, chainMode(db.Config))
	fmt.Printf("sites:         %d total, %d admitted as short-lived predictors\n",
		len(db.Sites), admitted)
	if totalBytes > 0 {
		fmt.Printf("coverage:      %.1f%% of %d allocated bytes land at predictor sites\n\n",
			100*float64(shortBytes)/float64(totalBytes), totalBytes)
	}

	tb := table.New(fmt.Sprintf("top %d sites by volume", *top),
		"Site", "Size", "Objects", "Bytes", "Life p25", "p50", "p75", "Max life", "Short?")
	listed := 0
	for _, s := range db.Sites {
		if *onlyShort && !s.Admitted {
			continue
		}
		if listed >= *top {
			break
		}
		listed++
		q := func(i int) string {
			if i < len(s.Quantiles) {
				return fmt.Sprintf("%.0f", s.Quantiles[i])
			}
			return "-"
		}
		mark := ""
		if s.Admitted {
			mark = "yes"
		}
		tb.RowStrings(
			abbrevChain(s.Chain),
			fmt.Sprintf("%d", s.Size),
			fmt.Sprintf("%d", s.Objects),
			fmt.Sprintf("%d", s.Bytes),
			q(1), q(2), q(3),
			fmt.Sprintf("%d", s.MaxLifetime),
			mark)
	}
	tb.WriteTo(os.Stdout)
}

// abbrevChain renders a chain compactly, eliding the middle of deep ones.
func abbrevChain(names []string) string {
	if len(names) <= 4 {
		return strings.Join(names, ">")
	}
	return names[0] + ">..>" + strings.Join(names[len(names)-3:], ">")
}

func chainMode(cfg profile.Config) string {
	switch {
	case cfg.SizeOnly:
		return "size-only"
	case cfg.ChainLength > 0:
		return fmt.Sprintf("length-%d", cfg.ChainLength)
	default:
		return "complete (recursion eliminated)"
	}
}
