// Package quantile implements the P-square (P²) algorithm of Jain and
// Chlamtac (CACM 1985) for dynamic estimation of quantiles and quantile
// histograms without storing observations.
//
// The paper under reproduction (Barrett & Zorn, PLDI 1993, §4.1) uses this
// algorithm to summarize the lifetime distribution of every allocation site
// with constant memory: "We use Jain's algorithm because it allows us to
// compute the quantiles with minimal storage requirements."
//
// Two front ends are provided:
//
//   - Estimator tracks a single p-quantile with five markers.
//   - Histogram tracks a B-cell equiprobable histogram (B+1 markers), which
//     is what the lifetime quantile histograms in the paper use.
//
// An exact, sort-based reference implementation (Exact) is included for
// testing and for small data sets where exactness matters.
package quantile

import (
	"fmt"
	"math"
	"sort"
)

// markers is the shared P² machinery: a set of markers whose heights
// estimate the quantiles at fixed cumulative probabilities.
type markers struct {
	probs []float64 // desired cumulative probabilities, ascending, probs[0]=0, probs[last]=1
	q     []float64 // marker heights (quantile estimates)
	n     []float64 // actual marker positions (1-based counts)
	np    []float64 // desired marker positions
	count int       // observations seen so far
	init  []float64 // buffer for the first len(probs) observations
}

func newMarkers(probs []float64) *markers {
	m := &markers{
		probs: probs,
		q:     make([]float64, len(probs)),
		n:     make([]float64, len(probs)),
		np:    make([]float64, len(probs)),
		init:  make([]float64, 0, len(probs)),
	}
	return m
}

// add incorporates one observation.
func (m *markers) add(x float64) {
	k := len(m.probs)
	m.count++
	if len(m.init) < k {
		m.init = append(m.init, x)
		if len(m.init) == k {
			sort.Float64s(m.init)
			copy(m.q, m.init)
			for i := range m.n {
				m.n[i] = float64(i + 1)
			}
			m.updateDesired()
		}
		return
	}

	// Find the cell containing x and clamp extremes.
	var cell int
	switch {
	case x < m.q[0]:
		m.q[0] = x
		cell = 0
	case x >= m.q[k-1]:
		if x > m.q[k-1] {
			m.q[k-1] = x
		}
		cell = k - 2
	default:
		// q[cell] <= x < q[cell+1]
		cell = sort.SearchFloat64s(m.q, x)
		if cell > 0 && m.q[cell] != x {
			cell--
		}
		if cell >= k-1 {
			cell = k - 2
		}
		// SearchFloat64s finds the leftmost insertion point; with
		// duplicate marker heights we may land one high. Normalize so
		// that q[cell] <= x.
		for cell > 0 && m.q[cell] > x {
			cell--
		}
	}

	// Increment positions of markers above the cell.
	for i := cell + 1; i < k; i++ {
		m.n[i]++
	}
	m.updateDesired()

	// Adjust interior markers toward their desired positions.
	for i := 1; i < k-1; i++ {
		d := m.np[i] - m.n[i]
		if (d >= 1 && m.n[i+1]-m.n[i] > 1) || (d <= -1 && m.n[i-1]-m.n[i] < -1) {
			sign := 1.0
			if d < 0 {
				sign = -1.0
			}
			qNew := m.parabolic(i, sign)
			if m.q[i-1] < qNew && qNew < m.q[i+1] {
				m.q[i] = qNew
			} else {
				m.q[i] = m.linear(i, sign)
			}
			m.n[i] += sign
		}
	}
}

func (m *markers) updateDesired() {
	nf := float64(m.count)
	for i, p := range m.probs {
		m.np[i] = 1 + p*(nf-1)
	}
}

// parabolic applies the piecewise-parabolic (P²) prediction formula.
func (m *markers) parabolic(i int, d float64) float64 {
	num1 := m.n[i] - m.n[i-1] + d
	num2 := m.n[i+1] - m.n[i] - d
	den := m.n[i+1] - m.n[i-1]
	t1 := (m.q[i+1] - m.q[i]) / (m.n[i+1] - m.n[i])
	t2 := (m.q[i] - m.q[i-1]) / (m.n[i] - m.n[i-1])
	return m.q[i] + (d/den)*(num1*t1+num2*t2)
}

// linear falls back to linear interpolation toward the neighbor in
// direction d when the parabolic estimate would be non-monotonic.
func (m *markers) linear(i int, d float64) float64 {
	j := i + int(d)
	return m.q[i] + d*(m.q[j]-m.q[i])/(m.n[j]-m.n[i])
}

// quantileAt reports the current estimate for probability p by
// interpolating between markers. Requires at least one observation.
func (m *markers) quantileAt(p float64) float64 {
	k := len(m.probs)
	if m.count == 0 {
		return math.NaN()
	}
	if len(m.init) < k {
		// Fewer observations than markers: answer exactly.
		tmp := append([]float64(nil), m.init...)
		sort.Float64s(tmp)
		return exactSorted(tmp, p)
	}
	if p <= m.probs[0] {
		return m.q[0]
	}
	if p >= m.probs[k-1] {
		return m.q[k-1]
	}
	i := sort.SearchFloat64s(m.probs, p)
	if m.probs[i] == p {
		return m.q[i]
	}
	// Interpolate between markers i-1 and i.
	lo, hi := m.probs[i-1], m.probs[i]
	frac := (p - lo) / (hi - lo)
	return m.q[i-1] + frac*(m.q[i]-m.q[i-1])
}

// Estimator estimates a single p-quantile online with five markers.
type Estimator struct {
	p float64
	m *markers
}

// NewEstimator returns an estimator for the p-quantile, 0 < p < 1.
func NewEstimator(p float64) (*Estimator, error) {
	if !(p > 0 && p < 1) {
		return nil, fmt.Errorf("quantile: p = %v outside (0, 1)", p)
	}
	return &Estimator{
		p: p,
		m: newMarkers([]float64{0, p / 2, p, (1 + p) / 2, 1}),
	}, nil
}

// Add incorporates one observation.
func (e *Estimator) Add(x float64) { e.m.add(x) }

// Count reports the number of observations added.
func (e *Estimator) Count() int { return e.m.count }

// Quantile returns the current estimate of the p-quantile. It returns NaN
// before any observation is added.
func (e *Estimator) Quantile() float64 { return e.m.quantileAt(e.p) }

// Histogram is an equiprobable B-cell P² quantile histogram: the extended
// form of the algorithm described in §III of Jain & Chlamtac, and the form
// the paper attaches to every allocation site.
type Histogram struct {
	cells int
	m     *markers
}

// NewHistogram returns a quantile histogram with the given number of
// equiprobable cells (at least 2).
func NewHistogram(cells int) (*Histogram, error) {
	if cells < 2 {
		return nil, fmt.Errorf("quantile: histogram needs >= 2 cells, got %d", cells)
	}
	probs := make([]float64, cells+1)
	for i := range probs {
		probs[i] = float64(i) / float64(cells)
	}
	return &Histogram{cells: cells, m: newMarkers(probs)}, nil
}

// Add incorporates one observation.
func (h *Histogram) Add(x float64) { h.m.add(x) }

// Count reports the number of observations added.
func (h *Histogram) Count() int { return h.m.count }

// Cells reports the number of equiprobable cells.
func (h *Histogram) Cells() int { return h.cells }

// Min returns the smallest observation seen, or NaN if empty.
func (h *Histogram) Min() float64 { return h.m.quantileAt(0) }

// Max returns the largest observation seen, or NaN if empty.
func (h *Histogram) Max() float64 { return h.m.quantileAt(1) }

// Quantile returns the estimated p-quantile for p in [0, 1].
// It returns NaN before any observation is added.
func (h *Histogram) Quantile(p float64) float64 {
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	return h.m.quantileAt(p)
}

// Markers returns copies of the marker probabilities and heights, useful
// for serialization and display.
func (h *Histogram) Markers() (probs, heights []float64) {
	probs = append([]float64(nil), h.m.probs...)
	if len(h.m.init) < len(h.m.probs) {
		// Not yet initialized: synthesize from exact values.
		heights = make([]float64, len(probs))
		tmp := append([]float64(nil), h.m.init...)
		sort.Float64s(tmp)
		for i, p := range probs {
			heights[i] = exactSorted(tmp, p)
		}
		return probs, heights
	}
	heights = append([]float64(nil), h.m.q...)
	return probs, heights
}

// Exact is a sort-based exact quantile computation, used as the test oracle
// for the P² estimators and wherever the data set is small.
type Exact struct {
	xs     []float64
	sorted bool
}

// Add incorporates one observation.
func (e *Exact) Add(x float64) {
	e.xs = append(e.xs, x)
	e.sorted = false
}

// Count reports the number of observations added.
func (e *Exact) Count() int { return len(e.xs) }

// Quantile returns the exact p-quantile with linear interpolation.
// It returns NaN when empty.
func (e *Exact) Quantile(p float64) float64 {
	if !e.sorted {
		sort.Float64s(e.xs)
		e.sorted = true
	}
	return exactSorted(e.xs, p)
}

// exactSorted returns the p-quantile of a sorted slice with linear
// interpolation between order statistics, NaN when empty.
func exactSorted(sorted []float64, p float64) float64 {
	n := len(sorted)
	if n == 0 {
		return math.NaN()
	}
	if n == 1 {
		return sorted[0]
	}
	if p <= 0 {
		return sorted[0]
	}
	if p >= 1 {
		return sorted[n-1]
	}
	pos := p * float64(n-1)
	i := int(pos)
	frac := pos - float64(i)
	if i+1 >= n {
		return sorted[n-1]
	}
	// (1-frac)*a + frac*b avoids overflow when a and b have opposite
	// signs and extreme magnitudes.
	return (1-frac)*sorted[i] + frac*sorted[i+1]
}
