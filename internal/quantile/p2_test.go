package quantile

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func TestEstimatorRejectsBadP(t *testing.T) {
	for _, p := range []float64{0, 1, -0.5, 1.5, math.NaN()} {
		if _, err := NewEstimator(p); err == nil {
			t.Errorf("NewEstimator(%v) accepted invalid p", p)
		}
	}
}

func TestEstimatorEmptyIsNaN(t *testing.T) {
	e, err := NewEstimator(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(e.Quantile()) {
		t.Fatalf("empty estimator quantile = %v, want NaN", e.Quantile())
	}
}

func TestEstimatorExactForFewObservations(t *testing.T) {
	e, _ := NewEstimator(0.5)
	e.Add(10)
	e.Add(30)
	e.Add(20)
	// With fewer observations than markers the estimate must be exact.
	if got := e.Quantile(); got != 20 {
		t.Fatalf("median of {10,20,30} = %v, want 20", got)
	}
}

// paperExample is the worked example from Jain & Chlamtac's paper: 20
// observations tracking the median. Their final estimate is ~4.44.
func TestEstimatorPaperExample(t *testing.T) {
	obs := []float64{
		0.02, 0.15, 0.74, 3.39, 0.83, 22.37, 10.15, 15.43, 38.62, 15.92,
		34.60, 10.28, 1.47, 0.40, 0.05, 11.39, 0.27, 0.42, 0.09, 11.37,
	}
	e, _ := NewEstimator(0.5)
	for _, x := range obs {
		e.Add(x)
	}
	got := e.Quantile()
	if math.Abs(got-4.44) > 0.02 {
		t.Fatalf("P2 median on Jain-Chlamtac example = %.4f, want ~4.44", got)
	}
}

func TestEstimatorUniformAccuracy(t *testing.T) {
	r := xrand.New(101)
	for _, p := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99} {
		e, _ := NewEstimator(p)
		ex := &Exact{}
		for i := 0; i < 50000; i++ {
			x := r.Float64() * 1000
			e.Add(x)
			ex.Add(x)
		}
		got, want := e.Quantile(), ex.Quantile(p)
		if math.Abs(got-want) > 15 { // 1.5% of the range
			t.Errorf("p=%v: P2=%.2f exact=%.2f", p, got, want)
		}
	}
}

func TestEstimatorExponentialAccuracy(t *testing.T) {
	r := xrand.New(103)
	e, _ := NewEstimator(0.5)
	for i := 0; i < 100000; i++ {
		e.Add(r.Exp(100))
	}
	// True median of Exp(mean=100) is 100*ln2 ~ 69.3.
	got := e.Quantile()
	if math.Abs(got-69.3) > 5 {
		t.Fatalf("exponential median: got %.2f, want ~69.3", got)
	}
}

func TestHistogramRejectsTooFewCells(t *testing.T) {
	for _, c := range []int{-1, 0, 1} {
		if _, err := NewHistogram(c); err == nil {
			t.Errorf("NewHistogram(%d) accepted invalid cell count", c)
		}
	}
}

func TestHistogramMinMaxExact(t *testing.T) {
	h, _ := NewHistogram(4)
	r := xrand.New(107)
	min, max := math.Inf(1), math.Inf(-1)
	for i := 0; i < 10000; i++ {
		x := r.Float64()*500 + 3
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
		h.Add(x)
	}
	// Extremes are tracked exactly by the P2 algorithm.
	if h.Min() != min {
		t.Errorf("Min: got %v, want %v", h.Min(), min)
	}
	if h.Max() != max {
		t.Errorf("Max: got %v, want %v", h.Max(), max)
	}
}

func TestHistogramQuartilesUniform(t *testing.T) {
	h, _ := NewHistogram(8)
	ex := &Exact{}
	r := xrand.New(109)
	for i := 0; i < 50000; i++ {
		x := r.Float64() * 1000
		h.Add(x)
		ex.Add(x)
	}
	for _, p := range []float64{0.25, 0.5, 0.75} {
		got, want := h.Quantile(p), ex.Quantile(p)
		if math.Abs(got-want) > 15 {
			t.Errorf("p=%v: histogram=%.2f exact=%.2f", p, got, want)
		}
	}
}

func TestHistogramSkewedDistribution(t *testing.T) {
	// Object lifetimes are heavily skewed; make sure the histogram stays
	// ordered and roughly right on a Pareto distribution.
	h, _ := NewHistogram(4)
	ex := &Exact{}
	r := xrand.New(113)
	for i := 0; i < 50000; i++ {
		x := r.Pareto(1.2, 16)
		h.Add(x)
		ex.Add(x)
	}
	probs, heights := h.Markers()
	for i := 1; i < len(heights); i++ {
		if heights[i] < heights[i-1] {
			t.Fatalf("marker heights not monotone at %d: %v", i, heights)
		}
	}
	if len(probs) != 5 {
		t.Fatalf("4-cell histogram has %d markers, want 5", len(probs))
	}
	// The median should be within a factor of 1.3 of exact even on a
	// heavy-tailed input.
	got, want := h.Quantile(0.5), ex.Quantile(0.5)
	if got < want/1.3 || got > want*1.3 {
		t.Errorf("Pareto median: histogram=%.2f exact=%.2f", got, want)
	}
}

func TestHistogramCountAndCells(t *testing.T) {
	h, _ := NewHistogram(4)
	for i := 0; i < 17; i++ {
		h.Add(float64(i))
	}
	if h.Count() != 17 {
		t.Fatalf("Count = %d, want 17", h.Count())
	}
	if h.Cells() != 4 {
		t.Fatalf("Cells = %d, want 4", h.Cells())
	}
}

func TestHistogramFewObservationsExact(t *testing.T) {
	h, _ := NewHistogram(4)
	h.Add(5)
	h.Add(1)
	h.Add(9)
	if got := h.Quantile(0.5); got != 5 {
		t.Fatalf("median of {1,5,9} = %v, want 5", got)
	}
	if h.Min() != 1 || h.Max() != 9 {
		t.Fatalf("min/max = %v/%v, want 1/9", h.Min(), h.Max())
	}
}

func TestHistogramConstantInput(t *testing.T) {
	h, _ := NewHistogram(4)
	for i := 0; i < 1000; i++ {
		h.Add(42)
	}
	for _, p := range []float64{0, 0.25, 0.5, 0.75, 1} {
		if got := h.Quantile(p); got != 42 {
			t.Fatalf("constant input: Quantile(%v) = %v, want 42", p, got)
		}
	}
}

func TestHistogramTwoValues(t *testing.T) {
	h, _ := NewHistogram(4)
	for i := 0; i < 500; i++ {
		h.Add(10)
		h.Add(20)
	}
	if h.Min() != 10 || h.Max() != 20 {
		t.Fatalf("min/max = %v/%v", h.Min(), h.Max())
	}
	med := h.Quantile(0.5)
	if med < 10 || med > 20 {
		t.Fatalf("median of bimodal {10,20} = %v, out of range", med)
	}
}

func TestExactQuantiles(t *testing.T) {
	e := &Exact{}
	for _, v := range []float64{4, 1, 3, 2} {
		e.Add(v)
	}
	cases := []struct{ p, want float64 }{
		{0, 1}, {1, 4}, {0.5, 2.5}, {0.25, 1.75}, {1.0 / 3.0, 2},
	}
	for _, c := range cases {
		if got := e.Quantile(c.p); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Exact.Quantile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
}

func TestExactEmptyNaN(t *testing.T) {
	e := &Exact{}
	if !math.IsNaN(e.Quantile(0.5)) {
		t.Fatal("empty Exact quantile should be NaN")
	}
}

func TestExactAddAfterQuery(t *testing.T) {
	e := &Exact{}
	e.Add(1)
	_ = e.Quantile(0.5)
	e.Add(0) // must re-sort
	if got := e.Quantile(0); got != 0 {
		t.Fatalf("min after post-query add = %v, want 0", got)
	}
}

// Property: P2 marker heights always bracket and stay ordered, and the
// estimated quantile lies within [min, max] of the observations.
func TestQuickHistogramInvariants(t *testing.T) {
	f := func(seed uint64, raw []float64) bool {
		h, _ := NewHistogram(4)
		min, max := math.Inf(1), math.Inf(-1)
		n := 0
		for _, x := range raw {
			// Lifetimes are bytes-allocated counts; restrict the
			// property to the magnitudes the estimator is used on.
			if math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) > 1e15 {
				continue
			}
			h.Add(x)
			n++
			if x < min {
				min = x
			}
			if x > max {
				max = x
			}
		}
		if n == 0 {
			return true
		}
		for _, p := range []float64{0, 0.25, 0.5, 0.75, 1} {
			q := h.Quantile(p)
			if q < min-1e-9 || q > max+1e-9 {
				return false
			}
		}
		_, heights := h.Markers()
		for i := 1; i < len(heights); i++ {
			if heights[i] < heights[i-1]-1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: on sorted-free random input, the P2 median converges to within
// a loose band of the exact median for moderately sized samples.
func TestQuickMedianReasonable(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		e, _ := NewEstimator(0.5)
		ex := &Exact{}
		for i := 0; i < 2000; i++ {
			x := r.Float64() * 100
			e.Add(x)
			ex.Add(x)
		}
		return math.Abs(e.Quantile()-ex.Quantile(0.5)) < 10
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkHistogramAdd(b *testing.B) {
	h, _ := NewHistogram(4)
	r := xrand.New(1)
	xs := make([]float64, 1024)
	for i := range xs {
		xs[i] = r.Exp(1000)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Add(xs[i&1023])
	}
}

func BenchmarkEstimatorAdd(b *testing.B) {
	e, _ := NewEstimator(0.9)
	r := xrand.New(1)
	xs := make([]float64, 1024)
	for i := range xs {
		xs[i] = r.Exp(1000)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Add(xs[i&1023])
	}
}
