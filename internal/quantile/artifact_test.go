package quantile

import (
	"testing"

	"repro/internal/xrand"
)

// TestP2AccurateOnGhostLikeMixture probes the measurement artifact the
// paper footnotes under its own Table 3: "actual measurements show that
// the true 75% quantile for GHOST should be less than 32,000, but the
// quantile histogram approximates this value as 393,531" — a ~12x
// overestimate on a heavy-tailed lifetime distribution.
//
// Interestingly, a single well-conditioned 4-cell P² histogram does NOT
// reproduce that failure: on a GHOST-like mixture (97% of mass below ~31K,
// 3% Pareto tail to 90M) its 75% marker tracks the exact quantile within a
// fraction of a percent. This test pins that down, which localizes the
// paper's artifact to something other than the core P² update — most
// plausibly the aggregation of many per-site histogram approximations into
// a program-level quantile (their pipeline), or an implementation detail.
// Our Table 3 uses exact byte-weighted quantiles, so the artifact does not
// arise at all; see EXPERIMENTS.md.
func TestP2AccurateOnGhostLikeMixture(t *testing.T) {
	r := xrand.New(1993)
	h, err := NewHistogram(4)
	if err != nil {
		t.Fatal(err)
	}
	ex := &Exact{}
	for i := 0; i < 200000; i++ {
		var v float64
		if r.Bool(0.97) {
			v = r.Exp(9000)
			if v > 31000 {
				v = 31000
			}
		} else {
			v = r.Pareto(1.1, 2e6)
			if v > 9e7 {
				v = 9e7
			}
		}
		h.Add(v)
		ex.Add(v)
	}
	exact75 := ex.Quantile(0.75)
	approx75 := h.Quantile(0.75)
	if exact75 >= 32000 {
		t.Fatalf("test distribution wrong: exact 75%% = %.0f, want < 32000", exact75)
	}
	// Our P2 stays within 20% of exact where the paper's pipeline was
	// off by 12x.
	if approx75 > exact75*1.2 || approx75 < exact75/1.2 {
		t.Fatalf("P2 75%% = %.0f vs exact %.0f: drifted beyond 20%%", approx75, exact75)
	}
	t.Logf("exact 75%% = %.0f, P2 75%% = %.0f (paper's pipeline reported 393531 vs <32000 here)",
		exact75, approx75)
}
