package heapsim

import (
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/trace"
)

// TestObservedFirstFit checks that an observed first-fit run records
// search lengths, splits, coalesces, extends, and heap-grow/coalesce
// events — and that observation never changes allocator behaviour.
func TestObservedFirstFit(t *testing.T) {
	plain := NewFirstFit()
	observed := NewFirstFit()
	col := obs.NewCollector(obs.Options{})
	observed.Observe(col)

	for _, a := range []Allocator{plain, observed} {
		mustAlloc(t, a, 1, 100, false)
		mustAlloc(t, a, 2, 200, false)
		mustAlloc(t, a, 3, 300, false)
		mustFree(t, a, 2)
		mustAlloc(t, a, 4, 50, false) // splits the freed block
		mustFree(t, a, 1)
		mustFree(t, a, 3)
		mustFree(t, a, 4) // coalesces
	}
	if plain.HeapSize() != observed.HeapSize() {
		t.Errorf("observed heap %d != plain heap %d", observed.HeapSize(), plain.HeapSize())
	}
	if plain.Counts() != observed.Counts() {
		t.Errorf("observed ops %+v != plain ops %+v", observed.Counts(), plain.Counts())
	}

	s := col.Snapshot()
	if s.Counters["firstfit.splits"] == 0 {
		t.Error("no splits counted")
	}
	if s.Counters["firstfit.coalesces"] == 0 {
		t.Error("no coalesces counted")
	}
	if s.Counters["firstfit.extends"] == 0 {
		t.Error("no extends counted")
	}
	if h := s.Histograms["firstfit.search_len"]; h.Count != 4 {
		t.Errorf("search_len count = %d, want 4 (one per alloc)", h.Count)
	}
	if h := s.Histograms["firstfit.alloc_size"]; h.Count != 4 || h.Max != 300 {
		t.Errorf("alloc_size count=%d max=%d, want 4/300", h.Count, h.Max)
	}
	if s.Events.Counts["heap_grow"] == 0 {
		t.Error("no heap_grow events")
	}
	if s.Events.Counts["coalesce"] == 0 {
		t.Error("no coalesce events")
	}
}

// TestObservedBestFit checks best-fit metrics land under the "bestfit."
// prefix, not "firstfit.".
func TestObservedBestFit(t *testing.T) {
	b := NewBestFit()
	col := obs.NewCollector(obs.Options{})
	b.Observe(col)
	mustAlloc(t, b, 1, 100, false)
	mustAlloc(t, b, 2, 200, false)
	mustFree(t, b, 1)
	mustFree(t, b, 2)

	s := col.Snapshot()
	if h := s.Histograms["bestfit.alloc_size"]; h.Count != 2 {
		t.Errorf("bestfit.alloc_size count = %d, want 2", h.Count)
	}
	if h := s.Histograms["bestfit.search_len"]; h.Count != 2 {
		t.Errorf("bestfit.search_len count = %d, want 2", h.Count)
	}
	for name := range s.Histograms {
		if strings.HasPrefix(name, "firstfit.") {
			t.Errorf("best-fit recorded under %q", name)
		}
	}
}

// TestObservedBSD checks the BSD simulator's bucket histogram and slab
// carve events.
func TestObservedBSD(t *testing.T) {
	b := NewBSD()
	col := obs.NewCollector(obs.Options{})
	b.Observe(col)
	mustAlloc(t, b, 1, 100, false)
	mustAlloc(t, b, 2, 2000, false)
	mustFree(t, b, 1)

	s := col.Snapshot()
	if h := s.Histograms["bsd.bucket"]; h.Count != 2 {
		t.Errorf("bsd.bucket count = %d, want 2", h.Count)
	}
	if s.Counters["bsd.carves"] == 0 {
		t.Error("no carves counted")
	}
	if s.Events.Counts["heap_grow"] == 0 {
		t.Error("no heap_grow events on slab carve")
	}
}

// TestObservedArena checks arena reuse/overflow events, the pinned gauge,
// and the occupancy probe.
func TestObservedArena(t *testing.T) {
	a := NewArena()
	col := obs.NewCollector(obs.Options{})
	a.Observe(col)

	// Fill one arena with predicted-short objects, free them, then force
	// arena reuse by allocating past the arena boundary.
	id := trace.ObjectID(1)
	var ids []trace.ObjectID
	for used := int64(0); used+512 <= a.ArenaSize; used += 512 {
		mustAlloc(t, a, id, 512, true)
		ids = append(ids, id)
		id++
	}
	if got := a.ArenaOccupancy(); got <= 0 {
		t.Errorf("occupancy = %g, want > 0 with a pinned arena", got)
	}
	for _, i := range ids {
		mustFree(t, a, i)
	}
	for j := 0; j < a.NumArenas*8; j++ {
		mustAlloc(t, a, id, a.ArenaSize/2, true)
		mustFree(t, a, id)
		id++
	}

	s := col.Snapshot()
	if s.Events.Counts["arena_reuse"] == 0 {
		t.Error("no arena_reuse events")
	}
	if s.Counters["arena.resets"] == 0 {
		t.Error("no resets counted")
	}
	if g := s.Gauges["arena.pinned"]; g.Max == 0 {
		t.Error("pinned gauge never rose")
	}
	if h := s.Histograms["arena.alloc_size"]; h.Count == 0 {
		t.Error("no arena alloc sizes recorded")
	}

	// Pin every arena to force the overflow/fallback path.
	b := NewArena()
	col2 := obs.NewCollector(obs.Options{})
	b.Observe(col2)
	id = 1
	for i := 0; i <= b.NumArenas; i++ {
		mustAlloc(t, b, id, b.ArenaSize-16, true)
		id++
	}
	s2 := col2.Snapshot()
	if s2.Events.Counts["arena_overflow"] == 0 {
		t.Error("no arena_overflow event when every arena is pinned")
	}
	if s2.Counters["arena.fallbacks"] == 0 {
		t.Error("no fallbacks counted")
	}
}

// TestObservedSiteArenaDemotion pins one site's pool with never-freed
// objects until online demotion revokes its prediction, and checks the
// predictor_miss event fires.
func TestObservedSiteArenaDemotion(t *testing.T) {
	sa := NewSiteArena()
	col := obs.NewCollector(obs.Options{})
	sa.Observe(col)

	const site = 7
	id := trace.ObjectID(1)
	// Fill the site's pool (ArenasPerSite arenas) with live objects.
	poolBytes := int64(sa.ArenasPerSite) * sa.ArenaSize
	for used := int64(0); used < poolBytes+sa.ArenaSize; used += 512 {
		if err := sa.AllocAt(id, 512, site); err != nil {
			t.Fatalf("AllocAt: %v", err)
		}
		id++
	}
	// The pool is pinned; repeated allocations strike the owner until it
	// is demoted.
	for i := 0; i < sa.DemoteAfter+2; i++ {
		if err := sa.AllocAt(id, 512, site); err != nil {
			t.Fatalf("AllocAt (pinned): %v", err)
		}
		id++
	}

	s := col.Snapshot()
	if s.Counters["sitearena.demotions"] == 0 {
		t.Error("polluting site was never demoted")
	}
	if s.Events.Counts["predictor_miss"] == 0 {
		t.Error("no predictor_miss event on demotion")
	}
	if s.Events.Counts["arena_overflow"] == 0 {
		t.Error("no arena_overflow events while the pool was pinned")
	}
	if h := s.Histograms["sitearena.alloc_size"]; h.Count == 0 {
		t.Error("no sitearena alloc sizes recorded")
	}
	if occ := sa.ArenaOccupancy(); occ <= 0 || occ > 1 {
		t.Errorf("occupancy = %g, want in (0,1]", occ)
	}
}

// TestErrorsNameAllocator checks the satellite: double-alloc and
// unknown-free errors identify which allocator raised them.
func TestErrorsNameAllocator(t *testing.T) {
	cases := []struct {
		name  string
		alloc Allocator
	}{
		{"firstfit", NewFirstFit()},
		{"bestfit", NewBestFit()},
		{"bsd", NewBSD()},
		{"arena", NewArena()},
		{"sitearena", NewSiteArena()},
		{"custom", NewCustom([]int64{64})},
	}
	for _, c := range cases {
		mustAlloc(t, c.alloc, 1, 64, false)
		err := c.alloc.Alloc(1, 64, false)
		if err == nil {
			t.Errorf("%s: double alloc accepted", c.name)
		} else if !strings.Contains(err.Error(), c.name) {
			t.Errorf("%s: double-alloc error %q does not name the allocator", c.name, err)
		}
		err = c.alloc.Free(999)
		if err == nil {
			t.Errorf("%s: unknown free accepted", c.name)
		} else if !strings.Contains(err.Error(), c.name) {
			t.Errorf("%s: unknown-free error %q does not name the allocator", c.name, err)
		}
	}
}

// TestObserveDetach checks a nil collector detaches instrumentation.
func TestObserveDetach(t *testing.T) {
	ff := NewFirstFit()
	col := obs.NewCollector(obs.Options{})
	ff.Observe(col)
	mustAlloc(t, ff, 1, 64, false)
	ff.Observe(nil)
	mustAlloc(t, ff, 2, 64, false)
	s := col.Snapshot()
	if h := s.Histograms["firstfit.alloc_size"]; h.Count != 1 {
		t.Errorf("after detach, alloc_size count = %d, want 1", h.Count)
	}
}
