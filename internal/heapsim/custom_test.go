package heapsim

import (
	"testing"

	"repro/internal/trace"
)

func TestCustomFastPath(t *testing.T) {
	c := NewCustom([]int64{16, 32})
	mustAlloc(t, c, 1, 16, false)
	mustAlloc(t, c, 2, 30, false)  // rounds to 32: hot
	mustAlloc(t, c, 3, 100, false) // cold: general heap
	if got := c.Counts().BSDCarves; got != 2 {
		t.Fatalf("carves = %d, want 2", got)
	}
	if c.General.LiveObjects() != 1 {
		t.Fatalf("general heap holds %d objects, want 1", c.General.LiveObjects())
	}
	a1, ok := c.Addr(1)
	if !ok || a1 < customBase {
		t.Fatalf("hot object at %d", a1)
	}
	if frac := c.FastPathFrac(); frac < 0.6 || frac > 0.7 {
		t.Fatalf("fast-path fraction %.2f, want 2/3", frac)
	}
}

func TestCustomExactReuse(t *testing.T) {
	c := NewCustom([]int64{64})
	mustAlloc(t, c, 1, 64, false)
	a1, _ := c.Addr(1)
	mustFree(t, c, 1)
	mustAlloc(t, c, 2, 64, false)
	a2, _ := c.Addr(2)
	if a1 != a2 {
		t.Fatalf("LIFO exact-size reuse failed: %d vs %d", a1, a2)
	}
	heap := c.HeapSize()
	// Churning the hot size never grows the heap.
	for i := trace.ObjectID(10); i < 1000; i++ {
		mustAlloc(t, c, i, 64, false)
		mustFree(t, c, i)
	}
	if c.HeapSize() != heap {
		t.Fatalf("hot churn grew heap from %d to %d", heap, c.HeapSize())
	}
}

func TestCustomSlabCapacity(t *testing.T) {
	c := NewCustom([]int64{64})
	// One 4KB slab holds 64 chunks of 64B.
	for i := trace.ObjectID(0); i < 64; i++ {
		mustAlloc(t, c, i, 64, false)
	}
	if c.heapEnd != 4<<10 {
		t.Fatalf("slab region %d after 64 chunks, want 4KB", c.heapEnd)
	}
	mustAlloc(t, c, 100, 64, false)
	if c.heapEnd != 8<<10 {
		t.Fatalf("slab region %d after overflow, want 8KB", c.heapEnd)
	}
}

func TestCustomErrors(t *testing.T) {
	c := NewCustom([]int64{16})
	if err := c.Alloc(1, 0, false); err == nil {
		t.Error("zero size accepted")
	}
	mustAlloc(t, c, 1, 16, false)
	if err := c.Alloc(1, 16, false); err == nil {
		t.Error("double alloc accepted")
	}
	if err := c.Free(9); err == nil {
		t.Error("unknown free accepted")
	}
}
