package heapsim

import (
	"testing"

	"repro/internal/trace"
	"repro/internal/xrand"
)

func TestBestFitPicksTightestHole(t *testing.T) {
	bf := NewBestFit()
	// Fill one chunk exactly; object 3 separates the two future holes so
	// they cannot coalesce: 1008+2008+512+1008+3656 = 8192 (all block
	// sizes include the 8-byte header, rounded to 8).
	mustAlloc(t, bf, 1, 1000, false)
	mustAlloc(t, bf, 2, 2000, false)
	mustAlloc(t, bf, 3, 500, false)
	mustAlloc(t, bf, 4, 1000, false)
	mustAlloc(t, bf, 5, 3648, false)
	if bf.HeapSize() != 8<<10 {
		t.Fatalf("heap %d, want one exact chunk", bf.HeapSize())
	}
	// Leave a 2008-byte hole and a 1008-byte hole.
	a4, _ := bf.Addr(4)
	mustFree(t, bf, 2)
	mustFree(t, bf, 4)
	// A 900-byte request fits both; best fit must take the 1008 hole.
	mustAlloc(t, bf, 6, 900, false)
	a6, _ := bf.Addr(6)
	if a6 != a4 {
		t.Fatalf("best fit took %d, want tightest hole at %d", a6, a4)
	}
	if err := bf.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBestFitExactFitShortCircuit(t *testing.T) {
	bf := NewBestFit()
	mustAlloc(t, bf, 1, 1000, false)
	mustAlloc(t, bf, 2, 500, false)
	a1, _ := bf.Addr(1)
	mustFree(t, bf, 1)
	mustAlloc(t, bf, 3, 1000, false) // exact fit for the hole
	a3, _ := bf.Addr(3)
	if a3 != a1 {
		t.Fatalf("exact fit not reused: %d vs %d", a3, a1)
	}
}

func TestBestFitErrors(t *testing.T) {
	bf := NewBestFit()
	if err := bf.Alloc(1, 0, false); err == nil {
		t.Error("zero size accepted")
	}
	mustAlloc(t, bf, 1, 8, false)
	if err := bf.Alloc(1, 8, false); err == nil {
		t.Error("double alloc accepted")
	}
	if err := bf.Free(42); err == nil {
		t.Error("unknown free accepted")
	}
}

func TestBestFitRandomWorkloadInvariants(t *testing.T) {
	r := xrand.New(123)
	bf := NewBestFit()
	live := map[trace.ObjectID]bool{}
	var next trace.ObjectID
	for i := 0; i < 3000; i++ {
		if len(live) > 0 && r.Bool(0.45) {
			for id := range live {
				mustFree(t, bf, id)
				delete(live, id)
				break
			}
		} else {
			mustAlloc(t, bf, next, r.Range(1, 4000), false)
			live[next] = true
			next++
		}
	}
	if err := bf.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestBestFitPacksAtLeastAsTightAsNextFit(t *testing.T) {
	// On a mixed-size churn workload, best fit's max heap should not
	// exceed next fit's (it pays probes for packing).
	run := func(a Allocator) int64 {
		r := xrand.New(9)
		var next trace.ObjectID
		live := []trace.ObjectID{}
		for i := 0; i < 20000; i++ {
			if len(live) > 60 || (len(live) > 0 && r.Bool(0.40)) {
				k := r.Intn(len(live))
				if err := a.Free(live[k]); err != nil {
					t.Fatal(err)
				}
				live[k] = live[len(live)-1]
				live = live[:len(live)-1]
			} else {
				if err := a.Alloc(next, r.Range(16, 2000), false); err != nil {
					t.Fatal(err)
				}
				live = append(live, next)
				next++
			}
		}
		return a.MaxHeapSize()
	}
	nf := run(NewFirstFit())
	bf := run(NewBestFit())
	if bf > nf {
		t.Fatalf("best fit heap %d exceeds next fit %d", bf, nf)
	}
}
