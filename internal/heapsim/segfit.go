package heapsim

import (
	"fmt"
	"sort"

	"repro/internal/obs"
	"repro/internal/trace"
)

// segClasses are the small-object chunk sizes (header included) of the
// segregated-fit simulator, a tcmalloc-style class table: 16-byte spacing
// up to 128, then geometric-ish steps to one page quarter. Chunks above
// the last class take the large path (page-rounded exact spans).
var segClasses = []int64{
	16, 32, 48, 64, 80, 96, 112, 128,
	160, 192, 224, 256, 320, 384, 448, 512,
	640, 768, 896, 1024,
}

// SegFit simulates a modern segregated size-class/slab allocator in the
// tcmalloc/jemalloc family (see "Simulation of High-Performance Memory
// Allocators", PAPERS.md): each small size class owns a LIFO free list
// refilled by carving page slabs into equal chunks, large requests get
// page-rounded exact-size spans, and nothing is ever split or coalesced.
// Compared with BSD's power-of-two buckets the finer class table trades a
// little metadata for far less internal fragmentation — which is exactly
// the axis the tournament ranks it on against the paper's allocators.
type SegFit struct {
	// Header is the per-object bookkeeping overhead (default 8).
	Header int64
	// PageSize is the slab carve granularity (default 4KB).
	PageSize int64

	initialized bool
	heapEnd     int64
	liveBytes   int64

	// free maps a chunk size (class or page-rounded large size) to its
	// LIFO free list of chunk addresses.
	free map[int64][]int64
	// tails records the permanently unused remainder of each carved slab
	// whose class does not divide the page, so the walked spans tile the
	// region exactly.
	tails []segTail
	live  objIndex[segObj]
	ops   OpCounts
	obs   *segObs // nil unless a collector is attached
}

// segObs caches resolved metric handles for the hot paths.
type segObs struct {
	col    *obs.Collector
	carves *obs.Counter
	class  *obs.Histogram // chunk size per allocation (log2)
}

type segObj struct {
	addr  int64
	chunk int64 // chunk extent, header included
	size  int64 // requested bytes, for layout audits
}

// segTail is a carved slab's unusable remainder.
type segTail struct {
	addr, size int64
}

// NewSegFit returns a segregated-fit simulator with the default geometry.
func NewSegFit() *SegFit {
	s := &SegFit{}
	s.init()
	return s
}

func (s *SegFit) init() {
	if s.initialized {
		return
	}
	if s.Header == 0 {
		s.Header = 8
	}
	if s.PageSize == 0 {
		s.PageSize = 4 << 10
	}
	s.free = make(map[int64][]int64, len(segClasses))
	s.initialized = true
}

// Observe implements Observable.
func (s *SegFit) Observe(col *obs.Collector) {
	s.init()
	if col == nil {
		s.obs = nil
		return
	}
	s.obs = &segObs{
		col:    col,
		carves: col.Counter("segfit.carves"),
		class:  col.Log2Histogram("segfit.chunk", 32),
	}
}

// chunkFor returns the chunk size serving a request: the smallest class
// that fits size+Header, or the page-rounded need for large requests.
func (s *SegFit) chunkFor(size int64) int64 {
	need := size + s.Header
	if need <= segClasses[len(segClasses)-1] {
		i := sort.Search(len(segClasses), func(i int) bool { return segClasses[i] >= need })
		return segClasses[i]
	}
	return align(need, s.PageSize)
}

// Alloc implements Allocator; predictedShort is ignored (like BSD and
// CUSTOMALLOC, segregated fit optimizes placement by size, not lifetime).
func (s *SegFit) Alloc(id trace.ObjectID, size int64, _ bool) error {
	s.init()
	if size <= 0 {
		return fmt.Errorf("heapsim: non-positive allocation size %d", size)
	}
	if _, dup := s.live.get(id); dup {
		return errDoubleAlloc("segfit", id)
	}
	chunk := s.chunkFor(size)
	s.ops.Allocs++
	if s.obs != nil {
		s.obs.class.Observe(chunk)
	}

	list := s.free[chunk]
	if len(list) == 0 {
		// Refill: small classes carve one page into equal chunks (any
		// remainder is a permanent tail); large chunks are page-rounded
		// already and carve exactly.
		s.ops.SegCarves++
		slab := align(chunk, s.PageSize)
		if s.obs != nil {
			s.obs.carves.Inc()
			s.obs.col.Emit(obs.EvHeapGrow, slab)
		}
		start := s.heapEnd
		s.heapEnd += slab
		a := start
		for ; a+chunk <= start+slab; a += chunk {
			list = append(list, a)
		}
		if tail := start + slab - a; tail > 0 {
			s.tails = append(s.tails, segTail{addr: a, size: tail})
		}
	}
	addr := list[len(list)-1]
	s.free[chunk] = list[:len(list)-1]
	s.live.put(id, segObj{addr: addr, chunk: chunk, size: size})
	s.liveBytes += size
	return nil
}

// Free implements Allocator: push the chunk back on its class list.
func (s *SegFit) Free(id trace.ObjectID) error {
	s.init()
	o, ok := s.live.del(id)
	if !ok {
		return errUnknownFree("segfit", id)
	}
	s.liveBytes -= o.size
	s.ops.Frees++
	s.free[o.chunk] = append(s.free[o.chunk], o.addr)
	return nil
}

// HeapSize returns the current break. The slab heap never shrinks, so
// the maximum equals the current value.
func (s *SegFit) HeapSize() int64 { return s.heapEnd }

// MaxHeapSize implements Allocator.
func (s *SegFit) MaxHeapSize() int64 { return s.heapEnd }

// Counts implements Allocator.
func (s *SegFit) Counts() OpCounts { return s.ops }

// Addr implements Allocator.
func (s *SegFit) Addr(id trace.ObjectID) (int64, bool) {
	o, ok := s.live.get(id)
	if !ok {
		return 0, false
	}
	return o.addr + s.Header, true
}

// Regions implements Walker: one carve window from 0. It is tiled — live
// chunks, free-list chunks, and the recorded slab tails cover it exactly.
func (s *SegFit) Regions() []Region {
	s.init()
	return []Region{{Name: "heap", Base: 0, End: s.heapEnd, Tiled: true, Header: s.Header}}
}

// Walk implements Walker: live chunks, free chunks per class list, and
// the permanent slab tails (reported free, since they hold no object).
func (s *SegFit) Walk(emit func(Span) error) error {
	s.init()
	var werr error
	s.live.forEach(func(id trace.ObjectID, o segObj) {
		if werr != nil {
			return
		}
		werr = emit(Span{
			Region:  "heap",
			Addr:    o.addr,
			Size:    o.chunk,
			Obj:     id,
			Payload: o.size,
		})
	})
	if werr != nil {
		return werr
	}
	for chunk, list := range s.free {
		for _, addr := range list {
			if err := emit(Span{Region: "heap", Addr: addr, Size: chunk, Free: true}); err != nil {
				return err
			}
		}
	}
	for _, t := range s.tails {
		if err := emit(Span{Region: "heap", Addr: t.addr, Size: t.size, Free: true}); err != nil {
			return err
		}
	}
	return nil
}
