package heapsim

import "repro/internal/trace"

// Span is one contiguous address range reported by a Walker: either a
// live object's block (headers and padding included in Size, the
// requested bytes in Payload) or a free block awaiting reuse. Spans are
// the auditable unit of an allocator's layout: internal/check sorts them,
// proves they are pairwise disjoint, and reconciles the live ones against
// the trace's own ledger.
type Span struct {
	// Region names the address window this span lives in ("heap",
	// "arena", "sitearena", "slab") and must match one of the allocator's
	// Regions.
	Region string
	// Addr and Size delimit the block, including any modeled header or
	// alignment padding.
	Addr, Size int64
	// Free marks blocks on a free list (or carved but unallocated).
	Free bool
	// Obj and Payload identify the live object occupying a non-free
	// span and its requested byte count.
	Obj     trace.ObjectID
	Payload int64
}

// Region describes one contiguous address window of an allocator's
// simulated address space. Windows of one allocator never overlap, and
// the sum of their extents equals HeapSize() — that identity is what ties
// the walked layout back to the Table 8 heap-size accounting.
type Region struct {
	Name string
	// Base and End delimit the window; End is exclusive. Base == End is
	// an empty window.
	Base, End int64
	// Tiled promises that the walked spans of this region exactly tile
	// [Base, End): sorted by address they are gapless as well as
	// disjoint. First-fit's block list and BSD's carved pages tile;
	// bump-pointer arena areas (where dead objects leave unaccounted
	// holes until a reset) do not.
	Tiled bool
	// Coalesced promises that free spans are never address-adjacent —
	// the immediate-coalescing invariant of the boundary-tag heaps.
	// Segregated-list allocators (BSD, Custom) never coalesce and leave
	// it false.
	Coalesced bool
	// Header is the per-object bookkeeping overhead modeled inside each
	// live span's Size (0 for bump-pointer windows, whose spans carry no
	// header). It lets a layout scanner split Size - Payload into header
	// and padding components.
	Header int64
}

// Walker is implemented by every simulator that can expose its block and
// arena layout for conformance auditing. Walk must report every block the
// allocator tracks — live and free — and may emit spans in any order; the
// auditor sorts. Implementations are read-only: walking never perturbs
// allocator state, so an audit can run after any event without changing
// the replay's outcome.
type Walker interface {
	// Regions enumerates the allocator's address windows.
	Regions() []Region
	// Walk calls emit for every span; a non-nil error from emit aborts
	// the walk and is returned.
	Walk(emit func(Span) error) error
}

// liveByBlock inverts a live index for walking: block pointer -> object
// id. Built per walk so the hot allocation paths carry no extra
// bookkeeping.
func liveByBlock(live *objIndex[*ffBlock]) map[*ffBlock]trace.ObjectID {
	inv := make(map[*ffBlock]trace.ObjectID, live.len())
	live.forEach(func(id trace.ObjectID, b *ffBlock) {
		inv[b] = id
	})
	return inv
}

// walkFF walks a FirstFit heap's address-ordered block list under the
// given region name (FirstFit and BestFit share the machinery).
func walkFF(ff *FirstFit, emit func(Span) error) error {
	ff.init()
	inv := liveByBlock(&ff.live)
	for b := ff.head; b != nil; b = b.aNext {
		s := Span{Region: "heap", Addr: b.addr, Size: b.size, Free: b.free}
		if !b.free {
			id, ok := inv[b]
			if !ok {
				// A non-free block no live object owns would be lost
				// memory; surface it as a live span with no payload so
				// the auditor reports the discrepancy rather than
				// silently skipping it.
				s.Payload = -1
			} else {
				s.Obj = id
				s.Payload = b.payload
			}
		}
		if err := emit(s); err != nil {
			return err
		}
	}
	return nil
}

// Regions implements Walker: first-fit owns one sbrk window from 0.
func (ff *FirstFit) Regions() []Region {
	ff.init()
	return []Region{{Name: "heap", Base: 0, End: ff.heapEnd, Tiled: true, Coalesced: true, Header: ff.Header}}
}

// Walk implements Walker over the address-ordered block list.
func (ff *FirstFit) Walk(emit func(Span) error) error { return walkFF(ff, emit) }

// Regions implements Walker.
func (b *BestFit) Regions() []Region {
	b.init()
	return b.ff.Regions()
}

// Walk implements Walker.
func (b *BestFit) Walk(emit func(Span) error) error {
	b.init()
	return walkFF(&b.ff, emit)
}

// Regions implements Walker: BSD owns one carve window from 0.
func (b *BSD) Regions() []Region {
	b.init()
	return []Region{{Name: "heap", Base: 0, End: b.heapEnd, Tiled: true, Header: b.Header}}
}

// Walk implements Walker: every carved chunk is either live or on its
// bucket's free list, so the two together tile the heap.
func (b *BSD) Walk(emit func(Span) error) error {
	b.init()
	var werr error
	b.live.forEach(func(id trace.ObjectID, o bsdObj) {
		if werr != nil {
			return
		}
		werr = emit(Span{
			Region:  "heap",
			Addr:    o.addr,
			Size:    int64(1) << o.bucket,
			Obj:     id,
			Payload: o.size,
		})
	})
	if werr != nil {
		return werr
	}
	for bucket, list := range b.freeLists {
		for _, addr := range list {
			err := emit(Span{
				Region: "heap",
				Addr:   addr,
				Size:   int64(1) << bucket,
				Free:   true,
			})
			if err != nil {
				return err
			}
		}
	}
	return nil
}

// Regions implements Walker: the general heap's window plus the fixed
// arena area. The arena window is not tiled — freed objects leave holes
// under the bump pointers until a reset reclaims the whole arena.
func (a *Arena) Regions() []Region {
	a.init()
	end := ArenaBase + int64(a.NumArenas)*a.ArenaSize
	return append(a.General.Regions(),
		Region{Name: "arena", Base: ArenaBase, End: end})
}

// Walk implements Walker: the general heap's blocks plus one span per
// live arena object at its synthetic bump address.
func (a *Arena) Walk(emit func(Span) error) error {
	a.init()
	if err := a.General.Walk(emit); err != nil {
		return err
	}
	var werr error
	a.where.forEach(func(id trace.ObjectID, loc arenaLoc) {
		if werr != nil {
			return
		}
		werr = emit(Span{
			Region:  "arena",
			Addr:    ArenaBase + int64(loc.idx)*a.ArenaSize + loc.off,
			Size:    loc.size,
			Obj:     id,
			Payload: loc.size,
		})
	})
	return werr
}

// Regions implements Walker: the general heap plus the reserved site
// pools (pools are allocated densely, so the window ends at the next
// unassigned pool index).
func (s *SiteArena) Regions() []Region {
	s.init()
	end := siteArenaBase + int64(s.nextPool)*int64(s.ArenasPerSite)*s.ArenaSize
	return append(s.General.Regions(),
		Region{Name: "sitearena", Base: siteArenaBase, End: end})
}

// Walk implements Walker.
func (s *SiteArena) Walk(emit func(Span) error) error {
	s.init()
	if err := s.General.Walk(emit); err != nil {
		return err
	}
	poolSize := int64(s.ArenasPerSite) * s.ArenaSize
	for id, loc := range s.where {
		pool := s.pools[loc.bucket]
		err := emit(Span{
			Region:  "sitearena",
			Addr:    siteArenaBase + int64(pool.index)*poolSize + int64(loc.idx)*s.ArenaSize + loc.off,
			Size:    loc.size,
			Obj:     id,
			Payload: loc.size,
		})
		if err != nil {
			return err
		}
	}
	return nil
}

// Regions implements Walker: the general heap plus the hot-size slab
// window. The slab window is not tiled: a carve keeps only whole chunks,
// so a slab whose chunk size does not divide it ends in a small
// permanently-unused tail.
func (c *Custom) Regions() []Region {
	c.init()
	return append(c.General.Regions(),
		Region{Name: "slab", Base: customBase, End: customBase + c.heapEnd})
}

// Walk implements Walker: live hot-size chunks, free chunks on the
// per-class lists, and the general heap's blocks.
func (c *Custom) Walk(emit func(Span) error) error {
	c.init()
	if err := c.General.Walk(emit); err != nil {
		return err
	}
	for id, o := range c.live {
		err := emit(Span{
			Region:  "slab",
			Addr:    o.addr,
			Size:    o.size,
			Obj:     id,
			Payload: o.payload,
		})
		if err != nil {
			return err
		}
	}
	for size, class := range c.hot {
		for _, addr := range class.free {
			if err := emit(Span{Region: "slab", Addr: addr, Size: size, Free: true}); err != nil {
				return err
			}
		}
	}
	return nil
}
