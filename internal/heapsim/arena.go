package heapsim

import (
	"fmt"

	"repro/internal/trace"
)

// Arena simulates the paper's lifetime-predicting arena allocator (§5.1):
//
//   - A fixed set of small arenas (16 x 4KB in the paper, chosen so the
//     64KB total is twice the 32KB short-lived age) holds objects
//     predicted short-lived. Each arena has only an allocation pointer and
//     a live-object count — no per-object headers.
//   - Allocation bumps the current arena's pointer. When the arena is
//     full, all arenas are scanned for one whose count is zero; that arena
//     is reset and becomes current. If none is free the object is
//     allocated in the general heap ("as if it were long-lived").
//   - Free of an arena object just decrements its arena's count. Arena
//     membership is recognized by address, because the arena area is
//     contiguous and disjoint from the general heap.
//   - Objects not predicted short, objects larger than an arena, and
//     arena-overflow objects go to a first-fit general heap.
//
// Mispredicted long-lived objects "pollute" arenas: an arena holding one
// never reaches count zero and is never reused — the CFRAC failure mode of
// §5.2.
type Arena struct {
	// NumArenas and ArenaSize default to the paper's 16 x 4KB.
	NumArenas int
	ArenaSize int64
	// General is the fallback allocator; a default FirstFit if nil.
	General *FirstFit

	initialized bool
	arenas      []arenaState
	current     int
	where       map[trace.ObjectID]arenaLoc // arena objects only
	ops         OpCounts
}

// arenaLoc records where in the arena area an object was bump-allocated.
type arenaLoc struct {
	idx int
	off int64
}

// ArenaBase is the synthetic base address of the arena area, disjoint from
// the general heap's address space (which starts at 0).
const ArenaBase = int64(1) << 40

type arenaState struct {
	used  int64
	count int64
}

// NewArena returns an arena allocator with the paper's geometry over a
// fresh first-fit general heap.
func NewArena() *Arena {
	a := &Arena{}
	a.init()
	return a
}

func (a *Arena) init() {
	if a.initialized {
		return
	}
	if a.NumArenas == 0 {
		a.NumArenas = 16
	}
	if a.ArenaSize == 0 {
		a.ArenaSize = 4 << 10
	}
	if a.General == nil {
		a.General = NewFirstFit()
	}
	a.arenas = make([]arenaState, a.NumArenas)
	a.where = make(map[trace.ObjectID]arenaLoc)
	a.initialized = true
}

// Alloc implements Allocator. Objects with predictedShort true are placed
// in an arena when possible.
func (a *Arena) Alloc(id trace.ObjectID, size int64, predictedShort bool) error {
	a.init()
	if size <= 0 {
		return fmt.Errorf("heapsim: non-positive allocation size %d", size)
	}
	a.ops.PredChecks++
	if !predictedShort || size > a.ArenaSize {
		return a.generalAlloc(id, size, false)
	}
	// Try the current arena.
	cur := &a.arenas[a.current]
	if cur.used+size <= a.ArenaSize {
		return a.bump(id, size)
	}
	// Scan for an arena with no live objects (paper: "the algorithm
	// scans all short-lived arenas attempting to find one with a zero
	// count field").
	for i := 1; i <= a.NumArenas; i++ {
		idx := (a.current + i) % a.NumArenas
		a.ops.ArenaScanSteps++
		if a.arenas[idx].count == 0 {
			a.arenas[idx].used = 0
			a.current = idx
			a.ops.ArenaResets++
			return a.bump(id, size)
		}
	}
	// All arenas pinned by live (possibly mispredicted) objects:
	// degenerate to the general-purpose allocator.
	return a.generalAlloc(id, size, true)
}

// bump places the object in the current arena.
func (a *Arena) bump(id trace.ObjectID, size int64) error {
	if _, dup := a.where[id]; dup {
		return errDoubleAlloc(id)
	}
	if _, live := a.General.live[id]; live {
		return errDoubleAlloc(id)
	}
	st := &a.arenas[a.current]
	a.where[id] = arenaLoc{idx: a.current, off: st.used}
	st.used += size
	st.count++
	a.ops.Allocs++
	a.ops.ArenaAllocs++
	a.ops.ArenaObjects++
	a.ops.ArenaBytes += size
	return nil
}

// generalAlloc places the object in the fallback heap.
func (a *Arena) generalAlloc(id trace.ObjectID, size int64, fallback bool) error {
	if _, dup := a.where[id]; dup {
		return errDoubleAlloc(id)
	}
	if err := a.General.Alloc(id, size, false); err != nil {
		return err
	}
	a.ops.Allocs++
	a.ops.GeneralBytes += size
	if fallback {
		a.ops.ArenaFallbacks++
	}
	// The general heap's own counters (FFAllocs etc.) accumulate inside
	// a.General; Counts() merges them.
	return nil
}

// Free implements Allocator. Arena objects just decrement their arena's
// live count (the address-range check in a real implementation is a couple
// of compares).
func (a *Arena) Free(id trace.ObjectID) error {
	a.init()
	if loc, ok := a.where[id]; ok {
		delete(a.where, id)
		st := &a.arenas[loc.idx]
		if st.count <= 0 {
			return fmt.Errorf("heapsim: arena %d count underflow freeing %d", loc.idx, id)
		}
		st.count--
		a.ops.Frees++
		a.ops.ArenaFrees++
		return nil
	}
	if err := a.General.Free(id); err != nil {
		return err
	}
	a.ops.Frees++
	return nil
}

// HeapSize implements Allocator: the general heap plus the full arena
// area (the paper's Table 8 "include[s] the 64-kilobyte arena area").
func (a *Arena) HeapSize() int64 {
	a.init()
	return a.General.HeapSize() + int64(a.NumArenas)*a.ArenaSize
}

// MaxHeapSize implements Allocator.
func (a *Arena) MaxHeapSize() int64 {
	a.init()
	return a.General.MaxHeapSize() + int64(a.NumArenas)*a.ArenaSize
}

// Counts implements Allocator, merging the general heap's counters.
func (a *Arena) Counts() OpCounts {
	a.init()
	c := a.ops
	g := a.General.Counts()
	c.FFAllocs = g.FFAllocs
	c.FFFrees = g.FFFrees
	c.FFProbes = g.FFProbes
	c.FFExtends = g.FFExtends
	c.FFSplits = g.FFSplits
	c.FFCoalesces = g.FFCoalesces
	return c
}

// Addr implements Allocator. Arena objects live in a synthetic window at
// ArenaBase, packed into NumArenas*ArenaSize bytes, which is exactly the
// locality property the paper claims for them; general-heap objects use
// the first-fit address space starting at 0.
func (a *Arena) Addr(id trace.ObjectID) (int64, bool) {
	a.init()
	if loc, ok := a.where[id]; ok {
		return ArenaBase + int64(loc.idx)*a.ArenaSize + loc.off, true
	}
	return a.General.Addr(id)
}

// PinnedArenas reports how many arenas currently hold at least one live
// object — a direct measure of pollution.
func (a *Arena) PinnedArenas() int {
	a.init()
	n := 0
	for _, st := range a.arenas {
		if st.count > 0 {
			n++
		}
	}
	return n
}
