package heapsim

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/trace"
)

// Arena simulates the paper's lifetime-predicting arena allocator (§5.1):
//
//   - A fixed set of small arenas (16 x 4KB in the paper, chosen so the
//     64KB total is twice the 32KB short-lived age) holds objects
//     predicted short-lived. Each arena has only an allocation pointer and
//     a live-object count — no per-object headers.
//   - Allocation bumps the current arena's pointer. When the arena is
//     full, all arenas are scanned for one whose count is zero; that arena
//     is reset and becomes current. If none is free the object is
//     allocated in the general heap ("as if it were long-lived").
//   - Free of an arena object just decrements its arena's count. Arena
//     membership is recognized by address, because the arena area is
//     contiguous and disjoint from the general heap.
//   - Objects not predicted short, objects larger than an arena, and
//     arena-overflow objects go to a first-fit general heap.
//
// Mispredicted long-lived objects "pollute" arenas: an arena holding one
// never reaches count zero and is never reused — the CFRAC failure mode of
// §5.2.
type Arena struct {
	// NumArenas and ArenaSize default to the paper's 16 x 4KB.
	NumArenas int
	ArenaSize int64
	// General is the fallback allocator; a default FirstFit if nil.
	General *FirstFit

	initialized bool
	arenas      []arenaState
	current     int
	where       objIndex[arenaLoc] // arena objects only
	ops         OpCounts
	obs         *arenaObs // nil unless a collector is attached
}

// arenaObs caches resolved metric handles for the hot paths.
type arenaObs struct {
	col       *obs.Collector
	scanLen   *obs.Histogram // arenas examined per overflow hunt (linear)
	allocSize *obs.Histogram // arena-placed sizes (log2)
	resets    *obs.Counter
	fallbacks *obs.Counter
	pinned    *obs.Gauge
}

// arenaLoc records where in the arena area an object was bump-allocated.
type arenaLoc struct {
	idx  int
	off  int64
	size int64 // requested bytes, for layout audits
}

// ArenaBase is the synthetic base address of the arena area, disjoint from
// the general heap's address space (which starts at 0).
const ArenaBase = int64(1) << 40

type arenaState struct {
	used  int64
	count int64
}

// NewArena returns an arena allocator with the paper's geometry over a
// fresh first-fit general heap.
func NewArena() *Arena {
	a := &Arena{}
	a.init()
	return a
}

func (a *Arena) init() {
	if a.initialized {
		return
	}
	if a.NumArenas == 0 {
		a.NumArenas = 16
	}
	if a.ArenaSize == 0 {
		a.ArenaSize = 4 << 10
	}
	if a.General == nil {
		// The fallback heap reports errors as the composite's, but its
		// metrics stay under "firstfit." so snapshots separate the layers.
		a.General = &FirstFit{name: "arena", prefix: "firstfit"}
	}
	a.arenas = make([]arenaState, a.NumArenas)
	a.initialized = true
}

// Observe implements Observable; the collector also attaches to the
// general fallback heap, so one snapshot covers both layers.
func (a *Arena) Observe(col *obs.Collector) {
	a.init()
	a.General.Observe(col)
	if col == nil {
		a.obs = nil
		return
	}
	a.obs = &arenaObs{
		col:       col,
		scanLen:   col.LinearHistogram("arena.scan_len", 1, 32),
		allocSize: col.Log2Histogram("arena.alloc_size", 16),
		resets:    col.Counter("arena.resets"),
		fallbacks: col.Counter("arena.fallbacks"),
		pinned:    col.Gauge("arena.pinned"),
	}
}

// Alloc implements Allocator. Objects with predictedShort true are placed
// in an arena when possible.
func (a *Arena) Alloc(id trace.ObjectID, size int64, predictedShort bool) error {
	a.init()
	if size <= 0 {
		return fmt.Errorf("heapsim: non-positive allocation size %d", size)
	}
	a.ops.PredChecks++
	if !predictedShort || size > a.ArenaSize {
		return a.generalAlloc(id, size, false)
	}
	// Try the current arena.
	cur := &a.arenas[a.current]
	if cur.used+size <= a.ArenaSize {
		return a.bump(id, size)
	}
	// Scan for an arena with no live objects (paper: "the algorithm
	// scans all short-lived arenas attempting to find one with a zero
	// count field").
	for i := 1; i <= a.NumArenas; i++ {
		idx := (a.current + i) % a.NumArenas
		a.ops.ArenaScanSteps++
		if a.arenas[idx].count == 0 {
			a.arenas[idx].used = 0
			a.current = idx
			a.ops.ArenaResets++
			if a.obs != nil {
				a.obs.scanLen.Observe(int64(i))
				a.obs.resets.Inc()
				a.obs.col.Emit(obs.EvArenaReuse, int64(idx))
			}
			return a.bump(id, size)
		}
	}
	// All arenas pinned by live (possibly mispredicted) objects:
	// degenerate to the general-purpose allocator.
	if a.obs != nil {
		a.obs.scanLen.Observe(int64(a.NumArenas))
		a.obs.fallbacks.Inc()
		a.obs.col.Emit(obs.EvArenaOverflow, size)
	}
	return a.generalAlloc(id, size, true)
}

// bump places the object in the current arena.
func (a *Arena) bump(id trace.ObjectID, size int64) error {
	if _, dup := a.where.get(id); dup {
		return errDoubleAlloc("arena", id)
	}
	if _, live := a.General.live.get(id); live {
		return errDoubleAlloc("arena", id)
	}
	st := &a.arenas[a.current]
	a.where.put(id, arenaLoc{idx: a.current, off: st.used, size: size})
	st.used += size
	st.count++
	a.ops.Allocs++
	a.ops.ArenaAllocs++
	a.ops.ArenaObjects++
	a.ops.ArenaBytes += size
	if a.obs != nil {
		a.obs.allocSize.Observe(size)
		if st.count == 1 {
			a.obs.pinned.Set(int64(a.PinnedArenas()))
		}
	}
	return nil
}

// generalAlloc places the object in the fallback heap.
func (a *Arena) generalAlloc(id trace.ObjectID, size int64, fallback bool) error {
	if _, dup := a.where.get(id); dup {
		return errDoubleAlloc("arena", id)
	}
	if err := a.General.Alloc(id, size, false); err != nil {
		return err
	}
	a.ops.Allocs++
	a.ops.GeneralBytes += size
	if fallback {
		a.ops.ArenaFallbacks++
	}
	// The general heap's own counters (FFAllocs etc.) accumulate inside
	// a.General; Counts() merges them.
	return nil
}

// Free implements Allocator. Arena objects just decrement their arena's
// live count (the address-range check in a real implementation is a couple
// of compares).
func (a *Arena) Free(id trace.ObjectID) error {
	a.init()
	if loc, ok := a.where.del(id); ok {
		st := &a.arenas[loc.idx]
		if st.count <= 0 {
			return fmt.Errorf("heapsim: arena %d count underflow freeing %d", loc.idx, id)
		}
		st.count--
		a.ops.Frees++
		a.ops.ArenaFrees++
		if a.obs != nil && st.count == 0 {
			a.obs.pinned.Set(int64(a.PinnedArenas()))
		}
		return nil
	}
	if err := a.General.Free(id); err != nil {
		return err
	}
	a.ops.Frees++
	return nil
}

// HeapSize implements Allocator: the general heap plus the full arena
// area (the paper's Table 8 "include[s] the 64-kilobyte arena area").
func (a *Arena) HeapSize() int64 {
	a.init()
	return a.General.HeapSize() + int64(a.NumArenas)*a.ArenaSize
}

// MaxHeapSize implements Allocator.
func (a *Arena) MaxHeapSize() int64 {
	a.init()
	return a.General.MaxHeapSize() + int64(a.NumArenas)*a.ArenaSize
}

// Counts implements Allocator, merging the general heap's counters.
func (a *Arena) Counts() OpCounts {
	a.init()
	c := a.ops
	g := a.General.Counts()
	c.FFAllocs = g.FFAllocs
	c.FFFrees = g.FFFrees
	c.FFProbes = g.FFProbes
	c.FFExtends = g.FFExtends
	c.FFSplits = g.FFSplits
	c.FFCoalesces = g.FFCoalesces
	return c
}

// Addr implements Allocator. Arena objects live in a synthetic window at
// ArenaBase, packed into NumArenas*ArenaSize bytes, which is exactly the
// locality property the paper claims for them; general-heap objects use
// the first-fit address space starting at 0.
func (a *Arena) Addr(id trace.ObjectID) (int64, bool) {
	a.init()
	if loc, ok := a.where.get(id); ok {
		return ArenaBase + int64(loc.idx)*a.ArenaSize + loc.off, true
	}
	return a.General.Addr(id)
}

// ArenaOccupancy reports the fraction of the arena area's bytes under
// the bump pointers of arenas holding live objects — the timeline
// sampler's arena-occupancy signal.
func (a *Arena) ArenaOccupancy() float64 {
	a.init()
	var used int64
	for _, st := range a.arenas {
		if st.count > 0 {
			used += st.used
		}
	}
	return float64(used) / float64(int64(a.NumArenas)*a.ArenaSize)
}

// PinnedArenas reports how many arenas currently hold at least one live
// object — a direct measure of pollution.
func (a *Arena) PinnedArenas() int {
	a.init()
	n := 0
	for _, st := range a.arenas {
		if st.count > 0 {
			n++
		}
	}
	return n
}
