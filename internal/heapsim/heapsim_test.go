package heapsim

import (
	"testing"
	"testing/quick"

	"repro/internal/trace"
	"repro/internal/xrand"
)

func mustAlloc(t *testing.T, a Allocator, id trace.ObjectID, size int64, short bool) {
	t.Helper()
	if err := a.Alloc(id, size, short); err != nil {
		t.Fatalf("Alloc(%d, %d): %v", id, size, err)
	}
}

func mustFree(t *testing.T, a Allocator, id trace.ObjectID) {
	t.Helper()
	if err := a.Free(id); err != nil {
		t.Fatalf("Free(%d): %v", id, err)
	}
}

// --- FirstFit ---

func TestFirstFitBasic(t *testing.T) {
	ff := NewFirstFit()
	mustAlloc(t, ff, 1, 100, false)
	if ff.HeapSize() != 8<<10 {
		t.Fatalf("heap size %d, want one 8KB chunk", ff.HeapSize())
	}
	a1, ok := ff.Addr(1)
	if !ok || a1 != 8 {
		t.Fatalf("object 1 at %d (ok=%v), want payload at 8", a1, ok)
	}
	mustAlloc(t, ff, 2, 100, false)
	a2, _ := ff.Addr(2)
	if a2 <= a1 {
		t.Fatalf("object 2 at %d, want above object 1 at %d", a2, a1)
	}
	mustFree(t, ff, 1)
	mustFree(t, ff, 2)
	if err := ff.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if ff.FreeBlocks() != 1 {
		t.Fatalf("after freeing everything, free blocks = %d, want 1 (full coalesce)", ff.FreeBlocks())
	}
	if ff.LiveObjects() != 0 {
		t.Fatalf("LiveObjects = %d", ff.LiveObjects())
	}
}

func TestFirstFitErrors(t *testing.T) {
	ff := NewFirstFit()
	if err := ff.Alloc(1, 0, false); err == nil {
		t.Error("zero-size alloc accepted")
	}
	mustAlloc(t, ff, 1, 16, false)
	if err := ff.Alloc(1, 16, false); err == nil {
		t.Error("double alloc accepted")
	}
	if err := ff.Free(99); err == nil {
		t.Error("free of unknown object accepted")
	}
	mustFree(t, ff, 1)
	if err := ff.Free(1); err == nil {
		t.Error("double free accepted")
	}
}

func TestFirstFitReuseAfterFree(t *testing.T) {
	// Fill one 8KB chunk exactly (8 x 1024 including headers), so there
	// is no wilderness left. Then a freed hole must be reused by the
	// wrap-around search without growing the heap.
	ff := NewFirstFit()
	for i := trace.ObjectID(0); i < 8; i++ {
		mustAlloc(t, ff, i, 1016, false)
	}
	heap := ff.MaxHeapSize()
	if heap != 8<<10 {
		t.Fatalf("heap %d, want exactly one chunk", heap)
	}
	a3, _ := ff.Addr(3)
	mustFree(t, ff, 3)
	mustAlloc(t, ff, 100, 1016, false)
	if ff.MaxHeapSize() != heap {
		t.Fatalf("heap grew from %d to %d despite available hole", heap, ff.MaxHeapSize())
	}
	a100, _ := ff.Addr(100)
	if a100 != a3 {
		t.Fatalf("object 100 at %d, want reuse of hole at %d", a100, a3)
	}
}

func TestFirstFitRoverPolicies(t *testing.T) {
	// Default A4' policy: the rover stays where the last allocation
	// happened, so a hole behind it is NOT immediately reused.
	ff := NewFirstFit()
	mustAlloc(t, ff, 1, 1000, false)
	mustAlloc(t, ff, 2, 1000, false)
	mustAlloc(t, ff, 3, 1000, false)
	a2, _ := ff.Addr(2)
	mustFree(t, ff, 2)
	mustAlloc(t, ff, 4, 1000, false)
	if a4, _ := ff.Addr(4); a4 == a2 {
		t.Fatal("A4' policy unexpectedly reused the hole behind the rover")
	}
}

func TestFirstFitRoverFollowsFree(t *testing.T) {
	// K&R variant: free leaves the rover at the freed block, so a
	// same-size allocation immediately reuses it instead of carving the
	// wilderness.
	ff := NewFirstFit()
	ff.RoverOnFree = true
	mustAlloc(t, ff, 1, 1000, false)
	mustAlloc(t, ff, 2, 1000, false)
	mustAlloc(t, ff, 3, 1000, false) // keeps the hole away from the wilderness
	a2, _ := ff.Addr(2)
	mustFree(t, ff, 2)
	mustAlloc(t, ff, 4, 1000, false)
	a4, _ := ff.Addr(4)
	if a4 != a2 {
		t.Fatalf("object 4 at %d, want immediate reuse of the hole at %d", a4, a2)
	}
}

func TestFirstFitCoalescing(t *testing.T) {
	ff := NewFirstFit()
	for i := trace.ObjectID(0); i < 8; i++ {
		mustAlloc(t, ff, i, 1000, false)
	}
	// Free alternating, then the rest: full coalescing must leave one
	// free block spanning everything.
	for i := trace.ObjectID(0); i < 8; i += 2 {
		mustFree(t, ff, i)
	}
	if err := ff.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if ff.FreeBlocks() < 4 {
		t.Fatalf("alternating frees left %d free blocks, want >= 4", ff.FreeBlocks())
	}
	for i := trace.ObjectID(1); i < 8; i += 2 {
		mustFree(t, ff, i)
	}
	if ff.FreeBlocks() != 1 {
		t.Fatalf("free blocks = %d after freeing all, want 1", ff.FreeBlocks())
	}
	c := ff.Counts()
	if c.FFCoalesces == 0 {
		t.Fatal("no coalesces counted")
	}
}

func TestFirstFitExtension(t *testing.T) {
	ff := NewFirstFit()
	// 3 x 3000 > 8192: must extend at least twice.
	for i := trace.ObjectID(0); i < 3; i++ {
		mustAlloc(t, ff, i, 3000, false)
	}
	if ff.HeapSize() < 9000 {
		t.Fatalf("heap %d too small for 9000 live bytes", ff.HeapSize())
	}
	if ff.HeapSize()%(8<<10) != 0 {
		t.Fatalf("heap %d not a multiple of the 8KB chunk", ff.HeapSize())
	}
	if ff.Counts().FFExtends < 2 {
		t.Fatalf("extends = %d, want >= 2", ff.Counts().FFExtends)
	}
}

func TestFirstFitLargeObject(t *testing.T) {
	ff := NewFirstFit()
	mustAlloc(t, ff, 1, 100<<10, false) // 100KB: spans many chunks
	if ff.HeapSize() < 100<<10 {
		t.Fatalf("heap %d < object size", ff.HeapSize())
	}
	if err := ff.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	mustFree(t, ff, 1)
	if err := ff.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestFirstFitRovingPointer(t *testing.T) {
	// With a roving pointer, successive small allocations after a free
	// do not always restart from the lowest hole: allocate a row, free
	// two holes, allocate twice; the second allocation should land in
	// the second hole (the rover moved past the first).
	ff := NewFirstFit()
	for i := trace.ObjectID(0); i < 8; i++ {
		mustAlloc(t, ff, i, 1016, false) // fills the chunk exactly
	}
	h1, _ := ff.Addr(1)
	h3, _ := ff.Addr(3)
	mustFree(t, ff, 1)
	mustFree(t, ff, 3)
	mustAlloc(t, ff, 10, 1016, false)
	mustAlloc(t, ff, 11, 1016, false)
	a10, _ := ff.Addr(10)
	a11, _ := ff.Addr(11)
	got := map[int64]bool{a10: true, a11: true}
	if !got[h1] || !got[h3] {
		t.Fatalf("holes %d,%d; allocations landed at %d,%d", h1, h3, a10, a11)
	}
}

func TestFirstFitProbesCounted(t *testing.T) {
	ff := NewFirstFit()
	mustAlloc(t, ff, 1, 16, false)
	c := ff.Counts()
	if c.FFProbes == 0 && c.FFExtends == 0 {
		t.Fatal("no search activity recorded")
	}
	if c.Allocs != 1 || c.FFAllocs != 1 {
		t.Fatalf("counts %+v", c)
	}
}

func TestFirstFitQuickRandomWorkload(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		ff := NewFirstFit()
		live := map[trace.ObjectID]bool{}
		var next trace.ObjectID
		for i := 0; i < 400; i++ {
			if len(live) > 0 && r.Bool(0.45) {
				for id := range live {
					if ff.Free(id) != nil {
						return false
					}
					delete(live, id)
					break
				}
			} else {
				size := r.Range(1, 3000)
				if ff.Alloc(next, size, false) != nil {
					return false
				}
				live[next] = true
				next++
			}
		}
		return ff.CheckInvariants() == nil && ff.LiveObjects() == len(live)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// --- BSD ---

func TestBSDBucketFor(t *testing.T) {
	b := NewBSD()
	cases := map[int64]int{
		1: 4, 8: 4, 9: 5, 24: 5, 25: 6, 56: 6, 120: 7, 1000: 10, 4088: 12,
	}
	for size, want := range cases {
		if got := b.bucketFor(size); got != want {
			t.Errorf("bucketFor(%d) = %d, want %d", size, got, want)
		}
	}
}

func TestBSDReuseSameBucket(t *testing.T) {
	b := NewBSD()
	mustAlloc(t, b, 1, 100, false)
	a1, _ := b.Addr(1)
	mustFree(t, b, 1)
	mustAlloc(t, b, 2, 120, false) // same 128B bucket
	a2, _ := b.Addr(2)
	if a1 != a2 {
		t.Fatalf("LIFO bucket reuse failed: %d vs %d", a1, a2)
	}
	heap := b.HeapSize()
	mustFree(t, b, 2)
	if b.HeapSize() != heap {
		t.Fatal("BSD heap shrank")
	}
}

func TestBSDNeverCoalesces(t *testing.T) {
	b := NewBSD()
	mustAlloc(t, b, 1, 100, false) // 128 bucket
	mustFree(t, b, 1)
	// A larger request must carve fresh space even though 128B is free.
	heap := b.HeapSize()
	mustAlloc(t, b, 2, 200, false) // 256 bucket
	if b.HeapSize() == heap && len(b.freeLists[8]) == 0 {
		t.Fatal("256B allocation served without carving or a free chunk")
	}
}

func TestBSDCarveFillsList(t *testing.T) {
	b := NewBSD()
	mustAlloc(t, b, 1, 20, false) // 32B bucket; page carve = 128 chunks
	if got := len(b.freeLists[5]); got != 127 {
		t.Fatalf("free list after carve has %d chunks, want 127", got)
	}
	if b.HeapSize() != 4<<10 {
		t.Fatalf("heap %d, want one 4KB page", b.HeapSize())
	}
	// 127 more allocations consume the page with no growth.
	for i := trace.ObjectID(2); i < 129; i++ {
		mustAlloc(t, b, i, 20, false)
	}
	if b.HeapSize() != 4<<10 {
		t.Fatalf("heap grew to %d within one page's chunks", b.HeapSize())
	}
	mustAlloc(t, b, 200, 20, false)
	if b.HeapSize() != 8<<10 {
		t.Fatalf("heap %d after second carve, want 8KB", b.HeapSize())
	}
}

func TestBSDLargeObject(t *testing.T) {
	b := NewBSD()
	mustAlloc(t, b, 1, 6000, false) // 8KB bucket: 2 pages
	if b.HeapSize() != 8<<10 {
		t.Fatalf("heap %d, want 8KB", b.HeapSize())
	}
	mustFree(t, b, 1)
	mustAlloc(t, b, 2, 5000, false)
	if b.HeapSize() != 8<<10 {
		t.Fatal("same-bucket reuse failed for large object")
	}
}

func TestBSDErrors(t *testing.T) {
	b := NewBSD()
	if err := b.Alloc(1, -5, false); err == nil {
		t.Error("negative size accepted")
	}
	mustAlloc(t, b, 1, 8, false)
	if err := b.Alloc(1, 8, false); err == nil {
		t.Error("double alloc accepted")
	}
	if err := b.Free(7); err == nil {
		t.Error("unknown free accepted")
	}
}

// --- Arena ---

func TestArenaBumpAllocation(t *testing.T) {
	a := NewArena()
	mustAlloc(t, a, 1, 100, true)
	mustAlloc(t, a, 2, 100, true)
	a1, ok1 := a.Addr(1)
	a2, ok2 := a.Addr(2)
	if !ok1 || !ok2 {
		t.Fatal("arena objects have no address")
	}
	if a1 < ArenaBase || a2 != a1+100 {
		t.Fatalf("bump addresses %d, %d", a1, a2)
	}
	c := a.Counts()
	if c.ArenaAllocs != 2 || c.ArenaBytes != 200 {
		t.Fatalf("counts %+v", c)
	}
	// The general heap is untouched.
	if a.General.HeapSize() != 0 {
		t.Fatal("general heap grew for arena allocations")
	}
	if a.HeapSize() != 16*(4<<10) {
		t.Fatalf("heap size %d, want 64KB arena area", a.HeapSize())
	}
}

func TestArenaUnpredictedGoesGeneral(t *testing.T) {
	a := NewArena()
	mustAlloc(t, a, 1, 100, false)
	if a.Counts().ArenaAllocs != 0 {
		t.Fatal("unpredicted object placed in arena")
	}
	if a.Counts().GeneralBytes != 100 {
		t.Fatalf("GeneralBytes = %d", a.Counts().GeneralBytes)
	}
	addr, ok := a.Addr(1)
	if !ok || addr >= ArenaBase {
		t.Fatalf("general object at %d", addr)
	}
}

func TestArenaOversizedGoesGeneral(t *testing.T) {
	a := NewArena() // 4KB arenas
	mustAlloc(t, a, 1, 6144, true)
	c := a.Counts()
	if c.ArenaAllocs != 0 || c.GeneralBytes != 6144 {
		t.Fatalf("6KB object not sent to general heap: %+v", c)
	}
	// Not a fallback — it was never arena-eligible.
	if c.ArenaFallbacks != 0 {
		t.Fatal("oversized object counted as fallback")
	}
}

func TestArenaReuseWhenEmpty(t *testing.T) {
	a := &Arena{NumArenas: 2, ArenaSize: 1000}
	// Fill arena 0, free everything, fill again: must reset, not fall
	// back.
	for i := trace.ObjectID(0); i < 10; i++ {
		mustAlloc(t, a, i, 100, true)
	}
	// Arena 0 full (10x100); next alloc scans and finds arena 1.
	mustAlloc(t, a, 10, 100, true)
	if a.Counts().ArenaResets != 1 {
		t.Fatalf("resets = %d, want 1", a.Counts().ArenaResets)
	}
	for i := trace.ObjectID(0); i < 11; i++ {
		mustFree(t, a, i)
	}
	// Fill far beyond two arenas' capacity: constant reuse, no fallback.
	for i := trace.ObjectID(100); i < 160; i++ {
		mustAlloc(t, a, i, 100, true)
		mustFree(t, a, i)
	}
	c := a.Counts()
	if c.ArenaFallbacks != 0 {
		t.Fatalf("fallbacks = %d with fully-dying objects", c.ArenaFallbacks)
	}
	if c.ArenaAllocs != 71 {
		t.Fatalf("arena allocs = %d, want 71", c.ArenaAllocs)
	}
}

func TestArenaPollution(t *testing.T) {
	a := &Arena{NumArenas: 2, ArenaSize: 1000}
	// Two immortal mispredictions pin both arenas...
	mustAlloc(t, a, 1, 900, true)
	mustAlloc(t, a, 2, 900, true) // fills arena 0? no: 900+900 > 1000, so scan to arena 1
	if a.PinnedArenas() != 2 {
		t.Fatalf("pinned = %d, want 2", a.PinnedArenas())
	}
	// ...so further predicted-short objects fall back to the heap.
	mustAlloc(t, a, 3, 500, true)
	c := a.Counts()
	if c.ArenaFallbacks != 1 {
		t.Fatalf("fallbacks = %d, want 1", c.ArenaFallbacks)
	}
	if addr, _ := a.Addr(3); addr >= ArenaBase {
		t.Fatal("fallback object placed in arena")
	}
	// Scan steps were counted for the failed hunt.
	if c.ArenaScanSteps < 2 {
		t.Fatalf("scan steps = %d", c.ArenaScanSteps)
	}
	// Freeing one pollutant unpins its arena and restores arena service.
	mustFree(t, a, 1)
	mustAlloc(t, a, 4, 500, true)
	if a.Counts().ArenaAllocs != 3 {
		t.Fatalf("arena allocs = %d, want 3", a.Counts().ArenaAllocs)
	}
}

func TestArenaFreeDecrementsOnly(t *testing.T) {
	a := NewArena()
	mustAlloc(t, a, 1, 100, true)
	mustFree(t, a, 1)
	c := a.Counts()
	if c.ArenaFrees != 1 {
		t.Fatalf("arena frees = %d", c.ArenaFrees)
	}
	if _, ok := a.Addr(1); ok {
		t.Fatal("freed object still addressable")
	}
	if err := a.Free(1); err == nil {
		t.Fatal("double free accepted")
	}
}

func TestArenaMixedWorkloadConsistency(t *testing.T) {
	r := xrand.New(77)
	a := NewArena()
	live := map[trace.ObjectID]bool{}
	var next trace.ObjectID
	for i := 0; i < 5000; i++ {
		if len(live) > 0 && r.Bool(0.48) {
			for id := range live {
				mustFree(t, a, id)
				delete(live, id)
				break
			}
		} else {
			mustAlloc(t, a, next, r.Range(8, 5000), r.Bool(0.7))
			live[next] = true
			next++
		}
	}
	c := a.Counts()
	if c.Allocs != int64(next) {
		t.Fatalf("allocs %d, want %d", c.Allocs, next)
	}
	if c.ArenaBytes+c.GeneralBytes == 0 {
		t.Fatal("no bytes accounted")
	}
	if err := a.General.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Every live object must be addressable, freed ones must not.
	for id := range live {
		if _, ok := a.Addr(id); !ok {
			t.Fatalf("live object %d has no address", id)
		}
	}
}

func BenchmarkFirstFitChurn(b *testing.B) {
	ff := NewFirstFit()
	r := xrand.New(1)
	var id trace.ObjectID
	for i := 0; i < b.N; i++ {
		if err := ff.Alloc(id, r.Range(8, 256), false); err != nil {
			b.Fatal(err)
		}
		if id >= 64 {
			if err := ff.Free(id - 64); err != nil {
				b.Fatal(err)
			}
		}
		id++
	}
}

func BenchmarkArenaChurn(b *testing.B) {
	a := NewArena()
	r := xrand.New(1)
	var id trace.ObjectID
	for i := 0; i < b.N; i++ {
		if err := a.Alloc(id, r.Range(8, 256), true); err != nil {
			b.Fatal(err)
		}
		if id >= 64 {
			if err := a.Free(id - 64); err != nil {
				b.Fatal(err)
			}
		}
		id++
	}
}

func TestSiteArenaBasics(t *testing.T) {
	sa := NewSiteArena()
	mustAllocAt := func(id trace.ObjectID, size int64, site uint64) {
		t.Helper()
		if err := sa.AllocAt(id, size, site); err != nil {
			t.Fatal(err)
		}
	}
	mustAllocAt(1, 100, 7)
	mustAllocAt(2, 100, 7)
	mustAllocAt(3, 100, 9)
	if got := sa.ArenaArea(); got != 2*2*(4<<10) {
		t.Fatalf("arena area %d, want two 2x4KB pools", got)
	}
	a1, _ := sa.Addr(1)
	a2, _ := sa.Addr(2)
	a3, _ := sa.Addr(3)
	if a2 != a1+100 {
		t.Fatalf("same-site bump broken: %d, %d", a1, a2)
	}
	if a3 >= a1 && a3 < a1+2*(4<<10) {
		t.Fatalf("different sites share a pool: %d vs %d", a1, a3)
	}
	mustFree(t, sa, 1)
	mustFree(t, sa, 2)
	mustFree(t, sa, 3)
	if sa.Counts().ArenaFrees != 3 {
		t.Fatalf("arena frees %d", sa.Counts().ArenaFrees)
	}
}

func TestSiteArenaPollutionIsolation(t *testing.T) {
	sa := &SiteArena{ArenasPerSite: 2, ArenaSize: 1000}
	// Site 1 pollutes: immortal objects pin both of its arenas.
	if err := sa.AllocAt(1, 900, 1); err != nil {
		t.Fatal(err)
	}
	if err := sa.AllocAt(2, 900, 1); err != nil {
		t.Fatal(err)
	}
	// Further site-1 allocations fall back...
	if err := sa.AllocAt(3, 500, 1); err != nil {
		t.Fatal(err)
	}
	if sa.Counts().ArenaFallbacks != 1 {
		t.Fatalf("fallbacks %d, want 1", sa.Counts().ArenaFallbacks)
	}
	// ...but site 2 keeps bump-allocating indefinitely.
	for i := trace.ObjectID(100); i < 300; i++ {
		if err := sa.AllocAt(i, 500, 2); err != nil {
			t.Fatal(err)
		}
		if err := sa.Free(i); err != nil {
			t.Fatal(err)
		}
	}
	c := sa.Counts()
	if c.ArenaFallbacks != 1 {
		t.Fatalf("pollution leaked across sites: %d fallbacks", c.ArenaFallbacks)
	}
	if sa.PinnedPools() != 1 {
		t.Fatalf("pinned pools %d, want 1", sa.PinnedPools())
	}
}

func TestSiteArenaHashBucketsBounded(t *testing.T) {
	sa := &SiteArena{ArenasPerSite: 1, ArenaSize: 1000, MaxSites: 2}
	for site := uint64(0); site < 5; site++ {
		if err := sa.AllocAt(trace.ObjectID(site), 100, site); err != nil {
			t.Fatal(err)
		}
	}
	// Five sites hash into at most two pools; nobody falls back.
	if got := sa.ArenaArea(); got != 2*1000 {
		t.Fatalf("arena area %d, want bound at 2 pools", got)
	}
	if sa.Counts().ArenaFallbacks != 0 {
		t.Fatalf("fallbacks %d, want 0 under hashing", sa.Counts().ArenaFallbacks)
	}
	if sa.Counts().ArenaAllocs != 5 {
		t.Fatalf("arena allocs %d, want 5", sa.Counts().ArenaAllocs)
	}
}

func TestSiteArenaOversized(t *testing.T) {
	sa := NewSiteArena()
	if err := sa.AllocAt(1, 6144, 3); err != nil {
		t.Fatal(err)
	}
	if sa.Counts().ArenaAllocs != 0 {
		t.Fatal("oversized object entered a site arena")
	}
	if sa.Counts().ArenaFallbacks != 0 {
		t.Fatal("oversized object miscounted as fallback")
	}
	mustFree(t, sa, 1)
}

// TestFFBlockPoolRecycles checks the block pool's two promises: records
// released by coalescing are handed back by later splits (no unbounded
// growth), and a recycled record arrives fully zeroed.
func TestFFBlockPoolRecycles(t *testing.T) {
	var p ffBlockPool
	a := p.get()
	a.addr, a.size, a.free = 1, 2, true
	a.aPrev, a.fNext = a, a
	p.put(a)
	b := p.get()
	if b != a {
		t.Fatal("released record not reused LIFO")
	}
	if *b != (ffBlock{}) {
		t.Fatalf("recycled record not zeroed: %+v", *b)
	}
	// Slabs grow geometrically and are consumed record by record.
	seen := map[*ffBlock]bool{b: true}
	for i := 0; i < 10_000; i++ {
		nb := p.get()
		if seen[nb] {
			t.Fatalf("fresh get returned a live record after %d gets", i)
		}
		seen[nb] = true
	}
	// A churn loop through the allocator itself must keep the structures
	// sound while blocks recycle underneath it.
	ff := NewFirstFit()
	for i := 0; i < 2000; i++ {
		id := trace.ObjectID(i)
		if err := ff.Alloc(id, int64(16+i%512), false); err != nil {
			t.Fatal(err)
		}
		if i%3 != 0 {
			if err := ff.Free(id); err != nil {
				t.Fatal(err)
			}
		}
		if i%500 == 0 {
			if err := ff.CheckInvariants(); err != nil {
				t.Fatalf("iteration %d: %v", i, err)
			}
		}
	}
	if err := ff.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
