package heapsim

import (
	"fmt"
	"testing"
)

// TestAllocatorErrorPaths pins the shared error surface of every
// simulator: double allocation and unknown free must be rejected with the
// exact heapsim error messages (comparison tooling greps them), and Addr
// must report liveness truthfully for dead and never-alive ids.
func TestAllocatorErrorPaths(t *testing.T) {
	cases := []struct {
		name string
		mk   func() Allocator
	}{
		{"firstfit", func() Allocator { return NewFirstFit() }},
		{"bestfit", func() Allocator { return NewBestFit() }},
		{"bsd", func() Allocator { return NewBSD() }},
		{"arena", func() Allocator { return NewArena() }},
		{"sitearena", func() Allocator { return NewSiteArena() }},
		{"custom", func() Allocator { return NewCustom([]int64{16, 64}) }},
		{"segfit", func() Allocator { return NewSegFit() }},
	}
	for _, tc := range cases {
		for _, short := range []bool{false, true} {
			t.Run(fmt.Sprintf("%s/short=%v", tc.name, short), func(t *testing.T) {
				a := tc.mk()
				if err := a.Alloc(1, 64, short); err != nil {
					t.Fatal(err)
				}

				err := a.Alloc(1, 32, short)
				want := fmt.Sprintf("heapsim: %s: object 1 allocated while already live", tc.name)
				if err == nil || err.Error() != want {
					t.Fatalf("double alloc: got %v, want %q", err, want)
				}

				err = a.Free(99)
				want = fmt.Sprintf("heapsim: %s: free of unknown object 99", tc.name)
				if err == nil || err.Error() != want {
					t.Fatalf("unknown free: got %v, want %q", err, want)
				}

				if err := a.Alloc(2, 16, short); err != nil {
					t.Fatal(err)
				}
				if err := a.Free(2); err != nil {
					t.Fatal(err)
				}
				err = a.Free(2)
				want = fmt.Sprintf("heapsim: %s: free of unknown object 2", tc.name)
				if err == nil || err.Error() != want {
					t.Fatalf("double free: got %v, want %q", err, want)
				}

				if _, ok := a.Addr(1); !ok {
					t.Fatal("Addr reports live object 1 as dead")
				}
				if _, ok := a.Addr(2); ok {
					t.Fatal("Addr reports freed object 2 as live")
				}
				if _, ok := a.Addr(77); ok {
					t.Fatal("Addr reports never-allocated object 77 as live")
				}

				// Error paths must not corrupt the op counts: two
				// successful allocs, one successful free.
				c := a.Counts()
				if c.Allocs != 2 || c.Frees != 1 {
					t.Fatalf("counts after rejected ops: %+v, want Allocs=2 Frees=1", c)
				}
			})
		}
	}
}

// TestAllocatorRejectsNonPositiveSize: a non-positive request is a trace
// corruption, never a silent no-op.
func TestAllocatorRejectsNonPositiveSize(t *testing.T) {
	cases := []struct {
		name string
		mk   func() Allocator
	}{
		{"firstfit", func() Allocator { return NewFirstFit() }},
		{"bestfit", func() Allocator { return NewBestFit() }},
		{"bsd", func() Allocator { return NewBSD() }},
		{"arena", func() Allocator { return NewArena() }},
		{"sitearena", func() Allocator { return NewSiteArena() }},
		{"custom", func() Allocator { return NewCustom(nil) }},
		{"segfit", func() Allocator { return NewSegFit() }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			a := tc.mk()
			for _, sz := range []int64{0, -8} {
				if err := a.Alloc(1, sz, false); err == nil {
					t.Fatalf("size %d accepted", sz)
				}
			}
			if got := a.Counts().Allocs; got != 0 {
				t.Fatalf("rejected allocs counted: %d", got)
			}
		})
	}
}
