package heapsim

import (
	"fmt"
	"math/bits"

	"repro/internal/obs"
	"repro/internal/trace"
)

// BSD simulates the 4.2BSD (Kingsley) malloc: requests are rounded up to a
// power of two (including a small header), each power-of-two class keeps a
// LIFO free list, empty lists are refilled by carving a page-sized slab,
// and nothing is ever split or coalesced. Allocation and free are a few
// loads and stores — the cheap, memory-hungry end of the Table 9 spectrum.
type BSD struct {
	// Header is the per-object bookkeeping overhead (default 8, as in
	// the historical implementation's overhead union).
	Header int64
	// PageSize is the slab carve granularity (default 4KB).
	PageSize int64
	// MinBucket is the smallest chunk size as a log2 (default 4: 16B).
	MinBucket int

	initialized bool
	heapEnd     int64
	liveBytes   int64

	// freeLists is indexed by bucket (log2 chunk size); bucketFor yields
	// at most 64, so a fixed array replaces the old map and the hot paths
	// index it directly.
	freeLists [65][]int64
	live      objIndex[bsdObj]
	ops       OpCounts
	obs       *bsdObs // nil unless a collector is attached
}

// bsdObs caches resolved metric handles for the hot paths.
type bsdObs struct {
	col     *obs.Collector
	buckets *obs.Histogram // bucket index per allocation (linear)
	carves  *obs.Counter
}

type bsdObj struct {
	addr   int64
	bucket int
	size   int64 // requested bytes, for layout audits
}

// NewBSD returns a BSD malloc simulator with the default geometry.
func NewBSD() *BSD {
	b := &BSD{}
	b.init()
	return b
}

func (b *BSD) init() {
	if b.initialized {
		return
	}
	if b.Header == 0 {
		b.Header = 8
	}
	if b.PageSize == 0 {
		b.PageSize = 4 << 10
	}
	if b.MinBucket == 0 {
		b.MinBucket = 4
	}
	b.initialized = true
}

// Observe implements Observable.
func (b *BSD) Observe(col *obs.Collector) {
	b.init()
	if col == nil {
		b.obs = nil
		return
	}
	b.obs = &bsdObs{
		col:     col,
		buckets: col.LinearHistogram("bsd.bucket", 1, 32),
		carves:  col.Counter("bsd.carves"),
	}
}

// bucketFor returns the bucket index (log2 of the chunk size) for a
// request.
func (b *BSD) bucketFor(size int64) int {
	need := uint64(size + b.Header)
	k := bits.Len64(need - 1) // ceil(log2(need))
	if k < b.MinBucket {
		k = b.MinBucket
	}
	return k
}

// Alloc implements Allocator; predictedShort is ignored.
func (b *BSD) Alloc(id trace.ObjectID, size int64, _ bool) error {
	b.init()
	if size <= 0 {
		return fmt.Errorf("heapsim: non-positive allocation size %d", size)
	}
	if _, dup := b.live.get(id); dup {
		return errDoubleAlloc("bsd", id)
	}
	bucket := b.bucketFor(size)
	b.ops.Allocs++
	b.ops.BSDBucketSum += int64(bucket)
	if b.obs != nil {
		b.obs.buckets.Observe(int64(bucket))
	}

	list := b.freeLists[bucket]
	if len(list) == 0 {
		// Carve a slab into chunks of this class.
		b.ops.BSDCarves++
		chunk := int64(1) << bucket
		slab := align(chunk, b.PageSize)
		if b.obs != nil {
			b.obs.carves.Inc()
			b.obs.col.Emit(obs.EvHeapGrow, slab)
		}
		start := b.heapEnd
		b.heapEnd += slab
		for a := start; a+chunk <= start+slab; a += chunk {
			list = append(list, a)
		}
	}
	addr := list[len(list)-1]
	b.freeLists[bucket] = list[:len(list)-1]
	b.live.put(id, bsdObj{addr: addr, bucket: bucket, size: size})
	b.liveBytes += size
	return nil
}

// Free implements Allocator: push the chunk back on its bucket's list.
func (b *BSD) Free(id trace.ObjectID) error {
	b.init()
	o, ok := b.live.del(id)
	if !ok {
		return errUnknownFree("bsd", id)
	}
	b.liveBytes -= o.size
	b.ops.Frees++
	b.freeLists[o.bucket] = append(b.freeLists[o.bucket], o.addr)
	return nil
}

// HeapSize returns the current break. BSD's heap never shrinks, so the
// maximum equals the current value.
func (b *BSD) HeapSize() int64 { return b.heapEnd }

// MaxHeapSize implements Allocator.
func (b *BSD) MaxHeapSize() int64 { return b.heapEnd }

// Counts implements Allocator.
func (b *BSD) Counts() OpCounts { return b.ops }

// Addr implements Allocator.
func (b *BSD) Addr(id trace.ObjectID) (int64, bool) {
	o, ok := b.live.get(id)
	if !ok {
		return 0, false
	}
	return o.addr + b.Header, true
}
