package heapsim

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/trace"
)

// Custom simulates a CUSTOMALLOC-style allocator (Grunwald & Zorn, the
// paper's reference [9] and the other profile-based-optimization lineage
// it builds on): training profiles identify the hottest request sizes,
// and the synthesized allocator gives each of those sizes its own exact-
// fit LIFO free list, carved from dedicated slabs with no per-object
// search, split, or coalesce. Everything else falls back to first-fit.
//
// Unlike the arena allocator it does not use lifetime prediction — it
// optimizes the speed of hot sizes, not the placement of short-lived
// objects — which is exactly the contrast the paper draws ("no
// optimization based upon predicted lifetimes is performed in their
// work").
type Custom struct {
	// HotSizes are the profiled request sizes (after Rounding) that get
	// dedicated free lists.
	HotSizes []int64
	// Rounding quantizes request sizes before the hot-size check
	// (default 8, the allocator's alignment).
	Rounding int64
	// SlabSize is the carve granularity for hot-size slabs (default 4KB).
	SlabSize int64
	// General is the fallback; a default FirstFit if nil.
	General *FirstFit

	initialized bool
	hot         map[int64]*sizeClass
	heapEnd     int64 // dedicated slab region (separate from General)
	live        map[trace.ObjectID]customObj
	ops         OpCounts
	obs         *customObs // nil unless a collector is attached
}

// customObs caches resolved metric handles for the hot paths.
type customObs struct {
	col    *obs.Collector
	carves *obs.Counter
}

type sizeClass struct {
	free []int64 // free chunk addresses, LIFO
}

type customObj struct {
	addr    int64
	size    int64 // rounded size class (the chunk extent)
	payload int64 // requested bytes, for layout audits
}

// customBase places the slab region away from the general heap's address
// space, like the arena area.
const customBase = int64(1) << 41

// NewCustom returns a CUSTOMALLOC-style simulator for the given hot sizes.
func NewCustom(hotSizes []int64) *Custom {
	c := &Custom{HotSizes: hotSizes}
	c.init()
	return c
}

func (c *Custom) init() {
	if c.initialized {
		return
	}
	if c.Rounding == 0 {
		c.Rounding = 8
	}
	if c.SlabSize == 0 {
		c.SlabSize = 4 << 10
	}
	if c.General == nil {
		c.General = &FirstFit{name: "custom", prefix: "firstfit"}
	}
	c.hot = make(map[int64]*sizeClass, len(c.HotSizes))
	for _, s := range c.HotSizes {
		c.hot[c.round(s)] = &sizeClass{}
	}
	c.live = make(map[trace.ObjectID]customObj)
	c.initialized = true
}

func (c *Custom) round(size int64) int64 {
	return (size + c.Rounding - 1) / c.Rounding * c.Rounding
}

// Observe implements Observable; the collector also attaches to the
// general fallback heap.
func (c *Custom) Observe(col *obs.Collector) {
	c.init()
	c.General.Observe(col)
	if col == nil {
		c.obs = nil
		return
	}
	c.obs = &customObs{col: col, carves: col.Counter("custom.carves")}
}

// Alloc implements Allocator; the predictedShort hint is ignored.
func (c *Custom) Alloc(id trace.ObjectID, size int64, _ bool) error {
	c.init()
	if size <= 0 {
		return fmt.Errorf("heapsim: non-positive allocation size %d", size)
	}
	if _, dup := c.live[id]; dup {
		return errDoubleAlloc("custom", id)
	}
	rs := c.round(size)
	class, ok := c.hot[rs]
	if !ok {
		if err := c.General.Alloc(id, size, false); err != nil {
			return err
		}
		c.ops.Allocs++
		c.ops.GeneralBytes += size
		return nil
	}
	c.ops.Allocs++
	if len(class.free) == 0 {
		// Carve a slab into exact-size chunks (no headers: the size is
		// implied by the owning list, one of CUSTOMALLOC's savings).
		c.ops.BSDCarves++
		slab := align(rs, c.SlabSize)
		if c.obs != nil {
			c.obs.carves.Inc()
			c.obs.col.Emit(obs.EvHeapGrow, slab)
		}
		start := customBase + c.heapEnd
		c.heapEnd += slab
		for a := start; a+rs <= start+slab; a += rs {
			class.free = append(class.free, a)
		}
	}
	addr := class.free[len(class.free)-1]
	class.free = class.free[:len(class.free)-1]
	c.live[id] = customObj{addr: addr, size: rs, payload: size}
	c.ops.ArenaBytes += size // reuse the counter: bytes on the fast path
	return nil
}

// Free implements Allocator.
func (c *Custom) Free(id trace.ObjectID) error {
	c.init()
	o, ok := c.live[id]
	if ok {
		delete(c.live, id)
		c.ops.Frees++
		c.hot[o.size].free = append(c.hot[o.size].free, o.addr)
		return nil
	}
	if err := c.General.Free(id); err != nil {
		return err
	}
	c.ops.Frees++
	return nil
}

// HeapSize implements Allocator: slab region plus the general heap.
func (c *Custom) HeapSize() int64 {
	c.init()
	return c.heapEnd + c.General.HeapSize()
}

// MaxHeapSize implements Allocator (the slab region never shrinks).
func (c *Custom) MaxHeapSize() int64 {
	c.init()
	return c.heapEnd + c.General.MaxHeapSize()
}

// Counts implements Allocator, merging the fallback's counters.
func (c *Custom) Counts() OpCounts {
	c.init()
	out := c.ops
	g := c.General.Counts()
	out.Allocs += 0 // general allocs already counted above
	out.FFAllocs = g.FFAllocs
	out.FFFrees = g.FFFrees
	out.FFProbes = g.FFProbes
	out.FFExtends = g.FFExtends
	out.FFSplits = g.FFSplits
	out.FFCoalesces = g.FFCoalesces
	return out
}

// Addr implements Allocator.
func (c *Custom) Addr(id trace.ObjectID) (int64, bool) {
	c.init()
	if o, ok := c.live[id]; ok {
		return o.addr, true
	}
	return c.General.Addr(id)
}

// FastPathFrac reports the fraction of allocations served by the
// synthesized per-size lists.
func (c *Custom) FastPathFrac() float64 {
	total := c.ops.Allocs
	if total == 0 {
		return 0
	}
	general := c.Counts().FFAllocs
	return float64(total-general) / float64(total)
}
