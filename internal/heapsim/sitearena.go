package heapsim

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/trace"
)

// SiteArena explores the algorithm space the paper's conclusion leaves
// open ("Further exploration of algorithms based on this idea are
// required"): instead of one shared pool of arenas, predicted short-lived
// *sites* are hashed across many small pools (Hanson's original design
// gave each programmer-declared lifetime its own arena; hashing bounds
// the memory when a program has thousands of predictor sites, as
// ESPRESSO does).
//
// The payoff is pollution isolation — the paper's CFRAC failure mode. In
// the shared design, one site's mispredicted long-lived objects pin all
// sixteen arenas and the whole allocator degenerates. Two mechanisms
// contain it here:
//
//  1. site-hashed pools: a polluting site only poisons the pool its hash
//     lands in, so unrelated pools keep bump-allocating;
//  2. online demotion: a site whose allocations repeatedly find their
//     pool pinned (DemoteAfter strikes) has its prediction revoked for
//     the rest of the run and goes to the general heap — the runtime
//     answer to the paper's observation that "high error rates degrade
//     performance dramatically and it will be important to identify
//     programs that exhibit them". Once the polluter is demoted, its
//     pool drains and the innocent sites sharing the bucket resume.
//
// Demotion blames the sites that OWN live objects in the pinned pool
// (the actual polluters), so innocents sharing a bucket are never
// revoked: they fall back only while the polluter's objects still pin
// the pool, and resume once it drains. The arena area is bounded by
// MaxSites x ArenasPerSite x ArenaSize.
type SiteArena struct {
	// ArenasPerSite and ArenaSize give each site's pool (default 2 x 4KB).
	ArenasPerSite int
	ArenaSize     int64
	// MaxSites is the number of hash buckets sites map onto (default
	// 64, i.e. at most 512KB of arena area with the defaults).
	MaxSites int
	// DemoteAfter is how many pinned-pool fallbacks a site tolerates
	// before its prediction is revoked for the rest of the run
	// (default 4; 0 keeps the default, negative disables demotion).
	DemoteAfter int
	// General is the fallback allocator; a default FirstFit if nil.
	General *FirstFit

	initialized bool
	pools       map[uint64]*sitePool
	where       map[trace.ObjectID]siteLoc
	nextPool    int
	strikes     map[uint64]int
	demoted     map[uint64]bool
	ops         OpCounts
	obs         *siteArenaObs // nil unless a collector is attached
}

// siteArenaObs caches resolved metric handles for the hot paths.
type siteArenaObs struct {
	col       *obs.Collector
	scanLen   *obs.Histogram // arenas examined per in-pool hunt (linear)
	allocSize *obs.Histogram // pool-placed sizes (log2)
	resets    *obs.Counter
	fallbacks *obs.Counter
	demotions *obs.Counter
}

type sitePool struct {
	index  int // pool number, for address synthesis
	arenas []siteArenaState
	cur    int
}

// siteArenaState is an arena plus the sites owning its live objects.
type siteArenaState struct {
	used   int64
	count  int64
	owners map[uint64]int64 // full site key -> live objects
}

type siteLoc struct {
	bucket uint64 // pool key (hashed)
	full   uint64 // owning site
	idx    int
	off    int64
	size   int64 // requested bytes, for layout audits
}

// siteArenaBase places the pools' synthetic addresses away from both the
// general heap and the shared Arena window.
const siteArenaBase = int64(1) << 42

// NewSiteArena returns a per-site arena allocator with defaults.
func NewSiteArena() *SiteArena {
	s := &SiteArena{}
	s.init()
	return s
}

func (s *SiteArena) init() {
	if s.initialized {
		return
	}
	if s.ArenasPerSite == 0 {
		s.ArenasPerSite = 2
	}
	if s.ArenaSize == 0 {
		s.ArenaSize = 4 << 10
	}
	if s.MaxSites == 0 {
		s.MaxSites = 64
	}
	if s.DemoteAfter == 0 {
		s.DemoteAfter = 4
	}
	s.strikes = make(map[uint64]int)
	s.demoted = make(map[uint64]bool)
	if s.General == nil {
		s.General = &FirstFit{name: "sitearena", prefix: "firstfit"}
	}
	s.pools = make(map[uint64]*sitePool)
	s.where = make(map[trace.ObjectID]siteLoc)
	s.initialized = true
}

// Observe implements Observable; the collector also attaches to the
// general fallback heap.
func (s *SiteArena) Observe(col *obs.Collector) {
	s.init()
	s.General.Observe(col)
	if col == nil {
		s.obs = nil
		return
	}
	s.obs = &siteArenaObs{
		col:       col,
		scanLen:   col.LinearHistogram("sitearena.scan_len", 1, 16),
		allocSize: col.Log2Histogram("sitearena.alloc_size", 16),
		resets:    col.Counter("sitearena.resets"),
		fallbacks: col.Counter("sitearena.fallbacks"),
		demotions: col.Counter("sitearena.demotions"),
	}
}

// AllocAt places an object predicted short-lived at the given site key
// (any stable 64-bit identity for the site; core uses the predictor's
// mapped site). Unpredicted allocations go through Alloc.
func (s *SiteArena) AllocAt(id trace.ObjectID, size int64, site uint64) error {
	s.init()
	if size <= 0 {
		return fmt.Errorf("heapsim: non-positive allocation size %d", size)
	}
	if _, dup := s.where[id]; dup {
		return errDoubleAlloc("sitearena", id)
	}
	if _, live := s.General.Addr(id); live {
		return errDoubleAlloc("sitearena", id)
	}
	s.ops.PredChecks++
	if size > s.ArenaSize {
		return s.generalAlloc(id, size, false)
	}
	if s.demoted[site] {
		return s.generalAlloc(id, size, true)
	}
	fullSite := site
	bucket := site % uint64(s.MaxSites) // hash bucket; pools are bounded
	pool := s.pools[bucket]
	if pool == nil {
		pool = &sitePool{
			index:  s.nextPool,
			arenas: make([]siteArenaState, s.ArenasPerSite),
		}
		s.nextPool++
		s.pools[bucket] = pool
	}
	// Bump in the pool's current arena, hunting within the pool only.
	cur := &pool.arenas[pool.cur]
	if cur.used+size > s.ArenaSize {
		found := false
		for i := 1; i <= len(pool.arenas); i++ {
			idx := (pool.cur + i) % len(pool.arenas)
			s.ops.ArenaScanSteps++
			if pool.arenas[idx].count == 0 {
				pool.cur = idx
				pool.arenas[idx].used = 0
				s.ops.ArenaResets++
				if s.obs != nil {
					s.obs.scanLen.Observe(int64(i))
					s.obs.resets.Inc()
					s.obs.col.Emit(obs.EvArenaReuse, int64(pool.index))
				}
				found = true
				break
			}
		}
		if !found {
			// Strike the sites whose live objects pin this pool; the
			// polluters, not the blocked allocator.
			if s.DemoteAfter > 0 {
				for ai := range pool.arenas {
					for owner, n := range pool.arenas[ai].owners {
						if n <= 0 || s.demoted[owner] {
							continue
						}
						s.strikes[owner]++
						if s.strikes[owner] >= s.DemoteAfter {
							s.demoted[owner] = true
							s.ops.ArenaDemotions++
							if s.obs != nil {
								s.obs.demotions.Inc()
								s.obs.col.Emit(obs.EvPredictorMiss, int64(owner))
							}
						}
					}
				}
			}
			if s.obs != nil {
				s.obs.scanLen.Observe(int64(len(pool.arenas)))
				s.obs.fallbacks.Inc()
				s.obs.col.Emit(obs.EvArenaOverflow, size)
			}
			return s.generalAlloc(id, size, true)
		}
		cur = &pool.arenas[pool.cur]
	}
	s.where[id] = siteLoc{bucket: bucket, full: fullSite, idx: pool.cur, off: cur.used, size: size}
	if cur.owners == nil {
		cur.owners = make(map[uint64]int64, 4)
	}
	cur.owners[fullSite]++
	cur.used += size
	cur.count++
	s.ops.Allocs++
	s.ops.ArenaAllocs++
	s.ops.ArenaObjects++
	s.ops.ArenaBytes += size
	if s.obs != nil {
		s.obs.allocSize.Observe(size)
	}
	return nil
}

// Alloc implements Allocator: without a site key, predicted allocations
// are keyed on a single shared pseudo-site (degenerating toward the
// shared design); core.RunSimSited uses AllocAt instead.
func (s *SiteArena) Alloc(id trace.ObjectID, size int64, predictedShort bool) error {
	s.init()
	if !predictedShort {
		return s.generalAlloc(id, size, false)
	}
	return s.AllocAt(id, size, 0)
}

func (s *SiteArena) generalAlloc(id trace.ObjectID, size int64, fallback bool) error {
	if _, dup := s.where[id]; dup {
		return errDoubleAlloc("sitearena", id)
	}
	if err := s.General.Alloc(id, size, false); err != nil {
		return err
	}
	s.ops.Allocs++
	s.ops.GeneralBytes += size
	if fallback {
		s.ops.ArenaFallbacks++
	}
	return nil
}

// Free implements Allocator.
func (s *SiteArena) Free(id trace.ObjectID) error {
	s.init()
	if loc, ok := s.where[id]; ok {
		delete(s.where, id)
		st := &s.pools[loc.bucket].arenas[loc.idx]
		if st.count <= 0 {
			return fmt.Errorf("heapsim: site-arena count underflow freeing %d", id)
		}
		st.count--
		if st.owners[loc.full]--; st.owners[loc.full] <= 0 {
			delete(st.owners, loc.full)
		}
		s.ops.Frees++
		s.ops.ArenaFrees++
		return nil
	}
	if err := s.General.Free(id); err != nil {
		return err
	}
	s.ops.Frees++
	return nil
}

// ArenaArea reports the total arena bytes currently reserved.
func (s *SiteArena) ArenaArea() int64 {
	s.init()
	return int64(len(s.pools)) * int64(s.ArenasPerSite) * s.ArenaSize
}

// HeapSize implements Allocator: general heap plus the reserved pools.
func (s *SiteArena) HeapSize() int64 {
	s.init()
	return s.General.HeapSize() + s.ArenaArea()
}

// MaxHeapSize implements Allocator (pools only grow).
func (s *SiteArena) MaxHeapSize() int64 {
	s.init()
	return s.General.MaxHeapSize() + s.ArenaArea()
}

// Counts implements Allocator, merging the fallback heap's counters.
func (s *SiteArena) Counts() OpCounts {
	s.init()
	c := s.ops
	g := s.General.Counts()
	c.FFAllocs = g.FFAllocs
	c.FFFrees = g.FFFrees
	c.FFProbes = g.FFProbes
	c.FFExtends = g.FFExtends
	c.FFSplits = g.FFSplits
	c.FFCoalesces = g.FFCoalesces
	return c
}

// Addr implements Allocator with synthetic pool addresses.
func (s *SiteArena) Addr(id trace.ObjectID) (int64, bool) {
	s.init()
	if loc, ok := s.where[id]; ok {
		pool := s.pools[loc.bucket]
		poolBase := siteArenaBase + int64(pool.index)*int64(s.ArenasPerSite)*s.ArenaSize
		return poolBase + int64(loc.idx)*s.ArenaSize + loc.off, true
	}
	return s.General.Addr(id)
}

// ArenaOccupancy reports the fraction of the reserved pool area's bytes
// under the bump pointers of arenas holding live objects.
func (s *SiteArena) ArenaOccupancy() float64 {
	s.init()
	area := s.ArenaArea()
	if area == 0 {
		return 0
	}
	var used int64
	for _, pool := range s.pools {
		for _, a := range pool.arenas {
			if a.count > 0 {
				used += a.used
			}
		}
	}
	return float64(used) / float64(area)
}

// PinnedPools reports how many site pools currently have every arena
// holding a live object.
func (s *SiteArena) PinnedPools() int {
	s.init()
	n := 0
	for _, pool := range s.pools {
		pinned := true
		for _, a := range pool.arenas {
			if a.count == 0 {
				pinned = false
				break
			}
		}
		if pinned {
			n++
		}
	}
	return n
}
