package heapsim

import (
	"sort"

	"repro/internal/trace"
)

// objIndex is the allocators' live-object table: ObjectID -> per-object
// state. Trace object ids are small dense integers (generators hand them
// out sequentially from zero), which a Go map squanders — every per-event
// lookup pays hashing and bucket probes, and replay profiles show the map
// accesses dominating the hot loop. objIndex replaces the map with a
// paged array: a spine of fixed-size pages indexed by id high bits, a
// presence bitmap per page, and plain array indexing on the hot path.
//
// Memory stays proportional to the live set, not the total object count:
// a page is allocated when its first id arrives and recycled to a free
// list when its last object dies, so long runs with churning ids touch a
// bounded working set of pages. Ids beyond the spine cap (2^25, far past
// any generated trace) spill into an ordinary map, keeping the index
// correct for adversarial inputs — fuzzed traces reach this path, replay
// never does.
type objIndex[T any] struct {
	spine    []*objPage[T]
	pool     []*objPage[T] // empty pages awaiting reuse
	overflow map[trace.ObjectID]T
	n        int
}

const (
	objPageBits = 9
	objPageLen  = 1 << objPageBits
	objPageMask = objPageLen - 1
	// objMaxID caps the spine at 1<<16 pages (512KB of pointers); ids at
	// or above it take the overflow map.
	objMaxID = trace.ObjectID(1) << (objPageBits + 16)
)

type objPage[T any] struct {
	n       int
	present [objPageLen]bool
	vals    [objPageLen]T
}

// get returns the value stored for id.
func (x *objIndex[T]) get(id trace.ObjectID) (T, bool) {
	if id < objMaxID {
		pi := int(id >> objPageBits)
		if pi < len(x.spine) {
			if p := x.spine[pi]; p != nil {
				s := id & objPageMask
				return p.vals[s], p.present[s]
			}
		}
		var zero T
		return zero, false
	}
	v, ok := x.overflow[id]
	return v, ok
}

// put stores v for id, overwriting any existing value.
func (x *objIndex[T]) put(id trace.ObjectID, v T) {
	if id < objMaxID {
		pi := int(id >> objPageBits)
		for len(x.spine) <= pi {
			x.spine = append(x.spine, nil)
		}
		p := x.spine[pi]
		if p == nil {
			if np := len(x.pool); np > 0 {
				p = x.pool[np-1]
				x.pool[np-1] = nil
				x.pool = x.pool[:np-1]
			} else {
				p = new(objPage[T])
			}
			x.spine[pi] = p
		}
		s := id & objPageMask
		if !p.present[s] {
			p.present[s] = true
			p.n++
			x.n++
		}
		p.vals[s] = v
		return
	}
	if x.overflow == nil {
		x.overflow = make(map[trace.ObjectID]T)
	}
	if _, ok := x.overflow[id]; !ok {
		x.n++
	}
	x.overflow[id] = v
}

// del removes id, returning the value it held — lookup and delete in one
// step, which is exactly the shape of every allocator's Free path.
func (x *objIndex[T]) del(id trace.ObjectID) (T, bool) {
	var zero T
	if id < objMaxID {
		pi := int(id >> objPageBits)
		if pi >= len(x.spine) {
			return zero, false
		}
		p := x.spine[pi]
		if p == nil {
			return zero, false
		}
		s := id & objPageMask
		if !p.present[s] {
			return zero, false
		}
		v := p.vals[s]
		p.vals[s] = zero // recycled pages must not pin dead state
		p.present[s] = false
		p.n--
		x.n--
		if p.n == 0 {
			x.spine[pi] = nil
			x.pool = append(x.pool, p)
		}
		return v, true
	}
	v, ok := x.overflow[id]
	if ok {
		delete(x.overflow, id)
		x.n--
	}
	return v, ok
}

// len returns the number of stored objects.
func (x *objIndex[T]) len() int { return x.n }

// forEach visits every stored object in ascending id order — unlike a map
// walk, iteration order is deterministic, so consumers (heap walkers,
// draining scans) need no defensive sorting.
func (x *objIndex[T]) forEach(fn func(id trace.ObjectID, v T)) {
	for pi, p := range x.spine {
		if p == nil {
			continue
		}
		base := trace.ObjectID(pi) << objPageBits
		for s := 0; s < objPageLen; s++ {
			if p.present[s] {
				fn(base+trace.ObjectID(s), p.vals[s])
			}
		}
	}
	if len(x.overflow) > 0 {
		ids := make([]trace.ObjectID, 0, len(x.overflow))
		for id := range x.overflow {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			fn(id, x.overflow[id])
		}
	}
}
