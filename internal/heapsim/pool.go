package heapsim

import (
	"fmt"

	"repro/internal/trace"
)

// PoolStride is the address-space offset between pool members: member i's
// simulated addresses are shifted by i*PoolStride. It sits above every
// single-allocator base (the arena area at 1<<40, the custom pools at
// 1<<41, the site-arena pools at 1<<42), so member windows can never
// collide as long as one simulator's own address space stays under 16TB —
// orders of magnitude beyond any modeled heap.
const PoolStride int64 = 1 << 44

// Pool composes several allocator simulators into one shared address
// space — the arena-pool substrate of the multi-tenant cluster. Placement
// is the caller's decision: AllocOn routes an object to an explicit
// member (the cluster's RoutingPolicy picks which), while the plain
// Allocator interface sends everything to member 0, which makes a
// one-member pool behave exactly like its member — the identity the
// single-tenant metamorphic test pins.
//
// Aggregation over members is exact and deterministic: HeapSize and
// Counts sum, Addr offsets by PoolStride, and MaxHeapSize sums the member
// high-water marks (the simulators never return address space, so their
// per-member maxima coincide in time and the sum equals the true
// pool-wide peak). The pool also tracks per-member live payload bytes,
// the signal the least-fragmented routing policy steers by.
//
// Pool deliberately does not implement Observable: member simulators keep
// their internal metric families to themselves in pooled runs, so a
// pooled replay's snapshot carries exactly the tracker-driven families —
// which is what makes cluster snapshots comparable across pool shapes.
type Pool struct {
	name    string
	members []Allocator
	owner   map[trace.ObjectID]poolSlot
	live    []int64 // per-member live payload bytes
}

// poolSlot remembers where a live object went and how big its payload is.
type poolSlot struct {
	member int
	size   int64
}

// NewPool builds a pool over the given members. The name labels the pool
// in snapshots and reports (core's allocator naming hook picks it up);
// members must not be shared with any other consumer.
func NewPool(name string, members ...Allocator) (*Pool, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("heapsim: pool needs at least one member")
	}
	for i, m := range members {
		if m == nil {
			return nil, fmt.Errorf("heapsim: pool member %d is nil", i)
		}
	}
	return &Pool{
		name:    name,
		members: members,
		owner:   make(map[trace.ObjectID]poolSlot),
		live:    make([]int64, len(members)),
	}, nil
}

// AllocatorName implements core's naming hook so pooled snapshots carry
// the pool's label instead of an empty allocator name.
func (p *Pool) AllocatorName() string { return p.name }

// Members returns the member count.
func (p *Pool) Members() int { return len(p.members) }

// Member returns member i (for audits and tests; routing goes through
// AllocOn).
func (p *Pool) Member(i int) Allocator { return p.members[i] }

// MemberLive returns the live payload bytes currently placed on member i.
func (p *Pool) MemberLive(i int) int64 { return p.live[i] }

// MemberHeap returns member i's current address-space footprint.
func (p *Pool) MemberHeap(i int) int64 { return p.members[i].HeapSize() }

// AllocOn places an object on an explicit member — the routed entry point
// the cluster uses. The id must be globally unique across the pool.
func (p *Pool) AllocOn(member int, id trace.ObjectID, size int64, predictedShort bool) error {
	if member < 0 || member >= len(p.members) {
		return fmt.Errorf("heapsim: pool %q: route to member %d of %d", p.name, member, len(p.members))
	}
	if _, dup := p.owner[id]; dup {
		return errDoubleAlloc("pool", id)
	}
	if err := p.members[member].Alloc(id, size, predictedShort); err != nil {
		return err
	}
	p.owner[id] = poolSlot{member: member, size: size}
	p.live[member] += size
	return nil
}

// Alloc implements Allocator by routing to member 0, making an unrouted
// pool a transparent wrapper around its first member.
func (p *Pool) Alloc(id trace.ObjectID, size int64, predictedShort bool) error {
	return p.AllocOn(0, id, size, predictedShort)
}

// Free releases a live object on whichever member holds it.
func (p *Pool) Free(id trace.ObjectID) error {
	slot, ok := p.owner[id]
	if !ok {
		return errUnknownFree("pool", id)
	}
	if err := p.members[slot.member].Free(id); err != nil {
		return err
	}
	delete(p.owner, id)
	p.live[slot.member] -= slot.size
	return nil
}

// HeapSize sums the members' current footprints.
func (p *Pool) HeapSize() int64 {
	var total int64
	for _, m := range p.members {
		total += m.HeapSize()
	}
	return total
}

// MaxHeapSize sums the members' high-water marks (see the type comment
// for why that equals the pool-wide peak).
func (p *Pool) MaxHeapSize() int64 {
	var total int64
	for _, m := range p.members {
		total += m.MaxHeapSize()
	}
	return total
}

// Counts sums the members' operation counts field-wise.
func (p *Pool) Counts() OpCounts {
	var t OpCounts
	for _, m := range p.members {
		c := m.Counts()
		t.Allocs += c.Allocs
		t.Frees += c.Frees
		t.FFAllocs += c.FFAllocs
		t.FFFrees += c.FFFrees
		t.FFProbes += c.FFProbes
		t.FFExtends += c.FFExtends
		t.FFSplits += c.FFSplits
		t.FFCoalesces += c.FFCoalesces
		t.BSDCarves += c.BSDCarves
		t.BSDBucketSum += c.BSDBucketSum
		t.SegCarves += c.SegCarves
		t.PredChecks += c.PredChecks
		t.ArenaAllocs += c.ArenaAllocs
		t.ArenaFrees += c.ArenaFrees
		t.ArenaResets += c.ArenaResets
		t.ArenaScanSteps += c.ArenaScanSteps
		t.ArenaFallbacks += c.ArenaFallbacks
		t.ArenaDemotions += c.ArenaDemotions
		t.ArenaBytes += c.ArenaBytes
		t.GeneralBytes += c.GeneralBytes
		t.ArenaObjects += c.ArenaObjects
	}
	return t
}

// Addr reports a live object's pool-wide address: its member address
// shifted into the member's PoolStride window.
func (p *Pool) Addr(id trace.ObjectID) (int64, bool) {
	slot, ok := p.owner[id]
	if !ok {
		return 0, false
	}
	addr, live := p.members[slot.member].Addr(id)
	if !live {
		return 0, false
	}
	return addr + int64(slot.member)*PoolStride, true
}

// PinnedArenas sums the pinned-arena counts of members that report one
// (core's finishSim hook), so a pooled arena run surfaces the same Table 7
// statistic as a bare arena run.
func (p *Pool) PinnedArenas() int {
	total := 0
	for _, m := range p.members {
		if ar, ok := m.(interface{ PinnedArenas() int }); ok {
			total += ar.PinnedArenas()
		}
	}
	return total
}

// ArenaOccupancy reports the mean arena-area occupancy across members
// that track one — exactly the member's own figure for a one-member pool,
// zero when no member has arenas.
func (p *Pool) ArenaOccupancy() float64 {
	var sum float64
	n := 0
	for _, m := range p.members {
		if occ, ok := m.(interface{ ArenaOccupancy() float64 }); ok {
			sum += occ.ArenaOccupancy()
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// CheckInvariants runs every member's structural self-check (the
// conformance auditor's hook), plus the pool's own accounting identity:
// per-member live payload sums over the owner map.
func (p *Pool) CheckInvariants() error {
	for i, m := range p.members {
		if ic, ok := m.(interface{ CheckInvariants() error }); ok {
			if err := ic.CheckInvariants(); err != nil {
				return fmt.Errorf("pool %q member %d: %w", p.name, i, err)
			}
		}
	}
	perMember := make([]int64, len(p.members))
	for _, slot := range p.owner {
		perMember[slot.member] += slot.size
	}
	for i, want := range perMember {
		if p.live[i] != want {
			return fmt.Errorf("pool %q member %d: live accounting %d, owner map says %d",
				p.name, i, p.live[i], want)
		}
	}
	return nil
}

// Regions implements Walker: every walker member's windows, shifted into
// that member's PoolStride slot and name-prefixed "m<i>.". Auditing a
// pool requires every member to be a Walker (all built-in simulators
// are); a non-walker member's windows are absent here and Walk reports
// the mismatch.
func (p *Pool) Regions() []Region {
	var out []Region
	for i, m := range p.members {
		w, ok := m.(Walker)
		if !ok {
			continue
		}
		off := int64(i) * PoolStride
		for _, r := range w.Regions() {
			r.Name = fmt.Sprintf("m%d.%s", i, r.Name)
			r.Base += off
			r.End += off
			out = append(out, r)
		}
	}
	return out
}

// Walk implements Walker, emitting every member's spans shifted like
// Regions shifts the windows.
func (p *Pool) Walk(emit func(Span) error) error {
	for i, m := range p.members {
		w, ok := m.(Walker)
		if !ok {
			return fmt.Errorf("heapsim: pool %q: member %d (%T) is not a Walker", p.name, i, m)
		}
		off := int64(i) * PoolStride
		prefix := fmt.Sprintf("m%d.", i)
		err := w.Walk(func(s Span) error {
			s.Region = prefix + s.Region
			s.Addr += off
			return emit(s)
		})
		if err != nil {
			return err
		}
	}
	return nil
}
