package heapsim

import (
	"testing"

	"repro/internal/trace"
)

// TestSegFitClassTable pins the chunk geometry: smallest fitting class
// for small requests, page-rounded exact spans above the last class.
func TestSegFitClassTable(t *testing.T) {
	s := NewSegFit()
	cases := []struct {
		size, chunk int64
	}{
		{1, 16},    // 1+8 -> 16
		{8, 16},    // boundary: 8+8 == 16
		{9, 32},    // 9+8 -> 32
		{24, 32},   // 24+8 == 32
		{100, 112}, // 100+8 -> 112
		{120, 128},
		{1000, 1024},     // 1000+8 -> last class
		{1016, 1024},     // 1016+8 == 1024, last class exactly
		{1017, 4096},     // first large request: page-rounded
		{8000, 8192},     // 8000+8 -> two pages
		{4096 - 8, 4096}, // exactly one page with header
		{4096, 8192},     // 4096+8 spills to the next page
	}
	for _, tc := range cases {
		if got := s.chunkFor(tc.size); got != tc.chunk {
			t.Errorf("chunkFor(%d) = %d, want %d", tc.size, got, tc.chunk)
		}
	}
}

// TestSegFitCarveAndReuse: a carve fills the class list, frees push back
// LIFO, and the heap grows only on refills.
func TestSegFitCarveAndReuse(t *testing.T) {
	s := NewSegFit()
	if err := s.Alloc(1, 40, false); err != nil { // 40+8 -> class 48
		t.Fatal(err)
	}
	if got := s.HeapSize(); got != 4096 {
		t.Fatalf("HeapSize after first carve = %d, want 4096", got)
	}
	if got := s.Counts().SegCarves; got != 1 {
		t.Fatalf("SegCarves = %d, want 1", got)
	}
	// 4096/48 = 85 chunks; 84 remain free after one alloc.
	if got := len(s.free[48]); got != 84 {
		t.Fatalf("free chunks = %d, want 84", got)
	}
	a1, _ := s.Addr(1)
	if err := s.Free(1); err != nil {
		t.Fatal(err)
	}
	if err := s.Alloc(2, 33, false); err != nil { // same class 48
		t.Fatal(err)
	}
	a2, _ := s.Addr(2)
	if a1 != a2 {
		t.Errorf("LIFO reuse: object 2 at %d, freed chunk was at %d", a2, a1)
	}
	if got := s.HeapSize(); got != 4096 {
		t.Errorf("reuse grew the heap to %d", got)
	}
	// The 16-byte tail (4096 - 85*48) must be walked as a free span so
	// the region tiles.
	var tail int64 = -1
	if err := s.Walk(func(sp Span) error {
		if sp.Free && sp.Size == 16 {
			tail = sp.Addr
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if tail != 85*48 {
		t.Errorf("slab tail at %d, want %d", tail, 85*48)
	}
}

// TestSegFitLayoutTiles proves live + free + tail spans tile the region
// exactly after a mixed workload, per the Tiled contract the auditor
// enforces.
func TestSegFitLayoutTiles(t *testing.T) {
	s := NewSegFit()
	sizes := []int64{1, 24, 100, 300, 1016, 2000, 5000, 40, 40, 40}
	for i, sz := range sizes {
		if err := s.Alloc(trace.ObjectID(i), sz, false); err != nil {
			t.Fatal(err)
		}
	}
	for _, id := range []int{1, 3, 5, 8} {
		if err := s.Free(trace.ObjectID(id)); err != nil {
			t.Fatal(err)
		}
	}
	var spans []Span
	if err := s.Walk(func(sp Span) error { spans = append(spans, sp); return nil }); err != nil {
		t.Fatal(err)
	}
	var covered int64
	seen := make(map[int64]bool)
	for _, sp := range spans {
		if seen[sp.Addr] {
			t.Fatalf("two spans at address %d", sp.Addr)
		}
		seen[sp.Addr] = true
		covered += sp.Size
	}
	if covered != s.HeapSize() {
		t.Errorf("spans cover %d bytes, HeapSize is %d", covered, s.HeapSize())
	}
	reg := s.Regions()
	if len(reg) != 1 || !reg[0].Tiled || reg[0].Coalesced || reg[0].Header != 8 {
		t.Errorf("region contract = %+v", reg)
	}
}
