package heapsim

import (
	"testing"

	"repro/internal/trace"
)

// poolOps drives an allocator through a small mixed workload.
type poolOp struct {
	free bool
	id   trace.ObjectID
	size int64
}

var poolScript = []poolOp{
	{id: 1, size: 100},
	{id: 2, size: 24},
	{id: 3, size: 4096},
	{free: true, id: 2},
	{id: 4, size: 24},
	{free: true, id: 1},
	{id: 5, size: 64},
	{free: true, id: 3},
	{free: true, id: 4},
	{id: 6, size: 8},
}

func runScript(t *testing.T, a Allocator) {
	t.Helper()
	for i, op := range poolScript {
		var err error
		if op.free {
			err = a.Free(op.id)
		} else {
			err = a.Alloc(op.id, op.size, op.size <= 64)
		}
		if err != nil {
			t.Fatalf("script op %d: %v", i, err)
		}
	}
}

// TestPoolSingleMemberTransparent: a one-member pool must mirror its
// member exactly — heap sizes, counts, and addresses (member 0's window
// starts at offset 0, so even Addr matches). This is the allocator-level
// half of the cluster's single-tenant identity property.
func TestPoolSingleMemberTransparent(t *testing.T) {
	bare := NewFirstFit()
	member := NewFirstFit()
	p, err := NewPool("pool:1xfirstfit", member)
	if err != nil {
		t.Fatal(err)
	}
	runScript(t, bare)
	runScript(t, p)
	if p.HeapSize() != bare.HeapSize() {
		t.Errorf("HeapSize %d != bare %d", p.HeapSize(), bare.HeapSize())
	}
	if p.MaxHeapSize() != bare.MaxHeapSize() {
		t.Errorf("MaxHeapSize %d != bare %d", p.MaxHeapSize(), bare.MaxHeapSize())
	}
	if p.Counts() != bare.Counts() {
		t.Errorf("Counts %+v != bare %+v", p.Counts(), bare.Counts())
	}
	for _, id := range []trace.ObjectID{5, 6} {
		pa, pok := p.Addr(id)
		ba, bok := bare.Addr(id)
		if pa != ba || pok != bok {
			t.Errorf("Addr(%d) = %d,%v != bare %d,%v", id, pa, pok, ba, bok)
		}
	}
	if got := p.AllocatorName(); got != "pool:1xfirstfit" {
		t.Errorf("AllocatorName = %q", got)
	}
}

func TestPoolRoutingAndAccounting(t *testing.T) {
	p, err := NewPool("pool:2xfirstfit", NewFirstFit(), NewFirstFit())
	if err != nil {
		t.Fatal(err)
	}
	if err := p.AllocOn(0, 1, 100, false); err != nil {
		t.Fatal(err)
	}
	if err := p.AllocOn(1, 2, 200, false); err != nil {
		t.Fatal(err)
	}
	if err := p.AllocOn(1, 3, 50, true); err != nil {
		t.Fatal(err)
	}
	if p.MemberLive(0) != 100 || p.MemberLive(1) != 250 {
		t.Fatalf("MemberLive = %d/%d, want 100/250", p.MemberLive(0), p.MemberLive(1))
	}
	// Member 1's addresses land in its PoolStride window.
	a2, ok := p.Addr(2)
	if !ok || a2 < PoolStride || a2 >= 2*PoolStride {
		t.Fatalf("Addr(2) = %d,%v; want inside [%d,%d)", a2, ok, PoolStride, 2*PoolStride)
	}
	a1, ok := p.Addr(1)
	if !ok || a1 >= PoolStride {
		t.Fatalf("Addr(1) = %d,%v; want inside member 0's window", a1, ok)
	}
	// Frees route to the owning member.
	if err := p.Free(2); err != nil {
		t.Fatal(err)
	}
	if p.MemberLive(1) != 50 {
		t.Fatalf("MemberLive(1) = %d after free, want 50", p.MemberLive(1))
	}
	if _, ok := p.Addr(2); ok {
		t.Fatal("Addr(2) still live after free")
	}
	// HeapSize aggregates both members.
	if p.HeapSize() != p.MemberHeap(0)+p.MemberHeap(1) {
		t.Fatalf("HeapSize %d != member sum %d", p.HeapSize(), p.MemberHeap(0)+p.MemberHeap(1))
	}
	// Counts aggregate.
	if c := p.Counts(); c.Allocs != 3 || c.Frees != 1 {
		t.Fatalf("Counts = %d allocs / %d frees, want 3/1", c.Allocs, c.Frees)
	}
}

func TestPoolErrors(t *testing.T) {
	if _, err := NewPool("empty"); err == nil {
		t.Fatal("NewPool accepted zero members")
	}
	if _, err := NewPool("nilmember", nil); err == nil {
		t.Fatal("NewPool accepted a nil member")
	}
	p, err := NewPool("p", NewFirstFit(), NewBSD())
	if err != nil {
		t.Fatal(err)
	}
	if err := p.AllocOn(2, 1, 8, false); err == nil {
		t.Fatal("AllocOn accepted out-of-range member")
	}
	if err := p.AllocOn(-1, 1, 8, false); err == nil {
		t.Fatal("AllocOn accepted negative member")
	}
	if err := p.AllocOn(0, 1, 8, false); err != nil {
		t.Fatal(err)
	}
	// Pool-wide id uniqueness: same id on a different member is rejected.
	if err := p.AllocOn(1, 1, 8, false); err == nil {
		t.Fatal("AllocOn accepted duplicate id across members")
	}
	if err := p.Free(99); err == nil {
		t.Fatal("Free accepted unknown id")
	}
}

// TestPoolWalker: regions and spans shift into per-member windows with
// prefixed names, and every span stays inside a region of its member.
func TestPoolWalker(t *testing.T) {
	p, err := NewPool("p", NewFirstFit(), NewArena())
	if err != nil {
		t.Fatal(err)
	}
	if err := p.AllocOn(0, 1, 100, false); err != nil {
		t.Fatal(err)
	}
	if err := p.AllocOn(1, 2, 64, true); err != nil {
		t.Fatal(err)
	}
	regions := p.Regions()
	if len(regions) == 0 {
		t.Fatal("no regions")
	}
	byName := map[string]Region{}
	sawMember1 := false
	for _, r := range regions {
		byName[r.Name] = r
		if r.Base >= PoolStride && r.End <= 2*PoolStride {
			sawMember1 = true
		} else if r.End > PoolStride {
			t.Fatalf("region %q [%d,%d) straddles the window boundary", r.Name, r.Base, r.End)
		}
	}
	if !sawMember1 {
		t.Fatal("no region in member 1's window")
	}
	nspans := 0
	err = p.Walk(func(s Span) error {
		nspans++
		r, ok := byName[s.Region]
		if !ok {
			t.Fatalf("span region %q not in Regions", s.Region)
		}
		if s.Addr < r.Base || s.Addr+s.Size > r.End {
			t.Fatalf("span [%d,%d) outside region %q [%d,%d)", s.Addr, s.Addr+s.Size, s.Region, r.Base, r.End)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if nspans == 0 {
		t.Fatal("walk emitted no spans")
	}
	// Region extents sum to HeapSize, the identity the auditor proves.
	var extent int64
	for _, r := range regions {
		extent += r.End - r.Base
	}
	if extent != p.HeapSize() {
		t.Fatalf("region extent %d != HeapSize %d", extent, p.HeapSize())
	}
}

func TestPoolArenaReporting(t *testing.T) {
	p, err := NewPool("p", NewArena(), NewFirstFit())
	if err != nil {
		t.Fatal(err)
	}
	if err := p.AllocOn(0, 1, 64, true); err != nil {
		t.Fatal(err)
	}
	// One member has arenas: occupancy is that member's own figure.
	ar := NewArena()
	if err := ar.Alloc(1, 64, true); err != nil {
		t.Fatal(err)
	}
	if got, want := p.ArenaOccupancy(), ar.ArenaOccupancy(); got != want {
		t.Errorf("ArenaOccupancy = %g, want %g", got, want)
	}
	if got, want := p.PinnedArenas(), ar.PinnedArenas(); got != want {
		t.Errorf("PinnedArenas = %d, want %d", got, want)
	}
	// A pool with no arena members reports zero occupancy.
	ff, err := NewPool("ff", NewFirstFit())
	if err != nil {
		t.Fatal(err)
	}
	if got := ff.ArenaOccupancy(); got != 0 {
		t.Errorf("ffpool ArenaOccupancy = %g, want 0", got)
	}
}
