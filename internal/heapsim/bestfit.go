package heapsim

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/trace"
)

// BestFit simulates a best-fit allocator over the same block structures as
// FirstFit: every allocation scans the whole free list and takes the block
// with the least leftover space. Knuth discusses best fit alongside first
// fit (TAOCP §2.5); it trades much longer searches for tighter packing,
// which makes it a useful ablation baseline against both first-fit
// variants (see BenchmarkAblationFitPolicy).
type BestFit struct {
	ff FirstFit // reuse the block/list machinery
}

// NewBestFit returns a best-fit simulator with the default geometry.
func NewBestFit() *BestFit {
	b := &BestFit{}
	b.init()
	return b
}

// init names the embedded machinery before its defaults latch, so errors
// and metrics say "bestfit" rather than "firstfit".
func (b *BestFit) init() {
	if !b.ff.initialized {
		b.ff.name = "bestfit"
	}
	b.ff.init()
}

// Observe implements Observable.
func (b *BestFit) Observe(col *obs.Collector) {
	b.init()
	b.ff.Observe(col)
}

// Alloc implements Allocator; the predictedShort hint is ignored.
func (b *BestFit) Alloc(id trace.ObjectID, size int64, _ bool) error {
	b.init()
	if size <= 0 {
		return fmt.Errorf("heapsim: non-positive allocation size %d", size)
	}
	if _, dup := b.ff.live.get(id); dup {
		return errDoubleAlloc(b.ff.name, id)
	}
	b.ff.ops.Allocs++
	b.ff.ops.FFAllocs++
	need := align(size+b.ff.Header, b.ff.Align)

	probesBefore := b.ff.ops.FFProbes
	blk := b.search(need)
	if blk == nil {
		b.ff.extend(need)
		blk = b.search(need)
		if blk == nil {
			return fmt.Errorf("heapsim: internal error: no fit after extend for %d bytes", need)
		}
	}
	if b.ff.obs != nil {
		b.ff.obs.searchLen.Observe(b.ff.ops.FFProbes - probesBefore)
		b.ff.obs.allocSize.Observe(size)
	}
	return b.commit(id, size, need, blk)
}

// commit performs the split/remove bookkeeping (mirrors FirstFit.Alloc's
// tail after a successful search).
func (b *BestFit) commit(id trace.ObjectID, size, need int64, blk *ffBlock) error {
	ff := &b.ff
	if blk.size-need >= ff.MinSplit {
		ff.ops.FFSplits++
		if ff.obs != nil {
			ff.obs.splits.Inc()
		}
		rest := ff.pool.get()
		rest.addr, rest.size, rest.free = blk.addr+need, blk.size-need, true
		rest.aPrev, rest.aNext = blk, blk.aNext
		if blk.aNext != nil {
			blk.aNext.aPrev = rest
		} else {
			ff.tail = rest
		}
		blk.aNext = rest
		blk.size = need
		rest.fPrev, rest.fNext = blk.fPrev, blk.fNext
		if blk.fNext == blk {
			rest.fPrev, rest.fNext = rest, rest
		} else {
			blk.fPrev.fNext = rest
			blk.fNext.fPrev = rest
		}
		if ff.freeHead == blk {
			ff.freeHead = rest
		}
		if ff.rover == blk {
			ff.rover = rest
		}
		blk.fNext, blk.fPrev = nil, nil
	} else {
		ff.freeListRemove(blk)
	}
	blk.free = false
	blk.payload = size
	ff.live.put(id, blk)
	ff.liveBytes += size
	return nil
}

// search scans the entire free list for the tightest fit, counting every
// probe (best fit pays for its packing with full scans).
func (b *BestFit) search(need int64) *ffBlock {
	ff := &b.ff
	if ff.freeHead == nil {
		return nil
	}
	var best *ffBlock
	blk := ff.freeHead
	for i := 0; i < ff.freeBlocks; i++ {
		ff.ops.FFProbes++
		if blk.size >= need && (best == nil || blk.size < best.size) {
			best = blk
			if blk.size == need {
				break // exact fit: cannot do better
			}
		}
		blk = blk.fNext
	}
	return best
}

// Free implements Allocator (same O(1) coalescing as FirstFit).
func (b *BestFit) Free(id trace.ObjectID) error {
	b.init()
	return b.ff.Free(id)
}

// HeapSize implements Allocator.
func (b *BestFit) HeapSize() int64 { return b.ff.HeapSize() }

// MaxHeapSize implements Allocator.
func (b *BestFit) MaxHeapSize() int64 { return b.ff.MaxHeapSize() }

// Counts implements Allocator.
func (b *BestFit) Counts() OpCounts { return b.ff.Counts() }

// Addr implements Allocator.
func (b *BestFit) Addr(id trace.ObjectID) (int64, bool) { return b.ff.Addr(id) }

// CheckInvariants validates the underlying block structures.
func (b *BestFit) CheckInvariants() error { return b.ff.CheckInvariants() }
