package heapsim

import (
	"errors"
	"sort"
	"testing"

	"repro/internal/trace"
)

// Every simulator must expose its layout for conformance auditing.
var (
	_ Walker = (*FirstFit)(nil)
	_ Walker = (*BestFit)(nil)
	_ Walker = (*BSD)(nil)
	_ Walker = (*Arena)(nil)
	_ Walker = (*SiteArena)(nil)
	_ Walker = (*Custom)(nil)
)

// walkerWorkload drives an allocator through a mixed alloc/free pattern
// that leaves a fragmented heap: interleaved sizes, a freed middle run,
// and both short-predicted and long-predicted objects.
func walkerWorkload(t *testing.T, a Allocator) {
	t.Helper()
	sizes := []int64{16, 200, 32, 4096, 64, 24, 512, 48, 8192, 96}
	for i, sz := range sizes {
		if err := a.Alloc(trace.ObjectID(i), sz, sz <= 256); err != nil {
			t.Fatal(err)
		}
	}
	for _, id := range []trace.ObjectID{1, 3, 5, 7} {
		if err := a.Free(id); err != nil {
			t.Fatal(err)
		}
	}
	for i, sz := range []int64{40, 1024, 8} {
		if err := a.Alloc(trace.ObjectID(20+i), sz, true); err != nil {
			t.Fatal(err)
		}
	}
}

func walkerCases() map[string]func() Allocator {
	return map[string]func() Allocator{
		"firstfit":  func() Allocator { return NewFirstFit() },
		"bestfit":   func() Allocator { return &BestFit{} },
		"bsd":       func() Allocator { return &BSD{} },
		"arena":     func() Allocator { return &Arena{} },
		"sitearena": func() Allocator { return &SiteArena{} },
		"custom":    func() Allocator { return &Custom{HotSizes: []int64{16, 32, 64}} },
	}
}

// TestWalkerLayout checks the core Walker contract on every simulator:
// regions are disjoint and account for HeapSize(), spans stay inside
// their declared region, spans never overlap, tiled regions have no
// gaps, and the set of live spans matches Addr()-visible liveness.
func TestWalkerLayout(t *testing.T) {
	for name, mk := range walkerCases() {
		t.Run(name, func(t *testing.T) {
			a := mk()
			walkerWorkload(t, a)
			w := a.(Walker)

			regions := w.Regions()
			var extent int64
			byName := make(map[string]Region)
			for _, r := range regions {
				if r.End < r.Base {
					t.Fatalf("region %s inverted: [%d,%d)", r.Name, r.Base, r.End)
				}
				if _, dup := byName[r.Name]; dup {
					t.Fatalf("duplicate region %s", r.Name)
				}
				byName[r.Name] = r
				extent += r.End - r.Base
			}
			if extent != a.HeapSize() {
				t.Fatalf("region extents sum to %d, HeapSize() = %d", extent, a.HeapSize())
			}

			perRegion := make(map[string][]Span)
			live := make(map[trace.ObjectID]Span)
			if err := w.Walk(func(s Span) error {
				r, ok := byName[s.Region]
				if !ok {
					t.Fatalf("span in undeclared region %q", s.Region)
				}
				if s.Size <= 0 || s.Addr < r.Base || s.Addr+s.Size > r.End {
					t.Fatalf("span [%d,%d) outside region %s [%d,%d)",
						s.Addr, s.Addr+s.Size, r.Name, r.Base, r.End)
				}
				if !s.Free {
					if _, dup := live[s.Obj]; dup {
						t.Fatalf("object %d walked twice", s.Obj)
					}
					live[s.Obj] = s
				}
				perRegion[s.Region] = append(perRegion[s.Region], s)
				return nil
			}); err != nil {
				t.Fatal(err)
			}

			for rname, spans := range perRegion {
				r := byName[rname]
				sort.Slice(spans, func(i, j int) bool { return spans[i].Addr < spans[j].Addr })
				for i := 1; i < len(spans); i++ {
					prev, cur := spans[i-1], spans[i]
					if prev.Addr+prev.Size > cur.Addr {
						t.Fatalf("%s: spans overlap: [%d,%d) then [%d,%d)",
							rname, prev.Addr, prev.Addr+prev.Size, cur.Addr, cur.Addr+cur.Size)
					}
					if r.Tiled && prev.Addr+prev.Size != cur.Addr {
						t.Fatalf("%s: tiled region has gap between %d and %d",
							rname, prev.Addr+prev.Size, cur.Addr)
					}
					if r.Coalesced && prev.Free && cur.Free {
						t.Fatalf("%s: adjacent free spans at %d and %d in coalesced region",
							rname, prev.Addr, cur.Addr)
					}
				}
				if r.Tiled && len(spans) > 0 {
					if spans[0].Addr != r.Base || spans[len(spans)-1].Addr+spans[len(spans)-1].Size != r.End {
						t.Fatalf("%s: tiled region [%d,%d) not covered: spans [%d,%d)",
							rname, r.Base, r.End, spans[0].Addr,
							spans[len(spans)-1].Addr+spans[len(spans)-1].Size)
					}
				}
			}

			// Addr-visible liveness and the walked live set must agree.
			for id, s := range live {
				addr, ok := a.Addr(id)
				if !ok {
					t.Fatalf("walked object %d not live per Addr", id)
				}
				if addr < s.Addr || addr >= s.Addr+s.Size {
					t.Fatalf("object %d: Addr=%d outside its span [%d,%d)",
						id, addr, s.Addr, s.Addr+s.Size)
				}
				if s.Payload <= 0 {
					t.Fatalf("object %d walked with payload %d", id, s.Payload)
				}
			}
			for _, id := range []trace.ObjectID{0, 2, 4, 6, 8, 9, 20, 21, 22} {
				if _, ok := live[id]; !ok {
					t.Fatalf("live object %d missing from walk", id)
				}
			}
			for _, id := range []trace.ObjectID{1, 3, 5, 7, 99} {
				if _, ok := live[id]; ok {
					t.Fatalf("dead object %d reported live by walk", id)
				}
			}
		})
	}
}

// TestWalkAbortsOnEmitError checks the early-exit contract.
func TestWalkAbortsOnEmitError(t *testing.T) {
	boom := errors.New("boom")
	for name, mk := range walkerCases() {
		t.Run(name, func(t *testing.T) {
			a := mk()
			walkerWorkload(t, a)
			calls := 0
			err := a.(Walker).Walk(func(Span) error {
				calls++
				return boom
			})
			if !errors.Is(err, boom) {
				t.Fatalf("want emit error back, got %v", err)
			}
			if calls != 1 {
				t.Fatalf("walk continued after error: %d emits", calls)
			}
		})
	}
}

// TestWalkerEmptyAllocator: a freshly initialized allocator walks to an
// empty (or all-free) layout whose regions still account for HeapSize.
func TestWalkerEmptyAllocator(t *testing.T) {
	for name, mk := range walkerCases() {
		t.Run(name, func(t *testing.T) {
			a := mk()
			w := a.(Walker)
			var extent int64
			for _, r := range w.Regions() {
				extent += r.End - r.Base
			}
			if extent != a.HeapSize() {
				t.Fatalf("region extents %d != HeapSize %d", extent, a.HeapSize())
			}
			if err := w.Walk(func(s Span) error {
				if !s.Free {
					t.Fatalf("empty allocator walked a live span: %+v", s)
				}
				return nil
			}); err != nil {
				t.Fatal(err)
			}
		})
	}
}
