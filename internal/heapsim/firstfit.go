package heapsim

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/trace"
)

// FirstFit simulates a first-fit allocator with Knuth's enhancements
// (TAOCP vol. 1 §2.5): a roving pointer so successive searches resume
// where the last one stopped (Algorithm A step A4' — "next fit"), and
// boundary-tag-style immediate coalescing so Free is O(1). The heap grows
// in fixed chunks (8KB by default), which is why the paper's Table 8 heap
// sizes are 8KB multiples.
type FirstFit struct {
	// Alignment and per-object header overhead, both 8 bytes by default,
	// matching a typical 1990s 32/64-bit malloc with a size word and
	// boundary tags.
	Align  int64
	Header int64
	// Chunk is the sbrk growth granularity (default 8KB).
	Chunk int64
	// MinSplit is the smallest free fragment worth keeping (default 32);
	// smaller remainders are absorbed into the allocated block rather
	// than left as dead weight on the free list.
	MinSplit int64
	// RoverOnFree selects the K&R variant in which free leaves the
	// roving pointer at the freed block, so freshly dead storage is
	// reused immediately. The default (false) is Knuth's A4' next fit:
	// the rover stays where the last allocation happened, which spreads
	// placements across the heap — the fragmentation behaviour the
	// paper's Table 8 exhibits on GHOST. The policy is an ablation knob;
	// see EXPERIMENTS.md.
	RoverOnFree bool

	initialized bool
	name        string // names errors: "firstfit", "bestfit", or the composite that owns this heap
	prefix      string // metric prefix; defaults to name, but a composite's fallback keeps "firstfit"
	heapEnd     int64
	maxHeapEnd  int64
	liveBytes   int64
	obs         *ffObs // nil unless a collector is attached

	head, tail *ffBlock // address-ordered list of all blocks
	freeHead   *ffBlock // circular free list
	rover      *ffBlock
	freeBlocks int
	pool       ffBlockPool

	live objIndex[*ffBlock]
	ops  OpCounts
}

type ffBlock struct {
	addr, size   int64 // size includes the header and padding
	payload      int64 // the requested size (live blocks only)
	free         bool
	aPrev, aNext *ffBlock // address order
	fPrev, fNext *ffBlock // circular free list (only valid when free)
}

// ffBlockPool recycles ffBlock records so steady-state replay performs no
// per-event heap allocation: coalescing releases a record, the next split
// or extend reuses it. Fresh records come from slabs grown geometrically
// (so a replay needing N simultaneous blocks performs O(log N) slab
// allocations), and released records are fully zeroed so a recycled block
// never retains pointers into the dead block graph.
type ffBlockPool struct {
	free     *ffBlock  // LIFO reuse list, linked through aNext
	slab     []ffBlock // current slab, consumed from the front
	slabSize int
}

const (
	ffSlabStart = 64
	ffSlabCap   = 64 << 10
)

func (p *ffBlockPool) get() *ffBlock {
	if b := p.free; b != nil {
		p.free = b.aNext
		b.aNext = nil
		return b
	}
	if len(p.slab) == 0 {
		if p.slabSize == 0 {
			p.slabSize = ffSlabStart
		} else if p.slabSize < ffSlabCap {
			p.slabSize *= 2
		}
		p.slab = make([]ffBlock, p.slabSize)
	}
	b := &p.slab[0]
	p.slab = p.slab[1:]
	return b
}

func (p *ffBlockPool) put(b *ffBlock) {
	*b = ffBlock{aNext: p.free}
	p.free = b
}

// NewFirstFit returns a first-fit simulator with the default geometry.
func NewFirstFit() *FirstFit {
	ff := &FirstFit{}
	ff.init()
	return ff
}

// ffObs caches resolved metric handles so the hot paths pay one nil
// check, not a registry lookup, per operation.
type ffObs struct {
	col       *obs.Collector
	searchLen *obs.Histogram // free blocks probed per allocation (linear)
	allocSize *obs.Histogram // requested sizes (log2)
	splits    *obs.Counter
	coalesces *obs.Counter
	extends   *obs.Counter
}

// Observe implements Observable: metrics are prefixed with the
// allocator's name ("firstfit", or "bestfit" when embedded there).
func (ff *FirstFit) Observe(col *obs.Collector) {
	ff.init()
	if col == nil {
		ff.obs = nil
		return
	}
	p := ff.prefix
	ff.obs = &ffObs{
		col:       col,
		searchLen: col.LinearHistogram(p+".search_len", 4, 64),
		allocSize: col.Log2Histogram(p+".alloc_size", 24),
		splits:    col.Counter(p + ".splits"),
		coalesces: col.Counter(p + ".coalesces"),
		extends:   col.Counter(p + ".extends"),
	}
}

func (ff *FirstFit) init() {
	if ff.initialized {
		return
	}
	if ff.name == "" {
		ff.name = "firstfit"
	}
	if ff.prefix == "" {
		ff.prefix = ff.name
	}
	if ff.Align == 0 {
		ff.Align = 8
	}
	if ff.Header == 0 {
		ff.Header = 8
	}
	if ff.Chunk == 0 {
		ff.Chunk = 8 << 10
	}
	if ff.MinSplit == 0 {
		ff.MinSplit = 32
	}
	ff.initialized = true
}

// freeListInsert links b into the circular free list after the rover.
func (ff *FirstFit) freeListInsert(b *ffBlock) {
	ff.freeBlocks++
	if ff.freeHead == nil {
		b.fNext, b.fPrev = b, b
		ff.freeHead = b
		ff.rover = b
		return
	}
	at := ff.rover
	b.fNext = at.fNext
	b.fPrev = at
	at.fNext.fPrev = b
	at.fNext = b
}

// freeListRemove unlinks b from the circular free list.
func (ff *FirstFit) freeListRemove(b *ffBlock) {
	ff.freeBlocks--
	if b.fNext == b {
		ff.freeHead = nil
		ff.rover = nil
	} else {
		b.fPrev.fNext = b.fNext
		b.fNext.fPrev = b.fPrev
		if ff.freeHead == b {
			ff.freeHead = b.fNext
		}
		if ff.rover == b {
			ff.rover = b.fNext
		}
	}
	b.fNext, b.fPrev = nil, nil
}

// extend grows the heap by at least need bytes (in Chunk multiples),
// merging the new space with a trailing free block when possible.
func (ff *FirstFit) extend(need int64) {
	growth := align(need, ff.Chunk)
	ff.ops.FFExtends++
	if ff.obs != nil {
		ff.obs.extends.Inc()
		ff.obs.col.Emit(obs.EvHeapGrow, growth)
	}
	start := ff.heapEnd
	ff.heapEnd += growth
	if ff.heapEnd > ff.maxHeapEnd {
		ff.maxHeapEnd = ff.heapEnd
	}
	if ff.tail != nil && ff.tail.free {
		ff.tail.size += growth
		return
	}
	b := ff.pool.get()
	b.addr, b.size, b.free = start, growth, true
	b.aPrev = ff.tail
	if ff.tail != nil {
		ff.tail.aNext = b
	} else {
		ff.head = b
	}
	ff.tail = b
	ff.freeListInsert(b)
}

// Alloc implements Allocator. The predictedShort hint is ignored.
func (ff *FirstFit) Alloc(id trace.ObjectID, size int64, _ bool) error {
	ff.init()
	if size <= 0 {
		return fmt.Errorf("heapsim: non-positive allocation size %d", size)
	}
	if _, dup := ff.live.get(id); dup {
		return errDoubleAlloc(ff.name, id)
	}
	ff.ops.Allocs++
	ff.ops.FFAllocs++
	need := align(size+ff.Header, ff.Align)

	probesBefore := ff.ops.FFProbes
	b := ff.search(need)
	if b == nil {
		ff.extend(need)
		b = ff.search(need)
		if b == nil {
			return fmt.Errorf("heapsim: internal error: no fit after extend for %d bytes", need)
		}
	}
	if ff.obs != nil {
		ff.obs.searchLen.Observe(ff.ops.FFProbes - probesBefore)
		ff.obs.allocSize.Observe(size)
	}
	// Allocate from the front of b; keep the tail free when the
	// remainder is worth it.
	if b.size-need >= ff.MinSplit {
		ff.ops.FFSplits++
		if ff.obs != nil {
			ff.obs.splits.Inc()
		}
		rest := ff.pool.get()
		rest.addr, rest.size, rest.free = b.addr+need, b.size-need, true
		rest.aPrev, rest.aNext = b, b.aNext
		if b.aNext != nil {
			b.aNext.aPrev = rest
		} else {
			ff.tail = rest
		}
		b.aNext = rest
		b.size = need
		// The remainder replaces b in the free list at b's position.
		rest.fPrev, rest.fNext = b.fPrev, b.fNext
		if b.fNext == b {
			rest.fPrev, rest.fNext = rest, rest
		} else {
			b.fPrev.fNext = rest
			b.fNext.fPrev = rest
		}
		if ff.freeHead == b {
			ff.freeHead = rest
		}
		if ff.rover == b {
			ff.rover = rest
		}
		b.fNext, b.fPrev = nil, nil
	} else {
		ff.freeListRemove(b)
	}
	b.free = false
	b.payload = size
	ff.live.put(id, b)
	ff.liveBytes += size
	return nil
}

// search walks the circular free list from the rover, counting probes,
// returning the first block that fits or nil after a full cycle. The rover
// is left at the found block (Knuth's A4': the next search resumes here).
func (ff *FirstFit) search(need int64) *ffBlock {
	if ff.rover == nil {
		return nil
	}
	b := ff.rover
	for i := 0; i < ff.freeBlocks; i++ {
		ff.ops.FFProbes++
		if b.size >= need {
			ff.rover = b
			return b
		}
		b = b.fNext
	}
	return nil
}

// Free implements Allocator: O(1) boundary-tag coalescing with both
// address neighbors.
func (ff *FirstFit) Free(id trace.ObjectID) error {
	ff.init()
	b, ok := ff.live.del(id)
	if !ok {
		return errUnknownFree(ff.name, id)
	}
	ff.liveBytes -= b.payload
	ff.ops.Frees++
	ff.ops.FFFrees++
	b.free = true

	// Merge with the previous block.
	if p := b.aPrev; p != nil && p.free {
		ff.ops.FFCoalesces++
		if ff.obs != nil {
			ff.obs.coalesces.Inc()
			ff.obs.col.Emit(obs.EvCoalesce, p.size+b.size)
		}
		p.size += b.size
		p.aNext = b.aNext
		if b.aNext != nil {
			b.aNext.aPrev = p
		} else {
			ff.tail = p
		}
		ff.pool.put(b)
		b = p
	} else {
		ff.freeListInsert(b)
	}
	// Merge with the next block.
	if n := b.aNext; n != nil && n.free {
		ff.ops.FFCoalesces++
		if ff.obs != nil {
			ff.obs.coalesces.Inc()
			ff.obs.col.Emit(obs.EvCoalesce, b.size+n.size)
		}
		ff.freeListRemove(n)
		b.size += n.size
		b.aNext = n.aNext
		if n.aNext != nil {
			n.aNext.aPrev = b
		} else {
			ff.tail = b
		}
		ff.pool.put(n)
	}
	if ff.RoverOnFree {
		ff.rover = b
	}
	return nil
}

// HeapSize returns the current break.
func (ff *FirstFit) HeapSize() int64 { return ff.heapEnd }

// MaxHeapSize returns the high-water mark of the break.
func (ff *FirstFit) MaxHeapSize() int64 { return ff.maxHeapEnd }

// LiveBytes returns the approximate payload bytes currently allocated.
func (ff *FirstFit) LiveBytes() int64 { return ff.liveBytes }

// LiveObjects returns the number of live objects.
func (ff *FirstFit) LiveObjects() int { return ff.live.len() }

// FreeBlocks returns the current free-list length.
func (ff *FirstFit) FreeBlocks() int { return ff.freeBlocks }

// Counts implements Allocator.
func (ff *FirstFit) Counts() OpCounts { return ff.ops }

// Addr implements Allocator.
func (ff *FirstFit) Addr(id trace.ObjectID) (int64, bool) {
	b, ok := ff.live.get(id)
	if !ok {
		return 0, false
	}
	return b.addr + ff.Header, true
}

// CheckInvariants validates the block structures; used by tests.
func (ff *FirstFit) CheckInvariants() error {
	ff.init()
	var prev *ffBlock
	var addr int64
	freeSeen := 0
	for b := ff.head; b != nil; b = b.aNext {
		if b.addr != addr {
			return fmt.Errorf("block at %d, expected %d (gap or overlap)", b.addr, addr)
		}
		if b.size <= 0 {
			return fmt.Errorf("block at %d has size %d", b.addr, b.size)
		}
		if b.aPrev != prev {
			return fmt.Errorf("block at %d has bad aPrev", b.addr)
		}
		if b.free {
			freeSeen++
			if prev != nil && prev.free {
				return fmt.Errorf("adjacent free blocks at %d and %d", prev.addr, b.addr)
			}
		}
		addr += b.size
		prev = b
	}
	if addr != ff.heapEnd {
		return fmt.Errorf("blocks cover %d bytes, heap end is %d", addr, ff.heapEnd)
	}
	if prev != ff.tail {
		return fmt.Errorf("tail pointer stale")
	}
	if freeSeen != ff.freeBlocks {
		return fmt.Errorf("free list count %d, address walk found %d", ff.freeBlocks, freeSeen)
	}
	// Free list must be circular and consistent.
	if ff.freeHead != nil {
		n := 0
		b := ff.freeHead
		for {
			if !b.free {
				return fmt.Errorf("non-free block at %d on free list", b.addr)
			}
			if b.fNext.fPrev != b {
				return fmt.Errorf("free list links broken at %d", b.addr)
			}
			n++
			if n > ff.freeBlocks {
				return fmt.Errorf("free list longer than count %d", ff.freeBlocks)
			}
			b = b.fNext
			if b == ff.freeHead {
				break
			}
		}
		if n != ff.freeBlocks {
			return fmt.Errorf("free list length %d, count %d", n, ff.freeBlocks)
		}
	} else if ff.freeBlocks != 0 {
		return fmt.Errorf("freeBlocks %d with empty list", ff.freeBlocks)
	}
	return nil
}
