// Package heapsim simulates the three dynamic-storage allocators the paper
// compares (§5):
//
//   - FirstFit: Knuth's first-fit with the roving-pointer enhancement
//     (Algorithm A with A4', i.e. next-fit), boundary-tag style O(1)
//     coalescing on free, and sbrk-style heap growth. The paper's baseline
//     and the arena allocator's general-purpose fallback.
//   - BSD: the 4.2BSD (Kingsley) power-of-two segregated free-list malloc,
//     which never splits or coalesces. Used in the Table 9 CPU comparison.
//   - Arena: the paper's lifetime-predicting allocator — a small set of
//     fixed-size arenas for predicted-short-lived objects (bump-pointer
//     allocation, per-arena live counts, arena reuse when a count drops to
//     zero) over a FirstFit general heap.
//
// The simulators model the *address space and operation counts*, not the
// bytes themselves: objects are identified by trace object ids, and every
// allocator reports OpCounts from which the instruction cost model
// (internal/costmodel) computes Table 9's per-operation instruction
// averages, as well as heap-size statistics for Table 8.
package heapsim

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/trace"
)

// Allocator is the common simulator interface. PredictedShort is ignored
// by allocators that do not use lifetime prediction.
type Allocator interface {
	// Alloc places an object. The same id must not be live twice.
	Alloc(id trace.ObjectID, size int64, predictedShort bool) error
	// Free releases a live object.
	Free(id trace.ObjectID) error
	// HeapSize returns the current total address-space footprint in
	// bytes, and MaxHeapSize the high-water mark.
	HeapSize() int64
	MaxHeapSize() int64
	// Counts returns the accumulated operation counts.
	Counts() OpCounts
	// Addr reports the address at which a live object's payload was
	// placed (for locality modeling) and whether the object is live.
	Addr(id trace.ObjectID) (int64, bool)
}

// OpCounts accumulates the operation-level events the cost model prices.
type OpCounts struct {
	Allocs int64
	Frees  int64

	// First-fit search behaviour.
	FFAllocs    int64 // allocations served by the first-fit heap
	FFFrees     int64
	FFProbes    int64 // free blocks examined across all searches
	FFExtends   int64 // heap extensions
	FFSplits    int64
	FFCoalesces int64 // neighbor merges performed by free

	// BSD behaviour.
	BSDCarves    int64 // page carves (free list refills)
	BSDBucketSum int64 // sum of bucket indices, for size-dependent cost

	// Segregated-fit behaviour.
	SegCarves int64 // slab carves (class free-list refills)

	// Arena behaviour.
	PredChecks     int64 // prediction lookups performed (every alloc)
	ArenaAllocs    int64 // bump allocations into an arena
	ArenaFrees     int64 // frees that only decremented a count
	ArenaResets    int64 // arena reuses (count reached 0 and reselected)
	ArenaScanSteps int64 // arenas examined while hunting a free arena
	ArenaFallbacks int64 // predicted-short allocs that fell back to the heap
	ArenaDemotions int64 // sites whose prediction was revoked online
	ArenaBytes     int64 // payload bytes placed in arenas
	GeneralBytes   int64 // payload bytes placed in the general heap
	ArenaObjects   int64 // == ArenaAllocs (kept for clarity in reports)
}

// Observable is implemented by simulators that can stream metrics and
// structured events into an obs.Collector. Attaching a nil collector
// detaches observation; the disabled path costs one pointer compare per
// hook. core.RunSim attaches its optional collector through this
// interface, so custom Allocator implementations opt in by implementing
// it.
type Observable interface {
	Observe(*obs.Collector)
}

// errors shared by the simulators. Each carries the allocator's name so
// multi-allocator comparison runs report which simulator rejected the
// event.
func errDoubleAlloc(alloc string, id trace.ObjectID) error {
	return fmt.Errorf("heapsim: %s: object %d allocated while already live", alloc, id)
}

func errUnknownFree(alloc string, id trace.ObjectID) error {
	return fmt.Errorf("heapsim: %s: free of unknown object %d", alloc, id)
}

func align(n, a int64) int64 { return (n + a - 1) / a * a }
