package bumparena

import (
	"testing"
)

// hotAlloc and coldAlloc are distinct call sites for the PC-chain capture.
//
//go:noinline
func hotAlloc(a *Allocator, n int) []byte { return a.Alloc(n) }

//go:noinline
func coldAlloc(a *Allocator, n int) []byte { return a.Alloc(n) }

// testConfig keys sites on the direct allocating function alone
// (ChainLength 1): deeper chains would include the calling test function,
// which differs between the training and predicting runs here — the same
// transfer trade-off the interpreter example demonstrates.
func testConfig() Config {
	cfg := DefaultConfig()
	cfg.ChainLength = 1
	return cfg
}

// churn allocates and immediately frees through the hot site, and leaks
// (keeps) through the cold site.
func churn(t testing.TB, a *Allocator, rounds int) [][]byte {
	var kept [][]byte
	for i := 0; i < rounds; i++ {
		b := hotAlloc(a, 64)
		if err := a.Free(b); err != nil {
			t.Fatal(err)
		}
		if i%64 == 0 {
			kept = append(kept, coldAlloc(a, 128))
		}
	}
	return kept
}

func TestTrainingSeparatesSites(t *testing.T) {
	tr := NewTraining(testConfig())
	kept := churn(t, tr, 20000) // 20000*64 bytes >> 32KB threshold
	db := tr.Finish()
	if db.Sites() < 2 {
		t.Fatalf("only %d sites observed", db.Sites())
	}
	if db.PredictedSites() == 0 {
		t.Fatal("no sites predicted short-lived")
	}
	if db.PredictedSites() >= db.Sites() {
		t.Fatal("leaked site was also predicted short-lived")
	}
	_ = kept
}

func TestPredictingUsesArenas(t *testing.T) {
	tr := NewTraining(testConfig())
	churn(t, tr, 20000)
	db := tr.Finish()

	pr := NewPredicting(testConfig(), db)
	kept := churn(t, pr, 20000)
	st := pr.Stats()
	if st.BumpAllocs == 0 {
		t.Fatal("no bump allocations in predicting mode")
	}
	// The hot site dominates: the bump path should carry most allocs.
	if float64(st.BumpAllocs)/float64(st.Allocs) < 0.8 {
		t.Fatalf("bump fraction too low: %d of %d", st.BumpAllocs, st.Allocs)
	}
	if st.ArenaResets == 0 {
		t.Fatal("arenas never recycled despite churn volume >> 64KB")
	}
	for _, b := range kept {
		if err := pr.Free(b); err != nil {
			t.Fatal(err)
		}
	}
}

func TestBufferContentsIsolated(t *testing.T) {
	tr := NewTraining(testConfig())
	churn(t, tr, 20000)
	pr := NewPredicting(testConfig(), tr.Finish())

	// Two live buffers from the bump path must not alias, must be
	// zeroed, and must hold their contents.
	b1 := hotAlloc(pr, 64)
	for i := range b1 {
		b1[i] = 0xAA
	}
	b2 := hotAlloc(pr, 64)
	for _, c := range b2 {
		if c != 0 {
			t.Fatal("fresh buffer not zeroed")
		}
	}
	for i := range b2 {
		b2[i] = 0x55
	}
	for _, c := range b1 {
		if c != 0xAA {
			t.Fatal("buffers alias")
		}
	}
	if err := pr.Free(b1); err != nil {
		t.Fatal(err)
	}
	if err := pr.Free(b2); err != nil {
		t.Fatal(err)
	}
	// Appending to a bump buffer must reallocate, not smash the arena
	// (capacity is clamped with a three-index slice).
	b3 := hotAlloc(pr, 16)
	if cap(b3) != 16 {
		t.Fatalf("bump buffer cap %d, want clamped 16", cap(b3))
	}
	if err := pr.Free(b3); err != nil {
		t.Fatal(err)
	}
}

func TestOversizedGoesToHeap(t *testing.T) {
	tr := NewTraining(testConfig())
	churn(t, tr, 20000)
	pr := NewPredicting(testConfig(), tr.Finish())
	before := pr.Stats().HeapAllocs
	big := pr.Alloc(16 << 10) // larger than one 4KB arena
	if pr.Stats().HeapAllocs != before+1 {
		t.Fatal("oversized buffer did not take the heap path")
	}
	if err := pr.Free(big); err != nil {
		t.Fatal(err)
	}
}

func TestTrainingFreeErrors(t *testing.T) {
	tr := NewTraining(testConfig())
	if err := tr.Free(make([]byte, 8)); err == nil {
		t.Fatal("free of foreign buffer accepted in training")
	}
	if err := tr.Free(nil); err != nil {
		t.Fatal("nil free should be a no-op")
	}
}

func TestPollutionFallsBack(t *testing.T) {
	// Train so the hot site is predicted, then in predicting mode leak
	// every hot buffer: arenas pin and the allocator must fall back
	// rather than corrupt live data.
	cfg := testConfig()
	cfg.NumArenas = 2
	cfg.ArenaSize = 256
	tr := NewTraining(cfg)
	churn(t, tr, 20000)
	pr := NewPredicting(cfg, tr.Finish())

	var leaked [][]byte
	for i := 0; i < 100; i++ {
		leaked = append(leaked, hotAlloc(pr, 64))
	}
	st := pr.Stats()
	if st.Fallbacks == 0 {
		t.Fatal("pinned arenas never forced a fallback")
	}
	// All leaked buffers remain intact and distinct.
	for i, b := range leaked {
		b[0] = byte(i)
	}
	for i, b := range leaked {
		if b[0] != byte(i) {
			t.Fatalf("leaked buffer %d corrupted", i)
		}
	}
	for _, b := range leaked {
		if err := pr.Free(b); err != nil {
			t.Fatal(err)
		}
	}
}

func BenchmarkHeapMake(b *testing.B) {
	b.ReportAllocs()
	var sink []byte
	for i := 0; i < b.N; i++ {
		sink = make([]byte, 64)
	}
	_ = sink
}

func BenchmarkBumpAlloc(b *testing.B) {
	tr := NewTraining(testConfig())
	churn(b, tr, 20000)
	pr := NewPredicting(testConfig(), tr.Finish())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf := hotAlloc(pr, 64)
		if err := pr.Free(buf); err != nil {
			b.Fatal(err)
		}
	}
	if pr.Stats().BumpAllocs < int64(b.N)/2 {
		b.Fatalf("bump path not exercised: %+v", pr.Stats())
	}
}

// TestCheckInvariantsDuringWorkload audits the prototype's accounting
// after every operation of a mixed training-then-predicting workload —
// the same per-event auditing discipline internal/check applies to the
// simulators.
func TestCheckInvariantsDuringWorkload(t *testing.T) {
	tr := NewTraining(testConfig())
	for i := 0; i < 2000; i++ {
		b := hotAlloc(tr, 64)
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("training alloc %d: %v", i, err)
		}
		if err := tr.Free(b); err != nil {
			t.Fatal(err)
		}
		if i%64 == 0 {
			coldAlloc(tr, 128) // leaked on purpose
		}
		if err := tr.CheckInvariants(); err != nil {
			t.Fatalf("training free %d: %v", i, err)
		}
	}
	db := tr.Finish()

	pr := NewPredicting(testConfig(), db)
	var held [][]byte
	for i := 0; i < 2000; i++ {
		held = append(held, hotAlloc(pr, 64))
		if err := pr.CheckInvariants(); err != nil {
			t.Fatalf("predicting alloc %d: %v", i, err)
		}
		if len(held) > 8 {
			if err := pr.Free(held[0]); err != nil {
				t.Fatal(err)
			}
			held = held[1:]
			if err := pr.CheckInvariants(); err != nil {
				t.Fatalf("predicting free %d: %v", i, err)
			}
		}
	}
	if pr.Stats().BumpAllocs == 0 {
		t.Fatal("workload never hit the bump path; the audit exercised nothing")
	}
}

// TestCheckInvariantsCatchesCorruption reaches into the allocator and
// breaks each audited identity, confirming the self-check reports it.
func TestCheckInvariantsCatchesCorruption(t *testing.T) {
	mk := func() (*Allocator, []byte) {
		tr := NewTraining(testConfig())
		churn(t, tr, 20000)
		pr := NewPredicting(testConfig(), tr.Finish())
		buf := hotAlloc(pr, 64)
		if pr.Stats().BumpAllocs != 1 {
			t.Fatal("setup buffer missed the bump path")
		}
		if err := pr.CheckInvariants(); err != nil {
			t.Fatal(err)
		}
		return pr, buf
	}

	pr, _ := mk()
	pr.arenas[pr.current].count++ // count drifts above live buffers
	if err := pr.CheckInvariants(); err == nil {
		t.Fatal("count drift not caught")
	}

	pr, buf := mk()
	delete(pr.bufArena, &buf[0]) // live buffer lost from the map
	if err := pr.CheckInvariants(); err == nil {
		t.Fatal("lost buffer mapping not caught")
	}

	pr, _ = mk()
	pr.arenas[pr.current].used = pr.cfg.ArenaSize + 1 // bump past the arena end
	if err := pr.CheckInvariants(); err == nil {
		t.Fatal("used overflow not caught")
	}

	pr, _ = mk()
	pr.current = len(pr.arenas) // rover off the end
	if err := pr.CheckInvariants(); err == nil {
		t.Fatal("bad current arena not caught")
	}
}
