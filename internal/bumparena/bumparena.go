// Package bumparena is the prototype the paper's conclusion calls for
// ("In future work, we will build a prototype implementation of the most
// promising algorithms"): a working lifetime-predicting byte-buffer
// allocator for Go programs, not a simulation.
//
// The allocator hands out []byte buffers. In a training run it records
// every allocation's site — the last four return addresses, captured with
// runtime.Callers, exactly the paper's length-4 call-chain — and measures
// lifetimes in bytes allocated. Sites whose buffers were all short-lived
// become predictors. In an optimized run, buffers at predicted sites are
// bump-allocated from a fixed set of small arenas whose Free is a counter
// decrement and whose reuse is a pointer reset (Hanson-style); everything
// else falls back to the Go heap via make.
//
// Usage:
//
//	a := bumparena.NewTraining(bumparena.DefaultConfig())
//	... buf := a.Alloc(n); ...; a.Free(buf) ...
//	db := a.Finish()
//
//	b := bumparena.NewPredicting(bumparena.DefaultConfig(), db)
//	... same calls; hot short-lived sites now hit the bump path ...
//	fmt.Println(b.Stats())
//
// Buffers must be released with Free exactly once. The allocator is not
// safe for concurrent use; give each goroutine its own (the paper's
// allocator predates threads, and per-P arenas are future work here too).
package bumparena

import (
	"fmt"
	"runtime"

	"repro/internal/obs"
)

// Config sizes the arena area and the training threshold.
type Config struct {
	// NumArenas x ArenaSize is the arena area (default 16 x 4KB).
	NumArenas int
	ArenaSize int
	// ShortThreshold is the training lifetime bound in bytes allocated
	// (default 32KB).
	ShortThreshold int64
	// ChainLength is how many return addresses form a site (default 4).
	ChainLength int
	// SizeRounding rounds sizes in site keys (default 4).
	SizeRounding int
}

// DefaultConfig mirrors the paper's parameters.
func DefaultConfig() Config {
	return Config{
		NumArenas:      16,
		ArenaSize:      4 << 10,
		ShortThreshold: 32 << 10,
		ChainLength:    4,
		SizeRounding:   4,
	}
}

func (c Config) withDefaults() Config {
	if c.NumArenas == 0 {
		c.NumArenas = 16
	}
	if c.ArenaSize == 0 {
		c.ArenaSize = 4 << 10
	}
	if c.ShortThreshold == 0 {
		c.ShortThreshold = 32 << 10
	}
	if c.ChainLength == 0 {
		c.ChainLength = 4
	}
	if c.SizeRounding == 0 {
		c.SizeRounding = 4
	}
	return c
}

// siteKey is the runtime site identity: the XOR-folded PC chain plus the
// rounded size. Folding PCs is the moral equivalent of the paper's
// call-chain encryption, computed lazily at allocation sites only.
type siteKey struct {
	chain uintptr
	size  int
}

// SiteDB is the trained database mapping sites to "all short-lived".
type SiteDB struct {
	cfg   Config
	short map[siteKey]bool // true = every training object was short-lived
}

// Sites reports the number of distinct sites observed in training.
func (db *SiteDB) Sites() int { return len(db.short) }

// PredictedSites reports how many sites are admitted as short-lived.
func (db *SiteDB) PredictedSites() int {
	n := 0
	for _, ok := range db.short {
		if ok {
			n++
		}
	}
	return n
}

// Allocator is the prototype allocator, in either training or predicting
// mode.
type Allocator struct {
	cfg Config

	// Training state.
	training bool
	clock    int64 // bytes allocated so far
	births   map[*byte]birth
	db       *SiteDB

	// Predicting state.
	arenas  []arena
	current int
	// bufArena maps a handed-out buffer to its arena (predicting mode).
	bufArena map[*byte]int

	stats Stats
	obs   *bumpObs // nil unless a collector is attached
}

// bumpObs caches resolved metric handles; the prototype stamps events
// with its own bytes-allocated clock.
type bumpObs struct {
	col        *obs.Collector
	bumpAllocs *obs.Counter
	heapAllocs *obs.Counter
	resets     *obs.Counter
	fallbacks  *obs.Counter
	clock      int64
}

type birth struct {
	key  siteKey
	born int64
}

type arena struct {
	buf   []byte
	used  int
	count int
}

// Stats counts what the predicting allocator did.
type Stats struct {
	Allocs      int64
	BumpAllocs  int64 // served from arenas
	HeapAllocs  int64 // served by make
	ArenaResets int64
	Fallbacks   int64 // predicted short but no arena had room
}

// NewTraining returns an allocator that profiles its call sites.
func NewTraining(cfg Config) *Allocator {
	cfg = cfg.withDefaults()
	return &Allocator{
		cfg:      cfg,
		training: true,
		births:   make(map[*byte]birth),
		db:       &SiteDB{cfg: cfg, short: make(map[siteKey]bool)},
	}
}

// NewPredicting returns an allocator that uses a trained database.
func NewPredicting(cfg Config, db *SiteDB) *Allocator {
	cfg = cfg.withDefaults()
	a := &Allocator{
		cfg:      cfg,
		db:       db,
		arenas:   make([]arena, cfg.NumArenas),
		bufArena: make(map[*byte]int),
	}
	for i := range a.arenas {
		a.arenas[i].buf = make([]byte, cfg.ArenaSize)
	}
	return a
}

// Observe streams the prototype's allocation-path decisions into an
// obs.Collector (metrics prefixed "bump."); a nil collector detaches.
// Like the allocator itself, observation is not safe for concurrent use.
func (a *Allocator) Observe(col *obs.Collector) {
	if col == nil {
		a.obs = nil
		return
	}
	a.obs = &bumpObs{
		col:        col,
		bumpAllocs: col.Counter("bump.bump_allocs"),
		heapAllocs: col.Counter("bump.heap_allocs"),
		resets:     col.Counter("bump.resets"),
		fallbacks:  col.Counter("bump.fallbacks"),
	}
}

// site captures the current length-N call-chain above Alloc and folds it
// with the rounded size.
func (a *Allocator) site(size int) siteKey {
	var pcs [8]uintptr
	// Skip runtime.Callers, site, and Alloc itself.
	n := runtime.Callers(3, pcs[:a.cfg.ChainLength])
	var folded uintptr
	for _, pc := range pcs[:n] {
		folded = folded<<7 | folded>>57 // rotate so order matters
		folded ^= pc
	}
	r := a.cfg.SizeRounding
	return siteKey{chain: folded, size: (size + r - 1) / r * r}
}

// Alloc returns a zeroed buffer of the given size.
func (a *Allocator) Alloc(size int) []byte {
	if size <= 0 {
		return nil
	}
	a.stats.Allocs++
	key := a.site(size)
	if a.training {
		buf := make([]byte, size)
		a.births[&buf[0]] = birth{key: key, born: a.clock}
		a.clock += int64(size)
		// A site is presumed short until an object proves otherwise;
		// unseen sites get an entry now so Sites() counts them.
		if _, seen := a.db.short[key]; !seen {
			a.db.short[key] = true
		}
		return buf
	}
	// Predicting mode.
	if a.obs != nil {
		a.obs.clock += int64(size)
		a.obs.col.SetClock(a.obs.clock)
	}
	if a.db != nil && a.db.short[key] && size <= a.cfg.ArenaSize {
		if buf := a.bump(size); buf != nil {
			a.stats.BumpAllocs++
			if a.obs != nil {
				a.obs.bumpAllocs.Inc()
			}
			return buf
		}
		a.stats.Fallbacks++
		if a.obs != nil {
			a.obs.fallbacks.Inc()
			a.obs.col.Emit(obs.EvArenaOverflow, int64(size))
		}
	}
	a.stats.HeapAllocs++
	if a.obs != nil {
		a.obs.heapAllocs.Inc()
	}
	return make([]byte, size)
}

// bump serves a buffer from the current arena, hunting for an empty arena
// when full; nil when every arena is pinned.
func (a *Allocator) bump(size int) []byte {
	ar := &a.arenas[a.current]
	if ar.used+size > a.cfg.ArenaSize {
		found := false
		for i := 1; i <= len(a.arenas); i++ {
			idx := (a.current + i) % len(a.arenas)
			if a.arenas[idx].count == 0 {
				a.current = idx
				ar = &a.arenas[idx]
				ar.used = 0
				a.stats.ArenaResets++
				if a.obs != nil {
					a.obs.resets.Inc()
					a.obs.col.Emit(obs.EvArenaReuse, int64(idx))
				}
				found = true
				break
			}
		}
		if !found {
			return nil
		}
	}
	buf := ar.buf[ar.used : ar.used+size : ar.used+size]
	clear(buf)
	ar.used += size
	ar.count++
	a.bufArena[&buf[0]] = a.current
	return buf
}

// Free releases a buffer obtained from Alloc.
func (a *Allocator) Free(buf []byte) error {
	if len(buf) == 0 {
		return nil
	}
	p := &buf[0]
	if a.training {
		b, ok := a.births[p]
		if !ok {
			return fmt.Errorf("bumparena: free of unknown buffer")
		}
		delete(a.births, p)
		if a.clock-b.born >= a.cfg.ShortThreshold {
			a.db.short[b.key] = false
		}
		return nil
	}
	if idx, ok := a.bufArena[p]; ok {
		delete(a.bufArena, p)
		ar := &a.arenas[idx]
		if ar.count <= 0 {
			return fmt.Errorf("bumparena: arena %d count underflow", idx)
		}
		ar.count--
		return nil
	}
	// Heap buffer: the Go GC reclaims it.
	return nil
}

// Finish ends a training run: objects still live count as long-lived at
// every site that allocated them. It returns the trained database.
func (a *Allocator) Finish() *SiteDB {
	if !a.training {
		return a.db
	}
	for _, b := range a.births {
		// Alive at exit with the run shorter than the threshold still
		// means we never saw it die young; err on the long side unless
		// the whole run was shorter than the threshold.
		if a.clock-b.born >= a.cfg.ShortThreshold {
			a.db.short[b.key] = false
		}
	}
	return a.db
}

// Stats returns the predicting-mode counters.
func (a *Allocator) Stats() Stats { return a.stats }

// CheckInvariants audits the allocator's internal accounting, mirroring
// the heapsim conformance auditor for the real prototype. It is cheap
// enough to call after every operation in tests: O(arenas + live
// buffers). A non-nil error means the bookkeeping that Free and the
// arena-reset path rely on has been corrupted.
func (a *Allocator) CheckInvariants() error {
	if a.training {
		for p, b := range a.births {
			if p == nil {
				return fmt.Errorf("bumparena: nil buffer key in births")
			}
			if b.born < 0 || b.born > a.clock {
				return fmt.Errorf("bumparena: birth clock %d outside [0,%d]", b.born, a.clock)
			}
		}
		return nil
	}
	if a.current < 0 || a.current >= len(a.arenas) {
		return fmt.Errorf("bumparena: current arena %d out of range [0,%d)", a.current, len(a.arenas))
	}
	perArena := make([]int, len(a.arenas))
	for p, idx := range a.bufArena {
		if p == nil {
			return fmt.Errorf("bumparena: nil buffer key in bufArena")
		}
		if idx < 0 || idx >= len(a.arenas) {
			return fmt.Errorf("bumparena: buffer mapped to arena %d out of range [0,%d)", idx, len(a.arenas))
		}
		perArena[idx]++
	}
	var live int
	for i := range a.arenas {
		ar := &a.arenas[i]
		if ar.used < 0 || ar.used > a.cfg.ArenaSize {
			return fmt.Errorf("bumparena: arena %d used %d outside [0,%d]", i, ar.used, a.cfg.ArenaSize)
		}
		// Every live buffer holds exactly one count reference, and a reset
		// requires count zero, so the tallies must agree exactly.
		if ar.count != perArena[i] {
			return fmt.Errorf("bumparena: arena %d count %d but %d live buffers", i, ar.count, perArena[i])
		}
		if ar.count > 0 && ar.used == 0 {
			return fmt.Errorf("bumparena: arena %d has %d live objects but no used bytes", i, ar.count)
		}
		live += ar.count
	}
	if live != len(a.bufArena) {
		return fmt.Errorf("bumparena: %d counted live objects but %d mapped buffers", live, len(a.bufArena))
	}
	return nil
}
