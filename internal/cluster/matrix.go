package cluster

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/callchain"
	"repro/internal/core"
	"repro/internal/heapsim"
	"repro/internal/synth"
	"repro/internal/table"
)

// TenantSpec names one tenant workload in the matrix: a synth model,
// optionally duplicated ("cfrac#2" is a second cfrac instance whose test
// input is generated at a deterministic seed offset, so duplicates are
// the same program under different inputs, sharing the model's trained
// predictor).
type TenantSpec struct {
	ID         string
	Model      string
	SeedOffset uint64
}

// dupSeedStride separates duplicate tenants' generation seeds; any fixed
// odd constant works, this one is prime for no particular reason beyond
// making collisions with the train/test +1000 rule impossible.
const dupSeedStride = 104729

// ParseTenantSpec parses "model" or "model#k" (k >= 1; #1 is the base
// instance, #2 the first duplicate, at seed offset (k-1)*dupSeedStride).
func ParseTenantSpec(s string) (TenantSpec, error) {
	name, inst := s, 1
	if i := strings.IndexByte(s, '#'); i >= 0 {
		name = s[:i]
		k, err := strconv.Atoi(s[i+1:])
		if err != nil || k < 1 {
			return TenantSpec{}, fmt.Errorf("cluster: bad tenant instance in %q", s)
		}
		inst = k
	}
	if name == "" {
		return TenantSpec{}, fmt.Errorf("cluster: empty tenant model in %q", s)
	}
	if synth.ByName(name) == nil {
		return TenantSpec{}, fmt.Errorf("cluster: unknown tenant model %q", name)
	}
	return TenantSpec{ID: s, Model: name, SeedOffset: uint64(inst-1) * dupSeedStride}, nil
}

// ParsePoolSpec expands a pool shape like "4xarena" or "2xarena+2xbsd"
// into the ordered member-kind list. Every kind must be a core allocator
// name.
func ParsePoolSpec(s string) ([]string, error) {
	var kinds []string
	for _, part := range strings.Split(s, "+") {
		n, kind := 1, part
		if i := strings.IndexByte(part, 'x'); i > 0 {
			if cnt, err := strconv.Atoi(part[:i]); err == nil {
				if cnt < 1 {
					return nil, fmt.Errorf("cluster: bad member count in pool spec %q", s)
				}
				n, kind = cnt, part[i+1:]
			}
		}
		if _, err := core.NewAllocator(kind); err != nil {
			return nil, fmt.Errorf("cluster: pool spec %q: %w", s, err)
		}
		for j := 0; j < n; j++ {
			kinds = append(kinds, kind)
		}
	}
	if len(kinds) == 0 {
		return nil, fmt.Errorf("cluster: empty pool spec %q", s)
	}
	return kinds, nil
}

// MatrixConfig parameterizes a cluster tournament: every routing policy
// crossed with every pool shape, over one shared tenant population.
type MatrixConfig struct {
	// Core supplies the scale/seed rule the tenant inputs derive from.
	Core core.Config
	// Tenants are "model" or "model#k" specs (at least one).
	Tenants []string
	// Policies are routing policy names; defaults to PolicyNames().
	Policies []string
	// Pools are pool shape specs (at least one).
	Pools []string
	// Admission arbitrates the stressed replay's budget.
	Admission AdmissionMode
	// Budget fixes the stressed replay's live-byte budget; 0 derives it
	// per scenario as half the unconstrained replay's peak (self-
	// calibrating stress).
	Budget int64
	// Workers caps concurrent scenarios; <= 0 means 1. Results are
	// byte-identical at any worker count.
	Workers int
}

// ScenarioResult is one (policy, pool) cell: an unconstrained replay
// (fragmentation and fairness with no admission control) and a stressed
// replay at the scenario budget (admission behavior under pressure).
type ScenarioResult struct {
	Policy string
	Pool   string
	// Budget is the stressed replay's live-byte cap.
	Budget int64
	// Free is the unconstrained replay (Budget 0).
	Free *Result
	// Stressed is the replay under Budget with the configured admission
	// mode.
	Stressed *Result
}

// Rejects sums the stressed replay's admission rejects across tenants.
func (s *ScenarioResult) Rejects() int64 {
	var n int64
	for _, tr := range s.Stressed.Tenants {
		n += tr.Rejected
	}
	return n
}

// RejectedBytePct is the stressed replay's rejected payload share of all
// offered bytes, in percent.
func (s *ScenarioResult) RejectedBytePct() float64 {
	if s.Stressed.Clock == 0 {
		return 0
	}
	var b int64
	for _, tr := range s.Stressed.Tenants {
		b += tr.RejectedBytes
	}
	return 100 * float64(b) / float64(s.Stressed.Clock)
}

// MatrixResult is a finished tournament, scenarios ranked best-first.
type MatrixResult struct {
	Tenants   []TenantSpec
	Admission AdmissionMode
	// Scenarios is ranked: fragmentation peak ascending, then stressed
	// fairness descending, then rejects ascending, then (policy, pool)
	// name — a total order, so the report is unambiguous.
	Scenarios []ScenarioResult
}

// RunMatrix runs the full policy × pool tournament. Setup (artifact
// builds and the predictor-table warm pass) is serial; scenario replays
// fan out across Workers goroutines and are assembled in matrix order,
// so the result is byte-identical at any worker count.
func RunMatrix(cfg MatrixConfig) (*MatrixResult, error) {
	if len(cfg.Tenants) == 0 {
		return nil, fmt.Errorf("cluster: matrix needs at least one tenant")
	}
	if len(cfg.Pools) == 0 {
		return nil, fmt.Errorf("cluster: matrix needs at least one pool spec")
	}
	policies := cfg.Policies
	if len(policies) == 0 {
		policies = PolicyNames()
	}
	for _, p := range policies {
		if _, err := NewPolicy(p); err != nil {
			return nil, err
		}
	}
	specs := make([]TenantSpec, len(cfg.Tenants))
	seen := map[string]bool{}
	for i, s := range cfg.Tenants {
		spec, err := ParseTenantSpec(s)
		if err != nil {
			return nil, err
		}
		if seen[spec.ID] {
			return nil, fmt.Errorf("cluster: duplicate tenant spec %q (use #k suffixes)", s)
		}
		seen[spec.ID] = true
		specs[i] = spec
	}
	pools := make([][]string, len(cfg.Pools))
	for i, s := range cfg.Pools {
		kinds, err := ParsePoolSpec(s)
		if err != nil {
			return nil, err
		}
		pools[i] = kinds
	}

	// Serial setup: one artifact build per distinct model, then a warm
	// pass that interns every tenant table's site chains into the shared
	// predictor tables. After this, concurrent mappers only read the
	// predictor side (see profile.Mapper), which is what makes the
	// scenario fan-out race-free.
	arts := map[string]*core.Artifacts{}
	for _, spec := range specs {
		if arts[spec.Model] != nil {
			continue
		}
		a, err := cfg.Core.Build(synth.ByName(spec.Model))
		if err != nil {
			return nil, err
		}
		arts[spec.Model] = a
	}
	for _, spec := range specs {
		ten, err := buildTenant(cfg.Core, spec, arts[spec.Model])
		if err != nil {
			return nil, err
		}
		tb := ten.Source.Table()
		for c := 0; c < tb.NumChains(); c++ {
			ten.Oracle.PredictShort(callchain.ChainID(c), 8)
		}
	}

	type cell struct{ pi, qi int }
	var cells []cell
	for pi := range policies {
		for qi := range cfg.Pools {
			cells = append(cells, cell{pi, qi})
		}
	}
	slots := make([]ScenarioResult, len(cells))
	errs := make([]error, len(cells))
	workers := cfg.Workers
	if workers <= 0 {
		workers = 1
	}
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for i, c := range cells {
		wg.Add(1)
		go func(i int, c cell) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			slots[i], errs[i] = runScenario(cfg, specs, arts, policies[c.pi], cfg.Pools[c.qi], pools[c.qi])
		}(i, c)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	res := &MatrixResult{Tenants: specs, Admission: cfg.Admission, Scenarios: slots}
	sort.SliceStable(res.Scenarios, func(a, b int) bool {
		sa, sb := &res.Scenarios[a], &res.Scenarios[b]
		if sa.Free.FragPeakPct != sb.Free.FragPeakPct {
			return sa.Free.FragPeakPct < sb.Free.FragPeakPct
		}
		if sa.Stressed.Fairness != sb.Stressed.Fairness {
			return sa.Stressed.Fairness > sb.Stressed.Fairness
		}
		if ra, rb := sa.Rejects(), sb.Rejects(); ra != rb {
			return ra < rb
		}
		if sa.Policy != sb.Policy {
			return sa.Policy < sb.Policy
		}
		return sa.Pool < sb.Pool
	})
	return res, nil
}

// runScenario runs one (policy, pool) cell: unconstrained, then stressed
// at half the unconstrained peak (or the fixed MatrixConfig budget).
func runScenario(cfg MatrixConfig, specs []TenantSpec, arts map[string]*core.Artifacts, policy, poolSpec string, kinds []string) (ScenarioResult, error) {
	replay := func(budget int64) (*Result, error) {
		tenants := make([]Tenant, len(specs))
		for i, spec := range specs {
			t, err := buildTenant(cfg.Core, spec, arts[spec.Model])
			if err != nil {
				return nil, err
			}
			tenants[i] = t
		}
		pool, err := newPoolOf(poolSpec, kinds)
		if err != nil {
			return nil, err
		}
		pol, err := NewPolicy(policy)
		if err != nil {
			return nil, err
		}
		return Run(Config{
			Pool:      pool,
			Policy:    pol,
			Admission: cfg.Admission,
			Budget:    budget,
		}, tenants)
	}
	free, err := replay(0)
	if err != nil {
		return ScenarioResult{}, fmt.Errorf("cluster: %s/%s free replay: %w", policy, poolSpec, err)
	}
	budget := cfg.Budget
	if budget == 0 {
		budget = free.PeakLive / 2
		if budget == 0 {
			budget = 1
		}
	}
	stressed, err := replay(budget)
	if err != nil {
		return ScenarioResult{}, fmt.Errorf("cluster: %s/%s stressed replay: %w", policy, poolSpec, err)
	}
	return ScenarioResult{Policy: policy, Pool: poolSpec, Budget: budget, Free: free, Stressed: stressed}, nil
}

// buildTenant makes a fresh single-use tenant (source + bound oracle
// mapper) from its spec. Sources are never shared across replays.
func buildTenant(c core.Config, spec TenantSpec, a *core.Artifacts) (Tenant, error) {
	gc := c.GenConfig(synth.Test)
	gc.Seed += spec.SeedOffset
	src, err := a.Model.Source(gc)
	if err != nil {
		return Tenant{}, fmt.Errorf("cluster: tenant %s: %w", spec.ID, err)
	}
	return Tenant{
		ID:     spec.ID,
		Source: src,
		Oracle: a.TrainPredictor.NewMapper(src.Table()),
	}, nil
}

// newPoolOf builds a fresh pool from expanded member kinds.
func newPoolOf(spec string, kinds []string) (*heapsim.Pool, error) {
	members := make([]heapsim.Allocator, len(kinds))
	for i, k := range kinds {
		a, err := core.NewAllocator(k)
		if err != nil {
			return nil, err
		}
		members[i] = a
	}
	return heapsim.NewPool("pool:"+spec, members...)
}

// WriteReport renders the ranked tournament: the scenario leaderboard,
// then the per-tenant breakdown of every scenario in rank order. Output
// is deterministic — the golden the CLI test pins.
func (r *MatrixResult) WriteReport(w io.Writer) error {
	ids := make([]string, len(r.Tenants))
	for i, t := range r.Tenants {
		ids[i] = t.ID
	}
	sort.Strings(ids)
	fmt.Fprintf(w, "Cluster tournament: %d scenarios over tenants %s (admission %s)\n",
		len(r.Scenarios), strings.Join(ids, ","), r.Admission)
	fmt.Fprintf(w, "Rank: fragmentation peak asc, stressed fairness desc, rejects asc.\n\n")

	lead := table.New("Scenario leaderboard",
		"rank", "policy", "pool", "frag%", "fair", "fair*", "rejects", "rej%", "peakKB", "budgetKB")
	for i := range r.Scenarios {
		s := &r.Scenarios[i]
		lead.RowStrings(
			strconv.Itoa(i+1),
			s.Policy,
			s.Pool,
			fmt.Sprintf("%.1f", s.Free.FragPeakPct),
			fmt.Sprintf("%.3f", s.Free.Fairness),
			fmt.Sprintf("%.3f", s.Stressed.Fairness),
			strconv.FormatInt(s.Rejects(), 10),
			fmt.Sprintf("%.1f", s.RejectedBytePct()),
			strconv.FormatInt(s.Free.PeakLive/1024, 10),
			strconv.FormatInt(s.Budget/1024, 10),
		)
	}
	if _, err := lead.WriteTo(w); err != nil {
		return err
	}
	fmt.Fprintf(w, "frag%% / fair: unconstrained replay; fair* / rejects / rej%%: stressed replay at budgetKB.\n\n")

	// Tenant-visible outcomes depend only on the budget and admission
	// mode, never on routing (admission is placement-independent), so one
	// breakdown covers every scenario; the rank-1 cell supplies it.
	s := &r.Scenarios[0]
	freeShare := byteLifeShares(s.Free)
	stressShare := byteLifeShares(s.Stressed)
	det := table.New("Per-tenant breakdown (identical across scenarios: admission is placement-independent)",
		"tenant", "allocs", "admitKB", "peakKB", "occ%", "share%", "share*%", "rejects", "rejKB")
	for j := range s.Stressed.Tenants {
		ft, st := &s.Free.Tenants[j], &s.Stressed.Tenants[j]
		occ := 0.0
		if s.Free.PeakLive > 0 {
			occ = 100 * float64(ft.PeakLive) / float64(s.Free.PeakLive)
		}
		det.RowStrings(
			st.ID,
			strconv.FormatInt(ft.Sim.TotalAllocs, 10),
			strconv.FormatInt(ft.Sim.TotalBytes/1024, 10),
			strconv.FormatInt(ft.PeakLive/1024, 10),
			fmt.Sprintf("%.1f", occ),
			fmt.Sprintf("%.1f", freeShare[j]),
			fmt.Sprintf("%.1f", stressShare[j]),
			strconv.FormatInt(st.Rejected, 10),
			strconv.FormatInt(st.RejectedBytes/1024, 10),
		)
	}
	if _, err := det.WriteTo(w); err != nil {
		return err
	}
	fmt.Fprintf(w, "allocs/admitKB/peakKB/occ%%/share%%: unconstrained (occ%% = tenant peak / cluster peak);\nshare*%%/rejects/rejKB: stressed replay.\n")
	return nil
}

// byteLifeShares returns each tenant's percentage of the run's total
// byte-life integral (the fairness decomposition).
func byteLifeShares(res *Result) []float64 {
	var total float64
	for _, tr := range res.Tenants {
		total += tr.ByteLife
	}
	out := make([]float64, len(res.Tenants))
	if total == 0 {
		return out
	}
	for i, tr := range res.Tenants {
		out[i] = 100 * tr.ByteLife / total
	}
	return out
}
