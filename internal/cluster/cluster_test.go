package cluster

import (
	"bytes"
	"fmt"
	"sync"
	"testing"

	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/heapsim"
	"repro/internal/obs"
	"repro/internal/synth"
	"repro/internal/trace"
)

// testScale keeps the metamorphic replays fast while leaving thousands
// of events per tenant.
const testScale = 0.01

// artifacts caches per-model build products (train predictor) across
// tests; sources and mappers are still fresh per replay.
var (
	artMu  sync.Mutex
	artMap = map[string]*core.Artifacts{}
)

func modelArtifacts(t testing.TB, name string) *core.Artifacts {
	t.Helper()
	artMu.Lock()
	defer artMu.Unlock()
	if a, ok := artMap[name]; ok {
		return a
	}
	m := synth.ByName(name)
	if m == nil {
		t.Fatalf("unknown model %q", name)
	}
	a, err := core.DefaultConfig(testScale).Build(m)
	if err != nil {
		t.Fatal(err)
	}
	artMap[name] = a
	return a
}

// freshTenant builds a new single-use source + bound oracle for a model.
func freshTenant(t testing.TB, id, model string) Tenant {
	t.Helper()
	arts := modelArtifacts(t, model)
	cfg := core.DefaultConfig(testScale)
	src, err := arts.Model.Source(cfg.GenConfig(synth.Test))
	if err != nil {
		t.Fatal(err)
	}
	n, _ := src.EventCount()
	artMu.Lock()
	oracle := arts.TrainPredictor.NewMapper(src.Table())
	artMu.Unlock()
	return Tenant{ID: id, Source: src, Oracle: oracle, Events: n}
}

func mkPool(t testing.TB, label string, kinds ...string) *heapsim.Pool {
	t.Helper()
	members := make([]heapsim.Allocator, len(kinds))
	for i, k := range kinds {
		a, err := core.NewAllocator(k)
		if err != nil {
			t.Fatal(err)
		}
		members[i] = a
	}
	p, err := heapsim.NewPool(label, members...)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func snapJSON(t testing.TB, s *obs.Snapshot) []byte {
	t.Helper()
	if s == nil {
		return nil
	}
	var b bytes.Buffer
	if err := obs.WriteJSON(&b, s); err != nil {
		t.Fatal(err)
	}
	return b.Bytes()
}

// TestSingleTenantIdentity is the cluster's anchor property: a
// one-tenant cluster over a one-member pool — under every routing policy
// and admission mode, with no budget pressure — must reproduce the solo
// core.RunSimOracle replay on an identical pool byte for byte, SimResult
// and observability snapshot included.
func TestSingleTenantIdentity(t *testing.T) {
	const model = "cfrac"
	for _, kind := range []string{"firstfit", "arena"} {
		for _, policy := range PolicyNames() {
			for _, mode := range []AdmissionMode{Reject, Queue, Evict} {
				if mode != Reject && policy != "round-robin" {
					continue // modes are policy-independent with no budget; one policy covers them
				}
				name := fmt.Sprintf("%s/%s/%s", kind, policy, mode)
				t.Run(name, func(t *testing.T) {
					label := model + "/pool"
					poolName := "pool:1x" + kind

					soloTen := freshTenant(t, "t0", model)
					soloCol := obs.NewCollector(obs.Options{Label: label})
					soloPool := mkPool(t, poolName, kind)
					want, err := core.RunSimOracle(soloTen.Source, soloPool, soloTen.Oracle, soloCol)
					if err != nil {
						t.Fatal(err)
					}

					clTen := freshTenant(t, "t0", model)
					pol, err := NewPolicy(policy)
					if err != nil {
						t.Fatal(err)
					}
					res, err := Run(Config{
						Pool:      mkPool(t, poolName, kind),
						Policy:    pol,
						Admission: mode,
						TenantCollector: func(id string) *obs.Collector {
							return obs.NewCollector(obs.Options{Label: label})
						},
					}, []Tenant{clTen})
					if err != nil {
						t.Fatal(err)
					}
					if len(res.Tenants) != 1 {
						t.Fatalf("%d tenant results", len(res.Tenants))
					}
					got := res.Tenants[0].Sim

					wantCopy, gotCopy := want, got
					wantCopy.Obs, gotCopy.Obs = nil, nil
					if wantCopy != gotCopy {
						t.Errorf("SimResult diverges:\nsolo:    %+v\ncluster: %+v", wantCopy, gotCopy)
					}
					wj, gj := snapJSON(t, want.Obs), snapJSON(t, got.Obs)
					if !bytes.Equal(wj, gj) {
						t.Errorf("snapshots diverge (%d vs %d bytes)", len(wj), len(gj))
					}
					tr := res.Tenants[0]
					if tr.Rejected != 0 || tr.Queued != 0 || tr.Evicted != 0 || tr.QueueExpired != 0 {
						t.Errorf("admission outcomes nonzero without budget: %+v", tr)
					}
				})
			}
		}
	}
}

// stripObs returns a TenantResult copy with the snapshot pointer cleared
// so the rest compares with ==.
func stripObs(tr TenantResult) TenantResult {
	tr.Sim.Obs = nil
	return tr
}

// runTrio runs cfrac+espresso+gawk through a 2-member pool under budget
// pressure, with tenants supplied in the given order.
func runTrio(t *testing.T, order []string, budget int64) *Result {
	t.Helper()
	models := map[string]string{"ten-a": "cfrac", "ten-b": "espresso", "ten-c": "gawk"}
	tenants := make([]Tenant, 0, len(order))
	for _, id := range order {
		tenants = append(tenants, freshTenant(t, id, models[id]))
	}
	pol, err := NewPolicy("least-frag")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		Pool:      mkPool(t, "pool:2xfirstfit", "firstfit", "firstfit"),
		Policy:    pol,
		Admission: Reject,
		Budget:    budget,
		TenantCollector: func(id string) *obs.Collector {
			return obs.NewCollector(obs.Options{Label: id})
		},
		Collector: obs.NewCollector(obs.Options{Label: "cluster"}),
	}, tenants)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestTenantPermutationInvariance: per-tenant results and every
// cluster-wide aggregate must not depend on the order tenants are listed
// — the keyed interleave and id-independent allocators guarantee it.
func TestTenantPermutationInvariance(t *testing.T) {
	// Calibrate a budget that actually rejects work.
	unlimited := runTrio(t, []string{"ten-a", "ten-b", "ten-c"}, 0)
	budget := unlimited.PeakLive / 2
	if budget == 0 {
		t.Fatal("calibration run saw no live bytes")
	}

	want := runTrio(t, []string{"ten-a", "ten-b", "ten-c"}, budget)
	var wantRejects int64
	for _, tr := range want.Tenants {
		wantRejects += tr.Rejected
	}
	if wantRejects == 0 {
		t.Fatalf("budget %d rejected nothing; the invariance run is vacuous", budget)
	}

	for _, order := range [][]string{
		{"ten-b", "ten-c", "ten-a"},
		{"ten-c", "ten-b", "ten-a"},
	} {
		got := runTrio(t, order, budget)
		if got.Fairness != want.Fairness || got.FragPeakPct != want.FragPeakPct ||
			got.PeakLive != want.PeakLive || got.Clock != want.Clock {
			t.Errorf("order %v: aggregates diverge: %+v vs %+v", order, got, want)
		}
		if len(got.Tenants) != len(want.Tenants) {
			t.Fatalf("order %v: %d tenants", order, len(got.Tenants))
		}
		for i := range want.Tenants {
			if stripObs(got.Tenants[i]) != stripObs(want.Tenants[i]) {
				t.Errorf("order %v: tenant %s diverges:\n%+v\nvs\n%+v",
					order, want.Tenants[i].ID, stripObs(got.Tenants[i]), stripObs(want.Tenants[i]))
			}
			if !bytes.Equal(snapJSON(t, got.Tenants[i].Sim.Obs), snapJSON(t, want.Tenants[i].Sim.Obs)) {
				t.Errorf("order %v: tenant %s snapshot diverges", order, want.Tenants[i].ID)
			}
		}
	}
}

// TestRejectsMonotoneInPoolSize: growing the pool (members and budget
// together, per-member budget fixed) must not increase admission
// rejects. This is an empirical property pinned over fixed seeds —
// admission feedback effects could in principle break strict
// monotonicity, so the models and scale here are part of the contract.
func TestRejectsMonotoneInPoolSize(t *testing.T) {
	run := func(members int, budget int64) int64 {
		kinds := make([]string, members)
		for i := range kinds {
			kinds[i] = "arena"
		}
		pol, err := NewPolicy("round-robin")
		if err != nil {
			t.Fatal(err)
		}
		res, err := Run(Config{
			Pool:      mkPool(t, fmt.Sprintf("pool:%dxarena", members), kinds...),
			Policy:    pol,
			Admission: Reject,
			Budget:    budget,
		}, []Tenant{freshTenant(t, "ten-a", "cfrac"), freshTenant(t, "ten-b", "espresso")})
		if err != nil {
			t.Fatal(err)
		}
		var rejects int64
		for _, tr := range res.Tenants {
			rejects += tr.Rejected
		}
		return rejects
	}
	// Calibrate per-member budget at half the single-member peak.
	calib, err := Run(Config{
		Pool:      mkPool(t, "pool:1xarena", "arena"),
		Policy:    mustPolicy(t, "round-robin"),
		Admission: Reject,
	}, []Tenant{freshTenant(t, "ten-a", "cfrac"), freshTenant(t, "ten-b", "espresso")})
	if err != nil {
		t.Fatal(err)
	}
	perMember := calib.PeakLive / 2
	if perMember == 0 {
		t.Fatal("calibration saw no live bytes")
	}
	prev := int64(-1)
	for _, m := range []int{1, 2, 4} {
		r := run(m, perMember*int64(m))
		if prev >= 0 && r > prev {
			t.Fatalf("%d members: rejects %d > previous %d", m, r, prev)
		}
		if m == 1 && r == 0 {
			t.Fatal("smallest pool rejected nothing; property is vacuous")
		}
		prev = r
	}
	if prev != 0 {
		t.Logf("largest pool still rejects %d (fine; monotonicity is the property)", prev)
	}
}

func mustPolicy(t testing.TB, name string) RoutingPolicy {
	t.Helper()
	p, err := NewPolicy(name)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestClusterLedgerReconciliation replays two tenants against a mixed
// pool with no budget (everything admitted) and reconciles the final
// pool state against a ledger built from the identically-interleaved,
// identically-id-tagged event stream: the conformance auditor must
// accept the pool (spans disjoint across member windows, live set equal
// to the ledger's, op conservation).
func TestClusterLedgerReconciliation(t *testing.T) {
	cfg := core.DefaultConfig(testScale)
	mats := make([]*trace.Trace, 2)
	ids := []string{"ten-a", "ten-b"}
	for i, model := range []string{"cfrac", "espresso"} {
		m := synth.ByName(model)
		tr, err := m.Generate(cfg.GenConfig(synth.Test))
		if err != nil {
			t.Fatal(err)
		}
		mats[i] = tr
	}

	// Cluster replay over slice sources of the same traces.
	tenants := make([]Tenant, 2)
	for i, tr := range mats {
		n := len(tr.Events)
		tenants[i] = Tenant{ID: ids[i], Source: trace.NewSliceSource(tr), Events: n}
	}
	pool := mkPool(t, "pool:3xmixed", "firstfit", "arena", "bsd")
	res, err := Run(Config{
		Pool:   pool,
		Policy: mustPolicy(t, "round-robin"),
	}, tenants)
	if err != nil {
		t.Fatal(err)
	}
	if res.Tenants[0].Sim.TotalAllocs == 0 {
		t.Fatal("no admitted work")
	}

	// Independent ledger over the same merged, gid-tagged stream.
	led := check.NewLedger(32)
	it, err := trace.NewKeyedInterleaver(
		[]trace.Source{trace.NewSliceSource(mats[0]), trace.NewSliceSource(mats[1])}, ids)
	if err != nil {
		t.Fatal(err)
	}
	for {
		shard, ev, err := it.Next()
		if err != nil {
			break
		}
		ev.Obj |= trace.ObjectID(shard) << tenantShardBits
		if err := led.Apply(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := check.AuditState("cluster-pool", pool, led); err != nil {
		t.Fatalf("reconciliation failed: %v", err)
	}
}

// TestAdmissionSemantics drives hand-built tenants through a tiny budget
// and pins the queue/evict/reject bookkeeping.
func TestAdmissionSemantics(t *testing.T) {
	mk := func() []Tenant {
		// Tenant a: allocs 60+60 then frees both; tenant b: alloc 60.
		ta := shardTraceEvents([]int64{60, 60}, true)
		tb := shardTraceEvents([]int64{60}, false)
		return []Tenant{
			{ID: "a", Source: trace.NewSliceSource(ta), Events: len(ta.Events)},
			{ID: "b", Source: trace.NewSliceSource(tb), Events: len(tb.Events)},
		}
	}
	const budget = 100

	t.Run("reject", func(t *testing.T) {
		res, err := Run(Config{
			Pool: mkPool(t, "p", "firstfit"), Policy: mustPolicy(t, "round-robin"),
			Admission: Reject, Budget: budget,
		}, mk())
		if err != nil {
			t.Fatal(err)
		}
		var rejected int64
		for _, tr := range res.Tenants {
			rejected += tr.Rejected
		}
		if rejected == 0 {
			t.Fatalf("expected rejects under budget %d: %+v", budget, res.Tenants)
		}
		if res.PeakLive > budget {
			t.Fatalf("PeakLive %d exceeds budget", res.PeakLive)
		}
	})

	t.Run("queue", func(t *testing.T) {
		res, err := Run(Config{
			Pool: mkPool(t, "p", "firstfit"), Policy: mustPolicy(t, "round-robin"),
			Admission: Queue, Budget: budget,
		}, mk())
		if err != nil {
			t.Fatal(err)
		}
		var queued, expired int64
		for _, tr := range res.Tenants {
			queued += tr.Queued
			expired += tr.QueueExpired
			if tr.Rejected != 0 {
				t.Errorf("queue mode rejected: %+v", tr)
			}
		}
		if queued == 0 {
			t.Fatalf("expected queued work under budget %d", budget)
		}
		if res.PeakLive > budget {
			t.Fatalf("PeakLive %d exceeds budget", res.PeakLive)
		}
		_ = expired
	})

	t.Run("evict", func(t *testing.T) {
		res, err := Run(Config{
			Pool: mkPool(t, "p", "firstfit"), Policy: mustPolicy(t, "round-robin"),
			Admission: Evict, Budget: budget,
		}, mk())
		if err != nil {
			t.Fatal(err)
		}
		var evicted, admitted int64
		for _, tr := range res.Tenants {
			evicted += tr.Evicted
			admitted += tr.Sim.TotalAllocs
		}
		if evicted == 0 {
			t.Fatalf("expected evictions under budget %d: %+v", budget, res.Tenants)
		}
		if admitted != 3 {
			t.Errorf("evict mode should admit all 3 allocs, got %d", admitted)
		}
		if res.PeakLive > budget {
			t.Fatalf("PeakLive %d exceeds budget", res.PeakLive)
		}
	})
}

// shardTraceEvents builds a minimal legal trace: n allocs of the given
// sizes, each followed (withFrees) by frees in allocation order.
func shardTraceEvents(sizes []int64, withFrees bool) *trace.Trace {
	tr := check.GenTrace(1, check.GenConfig{Events: 2}) // steal a table shape
	tr.Events = nil
	chain := tr.Table.InternNames("main", "site")
	for i, sz := range sizes {
		tr.Events = append(tr.Events, trace.Event{
			Kind: trace.KindAlloc, Obj: trace.ObjectID(i), Size: sz, Chain: chain,
		})
	}
	if withFrees {
		for i := range sizes {
			tr.Events = append(tr.Events, trace.Event{Kind: trace.KindFree, Obj: trace.ObjectID(i)})
		}
	}
	return tr
}

// TestPolicySpread sanity-checks that the policies actually differ on a
// multi-member pool: round-robin and lifetime-affinity place on more
// than one member, and lifetime-affinity separates predicted classes.
func TestPolicySpread(t *testing.T) {
	pol := mustPolicy(t, "lifetime-affinity")
	p := mkPool(t, "p", "firstfit", "firstfit", "firstfit", "firstfit")
	short1 := pol.Route(p, "t", 16, true)
	short2 := pol.Route(p, "t", 16, true)
	long1 := pol.Route(p, "t", 16, false)
	long2 := pol.Route(p, "t", 16, false)
	if short1 >= 2 || short2 >= 2 {
		t.Errorf("short routes %d,%d escaped the short half", short1, short2)
	}
	if long1 < 2 || long2 < 2 {
		t.Errorf("long routes %d,%d escaped the long half", long1, long2)
	}
	rr := mustPolicy(t, "round-robin")
	seen := map[int]bool{}
	for i := 0; i < 4; i++ {
		seen[rr.Route(p, "t", 8, false)] = true
	}
	if len(seen) != 4 {
		t.Errorf("round-robin hit %d members of 4", len(seen))
	}
}
