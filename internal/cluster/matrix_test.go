package cluster

import (
	"bytes"
	"testing"

	"repro/internal/core"
)

func TestParseTenantSpec(t *testing.T) {
	s, err := ParseTenantSpec("cfrac")
	if err != nil || s.ID != "cfrac" || s.Model != "cfrac" || s.SeedOffset != 0 {
		t.Fatalf("cfrac: %+v, %v", s, err)
	}
	s, err = ParseTenantSpec("cfrac#3")
	if err != nil || s.ID != "cfrac#3" || s.Model != "cfrac" || s.SeedOffset != 2*dupSeedStride {
		t.Fatalf("cfrac#3: %+v, %v", s, err)
	}
	for _, bad := range []string{"", "#2", "cfrac#0", "cfrac#x", "nosuchmodel"} {
		if _, err := ParseTenantSpec(bad); err == nil {
			t.Errorf("ParseTenantSpec(%q) accepted", bad)
		}
	}
}

func TestParsePoolSpec(t *testing.T) {
	kinds, err := ParsePoolSpec("2xarena+1xfirstfit")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"arena", "arena", "firstfit"}
	if len(kinds) != len(want) {
		t.Fatalf("kinds %v", kinds)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("kinds %v, want %v", kinds, want)
		}
	}
	// A bare kind is a one-member pool.
	if kinds, err = ParsePoolSpec("bsd"); err != nil || len(kinds) != 1 || kinds[0] != "bsd" {
		t.Fatalf("bsd: %v, %v", kinds, err)
	}
	for _, bad := range []string{"", "0xarena", "4xnosuch", "nosuch"} {
		if _, err := ParsePoolSpec(bad); err == nil {
			t.Errorf("ParsePoolSpec(%q) accepted", bad)
		}
	}
}

// TestMatrixWorkerSweepDeterminism: the tournament report must be
// byte-identical at every worker count — the concurrency is pure
// scheduling, never result-shaping. Run under -race this also proves the
// warm pass makes the shared predictor tables safe to read concurrently.
func TestMatrixWorkerSweepDeterminism(t *testing.T) {
	report := func(workers int) []byte {
		cfg := MatrixConfig{
			Core:     core.DefaultConfig(0.005),
			Tenants:  []string{"cfrac", "espresso", "cfrac#2"},
			Policies: PolicyNames(),
			Pools:    []string{"2xfirstfit", "1xarena+1xfirstfit"},
			Workers:  workers,
		}
		res, err := RunMatrix(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var b bytes.Buffer
		if err := res.WriteReport(&b); err != nil {
			t.Fatal(err)
		}
		return b.Bytes()
	}
	want := report(1)
	if len(want) == 0 {
		t.Fatal("empty report")
	}
	for _, w := range []int{4, 8} {
		if got := report(w); !bytes.Equal(got, want) {
			t.Errorf("workers=%d report diverges from workers=1:\n%s\nvs\n%s", w, got, want)
		}
	}
}

// TestMatrixStressBudgetSelfCalibrates: with no fixed budget the
// stressed replay runs at half the unconstrained peak and actually
// experiences pressure.
func TestMatrixStressBudgetSelfCalibrates(t *testing.T) {
	res, err := RunMatrix(MatrixConfig{
		Core:    core.DefaultConfig(0.005),
		Tenants: []string{"cfrac", "espresso"},
		Pools:   []string{"2xfirstfit"},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range res.Scenarios {
		if s.Budget != s.Free.PeakLive/2 {
			t.Errorf("%s/%s: budget %d, want half of peak %d", s.Policy, s.Pool, s.Budget, s.Free.PeakLive)
		}
		if s.Stressed.PeakLive > s.Budget {
			t.Errorf("%s/%s: stressed peak %d exceeds budget %d", s.Policy, s.Pool, s.Stressed.PeakLive, s.Budget)
		}
		if s.Rejects() == 0 {
			t.Errorf("%s/%s: stressed replay rejected nothing", s.Policy, s.Pool)
		}
	}
}
