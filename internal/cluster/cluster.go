// Package cluster simulates N tenant programs contending for one shared
// pool of heaps — the multi-tenant generalization of the paper's
// one-program-one-allocator experiments. Tenant event streams merge onto
// a single virtual byte clock (trace.Interleaver keyed by tenant id, so
// results never depend on tenant order), a pluggable RoutingPolicy
// places every admitted allocation on a pool member, and an admission
// controller arbitrates a pool-wide live-byte budget by rejecting,
// queueing, or evicting. Per-tenant observability reuses core's replay
// tracker verbatim: a single-tenant cluster under any policy produces
// the exact SimResult and snapshot a solo core.RunSimOracle replay
// would, a property the metamorphic tests pin byte for byte.
package cluster

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/core"
	"repro/internal/heapsim"
	"repro/internal/obs"
	"repro/internal/profile"
	"repro/internal/trace"
)

// tenantShardBits positions the shard tag in a global object id: tenant
// i's object ids are tagged with i<<48, which keeps ids unique across
// tenants while leaving shard 0's ids untouched (the single-tenant
// identity). Synth and recorded traces number objects densely from zero,
// far below 2^48; Run rejects ids that would collide with the tag.
const tenantShardBits = 48

// Tenant is one workload stream entering the cluster.
type Tenant struct {
	// ID names the tenant: the interleaver's tie-break key, the metric
	// family prefix, and the report row label. IDs must be unique and
	// non-empty.
	ID string
	// Source yields the tenant's events; single-use, like any Source.
	Source trace.Source
	// Oracle supplies the per-allocation lifetime-class hint from this
	// tenant's own profile (nil: everything predicted long-lived).
	Oracle profile.Oracle
	// Events is the tenant's total event count when known (drives the
	// tracker's 25/50/75% phase marks; 0 when unknown).
	Events int
}

// AdmissionMode selects what happens when admitting an allocation would
// push the pool's admitted live payload past the budget.
type AdmissionMode uint8

const (
	// Reject drops the allocation: the object never exists, and its
	// later free is absorbed.
	Reject AdmissionMode = iota
	// Queue parks the allocation in a strict FIFO and admits from the
	// head as frees make room. Strictness is deliberate — a fitting
	// newcomer never jumps an older waiter, so queueing is fair but
	// head-of-line blocking is real and measurable. An object whose
	// free arrives while it still waits is cancelled (queue-expired).
	Queue
	// Evict force-frees the oldest admitted objects (pool-wide
	// admission order) until the newcomer fits; the victim's own free
	// later becomes a no-op. The victim is scored against its oracle
	// prediction at eviction time.
	Evict
)

// String returns the mode's flag spelling.
func (m AdmissionMode) String() string {
	switch m {
	case Reject:
		return "reject"
	case Queue:
		return "queue"
	case Evict:
		return "evict"
	}
	return fmt.Sprintf("AdmissionMode(%d)", uint8(m))
}

// AdmissionModes lists the flag spellings in declaration order.
func AdmissionModes() []string { return []string{"reject", "queue", "evict"} }

// ParseAdmission resolves a flag spelling.
func ParseAdmission(s string) (AdmissionMode, error) {
	switch s {
	case "reject":
		return Reject, nil
	case "queue":
		return Queue, nil
	case "evict":
		return Evict, nil
	}
	return 0, fmt.Errorf("cluster: unknown admission mode %q (have %v)", s, AdmissionModes())
}

// Config parameterizes one cluster run.
type Config struct {
	// Pool is the shared heap substrate; required, never reused across
	// runs.
	Pool *heapsim.Pool
	// Policy routes admitted allocations to members; required, per-run.
	Policy RoutingPolicy
	// Admission arbitrates Budget overload.
	Admission AdmissionMode
	// Budget caps the pool-wide admitted live payload bytes; 0 means
	// unlimited (no admission control).
	Budget int64
	// TenantCollector, when set, supplies one obs.Collector per tenant;
	// each tenant's replay tracker records into its own, exactly as a
	// solo replay would. Nil collectors disable that tenant's tracking.
	TenantCollector func(id string) *obs.Collector
	// Collector, when set, receives cluster-level observability: the
	// shared-clock timeline (admitted live vs pool footprint) and the
	// per-tenant admission counter families (tenant.<id>.*).
	Collector *obs.Collector
}

// TenantResult is one tenant's outcome.
type TenantResult struct {
	ID      string
	Program string
	// Sim carries the solo-replay vocabulary: TotalAllocs/TotalBytes
	// count this tenant's *admitted* work; MaxHeap, Counts, and the
	// derived percentages are pool-wide aggregates replicated to every
	// tenant (one shared heap has one footprint), so the percentage
	// fields are meaningful only in single-tenant runs. Obs is the
	// tenant's snapshot when a collector was attached.
	Sim core.SimResult
	// Admission outcomes, in objects (RejectedBytes in payload bytes).
	Rejected      int64
	RejectedBytes int64
	Queued        int64 // enqueued at least once
	QueueExpired  int64 // died waiting (free arrived before admission)
	Evicted       int64 // force-freed to make room
	// PeakLive is the tenant's peak admitted live payload — its tail
	// occupancy share of the pool.
	PeakLive int64
	// ByteLife integrates the tenant's admitted live bytes over the
	// global byte clock — the service integral fairness is judged on.
	ByteLife float64
}

// Result is one cluster run's outcome.
type Result struct {
	Policy    string
	Admission AdmissionMode
	Budget    int64
	// Tenants holds per-tenant outcomes sorted by tenant ID (input
	// order is irrelevant by construction).
	Tenants []TenantResult
	// Fairness is Jain's index over the tenants' ByteLife integrals.
	Fairness float64
	// FragPeakPct is 1 - peak admitted live payload / peak pool
	// footprint, in percent — the cluster's memory-overhead headline.
	// (An instantaneous 1-live/heap peak would saturate at ~100% during
	// startup and drain; the peak-over-peak ratio is the paper's own
	// max-heap-vs-max-live overhead notion lifted to the pool.)
	FragPeakPct float64
	// PeakLive is the pool-wide peak admitted live payload; the
	// self-calibrating stress budget derives from it.
	PeakLive int64
	// Clock is the final global byte clock: total alloc bytes offered
	// by all tenants, admitted or not.
	Clock int64
}

// tenantState is the per-tenant replay state during a run.
type tenantState struct {
	t       Tenant
	tracker *core.ReplayTracker
	res     TenantResult
	live    int64 // admitted live payload bytes
	lastT   int64 // global clock at last live-bytes change
}

// admitted tracks one admitted object.
type admittedObj struct {
	shard int
	size  int64
}

// queuedObj is one waiting allocation in Queue mode.
type queuedObj struct {
	shard     int
	ev        trace.Event // original event, id already tagged
	short     bool
	cancelled bool
}

// Run replays the merged tenant streams against the shared pool and
// returns per-tenant and cluster-wide outcomes. The run is strictly
// deterministic: same tenants (in any order), pool shape, policy, and
// budget produce identical results.
func Run(cfg Config, tenants []Tenant) (*Result, error) {
	if cfg.Pool == nil {
		return nil, fmt.Errorf("cluster: Config.Pool is required")
	}
	if cfg.Policy == nil {
		return nil, fmt.Errorf("cluster: Config.Policy is required")
	}
	if cfg.Budget < 0 {
		return nil, fmt.Errorf("cluster: negative budget %d", cfg.Budget)
	}
	if len(tenants) == 0 {
		return nil, fmt.Errorf("cluster: at least one tenant required")
	}
	shards := make([]trace.Source, len(tenants))
	keys := make([]string, len(tenants))
	states := make([]*tenantState, len(tenants))
	for i, t := range tenants {
		if t.ID == "" {
			return nil, fmt.Errorf("cluster: tenant %d has an empty id", i)
		}
		if t.Source == nil {
			return nil, fmt.Errorf("cluster: tenant %q has a nil source", t.ID)
		}
		shards[i] = t.Source
		keys[i] = t.ID
		st := &tenantState{t: t}
		st.res.ID = t.ID
		if cfg.TenantCollector != nil {
			thr := profile.DefaultConfig().ShortThreshold
			if t.Oracle != nil {
				thr = t.Oracle.ShortThreshold()
			}
			st.tracker = core.NewReplayTracker(cfg.TenantCollector(t.ID), cfg.Pool, t.Events, thr)
		}
		states[i] = st
	}
	it, err := trace.NewKeyedInterleaver(shards, keys)
	if err != nil {
		return nil, err
	}

	r := &clusterRun{
		cfg:      cfg,
		states:   states,
		admitted: make(map[trace.ObjectID]admittedObj),
		dropped:  make(map[trace.ObjectID]int),
	}
	if cfg.Admission == Queue {
		r.queueIndex = make(map[trace.ObjectID]*queuedObj)
	}
	for i := 0; ; i++ {
		shard, ev, err := it.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		if err := r.step(shard, ev); err != nil {
			return nil, fmt.Errorf("cluster: merged event %d: %w", i, err)
		}
	}
	return r.finish()
}

// clusterRun is the in-flight state of one Run.
type clusterRun struct {
	cfg    Config
	states []*tenantState

	clock        int64 // global byte clock: all offered alloc bytes
	admittedLive int64 // pool-wide admitted live payload
	admittedObjs int64
	peakLive     int64

	admitted map[trace.ObjectID]admittedObj
	dropped  map[trace.ObjectID]int // rejected/evicted: gid -> shard

	// Evict mode: pool-wide admission order, lazily compacted.
	evictFIFO []trace.ObjectID
	evictHead int

	// Queue mode: strict FIFO with a death-cancellation index.
	queue      []*queuedObj
	queueHead  int
	queueIndex map[trace.ObjectID]*queuedObj
}

// step processes one merged event.
func (r *clusterRun) step(shard int, ev trace.Event) error {
	st := r.states[shard]
	switch ev.Kind {
	case trace.KindAlloc:
		gid := ev.Obj
		if gid>>tenantShardBits != 0 {
			return fmt.Errorf("tenant %q object id %d overflows the shard tag", st.t.ID, gid)
		}
		gid |= trace.ObjectID(shard) << tenantShardBits
		ev.Obj = gid
		short := false
		if st.t.Oracle != nil {
			short = st.t.Oracle.PredictShort(ev.Chain, ev.Size)
		}
		r.clock += ev.Size
		over := r.cfg.Budget > 0 && r.admittedLive+ev.Size > r.cfg.Budget
		switch {
		case r.cfg.Admission == Queue && (over || r.queueHead < len(r.queue)):
			// Strict FIFO: while anyone waits, newcomers wait too.
			q := &queuedObj{shard: shard, ev: ev, short: short}
			r.queue = append(r.queue, q)
			r.queueIndex[gid] = q
			st.res.Queued++
		case over && r.cfg.Admission == Evict:
			if !r.evictFor(ev.Size) {
				// Even an empty pool cannot fit it: reject.
				r.reject(st, shard, ev)
				break
			}
			if err := r.admit(shard, ev, short); err != nil {
				return err
			}
		case over: // Reject
			r.reject(st, shard, ev)
		default:
			if err := r.admit(shard, ev, short); err != nil {
				return err
			}
		}
	case trace.KindFree:
		gid := ev.Obj | trace.ObjectID(shard)<<tenantShardBits
		ev.Obj = gid
		if q, ok := r.queueIndex[gid]; ok {
			// Died waiting: cancel the queued allocation.
			q.cancelled = true
			delete(r.queueIndex, gid)
			st.res.QueueExpired++
			st.tracker.Step(ev, false)
			break
		}
		if _, ok := r.dropped[gid]; ok {
			// Free of a rejected or evicted object: absorbed, but still
			// stepped so the tracker's event count stays aligned.
			delete(r.dropped, gid)
			st.tracker.Step(ev, false)
			break
		}
		obj, ok := r.admitted[gid]
		if !ok {
			return fmt.Errorf("tenant %q frees unknown object %d", st.t.ID, ev.Obj)
		}
		if err := r.cfg.Pool.Free(gid); err != nil {
			return err
		}
		r.release(gid, obj)
		st.tracker.Step(ev, false)
		if r.cfg.Admission == Queue {
			if err := r.drainQueue(); err != nil {
				return err
			}
		}
	default:
		return fmt.Errorf("tenant %q event has bad kind %d", st.t.ID, ev.Kind)
	}
	r.observe()
	return nil
}

// admit places one allocation through the routing policy and records it.
func (r *clusterRun) admit(shard int, ev trace.Event, short bool) error {
	st := r.states[shard]
	member := r.cfg.Policy.Route(r.cfg.Pool, st.t.ID, ev.Size, short)
	if err := r.cfg.Pool.AllocOn(member, ev.Obj, ev.Size, short); err != nil {
		return err
	}
	r.advance(st)
	st.live += ev.Size
	if st.live > st.res.PeakLive {
		st.res.PeakLive = st.live
	}
	r.admitted[ev.Obj] = admittedObj{shard: shard, size: ev.Size}
	r.admittedLive += ev.Size
	r.admittedObjs++
	if r.admittedLive > r.peakLive {
		r.peakLive = r.admittedLive
	}
	if r.cfg.Admission == Evict {
		r.evictFIFO = append(r.evictFIFO, ev.Obj)
	}
	st.res.Sim.TotalAllocs++
	st.res.Sim.TotalBytes += ev.Size
	st.tracker.Step(ev, short)
	return nil
}

// reject drops one allocation.
func (r *clusterRun) reject(st *tenantState, shard int, ev trace.Event) {
	r.dropped[ev.Obj] = shard
	st.res.Rejected++
	st.res.RejectedBytes += ev.Size
}

// release updates live accounting after an admitted object leaves the
// pool (free or eviction).
func (r *clusterRun) release(gid trace.ObjectID, obj admittedObj) {
	st := r.states[obj.shard]
	r.advance(st)
	st.live -= obj.size
	delete(r.admitted, gid)
	r.admittedLive -= obj.size
	r.admittedObjs--
}

// evictFor force-frees oldest admitted objects until size fits under the
// budget; it reports false when even an empty pool would not fit it.
func (r *clusterRun) evictFor(size int64) bool {
	if size > r.cfg.Budget {
		return false
	}
	for r.admittedLive+size > r.cfg.Budget {
		// Lazily skip entries already freed the normal way.
		for r.evictHead < len(r.evictFIFO) {
			if _, live := r.admitted[r.evictFIFO[r.evictHead]]; live {
				break
			}
			r.evictHead++
		}
		if r.evictHead >= len(r.evictFIFO) {
			return false // nothing left to evict (unreachable when accounting is sound)
		}
		gid := r.evictFIFO[r.evictHead]
		r.evictHead++
		obj := r.admitted[gid]
		if err := r.cfg.Pool.Free(gid); err != nil {
			return false
		}
		r.release(gid, obj)
		st := r.states[obj.shard]
		st.res.Evicted++
		r.dropped[gid] = obj.shard
		// Score the victim now: from its tracker's point of view the
		// object just died.
		st.tracker.Step(trace.Event{Kind: trace.KindFree, Obj: gid}, false)
	}
	return true
}

// drainQueue admits waiting allocations from the head while they fit.
func (r *clusterRun) drainQueue() error {
	for r.queueHead < len(r.queue) {
		q := r.queue[r.queueHead]
		if q.cancelled {
			r.queueHead++
			continue
		}
		if r.cfg.Budget > 0 && r.admittedLive+q.ev.Size > r.cfg.Budget {
			return nil // head still does not fit; everyone behind waits
		}
		r.queueHead++
		delete(r.queueIndex, q.ev.Obj)
		if err := r.admit(q.shard, q.ev, q.short); err != nil {
			return err
		}
	}
	return nil
}

// advance folds a tenant's live-byte integral forward to the current
// global clock; call before any change to st.live.
func (r *clusterRun) advance(st *tenantState) {
	if r.clock > st.lastT {
		st.res.ByteLife += float64(st.live) * float64(r.clock-st.lastT)
		st.lastT = r.clock
	}
}

// observe feeds the cluster-level timeline after each merged event.
func (r *clusterRun) observe() {
	col := r.cfg.Collector
	if col == nil {
		return
	}
	col.SetClock(r.clock)
	if col.TimelineDue(r.clock) {
		col.RecordSample(obs.Sample{
			Clock:       r.clock,
			LiveBytes:   r.admittedLive,
			LiveObjects: r.admittedObjs,
			HeapBytes:   r.cfg.Pool.HeapSize(),
		})
	}
}

// finish settles integrals, fills per-tenant results, emits the
// cluster-level metric families, and assembles the Result.
func (r *clusterRun) finish() (*Result, error) {
	res := &Result{
		Policy:    r.cfg.Policy.Name(),
		Admission: r.cfg.Admission,
		Budget:    r.cfg.Budget,
		PeakLive:  r.peakLive,
		Clock:     r.clock,
	}
	if maxHeap := r.cfg.Pool.MaxHeapSize(); maxHeap > 0 {
		res.FragPeakPct = 100 * (1 - float64(r.peakLive)/float64(maxHeap))
	}
	order := make([]int, len(r.states))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		return r.states[order[a]].t.ID < r.states[order[b]].t.ID
	})
	shares := make([]float64, 0, len(order))
	for _, i := range order {
		st := r.states[i]
		r.advance(st)
		st.res.Program = st.t.Source.Meta().Program
		core.FinishSim(&st.res.Sim, r.cfg.Pool)
		st.res.Sim.Obs = st.tracker.Finish(st.res.Program, st.t.Source.Table())
		shares = append(shares, st.res.ByteLife)
		res.Tenants = append(res.Tenants, st.res)
	}
	res.Fairness = obs.JainIndex(shares)

	if col := r.cfg.Collector; col != nil {
		col.SetClock(r.clock)
		col.RecordSample(obs.Sample{
			Clock:       r.clock,
			LiveBytes:   r.admittedLive,
			LiveObjects: r.admittedObjs,
			HeapBytes:   r.cfg.Pool.HeapSize(),
		})
		col.MarkPhase("end")
		for _, tr := range res.Tenants {
			pre := "tenant." + tr.ID + "."
			col.Counter(pre + "admitted_objects").Add(tr.Sim.TotalAllocs)
			col.Counter(pre + "admitted_bytes").Add(tr.Sim.TotalBytes)
			col.Counter(pre + "admission_rejects").Add(tr.Rejected)
			col.Counter(pre + "reject_bytes").Add(tr.RejectedBytes)
			col.Counter(pre + "queued").Add(tr.Queued)
			col.Counter(pre + "queue_expired").Add(tr.QueueExpired)
			col.Counter(pre + "evicted").Add(tr.Evicted)
			col.Gauge(pre + "peak_live_bytes").Set(tr.PeakLive)
		}
		col.Gauge("cluster.fairness_ppm").Set(int64(res.Fairness * 1e6))
		col.Gauge("cluster.frag_peak_ppm").Set(int64(res.FragPeakPct * 1e4))
		col.Gauge("cluster.peak_live_bytes").Set(r.peakLive)
	}
	return res, nil
}
