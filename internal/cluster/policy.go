package cluster

import (
	"fmt"

	"repro/internal/heapsim"
)

// RoutingPolicy decides which pool member an admitted allocation lands
// on — the cluster's pluggable placement seam, mirroring the paper's
// thesis one level up: if lifetime class is predictable, placement can
// exploit it.
//
// Route is called once per admitted allocation, in merged-stream order,
// and must be deterministic: a function of the policy's own state, the
// pool's observable state, and the arguments. Policies must not depend
// on the order tenants appear in the run's tenant slice (tenant identity
// arrives as the id string), so per-tenant results stay invariant under
// tenant permutation. Policy instances are per-run and never shared.
type RoutingPolicy interface {
	Name() string
	Route(p *heapsim.Pool, tenant string, size int64, predictedShort bool) int
}

// policyOrder fixes the registry listing (reports iterate it).
var policyOrder = []string{"round-robin", "least-frag", "lifetime-affinity"}

var policyFactories = map[string]func() RoutingPolicy{
	"round-robin":       func() RoutingPolicy { return &roundRobin{} },
	"least-frag":        func() RoutingPolicy { return leastFrag{} },
	"lifetime-affinity": func() RoutingPolicy { return &lifetimeAffinity{} },
}

// PolicyNames lists the registered routing policies in report order.
func PolicyNames() []string { return append([]string(nil), policyOrder...) }

// NewPolicy returns a fresh instance of a registered policy (policies
// carry per-run state, so instances are never reused across runs).
func NewPolicy(name string) (RoutingPolicy, error) {
	mk, ok := policyFactories[name]
	if !ok {
		return nil, fmt.Errorf("cluster: unknown routing policy %q (have %v)", name, policyOrder)
	}
	return mk(), nil
}

// roundRobin cycles through the members in admission order — the
// baseline that spreads load blindly.
type roundRobin struct {
	next int
}

func (*roundRobin) Name() string { return "round-robin" }

func (r *roundRobin) Route(p *heapsim.Pool, tenant string, size int64, predictedShort bool) int {
	m := r.next % p.Members()
	r.next++
	return m
}

// leastFrag places each allocation on the member with the least free
// slack (footprint minus live payload): new objects fill the
// best-packed member's holes before any member grows, the greedy
// anti-fragmentation heuristic. Ties break to the lowest member index.
type leastFrag struct{}

func (leastFrag) Name() string { return "least-frag" }

func (leastFrag) Route(p *heapsim.Pool, tenant string, size int64, predictedShort bool) int {
	best, bestSlack := 0, int64(-1)
	for i := 0; i < p.Members(); i++ {
		slack := p.MemberHeap(i) - p.MemberLive(i)
		if bestSlack < 0 || slack < bestSlack {
			best, bestSlack = i, slack
		}
	}
	return best
}

// lifetimeAffinity segregates by predicted lifetime class: short-lived
// objects cycle over the first half of the members, long-lived over the
// rest, so ephemeral churn never pollutes the long-lived members — the
// cluster-level analogue of the paper's short-lifetime arenas, driven by
// each tenant's own oracle. A one-member pool degenerates to member 0.
type lifetimeAffinity struct {
	nextShort, nextLong int
}

func (*lifetimeAffinity) Name() string { return "lifetime-affinity" }

func (a *lifetimeAffinity) Route(p *heapsim.Pool, tenant string, size int64, predictedShort bool) int {
	m := p.Members()
	half := (m + 1) / 2
	if predictedShort || half == m {
		s := a.nextShort % half
		a.nextShort++
		return s
	}
	l := a.nextLong % (m - half)
	a.nextLong++
	return half + l
}
