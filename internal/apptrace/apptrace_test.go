package apptrace

import (
	"testing"

	"repro/internal/trace"
)

func TestRecorderBasics(t *testing.T) {
	rec := NewRecorder("prog", "train")
	fMain := rec.Enter("main")
	fWork := rec.Enter("work")
	a := rec.Malloc(100)
	b := rec.MallocTagged(50, 7)
	if err := rec.Free(a); err != nil {
		t.Fatal(err)
	}
	rec.Exit(fWork)
	rec.Exit(fMain)

	tr := rec.Trace()
	if tr.Program != "prog" || tr.Input != "train" {
		t.Fatalf("labels %s/%s", tr.Program, tr.Input)
	}
	if tr.FunctionCalls != 2 {
		t.Fatalf("FunctionCalls = %d, want 2", tr.FunctionCalls)
	}
	if err := trace.Validate(tr); err != nil {
		t.Fatal(err)
	}
	objs, err := trace.Annotate(tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != 2 {
		t.Fatalf("%d objects", len(objs))
	}
	if got := tr.Table.String(objs[0].Chain); got != "main>work" {
		t.Fatalf("chain %q", got)
	}
	// a was freed after b's 50 bytes: lifetime 150.
	if objs[0].Lifetime != 150 || !objs[0].Freed {
		t.Fatalf("obj a lifetime %d freed %v", objs[0].Lifetime, objs[0].Freed)
	}
	if objs[1].Refs != 7 {
		t.Fatalf("refs = %d", objs[1].Refs)
	}
	if objs[1].Freed {
		t.Fatal("b should be unfreed")
	}
	_ = b
}

func TestRecorderChainChanges(t *testing.T) {
	rec := NewRecorder("p", "i")
	m := rec.Enter("main")
	rec.Enter("f")
	x := rec.Malloc(8)
	rec.Exit(Frame(1)) // pop f
	rec.Enter("g")
	y := rec.Malloc(8)
	rec.Exit(m)
	tr := rec.Trace()
	objs, _ := trace.Annotate(tr)
	if tr.Table.String(objs[0].Chain) == tr.Table.String(objs[1].Chain) {
		t.Fatal("different call paths produced the same chain")
	}
	_, _ = x, y
}

func TestRecorderExitUnwindsMultiple(t *testing.T) {
	rec := NewRecorder("p", "i")
	f := rec.Enter("a")
	rec.Enter("b")
	rec.Enter("c")
	rec.Exit(f) // unwind three frames
	if rec.Depth() != 0 {
		t.Fatalf("depth %d after unwind, want 0", rec.Depth())
	}
	// Bad frames are ignored.
	rec.Exit(Frame(5))
	rec.Exit(Frame(-1))
}

func TestRecorderFreeErrors(t *testing.T) {
	rec := NewRecorder("p", "i")
	rec.Enter("main")
	id := rec.Malloc(8)
	if err := rec.Free(id); err != nil {
		t.Fatal(err)
	}
	if err := rec.Free(id); err == nil {
		t.Fatal("double free accepted")
	}
	if err := rec.Free(999); err == nil {
		t.Fatal("unknown free accepted")
	}
}

func TestRecorderRecursionRecorded(t *testing.T) {
	rec := NewRecorder("p", "i")
	rec.Enter("main")
	rec.Enter("eval")
	rec.Enter("eval")
	id := rec.Malloc(8)
	_ = id
	tr := rec.Trace()
	objs, _ := trace.Annotate(tr)
	// The raw chain keeps the recursion; elimination happens in the
	// predictor, not the recorder.
	if got := tr.Table.String(objs[0].Chain); got != "main>eval>eval" {
		t.Fatalf("raw chain %q", got)
	}
	elim := tr.Table.EliminateRecursion(objs[0].Chain)
	if got := tr.Table.String(elim); got != "main>eval" {
		t.Fatalf("eliminated chain %q", got)
	}
}

func TestRecorderLiveAccounting(t *testing.T) {
	rec := NewRecorder("p", "i")
	rec.Enter("main")
	ids := make([]trace.ObjectID, 10)
	for i := range ids {
		ids[i] = rec.Malloc(16)
	}
	for _, id := range ids[:4] {
		if err := rec.Free(id); err != nil {
			t.Fatal(err)
		}
	}
	if rec.LiveObjects() != 6 {
		t.Fatalf("live = %d", rec.LiveObjects())
	}
	if rec.Events() != 14 {
		t.Fatalf("events = %d", rec.Events())
	}
}
