// Package apptrace is the instrumentation facade that native Go programs
// use to produce allocation traces in the same format the synthetic models
// emit — the role Larus' AE tracer played for the paper's C programs.
//
// A program under instrumentation brackets its functions with Enter/Exit
// (maintaining the dynamic call-chain) and reports its allocation events
// with Malloc/Free. Object lifetimes fall out of the event order, exactly
// as in §3.2 of the paper: time is bytes allocated.
//
// Typical use:
//
//	rec := apptrace.NewRecorder("myinterp", "train")
//	defer rec.Exit(rec.Enter("main"))
//	...
//	defer rec.Exit(rec.Enter("evalNode"))
//	cell := rec.Malloc(16)          // returns an ObjectID
//	...
//	rec.Free(cell)
//	tr := rec.Trace()
//
// The recorder also offers MallocTagged for attaching a modeled reference
// count (for locality experiments); plain Malloc records zero references.
package apptrace

import (
	"fmt"

	"repro/internal/callchain"
	"repro/internal/trace"
)

// Recorder accumulates allocation events from an instrumented program.
// It is not safe for concurrent use; instrument one goroutine, or shard
// into multiple recorders.
type Recorder struct {
	table *callchain.Table
	stack []callchain.FuncID
	// chainMemo caches the interned chain for the current stack; it is
	// invalidated by Enter/Exit.
	chainValid bool
	chain      callchain.ChainID

	events []trace.Event
	nextID trace.ObjectID
	live   map[trace.ObjectID]bool

	program, input string
	funcCalls      int64
}

// NewRecorder returns an empty recorder for the given program and input
// labels.
func NewRecorder(program, input string) *Recorder {
	return &Recorder{
		table:   callchain.NewTable(),
		live:    make(map[trace.ObjectID]bool),
		program: program,
		input:   input,
	}
}

// Frame is the token Enter returns; passing it to Exit unwinds to the
// matching depth even if intermediate Exits were skipped (e.g. on panic
// recovery).
type Frame int

// Enter pushes a function onto the recorded call-stack and returns a
// Frame for the matching Exit. Idiomatic use is
//
//	defer rec.Exit(rec.Enter("funcName"))
func (r *Recorder) Enter(fn string) Frame {
	r.funcCalls++
	r.stack = append(r.stack, r.table.Func(fn))
	r.chainValid = false
	return Frame(len(r.stack) - 1)
}

// Exit pops the recorded call-stack back to the given frame.
func (r *Recorder) Exit(f Frame) {
	if int(f) < 0 || int(f) >= len(r.stack) {
		return
	}
	r.stack = r.stack[:int(f)]
	r.chainValid = false
}

// Depth reports the current call-stack depth.
func (r *Recorder) Depth() int { return len(r.stack) }

// currentChain interns the current stack as a chain.
func (r *Recorder) currentChain() callchain.ChainID {
	if !r.chainValid {
		r.chain = r.table.Intern(r.stack)
		r.chainValid = true
	}
	return r.chain
}

// Malloc records an allocation of size bytes at the current call-chain
// and returns the object id to pass to Free.
func (r *Recorder) Malloc(size int64) trace.ObjectID {
	return r.MallocTagged(size, 0)
}

// MallocTagged is Malloc with a modeled reference count for the locality
// experiments.
func (r *Recorder) MallocTagged(size, refs int64) trace.ObjectID {
	id := r.nextID
	r.nextID++
	r.events = append(r.events, trace.Event{
		Kind:  trace.KindAlloc,
		Obj:   id,
		Size:  size,
		Chain: r.currentChain(),
		Refs:  refs,
	})
	r.live[id] = true
	return id
}

// Free records the death of an object. Freeing an unknown or already-dead
// object returns an error rather than corrupting the trace.
func (r *Recorder) Free(id trace.ObjectID) error {
	if !r.live[id] {
		return fmt.Errorf("apptrace: free of unknown or dead object %d", id)
	}
	delete(r.live, id)
	r.events = append(r.events, trace.Event{Kind: trace.KindFree, Obj: id})
	return nil
}

// LiveObjects reports how many recorded objects are still live.
func (r *Recorder) LiveObjects() int { return len(r.live) }

// Events reports how many events have been recorded.
func (r *Recorder) Events() int { return len(r.events) }

// Trace finalizes and returns the recorded trace. The recorder remains
// usable; later events extend the same trace on the next call.
func (r *Recorder) Trace() *trace.Trace {
	return &trace.Trace{
		Program:       r.program,
		Input:         r.input,
		Table:         r.table,
		Events:        r.events,
		FunctionCalls: r.funcCalls,
	}
}
