package synth

import (
	"io"
	"reflect"
	"testing"

	"repro/internal/trace"
)

// TestSourceMatchesGenerate pins the load-bearing equivalence: for every
// model and both inputs, the pull-shaped Source yields exactly the event
// sequence, chain table, and trailer metadata that Generate materializes.
// All downstream determinism (calibration pins, the committed bench
// baseline) rides on this.
func TestSourceMatchesGenerate(t *testing.T) {
	for _, m := range All() {
		for _, in := range []Input{Train, Test} {
			cfg := Config{Input: in, Seed: 42, Scale: 0.01}
			want, err := m.Generate(cfg)
			if err != nil {
				t.Fatalf("%s/%s: %v", m.Name, in, err)
			}
			src, err := m.Source(cfg)
			if err != nil {
				t.Fatalf("%s/%s: %v", m.Name, in, err)
			}
			got, err := trace.Collect(src)
			if err != nil {
				t.Fatalf("%s/%s: %v", m.Name, in, err)
			}
			if got.Program != want.Program || got.Input != want.Input {
				t.Fatalf("%s/%s: meta %s/%s != %s/%s", m.Name, in,
					got.Program, got.Input, want.Program, want.Input)
			}
			if got.FunctionCalls != want.FunctionCalls || got.NonHeapRefs != want.NonHeapRefs {
				t.Fatalf("%s/%s: trailer %d/%d != %d/%d", m.Name, in,
					got.FunctionCalls, got.NonHeapRefs, want.FunctionCalls, want.NonHeapRefs)
			}
			if !reflect.DeepEqual(got.Events, want.Events) {
				t.Fatalf("%s/%s: event sequences diverge", m.Name, in)
			}
			if got.Table.NumChains() != want.Table.NumChains() ||
				got.Table.NumFuncs() != want.Table.NumFuncs() {
				t.Fatalf("%s/%s: tables diverge", m.Name, in)
			}
			for i := range got.Events {
				if got.Events[i].Kind != trace.KindAlloc {
					continue
				}
				if got.Table.String(got.Events[i].Chain) != want.Table.String(want.Events[i].Chain) {
					t.Fatalf("%s/%s: event %d chain diverges", m.Name, in, i)
				}
			}
		}
	}
}

func TestCountEvents(t *testing.T) {
	m := GAWK()
	cfg := Config{Input: Test, Seed: 7, Scale: 0.005}
	n, err := m.CountEvents(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := m.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if n != len(tr.Events) {
		t.Fatalf("CountEvents = %d, Generate yields %d", n, len(tr.Events))
	}

	src, err := m.Source(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, known := src.EventCount(); known {
		t.Fatal("count must be unknown before SetCount")
	}
	src.SetCount(n)
	if got, known := src.EventCount(); !known || got != n {
		t.Fatalf("EventCount = %d,%v, want %d,true", got, known, n)
	}
}

func TestSourceConfigErrors(t *testing.T) {
	m := CFRAC()
	if _, err := m.Source(Config{Scale: 0}); err == nil {
		t.Fatal("zero scale accepted")
	}
	// A drained source stays drained.
	src, err := m.Source(Config{Input: Train, Seed: 1, Scale: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	for {
		if _, err := src.Next(); err == io.EOF {
			break
		} else if err != nil {
			t.Fatal(err)
		}
	}
	if _, err := src.Next(); err != io.EOF {
		t.Fatalf("post-EOF Next = %v", err)
	}
	if src.Meta().FunctionCalls == 0 {
		t.Fatal("trailer metadata missing after EOF")
	}
}

// TestSourceBlocksMatchScalar pins the batched face of the generator: for
// every model, draining via NextBlock yields exactly the scalar event
// sequence and trailer — the RNG draw order is shared, so the two faces
// cannot diverge without this failing.
func TestSourceBlocksMatchScalar(t *testing.T) {
	for _, m := range All() {
		cfg := Config{Input: Test, Seed: 42, Scale: 0.01}
		want, err := m.Generate(cfg)
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		src, err := m.Source(cfg)
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		got, err := trace.CollectBlocks(src)
		if err != nil {
			t.Fatalf("%s: %v", m.Name, err)
		}
		if !reflect.DeepEqual(got.Events, want.Events) {
			t.Fatalf("%s: block event sequence diverges from scalar", m.Name)
		}
		if got.FunctionCalls != want.FunctionCalls || got.NonHeapRefs != want.NonHeapRefs {
			t.Fatalf("%s: trailer %d/%d != %d/%d", m.Name,
				got.FunctionCalls, got.NonHeapRefs, want.FunctionCalls, want.NonHeapRefs)
		}
	}
}
