package synth

// The five program models, calibrated against the paper's published
// statistics. Each model documents the targets it is calibrated to; the
// calibration tests in calibrate_test.go check generated traces against
// them, and EXPERIMENTS.md records the final paper-vs-measured comparison.
//
// Modeling vocabulary shared by all five programs:
//
//   - "Jump at length L": sites whose chains share their innermost L-1
//     functions (wrapper layers like xmalloc) with a long-lived site of the
//     same sizes. Sub-chains shorter than L conflate the two, so the
//     short site is only predicted once L callers are visible (Table 6).
//   - Mixed sites: one complete site allocating both short- and long-lived
//     objects; never predictable. These supply the gap between the
//     "Actual" and "Predicted" short-lived columns of Table 4.
//   - Test divergence: TestAbsent sites do not appear in the test input
//     (their trained predictor never maps), sites with ByteFrac 0 and
//     TestByteFrac > 0 are new in the test input (never predicted), and
//     sites with a TestLife carrying a long tail produce prediction error
//     — the paper's arena-pollution mechanism in CFRAC.
//   - Recursion merge: a short site whose raw chain contains a cycle that,
//     once recursion is eliminated (complete-chain mode only), becomes
//     identical to a long-lived site's chain. This reproduces the paper's
//     note under Table 6 that the infinity row can predict less than
//     length-7 (ESPRESSO, PERL).

// CFRAC models the continued-fraction integer factoring program.
//
// Calibration targets (paper Tables 2-9):
//
//	objects 3.8M, bytes 65MB, max live 83KB / 5236 objects
//	lifetime quartiles ~ 10 / 32 / 48 / 849 / 65M (byte-weighted)
//	actual short 100%; self prediction 79% with ~110 of 134 sites
//	true prediction 47.3%, error 3.65% (very long-lived mispredictions
//	that pollute the arenas, collapsing Table 7's arena fraction to ~2.6%)
//	chain-length jump at 2 (48 -> 76 -> 82); size-only predicts ~0%
//	heap refs 79%; New Ref 52% at len-1, 70% at complete chain
func CFRAC() *Model {
	// Mispredictions are *very* long-lived: CFRAC's lifetime skew is what
	// makes its pollution catastrophic (paper §5.2).
	longTail := ParetoLife(1.1, 2e5, 60e6)
	errorLife := MixLife(0.84, ExpLife(30, 1000), longTail)
	return &Model{
		Name:          "cfrac",
		Description:   "continued-fraction factoring of 20-40 digit products of two primes",
		SourceLines:   6000,
		TotalObjects:  3_800_000,
		TotalBytes:    65_000_000,
		CallsPerAlloc: 5.3,
		HeapRefFrac:   0.79,
		Sites: []SiteSpec{
			// Length-1 predictable bignum limb churn, 30% of bytes.
			// Part maps onto the test numbers (pA), part does not (pB).
			{
				Chain:       []string{"main", "cfrac", "pfactorbase", "pA#"},
				Variants:    7,
				Sizes:       Choice(8, 16, 24),
				Life:        ExpLife(30, 1000),
				ByteFrac:    12,
				RefsPerByte: 3.2,
			},
			{
				Chain:       []string{"main", "cfrac", "pcompute", "pB#"},
				Variants:    5,
				Sizes:       Choice(8, 16, 24),
				Life:        ExpLife(30, 1000),
				ByteFrac:    18,
				TestAbsent:  true,
				RefsPerByte: 3.2,
			},
			// Length-1 predictable, but on the test input a slice of its
			// objects is extremely long-lived: the 3.65% error bytes.
			{
				Chain:       []string{"main", "cfrac", "psqrt", "pE#"},
				Variants:    6,
				Sizes:       Choice(8, 16, 24),
				Life:        ExpLife(30, 1000),
				TestLife:    &errorLife,
				ByteFrac:    18,
				RefsPerByte: 3.2,
			},
			// Length-2 groups behind the shared wrapper pnew; the
			// distinguishing caller sits one level up. 13% maps in the
			// test input, 15% does not.
			{
				Chain:       []string{"main", "cfrac", "pmul", "gB#", "pnew"},
				Variants:    6,
				Sizes:       Choice(16, 32),
				Life:        ExpLife(2200, 8000),
				ByteFrac:    5,
				RefsPerByte: 2.0,
			},
			{
				Chain:       []string{"main", "cfrac", "pexp", "gD#", "pnew"},
				Variants:    6,
				Sizes:       Choice(16, 32),
				Life:        ExpLife(2200, 8000),
				ByteFrac:    8,
				TestAbsent:  true,
				RefsPerByte: 2.0,
			},
			{
				Chain:       []string{"main", "cfrac", "pdiv", "gC#", "pnew"},
				Variants:    9,
				Sizes:       Choice(16, 32),
				Life:        ExpLife(2200, 8000),
				ByteFrac:    15,
				TestAbsent:  true,
				RefsPerByte: 2.0,
			},
			// Length-3 group: two wrapper layers (pnalloc -> pnew).
			{
				Chain:       []string{"main", "cfrac", "presidue", "hC#", "pnalloc", "pnew"},
				Variants:    12,
				Sizes:       Fixed(40),
				Life:        ExpLife(2500, 9000),
				ByteFrac:    6,
				RefsPerByte: 2.0,
			},
			// Conflict partners: long-lived sites sharing the pnew and
			// pnalloc>pnew suffixes and sizes, conflating sub-chains
			// shorter than the groups above. Small byte volume.
			{
				Chain:       []string{"main", "cfrac", "savefactor", "pnew"},
				Sizes:       Choice(16, 32),
				Life:        ParetoLife(1.4, 3e5, 30e6),
				ByteFrac:    0.10,
				RefsPerByte: 4.0,
			},
			{
				Chain:       []string{"main", "cfrac", "saveresidue", "pnalloc", "pnew"},
				Sizes:       Fixed(40),
				Life:        ParetoLife(1.4, 3e5, 30e6),
				ByteFrac:    0.05,
				RefsPerByte: 4.0,
			},
			// Mixed sites: bulk short with a sliver of very long-lived
			// objects from the same chain and size; never predictable,
			// keeping "Actual" near 100% while "Predicted" sits at 79%.
			{
				Chain:       []string{"main", "cfrac", "ptoint", "mixA#"},
				Variants:    6,
				Sizes:       Choice(8, 16, 24, 32),
				Life:        MixLife(0.995, ExpLife(45, 1500), UniformLife(1e5, 3e6)),
				ByteFrac:    21,
				RefsPerByte: 3.5,
			},
			// Size-only quirk: four rare sizes used by nothing else, all
			// short — Table 5's ~5 size classes predicting ~0% of bytes.
			{
				Chain:       []string{"main", "cfrac", "pformat", "fmtbuf"},
				Sizes:       Choice(52, 76, 92, 108),
				Life:        ExpLife(50, 1200),
				ByteFrac:    0.02,
				RefsPerByte: 2.0,
			},
			// New in the test input: allocation paths the training
			// numbers never exercised, unknown to the predictor.
			{
				Chain:        []string{"main", "cfrac", "pnewpath", "qN#"},
				Variants:     3,
				Sizes:        Choice(8, 16, 24),
				Life:         ExpLife(45, 1300),
				ByteFrac:     0,
				TestByteFrac: 17,
				RefsPerByte:  3.2,
			},
			// Immortal factor tables and finite long-lived residues
			// bound the live heap near the 83KB target.
			{
				Chain:       []string{"main", "cfrac", "inittable", "tA#"},
				Variants:    4,
				Sizes:       Fixed(24),
				Life:        Immortal(),
				ByteFrac:    0.055,
				RefsPerByte: 4.0,
				PhaseEnd:    0.10,
			},
			{
				Chain:       []string{"main", "cfrac", "residues", "rA#"},
				Variants:    2,
				Sizes:       Fixed(32),
				Life:        UniformLife(5e6, 25e6),
				ByteFrac:    0.20,
				RefsPerByte: 4.0,
			},
		},
	}
}

// ESPRESSO models the PLA logic optimizer.
//
// Calibration targets:
//
//	objects 1.7M, bytes 105MB, max live 254KB / 4387 objects
//	lifetime quartiles ~ 4 / 196 / 2379 / 25530 / 105M
//	actual short 91%; self 41.8% with ~2291 of 2854 sites
//	true prediction 18.1% with ~855 sites, error 0.06%
//	prediction nearly flat in chain length (41 at length 1, 44 by length
//	7) and the complete chain predicts LESS (42) because recursion
//	elimination merges a short site into a long one
//	size-only predicts 19% with ~177 size classes; heap refs 80%;
//	New Ref ~7-9%
func ESPRESSO() *Model {
	shortMix := MixLife(0.35, ExpLife(150, 8000), UniformLife(500, 31000))
	mixedLife := MixLife(0.93, shortMix, ParetoLife(1.4, 5e4, 8e5))
	errLife := MixLife(0.98, ExpLife(300, 20000), ParetoLife(1.5, 3e5, 60e6))
	return &Model{
		Name:          "espresso",
		Description:   "PLA logic minimization on the examples shipped with release 2.3",
		SourceLines:   15500,
		TotalObjects:  1_700_000,
		TotalBytes:    105_000_000,
		CallsPerAlloc: 6.0,
		HeapRefFrac:   0.80,
		Sites: []SiteSpec{
			// Cube churn, length-1 predictable; 14% of bytes. The test
			// examples exercise only the first third of these paths.
			{
				Chain:        []string{"main", "espresso", "expand", "cubeA#"},
				Variants:     14,
				Sizes:        UniformStep(8, 192, 8),
				Life:         ExpLife(120, 15000),
				ByteFrac:     4.9,
				TestByteFrac: 3,
				RefsPerByte:  0.30,
			},
			{
				Chain:       []string{"main", "espresso", "expand1", "cubeB#"},
				Variants:    26,
				Sizes:       UniformStep(8, 192, 8),
				Life:        ExpLife(120, 15000),
				ByteFrac:    9.1,
				TestAbsent:  true,
				RefsPerByte: 0.30,
			},
			// Set-family storage: the only user of sizes 204..904 step 4
			// (176 distinct sizes), so size alone identifies it —
			// Table 5's 19% / 177 size classes.
			{
				Chain:        []string{"main", "espresso", "irredundant", "setB#"},
				Variants:     1,
				Sizes:        UniformStep(204, 904, 4),
				Life:         ExpLife(9000, 30000),
				ByteFrac:     6.3,
				TestByteFrac: 6,
				RefsPerByte:  0.30,
			},
			{
				Chain:       []string{"main", "espresso", "minimize", "setC#"},
				Variants:    2,
				Sizes:       UniformStep(204, 904, 4),
				Life:        ExpLife(9000, 30000),
				ByteFrac:    12.7,
				TestAbsent:  true,
				RefsPerByte: 0.30,
			},
			// Essential-prime bookkeeping, length-1 predictable.
			{
				Chain:        []string{"main", "espresso", "essen", "essC#"},
				Variants:     24,
				Sizes:        UniformStep(8, 64, 8),
				Life:         ExpLife(80, 15000),
				ByteFrac:     2,
				TestByteFrac: 5,
				RefsPerByte:  0.30,
			},
			{
				Chain:       []string{"main", "espresso", "essen2", "essD#"},
				Variants:    46,
				Sizes:       UniformStep(8, 64, 8),
				Life:        ExpLife(80, 15000),
				ByteFrac:    4,
				TestAbsent:  true,
				RefsPerByte: 0.30,
			},
			// Length-7 group: six shared wrapper layers under the
			// distinguishing caller; only length-7 (or more) separates
			// it from the keepcover partner below.
			{
				Chain:       []string{"main", "espresso", "reduce", "dC#", "w5", "w4", "w3", "w2", "w1", "sf_new"},
				Variants:    3,
				Sizes:       UniformStep(8, 328, 8),
				Life:        ExpLife(300, 20000),
				ByteFrac:    1.5,
				RefsPerByte: 0.30,
			},
			{
				Chain:       []string{"main", "espresso", "keepcover", "w5", "w4", "w3", "w2", "w1", "sf_new"},
				Sizes:       UniformStep(8, 328, 8),
				Life:        ParetoLife(1.5, 2e5, 50e6),
				ByteFrac:    0.05,
				RefsPerByte: 2.0,
				PhaseEnd:    0.25,
			},
			// Recursion-merge pair: the short site's raw chain carries a
			// cycle through "unravel"; eliminating it yields exactly the
			// long partner's chain, so the complete-chain predictor
			// conflates what length >= 3 separates. On the test input a
			// tiny long tail appears: the 0.06% error bytes.
			{
				Chain:       []string{"main", "espresso", "unravel", "taut", "unravel", "sf_save"},
				Variants:    4,
				Sizes:       UniformStep(8, 200, 8),
				Life:        ExpLife(300, 20000),
				TestLife:    &errLife,
				ByteFrac:    2.0,
				RefsPerByte: 0.30,
			},
			{
				Chain:       []string{"main", "espresso", "unravel", "sf_save"},
				Sizes:       UniformStep(8, 200, 8),
				Life:        ParetoLife(1.5, 3e5, 60e6),
				ByteFrac:    0.05,
				RefsPerByte: 2.0,
				PhaseEnd:    0.25,
			},
			// Mixed cover cells: the majority of ESPRESSO's volume;
			// every site occasionally allocates a long-lived cover, so
			// none is predictable. A further mixed group is new in test.
			{
				Chain:       []string{"main", "espresso", "complement", "mixA#"},
				Variants:    20,
				Sizes:       UniformStep(8, 128, 8),
				Life:        mixedLife,
				ByteFrac:    52,
				RefsPerByte: 2.4,
			},
			{
				Chain:        []string{"main", "espresso", "sharp", "mixB#"},
				Variants:     6,
				Sizes:        UniformStep(8, 96, 8),
				Life:         mixedLife,
				ByteFrac:     0,
				TestByteFrac: 11,
				RefsPerByte:  2.4,
			},
			// Long-lived cover storage (finite) and immortal symbol
			// tables; dominates the 254KB live-heap target.
			{
				Chain:       []string{"main", "espresso", "cover", "covA#"},
				Variants:    14,
				Sizes:       UniformStep(16, 216, 8),
				Life:        UniformLife(10e6, 60e6),
				ByteFrac:    0.22,
				RefsPerByte: 2.2,
				PhaseEnd:    0.25,
			},
			{
				Chain:       []string{"main", "espresso", "symtab", "symA#"},
				Variants:    2,
				Sizes:       UniformStep(16, 136, 8),
				Life:        Immortal(),
				ByteFrac:    0.05,
				RefsPerByte: 2.2,
				PhaseEnd:    0.10,
			},
		},
	}
}

// GAWK models the GNU AWK interpreter formatting dictionaries.
//
// Calibration targets:
//
//	objects 4.3M, bytes 167MB, max live 35KB / 1384 objects
//	lifetime quartiles ~ 2 / 29 / 257 / 1192 / 167M
//	actual short 98%; self 99.3% with ~93 of 171 sites
//	true == self (same awk program, different data): 99.3%, 0 error
//	chain jump at 3 (72 -> 78 -> 99); size-only 5% with 64 size classes
//	heap refs 47%; New Ref 26% at len-1, 43% at complete chain
func GAWK() *Model {
	return &Model{
		Name:          "gawk",
		Description:   "GNU awk 2.11 filling dictionary words into paragraphs",
		SourceLines:   8500,
		TotalObjects:  4_300_000,
		TotalBytes:    167_000_000,
		CallsPerAlloc: 6.7,
		HeapRefFrac:   0.47,
		Sites: []SiteSpec{
			// Length-1 predictable NODE and string-value churn: 72%.
			{
				Chain:       []string{"main", "interpret", "r_tree_eval", "nodeA#"},
				Variants:    8,
				Sizes:       Choice(32, 48),
				Life:        ExpLife(180, 6000),
				ByteFrac:    50,
				RefsPerByte: 0.45,
			},
			{
				Chain:       []string{"main", "interpret", "r_assign", "valB#"},
				Variants:    3,
				Sizes:       Choice(16, 24),
				Life:        ExpLife(60, 3000),
				ByteFrac:    22,
				RefsPerByte: 0.45,
			},
			// Length-2 group behind the tmp_node wrapper: +6%.
			{
				Chain:       []string{"main", "interpret", "concat", "catC#", "tmp_node"},
				Variants:    2,
				Sizes:       Fixed(32),
				Life:        ExpLife(120, 5000),
				ByteFrac:    6,
				RefsPerByte: 0.45,
			},
			// Length-3 group: string buffers behind emalloc -> tmp_node;
			// the jump from 78% to 99% at length 3. +21%.
			{
				Chain:       []string{"main", "interpret", "do_print", "strD#", "emalloc", "tmp_node"},
				Variants:    5,
				Sizes:       Choice(8, 24),
				Life:        ExpLife(500, 9000),
				ByteFrac:    21,
				RefsPerByte: 1.1,
			},
			// Conflict partners for lengths 1-2: long-lived symbol nodes
			// through the same wrappers with the same sizes.
			{
				Chain:       []string{"main", "interpret", "variable", "tmp_node"},
				Sizes:       Choice(32, 48),
				Life:        UniformLife(1e6, 10e6),
				ByteFrac:    0.02,
				RefsPerByte: 1300,
				PhaseEnd:    0.10,
			},
			{
				Chain:       []string{"main", "interpret", "install", "emalloc", "tmp_node"},
				Sizes:       Choice(8, 24),
				Life:        UniformLife(1e6, 10e6),
				ByteFrac:    0.02,
				RefsPerByte: 1300,
				PhaseEnd:    0.10,
			},
			// Regexp buffers with sizes nothing else uses; Table 5's 5%
			// over 64 size classes, length-1 predictable as well. awk
			// compiles its program's regexps while parsing, so these
			// land in an early phase — which also keeps their large
			// requests from fragmenting the steady-state heap.
			{
				Chain:       []string{"main", "interpret", "re_compile", "reE"},
				Sizes:       UniformStep(132, 384, 4),
				Life:        ExpLife(900, 12000),
				ByteFrac:    5,
				RefsPerByte: 0.45,
				PhaseEnd:    0.10,
			},
			// Long-lived: symbol table and field arrays. GAWK's live
			// heap is tiny (35KB).
			{
				Chain:       []string{"main", "load_symbols", "symF#"},
				Variants:    33,
				Sizes:       Choice(16, 32),
				Life:        Immortal(),
				ByteFrac:    0.012,
				RefsPerByte: 1300,
				PhaseEnd:    0.10,
			},
			{
				Chain:       []string{"main", "interpret", "fieldbuf"},
				Sizes:       Fixed(512),
				Life:        UniformLife(20e6, 80e6),
				ByteFrac:    0.008,
				RefsPerByte: 1300,
				PhaseEnd:    0.10,
			},
		},
	}
}

// GHOST models the GhostScript PostScript interpreter (NODISPLAY).
//
// Calibration targets:
//
//	objects 0.9M, bytes 89.7MB, max live 2113KB / 26467 objects
//	lifetime quartiles ~ 16 / 4330 / 8052 / ~30000 / 89.7M
//	actual short 97%; self 80.9% with ~256 of 634 sites
//	true prediction 71.8% with ~211 sites, error ~0
//	chain ladder 40 / 40 / 47 / 75 / 80 / 80 / 81 (jump at 4)
//	size-only 36% with ~106 size classes
//	~5200 six-kilobyte short-lived objects (~35% of bytes) that cannot
//	fit in 4KB arenas: Table 7's arena bytes 37.7% despite 71.8%
//	predicted; heap refs 69%; New Ref 13% at len-1, 38% at complete
//	first-fit fragments badly (5.6MB heap vs 2.1MB live, Table 8) and
//	the arena allocator recovers most of it
func GHOST() *Model {
	return &Model{
		Name:          "ghost",
		Description:   "GhostScript 2.1 interpreting large documents with NODISPLAY",
		SourceLines:   29500,
		TotalObjects:  900_000,
		TotalBytes:    89_700_000,
		CallsPerAlloc: 31.0,
		HeapRefFrac:   0.69,
		Sites: []SiteSpec{
			// The 6KB path-segment buffers: short-lived, predictable at
			// length 1, but too big for a 4KB arena. ~5100 objects.
			{
				Chain:       []string{"main", "gs_interp", "gx_path_fill", "pathbuf"},
				Sizes:       Fixed(6144),
				Life:        ExpLife(9000, 25000),
				ByteFrac:    35,
				RefsPerByte: 0.18,
			},
			// Length-4 predictable token/ref churn behind three wrapper
			// layers (alloc_refs -> gs_alloc -> gs_malloc): the jump
			// from 47% to 75% at length 4. Part of it vanishes under the
			// test documents, replaced by new paths (testdoc below).
			{
				Chain:        []string{"main", "gs_interp", "zexec", "tokD#", "alloc_refs", "gs_alloc", "gs_malloc"},
				Variants:     25,
				Sizes:        Choice(16, 32, 48, 64),
				Life:         ExpLife(6000, 25000),
				ByteFrac:     17,
				TestByteFrac: 15,
				RefsPerByte:  0.55,
			},
			{
				Chain:       []string{"main", "gs_interp", "zload", "tokE#", "alloc_refs", "gs_alloc", "gs_malloc"},
				Variants:    8,
				Sizes:       Choice(16, 32, 48, 64),
				Life:        ExpLife(6000, 25000),
				ByteFrac:    5,
				TestAbsent:  true,
				RefsPerByte: 0.55,
			},
			{
				Chain:       []string{"main", "gs_interp", "zarray", "arrE#", "alloc_refs", "gs_alloc", "gs_malloc"},
				Variants:    10,
				Sizes:       Choice(80, 128),
				Life:        ExpLife(7000, 25000),
				ByteFrac:    6,
				RefsPerByte: 0.55,
			},
			// Length-3 group: name cells behind name_alloc -> gs_malloc.
			{
				Chain:       []string{"main", "gs_interp", "nameT#", "name_alloc", "gs_malloc"},
				Variants:    10,
				Sizes:       Choice(20, 28),
				Life:        ExpLife(5000, 24000),
				ByteFrac:    6,
				RefsPerByte: 0.55,
			},
			// Length-5 group (one more wrapper layer): 75 -> 80.
			{
				Chain:       []string{"main", "gs_interp", "zdict", "dictF#", "dict_create", "alloc_refs", "gs_alloc", "gs_malloc"},
				Variants:    8,
				Sizes:       Choice(40, 56),
				Life:        ExpLife(8000, 25000),
				ByteFrac:    5,
				RefsPerByte: 0.55,
			},
			// Length-6 sliver: 80 -> 81.
			{
				Chain:       []string{"main", "gs_interp", "zimage", "imgG#", "buf_open", "dict_create", "alloc_refs", "gs_alloc", "gs_malloc"},
				Variants:    6,
				Sizes:       Fixed(96),
				Life:        ExpLife(8000, 25000),
				ByteFrac:    1,
				RefsPerByte: 0.55,
			},
			// Length-1 predictable name strings with distinctive sizes:
			// with pathbuf these are the size-only classes of Table 5.
			{
				Chain:       []string{"main", "gs_interp", "name_string", "strH"},
				Sizes:       UniformStep(204, 608, 4),
				Life:        ExpLife(5000, 24000),
				ByteFrac:    1.9,
				RefsPerByte: 0.55,
			},
			// Conflict partners sharing the wrapper stacks and sizes.
			{
				Chain:       []string{"main", "gs_interp", "systemdict", "alloc_refs", "gs_alloc", "gs_malloc"},
				Sizes:       Choice(16, 32, 48, 64, 80, 128),
				Life:        ParetoLife(1.3, 2e6, 80e6),
				ByteFrac:    1.2,
				RefsPerByte: 4.0,
				PhaseEnd:    0.15,
			},
			{
				Chain:       []string{"main", "gs_interp", "nameinit", "name_alloc", "gs_malloc"},
				Sizes:       Choice(20, 28),
				Life:        ParetoLife(1.3, 2e6, 80e6),
				ByteFrac:    0.4,
				RefsPerByte: 4.0,
				PhaseEnd:    0.15,
			},
			{
				Chain:       []string{"main", "gs_interp", "fontload", "dict_create", "alloc_refs", "gs_alloc", "gs_malloc"},
				Sizes:       Choice(40, 56),
				Life:        ParetoLife(1.3, 2e6, 80e6),
				ByteFrac:    0.6,
				RefsPerByte: 4.0,
				PhaseEnd:    0.15,
			},
			// Mixed VM cells: 16% of bytes, never predictable.
			{
				Chain:       []string{"main", "gs_interp", "vmcell", "mixI#"},
				Variants:    10,
				Sizes:       Choice(512, 1024),
				Life:        MixLife(0.90, ExpLife(9000, 25000), ParetoLife(1.3, 2e6, 80e6)),
				ByteFrac:    16,
				RefsPerByte: 2.2,
			},
			// New paths exercised only by the test documents.
			{
				Chain:        []string{"main", "gs_interp", "testdoc", "newO#"},
				Variants:     6,
				Sizes:        Choice(96, 192),
				Life:         ExpLife(7000, 25000),
				ByteFrac:     0,
				TestByteFrac: 10,
				RefsPerByte:  0.55,
			},
			// Dictionaries grow throughout interpretation: long-lived
			// small allocations arriving mid-run. Under first-fit they
			// land amid freshly-freed short-lived churn and pin those
			// regions, so recurring 6KB path-buffer requests must extend
			// the heap — the paper's 2.6x first-fit blowup. With the
			// churn segregated into arenas, they pack compactly instead.
			{
				Chain:       []string{"main", "gs_interp", "dict_grow", "dgrowP#"},
				Variants:    8,
				Sizes:       Choice(40, 64),
				Life:        ParetoLife(1.2, 3e6, 80e6),
				ByteFrac:    0.9,
				RefsPerByte: 4.0,
				PhaseStart:  0.15,
				PhaseEnd:    1.0,
			},
			// Long-lived font/dictionary storage loaded at startup, plus
			// finite long buffers. ~2MB live with dict_grow.
			{
				Chain:       []string{"main", "gs_interp", "fontcache", "fontJ#"},
				Variants:    105,
				Sizes:       Choice(32, 48),
				Life:        Immortal(),
				ByteFrac:    2.2,
				RefsPerByte: 4.0,
				PhaseEnd:    0.15,
			},
			{
				Chain:       []string{"main", "gs_interp", "pagedev", "bigK#"},
				Variants:    4,
				Sizes:       Choice(2048, 4096),
				Life:        UniformLife(20e6, 80e6),
				ByteFrac:    0.8,
				RefsPerByte: 4.0,
				PhaseEnd:    0.15,
			},
		},
	}
}

// PERL models the perl 4.10 report-extraction scripts. Uniquely, the test
// input is a *different perl program*, so true prediction collapses: most
// trained sites never map.
//
// Calibration targets:
//
//	objects 1.5M, bytes 33.5MB, max live 62KB / 1826 objects
//	lifetime quartiles ~ 1 / 64 / 887 / 1306 / 33.5M
//	actual short 99%; self 91.4% with ~74 of 305 sites
//	true prediction 20.4% with ~29 sites, error 1.11%
//	chain ladder 31 / 63 / 63 / 91 / 94 / 94 / 95, complete chain 92
//	(recursion merge); size-only 29% with 26 size classes
//	heap refs 48%; New Ref 23% at len-1, 44% at complete chain
func PERL() *Model {
	// Mispredicted PERL objects are long-lived (past the 32KB threshold)
	// but finite — unlike CFRAC's, they release their arenas eventually,
	// so the paper's PERL shows no pollution collapse (Table 7: 18%).
	errLife := MixLife(0.75, ExpLife(900, 9000), ParetoLife(1.3, 5e4, 1e6))
	return &Model{
		Name:          "perl",
		Description:   "perl 4.10 sorting a file and filling dictionary words (train) vs a distinct report script (test)",
		SourceLines:   34500,
		TotalObjects:  1_500_000,
		TotalBytes:    33_500_000,
		CallsPerAlloc: 16.0,
		HeapRefFrac:   0.48,
		Sites: []SiteSpec{
			// Format buffers: length-1 predictable, and the only user of
			// sizes 68..168 — Table 5's 29% over 26 size classes. The
			// report script formats through different paths: absent.
			{
				Chain:       []string{"main", "perl_run", "do_write", "fmtJ"},
				Sizes:       UniformStep(68, 168, 4),
				Life:        ExpLife(700, 9000),
				ByteFrac:    26,
				TestAbsent:  true,
				RefsPerByte: 1.5,
			},
			// Sort-comparison scratch: length-1 predictable, maps.
			{
				Chain:       []string{"main", "perl_run", "sortsub", "cmpB#"},
				Variants:    2,
				Sizes:       Choice(8, 16),
				Life:        ExpLife(80, 3000),
				ByteFrac:    5,
				RefsPerByte: 0.9,
			},
			// Length-2 groups behind safemalloc. strA and svC are the
			// training script's own hot paths (absent in test); lineD
			// maps but misfires on ~25% of its test objects: the 1.11%
			// error bytes.
			{
				Chain:       []string{"main", "perl_run", "eval", "strA#", "safemalloc"},
				Variants:    3,
				Sizes:       Choice(8, 16),
				Life:        ExpLife(500, 8000),
				ByteFrac:    16,
				TestAbsent:  true,
				RefsPerByte: 0.9,
			},
			{
				Chain:       []string{"main", "perl_run", "stab_val", "svC#", "safemalloc"},
				Variants:    6,
				Sizes:       Choice(16, 32),
				Life:        ExpLife(900, 9000),
				ByteFrac:    12,
				TestAbsent:  true,
				RefsPerByte: 0.9,
			},
			{
				Chain:       []string{"main", "perl_run", "str_gets", "lineD#", "safemalloc"},
				Variants:    2,
				Sizes:       Choice(16, 32),
				Life:        ExpLife(900, 9000),
				TestLife:    &errLife,
				ByteFrac:    4,
				RefsPerByte: 0.9,
			},
			// Length-4 groups: three wrapper layers (str_new -> str_grow
			// -> safemalloc): the jump to 91%.
			{
				Chain:       []string{"main", "perl_run", "do_split", "splE#", "str_new", "str_grow", "safemalloc"},
				Variants:    5,
				Sizes:       Choice(8, 24),
				Life:        ExpLife(1000, 9500),
				ByteFrac:    10,
				RefsPerByte: 0.9,
			},
			{
				Chain:       []string{"main", "perl_run", "do_splitf", "splF#", "str_new", "str_grow", "safemalloc"},
				Variants:    3,
				Sizes:       Choice(8, 24),
				Life:        ExpLife(1000, 9500),
				ByteFrac:    7,
				TestAbsent:  true,
				RefsPerByte: 0.9,
			},
			{
				Chain:       []string{"main", "perl_run", "do_join", "joinF#", "str_new", "str_grow", "safemalloc"},
				Variants:    3,
				Sizes:       Choice(8, 24),
				Life:        ExpLife(1000, 9500),
				ByteFrac:    8,
				TestAbsent:  true,
				RefsPerByte: 0.9,
			},
			// Length-5 and length-6 slivers.
			{
				Chain:       []string{"main", "perl_run", "do_subst", "subG", "str_ncat", "str_new", "str_grow", "safemalloc"},
				Sizes:       Fixed(32),
				Life:        ExpLife(1100, 9500),
				ByteFrac:    3,
				RefsPerByte: 0.9,
			},
			{
				Chain:       []string{"main", "perl_run", "do_study", "stH", "scanq", "str_ncat", "str_new", "str_grow", "safemalloc"},
				Sizes:       Fixed(16),
				Life:        ExpLife(1100, 9500),
				ByteFrac:    1,
				RefsPerByte: 0.9,
			},
			// Recursion merge: eval recurses through cmd_exec before
			// allocating; the eliminated chain equals the long-lived
			// arena-node site below, so the complete chain loses what
			// length-4 separates (95 -> 92).
			{
				Chain:       []string{"main", "perl_run", "cmd_exec", "eval", "cmd_exec", "wB", "arnshared"},
				Sizes:       Fixed(24),
				Life:        ExpLife(800, 9000),
				ByteFrac:    3,
				RefsPerByte: 0.9,
			},
			{
				Chain:       []string{"main", "perl_run", "cmd_exec", "wB", "arnshared"},
				Sizes:       Fixed(24),
				Life:        ParetoLife(1.3, 8e5, 30e6),
				ByteFrac:    0.10,
				RefsPerByte: 20,
			},
			// Conflict partners behind the shared wrappers.
			{
				Chain:       []string{"main", "perl_run", "stab_add", "safemalloc"},
				Sizes:       Choice(8, 16, 32),
				Life:        ParetoLife(1.3, 8e5, 30e6),
				ByteFrac:    0.2,
				RefsPerByte: 20,
			},
			{
				Chain:       []string{"main", "perl_run", "savestr", "str_new", "str_grow", "safemalloc"},
				Sizes:       Choice(8, 24),
				Life:        ParetoLife(1.3, 8e5, 30e6),
				ByteFrac:    0.2,
				RefsPerByte: 20,
			},
			// Mixed lexer cells (unpredictable short): ~4%.
			{
				Chain:       []string{"main", "perl_run", "yylex", "mixK#"},
				Variants:    10,
				Sizes:       Choice(8, 16, 32),
				Life:        MixLife(0.90, ExpLife(900, 9000), ParetoLife(1.3, 8e5, 30e6)),
				ByteFrac:    4,
				RefsPerByte: 20,
			},
			// The report script's own hot allocation paths, unknown to
			// the trained predictor.
			{
				Chain:        []string{"main", "perl_run", "report", "rptL#"},
				Variants:     12,
				Sizes:        Choice(8, 16, 24, 32),
				Life:         ExpLife(700, 9000),
				ByteFrac:     0,
				TestByteFrac: 85,
				RefsPerByte:  0.9,
			},
			// Immortal symbol/stab tables plus finite long-lived state
			// for the ~62KB live target.
			{
				Chain:       []string{"main", "perl_run", "stabinit", "stabM#"},
				Variants:    85,
				Sizes:       Choice(16, 32),
				Life:        Immortal(),
				ByteFrac:    0.10,
				RefsPerByte: 20,
				PhaseEnd:    0.10,
			},
			{
				Chain:       []string{"main", "perl_run", "mainstack"},
				Sizes:       Fixed(1024),
				Life:        UniformLife(10e6, 30e6),
				ByteFrac:    0.06,
				RefsPerByte: 20,
				PhaseEnd:    0.10,
			},
		},
	}
}

// All returns the five program models in the paper's order.
func All() []*Model {
	return []*Model{CFRAC(), ESPRESSO(), GAWK(), GHOST(), PERL()}
}

// ByName returns the model with the given name, or nil.
func ByName(name string) *Model {
	for _, m := range All() {
		if m.Name == name {
			return m
		}
	}
	return nil
}
