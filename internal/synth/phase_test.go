package synth

import (
	"testing"

	"repro/internal/trace"
)

// phaseModel builds a model with an early-phase site and a late-phase
// site around an always-on churn site.
func phaseModel() *Model {
	return &Model{
		Name:       "phased",
		TotalBytes: 1_000_000,
		Sites: []SiteSpec{
			{
				Chain:    []string{"main", "early", "alloc"},
				Sizes:    Fixed(64),
				Life:     Immortal(),
				ByteFrac: 5,
				PhaseEnd: 0.2,
			},
			{
				Chain:      []string{"main", "late", "alloc"},
				Sizes:      Fixed(64),
				Life:       ExpLife(500, 0),
				ByteFrac:   5,
				PhaseStart: 0.8,
				PhaseEnd:   1.0,
			},
			{
				Chain:    []string{"main", "churn", "alloc"},
				Sizes:    Fixed(32),
				Life:     ExpLife(200, 0),
				ByteFrac: 90,
			},
		},
	}
}

func TestPhaseWindowsRespected(t *testing.T) {
	m := phaseModel()
	tr, err := m.Generate(Config{Input: Train, Seed: 3, Scale: 1})
	if err != nil {
		t.Fatal(err)
	}
	st, err := trace.ComputeStats(tr)
	if err != nil {
		t.Fatal(err)
	}
	total := st.TotalBytes

	earlyChain := tr.Table.InternNames("main", "early", "alloc")
	lateChain := tr.Table.InternNames("main", "late", "alloc")
	var pos int64
	var earlyBytes, lateBytes int64
	for _, ev := range tr.Events {
		if ev.Kind != trace.KindAlloc {
			continue
		}
		switch ev.Chain {
		case earlyChain:
			if pos > total/4 {
				t.Fatalf("early-phase allocation at byte %d of %d", pos, total)
			}
			earlyBytes += ev.Size
		case lateChain:
			if pos < total*3/4 {
				t.Fatalf("late-phase allocation at byte %d of %d", pos, total)
			}
			lateBytes += ev.Size
		}
		pos += ev.Size
	}
	// Each phased site still delivers its full byte share (~5%).
	for name, got := range map[string]int64{"early": earlyBytes, "late": lateBytes} {
		frac := float64(got) / float64(total)
		if frac < 0.03 || frac > 0.07 {
			t.Errorf("%s site delivered %.1f%% of bytes, want ~5%%", name, 100*frac)
		}
	}
}

func TestPhaseValidation(t *testing.T) {
	m := &Model{
		Name:       "bad",
		TotalBytes: 1000,
		Sites: []SiteSpec{{
			Chain:    []string{"main", "x"},
			Sizes:    Fixed(8),
			Life:     ExpLife(100, 0),
			ByteFrac: 1,
			PhaseEnd: 1.5, // out of range
		}},
	}
	if _, err := m.Generate(Config{Input: Train, Seed: 1, Scale: 1}); err == nil {
		t.Fatal("phase window beyond 1.0 accepted")
	}
}

func TestPhaseDeterminism(t *testing.T) {
	m := phaseModel()
	a, err := m.Generate(Config{Input: Train, Seed: 9, Scale: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Generate(Config{Input: Train, Seed: 9, Scale: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Events) != len(b.Events) {
		t.Fatal("phased generation not deterministic in length")
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("phased generation diverges at event %d", i)
		}
	}
}
