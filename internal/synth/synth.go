// Package synth generates synthetic allocation traces that stand in for the
// paper's five AE-instrumented C programs (CFRAC, ESPRESSO, GAWK, GHOST,
// PERL). We cannot run 1993 SPARC binaries under Larus' AE tracer, so each
// program is modeled as a set of allocation-site specifications with an
// explicit layered call-graph, per-site size and lifetime distributions,
// reference weights, and separate behaviour under a *training* input and a
// *test* input (for the paper's self- vs true-prediction distinction).
//
// The models in programs.go are calibrated so that the statistics the
// paper's experiments depend on — short-lived byte fractions, site counts,
// the call-chain length at which prediction jumps, self/true divergence,
// misprediction (arena pollution) rates, oversized short-lived objects,
// live-heap volumes — match the published tables. Everything downstream
// consumes only trace events, exactly as the paper's simulator consumed AE
// events, so this substitution preserves the behaviour under study.
package synth

import (
	"fmt"
	"io"
	"math"
	"strings"

	"repro/internal/callchain"
	"repro/internal/trace"
	"repro/internal/xrand"
)

// Input selects which workload input a generation run models.
type Input string

// The two inputs every model defines. Training trains the predictor; Test
// is the (different) input used for true prediction.
const (
	Train Input = "train"
	Test  Input = "test"
)

// SizeKind discriminates size distributions.
type SizeKind uint8

// Size distribution kinds.
const (
	SizeFixed SizeKind = iota + 1
	SizeChoice
	SizeUniformStep
)

// SizeDist describes the request-size distribution of a site spec.
type SizeDist struct {
	Kind    SizeKind
	Value   int64     // SizeFixed
	Choices []int64   // SizeChoice
	Weights []float64 // optional, SizeChoice; nil = uniform
	Lo, Hi  int64     // SizeUniformStep: {Lo, Lo+Step, ..., <=Hi}
	Step    int64

	// TestDelta is added to every sampled size in the Test input. A delta
	// that stays within the same 4-byte rounding class still maps across
	// runs (paper §4: sizes are rounded to a multiple of four bytes when
	// mapping training sites onto test sites); a larger delta breaks the
	// mapping.
	TestDelta int64
}

// Fixed returns a distribution always sampling n.
func Fixed(n int64) SizeDist { return SizeDist{Kind: SizeFixed, Value: n} }

// Choice returns a distribution sampling uniformly from the given sizes.
func Choice(sizes ...int64) SizeDist { return SizeDist{Kind: SizeChoice, Choices: sizes} }

// UniformStep returns a distribution sampling uniformly from
// {lo, lo+step, ...} up to hi inclusive.
func UniformStep(lo, hi, step int64) SizeDist {
	return SizeDist{Kind: SizeUniformStep, Lo: lo, Hi: hi, Step: step}
}

func (d SizeDist) sample(r *xrand.RNG, in Input) int64 {
	var s int64
	switch d.Kind {
	case SizeFixed:
		s = d.Value
	case SizeChoice:
		if d.Weights != nil {
			// Weights are rare; build the cumulative scan inline.
			u := r.Float64()
			sum := 0.0
			for _, w := range d.Weights {
				sum += w
			}
			acc := 0.0
			s = d.Choices[len(d.Choices)-1]
			for i, w := range d.Weights {
				acc += w / sum
				if u < acc {
					s = d.Choices[i]
					break
				}
			}
		} else {
			s = d.Choices[r.Intn(len(d.Choices))]
		}
	case SizeUniformStep:
		n := (d.Hi-d.Lo)/d.Step + 1
		s = d.Lo + d.Step*int64(r.Uint64n(uint64(n)))
	default:
		panic(fmt.Sprintf("synth: bad SizeKind %d", d.Kind))
	}
	if in == Test {
		s += d.TestDelta
	}
	if s < 1 {
		s = 1
	}
	return s
}

// Mean returns the expected sampled size for the given input.
func (d SizeDist) Mean(in Input) float64 {
	var m float64
	switch d.Kind {
	case SizeFixed:
		m = float64(d.Value)
	case SizeChoice:
		if d.Weights != nil {
			sum, acc := 0.0, 0.0
			for i, w := range d.Weights {
				sum += w
				acc += w * float64(d.Choices[i])
			}
			m = acc / sum
		} else {
			acc := 0.0
			for _, c := range d.Choices {
				acc += float64(c)
			}
			m = acc / float64(len(d.Choices))
		}
	case SizeUniformStep:
		m = float64(d.Lo+d.Hi) / 2
	default:
		panic(fmt.Sprintf("synth: bad SizeKind %d", d.Kind))
	}
	if in == Test {
		m += float64(d.TestDelta)
	}
	return m
}

// DistinctSizes reports how many distinct sizes the distribution can
// produce; with the chain this determines how many allocation sites the
// spec contributes (paper §3.2: same chain, different size = different
// site).
func (d SizeDist) DistinctSizes() int {
	switch d.Kind {
	case SizeFixed:
		return 1
	case SizeChoice:
		return len(d.Choices)
	case SizeUniformStep:
		return int((d.Hi-d.Lo)/d.Step + 1)
	default:
		panic(fmt.Sprintf("synth: bad SizeKind %d", d.Kind))
	}
}

// LifeKind discriminates lifetime distributions.
type LifeKind uint8

// Lifetime distribution kinds. All lifetimes are in bytes allocated.
const (
	LifeExp LifeKind = iota + 1
	LifeFixed
	LifeUniform
	LifePareto
	LifeImmortal // never freed: lives to the end of the trace
	LifeMix      // with probability MixP draw from A, else from B
)

// LifeDist describes an object-lifetime distribution in bytes allocated.
type LifeDist struct {
	Kind   LifeKind
	Mean   float64 // LifeExp
	Value  float64 // LifeFixed
	Lo, Hi float64 // LifeUniform
	Alpha  float64 // LifePareto
	Xm     float64 // LifePareto minimum
	Cap    float64 // if > 0, truncate samples above Cap

	MixP float64 // LifeMix: probability of drawing from A
	A, B *LifeDist
}

// ExpLife returns an exponential lifetime distribution with the given mean,
// truncated at cap when cap > 0.
func ExpLife(mean, cap float64) LifeDist { return LifeDist{Kind: LifeExp, Mean: mean, Cap: cap} }

// UniformLife returns a uniform lifetime on [lo, hi].
func UniformLife(lo, hi float64) LifeDist { return LifeDist{Kind: LifeUniform, Lo: lo, Hi: hi} }

// ParetoLife returns a Pareto lifetime with shape alpha and minimum xm,
// truncated at cap when cap > 0.
func ParetoLife(alpha, xm, cap float64) LifeDist {
	return LifeDist{Kind: LifePareto, Alpha: alpha, Xm: xm, Cap: cap}
}

// Immortal returns the distribution of objects that live until program
// exit.
func Immortal() LifeDist { return LifeDist{Kind: LifeImmortal} }

// MixLife draws from a with probability p, otherwise from b.
func MixLife(p float64, a, b LifeDist) LifeDist {
	return LifeDist{Kind: LifeMix, MixP: p, A: &a, B: &b}
}

// immortal is the sentinel lifetime for never-freed objects.
const immortal = math.MaxInt64

// sample returns a lifetime in bytes, or the immortal sentinel.
func (d LifeDist) sample(r *xrand.RNG) int64 {
	var v float64
	switch d.Kind {
	case LifeExp:
		v = r.Exp(d.Mean)
	case LifeFixed:
		v = d.Value
	case LifeUniform:
		v = d.Lo + r.Float64()*(d.Hi-d.Lo)
	case LifePareto:
		v = r.Pareto(d.Alpha, d.Xm)
	case LifeImmortal:
		return immortal
	case LifeMix:
		if r.Bool(d.MixP) {
			return d.A.sample(r)
		}
		return d.B.sample(r)
	default:
		panic(fmt.Sprintf("synth: bad LifeKind %d", d.Kind))
	}
	if d.Cap > 0 && v > d.Cap {
		v = d.Cap
	}
	if v < 1 {
		v = 1
	}
	if v >= float64(immortal) {
		return immortal - 1
	}
	return int64(v)
}

// MeanFinite returns the expected lifetime treating immortal mass as 0 with
// weight reported separately; used by live-volume calibration arithmetic.
func (d LifeDist) MeanFinite() (mean float64, immortalFrac float64) {
	switch d.Kind {
	case LifeExp:
		return d.Mean, 0
	case LifeFixed:
		return d.Value, 0
	case LifeUniform:
		return (d.Lo + d.Hi) / 2, 0
	case LifePareto:
		if d.Alpha <= 1 {
			if d.Cap > 0 {
				// Truncated mean of Pareto: rough numeric value.
				return d.Xm * math.Log(d.Cap/d.Xm), 0
			}
			return math.Inf(1), 0
		}
		return d.Alpha * d.Xm / (d.Alpha - 1), 0
	case LifeImmortal:
		return 0, 1
	case LifeMix:
		ma, ia := d.A.MeanFinite()
		mb, ib := d.B.MeanFinite()
		return d.MixP*ma + (1-d.MixP)*mb, d.MixP*ia + (1-d.MixP)*ib
	default:
		panic(fmt.Sprintf("synth: bad LifeKind %d", d.Kind))
	}
}

// SiteSpec describes one family of allocation sites: a raw call-chain, a
// size distribution (each distinct size is its own site), lifetime
// behaviour under the training and test inputs, relative volume under each
// input, and reference weights for the locality model.
type SiteSpec struct {
	// Chain is the raw call-chain at the allocation, outermost caller
	// first; the last element directly calls the allocator. Repeated
	// names model recursion (removed only when the predictor uses the
	// complete chain). An element containing '#' marks the variant point.
	Chain []string

	// Variants > 1 replicates the spec, substituting "#" in the marked
	// chain element with the variant number and splitting volume evenly.
	// This is how models reach the paper's per-program site counts.
	Variants int

	Sizes SizeDist

	// Life is the lifetime distribution in the training input. TestLife,
	// when non-nil, replaces it in the test input — this is how models
	// express prediction error (trained-short sites that allocate
	// long-lived objects on other inputs, paper Table 4 "Error Bytes").
	Life     LifeDist
	TestLife *LifeDist

	// ByteFrac is the spec's share of the program's allocation volume
	// (relative weight, need not sum to 1) in the training input.
	// TestByteFrac, when non-zero, replaces it in the test input;
	// TestAbsent removes the spec from the test input entirely (training
	// sites that never map onto the test run). A spec with ByteFrac 0 and
	// TestByteFrac > 0 is new in the test input.
	ByteFrac     float64
	TestByteFrac float64
	TestAbsent   bool

	// RefsPerObject and RefsPerByte model how often the program touches
	// objects from this site, driving Heap Refs % (Table 2) and
	// New Ref % (Table 6).
	RefsPerObject float64
	RefsPerByte   float64

	// PhaseStart and PhaseEnd restrict the site to a window of the run,
	// as fractions of the total allocation volume (0 and 0 mean the whole
	// run). Long-lived program state — fonts, symbol tables — loads in an
	// early phase in real programs, which packs it low in the heap; the
	// first-fit fragmentation the paper measures comes from short-lived
	// churn shattering recurring large-request holes, not from immortal
	// objects landing mid-heap at random times.
	PhaseStart float64
	PhaseEnd   float64
}

// expandedSpec is a SiteSpec after variant expansion, with private RNG.
type expandedSpec struct {
	SiteSpec
	chainID callchain.ChainID
	rng     *xrand.RNG
}

// Model is a synthetic program: metadata matching Tables 1 and 2, plus the
// allocation-site specs.
type Model struct {
	Name        string
	Description string

	SourceLines   int     // Table 1/2 "Source Lines of C" (metadata only)
	TotalObjects  int64   // target object count at Scale 1.0
	TotalBytes    int64   // target byte volume at Scale 1.0
	CallsPerAlloc float64 // function calls per allocation (CCE amortization)
	HeapRefFrac   float64 // fraction of all memory refs that touch the heap

	Sites []SiteSpec
}

// Config controls one generation run.
type Config struct {
	Input Input
	Seed  uint64
	// Scale multiplies the trace's object count; 1.0 reproduces the
	// paper-scale run. Fractions (short-lived %, prediction %) are
	// scale-invariant; absolute live-heap volumes are calibrated at 1.0.
	Scale float64
}

// expand performs variant expansion and chain interning for one input.
func (m *Model) expand(tb *callchain.Table, in Input, master *xrand.RNG) []*expandedSpec {
	var out []*expandedSpec
	for _, s := range m.Sites {
		n := s.Variants
		if n < 1 {
			n = 1
		}
		for v := 0; v < n; v++ {
			sp := s
			if n > 1 {
				sp.ByteFrac = s.ByteFrac / float64(n)
				sp.TestByteFrac = s.TestByteFrac / float64(n)
				chain := make([]string, len(s.Chain))
				for i, el := range s.Chain {
					chain[i] = strings.ReplaceAll(el, "#", fmt.Sprintf("%d", v))
				}
				sp.Chain = chain
			}
			names := sp.Chain
			fs := make([]callchain.FuncID, len(names))
			for i, nm := range names {
				fs[i] = tb.Func(nm)
			}
			es := &expandedSpec{
				SiteSpec: sp,
				chainID:  tb.Intern(fs),
				rng:      master.Split(),
			}
			out = append(out, es)
		}
	}
	_ = in
	return out
}

// byteFrac returns the spec's relative byte weight under the input.
func (s *expandedSpec) byteFrac(in Input) float64 {
	if in == Test {
		if s.TestAbsent {
			return 0
		}
		if s.TestByteFrac > 0 {
			return s.TestByteFrac
		}
	}
	return s.ByteFrac
}

// life returns the lifetime distribution under the input.
func (s *expandedSpec) life(in Input) LifeDist {
	if in == Test && s.TestLife != nil {
		return *s.TestLife
	}
	return s.Life
}

// deathEvent schedules a free at deathTime bytes.
type deathEvent struct {
	deathTime int64
	obj       trace.ObjectID
}

// deathHeap is a min-heap on deathTime. The sift algorithms mirror
// container/heap exactly — same comparison and swap sequences, so
// tie-breaking on equal death times is bit-identical to the boxed
// implementation this replaces — but without the interface{} boxing,
// which cost one heap allocation per scheduled death and made event
// generation O(objects) in allocations.
type deathHeap []deathEvent

// push appends ev and sifts it up (container/heap.Push).
func (h *deathHeap) push(ev deathEvent) {
	*h = append(*h, ev)
	s := *h
	j := len(s) - 1
	for {
		i := (j - 1) / 2 // parent
		if i == j || s[i].deathTime <= s[j].deathTime {
			break
		}
		s[i], s[j] = s[j], s[i]
		j = i
	}
}

// pop removes and returns the earliest death (container/heap.Pop: swap
// root with last, sift the new root down over the shortened heap).
func (h *deathHeap) pop() deathEvent {
	s := *h
	n := len(s) - 1
	s[0], s[n] = s[n], s[0]
	i := 0
	for {
		j1 := 2*i + 1
		if j1 >= n {
			break
		}
		j := j1
		if j2 := j1 + 1; j2 < n && s[j2].deathTime < s[j1].deathTime {
			j = j2
		}
		if s[i].deathTime <= s[j].deathTime {
			break
		}
		s[i], s[j] = s[j], s[i]
		i = j
	}
	ev := s[n]
	*h = s[:n]
	return ev
}

// Generate materializes a full trace for the model under cfg.
func (m *Model) Generate(cfg Config) (*trace.Trace, error) {
	tr := &trace.Trace{
		Program: m.Name,
		Input:   string(cfg.Input),
		Table:   callchain.NewTable(),
	}
	appendEv := func(ev trace.Event) error {
		tr.Events = append(tr.Events, ev)
		return nil
	}
	if err := m.Stream(cfg, tr.Table, appendEv); err != nil {
		return nil, err
	}
	allocs := int64(0)
	var heapRefs int64
	for _, ev := range tr.Events {
		if ev.Kind == trace.KindAlloc {
			allocs++
			heapRefs += ev.Refs
		}
	}
	tr.FunctionCalls = int64(m.CallsPerAlloc * float64(allocs))
	if m.HeapRefFrac > 0 && m.HeapRefFrac < 1 {
		tr.NonHeapRefs = int64(float64(heapRefs) * (1 - m.HeapRefFrac) / m.HeapRefFrac)
	}
	return tr, nil
}

// Stream generates the model's events in order, calling emit for each one,
// interning chains into tb. It allocates only O(live objects) memory, so
// paper-scale runs (millions of objects) need not materialize a trace.
// Stream is a push-shaped driver over SourceInto; the pull-shaped Source
// is the same generator, so both produce bit-identical event sequences.
func (m *Model) Stream(cfg Config, tb *callchain.Table, emit func(trace.Event) error) error {
	src, err := m.SourceInto(cfg, tb)
	if err != nil {
		return err
	}
	for {
		ev, err := src.Next()
		if err == io.EOF {
			return nil
		}
		if err != nil {
			return err
		}
		if err := emit(ev); err != nil {
			return err
		}
	}
}

// TotalSites reports how many distinct allocation sites (chain x size) the
// model defines for the given input — the paper's Table 4 "Total Sites".
func (m *Model) TotalSites(in Input) int {
	n := 0
	for _, s := range m.Sites {
		v := s.Variants
		if v < 1 {
			v = 1
		}
		if in == Test && s.TestAbsent {
			continue
		}
		if in == Train && s.ByteFrac == 0 {
			continue
		}
		n += v * s.Sizes.DistinctSizes()
	}
	return n
}
