package synth

import (
	"math"
	"testing"

	"repro/internal/callchain"
	"repro/internal/trace"
	"repro/internal/xrand"
)

func TestSizeDistSampling(t *testing.T) {
	r := xrand.New(1)
	cases := []struct {
		name string
		d    SizeDist
		ok   func(int64) bool
		mean float64
	}{
		{"fixed", Fixed(40), func(s int64) bool { return s == 40 }, 40},
		{"choice", Choice(8, 16), func(s int64) bool { return s == 8 || s == 16 }, 12},
		{"step", UniformStep(8, 32, 8), func(s int64) bool { return s >= 8 && s <= 32 && s%8 == 0 }, 20},
	}
	for _, c := range cases {
		sum := 0.0
		for i := 0; i < 20000; i++ {
			s := c.d.sample(r, Train)
			if !c.ok(s) {
				t.Fatalf("%s: bad sample %d", c.name, s)
			}
			sum += float64(s)
		}
		got := sum / 20000
		if math.Abs(got-c.mean) > 0.05*c.mean {
			t.Errorf("%s: mean %.2f, want ~%.2f", c.name, got, c.mean)
		}
		if m := c.d.Mean(Train); math.Abs(m-c.mean) > 1e-9 {
			t.Errorf("%s: Mean() = %v, want %v", c.name, m, c.mean)
		}
	}
}

func TestSizeDistTestDelta(t *testing.T) {
	r := xrand.New(2)
	d := Fixed(16)
	d.TestDelta = 2
	if s := d.sample(r, Train); s != 16 {
		t.Fatalf("train sample = %d, want 16", s)
	}
	if s := d.sample(r, Test); s != 18 {
		t.Fatalf("test sample = %d, want 18", s)
	}
}

func TestSizeDistDistinctSizes(t *testing.T) {
	if got := Fixed(8).DistinctSizes(); got != 1 {
		t.Errorf("Fixed: %d", got)
	}
	if got := Choice(8, 16, 24).DistinctSizes(); got != 3 {
		t.Errorf("Choice: %d", got)
	}
	if got := UniformStep(204, 904, 4).DistinctSizes(); got != 176 {
		t.Errorf("UniformStep: %d, want 176", got)
	}
}

func TestLifeDistSampling(t *testing.T) {
	r := xrand.New(3)
	exp := ExpLife(1000, 5000)
	sum := 0.0
	for i := 0; i < 20000; i++ {
		v := exp.sample(r)
		if v < 1 || v > 5000 {
			t.Fatalf("truncated exp out of range: %d", v)
		}
		sum += float64(v)
	}
	// Truncation pulls the mean below 1000.
	if got := sum / 20000; got < 700 || got > 1000 {
		t.Errorf("truncated exp mean %.1f, want in [700,1000]", got)
	}

	if v := Immortal().sample(r); v != immortal {
		t.Fatalf("immortal sample = %d", v)
	}

	mix := MixLife(0.5, LifeDist{Kind: LifeFixed, Value: 7}, LifeDist{Kind: LifeFixed, Value: 9})
	saw7, saw9 := false, false
	for i := 0; i < 100; i++ {
		switch mix.sample(r) {
		case 7:
			saw7 = true
		case 9:
			saw9 = true
		default:
			t.Fatal("mixture sampled neither component")
		}
	}
	if !saw7 || !saw9 {
		t.Fatal("mixture never sampled one component")
	}
}

func TestLifeDistMeanFinite(t *testing.T) {
	m, im := ExpLife(500, 0).MeanFinite()
	if m != 500 || im != 0 {
		t.Errorf("exp: %v/%v", m, im)
	}
	m, im = Immortal().MeanFinite()
	if m != 0 || im != 1 {
		t.Errorf("immortal: %v/%v", m, im)
	}
	_, im = MixLife(0.25, Immortal(), ExpLife(100, 0)).MeanFinite()
	if math.Abs(im-0.25) > 1e-9 {
		t.Errorf("mixture immortal fraction: %v, want 0.25", im)
	}
}

func TestGenerateValidTrace(t *testing.T) {
	for _, m := range All() {
		for _, in := range []Input{Train, Test} {
			tr, err := m.Generate(Config{Input: in, Seed: 7, Scale: 0.002})
			if err != nil {
				t.Fatalf("%s/%s: %v", m.Name, in, err)
			}
			if err := trace.Validate(tr); err != nil {
				t.Fatalf("%s/%s: invalid trace: %v", m.Name, in, err)
			}
			if len(tr.Events) == 0 {
				t.Fatalf("%s/%s: empty trace", m.Name, in)
			}
			if tr.Program != m.Name || tr.Input != string(in) {
				t.Fatalf("%s/%s: metadata %s/%s", m.Name, in, tr.Program, tr.Input)
			}
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	m := CFRAC()
	a, err := m.Generate(Config{Input: Train, Seed: 11, Scale: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	b, err := m.Generate(Config{Input: Train, Seed: 11, Scale: 0.001})
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Events) != len(b.Events) {
		t.Fatalf("event counts differ: %d vs %d", len(a.Events), len(b.Events))
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, a.Events[i], b.Events[i])
		}
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	m := GAWK()
	a, _ := m.Generate(Config{Input: Train, Seed: 1, Scale: 0.001})
	b, _ := m.Generate(Config{Input: Train, Seed: 2, Scale: 0.001})
	if len(a.Events) == len(b.Events) {
		same := true
		for i := range a.Events {
			if a.Events[i] != b.Events[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical traces")
		}
	}
}

func TestGenerateScaleControlsVolume(t *testing.T) {
	m := PERL()
	small, _ := m.Generate(Config{Input: Train, Seed: 5, Scale: 0.001})
	big, _ := m.Generate(Config{Input: Train, Seed: 5, Scale: 0.004})
	ss, _ := trace.ComputeStats(small)
	bs, _ := trace.ComputeStats(big)
	ratio := float64(bs.TotalBytes) / float64(ss.TotalBytes)
	if ratio < 3.5 || ratio > 4.5 {
		t.Fatalf("4x scale gave %.2fx bytes", ratio)
	}
}

func TestGenerateRejectsBadScale(t *testing.T) {
	if _, err := CFRAC().Generate(Config{Input: Train, Seed: 1, Scale: 0}); err == nil {
		t.Fatal("scale 0 accepted")
	}
}

func TestStreamMatchesGenerate(t *testing.T) {
	m := GHOST()
	cfg := Config{Input: Train, Seed: 9, Scale: 0.001}
	tr, err := m.Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	tb := callchain.NewTable()
	var events []trace.Event
	err = m.Stream(cfg, tb, func(ev trace.Event) error {
		events = append(events, ev)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != len(tr.Events) {
		t.Fatalf("stream %d events, generate %d", len(events), len(tr.Events))
	}
	for i := range events {
		if events[i] != tr.Events[i] {
			t.Fatalf("event %d differs", i)
		}
	}
}

func TestVariantExpansionDistinctChains(t *testing.T) {
	m := &Model{
		Name:       "t",
		TotalBytes: 50000,
		Sites: []SiteSpec{{
			Chain:    []string{"main", "f#", "alloc"},
			Variants: 4,
			Sizes:    Fixed(16),
			Life:     ExpLife(100, 0),
			ByteFrac: 1,
		}},
	}
	tr, err := m.Generate(Config{Input: Train, Seed: 1, Scale: 1})
	if err != nil {
		t.Fatal(err)
	}
	chains := map[callchain.ChainID]bool{}
	for _, ev := range tr.Events {
		if ev.Kind == trace.KindAlloc {
			chains[ev.Chain] = true
		}
	}
	if len(chains) != 4 {
		t.Fatalf("got %d distinct chains, want 4", len(chains))
	}
}

func TestTestByteFracZeroRemovesSites(t *testing.T) {
	m := &Model{
		Name:       "t",
		TotalBytes: 100000,
		Sites: []SiteSpec{
			{
				Chain:      []string{"main", "gone", "alloc"},
				Sizes:      Fixed(16),
				Life:       ExpLife(100, 0),
				ByteFrac:   1,
				TestAbsent: true,
			},
			{
				Chain:    []string{"main", "stays", "alloc"},
				Sizes:    Fixed(16),
				Life:     ExpLife(100, 0),
				ByteFrac: 1,
			},
		},
	}
	tr, err := m.Generate(Config{Input: Test, Seed: 1, Scale: 1})
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range tr.Events {
		if ev.Kind != trace.KindAlloc {
			continue
		}
		if s := tr.Table.String(ev.Chain); s == "main>gone>alloc" {
			t.Fatal("TestByteFrac=0 site appeared in test input")
		}
	}
}

func TestMinimumLifetimeIsObjectSize(t *testing.T) {
	// A lifetime distribution pinned to 1 byte cannot yield lifetimes
	// below the object's own size.
	m := &Model{
		Name:       "t",
		TotalBytes: 50000,
		Sites: []SiteSpec{{
			Chain:    []string{"main", "f", "alloc"},
			Sizes:    Fixed(100),
			Life:     LifeDist{Kind: LifeFixed, Value: 1},
			ByteFrac: 1,
		}},
	}
	tr, err := m.Generate(Config{Input: Train, Seed: 3, Scale: 1})
	if err != nil {
		t.Fatal(err)
	}
	objs, err := trace.Annotate(tr)
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range objs {
		if o.Freed && o.Lifetime < o.Size {
			t.Fatalf("object %d: lifetime %d < size %d", o.ID, o.Lifetime, o.Size)
		}
	}
}

func TestImmortalObjectsNeverFreed(t *testing.T) {
	m := &Model{
		Name:       "t",
		TotalBytes: 30000,
		Sites: []SiteSpec{
			{Chain: []string{"main", "im", "alloc"}, Sizes: Fixed(64), Life: Immortal(), ByteFrac: 1},
			{Chain: []string{"main", "sh", "alloc"}, Sizes: Fixed(16), Life: ExpLife(50, 0), ByteFrac: 1},
		},
	}
	tr, err := m.Generate(Config{Input: Train, Seed: 4, Scale: 1})
	if err != nil {
		t.Fatal(err)
	}
	objs, err := trace.Annotate(tr)
	if err != nil {
		t.Fatal(err)
	}
	imChain := "main>im>alloc"
	for _, o := range objs {
		if tr.Table.String(o.Chain) == imChain && o.Freed {
			t.Fatal("immortal object was freed")
		}
	}
}

func TestModelMetadata(t *testing.T) {
	names := map[string]bool{}
	for _, m := range All() {
		if m.Name == "" || m.Description == "" {
			t.Errorf("model missing metadata: %+v", m.Name)
		}
		if names[m.Name] {
			t.Errorf("duplicate model name %s", m.Name)
		}
		names[m.Name] = true
		if m.TotalBytes <= 0 || m.TotalObjects <= 0 {
			t.Errorf("%s: non-positive totals", m.Name)
		}
		if m.CallsPerAlloc <= 0 {
			t.Errorf("%s: missing CallsPerAlloc", m.Name)
		}
		if m.HeapRefFrac <= 0 || m.HeapRefFrac >= 1 {
			t.Errorf("%s: HeapRefFrac %v out of (0,1)", m.Name, m.HeapRefFrac)
		}
	}
	if ByName("cfrac") == nil || ByName("nope") != nil {
		t.Error("ByName lookup broken")
	}
}

func TestTotalSitesNearPaper(t *testing.T) {
	// Table 4 "Total Sites" column. The models aim within ~15%.
	targets := map[string]int{
		"cfrac":    134,
		"espresso": 2854,
		"gawk":     171,
		"ghost":    634,
		"perl":     305,
	}
	for _, m := range All() {
		want := targets[m.Name]
		got := m.TotalSites(Train)
		lo, hi := int(float64(want)*0.85), int(float64(want)*1.15)
		if got < lo || got > hi {
			t.Errorf("%s: TotalSites = %d, want within [%d, %d] (paper %d)",
				m.Name, got, lo, hi, want)
		}
	}
}

func BenchmarkGenerateCFRAC(b *testing.B) {
	m := CFRAC()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := m.Generate(Config{Input: Train, Seed: 1, Scale: 0.01}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestSizeDistWeightedChoice(t *testing.T) {
	r := xrand.New(61)
	d := SizeDist{Kind: SizeChoice, Choices: []int64{8, 16, 64}, Weights: []float64{1, 2, 1}}
	counts := map[int64]int{}
	const n = 40000
	for i := 0; i < n; i++ {
		counts[d.sample(r, Train)]++
	}
	if counts[16] < counts[8] || counts[16] < counts[64] {
		t.Fatalf("weighted choice ignored weights: %v", counts)
	}
	// Mean = (8 + 2*16 + 64)/4 = 26.
	if m := d.Mean(Train); math.Abs(m-26) > 1e-9 {
		t.Fatalf("weighted mean = %v, want 26", m)
	}
	if d.DistinctSizes() != 3 {
		t.Fatalf("DistinctSizes = %d", d.DistinctSizes())
	}
}

func TestLifeDistParetoMeanFinite(t *testing.T) {
	m, im := ParetoLife(2.0, 100, 0).MeanFinite()
	if im != 0 || math.Abs(m-200) > 1e-9 {
		t.Fatalf("Pareto(2,100) mean = %v/%v, want 200/0", m, im)
	}
	// Alpha <= 1 with a cap uses the truncated approximation.
	m, _ = ParetoLife(1.0, 100, 10000).MeanFinite()
	if m <= 0 || math.IsInf(m, 0) {
		t.Fatalf("truncated Pareto mean = %v", m)
	}
}
