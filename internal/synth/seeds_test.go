package synth_test

import (
	"math"
	"testing"

	"repro/internal/profile"
	"repro/internal/synth"
	"repro/internal/trace"
)

// TestSeedRobustness guards against the models being calibrated to one
// lucky RNG stream: the headline Table 4 percentages must agree across
// unrelated seeds to within a couple of points.
func TestSeedRobustness(t *testing.T) {
	if testing.Short() {
		t.Skip("seed sweep skipped in -short mode")
	}
	for _, m := range synth.All() {
		m := m
		t.Run(m.Name, func(t *testing.T) {
			var selfs, trues []float64
			for _, seed := range []uint64{11, 222222, 9999999999} {
				train, err := m.Generate(synth.Config{Input: synth.Train, Seed: seed, Scale: 0.05})
				if err != nil {
					t.Fatal(err)
				}
				test, err := m.Generate(synth.Config{Input: synth.Test, Seed: seed + 1, Scale: 0.05})
				if err != nil {
					t.Fatal(err)
				}
				trainObjs, err := trace.Annotate(train)
				if err != nil {
					t.Fatal(err)
				}
				testObjs, err := trace.Annotate(test)
				if err != nil {
					t.Fatal(err)
				}
				pred := profile.TrainObjects(train.Table, trainObjs, profile.DefaultConfig()).Predictor()
				selfs = append(selfs,
					profile.EvaluateObjects(train.Table, trainObjs, pred).PredictedShortPct())
				trues = append(trues,
					profile.EvaluateObjects(test.Table, testObjs, pred).PredictedShortPct())
			}
			spread := func(xs []float64) float64 {
				lo, hi := xs[0], xs[0]
				for _, x := range xs {
					lo = math.Min(lo, x)
					hi = math.Max(hi, x)
				}
				return hi - lo
			}
			if s := spread(selfs); s > 3 {
				t.Errorf("self prediction varies %.1fpp across seeds: %v", s, selfs)
			}
			if s := spread(trues); s > 4 {
				t.Errorf("true prediction varies %.1fpp across seeds: %v", s, trues)
			}
		})
	}
}
