package synth_test

// Calibration tests: generate each program model and check the statistics
// the paper's experiments depend on against the published values, with
// tolerances. Run with -v to see the full paper-vs-measured report used to
// tune the models; EXPERIMENTS.md records the full-scale numbers.

import (
	"math"
	"testing"

	"repro/internal/profile"
	"repro/internal/synth"
	"repro/internal/trace"
)

// calTarget bundles the per-program paper values the models calibrate to.
type calTarget struct {
	actualShort float64 // Table 4 Actual %
	selfPred    float64 // Table 4 Self Predicted %
	truePred    float64 // Table 4 True Predicted %
	trueErr     float64 // Table 4 True Error %
	sizeOnly    float64 // Table 5 Predicted %
	lenPred     [7]float64
	quartiles   [5]float64 // Table 3 (byte-weighted lifetime quantiles)
}

var calTargets = map[string]calTarget{
	"cfrac": {
		actualShort: 100, selfPred: 79.0, truePred: 47.3, trueErr: 3.65,
		sizeOnly:  0,
		lenPred:   [7]float64{48, 76, 82, 82, 82, 82, 82},
		quartiles: [5]float64{10, 32, 48, 849, 64994593},
	},
	"espresso": {
		actualShort: 91, selfPred: 41.8, truePred: 18.1, trueErr: 0.06,
		sizeOnly:  19,
		lenPred:   [7]float64{41, 41, 41, 42, 42, 43, 44},
		quartiles: [5]float64{4, 196, 2379, 25530, 104881499},
	},
	"gawk": {
		actualShort: 98, selfPred: 99.3, truePred: 99.3, trueErr: 0,
		sizeOnly:  5,
		lenPred:   [7]float64{72, 78, 99, 99, 99, 99, 99},
		quartiles: [5]float64{2, 29, 257, 1192, 167322377},
	},
	"ghost": {
		actualShort: 97, selfPred: 80.9, truePred: 71.8, trueErr: 0,
		sizeOnly:  36,
		lenPred:   [7]float64{40, 40, 47, 75, 80, 80, 81},
		quartiles: [5]float64{16, 4330, 8052, 30000, 89669104},
	},
	"perl": {
		actualShort: 99, selfPred: 91.4, truePred: 20.4, trueErr: 1.11,
		sizeOnly:  29,
		lenPred:   [7]float64{31, 63, 63, 91, 94, 94, 95},
		quartiles: [5]float64{1, 64, 887, 1306, 33528692},
	},
}

const calScale = 0.05

func genPair(t *testing.T, m *synth.Model) (train, test *trace.Trace) {
	t.Helper()
	var err error
	train, err = m.Generate(synth.Config{Input: synth.Train, Seed: 42, Scale: calScale})
	if err != nil {
		t.Fatal(err)
	}
	test, err = m.Generate(synth.Config{Input: synth.Test, Seed: 1042, Scale: calScale})
	if err != nil {
		t.Fatal(err)
	}
	return train, test
}

// within checks |got-want| <= tol (absolute percentage points).
func within(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	t.Logf("%-28s got %7.2f  paper %7.2f", name, got, want)
	if math.Abs(got-want) > tol {
		t.Errorf("%s: got %.2f, want %.2f +/- %.1f", name, got, want, tol)
	}
}

func TestCalibrationPrediction(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration is slow; skipped in -short mode")
	}
	for _, m := range synth.All() {
		m := m
		t.Run(m.Name, func(t *testing.T) {
			tgt := calTargets[m.Name]
			train, test := genPair(t, m)

			trainObjs, err := trace.Annotate(train)
			if err != nil {
				t.Fatal(err)
			}
			testObjs, err := trace.Annotate(test)
			if err != nil {
				t.Fatal(err)
			}

			cfg := profile.DefaultConfig()
			db := profile.TrainObjects(train.Table, trainObjs, cfg)
			pred := db.Predictor()

			self := profile.EvaluateObjects(train.Table, trainObjs, pred)
			within(t, "actual short-lived %", self.ActualShortPct(), tgt.actualShort, 6)
			within(t, "self predicted %", self.PredictedShortPct(), tgt.selfPred, 7)
			t.Logf("%-28s got %7d  paper total sites, self sites used in text",
				"distinct train sites", self.TotalSites)
			t.Logf("%-28s got %7d", "self sites used", self.SitesUsed)

			tru := profile.EvaluateObjects(test.Table, testObjs, pred)
			within(t, "true predicted %", tru.PredictedShortPct(), tgt.truePred, 7)
			within(t, "true error %", tru.ErrorPct(), tgt.trueErr, 1.5)
			t.Logf("%-28s got %7d", "true sites used", tru.SitesUsed)

			// Size-only predictor (Table 5).
			soCfg := cfg
			soCfg.SizeOnly = true
			soDB := profile.TrainObjects(train.Table, trainObjs, soCfg)
			soEval := profile.EvaluateObjects(train.Table, trainObjs, soDB.Predictor())
			within(t, "size-only predicted %", soEval.PredictedShortPct(), tgt.sizeOnly, 7)
			t.Logf("%-28s got %7d", "size-only classes used", soEval.SitesUsed)

			// Chain-length ladder (Table 6).
			for n := 1; n <= 7; n++ {
				lcfg := cfg
				lcfg.ChainLength = n
				ldb := profile.TrainObjects(train.Table, trainObjs, lcfg)
				lev := profile.EvaluateObjects(train.Table, trainObjs, ldb.Predictor())
				within(t, "len-"+string(rune('0'+n))+" predicted %",
					lev.PredictedShortPct(), tgt.lenPred[n-1], 8)
				t.Logf("%-28s refs %6.2f", "  new-ref %", lev.NewRefPct())
			}
		})
	}
}

func TestCalibrationStats(t *testing.T) {
	if testing.Short() {
		t.Skip("calibration is slow; skipped in -short mode")
	}
	// Totals scale with calScale; live volumes partially do (immortal
	// accumulation scales, transient level does not), so live targets
	// are only logged here and asserted at full scale in EXPERIMENTS.
	for _, m := range synth.All() {
		m := m
		t.Run(m.Name, func(t *testing.T) {
			tgt := calTargets[m.Name]
			train, err := m.Generate(synth.Config{Input: synth.Train, Seed: 42, Scale: calScale})
			if err != nil {
				t.Fatal(err)
			}
			st, err := trace.ComputeStats(train)
			if err != nil {
				t.Fatal(err)
			}
			wantBytes := float64(m.TotalBytes) * calScale
			if math.Abs(float64(st.TotalBytes)-wantBytes) > 0.02*wantBytes {
				t.Errorf("total bytes %d, want ~%.0f", st.TotalBytes, wantBytes)
			}
			wantObjs := float64(m.TotalObjects) * calScale
			ratio := float64(st.TotalObjects) / wantObjs
			t.Logf("objects: got %d, scaled paper %.0f (ratio %.2f)", st.TotalObjects, wantObjs, ratio)
			if ratio < 0.5 || ratio > 2.0 {
				t.Errorf("object count off by more than 2x: ratio %.2f", ratio)
			}
			t.Logf("max live: %d bytes, %d objects", st.MaxBytes, st.MaxObjects)
			if math.Abs(st.HeapRefFrac-m.HeapRefFrac) > 0.02 {
				t.Errorf("heap-ref fraction %.3f, want %.3f", st.HeapRefFrac, m.HeapRefFrac)
			}

			objs, err := trace.Annotate(train)
			if err != nil {
				t.Fatal(err)
			}
			qs := profile.LifetimeQuantiles(objs, []float64{0, 0.25, 0.5, 0.75, 1}, true)
			t.Logf("lifetime quartiles: %v (paper %v)", qs, tgt.quartiles)
			// Shape assertions: quartiles within ~4x of the paper values
			// (these are distribution approximations, not exact fits).
			for i, p := range []string{"25%", "50%", "75%"} {
				want := tgt.quartiles[i+1]
				got := qs[i+1]
				if got < want/4 || got > want*4 {
					t.Errorf("%s quantile: got %.0f, want within 4x of %.0f", p, got, want)
				}
			}
		})
	}
}
