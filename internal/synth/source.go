package synth

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/callchain"
	"repro/internal/trace"
	"repro/internal/xrand"
)

// segment is one phase window of a generation run: the byte position
// where it ends and a weighted sampler over the sites active in it.
type segment struct {
	end     int64
	sampler *xrand.Weighted
	active  []*expandedSpec
}

// Source generates a model's events on demand, one per Next call — the
// pull-shaped twin of Stream, and the trace.Source the whole pipeline
// consumes. Generation state is O(live objects): the pending-death heap
// plus the expanded site specs, never the event list.
//
// The event sequence and every RNG draw are identical to Stream and
// Generate for the same Config: the same seeds feed the same samplers in
// the same order, so a Source can replace a materialized trace anywhere
// without perturbing a single byte of downstream results.
type Source struct {
	m  *Model
	in Input
	tb *callchain.Table

	segments []segment
	budget   int64
	segIdx   int

	bytes    int64
	nextID   trace.ObjectID
	pending  deathHeap
	draining bool
	done     bool

	allocs   int64
	heapRefs int64
	meta     trace.Meta

	count      int
	countKnown bool
}

// Source returns a streaming generator for the model under cfg, with a
// fresh chain table. Configuration errors (bad scale, bad phase windows,
// no active sites) surface here, before any event is produced.
func (m *Model) Source(cfg Config) (*Source, error) {
	return m.SourceInto(cfg, callchain.NewTable())
}

// SourceInto is Source with a caller-supplied chain table. All site
// chains are interned during construction, so the table is complete
// before the first event — the Source contract consumers rely on.
func (m *Model) SourceInto(cfg Config, tb *callchain.Table) (*Source, error) {
	if cfg.Scale <= 0 {
		return nil, fmt.Errorf("synth: non-positive scale %v", cfg.Scale)
	}
	in := cfg.Input
	if in == "" {
		in = Train
	}
	master := xrand.New(cfg.Seed ^ 0xa5a5a5a5a5a5a5a5)
	specs := m.expand(tb, in, master)

	// Phase segmentation: split [0,1) at every site's phase boundary and
	// build one weighted sampler per segment over the sites active in it.
	// Within a segment, a site's object weight is its byte share divided
	// by its phase duration (so its total volume is independent of the
	// window width) and by its mean object size.
	boundsSet := map[float64]bool{0: true, 1: true}
	phase := func(s *expandedSpec) (lo, hi float64) {
		lo, hi = s.PhaseStart, s.PhaseEnd
		if hi <= lo {
			lo, hi = 0, 1
		}
		return lo, hi
	}
	for _, s := range specs {
		lo, hi := phase(s)
		if lo < 0 || hi > 1 {
			return nil, fmt.Errorf("synth: phase window [%v,%v) out of [0,1]", lo, hi)
		}
		boundsSet[lo] = true
		boundsSet[hi] = true
	}
	bounds := make([]float64, 0, len(boundsSet))
	for b := range boundsSet {
		bounds = append(bounds, b)
	}
	sort.Float64s(bounds)

	budget := int64(float64(m.TotalBytes) * cfg.Scale)
	var segments []segment
	anyActive := false
	for si := 0; si+1 < len(bounds); si++ {
		lo, hi := bounds[si], bounds[si+1]
		var active []*expandedSpec
		var weights []float64
		for _, s := range specs {
			plo, phi := phase(s)
			if plo > lo+1e-12 || phi < hi-1e-12 {
				continue
			}
			f := s.byteFrac(in)
			if f < 0 {
				return nil, fmt.Errorf("synth: negative byte fraction for %v", s.Chain)
			}
			mean := s.Sizes.Mean(in)
			if mean <= 0 {
				return nil, fmt.Errorf("synth: non-positive mean size for %v", s.Chain)
			}
			w := f / (phi - plo) / mean
			if w > 0 {
				active = append(active, s)
				weights = append(weights, w)
			}
		}
		seg := segment{end: int64(hi * float64(budget))}
		if len(active) > 0 {
			seg.sampler = xrand.NewWeighted(master, weights)
			seg.active = active
			anyActive = true
		}
		segments = append(segments, seg)
	}
	if !anyActive {
		return nil, fmt.Errorf("synth: model %s has no active sites for input %s", m.Name, in)
	}
	return &Source{
		m:        m,
		in:       in,
		tb:       tb,
		segments: segments,
		budget:   budget,
		meta:     trace.Meta{Program: m.Name, Input: string(cfg.Input)},
	}, nil
}

// Meta returns the trace metadata. FunctionCalls and NonHeapRefs derive
// from the realized allocation volume, so they are trailer data: zero
// until Next has returned io.EOF.
func (s *Source) Meta() trace.Meta { return s.meta }

// Table returns the chain table, fully interned at construction.
func (s *Source) Table() *callchain.Table { return s.tb }

// EventCount implements trace.Counted once a count has been supplied via
// SetCount (generation length is not known in closed form; Model.
// CountEvents derives it with a deterministic dry run).
func (s *Source) EventCount() (int, bool) {
	if !s.countKnown {
		return 0, false
	}
	return s.count, true
}

// SetCount declares the exact number of events this source will yield,
// enabling consumers that need trace-relative positions (the obs phase
// marks). The caller vouches for n — normally via Model.CountEvents with
// the same Config, which is exact by determinism.
func (s *Source) SetCount(n int) { s.count, s.countKnown = n, true }

// Next returns the next generated event, io.EOF at the end of the run.
func (s *Source) Next() (trace.Event, error) {
	if s.done {
		return trace.Event{}, io.EOF
	}
	if !s.draining {
		if s.bytes >= s.budget {
			s.draining = true
		}
	}
	if !s.draining {
		for s.segIdx+1 < len(s.segments) &&
			(s.bytes >= s.segments[s.segIdx].end || s.segments[s.segIdx].sampler == nil) {
			s.segIdx++
		}
		seg := &s.segments[s.segIdx]
		if seg.sampler == nil {
			// No sites are active in the final segment; stop early.
			s.draining = true
		} else {
			// Emit any deaths that have come due before the next birth.
			if len(s.pending) > 0 && s.pending[0].deathTime <= s.bytes {
				ev := s.pending.pop()
				return trace.Event{Kind: trace.KindFree, Obj: ev.obj}, nil
			}
			sp := seg.active[seg.sampler.Next()]
			size := sp.Sizes.sample(sp.rng, s.in)
			refs := int64(sp.RefsPerObject + sp.RefsPerByte*float64(size))
			obj := s.nextID
			s.nextID++
			s.bytes += size
			life := sp.life(s.in).sample(sp.rng)
			if life != immortal {
				// Lifetime counts bytes allocated after (and including)
				// this object; the minimum observable lifetime is the
				// object's own size.
				if life < size {
					life = size
				}
				s.pending.push(deathEvent{deathTime: s.bytes - size + life, obj: obj})
			}
			s.allocs++
			s.heapRefs += refs
			return trace.Event{
				Kind:  trace.KindAlloc,
				Obj:   obj,
				Size:  size,
				Chain: sp.chainID,
				Refs:  refs,
			}, nil
		}
	}
	// Drain deaths that fall within the generated period. Anything later
	// stays unfreed, i.e. alive at program exit.
	if len(s.pending) > 0 && s.pending[0].deathTime <= s.bytes {
		ev := s.pending.pop()
		return trace.Event{Kind: trace.KindFree, Obj: ev.obj}, nil
	}
	s.done = true
	s.meta.FunctionCalls = int64(s.m.CallsPerAlloc * float64(s.allocs))
	if s.m.HeapRefFrac > 0 && s.m.HeapRefFrac < 1 {
		s.meta.NonHeapRefs = int64(float64(s.heapRefs) * (1 - s.m.HeapRefFrac) / s.m.HeapRefFrac)
	}
	return trace.Event{}, io.EOF
}

// NextBlock implements trace.BlockSource natively: the generator fills
// the caller's block directly, one generation step per slot, so block
// consumers replay synth workloads without a per-event interface call.
// Every RNG draw happens in the same order as scalar Next — NextBlock is
// a loop over the same single generation step — so the event sequence is
// byte-identical either way. io.EOF after a partially filled block is
// held back for the following call, per the BlockSource contract.
func (s *Source) NextBlock(b *trace.EventBlock) error {
	b.Reset()
	if s.done {
		return io.EOF
	}
	for !b.Full() {
		ev, err := s.Next()
		if err != nil {
			if b.N == 0 {
				return err
			}
			// s.done is already set, so the next NextBlock call
			// returns the io.EOF (or error) held back here.
			return nil
		}
		b.Append(ev)
	}
	return nil
}

// CountEvents returns the exact number of events the model generates
// under cfg, by a counting dry run into a scratch table. Generation is
// deterministic in Config, so the count is exact for any Source built
// with the same cfg; the dry run costs one generation pass and holds
// only O(live objects) memory.
func (m *Model) CountEvents(cfg Config) (int, error) {
	src, err := m.Source(cfg)
	if err != nil {
		return 0, err
	}
	n := 0
	for {
		if _, err := src.Next(); err == io.EOF {
			return n, nil
		} else if err != nil {
			return 0, err
		}
		n++
	}
}
