package table

import (
	"errors"
	"io"
	"strings"
	"testing"
)

func TestRender(t *testing.T) {
	tb := New("Table X", "Program", "Bytes", "Pct")
	tb.Row("cfrac", 65000000, 79.0)
	tb.Row("gawk", 167000000, 99.3)
	out := tb.String()
	if !strings.Contains(out, "Table X") {
		t.Error("title missing")
	}
	if !strings.Contains(out, "cfrac") || !strings.Contains(out, "99.3") {
		t.Errorf("cells missing:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	// Columns align: every data line has the same width as the header.
	if len(lines[3]) != len(lines[4]) {
		t.Errorf("row widths differ:\n%s", out)
	}
}

func TestIsNumeric(t *testing.T) {
	for _, s := range []string{"123", "-4.5", "99.3%", "208K", "", "-",
		"+7", "1.5e3", "3.2M", "1.2"} {
		if !isNumeric(s) {
			t.Errorf("isNumeric(%q) = false", s)
		}
	}
	for _, s := range []string{"cfrac", "1a", "x%",
		"1.2.3",  // second dot
		"1-2",    // sign not at position 0
		"4+5",    // ditto for plus
		"next-fit (A4')", // hyphenated label must stay left-aligned
	} {
		if isNumeric(s) {
			t.Errorf("isNumeric(%q) = true", s)
		}
	}
}

// failAfterWriter accepts n writes, then fails every subsequent one.
type failAfterWriter struct {
	n      int
	writes int
	bytes  int
}

var errSink = errors.New("sink failed")

func (w *failAfterWriter) Write(p []byte) (int, error) {
	w.writes++
	if w.writes > w.n {
		return 0, errSink
	}
	w.bytes += len(p)
	return len(p), nil
}

// TestWriteToPropagatesRowErrors drives a failing writer through every
// line of a table — title, header, rule, each row, trailing blank — and
// checks the error surfaces from exactly the line that hit it, with the
// byte count reflecting only what was actually written.
func TestWriteToPropagatesRowErrors(t *testing.T) {
	build := func() *Table {
		tb := New("T", "A", "B")
		tb.RowStrings("r1", "1")
		tb.RowStrings("r2", "2")
		tb.RowStrings("r3", "3")
		return tb
	}
	full := build().String()
	totalLines := strings.Count(full, "\n") // title + header + rule + 3 rows + blank

	for fail := 1; fail <= totalLines; fail++ {
		w := &failAfterWriter{n: fail - 1}
		n, err := build().WriteTo(w)
		if !errors.Is(err, errSink) {
			t.Fatalf("fail at line %d: err = %v, want errSink", fail, err)
		}
		if n != int64(w.bytes) {
			t.Errorf("fail at line %d: WriteTo reported %d bytes, writer saw %d", fail, n, w.bytes)
		}
		if w.writes != fail {
			t.Errorf("fail at line %d: WriteTo kept writing after the error (%d writes)", fail, w.writes)
		}
	}

	// And a clean writer reports the full byte count.
	w := &failAfterWriter{n: totalLines}
	n, err := build().WriteTo(w)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(len(full)) || w.bytes != len(full) {
		t.Errorf("clean write: n=%d writer=%d want %d", n, w.bytes, len(full))
	}
}

// shortWriter reports fewer bytes than given without an error — the
// misbehaving-writer case io.ErrShortWrite exists for.
type shortWriter struct{ writes int }

func (w *shortWriter) Write(p []byte) (int, error) {
	w.writes++
	if w.writes == 2 { // drop part of the header line
		return len(p) / 2, nil
	}
	return len(p), nil
}

func TestWriteToDetectsShortWrite(t *testing.T) {
	tb := New("T", "A")
	tb.RowStrings("x")
	if _, err := tb.WriteTo(&shortWriter{}); !errors.Is(err, io.ErrShortWrite) {
		t.Fatalf("err = %v, want io.ErrShortWrite", err)
	}
}

func TestStringMatchesWriteTo(t *testing.T) {
	// String() renders via WriteTo, so the streaming rewrite must not
	// change the rendered bytes.
	tb := New("T", "A")
	tb.RowStrings("x")
	var buf strings.Builder
	if _, err := tb.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	if buf.String() != tb.String() {
		t.Fatal("String() and WriteTo disagree")
	}
}

func TestRowStrings(t *testing.T) {
	tb := New("", "A", "B")
	tb.RowStrings("x", "y")
	if !strings.Contains(tb.String(), "x") {
		t.Fatal("RowStrings cell missing")
	}
}
