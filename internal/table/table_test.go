package table

import (
	"strings"
	"testing"
)

func TestRender(t *testing.T) {
	tb := New("Table X", "Program", "Bytes", "Pct")
	tb.Row("cfrac", 65000000, 79.0)
	tb.Row("gawk", 167000000, 99.3)
	out := tb.String()
	if !strings.Contains(out, "Table X") {
		t.Error("title missing")
	}
	if !strings.Contains(out, "cfrac") || !strings.Contains(out, "99.3") {
		t.Errorf("cells missing:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, rule, 2 rows
		t.Fatalf("got %d lines:\n%s", len(lines), out)
	}
	// Columns align: every data line has the same width as the header.
	if len(lines[3]) != len(lines[4]) {
		t.Errorf("row widths differ:\n%s", out)
	}
}

func TestIsNumeric(t *testing.T) {
	for _, s := range []string{"123", "-4.5", "99.3%", "208K", "", "-"} {
		if !isNumeric(s) {
			t.Errorf("isNumeric(%q) = false", s)
		}
	}
	for _, s := range []string{"cfrac", "1a", "x%"} {
		if isNumeric(s) {
			t.Errorf("isNumeric(%q) = true", s)
		}
	}
}

func TestRowStrings(t *testing.T) {
	tb := New("", "A", "B")
	tb.RowStrings("x", "y")
	if !strings.Contains(tb.String(), "x") {
		t.Fatal("RowStrings cell missing")
	}
}
