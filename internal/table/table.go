// Package table renders small plain-text tables for the experiment
// harness: fixed-width columns, right-aligned numbers, a header rule.
package table

import (
	"fmt"
	"io"
	"strings"
)

// Table accumulates rows of string cells.
type Table struct {
	title   string
	headers []string
	rows    [][]string
}

// New returns a table with the given title and column headers.
func New(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// Row appends a row; cells are formatted with %v.
func (t *Table) Row(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.1f", v)
		case float32:
			row[i] = fmt.Sprintf("%.1f", v)
		default:
			row[i] = fmt.Sprintf("%v", c)
		}
	}
	t.rows = append(t.rows, row)
}

// RowStrings appends a row of preformatted cells.
func (t *Table) RowStrings(cells ...string) {
	t.rows = append(t.rows, append([]string(nil), cells...))
}

// isNumeric reports whether a cell should be right-aligned.
func isNumeric(s string) bool {
	if s == "" || s == "-" {
		return true
	}
	dot := false
	for i, r := range s {
		switch {
		case r >= '0' && r <= '9':
		case r == '.' && !dot:
			dot = true
		case (r == '-' || r == '+') && i == 0:
		case r == '%' || r == 'K' || r == 'M' || r == 'e':
		default:
			return false
		}
	}
	return true
}

// WriteTo renders the table to w line by line, so a writer error from any
// row — a closed pipe, a full disk — is reported from the row that hit it
// (with the byte count up to that point) instead of being swallowed by a
// buffered render.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var written int64
	emit := func(line string) error {
		n, err := io.WriteString(w, line)
		written += int64(n)
		if err == nil && n < len(line) {
			err = io.ErrShortWrite
		}
		return err
	}
	var b strings.Builder
	renderRow := func(cells []string) string {
		b.Reset()
		for i, w := range widths {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			if isNumeric(c) && i > 0 {
				fmt.Fprintf(&b, "%*s", w, c)
			} else {
				fmt.Fprintf(&b, "%-*s", w, c)
			}
		}
		b.WriteByte('\n')
		return b.String()
	}
	if t.title != "" {
		if err := emit(t.title + "\n"); err != nil {
			return written, err
		}
	}
	if err := emit(renderRow(t.headers)); err != nil {
		return written, err
	}
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	if err := emit(strings.Repeat("-", total-2) + "\n"); err != nil {
		return written, err
	}
	for _, row := range t.rows {
		if err := emit(renderRow(row)); err != nil {
			return written, err
		}
	}
	if err := emit("\n"); err != nil {
		return written, err
	}
	return written, nil
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	if _, err := t.WriteTo(&b); err != nil {
		return err.Error()
	}
	return b.String()
}
