package obs

import (
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// WriteJSON writes a snapshot as indented JSON (the `lpsim -obs` format),
// stamping the current schema version when the snapshot carries none.
func WriteJSON(w io.Writer, s *Snapshot) error {
	if s == nil {
		return fmt.Errorf("obs: nil snapshot")
	}
	if s.Schema == 0 {
		s.Schema = SnapshotSchema
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// ReadJSON reads a snapshot written by WriteJSON. Snapshots without a
// schema version, or with one this build does not understand, are
// rejected outright rather than decoded into zero values.
func ReadJSON(r io.Reader) (*Snapshot, error) {
	var s Snapshot
	dec := json.NewDecoder(r)
	if err := dec.Decode(&s); err != nil {
		return nil, fmt.Errorf("obs: decoding snapshot: %w", err)
	}
	if s.Schema == 0 {
		return nil, fmt.Errorf("obs: snapshot has no schema version (written by an older tool?); re-export it with this tool suite")
	}
	if s.Schema > SnapshotSchema {
		return nil, fmt.Errorf("obs: snapshot schema version %d is newer than this tool's %d; upgrade the tool suite", s.Schema, SnapshotSchema)
	}
	return &s, nil
}

var timelineHeader = []string{
	"clock", "live_bytes", "live_objects", "heap_bytes", "arena_occupancy",
	"pred_decided_objects", "pred_correct_objects",
	"pred_decided_bytes", "pred_correct_bytes",
	"heap_live_payload", "heap_header_bytes", "heap_internal_frag",
	"heap_external_frag", "heap_hole_bytes", "heap_free_spans",
	"heap_largest_free_span",
}

// WriteTimelineCSV writes the snapshot's timeline as CSV with a header
// row, one sample per line. An empty timeline yields a header-only file,
// not an error, so downstream plotting scripts see a well-formed (if
// empty) table.
func WriteTimelineCSV(w io.Writer, s *Snapshot) error {
	if s == nil {
		return fmt.Errorf("obs: nil snapshot")
	}
	cw := csv.NewWriter(w)
	if err := cw.Write(timelineHeader); err != nil {
		return err
	}
	for _, sm := range s.Timeline {
		rec := []string{
			strconv.FormatInt(sm.Clock, 10),
			strconv.FormatInt(sm.LiveBytes, 10),
			strconv.FormatInt(sm.LiveObjects, 10),
			strconv.FormatInt(sm.HeapBytes, 10),
			strconv.FormatFloat(sm.ArenaOccupancy, 'g', -1, 64),
			strconv.FormatInt(sm.PredDecidedObjects, 10),
			strconv.FormatInt(sm.PredCorrectObjects, 10),
			strconv.FormatInt(sm.PredDecidedBytes, 10),
			strconv.FormatInt(sm.PredCorrectBytes, 10),
			strconv.FormatInt(sm.HeapLivePayload, 10),
			strconv.FormatInt(sm.HeapHeaderBytes, 10),
			strconv.FormatInt(sm.HeapInternalFrag, 10),
			strconv.FormatInt(sm.HeapExternalFrag, 10),
			strconv.FormatInt(sm.HeapHoleBytes, 10),
			strconv.FormatInt(sm.HeapFreeSpans, 10),
			strconv.FormatInt(sm.HeapLargestFreeSpan, 10),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadTimelineCSV reads samples written by WriteTimelineCSV.
func ReadTimelineCSV(r io.Reader) ([]Sample, error) {
	cr := csv.NewReader(r)
	recs, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("obs: reading timeline CSV: %w", err)
	}
	if len(recs) == 0 {
		return nil, fmt.Errorf("obs: timeline CSV missing header")
	}
	if len(recs[0]) != len(timelineHeader) || recs[0][0] != timelineHeader[0] {
		return nil, fmt.Errorf("obs: unexpected timeline CSV header %v", recs[0])
	}
	out := make([]Sample, 0, len(recs)-1)
	for i, rec := range recs[1:] {
		var sm Sample
		var err error
		ints := []*int64{
			&sm.Clock, &sm.LiveBytes, &sm.LiveObjects, &sm.HeapBytes, nil,
			&sm.PredDecidedObjects, &sm.PredCorrectObjects,
			&sm.PredDecidedBytes, &sm.PredCorrectBytes,
			&sm.HeapLivePayload, &sm.HeapHeaderBytes, &sm.HeapInternalFrag,
			&sm.HeapExternalFrag, &sm.HeapHoleBytes, &sm.HeapFreeSpans,
			&sm.HeapLargestFreeSpan,
		}
		for col, dst := range ints {
			if dst == nil {
				sm.ArenaOccupancy, err = strconv.ParseFloat(rec[col], 64)
			} else {
				*dst, err = strconv.ParseInt(rec[col], 10, 64)
			}
			if err != nil {
				return nil, fmt.Errorf("obs: timeline CSV row %d: %w", i+2, err)
			}
		}
		out = append(out, sm)
	}
	return out, nil
}

// WriteHeatmapCSV writes the snapshot's address-space occupancy heatmap
// as CSV: a header row (clock, extent, then one column per bin), one row
// per sampled timeline point, each bin cell holding the live-block bytes
// that fall in it. A nil or empty heatmap yields a header-only file —
// matching the timeline-CSV convention — so "no rows" and "malformed
// file" stay distinguishable downstream.
func WriteHeatmapCSV(w io.Writer, s *Snapshot) error {
	if s == nil {
		return fmt.Errorf("obs: nil snapshot")
	}
	bins := 0
	if s.Heatmap != nil {
		bins = s.Heatmap.Bins
	}
	header := make([]string, 0, 2+bins)
	header = append(header, "clock", "extent")
	for i := 0; i < bins; i++ {
		header = append(header, "bin"+strconv.Itoa(i))
	}
	cw := csv.NewWriter(w)
	if err := cw.Write(header); err != nil {
		return err
	}
	if s.Heatmap != nil {
		for _, row := range s.Heatmap.Rows {
			rec := make([]string, 0, 2+bins)
			rec = append(rec,
				strconv.FormatInt(row.Clock, 10),
				strconv.FormatInt(row.Extent, 10))
			for i := 0; i < bins; i++ {
				var c int64
				if i < len(row.Cells) {
					c = row.Cells[i]
				}
				rec = append(rec, strconv.FormatInt(c, 10))
			}
			if err := cw.Write(rec); err != nil {
				return err
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadHeatmapCSV reads a heatmap written by WriteHeatmapCSV.
func ReadHeatmapCSV(r io.Reader) (*Heatmap, error) {
	cr := csv.NewReader(r)
	recs, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("obs: reading heatmap CSV: %w", err)
	}
	if len(recs) == 0 {
		return nil, fmt.Errorf("obs: heatmap CSV missing header")
	}
	if len(recs[0]) < 2 || recs[0][0] != "clock" || recs[0][1] != "extent" {
		return nil, fmt.Errorf("obs: unexpected heatmap CSV header %v", recs[0])
	}
	h := &Heatmap{Bins: len(recs[0]) - 2}
	for i, rec := range recs[1:] {
		row := HeatmapRow{Cells: make([]int64, h.Bins)}
		if row.Clock, err = strconv.ParseInt(rec[0], 10, 64); err == nil {
			row.Extent, err = strconv.ParseInt(rec[1], 10, 64)
		}
		for b := 0; err == nil && b < h.Bins; b++ {
			row.Cells[b], err = strconv.ParseInt(rec[2+b], 10, 64)
		}
		if err != nil {
			return nil, fmt.Errorf("obs: heatmap CSV row %d: %w", i+2, err)
		}
		h.Rows = append(h.Rows, row)
	}
	return h, nil
}

// WriteCountersCSV writes every counter (and each gauge's value and max)
// as `name,value` rows, sorted by name.
func WriteCountersCSV(w io.Writer, s *Snapshot) error {
	if s == nil {
		return fmt.Errorf("obs: nil snapshot")
	}
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"name", "value"}); err != nil {
		return err
	}
	rows := make([][2]string, 0, len(s.Counters)+2*len(s.Gauges))
	for name, v := range s.Counters {
		rows = append(rows, [2]string{name, strconv.FormatInt(v, 10)})
	}
	for name, g := range s.Gauges {
		rows = append(rows, [2]string{name, strconv.FormatInt(g.Value, 10)})
		rows = append(rows, [2]string{name + ".max", strconv.FormatInt(g.Max, 10)})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i][0] < rows[j][0] })
	for _, r := range rows {
		if err := cw.Write(r[:]); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCountersCSV reads rows written by WriteCountersCSV into a map.
func ReadCountersCSV(r io.Reader) (map[string]int64, error) {
	cr := csv.NewReader(r)
	recs, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("obs: reading counters CSV: %w", err)
	}
	if len(recs) == 0 || len(recs[0]) != 2 || recs[0][0] != "name" {
		return nil, fmt.Errorf("obs: unexpected counters CSV header")
	}
	out := make(map[string]int64, len(recs)-1)
	for i, rec := range recs[1:] {
		v, err := strconv.ParseInt(rec[1], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("obs: counters CSV row %d: %w", i+2, err)
		}
		out[rec[0]] = v
	}
	return out, nil
}
