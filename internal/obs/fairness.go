package obs

// JainIndex computes Jain's fairness index over non-negative per-tenant
// shares: (Σx)² / (n·Σx²). It is 1.0 when every tenant gets an equal
// share, 1/n when one tenant gets everything, and scale-invariant in
// between — the standard single-number fairness summary the cluster
// reports over per-tenant byte-life integrals. Degenerate inputs (no
// tenants, or all shares zero) report 1.0: nothing was divided, so
// nothing was divided unfairly.
func JainIndex(shares []float64) float64 {
	var sum, sumSq float64
	for _, x := range shares {
		sum += x
		sumSq += x * x
	}
	if sumSq == 0 {
		return 1
	}
	return sum * sum / (float64(len(shares)) * sumSq)
}
