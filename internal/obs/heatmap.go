package obs

import "sync"

// DefaultHeatmapBins is the address-space heatmap's column count when
// Options.HeatmapBins is zero: wide enough to show where live data
// clusters, narrow enough to render in a terminal.
const DefaultHeatmapBins = 32

// maxHeatmapRows bounds a heatmap's memory the same way
// maxTimelineSamples bounds the timeline: when full, every other row is
// kept, so arbitrarily long runs degrade time resolution instead of
// growing without bound.
const maxHeatmapRows = 512

// HeatmapRow is one timeline row of the address-space occupancy heatmap.
// The allocator's region windows are packed end to end (holes between
// windows excluded) into a [0, Extent) span and split into the heatmap's
// fixed bin count; each cell counts the live-block bytes that fall in
// its bin, so a cell at bin width is fully occupied and 0 is empty.
type HeatmapRow struct {
	Clock  int64   `json:"clock"`
	Extent int64   `json:"extent"` // packed address-space bytes the bins cover
	Cells  []int64 `json:"cells"`
}

// Heatmap is the fixed-width address-space occupancy record: Bins columns
// by one row per timeline sample. A non-nil heatmap with no rows means
// the scanner ran but never sampled — distinguishable from "scanner not
// enabled" (nil).
type Heatmap struct {
	Bins int          `json:"bins"`
	Rows []HeatmapRow `json:"rows,omitempty"`
}

// CellsSum totals every cell of every row — a cheap scalar fingerprint
// of the whole heatmap, used by Flatten for exact-equality gating.
func (h *Heatmap) CellsSum() int64 {
	if h == nil {
		return 0
	}
	var sum int64
	for _, r := range h.Rows {
		for _, c := range r.Cells {
			sum += c
		}
	}
	return sum
}

// heatmapRec accumulates heatmap rows with the bounded-memory policy.
type heatmapRec struct {
	mu   sync.Mutex
	bins int
	rows []HeatmapRow
}

func newHeatmapRec(bins int) *heatmapRec {
	if bins <= 0 {
		bins = DefaultHeatmapBins
	}
	return &heatmapRec{bins: bins}
}

func (h *heatmapRec) record(r HeatmapRow) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.rows = append(h.rows, r)
	if len(h.rows) >= maxHeatmapRows {
		keep := h.rows[:0]
		for i := 0; i < len(h.rows); i += 2 {
			keep = append(keep, h.rows[i])
		}
		h.rows = keep
	}
}

// snapshot deep-copies the accumulated rows.
func (h *heatmapRec) snapshot() *Heatmap {
	h.mu.Lock()
	defer h.mu.Unlock()
	out := &Heatmap{Bins: h.bins}
	if len(h.rows) > 0 {
		out.Rows = make([]HeatmapRow, len(h.rows))
		for i, r := range h.rows {
			cp := r
			cp.Cells = append([]int64(nil), r.Cells...)
			out.Rows[i] = cp
		}
	}
	return out
}
