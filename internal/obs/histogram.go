package obs

import (
	"math/bits"
	"sync/atomic"
)

// HistKind selects a histogram's bucket geometry.
type HistKind uint8

const (
	// Log2 buckets suit sizes and lifetimes: bucket i counts values v
	// with bits.Len64(v) == i, i.e. bucket 0 holds 0, bucket 1 holds 1,
	// bucket i holds [2^(i-1), 2^i - 1] for i >= 2.
	Log2 HistKind = iota
	// Linear buckets suit search lengths and scan steps: bucket i counts
	// values in [i*Width, (i+1)*Width).
	Linear
)

// String names the kind for exports.
func (k HistKind) String() string {
	if k == Linear {
		return "linear"
	}
	return "log2"
}

// Histogram is a fixed-bucket histogram with an overflow bucket, a total
// count/sum, and a maximum. Observe is lock-free; all methods are safe
// for concurrent use. Negative values clamp to zero.
type Histogram struct {
	kind   HistKind
	width  int64 // linear bucket width (unused for log2)
	counts []atomic.Int64
	over   atomic.Int64
	count  atomic.Int64
	sum    atomic.Int64
	max    atomic.Int64
}

// NewLog2Histogram returns a histogram with the given number of log2
// buckets (plus overflow). Bucket i's upper bound is 2^i - 1.
func NewLog2Histogram(buckets int) *Histogram {
	if buckets <= 0 {
		buckets = 32
	}
	return &Histogram{kind: Log2, counts: make([]atomic.Int64, buckets)}
}

// NewLinearHistogram returns a histogram with the given bucket width and
// count (plus overflow). Bucket i covers [i*width, (i+1)*width).
func NewLinearHistogram(width int64, buckets int) *Histogram {
	if width <= 0 {
		width = 1
	}
	if buckets <= 0 {
		buckets = 64
	}
	return &Histogram{kind: Linear, width: width, counts: make([]atomic.Int64, buckets)}
}

// bucketIndex maps a value to its bucket, or -1 for overflow.
func (h *Histogram) bucketIndex(v int64) int {
	var i int
	if h.kind == Log2 {
		i = bits.Len64(uint64(v))
	} else {
		i = int(v / h.width)
	}
	if i >= len(h.counts) {
		return -1
	}
	return i
}

// Observe records one value.
func (h *Histogram) Observe(v int64) {
	if v < 0 {
		v = 0
	}
	if i := h.bucketIndex(v); i >= 0 {
		h.counts[i].Add(1)
	} else {
		h.over.Add(1)
	}
	h.count.Add(1)
	h.sum.Add(v)
	for {
		m := h.max.Load()
		if v <= m || h.max.CompareAndSwap(m, v) {
			break
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Max returns the largest observed value (0 before any observation).
func (h *Histogram) Max() int64 { return h.max.Load() }

// Mean returns the average observed value (0 before any observation).
func (h *Histogram) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Snapshot captures the histogram's state for export.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Kind:     h.kind.String(),
		Width:    h.width,
		Counts:   make([]int64, len(h.counts)),
		Overflow: h.over.Load(),
		Count:    h.count.Load(),
		Sum:      h.sum.Load(),
		Max:      h.max.Load(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// HistogramSnapshot is the exported form of a Histogram.
type HistogramSnapshot struct {
	Kind     string  `json:"kind"`            // "log2" or "linear"
	Width    int64   `json:"width,omitempty"` // linear bucket width
	Counts   []int64 `json:"counts"`
	Overflow int64   `json:"overflow,omitempty"`
	Count    int64   `json:"count"`
	Sum      int64   `json:"sum"`
	Max      int64   `json:"max"`
}

// BucketBounds returns bucket i's inclusive value range.
func (s HistogramSnapshot) BucketBounds(i int) (lo, hi int64) {
	if s.Kind == "linear" {
		w := s.Width
		if w <= 0 {
			w = 1
		}
		return int64(i) * w, int64(i+1)*w - 1
	}
	if i == 0 {
		return 0, 0
	}
	return int64(1) << (i - 1), int64(1)<<i - 1
}

// Mean returns the snapshot's average observed value.
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.Count)
}
