package obs

import (
	"sync"
	"testing"
)

func TestCounterConcurrent(t *testing.T) {
	reg := NewRegistry()
	const goroutines = 8
	const perG = 10000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := reg.Counter("shared")
			for i := 0; i < perG; i++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := reg.Counter("shared").Value(); got != goroutines*perG {
		t.Errorf("counter = %d, want %d", got, goroutines*perG)
	}
}

func TestGaugeMax(t *testing.T) {
	var g Gauge
	for _, v := range []int64{3, 10, 7, 10, 2} {
		g.Set(v)
	}
	if g.Value() != 2 {
		t.Errorf("Value = %d, want 2", g.Value())
	}
	if g.Max() != 10 {
		t.Errorf("Max = %d, want 10", g.Max())
	}
}

func TestGaugeMaxConcurrent(t *testing.T) {
	var g Gauge
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(base int64) {
			defer wg.Done()
			for i := int64(0); i < 1000; i++ {
				g.Set(base + i)
			}
		}(int64(w) * 1000)
	}
	wg.Wait()
	if g.Max() != 8*1000-1 {
		t.Errorf("Max = %d, want %d", g.Max(), 8*1000-1)
	}
}

func TestLog2HistogramBuckets(t *testing.T) {
	h := NewLog2Histogram(5) // buckets 0..4, bucket 4 covers [8,15]
	cases := []struct {
		v    int64
		want int // bucket index, -1 = overflow
	}{
		{0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3},
		{8, 4}, {15, 4}, {16, -1}, {1 << 40, -1},
		{-5, 0}, // negatives clamp to zero
	}
	for _, c := range cases {
		h.Observe(c.v)
	}
	s := h.Snapshot()
	wantCounts := []int64{2, 1, 2, 2, 2} // includes the clamped -5 in bucket 0
	for i, w := range wantCounts {
		if s.Counts[i] != w {
			t.Errorf("log2 bucket %d = %d, want %d", i, s.Counts[i], w)
		}
	}
	if s.Overflow != 2 {
		t.Errorf("overflow = %d, want 2", s.Overflow)
	}
	if s.Count != int64(len(cases)) {
		t.Errorf("count = %d, want %d", s.Count, len(cases))
	}
	if s.Max != 1<<40 {
		t.Errorf("max = %d, want %d", s.Max, int64(1)<<40)
	}
	// Bucket bounds must tile [0, 2^4-1] without gaps.
	if lo, hi := s.BucketBounds(0); lo != 0 || hi != 0 {
		t.Errorf("bounds(0) = [%d,%d], want [0,0]", lo, hi)
	}
	prevHi := int64(0)
	for i := 1; i < 5; i++ {
		lo, hi := s.BucketBounds(i)
		if lo != prevHi+1 {
			t.Errorf("bounds(%d) lo = %d, want %d (gap)", i, lo, prevHi+1)
		}
		if hi != int64(1)<<i-1 {
			t.Errorf("bounds(%d) hi = %d, want %d", i, hi, int64(1)<<i-1)
		}
		prevHi = hi
	}
}

func TestLinearHistogramBuckets(t *testing.T) {
	h := NewLinearHistogram(4, 3) // [0,3] [4,7] [8,11], overflow >= 12
	for _, v := range []int64{0, 3, 4, 7, 8, 11, 12, 100} {
		h.Observe(v)
	}
	s := h.Snapshot()
	want := []int64{2, 2, 2}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Errorf("linear bucket %d = %d, want %d", i, s.Counts[i], w)
		}
	}
	if s.Overflow != 2 {
		t.Errorf("overflow = %d, want 2", s.Overflow)
	}
	for i := 0; i < 3; i++ {
		lo, hi := s.BucketBounds(i)
		if lo != int64(i)*4 || hi != int64(i)*4+3 {
			t.Errorf("bounds(%d) = [%d,%d], want [%d,%d]", i, lo, hi, i*4, i*4+3)
		}
	}
	if got := s.Mean(); got != (0+3+4+7+8+11+12+100)/8.0 {
		t.Errorf("mean = %g", got)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	h := NewLog2Histogram(16)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := int64(0); i < 5000; i++ {
				h.Observe(i % 1000)
			}
		}()
	}
	wg.Wait()
	if h.Count() != 8*5000 {
		t.Errorf("count = %d, want %d", h.Count(), 8*5000)
	}
}

func TestTimelineCadence(t *testing.T) {
	tl := NewTimeline(100)
	if tl.Due(99) {
		t.Error("Due(99) with interval 100")
	}
	if !tl.Due(100) {
		t.Error("not Due(100) with interval 100")
	}
	tl.Record(Sample{Clock: 100, LiveBytes: 1})
	if tl.Due(150) {
		t.Error("Due(150) after recording at 100")
	}
	// A sample far past the boundary advances next past its clock, not
	// just by one interval.
	tl.Record(Sample{Clock: 1234})
	if tl.Due(1299) {
		t.Error("Due(1299) after recording at 1234")
	}
	if !tl.Due(1300) {
		t.Error("not Due(1300) after recording at 1234")
	}
	got := tl.Samples()
	if len(got) != 2 || got[0].Clock != 100 || got[1].Clock != 1234 {
		t.Errorf("samples = %+v", got)
	}
}

func TestTimelineDownsample(t *testing.T) {
	tl := NewTimeline(1)
	for i := 0; i < maxTimelineSamples+10; i++ {
		tl.Record(Sample{Clock: int64(i)})
	}
	n := len(tl.Samples())
	if n >= maxTimelineSamples {
		t.Errorf("samples = %d, want < %d after downsampling", n, maxTimelineSamples)
	}
	if tl.Interval() < 2 {
		t.Errorf("interval = %d, want doubled", tl.Interval())
	}
	// Order must be preserved.
	s := tl.Samples()
	for i := 1; i < len(s); i++ {
		if s[i].Clock <= s[i-1].Clock {
			t.Fatalf("samples out of order at %d: %d then %d", i, s[i-1].Clock, s[i].Clock)
		}
	}
}

func TestMemorySink(t *testing.T) {
	s := NewMemorySink(4)
	for i := 0; i < 10; i++ {
		s.Event(Event{Kind: EvCoalesce, Clock: int64(i)})
	}
	s.Event(Event{Kind: EvHeapGrow, Clock: 10})
	counts := s.Counts()
	if counts["coalesce"] != 10 || counts["heap_grow"] != 1 {
		t.Errorf("counts = %v", counts)
	}
	recent := s.Recent()
	if len(recent) != 4 {
		t.Fatalf("recent = %d events, want 4", len(recent))
	}
	// Window holds the newest events in arrival order.
	for i := 1; i < len(recent); i++ {
		if recent[i].Clock <= recent[i-1].Clock {
			t.Errorf("recent out of order: %+v", recent)
		}
	}
	if recent[len(recent)-1].Kind != EvHeapGrow {
		t.Errorf("last event = %v, want heap_grow", recent[len(recent)-1].Kind)
	}
	if s.Dropped() != 7 {
		t.Errorf("dropped = %d, want 7", s.Dropped())
	}
}

func TestEventKindNames(t *testing.T) {
	want := map[EventKind]string{
		EvArenaReuse:    "arena_reuse",
		EvArenaOverflow: "arena_overflow",
		EvCoalesce:      "coalesce",
		EvHeapGrow:      "heap_grow",
		EvPredictorMiss: "predictor_miss",
	}
	for k, name := range want {
		if k.String() != name {
			t.Errorf("kind %d = %q, want %q", k, k.String(), name)
		}
	}
	if EventKind(200).String() != "unknown" {
		t.Errorf("out-of-range kind = %q", EventKind(200).String())
	}
}

func TestNilCollectorSafe(t *testing.T) {
	var c *Collector
	// Every method must be callable on nil without panicking.
	c.SetClock(10)
	if c.Now() != 0 {
		t.Error("nil Now != 0")
	}
	if c.Counter("x") != nil || c.Gauge("x") != nil {
		t.Error("nil collector returned a live metric")
	}
	if c.Log2Histogram("x", 8) != nil || c.LinearHistogram("x", 1, 8) != nil {
		t.Error("nil collector returned a live histogram")
	}
	c.Emit(EvCoalesce, 1)
	if c.TimelineDue(1 << 30) {
		t.Error("nil TimelineDue true")
	}
	c.RecordSample(Sample{})
	c.MarkPhase("end")
	c.SetSites(nil)
	if c.Snapshot() != nil {
		t.Error("nil Snapshot != nil")
	}
	if c.Registry() != nil {
		t.Error("nil Registry != nil")
	}
}

func TestCollectorPhases(t *testing.T) {
	c := NewCollector(Options{Label: "test/phases"})
	c.Counter("work").Add(5)
	c.SetClock(100)
	c.MarkPhase("25%")
	c.Counter("work").Add(3)
	c.SetClock(200)
	c.MarkPhase("end")
	s := c.Snapshot()
	if len(s.Phases) != 2 {
		t.Fatalf("phases = %d, want 2", len(s.Phases))
	}
	if s.Phases[0].Clock != 100 || s.Phases[0].Counters["work"] != 5 {
		t.Errorf("phase 0 = %+v", s.Phases[0])
	}
	if s.Phases[1].Clock != 200 || s.Phases[1].Counters["work"] != 8 {
		t.Errorf("phase 1 = %+v", s.Phases[1])
	}
}

func TestCollectorTimelineDisabled(t *testing.T) {
	c := NewCollector(Options{TimelineInterval: -1})
	if c.TimelineDue(1 << 40) {
		t.Error("disabled timeline is Due")
	}
	c.RecordSample(Sample{Clock: 1})
	if s := c.Snapshot(); len(s.Timeline) != 0 || s.TimelineInterval != 0 {
		t.Errorf("disabled timeline leaked samples: %+v", s.Timeline)
	}
}

func TestCollectorCustomSink(t *testing.T) {
	c := NewCollector(Options{Sink: NopSink{}})
	c.Emit(EvArenaReuse, 1)
	if s := c.Snapshot(); len(s.Events.Counts) != 0 {
		t.Errorf("NopSink snapshot has events: %+v", s.Events)
	}
}

func TestRegistryNames(t *testing.T) {
	r := NewRegistry()
	r.Counter("b.count")
	r.Gauge("a.gauge")
	r.Log2Histogram("c.hist", 8)
	got := r.Names()
	want := []string{"a.gauge", "b.count", "c.hist"}
	if len(got) != len(want) {
		t.Fatalf("names = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("names[%d] = %q, want %q", i, got[i], want[i])
		}
	}
	// Same name resolves to the same handle.
	if r.Counter("b.count") != r.Counter("b.count") {
		t.Error("counter handle not stable")
	}
}
