package obs

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// buildSnapshot exercises every Snapshot field through the public API.
func buildSnapshot() *Snapshot {
	c := NewCollector(Options{Label: "gawk/arena", TimelineInterval: 100})
	c.Counter("arena.resets").Add(7)
	c.Counter("firstfit.splits").Add(3)
	c.Gauge("arena.pinned").Set(2)
	c.Gauge("arena.pinned").Set(1)
	h := c.Log2Histogram("arena.alloc_size", 8)
	for _, v := range []int64{8, 16, 16, 300} {
		h.Observe(v)
	}
	lh := c.LinearHistogram("arena.scan_len", 1, 4)
	lh.Observe(2)
	c.Counter("pred.tp_objects").Add(3)
	c.Counter("pred.fp_objects").Add(1)
	c.Gauge("pred.threshold_bytes").Set(32768)
	c.Log2Histogram("pred.lifetime_pred_short", 12).Observe(100)
	c.SetClock(100)
	c.Emit(EvArenaReuse, 3)
	c.RecordSample(Sample{Clock: 100, LiveBytes: 40, LiveObjects: 2, HeapBytes: 128, ArenaOccupancy: 0.25,
		PredDecidedObjects: 2, PredCorrectObjects: 1, PredDecidedBytes: 32, PredCorrectBytes: 16})
	c.MarkPhase("50%")
	c.SetClock(250)
	c.Emit(EvHeapGrow, 4096)
	c.RecordSample(Sample{Clock: 250, LiveBytes: 80, LiveObjects: 4, HeapBytes: 256, ArenaOccupancy: 0.5,
		PredDecidedObjects: 4, PredCorrectObjects: 3, PredDecidedBytes: 64, PredCorrectBytes: 48})
	c.MarkPhase("end")
	c.SetSites([]SiteBytes{
		{Site: "main>parse>alloc", Allocs: 10, Bytes: 400},
		{Site: "main>eval>alloc", Allocs: 5, Bytes: 100},
	})
	c.SetPredSites([]PredSite{
		{Site: "main>parse>alloc", FPObjects: 1, FPBytes: 64, FPCost: 2048},
		{Site: "main>eval>alloc", FNObjects: 2, FNBytes: 32},
	})
	s := c.Snapshot()
	s.Program = "gawk"
	s.Allocator = "arena"
	return s
}

func TestJSONRoundTrip(t *testing.T) {
	want := buildSnapshot()
	var buf bytes.Buffer
	if err := WriteJSON(&buf, want); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatalf("ReadJSON: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("round trip mismatch:\n got %+v\nwant %+v", got, want)
	}
}

func TestWriteJSONNil(t *testing.T) {
	if err := WriteJSON(&bytes.Buffer{}, nil); err == nil {
		t.Error("WriteJSON(nil) succeeded")
	}
}

func TestReadJSONGarbage(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("not json")); err == nil {
		t.Error("ReadJSON of garbage succeeded")
	}
}

func TestReadJSONSchemaGate(t *testing.T) {
	// A snapshot without a schema version must be rejected with a clear
	// message, not decoded into zero values.
	_, err := ReadJSON(strings.NewReader(`{"clock": 42}`))
	if err == nil || !strings.Contains(err.Error(), "schema") {
		t.Errorf("schemaless snapshot: got %v, want schema error", err)
	}
	// So must one from a future format.
	_, err = ReadJSON(strings.NewReader(`{"schema": 999, "clock": 42}`))
	if err == nil || !strings.Contains(err.Error(), "schema") {
		t.Errorf("future schema: got %v, want schema error", err)
	}
	// The current version round-trips.
	s, err := ReadJSON(strings.NewReader(`{"schema": 1, "clock": 42}`))
	if err != nil {
		t.Fatalf("current schema rejected: %v", err)
	}
	if s.Clock != 42 {
		t.Errorf("clock = %d, want 42", s.Clock)
	}
}

func TestWriteJSONStampsSchema(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, &Snapshot{Clock: 7}); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatalf("ReadJSON: %v", err)
	}
	if got.Schema != SnapshotSchema {
		t.Errorf("schema = %d, want %d", got.Schema, SnapshotSchema)
	}
}

func TestWriteTimelineCSVEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteTimelineCSV(&buf, &Snapshot{}); err != nil {
		t.Fatalf("WriteTimelineCSV(empty timeline): %v", err)
	}
	want := strings.Join(timelineHeader, ",") + "\n"
	if buf.String() != want {
		t.Errorf("empty timeline CSV = %q, want header-only %q", buf.String(), want)
	}
	if err := WriteTimelineCSV(&buf, nil); err == nil {
		t.Error("WriteTimelineCSV(nil) succeeded")
	}
	if err := WriteCountersCSV(&buf, nil); err == nil {
		t.Error("WriteCountersCSV(nil) succeeded")
	}
}

func TestTimelineCSVRoundTrip(t *testing.T) {
	s := buildSnapshot()
	var buf bytes.Buffer
	if err := WriteTimelineCSV(&buf, s); err != nil {
		t.Fatalf("WriteTimelineCSV: %v", err)
	}
	got, err := ReadTimelineCSV(&buf)
	if err != nil {
		t.Fatalf("ReadTimelineCSV: %v", err)
	}
	if !reflect.DeepEqual(got, s.Timeline) {
		t.Errorf("timeline round trip:\n got %+v\nwant %+v", got, s.Timeline)
	}
}

func TestTimelineCSVBadHeader(t *testing.T) {
	if _, err := ReadTimelineCSV(strings.NewReader("a,b\n1,2\n")); err == nil {
		t.Error("bad header accepted")
	}
	if _, err := ReadTimelineCSV(strings.NewReader("")); err == nil {
		t.Error("empty input accepted")
	}
}

func TestCountersCSVRoundTrip(t *testing.T) {
	s := buildSnapshot()
	var buf bytes.Buffer
	if err := WriteCountersCSV(&buf, s); err != nil {
		t.Fatalf("WriteCountersCSV: %v", err)
	}
	got, err := ReadCountersCSV(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadCountersCSV: %v", err)
	}
	for name, v := range s.Counters {
		if got[name] != v {
			t.Errorf("counter %s = %d, want %d", name, got[name], v)
		}
	}
	for name, g := range s.Gauges {
		if got[name] != g.Value {
			t.Errorf("gauge %s = %d, want %d", name, got[name], g.Value)
		}
		if got[name+".max"] != g.Max {
			t.Errorf("gauge %s.max = %d, want %d", name, got[name+".max"], g.Max)
		}
	}
	// Rows must come out sorted by name.
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	for i := 2; i < len(lines); i++ {
		if lines[i] < lines[i-1] {
			t.Errorf("counters CSV not sorted: %q after %q", lines[i], lines[i-1])
		}
	}
}
