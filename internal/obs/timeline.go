package obs

import "sync"

// Sample is one point on a run's timeline, taken every Interval bytes of
// allocation. The clock is bytes allocated since the start of the run
// (the paper's time unit), so timelines from different machines and
// scales line up exactly.
type Sample struct {
	Clock          int64   `json:"clock"` // bytes allocated so far
	LiveBytes      int64   `json:"live_bytes"`
	LiveObjects    int64   `json:"live_objects"`
	HeapBytes      int64   `json:"heap_bytes"`                // allocator footprint (address space)
	ArenaOccupancy float64 `json:"arena_occupancy,omitempty"` // fraction of arena area in use, 0 for non-arena runs

	// Rolling prediction-accuracy channel: cumulative counts of objects
	// (and their bytes) whose predictions have been resolved at free time
	// by this point on the clock, and how many resolved correctly.
	// Deltas between consecutive samples give windowed accuracy, so
	// calibration drift across a run's phases is visible; zero throughout
	// for replays without prediction tracking.
	PredDecidedObjects int64 `json:"pred_decided_objects,omitempty"`
	PredCorrectObjects int64 `json:"pred_correct_objects,omitempty"`
	PredDecidedBytes   int64 `json:"pred_decided_bytes,omitempty"`
	PredCorrectBytes   int64 `json:"pred_correct_bytes,omitempty"`

	// Heap-topology channel, filled only when the replay runs with the
	// heap scanner enabled. The decomposition identity
	// live_payload + header + internal + external + holes == HeapBytes
	// holds at every scanned sample (the Walker contract makes region
	// extents sum to HeapSize).
	HeapLivePayload     int64 `json:"heap_live_payload,omitempty"`
	HeapHeaderBytes     int64 `json:"heap_header_bytes,omitempty"`
	HeapInternalFrag    int64 `json:"heap_internal_frag,omitempty"`
	HeapExternalFrag    int64 `json:"heap_external_frag,omitempty"`
	HeapHoleBytes       int64 `json:"heap_hole_bytes,omitempty"`
	HeapFreeSpans       int64 `json:"heap_free_spans,omitempty"`
	HeapLargestFreeSpan int64 `json:"heap_largest_free_span,omitempty"`
}

// DefaultTimelineInterval is the default sampling cadence: one sample per
// 64KB of allocation, fine enough to see arena churn (the paper's arena
// area is 64KB) without unbounded growth.
const DefaultTimelineInterval = 64 << 10

// maxTimelineSamples bounds a timeline's memory: when full, the timeline
// keeps every other sample and doubles its interval, so arbitrarily long
// runs degrade resolution instead of growing without bound.
const maxTimelineSamples = 4096

// Timeline records Samples on a bytes-allocated cadence. It is safe for
// concurrent use, though the replay loops drive it from one goroutine.
type Timeline struct {
	mu       sync.Mutex
	interval int64
	next     int64
	samples  []Sample
}

// NewTimeline returns a timeline sampling every interval bytes
// (DefaultTimelineInterval when interval <= 0).
func NewTimeline(interval int64) *Timeline {
	if interval <= 0 {
		interval = DefaultTimelineInterval
	}
	return &Timeline{interval: interval, next: interval}
}

// Due reports whether the clock has crossed the next sampling boundary.
// Callers check Due first so building a Sample (which may probe the
// allocator) is skipped between boundaries.
func (t *Timeline) Due(clock int64) bool {
	t.mu.Lock()
	due := clock >= t.next
	t.mu.Unlock()
	return due
}

// Record appends a sample and advances the sampling boundary past the
// sample's clock. Recording when not Due is allowed (core uses it for a
// final end-of-run sample).
func (t *Timeline) Record(s Sample) {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.samples = append(t.samples, s)
	for t.next <= s.Clock {
		t.next += t.interval
	}
	if len(t.samples) >= maxTimelineSamples {
		keep := t.samples[:0]
		for i := 0; i < len(t.samples); i += 2 {
			keep = append(keep, t.samples[i])
		}
		t.samples = keep
		t.interval *= 2
	}
}

// Interval returns the current sampling interval in bytes (it doubles
// when the sample cap is hit).
func (t *Timeline) Interval() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.interval
}

// Samples returns a copy of the recorded samples.
func (t *Timeline) Samples() []Sample {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]Sample, len(t.samples))
	copy(out, t.samples)
	return out
}
