package obs

import "sync"

// EventKind identifies a structured replay event. The set covers the
// allocator decisions the paper's prose discusses but its tables
// aggregate away.
type EventKind uint8

const (
	// EvArenaReuse: an arena's live count hit zero and it was reset for
	// reuse (Arg = arena index).
	EvArenaReuse EventKind = iota
	// EvArenaOverflow: a predicted-short allocation found every arena
	// pinned and fell back to the general heap (Arg = request size) —
	// the CFRAC pollution failure mode.
	EvArenaOverflow
	// EvCoalesce: free merged two adjacent free blocks (Arg = resulting
	// block size).
	EvCoalesce
	// EvHeapGrow: the heap extended its break or carved a new slab
	// (Arg = growth in bytes).
	EvHeapGrow
	// EvPredictorMiss: a site's short-lived prediction was revoked
	// online after repeatedly pinning its pool (Arg = site key, folded
	// to int64).
	EvPredictorMiss

	numEventKinds = 5
)

var eventKindNames = [numEventKinds]string{
	"arena_reuse", "arena_overflow", "coalesce", "heap_grow", "predictor_miss",
}

// String names the kind for exports.
func (k EventKind) String() string {
	if int(k) < len(eventKindNames) {
		return eventKindNames[k]
	}
	return "unknown"
}

// Event is one structured replay event, stamped with the bytes-allocated
// clock at which it happened.
type Event struct {
	Kind  EventKind `json:"kind"`
	Clock int64     `json:"clock"`
	Arg   int64     `json:"arg,omitempty"`
}

// EventSink consumes structured events. Implementations must be safe for
// concurrent use.
type EventSink interface {
	Event(Event)
}

// NopSink discards every event; the compiler reduces the call to nothing
// observable, so a Collector with a NopSink costs only the counter work.
type NopSink struct{}

// Event implements EventSink.
func (NopSink) Event(Event) {}

// MemorySink keeps exact per-kind totals and a bounded window of the most
// recent events (a ring buffer): event *counts* are always complete, the
// raw stream is capped so long runs cannot exhaust memory.
type MemorySink struct {
	mu      sync.Mutex
	byKind  [numEventKinds]int64
	events  []Event
	start   int // ring start when full
	cap     int
	dropped int64
}

// DefaultEventCap bounds MemorySink's raw event window.
const DefaultEventCap = 4096

// NewMemorySink returns a sink retaining at most capN raw events
// (DefaultEventCap when capN <= 0).
func NewMemorySink(capN int) *MemorySink {
	if capN <= 0 {
		capN = DefaultEventCap
	}
	return &MemorySink{cap: capN}
}

// Event implements EventSink.
func (s *MemorySink) Event(ev Event) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if int(ev.Kind) < numEventKinds {
		s.byKind[ev.Kind]++
	}
	if len(s.events) < s.cap {
		s.events = append(s.events, ev)
		return
	}
	s.events[s.start] = ev
	s.start = (s.start + 1) % s.cap
	s.dropped++
}

// Counts returns the exact per-kind event totals, keyed by kind name.
func (s *MemorySink) Counts() map[string]int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[string]int64, numEventKinds)
	for k, n := range s.byKind {
		if n > 0 {
			out[EventKind(k).String()] = n
		}
	}
	return out
}

// Recent returns the retained event window in arrival order.
func (s *MemorySink) Recent() []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Event, 0, len(s.events))
	out = append(out, s.events[s.start:]...)
	out = append(out, s.events[:s.start]...)
	return out
}

// Dropped returns how many events fell out of the window.
func (s *MemorySink) Dropped() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}
