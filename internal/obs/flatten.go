package obs

// Flatten reduces a snapshot to a flat name → value map, the common
// currency of cmd/lpdiff and the bench files: counters under their own
// names, gauges as name and name.max, histograms as name.count /
// name.sum / name.mean / name.max, wall-clock timings as name.count /
// name.sum_us / name.mean_us / name.max_us, exact event totals as
// events.<kind>, and the bytes-allocated clock as "clock". Nil-safe: a
// nil snapshot flattens to an empty map.
func (s *Snapshot) Flatten() map[string]float64 {
	if s == nil {
		return map[string]float64{}
	}
	out := make(map[string]float64,
		2+len(s.Counters)+2*len(s.Gauges)+4*len(s.Histograms)+4*len(s.Timings)+len(s.Events.Counts))
	out["clock"] = float64(s.Clock)
	for name, v := range s.Counters {
		out[name] = float64(v)
	}
	for name, g := range s.Gauges {
		out[name] = float64(g.Value)
		out[name+".max"] = float64(g.Max)
	}
	for name, h := range s.Histograms {
		out[name+".count"] = float64(h.Count)
		out[name+".sum"] = float64(h.Sum)
		out[name+".mean"] = h.Mean()
		out[name+".max"] = float64(h.Max)
	}
	for name, t := range s.Timings {
		out[name+".count"] = float64(t.Count)
		out[name+".sum_us"] = float64(t.SumMicros)
		out[name+".mean_us"] = t.MeanMicros()
		out[name+".max_us"] = float64(t.MaxMicros)
	}
	for kind, n := range s.Events.Counts {
		out["events."+kind] = float64(n)
	}
	// Sink overflow is surfaced unconditionally (usually 0) so a capped
	// raw-event window is visible rather than a silent truncation.
	out["obs.dropped_events"] = float64(s.Events.Dropped)
	if s.Heatmap != nil {
		// Scalar fingerprints of the heatmap, named under heap. so the
		// lpbench -only heap. filter and the FRAG_seed gates cover them.
		out["heap.heatmap.bins"] = float64(s.Heatmap.Bins)
		out["heap.heatmap.rows"] = float64(len(s.Heatmap.Rows))
		out["heap.heatmap.cells_sum"] = float64(s.Heatmap.CellsSum())
	}
	return out
}

// FragPeakPct returns the worst fragmentation-and-overhead point on the
// snapshot's timeline: the maximum of 1 - live/heap (as a percentage)
// over all samples with a non-zero heap. Zero for empty timelines.
func (s *Snapshot) FragPeakPct() float64 {
	if s == nil {
		return 0
	}
	peak := 0.0
	for _, p := range s.Timeline {
		if p.HeapBytes <= 0 {
			continue
		}
		frag := 100 * (1 - float64(p.LiveBytes)/float64(p.HeapBytes))
		if frag > peak {
			peak = frag
		}
	}
	return peak
}
