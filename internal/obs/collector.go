package obs

import (
	"sync"
	"sync/atomic"
)

// Options configures a Collector.
type Options struct {
	// Label tags the snapshot (conventionally "program/allocator").
	Label string
	// TimelineInterval is the sampling cadence in bytes allocated:
	// 0 uses DefaultTimelineInterval, negative disables the timeline.
	TimelineInterval int64
	// EventCap bounds the retained raw-event window (0 uses
	// DefaultEventCap); per-kind event counts are always exact.
	EventCap int
	// Sink overrides the default MemorySink (e.g. NopSink to keep
	// counters but drop events). When set, the snapshot's event summary
	// is empty unless the sink is a *MemorySink.
	Sink EventSink
	// SampleHook, when set, is called with every recorded timeline
	// sample, after it lands in the timeline. It runs on the replay
	// goroutine and must not block (lpserve streams samples over SSE
	// through it).
	SampleHook func(Sample)
	// EventHook, when set, is called with every emitted event after the
	// sink consumed it. Same contract as SampleHook.
	EventHook func(Event)
	// HeapScan opts the replay into the heap-topology scanner: on every
	// timeline sample the allocator's Walker layout is decomposed into
	// heap.* fragmentation families and an address-space occupancy
	// heatmap. Walkers are read-only, so scanning never perturbs the
	// replay; it only costs time proportional to the block count per
	// sample.
	HeapScan bool
	// HeatmapBins is the heatmap's fixed column count (0 uses
	// DefaultHeatmapBins). Ignored unless HeapScan is set.
	HeatmapBins int
}

// Collector bundles a metric registry, a timeline, and an event sink,
// plus the bytes-allocated clock that stamps events and samples. One
// Collector observes one replay; attach it via core.RunSim's optional
// trailing argument (or heapsim's Observable interface directly).
//
// All methods are safe on a nil *Collector — they no-op or return zero
// values — so call sites can hold an optional collector without guards.
// Hot paths should still cache resolved Counter/Histogram handles and
// branch on the collector pointer once.
type Collector struct {
	Label string

	reg        *Registry
	timeline   *Timeline
	sink       EventSink
	mem        *MemorySink // non-nil when sink is the default MemorySink
	sampleHook func(Sample)
	eventHook  func(Event)
	heatmap    *heatmapRec // non-nil when HeapScan was requested
	clock      atomic.Int64

	mu        sync.Mutex
	phases    []PhaseSnapshot
	sites     []SiteBytes
	predSites []PredSite
}

// NewCollector returns a collector with the given options.
func NewCollector(opts Options) *Collector {
	c := &Collector{
		Label:      opts.Label,
		reg:        NewRegistry(),
		sampleHook: opts.SampleHook,
		eventHook:  opts.EventHook,
	}
	if opts.TimelineInterval >= 0 {
		c.timeline = NewTimeline(opts.TimelineInterval)
	}
	if opts.HeapScan {
		c.heatmap = newHeatmapRec(opts.HeatmapBins)
	}
	if opts.Sink != nil {
		c.sink = opts.Sink
		if m, ok := opts.Sink.(*MemorySink); ok {
			c.mem = m
		}
	} else {
		c.mem = NewMemorySink(opts.EventCap)
		c.sink = c.mem
	}
	return c
}

// Registry returns the collector's metric registry (nil-safe).
func (c *Collector) Registry() *Registry {
	if c == nil {
		return nil
	}
	return c.reg
}

// Counter resolves a named counter (nil-safe: returns nil).
func (c *Collector) Counter(name string) *Counter {
	if c == nil {
		return nil
	}
	return c.reg.Counter(name)
}

// Gauge resolves a named gauge (nil-safe: returns nil).
func (c *Collector) Gauge(name string) *Gauge {
	if c == nil {
		return nil
	}
	return c.reg.Gauge(name)
}

// Log2Histogram resolves a named log2 histogram (nil-safe: returns nil).
func (c *Collector) Log2Histogram(name string, buckets int) *Histogram {
	if c == nil {
		return nil
	}
	return c.reg.Log2Histogram(name, buckets)
}

// LinearHistogram resolves a named linear histogram (nil-safe: returns
// nil).
func (c *Collector) LinearHistogram(name string, width int64, buckets int) *Histogram {
	if c == nil {
		return nil
	}
	return c.reg.LinearHistogram(name, width, buckets)
}

// SetClock advances the bytes-allocated clock; the replay loop calls this
// after each allocation so events carry a meaningful timestamp.
func (c *Collector) SetClock(v int64) {
	if c == nil {
		return
	}
	c.clock.Store(v)
}

// Now returns the current bytes-allocated clock.
func (c *Collector) Now() int64 {
	if c == nil {
		return 0
	}
	return c.clock.Load()
}

// Emit stamps and forwards a structured event.
func (c *Collector) Emit(kind EventKind, arg int64) {
	if c == nil {
		return
	}
	ev := Event{Kind: kind, Clock: c.clock.Load(), Arg: arg}
	c.sink.Event(ev)
	if c.eventHook != nil {
		c.eventHook(ev)
	}
}

// TimelineDue reports whether the timeline wants a sample at the given
// clock (false when the timeline is disabled).
func (c *Collector) TimelineDue(clock int64) bool {
	if c == nil || c.timeline == nil {
		return false
	}
	return c.timeline.Due(clock)
}

// RecordSample appends a timeline sample.
func (c *Collector) RecordSample(s Sample) {
	if c == nil || c.timeline == nil {
		return
	}
	c.timeline.Record(s)
	if c.sampleHook != nil {
		c.sampleHook(s)
	}
}

// HeapScanEnabled reports whether the collector was created with
// Options.HeapScan (nil-safe: false). The replay loop checks it once to
// decide whether to attach a layout scanner.
func (c *Collector) HeapScanEnabled() bool {
	return c != nil && c.heatmap != nil
}

// HeatmapBins returns the heatmap's configured column count (0 when heap
// scanning is off).
func (c *Collector) HeatmapBins() int {
	if c == nil || c.heatmap == nil {
		return 0
	}
	return c.heatmap.bins
}

// RecordHeatmapRow appends one address-space occupancy row; a no-op
// unless the collector was created with HeapScan.
func (c *Collector) RecordHeatmapRow(r HeatmapRow) {
	if c == nil || c.heatmap == nil {
		return
	}
	c.heatmap.record(r)
}

// MarkPhase snapshots every counter under a phase label; core marks
// replay quartiles so lpstats can show how counts accrued across a run.
func (c *Collector) MarkPhase(label string) {
	if c == nil {
		return
	}
	p := PhaseSnapshot{Label: label, Clock: c.clock.Load(), Counters: c.reg.CounterValues()}
	c.mu.Lock()
	c.phases = append(c.phases, p)
	c.mu.Unlock()
}

// SetSites attaches the per-site allocation ranking (top sites by bytes);
// core computes it during an observed replay.
func (c *Collector) SetSites(sites []SiteBytes) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.sites = sites
	c.mu.Unlock()
}

// Snapshot freezes the collector's state for export. The collector
// remains usable; snapshots are cheap relative to a replay.
func (c *Collector) Snapshot() *Snapshot {
	if c == nil {
		return nil
	}
	c.mu.Lock()
	phases := make([]PhaseSnapshot, len(c.phases))
	copy(phases, c.phases)
	sites := make([]SiteBytes, len(c.sites))
	copy(sites, c.sites)
	var predSites []PredSite
	if len(c.predSites) > 0 {
		predSites = make([]PredSite, len(c.predSites))
		copy(predSites, c.predSites)
	}
	c.mu.Unlock()

	s := &Snapshot{
		Schema:     SnapshotSchema,
		Label:      c.Label,
		Clock:      c.clock.Load(),
		Counters:   c.reg.CounterValues(),
		Gauges:     c.reg.GaugeValues(),
		Histograms: c.reg.HistogramValues(),
		Timings:    c.reg.TimingValues(),
		Phases:     phases,
		Sites:      sites,
		PredSites:  predSites,
	}
	if c.timeline != nil {
		s.Timeline = c.timeline.Samples()
		s.TimelineInterval = c.timeline.Interval()
	}
	if c.heatmap != nil {
		s.Heatmap = c.heatmap.snapshot()
	}
	if c.mem != nil {
		s.Events = EventSummary{
			Counts:  c.mem.Counts(),
			Recent:  c.mem.Recent(),
			Dropped: c.mem.Dropped(),
		}
	}
	return s
}

// GaugeSnapshot is the exported form of a Gauge.
type GaugeSnapshot struct {
	Value int64 `json:"value"`
	Max   int64 `json:"max"`
}

// PhaseSnapshot is a labeled counter snapshot taken mid-run.
type PhaseSnapshot struct {
	Label    string           `json:"label"`
	Clock    int64            `json:"clock"`
	Counters map[string]int64 `json:"counters"`
}

// SiteBytes ranks one allocation site by volume.
type SiteBytes struct {
	Site   string `json:"site"` // rendered call-chain
	Allocs int64  `json:"allocs"`
	Bytes  int64  `json:"bytes"`
}

// EventSummary is the exported form of the event stream: exact per-kind
// totals plus the retained raw window.
type EventSummary struct {
	Counts  map[string]int64 `json:"counts,omitempty"`
	Recent  []Event          `json:"recent,omitempty"`
	Dropped int64            `json:"dropped,omitempty"`
}

// SnapshotSchema is the current snapshot wire-format version. ReadJSON
// rejects files that do not carry it, so format drift fails loudly
// instead of silently decoding zero values.
const SnapshotSchema = 1

// Snapshot is a complete, serializable view of one observed run. It is
// what `lpsim -obs` writes and `lpstats` renders.
type Snapshot struct {
	Schema    int    `json:"schema"`
	Label     string `json:"label,omitempty"`
	Program   string `json:"program,omitempty"`
	Allocator string `json:"allocator,omitempty"`
	Clock     int64  `json:"clock"` // total bytes allocated

	Counters   map[string]int64             `json:"counters,omitempty"`
	Gauges     map[string]GaugeSnapshot     `json:"gauges,omitempty"`
	Histograms map[string]HistogramSnapshot `json:"histograms,omitempty"`
	// Timings are wall-clock duration aggregates (engine cell timings);
	// unlike every other family they are machine-dependent, so regression
	// gates should not threshold them.
	Timings map[string]TimingSnapshot `json:"timings,omitempty"`

	Timeline         []Sample `json:"timeline,omitempty"`
	TimelineInterval int64    `json:"timeline_interval,omitempty"`

	// Heatmap is the address-space occupancy heatmap; non-nil exactly
	// when the replay ran with the heap-topology scanner enabled (a
	// scanned run that never sampled still carries an empty heatmap, so
	// "no fragmentation" and "scanner off" stay distinguishable).
	Heatmap *Heatmap `json:"heatmap,omitempty"`

	Events EventSummary    `json:"events"`
	Phases []PhaseSnapshot `json:"phases,omitempty"`
	Sites  []SiteBytes     `json:"sites,omitempty"`
	// PredSites ranks allocation sites by misprediction volume (false
	// positives by byte-lifetime cost, then false negatives); empty when
	// the replay carried no prediction-quality tracking.
	PredSites []PredSite `json:"pred_sites,omitempty"`
}
