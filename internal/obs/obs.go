// Package obs is the reproduction's observability subsystem: named atomic
// counters and gauges, fixed-bucket histograms, a byte-clock timeline
// sampler, and a structured event sink, bundled behind a Collector that
// the allocator simulators and the core replay loops stream into.
//
// The paper's tables are single end-of-run aggregates; obs explains *how*
// a run got its numbers — first-fit search lengths over time, arena
// reuse/overflow events, heap high-water trajectories. Everything here is
// zero-dependency (stdlib only) and designed so that the disabled path is
// free: allocators hold a nil observer and skip every hook with one
// pointer compare, and core's replay loops add a single predictable
// branch per event when no Collector is attached.
//
// Time is measured in *bytes allocated* (the paper's clock), never wall
// time, so every run is deterministic and comparable across machines.
//
// Typical use:
//
//	col := obs.NewCollector(obs.Options{Label: "gawk/arena"})
//	res, _ := core.RunSim(tr, heapsim.NewArena(), pred, col)
//	obs.WriteJSON(f, res.Obs) // render later with cmd/lpstats
package obs

import (
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. The zero value is
// ready to use; all methods are safe for concurrent use.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n may be any sign, but counters are conventionally
// monotonic).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an instantaneous value that also remembers its high-water
// mark. The zero value is ready to use; safe for concurrent use.
type Gauge struct {
	v   atomic.Int64
	max atomic.Int64
}

// Set records the current value, updating the maximum.
func (g *Gauge) Set(v int64) {
	g.v.Store(v)
	for {
		m := g.max.Load()
		if v <= m || g.max.CompareAndSwap(m, v) {
			return
		}
	}
}

// Value returns the last value set.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Max returns the high-water mark.
func (g *Gauge) Max() int64 { return g.max.Load() }

// Registry is a name-keyed set of counters, gauges, and histograms.
// Lookup is create-on-demand so instrumented code never needs a
// registration phase; handles should be resolved once and cached on hot
// paths (map lookups are mutex-guarded).
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	timings  map[string]*Timing
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		timings:  make(map[string]*Timing),
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Log2Histogram returns the named log2-bucketed histogram, creating it
// with the given bucket count on first use.
func (r *Registry) Log2Histogram(name string, buckets int) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = NewLog2Histogram(buckets)
		r.hists[name] = h
	}
	return h
}

// LinearHistogram returns the named linearly-bucketed histogram, creating
// it with the given geometry on first use.
func (r *Registry) LinearHistogram(name string, width int64, buckets int) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		h = NewLinearHistogram(width, buckets)
		r.hists[name] = h
	}
	return h
}

// CounterValues returns a snapshot of all counters.
func (r *Registry) CounterValues() map[string]int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]int64, len(r.counters))
	for name, c := range r.counters {
		out[name] = c.Value()
	}
	return out
}

// GaugeValues returns a snapshot of all gauges.
func (r *Registry) GaugeValues() map[string]GaugeSnapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]GaugeSnapshot, len(r.gauges))
	for name, g := range r.gauges {
		out[name] = GaugeSnapshot{Value: g.Value(), Max: g.Max()}
	}
	return out
}

// HistogramValues returns a snapshot of all histograms.
func (r *Registry) HistogramValues() map[string]HistogramSnapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]HistogramSnapshot, len(r.hists))
	for name, h := range r.hists {
		out[name] = h.Snapshot()
	}
	return out
}

// Names returns all metric names (counters, gauges, histograms, timings),
// sorted.
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.counters)+len(r.gauges)+len(r.hists)+len(r.timings))
	for n := range r.counters {
		names = append(names, n)
	}
	for n := range r.gauges {
		names = append(names, n)
	}
	for n := range r.hists {
		names = append(names, n)
	}
	for n := range r.timings {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}
