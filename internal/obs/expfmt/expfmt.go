// Package expfmt renders obs snapshots in the Prometheus text exposition
// format (version 0.0.4) and parses that format back, so cmd/lpserve can
// expose live collectors to any scraper and tests can assert exact
// round-trips. Every metric is prefixed lp_, dots in obs names become
// underscores, and the snapshot's program/allocator tag each sample as
// labels.
//
// The mapping:
//
//   - the bytes-allocated clock  → lp_clock_bytes (counter)
//   - counters                   → lp_<name> (counter)
//   - gauges                     → lp_<name> (gauge) and lp_<name>_max (gauge)
//   - histograms                 → lp_<name> (histogram) with cumulative
//     le buckets from the obs bucket upper bounds, plus _sum and _count
//   - exact event totals         → lp_events_total{kind="..."} (counter)
//   - dropped raw events         → lp_obs_dropped_events (counter)
//   - per-site mispredictions    → lp_pred_site_fp_bytes,
//     lp_pred_site_fp_cost_bytelife, lp_pred_site_fn_bytes, each with a
//     site="..." label per attributed call-chain
//   - address-space heatmap      → lp_heap_heatmap_bins / _rows (always
//     present when the heap scanner ran, even with zero rows) plus
//     lp_heap_heatmap_extent_bytes and
//     lp_heap_heatmap_live_bytes{bin="..."} from the freshest row
//
// Rendering is canonical — families sorted by name, label keys sorted,
// shortest float formatting — so Write → Parse → WriteFamilies reproduces
// the input byte for byte. That property is what lets lpserve's /metrics
// be verified exactly mid-replay.
package expfmt

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"

	"repro/internal/obs"
)

// Metric is one sample line: an optional family suffix (histograms emit
// _bucket/_sum/_count under their family name), its labels, and a value.
type Metric struct {
	Suffix string // "", "_bucket", "_sum", "_count"
	Labels map[string]string
	Value  float64
}

// Family is one exposition family: a # HELP line, a # TYPE line, and the
// family's samples in order.
type Family struct {
	Name    string // full exposition name, e.g. "lp_firstfit_search_len"
	Type    string // "counter", "gauge", or "histogram"
	Help    string
	Metrics []Metric
}

// MetricName converts an obs metric name to its exposition name:
// lp_ prefix, every character outside [a-zA-Z0-9_] replaced with _.
func MetricName(name string) string {
	var b strings.Builder
	b.WriteString("lp_")
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z',
			r >= '0' && r <= '9', r == '_':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// baseLabels builds the label set shared by every sample of a snapshot.
func baseLabels(s *obs.Snapshot, extra map[string]string) map[string]string {
	labels := make(map[string]string, 2+len(extra))
	if s.Program != "" {
		labels["program"] = s.Program
	}
	if s.Allocator != "" {
		labels["allocator"] = s.Allocator
	}
	for k, v := range extra {
		labels[k] = v
	}
	return labels
}

// withLabel copies a label set and adds one more pair.
func withLabel(labels map[string]string, k, v string) map[string]string {
	out := make(map[string]string, len(labels)+1)
	for lk, lv := range labels {
		out[lk] = lv
	}
	out[k] = v
	return out
}

// Families converts a snapshot into exposition families, sorted by name.
// The extra labels (e.g. a job id) are attached to every sample on top of
// the snapshot's program/allocator.
func Families(s *obs.Snapshot, extra map[string]string) []Family {
	if s == nil {
		return nil
	}
	labels := baseLabels(s, extra)
	fams := make([]Family, 0, 2+len(s.Counters)+2*len(s.Gauges)+len(s.Histograms))

	fams = append(fams, Family{
		Name: "lp_clock_bytes", Type: "counter",
		Help:    "bytes allocated so far (the paper's clock)",
		Metrics: []Metric{{Labels: labels, Value: float64(s.Clock)}},
	})

	for name, v := range s.Counters {
		fams = append(fams, Family{
			Name: MetricName(name), Type: "counter",
			Help:    "obs counter " + name,
			Metrics: []Metric{{Labels: labels, Value: float64(v)}},
		})
	}
	for name, g := range s.Gauges {
		fams = append(fams,
			Family{
				Name: MetricName(name), Type: "gauge",
				Help:    "obs gauge " + name,
				Metrics: []Metric{{Labels: labels, Value: float64(g.Value)}},
			},
			Family{
				Name: MetricName(name) + "_max", Type: "gauge",
				Help:    "obs gauge " + name + " high-water mark",
				Metrics: []Metric{{Labels: labels, Value: float64(g.Max)}},
			})
	}
	for name, h := range s.Histograms {
		fams = append(fams, histogramFamily(name, h, labels))
	}
	for name, t := range s.Timings {
		// Wall-clock timings render as a summary-style trio; they are the
		// one machine-dependent family, so scrapers should treat them as
		// operational telemetry, not reproduction results.
		fams = append(fams,
			Family{
				Name: MetricName(name) + "_count", Type: "counter",
				Help:    "obs timing " + name + " observation count",
				Metrics: []Metric{{Labels: labels, Value: float64(t.Count)}},
			},
			Family{
				Name: MetricName(name) + "_sum_us", Type: "counter",
				Help:    "obs timing " + name + " total wall-clock microseconds",
				Metrics: []Metric{{Labels: labels, Value: float64(t.SumMicros)}},
			},
			Family{
				Name: MetricName(name) + "_max_us", Type: "gauge",
				Help:    "obs timing " + name + " largest single observation (us)",
				Metrics: []Metric{{Labels: labels, Value: float64(t.MaxMicros)}},
			})
	}
	if len(s.Events.Counts) > 0 {
		kinds := make([]string, 0, len(s.Events.Counts))
		for k := range s.Events.Counts {
			kinds = append(kinds, k)
		}
		sort.Strings(kinds)
		ms := make([]Metric, 0, len(kinds))
		for _, k := range kinds {
			ms = append(ms, Metric{
				Labels: withLabel(labels, "kind", k),
				Value:  float64(s.Events.Counts[k]),
			})
		}
		fams = append(fams, Family{
			Name: "lp_events_total", Type: "counter",
			Help: "exact structured replay event totals by kind", Metrics: ms,
		})
	}
	// Sink overflow is exposed unconditionally so scrapers can alert on a
	// truncated raw-event window instead of discovering it by omission.
	fams = append(fams, Family{
		Name: "lp_obs_dropped_events", Type: "counter",
		Help:    "raw events dropped from the collector's bounded event window",
		Metrics: []Metric{{Labels: labels, Value: float64(s.Events.Dropped)}},
	})
	if s.Heatmap != nil {
		// The heatmap families render whenever the scanner ran — zero rows
		// expose as zeros, not absence, matching the dropped-events
		// convention. The per-bin family carries the freshest row so a live
		// scrape shows the current address-space occupancy profile.
		fams = append(fams,
			Family{
				Name: "lp_heap_heatmap_bins", Type: "gauge",
				Help:    "address-space heatmap column count",
				Metrics: []Metric{{Labels: labels, Value: float64(s.Heatmap.Bins)}},
			},
			Family{
				Name: "lp_heap_heatmap_rows", Type: "counter",
				Help:    "address-space heatmap rows recorded so far",
				Metrics: []Metric{{Labels: labels, Value: float64(len(s.Heatmap.Rows))}},
			})
		if n := len(s.Heatmap.Rows); n > 0 {
			last := s.Heatmap.Rows[n-1]
			ms := make([]Metric, 0, len(last.Cells))
			for i, c := range last.Cells {
				ms = append(ms, Metric{
					Labels: withLabel(labels, "bin", strconv.Itoa(i)),
					Value:  float64(c),
				})
			}
			fams = append(fams,
				Family{
					Name: "lp_heap_heatmap_extent_bytes", Type: "gauge",
					Help:    "packed address-space bytes the latest heatmap row covers",
					Metrics: []Metric{{Labels: labels, Value: float64(last.Extent)}},
				},
				Family{
					Name: "lp_heap_heatmap_live_bytes", Type: "gauge",
					Help:    "live-block bytes per address-space bin in the latest heatmap row",
					Metrics: ms,
				})
		}
	}
	if len(s.PredSites) > 0 {
		fp := make([]Metric, 0, len(s.PredSites))
		cost := make([]Metric, 0, len(s.PredSites))
		fn := make([]Metric, 0, len(s.PredSites))
		for _, ps := range s.PredSites {
			l := withLabel(labels, "site", ps.Site)
			fp = append(fp, Metric{Labels: l, Value: float64(ps.FPBytes)})
			cost = append(cost, Metric{Labels: l, Value: float64(ps.FPCost)})
			fn = append(fn, Metric{Labels: l, Value: float64(ps.FNBytes)})
		}
		fams = append(fams,
			Family{
				Name: "lp_pred_site_fp_bytes", Type: "counter",
				Help:    "bytes mispredicted short (lived long) by allocation site",
				Metrics: fp,
			},
			Family{
				Name: "lp_pred_site_fp_cost_bytelife", Type: "counter",
				Help:    "false-positive byte-lifetime cost (size x lifetime past threshold) by allocation site",
				Metrics: cost,
			},
			Family{
				Name: "lp_pred_site_fn_bytes", Type: "counter",
				Help:    "bytes mispredicted long (died short) by allocation site",
				Metrics: fn,
			})
	}

	sort.Slice(fams, func(i, j int) bool { return fams[i].Name < fams[j].Name })
	return fams
}

// histogramFamily renders an obs histogram as a Prometheus histogram:
// cumulative le buckets at each obs bucket's inclusive upper bound
// (values are integral, so le = hi is exact), a +Inf bucket absorbing the
// overflow, then _sum and _count. Empty buckets are skipped — the
// cumulative counts make them redundant.
func histogramFamily(name string, h obs.HistogramSnapshot, labels map[string]string) Family {
	ms := make([]Metric, 0, len(h.Counts)+3)
	cum := int64(0)
	for i, c := range h.Counts {
		cum += c
		if c == 0 {
			continue
		}
		_, hi := h.BucketBounds(i)
		ms = append(ms, Metric{
			Suffix: "_bucket",
			Labels: withLabel(labels, "le", strconv.FormatInt(hi, 10)),
			Value:  float64(cum),
		})
	}
	// A live snapshot reads each atomic independently, so Count can lag
	// the per-bucket totals mid-replay; derive +Inf from the same bucket
	// counts (plus overflow) and clamp so the histogram stays monotone,
	// with _count equal to the +Inf bucket as the format requires.
	inf := cum + h.Overflow
	if h.Count > inf {
		inf = h.Count
	}
	ms = append(ms,
		Metric{Suffix: "_bucket", Labels: withLabel(labels, "le", "+Inf"), Value: float64(inf)},
		Metric{Suffix: "_sum", Labels: labels, Value: float64(h.Sum)},
		Metric{Suffix: "_count", Labels: labels, Value: float64(inf)},
	)
	return Family{
		Name: MetricName(name), Type: "histogram",
		Help:    "obs histogram " + name + " (" + h.Kind + " buckets)",
		Metrics: ms,
	}
}

// Gather merges several family sets (e.g. one per lpserve job) into one:
// families with the same name are concatenated in input order under the
// first occurrence's type and help, and the result is sorted by name.
// Merging a counter family into a gauge family (or any type mismatch) is
// an error — it would produce an exposition scrape rejects.
func Gather(sets ...[]Family) ([]Family, error) {
	byName := make(map[string]*Family)
	order := make([]string, 0)
	for _, set := range sets {
		for _, f := range set {
			got, ok := byName[f.Name]
			if !ok {
				cp := f
				cp.Metrics = append([]Metric(nil), f.Metrics...)
				byName[f.Name] = &cp
				order = append(order, f.Name)
				continue
			}
			if got.Type != f.Type {
				return nil, fmt.Errorf("expfmt: family %s gathered as both %s and %s", f.Name, got.Type, f.Type)
			}
			got.Metrics = append(got.Metrics, f.Metrics...)
		}
	}
	sort.Strings(order)
	out := make([]Family, 0, len(order))
	for _, name := range order {
		out = append(out, *byName[name])
	}
	return out, nil
}

// formatValue renders a sample value in the canonical (shortest
// round-trippable) form.
func formatValue(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	v = strings.ReplaceAll(v, `"`, `\"`)
	return v
}

// WriteFamilies renders families in the given order, each as # HELP,
// # TYPE, then its samples with label keys sorted.
func WriteFamilies(w io.Writer, fams []Family) error {
	var b strings.Builder
	for _, f := range fams {
		b.Reset()
		if f.Help != "" {
			fmt.Fprintf(&b, "# HELP %s %s\n", f.Name, f.Help)
		}
		fmt.Fprintf(&b, "# TYPE %s %s\n", f.Name, f.Type)
		for _, m := range f.Metrics {
			b.WriteString(f.Name)
			b.WriteString(m.Suffix)
			if len(m.Labels) > 0 {
				keys := make([]string, 0, len(m.Labels))
				for k := range m.Labels {
					keys = append(keys, k)
				}
				sort.Strings(keys)
				b.WriteByte('{')
				for i, k := range keys {
					if i > 0 {
						b.WriteByte(',')
					}
					fmt.Fprintf(&b, `%s="%s"`, k, escapeLabel(m.Labels[k]))
				}
				b.WriteByte('}')
			}
			b.WriteByte(' ')
			b.WriteString(formatValue(m.Value))
			b.WriteByte('\n')
		}
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

// Write renders one snapshot in the exposition format.
func Write(w io.Writer, s *obs.Snapshot) error {
	if s == nil {
		return fmt.Errorf("expfmt: nil snapshot")
	}
	return WriteFamilies(w, Families(s, nil))
}
