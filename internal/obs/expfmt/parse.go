package expfmt

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// Parse reads the text exposition format back into families. It is strict
// about the structure this package writes — every sample must follow a
// # TYPE line for its family, histogram samples must use the family's
// _bucket/_sum/_count suffixes — so tests can assert that a scrape
// re-renders byte-for-byte via WriteFamilies.
func Parse(r io.Reader) ([]Family, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64<<10), 1<<20)
	var fams []Family
	var cur *Family
	pendingHelp := make(map[string]string)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := sc.Text()
		if strings.TrimSpace(line) == "" {
			continue
		}
		if strings.HasPrefix(line, "# HELP ") {
			rest := strings.TrimPrefix(line, "# HELP ")
			name, help, _ := strings.Cut(rest, " ")
			pendingHelp[name] = help
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			rest := strings.TrimPrefix(line, "# TYPE ")
			name, typ, ok := strings.Cut(rest, " ")
			if !ok {
				return nil, fmt.Errorf("expfmt: line %d: malformed TYPE line", lineNo)
			}
			switch typ {
			case "counter", "gauge", "histogram":
			default:
				return nil, fmt.Errorf("expfmt: line %d: unsupported type %q", lineNo, typ)
			}
			fams = append(fams, Family{Name: name, Type: typ, Help: pendingHelp[name]})
			delete(pendingHelp, name)
			cur = &fams[len(fams)-1]
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue // other comments are legal exposition content
		}
		m, name, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("expfmt: line %d: %w", lineNo, err)
		}
		if cur == nil {
			return nil, fmt.Errorf("expfmt: line %d: sample %s before any # TYPE", lineNo, name)
		}
		suffix, ok := familySuffix(cur, name)
		if !ok {
			return nil, fmt.Errorf("expfmt: line %d: sample %s does not belong to family %s", lineNo, name, cur.Name)
		}
		m.Suffix = suffix
		cur.Metrics = append(cur.Metrics, m)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("expfmt: reading exposition: %w", err)
	}
	return fams, nil
}

// familySuffix checks a sample name against the current family and
// returns the sample's suffix within it.
func familySuffix(f *Family, name string) (string, bool) {
	if name == f.Name {
		return "", true
	}
	if f.Type == "histogram" && strings.HasPrefix(name, f.Name) {
		switch suffix := name[len(f.Name):]; suffix {
		case "_bucket", "_sum", "_count":
			return suffix, true
		}
	}
	return "", false
}

// parseSample parses one `name{k="v",...} value` line.
func parseSample(line string) (Metric, string, error) {
	m := Metric{}
	rest := line
	var name string
	if i := strings.IndexByte(rest, '{'); i >= 0 {
		name = rest[:i]
		rest = rest[i+1:]
		labels, tail, err := parseLabels(rest)
		if err != nil {
			return m, name, err
		}
		m.Labels = labels
		rest = tail
	} else {
		var ok bool
		name, rest, ok = strings.Cut(rest, " ")
		if !ok {
			return m, name, fmt.Errorf("sample %q has no value", line)
		}
	}
	val := strings.TrimSpace(rest)
	v, err := strconv.ParseFloat(val, 64) // accepts +Inf/-Inf/NaN spellings
	if err != nil {
		return m, name, fmt.Errorf("bad sample value %q: %v", val, err)
	}
	m.Value = v
	return m, name, nil
}

// parseLabels parses `k="v",...}` (the opening brace already consumed)
// and returns the labels plus the remainder of the line.
func parseLabels(s string) (map[string]string, string, error) {
	labels := make(map[string]string)
	for {
		s = strings.TrimLeft(s, ",")
		if strings.HasPrefix(s, "}") {
			return labels, strings.TrimPrefix(s, "}"), nil
		}
		eq := strings.IndexByte(s, '=')
		if eq < 0 {
			return nil, "", fmt.Errorf("label without '=' in %q", s)
		}
		key := s[:eq]
		s = s[eq+1:]
		if !strings.HasPrefix(s, `"`) {
			return nil, "", fmt.Errorf("label %s value is not quoted", key)
		}
		s = s[1:]
		var b strings.Builder
		i := 0
		for ; i < len(s); i++ {
			c := s[i]
			if c == '\\' {
				if i+1 >= len(s) {
					return nil, "", fmt.Errorf("label %s value ends mid-escape", key)
				}
				i++
				switch s[i] {
				case 'n':
					b.WriteByte('\n')
				case '\\', '"':
					b.WriteByte(s[i])
				default:
					return nil, "", fmt.Errorf("label %s has unknown escape \\%c", key, s[i])
				}
				continue
			}
			if c == '"' {
				break
			}
			b.WriteByte(c)
		}
		if i >= len(s) {
			return nil, "", fmt.Errorf("label %s value is unterminated", key)
		}
		labels[key] = b.String()
		s = s[i+1:]
	}
}
