package expfmt_test

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/obs/expfmt"
	"repro/internal/synth"
)

// buildSnapshot exercises every snapshot field the exposition renders.
func buildSnapshot() *obs.Snapshot {
	c := obs.NewCollector(obs.Options{Label: "gawk/arena", TimelineInterval: 100})
	c.Counter("arena.resets").Add(7)
	c.Counter("firstfit.splits").Add(3)
	c.Gauge("arena.pinned").Set(2)
	c.Gauge("arena.pinned").Set(1)
	h := c.Log2Histogram("arena.alloc_size", 8)
	for _, v := range []int64{8, 16, 16, 300} {
		h.Observe(v)
	}
	lh := c.LinearHistogram("arena.scan_len", 1, 4)
	lh.Observe(2)
	lh.Observe(1000) // overflow
	c.SetClock(250)
	c.Emit(obs.EvArenaReuse, 3)
	c.Emit(obs.EvHeapGrow, 4096)
	c.ObserveTiming("engine_cell", 1500*time.Microsecond)
	c.ObserveTiming("engine_cell", 500*time.Microsecond)
	c.Counter("pred.fp_bytes").Add(64)
	c.SetPredSites([]obs.PredSite{
		{Site: "main>parse>alloc", FPObjects: 1, FPBytes: 64, FPCost: 2048},
		{Site: "main>eval>alloc", FNObjects: 2, FNBytes: 32},
	})
	s := c.Snapshot()
	s.Program = "gawk"
	s.Allocator = "arena"
	return s
}

func TestWriteShape(t *testing.T) {
	var buf bytes.Buffer
	if err := expfmt.Write(&buf, buildSnapshot()); err != nil {
		t.Fatalf("Write: %v", err)
	}
	text := buf.String()
	for _, want := range []string{
		`# TYPE lp_clock_bytes counter`,
		`lp_clock_bytes{allocator="arena",program="gawk"} 250`,
		`lp_arena_resets{allocator="arena",program="gawk"} 7`,
		`# TYPE lp_arena_pinned gauge`,
		`lp_arena_pinned{allocator="arena",program="gawk"} 1`,
		`lp_arena_pinned_max{allocator="arena",program="gawk"} 2`,
		`# TYPE lp_arena_alloc_size histogram`,
		`lp_arena_alloc_size_bucket{allocator="arena",le="+Inf",program="gawk"} 4`,
		`lp_arena_alloc_size_sum{allocator="arena",program="gawk"} 340`,
		`lp_arena_alloc_size_count{allocator="arena",program="gawk"} 4`,
		`lp_events_total{allocator="arena",kind="arena_reuse",program="gawk"} 1`,
		// Overflowed values land in +Inf only: 2 observed, 1 under le=2.
		`lp_arena_scan_len_bucket{allocator="arena",le="2",program="gawk"} 1`,
		`lp_arena_scan_len_bucket{allocator="arena",le="+Inf",program="gawk"} 2`,
		// Wall-clock timings render as a count/sum/max trio.
		`# TYPE lp_engine_cell_count counter`,
		`lp_engine_cell_count{allocator="arena",program="gawk"} 2`,
		`lp_engine_cell_sum_us{allocator="arena",program="gawk"} 2000`,
		`# TYPE lp_engine_cell_max_us gauge`,
		`lp_engine_cell_max_us{allocator="arena",program="gawk"} 1500`,
		// Sink overflow is always exposed, even at zero.
		`# TYPE lp_obs_dropped_events counter`,
		`lp_obs_dropped_events{allocator="arena",program="gawk"} 0`,
		// Per-site misprediction attribution carries a site label.
		`lp_pred_fp_bytes{allocator="arena",program="gawk"} 64`,
		`lp_pred_site_fp_bytes{allocator="arena",program="gawk",site="main>parse>alloc"} 64`,
		`lp_pred_site_fp_cost_bytelife{allocator="arena",program="gawk",site="main>parse>alloc"} 2048`,
		`lp_pred_site_fn_bytes{allocator="arena",program="gawk",site="main>eval>alloc"} 32`,
	} {
		if !strings.Contains(text, want+"\n") {
			t.Errorf("exposition missing line %q\n--- got ---\n%s", want, text)
		}
	}
	if strings.Contains(text, "lp_lp_") {
		t.Error("double lp_ prefix in exposition")
	}
}

// TestRoundTripExact is the acceptance property: Write → Parse →
// WriteFamilies reproduces the exposition byte for byte.
func TestRoundTripExact(t *testing.T) {
	roundTrip(t, buildSnapshot())
}

func roundTrip(t *testing.T, s *obs.Snapshot) {
	t.Helper()
	var first bytes.Buffer
	if err := expfmt.Write(&first, s); err != nil {
		t.Fatalf("Write: %v", err)
	}
	fams, err := expfmt.Parse(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	var second bytes.Buffer
	if err := expfmt.WriteFamilies(&second, fams); err != nil {
		t.Fatalf("WriteFamilies: %v", err)
	}
	if first.String() != second.String() {
		t.Errorf("round trip not exact:\n--- wrote ---\n%s--- re-rendered ---\n%s",
			first.String(), second.String())
	}
}

// TestRoundTripMidReplay snapshots a collector concurrently with a live
// replay (lpserve's /metrics situation) and requires the same exact
// round-trip. Run under -race this also proves snapshotting mid-replay
// is safe.
func TestRoundTripMidReplay(t *testing.T) {
	col := obs.NewCollector(obs.Options{Label: "mid", TimelineInterval: 4 << 10})
	done := make(chan error, 1)
	go func() {
		m := synth.ByName("gawk")
		_, err := core.RunSimStream(m,
			synth.Config{Input: synth.Test, Seed: 7, Scale: 0.02},
			core.MustNewAllocator("arena"), nil, col)
		done <- err
	}()
	for i := 0; ; i++ {
		select {
		case err := <-done:
			if err != nil {
				t.Fatalf("RunSimStream: %v", err)
			}
			// Final pass over the finished run.
			roundTrip(t, col.Snapshot())
			return
		default:
			s := col.Snapshot()
			s.Program, s.Allocator = "gawk", "arena"
			roundTrip(t, s)
		}
	}
}

func TestGatherMergesJobs(t *testing.T) {
	a, b := buildSnapshot(), buildSnapshot()
	b.Program = "perl"
	fa := expfmt.Families(a, map[string]string{"job": "1"})
	fb := expfmt.Families(b, map[string]string{"job": "2"})
	fams, err := expfmt.Gather(fa, fb)
	if err != nil {
		t.Fatalf("Gather: %v", err)
	}
	var buf bytes.Buffer
	if err := expfmt.WriteFamilies(&buf, fams); err != nil {
		t.Fatalf("WriteFamilies: %v", err)
	}
	text := buf.String()
	if strings.Count(text, "# TYPE lp_clock_bytes counter") != 1 {
		t.Errorf("merged family emitted more than one TYPE line:\n%s", text)
	}
	if !strings.Contains(text, `job="1"`) || !strings.Contains(text, `job="2"`) {
		t.Errorf("merged exposition lost job labels:\n%s", text)
	}
	// Merged output still round-trips exactly.
	parsed, err := expfmt.Parse(strings.NewReader(text))
	if err != nil {
		t.Fatalf("Parse(merged): %v", err)
	}
	var again bytes.Buffer
	if err := expfmt.WriteFamilies(&again, parsed); err != nil {
		t.Fatalf("WriteFamilies(parsed): %v", err)
	}
	if again.String() != text {
		t.Error("merged exposition did not round-trip exactly")
	}
}

func TestGatherTypeClash(t *testing.T) {
	_, err := expfmt.Gather(
		[]Family{{Name: "lp_x", Type: "counter"}},
		[]Family{{Name: "lp_x", Type: "gauge"}},
	)
	if err == nil {
		t.Error("type clash accepted")
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	for name, text := range map[string]string{
		"sample before TYPE": "lp_x 1\n",
		"bad value":          "# TYPE lp_x counter\nlp_x one\n",
		"foreign sample":     "# TYPE lp_x counter\nlp_y 1\n",
		"unterminated label": "# TYPE lp_x counter\nlp_x{a=\"b 1\n",
		"unsupported type":   "# TYPE lp_x summary\nlp_x 1\n",
	} {
		if _, err := expfmt.Parse(strings.NewReader(text)); err == nil {
			t.Errorf("%s: accepted %q", name, text)
		}
	}
}

func TestParseLabelEscapes(t *testing.T) {
	in := "# TYPE lp_x counter\n" + `lp_x{p="a\\b\"c\nd"} 1` + "\n"
	fams, err := expfmt.Parse(strings.NewReader(in))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	got := fams[0].Metrics[0].Labels["p"]
	if want := "a\\b\"c\nd"; got != want {
		t.Errorf("unescaped label = %q, want %q", got, want)
	}
	var buf bytes.Buffer
	if err := expfmt.WriteFamilies(&buf, fams); err != nil {
		t.Fatalf("WriteFamilies: %v", err)
	}
	if buf.String() != in {
		t.Errorf("escape round trip: got %q, want %q", buf.String(), in)
	}
}

func TestMetricName(t *testing.T) {
	for in, want := range map[string]string{
		"firstfit.search_len": "lp_firstfit_search_len",
		"arena.pinned":        "lp_arena_pinned",
		"weird-name/2":        "lp_weird_name_2",
	} {
		if got := expfmt.MetricName(in); got != want {
			t.Errorf("MetricName(%q) = %q, want %q", in, got, want)
		}
	}
}

// Family is re-exported for the clash test's literal.
type Family = expfmt.Family

// heatSnapshot builds a heap-scanned snapshot with a populated heatmap.
func heatSnapshot() *obs.Snapshot {
	c := obs.NewCollector(obs.Options{Label: "gawk/firstfit", HeapScan: true, HeatmapBins: 3})
	c.Counter("heap.scan_samples").Add(2)
	c.Gauge("heap.live_payload_bytes").Set(96)
	c.SetClock(200)
	c.RecordHeatmapRow(obs.HeatmapRow{Clock: 100, Extent: 128, Cells: []int64{64, 32, 0}})
	c.RecordHeatmapRow(obs.HeatmapRow{Clock: 200, Extent: 256, Cells: []int64{80, 16, 0}})
	s := c.Snapshot()
	s.Program = "gawk"
	s.Allocator = "firstfit"
	return s
}

func TestHeatmapExposition(t *testing.T) {
	var buf bytes.Buffer
	if err := expfmt.Write(&buf, heatSnapshot()); err != nil {
		t.Fatalf("Write: %v", err)
	}
	text := buf.String()
	for _, want := range []string{
		`# TYPE lp_heap_heatmap_bins gauge`,
		`lp_heap_heatmap_bins{allocator="firstfit",program="gawk"} 3`,
		`# TYPE lp_heap_heatmap_rows counter`,
		`lp_heap_heatmap_rows{allocator="firstfit",program="gawk"} 2`,
		// Extent and per-bin density report the latest row.
		`lp_heap_heatmap_extent_bytes{allocator="firstfit",program="gawk"} 256`,
		`lp_heap_heatmap_live_bytes{allocator="firstfit",bin="0",program="gawk"} 80`,
		`lp_heap_heatmap_live_bytes{allocator="firstfit",bin="1",program="gawk"} 16`,
		`lp_heap_heatmap_live_bytes{allocator="firstfit",bin="2",program="gawk"} 0`,
	} {
		if !strings.Contains(text, want+"\n") {
			t.Errorf("exposition missing line %q\n--- got ---\n%s", want, text)
		}
	}

	// Byte-exact round trip must hold for the new families too.
	fams, err := expfmt.Parse(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	var out bytes.Buffer
	if err := expfmt.WriteFamilies(&out, fams); err != nil {
		t.Fatalf("WriteFamilies: %v", err)
	}
	if out.String() != text {
		t.Error("heatmap families do not round trip byte-exactly")
	}
}

// TestHeatmapExpositionEmpty pins the always-on-zero convention: an
// enabled scanner that never sampled still exposes the bins/rows pair (so
// a scrape can tell "no rows yet" from "scanner off"), but no per-bin or
// extent series.
func TestHeatmapExpositionEmpty(t *testing.T) {
	c := obs.NewCollector(obs.Options{Label: "x", HeapScan: true, HeatmapBins: 5})
	var buf bytes.Buffer
	if err := expfmt.Write(&buf, c.Snapshot()); err != nil {
		t.Fatalf("Write: %v", err)
	}
	text := buf.String()
	for _, want := range []string{
		`lp_heap_heatmap_bins 5`,
		`lp_heap_heatmap_rows 0`,
	} {
		if !strings.Contains(text, want+"\n") {
			t.Errorf("empty-heatmap exposition missing %q\n--- got ---\n%s", want, text)
		}
	}
	for _, absent := range []string{"lp_heap_heatmap_extent_bytes", "lp_heap_heatmap_live_bytes"} {
		if strings.Contains(text, absent) {
			t.Errorf("empty-heatmap exposition carries %s", absent)
		}
	}

	// Scanner off: no lp_heap_heatmap_* families at all.
	var off bytes.Buffer
	if err := expfmt.Write(&off, obs.NewCollector(obs.Options{Label: "x"}).Snapshot()); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if strings.Contains(off.String(), "lp_heap_heatmap") {
		t.Error("scanner-off exposition mentions heatmap families")
	}
}
