package obs

import (
	"bytes"
	"reflect"
	"testing"
)

func TestFlattenPredAndDropped(t *testing.T) {
	s := buildSnapshot()
	m := s.Flatten()
	checks := map[string]float64{
		"pred.tp_objects":                3,
		"pred.fp_objects":                1,
		"pred.threshold_bytes":           32768,
		"pred.threshold_bytes.max":       32768,
		"pred.lifetime_pred_short.count": 1,
		"pred.lifetime_pred_short.sum":   100,
		"obs.dropped_events":             0,
	}
	for name, want := range checks {
		got, ok := m[name]
		if !ok {
			t.Errorf("Flatten missing %q", name)
			continue
		}
		if got != want {
			t.Errorf("Flatten[%q] = %g, want %g", name, got, want)
		}
	}
}

func TestDroppedEventsSurfaced(t *testing.T) {
	c := NewCollector(Options{Label: "tiny", EventCap: 1})
	c.Emit(EvHeapGrow, 1)
	c.Emit(EvHeapGrow, 2)
	c.Emit(EvCoalesce, 3)
	s := c.Snapshot()
	if s.Events.Dropped != 2 {
		t.Errorf("Dropped = %d, want 2", s.Events.Dropped)
	}
	if got := s.Flatten()["obs.dropped_events"]; got != 2 {
		t.Errorf("Flatten[obs.dropped_events] = %g, want 2", got)
	}
	// Per-kind totals stay exact even when the raw window overflows.
	if s.Events.Counts["heap_grow"] != 2 || s.Events.Counts["coalesce"] != 1 {
		t.Errorf("exact counts perturbed by window overflow: %v", s.Events.Counts)
	}
}

func TestSetPredSites(t *testing.T) {
	var nilC *Collector
	nilC.SetPredSites([]PredSite{{Site: "x"}}) // must not panic

	c := NewCollector(Options{})
	if got := c.Snapshot().PredSites; got != nil {
		t.Errorf("PredSites before SetPredSites = %v, want nil", got)
	}
	want := []PredSite{
		{Site: "a", FPObjects: 1, FPBytes: 10, FPCost: 500},
		{Site: "b", FNObjects: 2, FNBytes: 20},
	}
	c.SetPredSites(want)
	got := c.Snapshot().PredSites
	if !reflect.DeepEqual(got, want) {
		t.Errorf("PredSites = %+v, want %+v", got, want)
	}
	// JSON round-trips the attribution exactly.
	var buf bytes.Buffer
	if err := WriteJSON(&buf, c.Snapshot()); err != nil {
		t.Fatalf("WriteJSON: %v", err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatalf("ReadJSON: %v", err)
	}
	if !reflect.DeepEqual(back.PredSites, want) {
		t.Errorf("PredSites after JSON = %+v, want %+v", back.PredSites, want)
	}
}

func TestTimelinePredChannelCSV(t *testing.T) {
	s := &Snapshot{Timeline: []Sample{
		{Clock: 10, PredDecidedObjects: 1, PredCorrectObjects: 1, PredDecidedBytes: 8, PredCorrectBytes: 8},
		{Clock: 20, PredDecidedObjects: 3, PredCorrectObjects: 2, PredDecidedBytes: 24, PredCorrectBytes: 16},
	}}
	var buf bytes.Buffer
	if err := WriteTimelineCSV(&buf, s); err != nil {
		t.Fatalf("WriteTimelineCSV: %v", err)
	}
	got, err := ReadTimelineCSV(&buf)
	if err != nil {
		t.Fatalf("ReadTimelineCSV: %v", err)
	}
	if !reflect.DeepEqual(got, s.Timeline) {
		t.Errorf("pred channel CSV round trip:\n got %+v\nwant %+v", got, s.Timeline)
	}
}
