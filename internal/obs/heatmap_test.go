package obs

import (
	"bytes"
	"reflect"
	"strings"
	"testing"
)

// scanSnapshot builds a snapshot the way a heap-scanned replay would:
// HeapScan on, a few heatmap rows, heap-channel timeline samples.
func scanSnapshot() *Snapshot {
	c := NewCollector(Options{Label: "gawk/firstfit", HeapScan: true, HeatmapBins: 4, TimelineInterval: 100})
	c.SetClock(100)
	c.RecordSample(Sample{
		Clock: 100, LiveBytes: 64, HeapBytes: 128,
		HeapLivePayload: 64, HeapHeaderBytes: 16, HeapInternalFrag: 8,
		HeapExternalFrag: 24, HeapHoleBytes: 16,
		HeapFreeSpans: 3, HeapLargestFreeSpan: 16,
	})
	c.RecordHeatmapRow(HeatmapRow{Clock: 100, Extent: 128, Cells: []int64{32, 24, 16, 16}})
	c.SetClock(200)
	c.RecordHeatmapRow(HeatmapRow{Clock: 200, Extent: 256, Cells: []int64{64, 0, 0, 8}})
	return c.Snapshot()
}

func TestHeapScanDisabledByDefault(t *testing.T) {
	c := NewCollector(Options{Label: "x"})
	if c.HeapScanEnabled() {
		t.Error("HeapScanEnabled true without Options.HeapScan")
	}
	if c.HeatmapBins() != 0 {
		t.Errorf("HeatmapBins = %d without HeapScan, want 0", c.HeatmapBins())
	}
	c.RecordHeatmapRow(HeatmapRow{Clock: 1, Extent: 8, Cells: []int64{8}})
	if s := c.Snapshot(); s.Heatmap != nil {
		t.Error("snapshot of a scanner-off collector carries a heatmap")
	}
	var nilC *Collector
	if nilC.HeapScanEnabled() || nilC.HeatmapBins() != 0 {
		t.Error("nil collector is not inert")
	}
	nilC.RecordHeatmapRow(HeatmapRow{}) // must not panic
}

func TestHeapScanEnabledDefaults(t *testing.T) {
	c := NewCollector(Options{HeapScan: true})
	if !c.HeapScanEnabled() {
		t.Fatal("HeapScanEnabled false with Options.HeapScan")
	}
	if c.HeatmapBins() != DefaultHeatmapBins {
		t.Errorf("HeatmapBins = %d, want default %d", c.HeatmapBins(), DefaultHeatmapBins)
	}
	// An enabled scanner that never sampled still snapshots an empty,
	// non-nil heatmap: "no rows" is distinguishable from "scanner off".
	s := c.Snapshot()
	if s.Heatmap == nil {
		t.Fatal("scanner-on snapshot lost its empty heatmap")
	}
	if s.Heatmap.Bins != DefaultHeatmapBins || len(s.Heatmap.Rows) != 0 {
		t.Errorf("empty heatmap = %+v", s.Heatmap)
	}
}

func TestHeatmapSnapshotIsDeepCopy(t *testing.T) {
	c := NewCollector(Options{HeapScan: true, HeatmapBins: 2})
	c.RecordHeatmapRow(HeatmapRow{Clock: 1, Extent: 4, Cells: []int64{1, 2}})
	s := c.Snapshot()
	s.Heatmap.Rows[0].Cells[0] = 99
	if got := c.Snapshot().Heatmap.Rows[0].Cells[0]; got != 1 {
		t.Errorf("mutating a snapshot leaked into the collector: cell = %d", got)
	}
}

func TestHeatmapRowCap(t *testing.T) {
	c := NewCollector(Options{HeapScan: true, HeatmapBins: 1})
	for i := 0; i < maxHeatmapRows+7; i++ {
		c.RecordHeatmapRow(HeatmapRow{Clock: int64(i), Extent: 1, Cells: []int64{1}})
	}
	rows := c.Snapshot().Heatmap.Rows
	if len(rows) >= maxHeatmapRows {
		t.Fatalf("heatmap grew past the cap: %d rows", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Clock <= rows[i-1].Clock {
			t.Fatalf("halved rows out of order at %d: %d after %d", i, rows[i].Clock, rows[i-1].Clock)
		}
	}
}

func TestHeatmapCellsSum(t *testing.T) {
	s := scanSnapshot()
	if got := s.Heatmap.CellsSum(); got != 32+24+16+16+64+8 {
		t.Errorf("CellsSum = %d", got)
	}
	var nilH *Heatmap
	if nilH.CellsSum() != 0 {
		t.Error("nil heatmap CellsSum != 0")
	}
}

func TestSnapshotJSONCarriesHeatmap(t *testing.T) {
	s := scanSnapshot()
	var buf bytes.Buffer
	if err := WriteJSON(&buf, s); err != nil {
		t.Fatal(err)
	}
	back, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.Heatmap, s.Heatmap) {
		t.Errorf("heatmap did not survive JSON:\nwant %+v\ngot  %+v", s.Heatmap, back.Heatmap)
	}
	if !reflect.DeepEqual(back.Timeline, s.Timeline) {
		t.Errorf("heap-channel timeline did not survive JSON")
	}

	// Scanner-off snapshots must not even mention the key, so old and new
	// files stay byte-compatible.
	off := NewCollector(Options{Label: "x"}).Snapshot()
	buf.Reset()
	if err := WriteJSON(&buf, off); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "heatmap") {
		t.Error("scanner-off snapshot JSON mentions heatmap")
	}
	if strings.Contains(buf.String(), "heap_live_payload") {
		t.Error("scanner-off snapshot JSON mentions heap channel fields")
	}
}

func TestHeatmapCSVRoundTrip(t *testing.T) {
	s := scanSnapshot()
	var buf bytes.Buffer
	if err := WriteHeatmapCSV(&buf, s); err != nil {
		t.Fatal(err)
	}
	back, err := ReadHeatmapCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, s.Heatmap) {
		t.Errorf("heatmap CSV round trip:\nwant %+v\ngot  %+v", s.Heatmap, back)
	}
}

func TestHeatmapCSVHeaderOnly(t *testing.T) {
	// No heatmap at all: header carries just the fixed columns.
	var buf bytes.Buffer
	if err := WriteHeatmapCSV(&buf, &Snapshot{}); err != nil {
		t.Fatal(err)
	}
	if got := strings.TrimSpace(buf.String()); got != "clock,extent" {
		t.Errorf("nil-heatmap CSV = %q, want header only", got)
	}

	// Scanner ran but never sampled: full-width header, zero data rows.
	buf.Reset()
	empty := &Snapshot{Heatmap: &Heatmap{Bins: 3}}
	if err := WriteHeatmapCSV(&buf, empty); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 1 || lines[0] != "clock,extent,bin0,bin1,bin2" {
		t.Errorf("empty-heatmap CSV = %q", buf.String())
	}
	back, err := ReadHeatmapCSV(strings.NewReader(buf.String()))
	if err != nil {
		t.Fatal(err)
	}
	if back.Bins != 3 || len(back.Rows) != 0 {
		t.Errorf("header-only read = %+v", back)
	}
}

func TestHeatmapCSVRejectsGarbage(t *testing.T) {
	for _, in := range []string{"", "a,b\n1,2\n", "clock,extent,bin0\n1,2,x\n"} {
		if _, err := ReadHeatmapCSV(strings.NewReader(in)); err == nil {
			t.Errorf("ReadHeatmapCSV(%q) accepted garbage", in)
		}
	}
}

func TestFlattenHeatmap(t *testing.T) {
	s := scanSnapshot()
	flat := s.Flatten()
	want := map[string]float64{
		"heap.heatmap.bins":      4,
		"heap.heatmap.rows":      2,
		"heap.heatmap.cells_sum": float64(s.Heatmap.CellsSum()),
	}
	for k, v := range want {
		if flat[k] != v {
			t.Errorf("Flatten[%q] = %g, want %g", k, flat[k], v)
		}
	}
	off := NewCollector(Options{Label: "x"}).Snapshot().Flatten()
	for k := range want {
		if _, ok := off[k]; ok {
			t.Errorf("scanner-off Flatten carries %q", k)
		}
	}
}

func TestTimelineCSVHeapChannel(t *testing.T) {
	s := scanSnapshot()
	var buf bytes.Buffer
	if err := WriteTimelineCSV(&buf, s); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(strings.SplitN(buf.String(), "\n", 2)[0], "heap_live_payload") {
		t.Fatalf("timeline CSV header missing heap columns: %q", buf.String())
	}
	back, err := ReadTimelineCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back, s.Timeline) {
		t.Errorf("timeline CSV round trip:\nwant %+v\ngot  %+v", s.Timeline, back)
	}
}
