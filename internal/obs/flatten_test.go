package obs

import (
	"math"
	"testing"
)

func TestFlatten(t *testing.T) {
	s := buildSnapshot()
	m := s.Flatten()
	checks := map[string]float64{
		"clock":                  250,
		"arena.resets":           7,
		"firstfit.splits":        3,
		"arena.pinned":           1,
		"arena.pinned.max":       2,
		"arena.alloc_size.count": 4,
		"arena.alloc_size.sum":   340,
		"arena.alloc_size.mean":  85,
		"arena.alloc_size.max":   300,
		"events.arena_reuse":     1,
		"events.heap_grow":       1,
	}
	for name, want := range checks {
		got, ok := m[name]
		if !ok {
			t.Errorf("Flatten missing %q", name)
			continue
		}
		if math.Abs(got-want) > 1e-9 {
			t.Errorf("Flatten[%q] = %g, want %g", name, got, want)
		}
	}
	if got := (*Snapshot)(nil).Flatten(); len(got) != 0 {
		t.Errorf("nil snapshot flattened to %v", got)
	}
}

func TestFragPeakPct(t *testing.T) {
	s := &Snapshot{Timeline: []Sample{
		{Clock: 1, LiveBytes: 90, HeapBytes: 100}, // 10% frag
		{Clock: 2, LiveBytes: 50, HeapBytes: 200}, // 75% frag — the peak
		{Clock: 3, LiveBytes: 10, HeapBytes: 0},   // ignored: no heap
	}}
	if got := s.FragPeakPct(); math.Abs(got-75) > 1e-9 {
		t.Errorf("FragPeakPct = %g, want 75", got)
	}
	if got := (&Snapshot{}).FragPeakPct(); got != 0 {
		t.Errorf("empty timeline FragPeakPct = %g, want 0", got)
	}
}

func TestCollectorHooks(t *testing.T) {
	var samples []Sample
	var events []Event
	c := NewCollector(Options{
		Label:            "hooked",
		TimelineInterval: 10,
		SampleHook:       func(s Sample) { samples = append(samples, s) },
		EventHook:        func(e Event) { events = append(events, e) },
	})
	c.SetClock(25)
	c.Emit(EvHeapGrow, 4096)
	c.RecordSample(Sample{Clock: 25, LiveBytes: 5})
	if len(samples) != 1 || samples[0].Clock != 25 {
		t.Errorf("sample hook saw %v, want one sample at clock 25", samples)
	}
	if len(events) != 1 || events[0].Kind != EvHeapGrow || events[0].Clock != 25 {
		t.Errorf("event hook saw %v, want one heap_grow at clock 25", events)
	}
	// The hooks feed the sink and timeline as usual.
	snap := c.Snapshot()
	if snap.Events.Counts["heap_grow"] != 1 || len(snap.Timeline) != 1 {
		t.Errorf("hooked collector snapshot lost data: %+v", snap)
	}
}
