package obs

import (
	"math"
	"testing"
)

func TestJainIndex(t *testing.T) {
	cases := []struct {
		name   string
		shares []float64
		want   float64
	}{
		{"equal", []float64{5, 5, 5, 5}, 1},
		{"one-takes-all", []float64{9, 0, 0}, 1.0 / 3},
		{"empty", nil, 1},
		{"all-zero", []float64{0, 0}, 1},
		{"single", []float64{42}, 1},
		{"two-to-one", []float64{2, 1}, 9.0 / 10},
	}
	for _, c := range cases {
		if got := JainIndex(c.shares); math.Abs(got-c.want) > 1e-12 {
			t.Errorf("%s: JainIndex(%v) = %g, want %g", c.name, c.shares, got, c.want)
		}
	}
	// Scale invariance.
	a := JainIndex([]float64{1, 2, 3})
	b := JainIndex([]float64{10, 20, 30})
	if math.Abs(a-b) > 1e-12 {
		t.Errorf("scale invariance: %g vs %g", a, b)
	}
}
