package obs

// Prediction-quality observability: the replay loops know both the
// prediction made at alloc time and the actual lifetime observed at free
// time, and record the comparison here. Everything is measured on the
// bytes-allocated clock, so accuracy numbers are deterministic and
// machine-independent — exact enough to gate in CI.
//
// The metric families (all flow through Flatten and expfmt as lp_pred_*):
//
//   - pred.tp_objects / pred.fp_objects / pred.fn_objects / pred.tn_objects
//     and the pred.*_bytes twins: the confusion matrix, by objects and by
//     bytes. "Positive" means predicted short-lived.
//   - pred.fp_cost_bytelife: misprediction cost — for each false positive,
//     size x (lifetime - threshold), the byte-lifetime product the object
//     spent squatting in the predicted-short region past the threshold.
//   - pred.threshold_bytes (gauge): the short-lifetime threshold in play.
//   - pred.lifetime_pred_short / pred.lifetime_pred_long (log2 histograms):
//     actual lifetimes split by predicted class, so calibration is visible
//     as distribution overlap.
//
// Per-site attribution lands in Snapshot.PredSites, and the rolling
// accuracy channel in the timeline's Pred* sample fields.

// PredSite attributes mispredictions to one allocation site: false
// positives (predicted short, lived long — the paper's arena-pollution
// failure mode) with their byte-lifetime cost, and false negatives
// (predicted long, died short — missed arena opportunities). Sites with no
// mispredictions are not listed.
type PredSite struct {
	Site      string `json:"site"` // rendered call-chain
	FPObjects int64  `json:"fp_objects,omitempty"`
	FPBytes   int64  `json:"fp_bytes,omitempty"`
	// FPCost is the summed size x (lifetime - threshold) of the site's
	// false positives: how much byte-lifetime its long-lived objects held
	// in the predicted-short region past the threshold.
	FPCost    int64 `json:"fp_cost,omitempty"`
	FNObjects int64 `json:"fn_objects,omitempty"`
	FNBytes   int64 `json:"fn_bytes,omitempty"`
}

// SetPredSites attaches the per-site misprediction ranking; core computes
// it during an observed replay, mirroring SetSites.
func (c *Collector) SetPredSites(sites []PredSite) {
	if c == nil {
		return
	}
	c.mu.Lock()
	c.predSites = sites
	c.mu.Unlock()
}
