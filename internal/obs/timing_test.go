package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTimingObserve(t *testing.T) {
	var tm Timing
	tm.Observe(1500 * time.Microsecond)
	tm.Observe(500 * time.Microsecond)
	tm.Observe(-time.Second) // clamps to zero, still counted
	if got := tm.Count(); got != 3 {
		t.Fatalf("Count = %d", got)
	}
	if got := tm.SumMicros(); got != 2000 {
		t.Fatalf("SumMicros = %d", got)
	}
	if got := tm.MaxMicros(); got != 1500 {
		t.Fatalf("MaxMicros = %d", got)
	}
}

func TestTimingSnapshotMean(t *testing.T) {
	ts := TimingSnapshot{Count: 4, SumMicros: 1000, MaxMicros: 700}
	if got := ts.MeanMicros(); got != 250 {
		t.Fatalf("MeanMicros = %v", got)
	}
	if got := (TimingSnapshot{}).MeanMicros(); got != 0 {
		t.Fatalf("empty MeanMicros = %v", got)
	}
}

func TestTimingConcurrent(t *testing.T) {
	reg := NewRegistry()
	tm := reg.Timing("cell")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				tm.Observe(10 * time.Microsecond)
			}
		}()
	}
	wg.Wait()
	vals := reg.TimingValues()
	if vals["cell"].Count != 800 || vals["cell"].SumMicros != 8000 {
		t.Fatalf("snapshot = %+v", vals["cell"])
	}
	if vals["cell"].MaxMicros != 10 {
		t.Fatalf("max = %d", vals["cell"].MaxMicros)
	}
	if reg.Timing("cell") != tm {
		t.Fatal("Timing not memoized per name")
	}
}

func TestCollectorTimingNilSafe(t *testing.T) {
	var c *Collector
	if c.Timing("x") != nil {
		t.Fatal("nil collector should hand out nil timing")
	}
	c.ObserveTiming("x", time.Millisecond) // must not panic
	var tm *Timing
	tm.Observe(time.Millisecond) // nil timing no-ops too
}

func TestCollectorTimingSnapshotAndFlatten(t *testing.T) {
	c := NewCollector(Options{Label: "prog/alloc"})
	c.ObserveTiming("engine_build", 2*time.Millisecond)
	c.ObserveTiming("engine_build", 4*time.Millisecond)
	s := c.Snapshot()
	ts, ok := s.Timings["engine_build"]
	if !ok {
		t.Fatalf("missing timing in snapshot: %+v", s.Timings)
	}
	if ts.Count != 2 || ts.SumMicros != 6000 || ts.MaxMicros != 4000 {
		t.Fatalf("timing snapshot = %+v", ts)
	}
	flat := s.Flatten()
	for k, want := range map[string]float64{
		"engine_build.count":   2,
		"engine_build.sum_us":  6000,
		"engine_build.mean_us": 3000,
		"engine_build.max_us":  4000,
	} {
		if flat[k] != want {
			t.Errorf("Flatten[%q] = %v, want %v", k, flat[k], want)
		}
	}
}

func TestRegistryNamesIncludeTimings(t *testing.T) {
	reg := NewRegistry()
	reg.Counter("a")
	reg.Timing("z_timing")
	names := reg.Names()
	found := false
	for _, n := range names {
		if n == "z_timing" {
			found = true
		}
	}
	if !found {
		t.Fatalf("Names() = %v, missing timing", names)
	}
	if !strings.Contains(strings.Join(names, ","), "a") {
		t.Fatalf("Names() = %v, missing counter", names)
	}
}
