package obs

import (
	"sync/atomic"
	"time"
)

// Timing accumulates wall-clock durations — the one obs family measured
// in wall time rather than the bytes-allocated clock, so its values are
// machine-dependent and deliberately excluded from determinism-sensitive
// comparisons (lpdiff gates should stick to the byte-clock families).
// core's experiment engine records one observation per completed cell, so
// scraping a collector mid-run shows schedule progress live. Durations
// are stored as integer microseconds. The zero value is ready to use;
// all methods are safe for concurrent use.
type Timing struct {
	count atomic.Int64
	sumUS atomic.Int64
	maxUS atomic.Int64
}

// Observe records one duration (negative durations clamp to zero).
// Nil-safe: a nil Timing — e.g. from a nil Collector's Timing — no-ops,
// so timing stays zero-cost to thread through optional observability.
func (t *Timing) Observe(d time.Duration) {
	if t == nil {
		return
	}
	us := d.Microseconds()
	if us < 0 {
		us = 0
	}
	t.count.Add(1)
	t.sumUS.Add(us)
	for {
		m := t.maxUS.Load()
		if us <= m || t.maxUS.CompareAndSwap(m, us) {
			return
		}
	}
}

// Count returns how many durations were observed.
func (t *Timing) Count() int64 { return t.count.Load() }

// SumMicros returns the total observed microseconds.
func (t *Timing) SumMicros() int64 { return t.sumUS.Load() }

// MaxMicros returns the largest single observation in microseconds.
func (t *Timing) MaxMicros() int64 { return t.maxUS.Load() }

// TimingSnapshot is the exported form of a Timing.
type TimingSnapshot struct {
	Count     int64 `json:"count"`
	SumMicros int64 `json:"sum_us"`
	MaxMicros int64 `json:"max_us"`
}

// MeanMicros returns the mean observation, zero when empty.
func (ts TimingSnapshot) MeanMicros() float64 {
	if ts.Count == 0 {
		return 0
	}
	return float64(ts.SumMicros) / float64(ts.Count)
}

// Timing returns the named wall-clock timing, creating it on first use.
func (r *Registry) Timing(name string) *Timing {
	r.mu.Lock()
	defer r.mu.Unlock()
	t, ok := r.timings[name]
	if !ok {
		t = &Timing{}
		r.timings[name] = t
	}
	return t
}

// TimingValues returns a snapshot of all timings; nil when none exist,
// so snapshots without timings JSON-round-trip exactly (omitempty drops
// the field and decoding leaves the map nil).
func (r *Registry) TimingValues() map[string]TimingSnapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.timings) == 0 {
		return nil
	}
	out := make(map[string]TimingSnapshot, len(r.timings))
	for name, t := range r.timings {
		out[name] = TimingSnapshot{Count: t.Count(), SumMicros: t.SumMicros(), MaxMicros: t.MaxMicros()}
	}
	return out
}

// Timing resolves a named wall-clock timing. Nil-safe: a nil collector
// returns a nil *Timing, whose Observe is itself a no-op.
func (c *Collector) Timing(name string) *Timing {
	if c == nil {
		return nil
	}
	return c.reg.Timing(name)
}

// ObserveTiming records a duration under name; nil-safe on the collector,
// so call sites need no guard.
func (c *Collector) ObserveTiming(name string, d time.Duration) {
	if c == nil {
		return
	}
	c.reg.Timing(name).Observe(d)
}
