package locality

import (
	"testing"

	"repro/internal/xrand"
)

func TestPageLRUValidation(t *testing.T) {
	if _, err := NewPageLRU(0, 4096); err == nil {
		t.Error("zero frames accepted")
	}
	if _, err := NewPageLRU(4, 0); err == nil {
		t.Error("zero page size accepted")
	}
}

func TestPageLRUBasics(t *testing.T) {
	p, _ := NewPageLRU(2, 4096)
	if !p.Access(0) {
		t.Fatal("cold access did not fault")
	}
	if p.Access(100) {
		t.Fatal("same-page access faulted")
	}
	p.Access(5000)  // page 1, fault
	p.Access(0)     // page 0 still resident (MRU order: 0, 1)
	p.Access(10000) // page 2, evicts LRU = page 1
	if !p.Access(5000) {
		t.Fatal("evicted page did not fault")
	}
	if p.Refs() != 6 {
		t.Fatalf("refs = %d", p.Refs())
	}
	if p.Faults() != 4 {
		t.Fatalf("faults = %d, want 4", p.Faults())
	}
	if p.FaultRate() <= 0 {
		t.Fatal("fault rate zero")
	}
}

func TestPageLRUWorkingSetFits(t *testing.T) {
	// 16 frames of 4KB hold a 64KB arena area exactly: cycling through
	// it faults only on first touch.
	p, _ := NewPageLRU(16, 4096)
	for round := 0; round < 10; round++ {
		for addr := int64(0); addr < 64<<10; addr += 512 {
			p.Access(addr)
		}
	}
	if p.Faults() != 16 {
		t.Fatalf("faults = %d, want 16 cold faults only", p.Faults())
	}
}

func TestPageLRUThrashing(t *testing.T) {
	// A cyclic sweep over twice the resident set thrashes under LRU.
	p, _ := NewPageLRU(16, 4096)
	for round := 0; round < 5; round++ {
		for addr := int64(0); addr < 128<<10; addr += 4096 {
			p.Access(addr)
		}
	}
	if p.FaultRate() < 0.99 {
		t.Fatalf("cyclic over-capacity sweep should thrash: rate %.2f", p.FaultRate())
	}
}

func TestReplayPagedArenaBeatsScattered(t *testing.T) {
	r := xrand.New(3)
	mk := func(span int64) []Ref {
		refs := make([]Ref, 600)
		for i := range refs {
			refs[i] = Ref{Addr: r.Range(0, span-128), Size: 64, Refs: 40}
		}
		return refs
	}
	packed, _ := NewPageLRU(32, 4096) // 128KB resident
	ReplayPaged(packed, mk(64<<10), 0)
	scattered, _ := NewPageLRU(32, 4096)
	ReplayPaged(scattered, mk(8<<20), 0)
	if packed.FaultRate() >= scattered.FaultRate() {
		t.Fatalf("packed fault rate %.4f not below scattered %.4f",
			packed.FaultRate(), scattered.FaultRate())
	}
}
