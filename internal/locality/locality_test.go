package locality

import (
	"testing"

	"repro/internal/xrand"
)

func TestNewCacheValidation(t *testing.T) {
	cases := []struct {
		total, ways, line int
	}{
		{0, 1, 16}, {1024, 0, 16}, {1024, 1, 0},
		{1024, 1, 24}, // non-power-of-two line
		{3000, 2, 32}, // non-power-of-two sets
		{64, 4, 32},   // sets < 1
	}
	for _, c := range cases {
		if _, err := NewCache(c.total, c.ways, c.line); err == nil {
			t.Errorf("NewCache(%d,%d,%d) accepted bad geometry", c.total, c.ways, c.line)
		}
	}
	if _, err := NewCache(64<<10, 4, 32); err != nil {
		t.Fatalf("valid geometry rejected: %v", err)
	}
}

func TestCacheHitAfterMiss(t *testing.T) {
	c, _ := NewCache(1<<10, 2, 32)
	if c.Access(100) {
		t.Fatal("cold access hit")
	}
	if !c.Access(100) {
		t.Fatal("warm access missed")
	}
	if !c.Access(96) {
		t.Fatal("same-line access missed")
	}
	if c.Accesses() != 3 || c.Misses() != 1 {
		t.Fatalf("accesses/misses = %d/%d", c.Accesses(), c.Misses())
	}
}

func TestCacheLRUEviction(t *testing.T) {
	// Direct-mapped 2-set cache, 32B lines: addresses 0 and 64 collide.
	c, _ := NewCache(64, 1, 32)
	c.Access(0)
	c.Access(64) // evicts line 0
	if c.Access(0) {
		t.Fatal("evicted line still present")
	}
	// 2-way with the same sets keeps both.
	c2, _ := NewCache(128, 2, 32)
	c2.Access(0)
	c2.Access(128) // same set, second way
	if !c2.Access(0) {
		t.Fatal("2-way cache evicted prematurely")
	}
	// Touch 0 (MRU now 0), insert a third conflicting line: 128 is LRU
	// and must be the victim, while 0 survives.
	c2.Access(256)
	if !c2.Access(0) {
		t.Fatal("MRU line evicted")
	}
	if c2.Access(128) {
		t.Fatal("LRU line survived eviction")
	}
}

func TestSmallFootprintBeatsScattered(t *testing.T) {
	// The paper's locality claim in miniature: the same reference load
	// aimed at a 64KB window misses far less in a 32KB cache than when
	// scattered over 4MB.
	r := xrand.New(9)
	mk := func(span int64) []Ref {
		refs := make([]Ref, 400)
		for i := range refs {
			refs[i] = Ref{
				Addr: r.Range(0, span-256),
				Size: 64,
				Refs: 50,
			}
		}
		return refs
	}
	packed, _ := NewCache(32<<10, 4, 32)
	Replay(packed, mk(64<<10), 0)
	scattered, _ := NewCache(32<<10, 4, 32)
	Replay(scattered, mk(4<<20), 0)
	if packed.MissRate() >= scattered.MissRate() {
		t.Fatalf("packed miss rate %.4f not below scattered %.4f",
			packed.MissRate(), scattered.MissRate())
	}
}

func TestReplayCapPreservesWork(t *testing.T) {
	c, _ := NewCache(1<<10, 1, 16)
	Replay(c, []Ref{{Addr: 0, Size: 64, Refs: 1000}}, 10)
	if c.Accesses() != 10 {
		t.Fatalf("capped replay made %d accesses, want 10", c.Accesses())
	}
	c2, _ := NewCache(1<<10, 1, 16)
	Replay(c2, []Ref{{Addr: 0, Size: 64, Refs: 5}, {Addr: 512, Size: 16, Refs: 0}}, 0)
	if c2.Accesses() != 5 {
		t.Fatalf("uncapped replay made %d accesses, want 5", c2.Accesses())
	}
}

func TestWorkingSet(t *testing.T) {
	refs := []Ref{
		{Addr: 0, Size: 100, Refs: 1},         // page 0
		{Addr: 4096, Size: 10, Refs: 1},       // page 1
		{Addr: 4090, Size: 10, Refs: 1},       // pages 0+1 (straddles)
		{Addr: 20000, Size: 10, Refs: 0},      // unreferenced: ignored
		{Addr: 8192 * 3, Size: 9000, Refs: 1}, // pages 6,7,8
	}
	if got := WorkingSet(refs, 4096); got != 5 {
		t.Fatalf("WorkingSet = %d, want 5", got)
	}
	if got := WorkingSet(nil, 0); got != 0 {
		t.Fatalf("empty WorkingSet = %d", got)
	}
}

func BenchmarkCacheAccess(b *testing.B) {
	c, _ := NewCache(64<<10, 4, 32)
	r := xrand.New(1)
	addrs := make([]int64, 1024)
	for i := range addrs {
		addrs[i] = r.Range(0, 1<<20)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Access(addrs[i&1023])
	}
}
