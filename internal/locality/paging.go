package locality

import (
	"container/list"
	"fmt"
)

// PageLRU simulates demand paging with LRU replacement over a fixed
// number of resident frames — the "page miss rates" half of the paper's
// locality claim ("it localizes the references to short-lived objects,
// reducing the cache and page miss rates").
type PageLRU struct {
	pageSize int64
	frames   int

	order  *list.List              // front = most recently used
	frame  map[int64]*list.Element // page number -> node
	faults int64
	refs   int64
}

// NewPageLRU builds a pager with the given resident-set size in frames of
// pageSize bytes.
func NewPageLRU(frames int, pageSize int64) (*PageLRU, error) {
	if frames <= 0 || pageSize <= 0 {
		return nil, fmt.Errorf("locality: non-positive paging geometry")
	}
	return &PageLRU{
		pageSize: pageSize,
		frames:   frames,
		order:    list.New(),
		frame:    make(map[int64]*list.Element),
	}, nil
}

// Access touches one address; it returns true on a page fault.
func (p *PageLRU) Access(addr int64) bool {
	p.refs++
	page := addr / p.pageSize
	if el, ok := p.frame[page]; ok {
		p.order.MoveToFront(el)
		return false
	}
	p.faults++
	if p.order.Len() >= p.frames {
		victim := p.order.Back()
		p.order.Remove(victim)
		delete(p.frame, victim.Value.(int64))
	}
	p.frame[page] = p.order.PushFront(page)
	return true
}

// Faults returns the total page faults.
func (p *PageLRU) Faults() int64 { return p.faults }

// Refs returns the total accesses.
func (p *PageLRU) Refs() int64 { return p.refs }

// FaultRate returns faults/accesses, or 0 before any access.
func (p *PageLRU) FaultRate() float64 {
	if p.refs == 0 {
		return 0
	}
	return float64(p.faults) / float64(p.refs)
}

// ReplayPaged streams a window of object references through the pager,
// round-robining like Replay does for caches.
func ReplayPaged(p *PageLRU, window []Ref, refsCap int64) {
	type cursor struct {
		r    Ref
		left int64
		off  int64
	}
	cur := make([]cursor, 0, len(window))
	for _, r := range window {
		n := r.Refs
		if refsCap > 0 && n > refsCap {
			n = refsCap
		}
		if n <= 0 {
			continue
		}
		cur = append(cur, cursor{r: r, left: n})
	}
	active := len(cur)
	for active > 0 {
		for i := range cur {
			if cur[i].left == 0 {
				continue
			}
			k := &cur[i]
			p.Access(k.r.Addr + k.off)
			k.off += 16
			if k.off >= k.r.Size {
				k.off = 0
			}
			k.left--
			if k.left == 0 {
				active--
			}
		}
	}
}
