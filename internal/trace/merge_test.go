package trace

import (
	"testing"

	"repro/internal/callchain"
)

func shardTrace(t *testing.T, program string, sizes []int64, fn string) *Trace {
	t.Helper()
	tb := callchain.NewTable()
	tr := &Trace{Program: program, Input: "train", Table: tb, FunctionCalls: int64(len(sizes))}
	c := tb.InternNames("main", fn)
	for i, sz := range sizes {
		tr.Events = append(tr.Events,
			Event{Kind: KindAlloc, Obj: ObjectID(i), Size: sz, Chain: c},
			Event{Kind: KindFree, Obj: ObjectID(i)})
	}
	return tr
}

func TestMergeInterleavesByByteClock(t *testing.T) {
	// Shard A allocates 100-byte objects, shard B 10-byte objects: B's
	// events should dominate the early merged stream 10:1 in counts.
	a := shardTrace(t, "p", []int64{100, 100, 100}, "big")
	b := shardTrace(t, "p", []int64{10, 10, 10, 10, 10, 10, 10, 10, 10, 10}, "small")
	m, err := Merge([]*Trace{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if err := Validate(m); err != nil {
		t.Fatal(err)
	}
	st, err := ComputeStats(m)
	if err != nil {
		t.Fatal(err)
	}
	if st.TotalObjects != 13 || st.TotalBytes != 400 {
		t.Fatalf("merged totals %d/%d", st.TotalObjects, st.TotalBytes)
	}
	if m.FunctionCalls != 13 {
		t.Fatalf("function calls %d", m.FunctionCalls)
	}
	// After A's first alloc (clock 100), all of B's 10-byte allocs with
	// clock < 100 come before A's second: find positions.
	var firstBig2 int = -1
	bigSeen := 0
	smallBefore := 0
	for i, ev := range m.Events {
		if ev.Kind != KindAlloc {
			continue
		}
		if ev.Size == 100 {
			bigSeen++
			if bigSeen == 2 {
				firstBig2 = i
				break
			}
		} else if bigSeen == 1 {
			smallBefore++
		}
	}
	if firstBig2 < 0 || smallBefore < 9 {
		t.Fatalf("byte-clock interleave wrong: %d small allocs between bigs", smallBefore)
	}
}

func TestMergeRebasesObjectIDs(t *testing.T) {
	a := shardTrace(t, "p", []int64{8, 8}, "fa")
	b := shardTrace(t, "p", []int64{8, 8}, "fb")
	m, err := Merge([]*Trace{a, b})
	if err != nil {
		t.Fatal(err)
	}
	seen := map[ObjectID]bool{}
	for _, ev := range m.Events {
		if ev.Kind == KindAlloc {
			if seen[ev.Obj] {
				t.Fatalf("duplicate object id %d after merge", ev.Obj)
			}
			seen[ev.Obj] = true
		}
	}
	if len(seen) != 4 {
		t.Fatalf("%d objects after merge", len(seen))
	}
}

func TestMergeChainsSurvive(t *testing.T) {
	a := shardTrace(t, "p", []int64{8}, "fa")
	b := shardTrace(t, "p", []int64{8}, "fb")
	m, err := Merge([]*Trace{a, b})
	if err != nil {
		t.Fatal(err)
	}
	names := map[string]bool{}
	for _, ev := range m.Events {
		if ev.Kind == KindAlloc {
			names[m.Table.String(ev.Chain)] = true
		}
	}
	if !names["main>fa"] || !names["main>fb"] {
		t.Fatalf("chains lost in merge: %v", names)
	}
}

func TestMergeSingleAndEmpty(t *testing.T) {
	if _, err := Merge(nil); err == nil {
		t.Fatal("empty merge accepted")
	}
	a := shardTrace(t, "p", []int64{8}, "f")
	m, err := Merge([]*Trace{a})
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Events) != len(a.Events) {
		t.Fatal("single-shard merge altered events")
	}
}

func TestMergeDeterministic(t *testing.T) {
	a := shardTrace(t, "p", []int64{10, 20, 30}, "fa")
	b := shardTrace(t, "p", []int64{15, 25}, "fb")
	m1, err := Merge([]*Trace{a, b})
	if err != nil {
		t.Fatal(err)
	}
	m2, err := Merge([]*Trace{a, b})
	if err != nil {
		t.Fatal(err)
	}
	if len(m1.Events) != len(m2.Events) {
		t.Fatal("merge not deterministic")
	}
	for i := range m1.Events {
		if m1.Events[i] != m2.Events[i] {
			t.Fatalf("merge diverges at %d", i)
		}
	}
}
