package trace

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"repro/internal/callchain"
)

// scalarOnly hides any native NextBlock so AsBlockSource must wrap.
type scalarOnly struct{ src Source }

func (s scalarOnly) Meta() Meta              { return s.src.Meta() }
func (s scalarOnly) Table() *callchain.Table { return s.src.Table() }
func (s scalarOnly) Next() (Event, error)    { return s.src.Next() }

// blockOnly hides any native Next so AsSource must wrap.
type blockOnly struct{ bs BlockSource }

func (s blockOnly) Meta() Meta                    { return s.bs.Meta() }
func (s blockOnly) Table() *callchain.Table       { return s.bs.Table() }
func (s blockOnly) NextBlock(b *EventBlock) error { return s.bs.NextBlock(b) }

func TestSliceSourceBlocksRoundTrip(t *testing.T) {
	tr := randomTrace(7, 1300) // not a multiple of DefaultBlockLen
	got, err := CollectBlocks(NewSliceSource(tr))
	if err != nil {
		t.Fatal(err)
	}
	assertTracesEqual(t, tr, got)
}

func TestBlockAdapterRoundTrip(t *testing.T) {
	tr := randomTrace(8, 700)
	got, err := CollectBlocks(AsBlockSource(scalarOnly{NewSliceSource(tr)}))
	if err != nil {
		t.Fatal(err)
	}
	assertTracesEqual(t, tr, got)
}

func TestScalarAdapterRoundTrip(t *testing.T) {
	tr := randomTrace(9, 700)
	got, err := Collect(AsSource(blockOnly{NewSliceSource(tr)}))
	if err != nil {
		t.Fatal(err)
	}
	assertTracesEqual(t, tr, got)
}

// errAfter yields n events from src and then a fixed error.
type errAfter struct {
	src  Source
	n    int
	seen int
	err  error
}

func (s *errAfter) Meta() Meta              { return s.src.Meta() }
func (s *errAfter) Table() *callchain.Table { return s.src.Table() }
func (s *errAfter) Next() (Event, error) {
	if s.seen >= s.n {
		return Event{}, s.err
	}
	s.seen++
	return s.src.Next()
}

// The batched contract: a terminal error after a partial block is held
// back, so consumers see every event first and the error exactly once,
// on the following call.
func TestBlockAdapterHoldsErrorAfterPartialBlock(t *testing.T) {
	tr := randomTrace(10, DefaultBlockLen+37)
	boom := errors.New("boom")
	bs := AsBlockSource(scalarOnly{&errAfter{src: NewSliceSource(tr), n: DefaultBlockLen + 37, err: boom}})

	blk := NewEventBlock(0)
	if err := bs.NextBlock(blk); err != nil || blk.N != DefaultBlockLen {
		t.Fatalf("block 1: n=%d err=%v, want %d/nil", blk.N, err, DefaultBlockLen)
	}
	if err := bs.NextBlock(blk); err != nil || blk.N != 37 {
		t.Fatalf("block 2: n=%d err=%v, want 37/nil (error held back)", blk.N, err)
	}
	if err := bs.NextBlock(blk); err != boom || blk.N != 0 {
		t.Fatalf("block 3: n=%d err=%v, want 0/boom", blk.N, err)
	}
}

// An error landing exactly on a block boundary is returned immediately
// with an empty block — never with events alongside it.
func TestBlockAdapterErrorOnBoundary(t *testing.T) {
	tr := randomTrace(11, DefaultBlockLen)
	boom := errors.New("boom")
	bs := AsBlockSource(scalarOnly{&errAfter{src: NewSliceSource(tr), n: DefaultBlockLen, err: boom}})

	blk := NewEventBlock(0)
	if err := bs.NextBlock(blk); err != nil || blk.N != DefaultBlockLen {
		t.Fatalf("block 1: n=%d err=%v, want %d/nil", blk.N, err, DefaultBlockLen)
	}
	if err := bs.NextBlock(blk); err != boom || blk.N != 0 {
		t.Fatalf("block 2: n=%d err=%v, want 0/boom", blk.N, err)
	}
}

func TestReaderNextBlock(t *testing.T) {
	tr := randomTrace(12, 2000)
	var buf bytes.Buffer
	w, err := NewWriter(&buf, Meta{Program: "rand", Input: "x"}, tr.Table)
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range tr.Events {
		if err := w.Write(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(4242, 99); err != nil {
		t.Fatal(err)
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got, err := CollectBlocks(r)
	if err != nil {
		t.Fatal(err)
	}
	tr.FunctionCalls, tr.NonHeapRefs = 4242, 99
	assertTracesEqual(t, tr, got)
	// Trailer metadata must be final once NextBlock has returned io.EOF.
	if m := r.Meta(); m.FunctionCalls != 4242 || m.NonHeapRefs != 99 {
		t.Fatalf("trailer meta = %+v, want 4242/99", m)
	}
	blk := NewEventBlock(0)
	if err := r.NextBlock(blk); err != io.EOF {
		t.Fatalf("NextBlock after EOF = %v, want io.EOF", err)
	}
}

func TestColumnsSourceViews(t *testing.T) {
	tr := randomTrace(13, 1100)
	cs := NewTraceColumns(tr)
	if n, ok := cs.EventCount(); !ok || n != len(tr.Events) {
		t.Fatalf("EventCount = %d/%v, want %d/true", n, ok, len(tr.Events))
	}
	got, err := CollectBlocks(cs)
	if err != nil {
		t.Fatal(err)
	}
	assertTracesEqual(t, tr, got)

	// Reset rewinds for another replay, and the scalar face agrees.
	cs.Reset()
	got2, err := Collect(cs)
	if err != nil {
		t.Fatal(err)
	}
	assertTracesEqual(t, tr, got2)

	// NextBlock repoints at the column storage rather than copying.
	cs.Reset()
	blk := NewEventBlock(0)
	if err := cs.NextBlock(blk); err != nil {
		t.Fatal(err)
	}
	if &blk.Kinds[0] != &cs.cols.Kinds[0] {
		t.Fatal("ColumnsSource.NextBlock copied instead of repointing")
	}
}

func TestBlockPoolRecycles(t *testing.T) {
	p := NewBlockPool(64)
	b := p.Get()
	if b.Cap() != 64 {
		t.Fatalf("cap = %d, want 64", b.Cap())
	}
	b.Append(Event{Kind: KindFree, Obj: 5})
	p.Put(b)
	if got := p.Get(); got != b {
		t.Fatal("pool did not recycle the released block")
	} else if got.N != 0 {
		t.Fatal("recycled block not reset")
	}
	// Foreign-capacity blocks are rejected, keeping the pool homogeneous.
	p.Put(NewEventBlock(32))
	if got := p.Get(); got.Cap() != 64 {
		t.Fatalf("pool handed out a foreign block of cap %d", got.Cap())
	}
}

func TestAsBlockSourcePreservesCounted(t *testing.T) {
	tr := randomTrace(14, 50)
	bs := AsBlockSource(scalarOnly{NewSliceSource(tr)})
	c, ok := bs.(Counted)
	if !ok {
		t.Fatal("block adapter lost the Counted face")
	}
	// scalarOnly hides Counted too, so the adapter reports unknown —
	// never a wrong number.
	if n, known := c.EventCount(); known {
		t.Fatalf("EventCount = %d/known over an uncounted source", n)
	}
}

// TestReaderNextBlockTruncatedMidBlock pins the error path of the batched
// decoder on a stream cut off in the middle of the event section: every
// fully-decoded event is delivered first, then the truncation surfaces
// as exactly io.ErrUnexpectedEOF — not io.EOF, which would let a consumer
// mistake a torn stream for a complete one.
func TestReaderNextBlockTruncatedMidBlock(t *testing.T) {
	tr := randomTrace(21, 600)
	var buf bytes.Buffer
	w, err := NewWriter(&buf, Meta{Program: tr.Program, Input: tr.Input}, tr.Table)
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range tr.Events {
		if err := w.Write(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(1, 2); err != nil {
		t.Fatal(err)
	}
	cut := buf.Len() * 3 / 4 // inside the event section, past the header
	r, err := NewReader(bytes.NewReader(buf.Bytes()[:cut]))
	if err != nil {
		t.Fatal(err)
	}
	blk := NewEventBlock(64)
	events := 0
	var final error
	for {
		err := r.NextBlock(blk)
		if err != nil {
			final = err
			break
		}
		events += blk.N
	}
	if events == 0 || events >= len(tr.Events) {
		t.Fatalf("decoded %d events from a stream truncated at 3/4, want some but not all %d", events, len(tr.Events))
	}
	if final != io.ErrUnexpectedEOF {
		t.Fatalf("truncation surfaced as %q, want %q", final, io.ErrUnexpectedEOF)
	}
	// The error is sticky across further calls, never softening to EOF.
	if err := r.NextBlock(blk); err != io.ErrUnexpectedEOF {
		t.Fatalf("repeated NextBlock after truncation = %v, want %v", err, io.ErrUnexpectedEOF)
	}
}
