package trace

import (
	"bytes"
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/callchain"
	"repro/internal/xrand"
)

// buildTrace constructs a small hand-written trace:
//
//	obj 0: 100 bytes, freed after obj1+obj2 born (lifetime 100+50 = wait...)
//
// Events: A0(100) A1(40) F0 A2(60) F2, obj1 never freed.
func buildTrace(t *testing.T) *Trace {
	t.Helper()
	tb := callchain.NewTable()
	c1 := tb.InternNames("main", "parse", "xmalloc")
	c2 := tb.InternNames("main", "eval", "xmalloc")
	return &Trace{
		Program:       "toy",
		Input:         "train",
		Table:         tb,
		FunctionCalls: 1234,
		NonHeapRefs:   900,
		Events: []Event{
			{Kind: KindAlloc, Obj: 0, Size: 100, Chain: c1, Refs: 10},
			{Kind: KindAlloc, Obj: 1, Size: 40, Chain: c2, Refs: 20},
			{Kind: KindFree, Obj: 0},
			{Kind: KindAlloc, Obj: 2, Size: 60, Chain: c1, Refs: 70},
			{Kind: KindFree, Obj: 2},
		},
	}
}

func TestAnnotateLifetimes(t *testing.T) {
	tr := buildTrace(t)
	objs, err := Annotate(tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(objs) != 3 {
		t.Fatalf("got %d objects, want 3", len(objs))
	}
	// obj0 born at byte 0; dies after 100+40=140 bytes allocated -> lifetime 140-0=140.
	if objs[0].Lifetime != 140 || !objs[0].Freed {
		t.Errorf("obj0 lifetime=%d freed=%v, want 140/true", objs[0].Lifetime, objs[0].Freed)
	}
	// obj1 born at byte 100, never freed; total bytes = 200 -> lifetime 100.
	if objs[1].Lifetime != 100 || objs[1].Freed {
		t.Errorf("obj1 lifetime=%d freed=%v, want 100/false", objs[1].Lifetime, objs[1].Freed)
	}
	// obj2 born at byte 140, freed immediately after -> lifetime 60 (its own size).
	if objs[2].Lifetime != 60 || !objs[2].Freed {
		t.Errorf("obj2 lifetime=%d freed=%v, want 60/true", objs[2].Lifetime, objs[2].Freed)
	}
	if objs[2].Birth != 140 {
		t.Errorf("obj2 birth=%d, want 140", objs[2].Birth)
	}
}

func TestAnnotateErrors(t *testing.T) {
	tb := callchain.NewTable()
	cases := []struct {
		name   string
		events []Event
	}{
		{"double alloc", []Event{
			{Kind: KindAlloc, Obj: 1, Size: 8},
			{Kind: KindAlloc, Obj: 1, Size: 8},
		}},
		{"free unknown", []Event{{Kind: KindFree, Obj: 9}}},
		{"double free", []Event{
			{Kind: KindAlloc, Obj: 1, Size: 8},
			{Kind: KindFree, Obj: 1},
			{Kind: KindFree, Obj: 1},
		}},
		{"bad kind", []Event{{Kind: 0, Obj: 1}}},
	}
	for _, c := range cases {
		tr := &Trace{Table: tb, Events: c.events}
		if _, err := Annotate(tr); err == nil {
			t.Errorf("%s: Annotate accepted malformed trace", c.name)
		}
		if err := Validate(tr); err == nil {
			t.Errorf("%s: Validate accepted malformed trace", c.name)
		}
	}
}

func TestComputeStats(t *testing.T) {
	tr := buildTrace(t)
	s, err := ComputeStats(tr)
	if err != nil {
		t.Fatal(err)
	}
	if s.TotalObjects != 3 || s.TotalBytes != 200 {
		t.Errorf("totals: %d objs %d bytes, want 3/200", s.TotalObjects, s.TotalBytes)
	}
	// Live peaks: after A1 we have 140 bytes, 2 objects; after A2 we have
	// 40+60=100 bytes, 2 objects. Max bytes 140, max objects 2.
	if s.MaxBytes != 140 {
		t.Errorf("MaxBytes = %d, want 140", s.MaxBytes)
	}
	if s.MaxObjects != 2 {
		t.Errorf("MaxObjects = %d, want 2", s.MaxObjects)
	}
	if s.FreedObjects != 2 {
		t.Errorf("FreedObjects = %d, want 2", s.FreedObjects)
	}
	if s.HeapRefs != 100 {
		t.Errorf("HeapRefs = %d, want 100", s.HeapRefs)
	}
	if s.HeapRefFrac != 0.1 {
		t.Errorf("HeapRefFrac = %v, want 0.1", s.HeapRefFrac)
	}
}

func TestBinaryRoundTrip(t *testing.T) {
	tr := buildTrace(t)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertTracesEqual(t, tr, got)
}

func TestTextRoundTrip(t *testing.T) {
	tr := buildTrace(t)
	var buf bytes.Buffer
	if err := WriteText(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertTracesEqual(t, tr, got)
}

func assertTracesEqual(t *testing.T, want, got *Trace) {
	t.Helper()
	if got.Program != want.Program || got.Input != want.Input {
		t.Errorf("metadata: got %s/%s, want %s/%s", got.Program, got.Input, want.Program, want.Input)
	}
	if got.FunctionCalls != want.FunctionCalls {
		t.Errorf("FunctionCalls: got %d, want %d", got.FunctionCalls, want.FunctionCalls)
	}
	if got.NonHeapRefs != want.NonHeapRefs {
		t.Errorf("NonHeapRefs: got %d, want %d", got.NonHeapRefs, want.NonHeapRefs)
	}
	if len(got.Events) != len(want.Events) {
		t.Fatalf("event count: got %d, want %d", len(got.Events), len(want.Events))
	}
	for i := range want.Events {
		w, g := want.Events[i], got.Events[i]
		if w.Kind != g.Kind || w.Obj != g.Obj || w.Size != g.Size || w.Refs != g.Refs {
			t.Fatalf("event %d: got %+v, want %+v", i, g, w)
		}
		if w.Kind == KindAlloc {
			if want.Table.String(w.Chain) != got.Table.String(g.Chain) {
				t.Fatalf("event %d: chain %q != %q", i,
					got.Table.String(g.Chain), want.Table.String(w.Chain))
			}
		}
	}
}

func TestReadBinaryRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		nil,
		[]byte("not a trace"),
		[]byte("LPTRACE1\n"), // truncated after magic
	}
	for i, b := range cases {
		if _, err := ReadBinary(bytes.NewReader(b)); err == nil {
			t.Errorf("case %d: ReadBinary accepted garbage", i)
		}
	}
}

func TestReadTextRejectsGarbage(t *testing.T) {
	cases := []string{
		"alloc",
		"alloc 1 size=x refs=2 chain=a",
		"free",
		"explode 3",
		"alloc 1 size=8 refs=0 nochain",
	}
	for _, s := range cases {
		if _, err := ReadText(strings.NewReader(s)); err == nil {
			t.Errorf("ReadText accepted %q", s)
		}
	}
}

func TestTextEmptyChain(t *testing.T) {
	tb := callchain.NewTable()
	tr := &Trace{
		Table: tb,
		Events: []Event{
			{Kind: KindAlloc, Obj: 0, Size: 8, Chain: 0, Refs: 0},
		},
	}
	var buf bytes.Buffer
	if err := WriteText(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Events[0].Chain != 0 {
		t.Fatalf("empty chain did not round-trip: %d", got.Events[0].Chain)
	}
}

// randomTrace builds a structurally valid random trace for property tests.
func randomTrace(seed uint64, n int) *Trace {
	r := xrand.New(seed)
	tb := callchain.NewTable()
	chains := []callchain.ChainID{
		tb.InternNames("main", "a", "malloc"),
		tb.InternNames("main", "b", "xmalloc"),
		tb.InternNames("main", "b", "c", "xmalloc"),
	}
	tr := &Trace{Program: "rand", Input: "x", Table: tb}
	var live []ObjectID
	var next ObjectID
	for i := 0; i < n; i++ {
		if len(live) > 0 && r.Bool(0.45) {
			k := r.Intn(len(live))
			tr.Events = append(tr.Events, Event{Kind: KindFree, Obj: live[k]})
			live[k] = live[len(live)-1]
			live = live[:len(live)-1]
		} else {
			tr.Events = append(tr.Events, Event{
				Kind:  KindAlloc,
				Obj:   next,
				Size:  r.Range(1, 512),
				Chain: chains[r.Intn(len(chains))],
				Refs:  r.Range(0, 100),
			})
			live = append(live, next)
			next++
		}
	}
	return tr
}

func TestQuickBinaryRoundTrip(t *testing.T) {
	f := func(seed uint64) bool {
		tr := randomTrace(seed, 200)
		var buf bytes.Buffer
		if err := WriteBinary(&buf, tr); err != nil {
			return false
		}
		got, err := ReadBinary(&buf)
		if err != nil {
			return false
		}
		if len(got.Events) != len(tr.Events) {
			return false
		}
		for i := range tr.Events {
			if got.Events[i] != tr.Events[i] {
				// ChainIDs are preserved exactly by the binary codec.
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: for any valid trace, sum of per-object sizes equals total
// bytes, and every annotated lifetime is non-negative and at most total.
func TestQuickAnnotateInvariants(t *testing.T) {
	f := func(seed uint64) bool {
		tr := randomTrace(seed, 300)
		objs, err := Annotate(tr)
		if err != nil {
			return false
		}
		s, err := ComputeStats(tr)
		if err != nil {
			return false
		}
		var sum int64
		for _, o := range objs {
			sum += o.Size
			if o.Lifetime < 0 || o.Lifetime > s.TotalBytes {
				return false
			}
			if o.Birth < 0 || o.Birth+o.Lifetime > s.TotalBytes {
				return false
			}
		}
		return sum == s.TotalBytes && int64(len(objs)) == s.TotalObjects
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkAnnotate(b *testing.B) {
	tr := randomTrace(1, 100000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Annotate(tr); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBinaryCodec(b *testing.B) {
	tr := randomTrace(1, 100000)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tr); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReadBinary(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}
