package trace

import (
	"io"

	"repro/internal/callchain"
)

// The columnar event API. Source moves one Event per call, which costs an
// interface dispatch, a 40-byte struct copy, and a branch per event at
// every layer boundary. EventBlock amortizes that: a producer fills a
// fixed-capacity struct-of-arrays batch, a consumer iterates the columns
// with plain index arithmetic, and the per-event boundary cost drops to a
// slice load. Every Source still works (AsBlockSource wraps it) and every
// BlockSource degrades to scalar (AsSource), so the two shapes coexist;
// the binary Reader, the synth generators, and SliceSource produce blocks
// natively.

// DefaultBlockLen is the event capacity consumers allocate by default: big
// enough to amortize per-block overhead to noise, small enough that a
// block (~15KB of columns) stays cache-resident.
const DefaultBlockLen = 512

// EventBlock is a fixed-capacity struct-of-arrays batch of events. The
// five column slices share one capacity; entries [0, N) are valid. For
// KindFree events the Sizes, Chains and Refs columns hold zero, exactly as
// the corresponding Event fields would.
//
// Producers either write into the caller's columns (the recycling
// contract: a block passed to NextBlock is reset and refilled, so one
// block serves an entire replay with zero steady-state allocation) or
// repoint the column slices at producer-owned storage (ColumnsSource's
// zero-copy views). Either way the contents are valid only until the next
// NextBlock call on the same producer.
type EventBlock struct {
	N      int // events in the block
	Kinds  []Kind
	Objs   []ObjectID
	Sizes  []int64
	Chains []callchain.ChainID
	Refs   []int64
}

// NewEventBlock returns an empty block with the given event capacity
// (DefaultBlockLen when n <= 0).
func NewEventBlock(n int) *EventBlock {
	if n <= 0 {
		n = DefaultBlockLen
	}
	return &EventBlock{
		Kinds:  make([]Kind, n),
		Objs:   make([]ObjectID, n),
		Sizes:  make([]int64, n),
		Chains: make([]callchain.ChainID, n),
		Refs:   make([]int64, n),
	}
}

// Cap returns the block's event capacity.
func (b *EventBlock) Cap() int { return len(b.Kinds) }

// Reset empties the block without touching the columns.
func (b *EventBlock) Reset() { b.N = 0 }

// Full reports whether another event fits.
func (b *EventBlock) Full() bool { return b.N >= len(b.Kinds) }

// Append adds one event to the block; the caller must ensure !Full().
func (b *EventBlock) Append(ev Event) {
	i := b.N
	b.Kinds[i] = ev.Kind
	b.Objs[i] = ev.Obj
	b.Sizes[i] = ev.Size
	b.Chains[i] = ev.Chain
	b.Refs[i] = ev.Refs
	b.N = i + 1
}

// Event reassembles row i as a scalar Event.
func (b *EventBlock) Event(i int) Event {
	return Event{
		Kind:  b.Kinds[i],
		Obj:   b.Objs[i],
		Size:  b.Sizes[i],
		Chain: b.Chains[i],
		Refs:  b.Refs[i],
	}
}

// BlockSource is the batched twin of Source: NextBlock resets b and fills
// it with up to Cap() events.
//
// The contract mirrors Source.Next, lifted to batches:
//
//   - NextBlock returns nil when it produced at least one event. io.EOF
//     marks the clean end of the stream and always arrives with b.N == 0.
//   - A producer that hits an error (or the clean end) after partially
//     filling a block returns the filled events with a nil error first and
//     the held error on the next call, so consumers observe exactly the
//     event-then-error order the scalar stream would deliver.
//   - Meta and Table behave as on Source: the table is complete before
//     the first block (TextReader-style growing tables reach consumers
//     only through the scalar interface), trailer metadata is final once
//     NextBlock has returned io.EOF.
//
// Like Sources, BlockSources are single-consumer.
type BlockSource interface {
	Meta() Meta
	Table() *callchain.Table
	NextBlock(b *EventBlock) error
}

// AsBlockSource returns src's batched face: src itself when it already
// implements BlockSource (Reader, SliceSource, ColumnsSource, the synth
// generators), otherwise a wrapper that fills blocks by repeated Next
// calls. Either way the event sequence, errors, metadata, and table are
// those of src.
func AsBlockSource(src Source) BlockSource {
	if bs, ok := src.(BlockSource); ok {
		return bs
	}
	return &blockAdapter{src: src}
}

// blockAdapter lifts a scalar Source to BlockSource.
type blockAdapter struct {
	src Source
	err error // pending terminal error, delivered once the batched events drain
}

func (a *blockAdapter) Meta() Meta              { return a.src.Meta() }
func (a *blockAdapter) Table() *callchain.Table { return a.src.Table() }
func (a *blockAdapter) EventCount() (int, bool) {
	if c, ok := a.src.(Counted); ok {
		return c.EventCount()
	}
	return 0, false
}

func (a *blockAdapter) NextBlock(b *EventBlock) error {
	b.Reset()
	if a.err != nil {
		err := a.err
		a.err = nil
		return err
	}
	for !b.Full() {
		ev, err := a.src.Next()
		if err != nil {
			if b.N == 0 {
				return err
			}
			a.err = err
			return nil
		}
		b.Append(ev)
	}
	return nil
}

// AsSource returns bs's scalar face: bs itself when it already implements
// Source, otherwise a wrapper that drains one buffered block at a time.
func AsSource(bs BlockSource) Source {
	if src, ok := bs.(Source); ok {
		return src
	}
	return &scalarAdapter{bs: bs, blk: NewEventBlock(DefaultBlockLen)}
}

// scalarAdapter lowers a BlockSource to scalar Next calls.
type scalarAdapter struct {
	bs  BlockSource
	blk *EventBlock
	pos int
}

func (a *scalarAdapter) Meta() Meta              { return a.bs.Meta() }
func (a *scalarAdapter) Table() *callchain.Table { return a.bs.Table() }

func (a *scalarAdapter) Next() (Event, error) {
	for a.pos >= a.blk.N {
		if err := a.bs.NextBlock(a.blk); err != nil {
			return Event{}, err
		}
		a.pos = 0
	}
	ev := a.blk.Event(a.pos)
	a.pos++
	return ev, nil
}

// BlockPool is a LIFO free list of equal-capacity blocks, the recycling
// half of the batched contract: a replay Gets one block up front, passes
// it to every NextBlock call, and Puts it back when the stream ends, so
// steady-state block traffic allocates nothing. Pools are single-goroutine
// (like the Sources they serve); concurrent replays use one pool each.
type BlockPool struct {
	blockLen int
	free     []*EventBlock
}

// NewBlockPool returns a pool handing out blocks of the given capacity
// (DefaultBlockLen when n <= 0).
func NewBlockPool(n int) *BlockPool {
	if n <= 0 {
		n = DefaultBlockLen
	}
	return &BlockPool{blockLen: n}
}

// Get returns an empty block, reusing a released one when available.
func (p *BlockPool) Get() *EventBlock {
	if n := len(p.free); n > 0 {
		b := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		b.Reset()
		return b
	}
	return NewEventBlock(p.blockLen)
}

// Put releases a block back to the pool for reuse.
func (p *BlockPool) Put(b *EventBlock) {
	if b == nil || b.Cap() != p.blockLen {
		return
	}
	p.free = append(p.free, b)
}

// NextBlock implements BlockSource for SliceSource by copying the next
// window of events into the caller's columns.
func (s *SliceSource) NextBlock(b *EventBlock) error {
	b.Reset()
	if s.i >= len(s.tr.Events) {
		return io.EOF
	}
	events := s.tr.Events[s.i:]
	n := b.Cap()
	if n > len(events) {
		n = len(events)
	}
	for k := 0; k < n; k++ {
		ev := &events[k]
		b.Kinds[k] = ev.Kind
		b.Objs[k] = ev.Obj
		b.Sizes[k] = ev.Size
		b.Chains[k] = ev.Chain
		b.Refs[k] = ev.Refs
	}
	b.N = n
	s.i += n
	return nil
}

// Columns is a whole trace transposed into columnar storage: the same five
// columns as EventBlock, but trace-length. Building it costs one pass; a
// ColumnsSource then serves zero-copy block views into it, which makes a
// repeatedly-replayed trace (benchmarks, the differential harness) the
// cheapest possible producer.
type Columns struct {
	Kinds  []Kind
	Objs   []ObjectID
	Sizes  []int64
	Chains []callchain.ChainID
	Refs   []int64
}

// NewColumns transposes a slice of events. Free events store zero in the
// alloc-only columns, as everywhere else.
func NewColumns(events []Event) *Columns {
	c := &Columns{
		Kinds:  make([]Kind, len(events)),
		Objs:   make([]ObjectID, len(events)),
		Sizes:  make([]int64, len(events)),
		Chains: make([]callchain.ChainID, len(events)),
		Refs:   make([]int64, len(events)),
	}
	for i := range events {
		ev := &events[i]
		c.Kinds[i] = ev.Kind
		c.Objs[i] = ev.Obj
		c.Sizes[i] = ev.Size
		c.Chains[i] = ev.Chain
		c.Refs[i] = ev.Refs
	}
	return c
}

// Len returns the event count.
func (c *Columns) Len() int { return len(c.Kinds) }

// ColumnsSource yields a transposed trace as zero-copy block views. It
// implements both Source and BlockSource (and Counted), so it can stand in
// for a SliceSource anywhere; NextBlock repoints the caller's block at the
// next window of the columns instead of copying.
type ColumnsSource struct {
	meta Meta
	tb   *callchain.Table
	cols *Columns
	i    int
	blk  int // NextBlock window length (DefaultBlockLen)
}

// NewColumnsSource returns a source over pre-transposed columns with the
// given metadata and chain table.
func NewColumnsSource(meta Meta, tb *callchain.Table, cols *Columns) *ColumnsSource {
	return &ColumnsSource{meta: meta, tb: tb, cols: cols, blk: DefaultBlockLen}
}

// NewTraceColumns transposes a materialized trace and returns a source
// over it — the columnar twin of NewSliceSource.
func NewTraceColumns(tr *Trace) *ColumnsSource {
	return NewColumnsSource(Meta{
		Program:       tr.Program,
		Input:         tr.Input,
		FunctionCalls: tr.FunctionCalls,
		NonHeapRefs:   tr.NonHeapRefs,
	}, tr.Table, NewColumns(tr.Events))
}

// Meta returns the trace metadata, complete from the start.
func (s *ColumnsSource) Meta() Meta { return s.meta }

// Table returns the chain table.
func (s *ColumnsSource) Table() *callchain.Table { return s.tb }

// EventCount implements Counted.
func (s *ColumnsSource) EventCount() (int, bool) { return s.cols.Len(), true }

// Reset rewinds the source to the first event for another replay.
func (s *ColumnsSource) Reset() { s.i = 0 }

// Next implements Source.
func (s *ColumnsSource) Next() (Event, error) {
	if s.i >= s.cols.Len() {
		return Event{}, io.EOF
	}
	i := s.i
	s.i++
	return Event{
		Kind:  s.cols.Kinds[i],
		Obj:   s.cols.Objs[i],
		Size:  s.cols.Sizes[i],
		Chain: s.cols.Chains[i],
		Refs:  s.cols.Refs[i],
	}, nil
}

// NextBlock implements BlockSource by repointing b's columns at the next
// window — no copying. The view is valid until the next call, per the
// EventBlock contract.
func (s *ColumnsSource) NextBlock(b *EventBlock) error {
	b.Reset()
	n := s.cols.Len() - s.i
	if n <= 0 {
		return io.EOF
	}
	if n > s.blk {
		n = s.blk
	}
	i, j := s.i, s.i+n
	b.Kinds = s.cols.Kinds[i:j]
	b.Objs = s.cols.Objs[i:j]
	b.Sizes = s.cols.Sizes[i:j]
	b.Chains = s.cols.Chains[i:j]
	b.Refs = s.cols.Refs[i:j]
	b.N = n
	s.i = j
	return nil
}

// CollectBlocks drains a BlockSource into a materialized Trace — Collect
// for the batched interface, sharing its capacity-hint clamp.
func CollectBlocks(bs BlockSource) (*Trace, error) {
	var hint int
	if c, ok := bs.(Counted); ok {
		if n, known := c.EventCount(); known {
			hint = min(n, collectCap)
		}
	}
	events := make([]Event, 0, hint)
	blk := NewEventBlock(DefaultBlockLen)
	for {
		err := bs.NextBlock(blk)
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		for i := 0; i < blk.N; i++ {
			events = append(events, blk.Event(i))
		}
	}
	m := bs.Meta()
	return &Trace{
		Program:       m.Program,
		Input:         m.Input,
		Table:         bs.Table(),
		Events:        events,
		FunctionCalls: m.FunctionCalls,
		NonHeapRefs:   m.NonHeapRefs,
	}, nil
}
