package trace

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"sort"
	"strings"
	"testing"
)

func TestSliceSourceRoundTrip(t *testing.T) {
	tr := buildTrace(t)
	src := NewSliceSource(tr)
	if n, ok := src.EventCount(); !ok || n != len(tr.Events) {
		t.Fatalf("EventCount = %d,%v, want %d,true", n, ok, len(tr.Events))
	}
	got, err := Collect(src)
	if err != nil {
		t.Fatal(err)
	}
	assertTracesEqual(t, tr, got)
	if got.Table != tr.Table {
		t.Fatal("Collect must preserve the source table")
	}
	// A drained source stays drained.
	if _, err := src.Next(); err != io.EOF {
		t.Fatalf("drained source Next = %v, want io.EOF", err)
	}
}

// TestStreamWriterReaderRoundTrip checks the LPTRACE2 path: stream out
// through Writer, stream back through NewReader, and land on the same
// trace — including the trailer metadata that is only final after EOF.
func TestStreamWriterReaderRoundTrip(t *testing.T) {
	tr := buildTrace(t)
	var buf bytes.Buffer
	w, err := NewWriter(&buf, Meta{Program: tr.Program, Input: tr.Input}, tr.Table)
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range tr.Events {
		if err := w.Write(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(tr.FunctionCalls, tr.NonHeapRefs); err != nil {
		t.Fatal(err)
	}

	src, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := src.EventCount(); ok {
		t.Fatal("LPTRACE2 reader must not claim a known event count")
	}
	if m := src.Meta(); m.FunctionCalls != 0 || m.Program != tr.Program {
		t.Fatalf("pre-EOF meta: %+v", m)
	}
	got, err := Collect(src)
	if err != nil {
		t.Fatal(err)
	}
	assertTracesEqual(t, tr, got)
	// Binary readers preserve chain ids exactly.
	for i := range tr.Events {
		if got.Events[i] != tr.Events[i] {
			t.Fatalf("event %d: got %+v, want %+v", i, got.Events[i], tr.Events[i])
		}
	}
}

// TestReaderV1Streams checks the LPTRACE1 reader exposes its event count
// and yields the same events ReadBinary materializes.
func TestReaderV1Streams(t *testing.T) {
	tr := buildTrace(t)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	src, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if n, ok := src.EventCount(); !ok || n != len(tr.Events) {
		t.Fatalf("EventCount = %d,%v, want %d,true", n, ok, len(tr.Events))
	}
	// v1 headers carry the totals up front.
	if m := src.Meta(); m.FunctionCalls != tr.FunctionCalls || m.NonHeapRefs != tr.NonHeapRefs {
		t.Fatalf("v1 meta incomplete before events: %+v", m)
	}
	got, err := Collect(src)
	if err != nil {
		t.Fatal(err)
	}
	assertTracesEqual(t, tr, got)
}

// TestStreamTruncationIsNotEOF pins the Source contract: a stream cut off
// mid-event or before the trailer must fail with a real error, never the
// clean io.EOF that would silently truncate the trace.
func TestStreamTruncationIsNotEOF(t *testing.T) {
	tr := randomTrace(3, 40)
	var buf bytes.Buffer
	w, err := NewWriter(&buf, Meta{Program: "p"}, tr.Table)
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range tr.Events {
		if err := w.Write(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(1, 2); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for _, n := range []int{len(data) - 1, len(data) - 2, len(data) / 2} {
		src, err := NewReader(bytes.NewReader(data[:n]))
		if err != nil {
			continue // truncated inside the header: also fine
		}
		for {
			_, err = src.Next()
			if err != nil {
				break
			}
		}
		if err == io.EOF {
			t.Fatalf("truncation at %d/%d bytes reported clean io.EOF", n, len(data))
		}
		if !errors.Is(err, io.ErrUnexpectedEOF) {
			t.Logf("truncation at %d: %v (non-EOF error, acceptable)", n, err)
		}
	}
}

func TestTextStreamRoundTrip(t *testing.T) {
	tr := buildTrace(t)
	var buf bytes.Buffer
	w, err := NewTextWriter(&buf, Meta{Program: tr.Program, Input: tr.Input}, tr.Table)
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range tr.Events {
		if err := w.Write(ev); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(tr.FunctionCalls, tr.NonHeapRefs); err != nil {
		t.Fatal(err)
	}
	got, err := ReadText(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	assertTracesEqual(t, tr, got)
}

// TestAnnotateStreamMatchesSlice pins the contract the streaming
// annotator shares with Annotate: the same []Object records — same
// births, lifetimes, never-freed handling — for the same trace. The
// stream emits in death order with never-freed objects after EOF, so the
// collected output is re-sorted to birth order before comparing.
func TestAnnotateStreamMatchesSlice(t *testing.T) {
	for seed := uint64(1); seed <= 5; seed++ {
		tr := randomTrace(seed, 500)
		want, err := Annotate(tr)
		if err != nil {
			t.Fatal(err)
		}
		var got []Object
		if err := AnnotateStream(NewSliceSource(tr), func(o Object) error {
			got = append(got, o)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		sort.Slice(got, func(a, b int) bool { return got[a].Birth < got[b].Birth })
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("seed %d: stream annotation diverges from slice annotation", seed)
		}
		// AnnotateSource returns birth order directly.
		got2, err := AnnotateSource(NewSliceSource(tr))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(want, got2) {
			t.Fatalf("seed %d: AnnotateSource diverges from Annotate", seed)
		}
	}
}

// TestAnnotateStreamNeverFreedOrder checks never-freed objects arrive
// after the stream ends, in birth order, with end-of-trace lifetimes.
func TestAnnotateStreamNeverFreedOrder(t *testing.T) {
	tr := buildTrace(t) // obj 1 never freed; total bytes 200
	var order []ObjectID
	var leftover *Object
	if err := AnnotateStream(NewSliceSource(tr), func(o Object) error {
		order = append(order, o.ID)
		if !o.Freed {
			c := o
			leftover = &c
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	// Death order: obj 0 dies first, then obj 2; obj 1 trails as leftover.
	want := []ObjectID{0, 2, 1}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("emission order %v, want %v", order, want)
	}
	if leftover == nil || leftover.ID != 1 || leftover.Lifetime != 100 || leftover.Freed {
		t.Fatalf("never-freed object mishandled: %+v", leftover)
	}
}

func TestAnnotateStreamErrors(t *testing.T) {
	cases := []struct {
		name   string
		events []Event
		want   string
	}{
		{"double alloc", []Event{
			{Kind: KindAlloc, Obj: 1, Size: 8},
			{Kind: KindAlloc, Obj: 1, Size: 8},
		}, "allocated twice"},
		{"free unknown", []Event{{Kind: KindFree, Obj: 9}}, "unknown object"},
		{"double free", []Event{
			{Kind: KindAlloc, Obj: 1, Size: 8},
			{Kind: KindFree, Obj: 1},
			{Kind: KindFree, Obj: 1},
		}, "unknown object"},
		{"bad kind", []Event{{Kind: 0, Obj: 1}}, "bad kind"},
	}
	for _, c := range cases {
		tr := &Trace{Events: c.events}
		err := AnnotateStream(NewSliceSource(tr), func(Object) error { return nil })
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: err = %v, want %q", c.name, err, c.want)
		}
		if _, err := AnnotateSource(NewSliceSource(tr)); err == nil {
			t.Errorf("%s: AnnotateSource accepted malformed stream", c.name)
		}
	}
	// emit errors stop the scan.
	tr := buildTrace(t)
	sentinel := errors.New("stop")
	if err := AnnotateStream(NewSliceSource(tr), func(Object) error { return sentinel }); err != sentinel {
		t.Fatalf("emit error not propagated: %v", err)
	}
}

// TestStatsAccumMatchesComputeStats pins the incremental statistics
// against the whole-trace scan.
func TestStatsAccumMatchesComputeStats(t *testing.T) {
	for seed := uint64(1); seed <= 4; seed++ {
		tr := randomTrace(seed, 400)
		tr.NonHeapRefs = 12345
		want, err := ComputeStats(tr)
		if err != nil {
			t.Fatal(err)
		}
		acc := NewStatsAccum()
		for _, ev := range tr.Events {
			if err := acc.Add(ev); err != nil {
				t.Fatal(err)
			}
		}
		if acc.Events() != len(tr.Events) {
			t.Fatalf("Events() = %d, want %d", acc.Events(), len(tr.Events))
		}
		if got := acc.Finish(tr.NonHeapRefs); got != want {
			t.Fatalf("seed %d: accum %+v != scan %+v", seed, got, want)
		}
	}
}

// TestCollectClampsCapacityHint feeds a hand-built LPTRACE1 header that
// claims an enormous event count: the reader must fail on the missing
// events without first allocating proportionally to the claim.
func TestCollectClampsCapacityHint(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString("LPTRACE1\n")
	buf.WriteByte(0) // program ""
	buf.WriteByte(0) // input ""
	buf.WriteByte(0) // funcCalls
	buf.WriteByte(0) // nonHeapRefs
	buf.WriteByte(0) // numFuncs
	buf.WriteByte(0) // numChains
	// numEvents = 2^56, then no event bytes at all.
	buf.Write([]byte{0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x40})
	if _, err := ReadBinary(bytes.NewReader(buf.Bytes())); err == nil {
		t.Fatal("forged event count accepted")
	}
}

func TestWriterRejectsBadKind(t *testing.T) {
	tr := buildTrace(t)
	var buf bytes.Buffer
	w, err := NewWriter(&buf, Meta{}, tr.Table)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Write(Event{Kind: 0}); err == nil {
		t.Fatal("kind 0 (the sentinel byte) must be rejected")
	}
	if err := w.Close(0, 0); err != nil {
		t.Fatal(err)
	}
	if err := w.Write(Event{Kind: KindAlloc}); err == nil {
		t.Fatal("write after Close accepted")
	}
	if err := w.Close(0, 0); err == nil {
		t.Fatal("double Close accepted")
	}
}
