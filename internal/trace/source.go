package trace

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/callchain"
)

// Meta is the per-trace metadata carried alongside an event stream. It is
// the streaming counterpart of the Trace header fields.
type Meta struct {
	Program string // e.g. "cfrac"
	Input   string // e.g. "train" / "test"

	// FunctionCalls and NonHeapRefs summarize the whole workload and are
	// therefore trailer data on a stream: sources that cannot know them
	// up front (LPTRACE2 readers, the synth generators) report zero until
	// Next has returned io.EOF, after which Meta returns final values.
	FunctionCalls int64
	NonHeapRefs   int64
}

// Source is a pull-based stream of trace events: the one idiom every
// layer — codecs, generators, annotation, simulation — consumes.
//
// The contract:
//
//   - Table returns the call-chain interning table the events refer to.
//     It is fully populated before the first event is returned, so
//     consumers may resolve or transform chains as events arrive.
//   - Next returns events in trace order and io.EOF at the clean end of
//     the stream. Any other error means a malformed or truncated trace;
//     after a non-EOF error the stream is dead.
//   - Meta may be called at any time. Program and Input are valid from
//     the start; FunctionCalls and NonHeapRefs are only guaranteed final
//     after Next has returned io.EOF (see Meta).
//
// Sources are single-consumer and not safe for concurrent use, matching
// the callchain.Table they carry.
type Source interface {
	Meta() Meta
	Table() *callchain.Table
	Next() (Event, error)
}

// Counted is implemented by sources that know their exact event count in
// advance (slice adapters, LPTRACE1 readers, synth generators). Consumers
// that need trace-relative positions — the observability phase marks at
// 25/50/75% — query it; everything else ignores it.
type Counted interface {
	// EventCount returns the total number of events the source will
	// yield and true, or (0, false) when the count is unknown.
	EventCount() (int, bool)
}

// SliceSource adapts a materialized Trace to the Source interface. It is
// the compatibility bridge: anything holding a Trace can feed a streaming
// consumer.
type SliceSource struct {
	tr *Trace
	i  int
}

// NewSliceSource returns a Source yielding tr's events in order.
func NewSliceSource(tr *Trace) *SliceSource {
	return &SliceSource{tr: tr}
}

// Meta returns the trace's header metadata, complete from the start.
func (s *SliceSource) Meta() Meta {
	return Meta{
		Program:       s.tr.Program,
		Input:         s.tr.Input,
		FunctionCalls: s.tr.FunctionCalls,
		NonHeapRefs:   s.tr.NonHeapRefs,
	}
}

// Table returns the trace's interning table.
func (s *SliceSource) Table() *callchain.Table { return s.tr.Table }

// Next yields the next event, io.EOF past the end.
func (s *SliceSource) Next() (Event, error) {
	if s.i >= len(s.tr.Events) {
		return Event{}, io.EOF
	}
	ev := s.tr.Events[s.i]
	s.i++
	return ev, nil
}

// EventCount implements Counted: a slice always knows its length.
func (s *SliceSource) EventCount() (int, bool) { return len(s.tr.Events), true }

// collectCap bounds the capacity hint Collect takes from a Counted
// source, so an adversarial claimed count cannot force a huge allocation
// before any event has actually been decoded.
const collectCap = 1 << 20

// Collect drains a Source into a materialized Trace — the inverse of
// NewSliceSource, and the other half of the compatibility bridge. The
// returned Trace shares the source's table. Metadata is read after
// io.EOF, so trailer-carrying sources yield complete FunctionCalls and
// NonHeapRefs.
func Collect(src Source) (*Trace, error) {
	var hint int
	if c, ok := src.(Counted); ok {
		if n, known := c.EventCount(); known {
			hint = min(n, collectCap)
		}
	}
	events := make([]Event, 0, hint)
	for {
		ev, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		events = append(events, ev)
	}
	m := src.Meta()
	return &Trace{
		Program:       m.Program,
		Input:         m.Input,
		Table:         src.Table(),
		Events:        events,
		FunctionCalls: m.FunctionCalls,
		NonHeapRefs:   m.NonHeapRefs,
	}, nil
}

// AnnotateStream performs the lifetime computation over a stream, calling
// emit once per object. Objects are emitted at the moment of death — in
// death order, not birth order — because that is the first point their
// lifetime is known; memory held is bounded by the maximum number of
// simultaneously live objects, never by trace length.
//
// Objects never freed are emitted after the stream ends, in birth order,
// with a lifetime extending to the end of the trace (total bytes
// allocated minus birth) and Freed == false — by construction long-lived
// for any threshold below the remaining allocation volume.
//
// AnnotateStream returns the same errors as Annotate for malformed
// streams (double alloc, unknown or double free, bad kind), plus any
// error returned by emit, which stops the scan.
func AnnotateStream(src Source, emit func(Object) error) error {
	live := make(map[ObjectID]Object, 4096)
	var bytes int64
	// The scan runs on the block path: sources that speak blocks natively
	// (binary readers, synth generators, column views) are consumed with
	// one NextBlock call per DefaultBlockLen events; everything else goes
	// through the scalar adapter. Event indices in errors stay global —
	// base counts events in completed blocks.
	bs := AsBlockSource(src)
	blk := NewEventBlock(DefaultBlockLen)
	for base := 0; ; base += blk.N {
		err := bs.NextBlock(blk)
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		for k := 0; k < blk.N; k++ {
			i := base + k
			obj := blk.Objs[k]
			switch blk.Kinds[k] {
			case KindAlloc:
				if _, dup := live[obj]; dup {
					return fmt.Errorf("trace: event %d: object %d allocated twice", i, obj)
				}
				live[obj] = Object{
					ID:    obj,
					Size:  blk.Sizes[k],
					Chain: blk.Chains[k],
					Refs:  blk.Refs[k],
					Birth: bytes,
				}
				bytes += blk.Sizes[k]
			case KindFree:
				o, ok := live[obj]
				if !ok {
					return fmt.Errorf("trace: event %d: free of unknown object %d", i, obj)
				}
				delete(live, obj)
				o.Freed = true
				o.Lifetime = bytes - o.Birth
				if err := emit(o); err != nil {
					return err
				}
			default:
				return fmt.Errorf("trace: event %d: bad kind %d", i, blk.Kinds[k])
			}
		}
	}
	if len(live) == 0 {
		return nil
	}
	rest := make([]Object, 0, len(live))
	for _, o := range live {
		o.Lifetime = bytes - o.Birth
		rest = append(rest, o)
	}
	sort.Slice(rest, func(a, b int) bool { return rest[a].Birth < rest[b].Birth })
	for _, o := range rest {
		if err := emit(o); err != nil {
			return err
		}
	}
	return nil
}

// AnnotateSource drains a Source and returns the per-object records in
// birth order — the exact output Annotate produces for the materialized
// trace. Unlike AnnotateStream it holds every object, so use it only
// when the full slice is genuinely needed.
func AnnotateSource(src Source) ([]Object, error) {
	objs := make([]Object, 0, 4096)
	index := make(map[ObjectID]int, 4096)
	var bytes int64
	for i := 0; ; i++ {
		ev, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, err
		}
		switch ev.Kind {
		case KindAlloc:
			if _, dup := index[ev.Obj]; dup {
				return nil, fmt.Errorf("trace: event %d: object %d allocated twice", i, ev.Obj)
			}
			index[ev.Obj] = len(objs)
			objs = append(objs, Object{
				ID:    ev.Obj,
				Size:  ev.Size,
				Chain: ev.Chain,
				Refs:  ev.Refs,
				Birth: bytes,
			})
			bytes += ev.Size
		case KindFree:
			j, ok := index[ev.Obj]
			if !ok {
				return nil, fmt.Errorf("trace: event %d: free of unknown object %d", i, ev.Obj)
			}
			if objs[j].Freed {
				return nil, fmt.Errorf("trace: event %d: double free of object %d", i, ev.Obj)
			}
			objs[j].Freed = true
			objs[j].Lifetime = bytes - objs[j].Birth
		default:
			return nil, fmt.Errorf("trace: event %d: bad kind %d", i, ev.Kind)
		}
	}
	for j := range objs {
		if !objs[j].Freed {
			objs[j].Lifetime = bytes - objs[j].Birth
		}
	}
	return objs, nil
}

// StatsAccum computes trace summary statistics incrementally, one event
// at a time, so streaming producers (lpgen) report Table 2 metrics
// without materializing the trace. Memory held is bounded by the maximum
// number of simultaneously live objects.
type StatsAccum struct {
	s         Stats
	liveSize  map[ObjectID]int64
	liveBytes int64
	events    int
}

// NewStatsAccum returns an empty accumulator.
func NewStatsAccum() *StatsAccum {
	return &StatsAccum{liveSize: make(map[ObjectID]int64, 4096)}
}

// Add folds one event in. It reports the same errors as ComputeStats for
// malformed event sequences; the event index in errors counts events
// Added so far.
func (a *StatsAccum) Add(ev Event) error {
	i := a.events
	a.events++
	switch ev.Kind {
	case KindAlloc:
		if _, dup := a.liveSize[ev.Obj]; dup {
			return fmt.Errorf("trace: event %d: object %d allocated twice", i, ev.Obj)
		}
		a.s.TotalObjects++
		a.s.TotalBytes += ev.Size
		a.s.HeapRefs += ev.Refs
		a.liveSize[ev.Obj] = ev.Size
		a.liveBytes += ev.Size
		if int64(len(a.liveSize)) > a.s.MaxObjects {
			a.s.MaxObjects = int64(len(a.liveSize))
		}
		if a.liveBytes > a.s.MaxBytes {
			a.s.MaxBytes = a.liveBytes
		}
	case KindFree:
		sz, ok := a.liveSize[ev.Obj]
		if !ok {
			return fmt.Errorf("trace: event %d: free of unknown or dead object %d", i, ev.Obj)
		}
		delete(a.liveSize, ev.Obj)
		a.liveBytes -= sz
		a.s.FreedObjects++
	default:
		return fmt.Errorf("trace: event %d: bad kind %d", i, ev.Kind)
	}
	return nil
}

// Events returns how many events have been folded in.
func (a *StatsAccum) Events() int { return a.events }

// Finish returns the accumulated statistics, completing HeapRefFrac from
// the workload's non-heap reference count (trailer metadata, so it is
// passed here rather than at construction).
func (a *StatsAccum) Finish(nonHeapRefs int64) Stats {
	s := a.s
	total := s.HeapRefs + nonHeapRefs
	if total > 0 {
		s.HeapRefFrac = float64(s.HeapRefs) / float64(total)
	} else {
		s.HeapRefFrac = 0
	}
	return s
}
