package trace

import (
	"bytes"
	"testing"
)

// FuzzReadBinary checks the binary reader never panics and that anything
// it accepts re-serializes to a parseable trace. Run the corpus as a unit
// test, or explore with `go test -fuzz=FuzzReadBinary ./internal/trace`.
func FuzzReadBinary(f *testing.F) {
	// Seed with a real serialized trace and a few corruptions.
	tr := randomTrace(7, 50)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tr); err != nil {
		f.Fatal(err)
	}
	good := buf.Bytes()
	f.Add(good)
	f.Add(good[:len(good)/2])
	bad := append([]byte(nil), good...)
	if len(bad) > 20 {
		bad[15] ^= 0xFF
	}
	f.Add(bad)
	f.Add([]byte("LPTRACE1\n"))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return // rejected cleanly
		}
		// Accepted input must round-trip.
		var out bytes.Buffer
		if err := WriteBinary(&out, got); err != nil {
			t.Fatalf("accepted trace fails to serialize: %v", err)
		}
		if _, err := ReadBinary(bytes.NewReader(out.Bytes())); err != nil {
			t.Fatalf("re-serialized trace fails to parse: %v", err)
		}
	})
}

// FuzzReadText does the same for the text codec.
func FuzzReadText(f *testing.F) {
	tr := randomTrace(9, 30)
	var buf bytes.Buffer
	if err := WriteText(&buf, tr); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add("# program=p input=i calls=1 nonheaprefs=2\nalloc 0 size=8 refs=0 chain=a>b\nfree 0\n")
	f.Add("alloc x")
	f.Add("")

	f.Fuzz(func(t *testing.T, data string) {
		got, err := ReadText(bytes.NewReader([]byte(data)))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := WriteText(&out, got); err != nil {
			t.Fatalf("accepted trace fails to serialize: %v", err)
		}
		if _, err := ReadText(&out); err != nil {
			t.Fatalf("re-serialized trace fails to parse: %v", err)
		}
	})
}
