package trace

import (
	"bytes"
	"testing"
)

// FuzzReadBinary checks the binary reader — both the LPTRACE1 and the
// streaming LPTRACE2 decoder — never panics or over-allocates, and that
// anything it accepts re-serializes to a parseable trace. Run the corpus
// as a unit test, or explore with `go test -fuzz=FuzzReadBinary
// ./internal/trace`.
func FuzzReadBinary(f *testing.F) {
	// Seed with a real serialized trace and a few corruptions.
	tr := randomTrace(7, 50)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tr); err != nil {
		f.Fatal(err)
	}
	good := buf.Bytes()
	f.Add(good)
	f.Add(good[:len(good)/2])
	bad := append([]byte(nil), good...)
	if len(bad) > 20 {
		bad[15] ^= 0xFF
	}
	f.Add(bad)
	f.Add([]byte("LPTRACE1\n"))
	f.Add([]byte{})

	// The same trace streamed out in the sentinel-terminated LPTRACE2
	// format, whole and truncated: mid-events, mid-trailer, and with a
	// corrupted kind byte.
	var buf2 bytes.Buffer
	w, err := NewWriter(&buf2, Meta{Program: tr.Program, Input: tr.Input}, tr.Table)
	if err != nil {
		f.Fatal(err)
	}
	for _, ev := range tr.Events {
		if err := w.Write(ev); err != nil {
			f.Fatal(err)
		}
	}
	if err := w.Close(tr.FunctionCalls, tr.NonHeapRefs); err != nil {
		f.Fatal(err)
	}
	good2 := buf2.Bytes()
	f.Add(good2)
	f.Add(good2[:len(good2)/2])
	f.Add(good2[:len(good2)-1]) // trailer cut off
	bad2 := append([]byte(nil), good2...)
	if len(bad2) > 40 {
		bad2[len(bad2)/2] ^= 0xFF
	}
	f.Add(bad2)
	f.Add([]byte("LPTRACE2\n"))

	// Adversarial lengths: headers that claim enormous event, function,
	// and chain counts with no bytes behind them. The reader must reject
	// these without allocating proportionally to the claim.
	f.Add([]byte("LPTRACE1\n\x00\x00\x00\x00\x00\x00\x80\x80\x80\x80\x80\x80\x80\x40"))
	f.Add([]byte("LPTRACE1\n\x00\x00\x00\x00\x80\x80\x80\x80\x80\x80\x80\x40"))
	f.Add([]byte("LPTRACE2\n\x00\x00\x00\x80\x80\x80\x80\x80\x80\x80\x40"))

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadBinary(bytes.NewReader(data))
		if err != nil {
			return // rejected cleanly
		}
		// Accepted input must round-trip.
		var out bytes.Buffer
		if err := WriteBinary(&out, got); err != nil {
			t.Fatalf("accepted trace fails to serialize: %v", err)
		}
		if _, err := ReadBinary(bytes.NewReader(out.Bytes())); err != nil {
			t.Fatalf("re-serialized trace fails to parse: %v", err)
		}
	})
}

// FuzzReadBinaryBlocks is the differential target for the batched
// decoder: on arbitrary bytes, replaying a Reader through NextBlock must
// be indistinguishable from replaying it through Next — same constructor
// verdict, same events in the same order, same terminal error text, and
// the same trailer metadata. A small block capacity forces many block
// boundaries, the place where the hold-the-error-back contract can go
// wrong.
func FuzzReadBinaryBlocks(f *testing.F) {
	// A trace longer than the fuzz block capacity, streamed in LPTRACE2,
	// plus the usual corruptions; and the same events in LPTRACE1, which
	// NextBlock must also batch correctly.
	tr := randomTrace(13, 600)
	var buf bytes.Buffer
	w, err := NewWriter(&buf, Meta{Program: tr.Program, Input: tr.Input}, tr.Table)
	if err != nil {
		f.Fatal(err)
	}
	for _, ev := range tr.Events {
		if err := w.Write(ev); err != nil {
			f.Fatal(err)
		}
	}
	if err := w.Close(tr.FunctionCalls, tr.NonHeapRefs); err != nil {
		f.Fatal(err)
	}
	good := buf.Bytes()
	f.Add(good)
	f.Add(good[:len(good)/2]) // truncated mid-events
	f.Add(good[:len(good)-1]) // trailer cut off
	bad := append([]byte(nil), good...)
	if len(bad) > 40 {
		bad[len(bad)/2] ^= 0xFF
	}
	f.Add(bad)
	var buf1 bytes.Buffer
	if err := WriteBinary(&buf1, tr); err != nil {
		f.Fatal(err)
	}
	f.Add(buf1.Bytes())
	f.Add([]byte("LPTRACE2\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		sr, serr := NewReader(bytes.NewReader(data))
		br, berr := NewReader(bytes.NewReader(data))
		if (serr == nil) != (berr == nil) {
			t.Fatalf("constructor verdicts differ: %v vs %v", serr, berr)
		}
		if serr != nil {
			return // rejected cleanly, identically
		}
		var sev []Event
		var sfin error
		for {
			ev, err := sr.Next()
			if err != nil {
				sfin = err
				break
			}
			sev = append(sev, ev)
		}
		var bev []Event
		var bfin error
		blk := NewEventBlock(64)
		for {
			err := br.NextBlock(blk)
			if err != nil {
				bfin = err
				break
			}
			if blk.N == 0 {
				t.Fatal("NextBlock returned nil with an empty block")
			}
			for k := 0; k < blk.N; k++ {
				bev = append(bev, blk.Event(k))
			}
		}
		if sfin.Error() != bfin.Error() {
			t.Fatalf("terminal errors differ: scalar %q, block %q", sfin, bfin)
		}
		if len(sev) != len(bev) {
			t.Fatalf("event counts differ: scalar %d, block %d", len(sev), len(bev))
		}
		for i := range sev {
			if sev[i] != bev[i] {
				t.Fatalf("event %d differs: scalar %+v, block %+v", i, sev[i], bev[i])
			}
		}
		if sr.Meta() != br.Meta() {
			t.Fatalf("trailer metadata differs: scalar %+v, block %+v", sr.Meta(), br.Meta())
		}
	})
}

// FuzzReadText does the same for the text codec.
func FuzzReadText(f *testing.F) {
	tr := randomTrace(9, 30)
	var buf bytes.Buffer
	if err := WriteText(&buf, tr); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.String())
	f.Add("# program=p input=i calls=1 nonheaprefs=2\nalloc 0 size=8 refs=0 chain=a>b\nfree 0\n")
	f.Add("alloc x")
	f.Add("")

	// The streaming text rendering: leading program/input line, trailing
	// totals line, and a truncation that loses the trailer.
	var sbuf bytes.Buffer
	sw, err := NewTextWriter(&sbuf, Meta{Program: tr.Program, Input: tr.Input}, tr.Table)
	if err != nil {
		f.Fatal(err)
	}
	for _, ev := range tr.Events {
		if err := sw.Write(ev); err != nil {
			f.Fatal(err)
		}
	}
	if err := sw.Close(7, 8); err != nil {
		f.Fatal(err)
	}
	streamed := sbuf.String()
	f.Add(streamed)
	f.Add(streamed[:len(streamed)/2])

	f.Fuzz(func(t *testing.T, data string) {
		got, err := ReadText(bytes.NewReader([]byte(data)))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := WriteText(&out, got); err != nil {
			t.Fatalf("accepted trace fails to serialize: %v", err)
		}
		if _, err := ReadText(&out); err != nil {
			t.Fatalf("re-serialized trace fails to parse: %v", err)
		}
	})
}
