package trace

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"repro/internal/callchain"
)

// The LPTRACE2 streaming binary format. LPTRACE1 prefixes the event list
// with its count and carries all metadata in the header, which forces the
// writer to materialize the whole trace first; LPTRACE2 terminates the
// event list with a sentinel and moves the workload totals — unknown
// until generation finishes — into a trailer, so both ends stream:
//
//	magic        "LPTRACE2\n"
//	program      string (varint length + bytes)
//	input        string
//	numFuncs     varint, then each function name as a string
//	numChains    varint, then each chain as varint length + varint func ids
//	             (chain 0, the empty chain, is implicit and not written)
//	events       each: kind byte; alloc: obj, size, chain, refs; free: obj
//	sentinel     0x00 (an impossible kind byte)
//	funcCalls    varint
//	nonHeapRefs  varint
const binaryMagic2 = "LPTRACE2\n"

// noEOF converts a bare io.EOF into io.ErrUnexpectedEOF: inside a header,
// an event, or before a required trailer, running out of bytes is a
// truncation error, never the clean end-of-stream that Source.Next
// signals with io.EOF.
func noEOF(err error) error {
	if err == io.EOF {
		return io.ErrUnexpectedEOF
	}
	return err
}

// writeTable serializes the function and chain tables (shared between the
// LPTRACE1 and LPTRACE2 headers).
func writeTable(cw countingWriter, tb *callchain.Table) error {
	nf := tb.NumFuncs()
	if err := cw.uvarint(uint64(nf)); err != nil {
		return err
	}
	for i := 0; i < nf; i++ {
		if err := cw.str(tb.FuncName(callchain.FuncID(i))); err != nil {
			return err
		}
	}
	nc := tb.NumChains()
	if err := cw.uvarint(uint64(nc - 1)); err != nil {
		return err
	}
	for i := 1; i < nc; i++ {
		fs := tb.Funcs(callchain.ChainID(i))
		if err := cw.uvarint(uint64(len(fs))); err != nil {
			return err
		}
		for _, f := range fs {
			if err := cw.uvarint(uint64(f)); err != nil {
				return err
			}
		}
	}
	return nil
}

// readTable decodes the function and chain tables into a fresh table,
// preserving ids exactly (shared between the LPTRACE1 and LPTRACE2
// headers).
func readTable(cr countingReader) (*callchain.Table, error) {
	tb := callchain.NewTable()
	nf, err := cr.uvarint()
	if err != nil {
		return nil, noEOF(err)
	}
	for i := uint64(0); i < nf; i++ {
		name, err := cr.str()
		if err != nil {
			return nil, noEOF(err)
		}
		if got := tb.Func(name); uint64(got) != i {
			return nil, fmt.Errorf("trace: duplicate function name %q in table", name)
		}
	}
	nc, err := cr.uvarint()
	if err != nil {
		return nil, noEOF(err)
	}
	for i := uint64(0); i < nc; i++ {
		cl, err := cr.uvarint()
		if err != nil {
			return nil, noEOF(err)
		}
		if cl > 1<<16 {
			return nil, fmt.Errorf("trace: chain length %d too large", cl)
		}
		fs := make([]callchain.FuncID, cl)
		for j := range fs {
			v, err := cr.uvarint()
			if err != nil {
				return nil, noEOF(err)
			}
			if v >= nf {
				return nil, fmt.Errorf("trace: chain references unknown function %d", v)
			}
			fs[j] = callchain.FuncID(v)
		}
		if got := tb.Intern(fs); uint64(got) != i+1 {
			return nil, fmt.Errorf("trace: duplicate chain %d in table", i+1)
		}
	}
	return tb, nil
}

// Reader is a Source decoding a binary trace incrementally: the header
// (metadata plus the function and chain tables) is parsed eagerly by
// NewReader, then each Next call decodes exactly one event, so memory
// held is the table plus one buffered block, independent of trace
// length. Reader auto-detects the LPTRACE1 and LPTRACE2 formats; for
// LPTRACE1 it also implements Counted, since that header carries the
// event count.
type Reader struct {
	cr   countingReader
	meta Meta
	tb   *callchain.Table
	v2   bool
	n    uint64 // total events, LPTRACE1 only
	i    uint64 // events decoded so far
	done bool
	perr error // pending terminal error held back by NextBlock
}

// NewReader parses a binary trace header from r and returns a Source
// streaming its events. Both LPTRACE1 and LPTRACE2 inputs are accepted,
// distinguished by magic.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	cr := countingReader{br}
	magic := make([]byte, len(binaryMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	rd := &Reader{cr: cr}
	switch string(magic) {
	case binaryMagic:
	case binaryMagic2:
		rd.v2 = true
	default:
		return nil, fmt.Errorf("trace: bad magic %q", magic)
	}
	var err error
	if rd.meta.Program, err = cr.str(); err != nil {
		return nil, noEOF(err)
	}
	if rd.meta.Input, err = cr.str(); err != nil {
		return nil, noEOF(err)
	}
	if !rd.v2 {
		fc, err := cr.uvarint()
		if err != nil {
			return nil, noEOF(err)
		}
		rd.meta.FunctionCalls = int64(fc)
		nhr, err := cr.uvarint()
		if err != nil {
			return nil, noEOF(err)
		}
		rd.meta.NonHeapRefs = int64(nhr)
	}
	if rd.tb, err = readTable(cr); err != nil {
		return nil, err
	}
	if !rd.v2 {
		if rd.n, err = cr.uvarint(); err != nil {
			return nil, noEOF(err)
		}
	}
	return rd, nil
}

// Meta returns the trace metadata. For LPTRACE2 the workload totals live
// in a trailer, so FunctionCalls and NonHeapRefs are zero until Next has
// returned io.EOF.
func (r *Reader) Meta() Meta { return r.meta }

// Table returns the decoded interning table; chain ids are preserved
// exactly as written.
func (r *Reader) Table() *callchain.Table { return r.tb }

// EventCount implements Counted for LPTRACE1 inputs, whose header
// declares the event count. LPTRACE2 streams are unbounded until the
// sentinel, so the count is unknown. The declared count is a claim, not
// a promise — Next still fails with io.ErrUnexpectedEOF if the stream
// ends early, and consumers must not pre-allocate proportionally to it.
func (r *Reader) EventCount() (int, bool) {
	if r.v2 {
		return 0, false
	}
	return int(r.n), true
}

// Next decodes one event. io.EOF marks the clean end of the stream: after
// the declared count (LPTRACE1) or the sentinel and trailer (LPTRACE2).
// A stream that ends anywhere else yields io.ErrUnexpectedEOF.
func (r *Reader) Next() (Event, error) {
	if r.done {
		return Event{}, io.EOF
	}
	if !r.v2 && r.i >= r.n {
		r.done = true
		return Event{}, io.EOF
	}
	kb, err := r.cr.r.ReadByte()
	if err != nil {
		return Event{}, noEOF(err)
	}
	if r.v2 && kb == 0 {
		// Sentinel: the trailer completes the metadata.
		fc, err := r.cr.uvarint()
		if err != nil {
			return Event{}, noEOF(err)
		}
		nhr, err := r.cr.uvarint()
		if err != nil {
			return Event{}, noEOF(err)
		}
		r.meta.FunctionCalls = int64(fc)
		r.meta.NonHeapRefs = int64(nhr)
		r.done = true
		return Event{}, io.EOF
	}
	i := r.i
	r.i++
	ev := Event{Kind: Kind(kb)}
	obj, err := r.cr.uvarint()
	if err != nil {
		return Event{}, noEOF(err)
	}
	ev.Obj = ObjectID(obj)
	switch ev.Kind {
	case KindAlloc:
		sz, err := r.cr.uvarint()
		if err != nil {
			return Event{}, noEOF(err)
		}
		ch, err := r.cr.uvarint()
		if err != nil {
			return Event{}, noEOF(err)
		}
		if ch >= uint64(r.tb.NumChains()) {
			return Event{}, fmt.Errorf("trace: event %d references unknown chain %d", i, ch)
		}
		refs, err := r.cr.uvarint()
		if err != nil {
			return Event{}, noEOF(err)
		}
		ev.Size = int64(sz)
		ev.Chain = callchain.ChainID(ch)
		ev.Refs = int64(refs)
	case KindFree:
	default:
		return Event{}, fmt.Errorf("trace: event %d: bad kind %d", i, kb)
	}
	return ev, nil
}

// NextBlock implements BlockSource natively: it decodes events straight
// into the caller's block, amortizing the Source interface dispatch over
// a whole block. The block is caller-recycled — steady-state replay from
// a Reader allocates nothing per block. A terminal error (including
// io.EOF) that arrives after at least one event has been decoded is held
// back and returned by the following call, so block consumers observe
// the exact event-then-error ordering that scalar Next callers see.
func (r *Reader) NextBlock(b *EventBlock) error {
	b.Reset()
	if r.perr != nil {
		err := r.perr
		r.perr = nil
		return err
	}
	for !b.Full() {
		ev, err := r.Next()
		if err != nil {
			if b.N == 0 {
				return err
			}
			r.perr = err
			return nil
		}
		b.Append(ev)
	}
	return nil
}

// Writer encodes a trace incrementally in the LPTRACE2 format: NewWriter
// emits the header, Write emits one event at a time, Close emits the
// sentinel and the metadata trailer. Nothing is retained between calls
// beyond the output buffer, so writing is constant-memory in trace
// length.
type Writer struct {
	bw     *bufio.Writer
	cw     countingWriter
	closed bool
}

// NewWriter writes the LPTRACE2 header — magic, program, input, and the
// function and chain tables from tb — and returns a Writer for the event
// stream. The table must already contain every chain the events will
// reference (the synth generators intern all sites before emitting, and
// re-encoded streams carry their table up front).
func NewWriter(w io.Writer, meta Meta, tb *callchain.Table) (*Writer, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	cw := countingWriter{bw}
	if _, err := bw.WriteString(binaryMagic2); err != nil {
		return nil, err
	}
	if err := cw.str(meta.Program); err != nil {
		return nil, err
	}
	if err := cw.str(meta.Input); err != nil {
		return nil, err
	}
	if err := writeTable(cw, tb); err != nil {
		return nil, err
	}
	return &Writer{bw: bw, cw: cw}, nil
}

// Write encodes one event.
func (w *Writer) Write(ev Event) error {
	if w.closed {
		return fmt.Errorf("trace: write after Close")
	}
	if ev.Kind != KindAlloc && ev.Kind != KindFree {
		return fmt.Errorf("trace: bad event kind %d", ev.Kind)
	}
	if err := w.bw.WriteByte(byte(ev.Kind)); err != nil {
		return err
	}
	if err := w.cw.uvarint(uint64(ev.Obj)); err != nil {
		return err
	}
	if ev.Kind == KindAlloc {
		if err := w.cw.uvarint(uint64(ev.Size)); err != nil {
			return err
		}
		if err := w.cw.uvarint(uint64(ev.Chain)); err != nil {
			return err
		}
		if err := w.cw.uvarint(uint64(ev.Refs)); err != nil {
			return err
		}
	}
	return nil
}

// Close terminates the event stream with the sentinel, writes the
// workload totals as the trailer, and flushes. The totals are parameters
// because a streaming producer only knows them once generation is done.
func (w *Writer) Close(funcCalls, nonHeapRefs int64) error {
	if w.closed {
		return fmt.Errorf("trace: double Close")
	}
	w.closed = true
	if err := w.bw.WriteByte(0); err != nil {
		return err
	}
	if err := w.cw.uvarint(uint64(funcCalls)); err != nil {
		return err
	}
	if err := w.cw.uvarint(uint64(nonHeapRefs)); err != nil {
		return err
	}
	return w.bw.Flush()
}

// TextWriter is the streaming counterpart of WriteText: a leading
// metadata line, one event per line, and a trailing metadata line for
// the workload totals (ReadText and TextReader accept metadata lines
// anywhere, so both renderings parse identically).
type TextWriter struct {
	bw     *bufio.Writer
	tb     *callchain.Table
	closed bool
}

// NewTextWriter writes the leading metadata line and returns a writer
// for the event stream.
func NewTextWriter(w io.Writer, meta Meta, tb *callchain.Table) (*TextWriter, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := fmt.Fprintf(bw, "# program=%s input=%s\n", meta.Program, meta.Input); err != nil {
		return nil, err
	}
	return &TextWriter{bw: bw, tb: tb}, nil
}

// Write renders one event.
func (w *TextWriter) Write(ev Event) error {
	if w.closed {
		return fmt.Errorf("trace: write after Close")
	}
	switch ev.Kind {
	case KindAlloc:
		_, err := fmt.Fprintf(w.bw, "alloc %d size=%d refs=%d chain=%s\n",
			ev.Obj, ev.Size, ev.Refs, w.tb.String(ev.Chain))
		return err
	case KindFree:
		_, err := fmt.Fprintf(w.bw, "free %d\n", ev.Obj)
		return err
	default:
		return fmt.Errorf("trace: bad event kind %d", ev.Kind)
	}
}

// Close writes the trailing metadata line and flushes.
func (w *TextWriter) Close(funcCalls, nonHeapRefs int64) error {
	if w.closed {
		return fmt.Errorf("trace: double Close")
	}
	w.closed = true
	if _, err := fmt.Fprintf(w.bw, "# calls=%d nonheaprefs=%d\n", funcCalls, nonHeapRefs); err != nil {
		return err
	}
	return w.bw.Flush()
}

// TextReader is a Source decoding the text rendering line by line.
// Chains are interned into a fresh table in order of first appearance,
// exactly as ReadText does; metadata lines may appear anywhere and fold
// into Meta as they are seen.
type TextReader struct {
	sc     *bufio.Scanner
	meta   Meta
	tb     *callchain.Table
	lineNo int
	done   bool
}

// NewTextReader returns a Source over the text format.
func NewTextReader(r io.Reader) *TextReader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	return &TextReader{sc: sc, tb: callchain.NewTable()}
}

// Meta returns the metadata folded in so far; totals carried on a
// trailing metadata line are only present after Next returns io.EOF.
func (r *TextReader) Meta() Meta { return r.meta }

// Table returns the interning table built from chains seen so far.
// Unlike the binary Reader, text chains are interned as events are
// decoded, so the table grows during the scan.
func (r *TextReader) Table() *callchain.Table { return r.tb }

// Next decodes the next event line, skipping blanks and folding metadata
// lines into Meta.
func (r *TextReader) Next() (Event, error) {
	if r.done {
		return Event{}, io.EOF
	}
	for r.sc.Scan() {
		r.lineNo++
		line := strings.TrimSpace(r.sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			for _, field := range strings.Fields(strings.TrimPrefix(line, "#")) {
				k, v, ok := strings.Cut(field, "=")
				if !ok {
					continue
				}
				switch k {
				case "program":
					r.meta.Program = v
				case "input":
					r.meta.Input = v
				case "calls":
					fmt.Sscanf(v, "%d", &r.meta.FunctionCalls)
				case "nonheaprefs":
					fmt.Sscanf(v, "%d", &r.meta.NonHeapRefs)
				}
			}
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "alloc":
			if len(fields) != 5 {
				return Event{}, fmt.Errorf("trace: line %d: malformed alloc", r.lineNo)
			}
			ev := Event{Kind: KindAlloc}
			if _, err := fmt.Sscanf(fields[1], "%d", &ev.Obj); err != nil {
				return Event{}, fmt.Errorf("trace: line %d: %w", r.lineNo, err)
			}
			if _, err := fmt.Sscanf(fields[2], "size=%d", &ev.Size); err != nil {
				return Event{}, fmt.Errorf("trace: line %d: %w", r.lineNo, err)
			}
			if _, err := fmt.Sscanf(fields[3], "refs=%d", &ev.Refs); err != nil {
				return Event{}, fmt.Errorf("trace: line %d: %w", r.lineNo, err)
			}
			chainStr, ok := strings.CutPrefix(fields[4], "chain=")
			if !ok {
				return Event{}, fmt.Errorf("trace: line %d: missing chain", r.lineNo)
			}
			if chainStr != "" {
				ev.Chain = r.tb.InternNames(strings.Split(chainStr, ">")...)
			}
			return ev, nil
		case "free":
			if len(fields) != 2 {
				return Event{}, fmt.Errorf("trace: line %d: malformed free", r.lineNo)
			}
			var obj ObjectID
			if _, err := fmt.Sscanf(fields[1], "%d", &obj); err != nil {
				return Event{}, fmt.Errorf("trace: line %d: %w", r.lineNo, err)
			}
			return Event{Kind: KindFree, Obj: obj}, nil
		default:
			return Event{}, fmt.Errorf("trace: line %d: unknown event %q", r.lineNo, fields[0])
		}
	}
	if err := r.sc.Err(); err != nil {
		return Event{}, err
	}
	r.done = true
	return Event{}, io.EOF
}
