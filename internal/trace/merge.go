package trace

import (
	"container/heap"
	"fmt"

	"repro/internal/callchain"
)

// Merge interleaves several traces into one, ordering events by each
// shard's local byte clock (cumulative bytes allocated). This supports
// sharded instrumentation of concurrent Go programs: each goroutine
// records into its own apptrace.Recorder, and the shards merge into a
// single trace whose global time remains bytes-allocated. Object ids are
// re-based so they stay unique; chains are re-interned by function name
// into a fresh table.
//
// Header convention: the merged Program and Input are taken from the
// first shard that sets each field (in practice traces[0] — shards of
// one instrumented run share a header). A shard with an empty field is
// compatible with anything; two shards that set *different* non-empty
// values are a caller error — merging, say, cfrac with espresso would
// silently mislabel the result — and Merge reports it instead of
// guessing. MergeSources applies the same rule to streams.
//
// The interleaving is a modeling choice — concurrent shards have no true
// global allocation order — but byte-clock merging preserves each shard's
// internal lifetimes up to the allocation volume the other shards
// contribute in between, which is the same notion of time the paper uses.
func Merge(traces []*Trace) (*Trace, error) {
	if len(traces) == 0 {
		return nil, fmt.Errorf("trace: Merge needs at least one trace")
	}
	programs := make([]string, len(traces))
	inputs := make([]string, len(traces))
	for i, tr := range traces {
		programs[i], inputs[i] = tr.Program, tr.Input
	}
	program, input, err := mergeHeaders(programs, inputs)
	if err != nil {
		return nil, err
	}
	out := &Trace{
		Program: program,
		Input:   input,
		Table:   callchain.NewTable(),
	}

	// Per-shard state: position, byte clock, id rebase, chain memo.
	shards := make([]*mergeShard, len(traces))
	var base ObjectID
	total := 0
	for i, tr := range traces {
		out.FunctionCalls += tr.FunctionCalls
		out.NonHeapRefs += tr.NonHeapRefs
		var maxID ObjectID
		for _, ev := range tr.Events {
			if ev.Kind == KindAlloc && ev.Obj > maxID {
				maxID = ev.Obj
			}
		}
		shards[i] = &mergeShard{
			tr:   tr,
			base: base,
			memo: make(map[callchain.ChainID]callchain.ChainID),
		}
		base += maxID + 1
		total += len(tr.Events)
	}

	// Min-heap on (clock, shard index) for a deterministic interleave.
	h := &shardHeap{}
	for i, s := range shards {
		if len(s.tr.Events) > 0 {
			heap.Push(h, shardRef{s: s, idx: i})
		}
	}
	out.Events = make([]Event, 0, total)
	for h.Len() > 0 {
		ref := heap.Pop(h).(shardRef)
		s := ref.s
		ev := s.tr.Events[s.pos]
		s.pos++
		switch ev.Kind {
		case KindAlloc:
			mapped, ok := s.memo[ev.Chain]
			if !ok {
				fs := s.tr.Table.Funcs(ev.Chain)
				names := make([]string, len(fs))
				for j, f := range fs {
					names[j] = s.tr.Table.FuncName(f)
				}
				mapped = out.Table.InternNames(names...)
				s.memo[ev.Chain] = mapped
			}
			out.Events = append(out.Events, Event{
				Kind:  KindAlloc,
				Obj:   ev.Obj + s.base,
				Size:  ev.Size,
				Chain: mapped,
				Refs:  ev.Refs,
			})
			s.clock += ev.Size
		case KindFree:
			out.Events = append(out.Events, Event{Kind: KindFree, Obj: ev.Obj + s.base})
		default:
			return nil, fmt.Errorf("trace: Merge: shard %d event %d has bad kind %d",
				ref.idx, s.pos-1, ev.Kind)
		}
		if s.pos < len(s.tr.Events) {
			heap.Push(h, ref)
		}
	}
	return out, nil
}

// mergeHeaders resolves the merged Program and Input fields: each is the
// first non-empty value across shards, and a shard carrying a different
// non-empty value is an error (see the Merge doc comment).
func mergeHeaders(programs, inputs []string) (program, input string, err error) {
	for i := range programs {
		if p := programs[i]; p != "" {
			if program == "" {
				program = p
			} else if p != program {
				return "", "", fmt.Errorf("trace: merge: shard %d has program %q, earlier shards %q", i, p, program)
			}
		}
		if in := inputs[i]; in != "" {
			if input == "" {
				input = in
			} else if in != input {
				return "", "", fmt.Errorf("trace: merge: shard %d has input %q, earlier shards %q", i, in, input)
			}
		}
	}
	return program, input, nil
}

type shardRef struct {
	s   *mergeShard
	idx int
}

// mergeShard is one input trace's cursor during Merge.
type mergeShard struct {
	tr    *Trace
	pos   int
	clock int64
	base  ObjectID
	memo  map[callchain.ChainID]callchain.ChainID
}

type shardHeap []shardRef

func (h shardHeap) Len() int { return len(h) }
func (h shardHeap) Less(i, j int) bool {
	if h[i].s.clock != h[j].s.clock {
		return h[i].s.clock < h[j].s.clock
	}
	return h[i].idx < h[j].idx
}
func (h shardHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *shardHeap) Push(x interface{}) { *h = append(*h, x.(shardRef)) }
func (h *shardHeap) Pop() interface{} {
	old := *h
	n := len(old)
	v := old[n-1]
	*h = old[:n-1]
	return v
}
