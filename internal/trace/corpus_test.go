package trace

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestFuzzCorpusPresent guards the committed seed corpus: `go test` runs
// every testdata/fuzz entry through its fuzz target in unit mode, so the
// corpus is regression coverage for the codec edge cases (truncation,
// corruption, adversarial length claims) — it must not silently vanish,
// and every entry must be in the corpus v1 encoding.
func TestFuzzCorpusPresent(t *testing.T) {
	for target, minEntries := range map[string]int{
		"FuzzReadBinary":       5,
		"FuzzReadBinaryBlocks": 5,
		"FuzzReadText":         3,
	} {
		dir := filepath.Join("testdata", "fuzz", target)
		entries, err := os.ReadDir(dir)
		if err != nil {
			t.Fatalf("%s corpus missing: %v", target, err)
		}
		if len(entries) < minEntries {
			t.Errorf("%s corpus has %d entries, want >= %d", target, len(entries), minEntries)
		}
		for _, e := range entries {
			data, err := os.ReadFile(filepath.Join(dir, e.Name()))
			if err != nil {
				t.Fatal(err)
			}
			if !strings.HasPrefix(string(data), "go test fuzz v1\n") {
				t.Errorf("%s/%s: not in corpus v1 format", target, e.Name())
			}
		}
	}
}
