package trace

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/callchain"
)

// corrupt truncates or flips a serialized trace at various points and
// checks the reader fails cleanly instead of panicking or accepting it.
func TestReadBinaryTruncations(t *testing.T) {
	tr := buildTrace(t)
	var buf bytes.Buffer
	if err := WriteBinary(&buf, tr); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for _, n := range []int{10, 12, 15, 20, 30, len(data) / 2, len(data) - 1} {
		if n >= len(data) {
			continue
		}
		if _, err := ReadBinary(bytes.NewReader(data[:n])); err == nil {
			t.Errorf("truncation at %d accepted", n)
		}
	}
}

func TestReadBinaryBadReferences(t *testing.T) {
	// Hand-build a header whose chain references a function beyond the
	// table: magic, empty program/input, calls=0, refs=0, 1 func "a",
	// 1 chain of length 1 referencing func id 7.
	var buf bytes.Buffer
	buf.WriteString("LPTRACE1\n")
	buf.WriteByte(0) // program ""
	buf.WriteByte(0) // input ""
	buf.WriteByte(0) // funcCalls
	buf.WriteByte(0) // nonHeapRefs
	buf.WriteByte(1) // numFuncs
	buf.WriteByte(1) // len "a"
	buf.WriteByte('a')
	buf.WriteByte(1) // numChains
	buf.WriteByte(1) // chain length
	buf.WriteByte(7) // bad func id
	if _, err := ReadBinary(&buf); err == nil || !strings.Contains(err.Error(), "unknown function") {
		t.Fatalf("bad function reference not rejected: %v", err)
	}
}

func TestReadBinaryBadEventChain(t *testing.T) {
	var buf bytes.Buffer
	buf.WriteString("LPTRACE1\n")
	buf.WriteByte(0)               // program
	buf.WriteByte(0)               // input
	buf.WriteByte(0)               // calls
	buf.WriteByte(0)               // refs
	buf.WriteByte(0)               // numFuncs
	buf.WriteByte(0)               // numChains
	buf.WriteByte(1)               // numEvents
	buf.WriteByte(byte(KindAlloc)) // kind
	buf.WriteByte(0)               // obj
	buf.WriteByte(8)               // size
	buf.WriteByte(9)               // chain id 9: unknown
	buf.WriteByte(0)               // refs
	if _, err := ReadBinary(&buf); err == nil || !strings.Contains(err.Error(), "unknown chain") {
		t.Fatalf("bad chain reference not rejected: %v", err)
	}
}

func TestWriteTextMetadataRoundTrip(t *testing.T) {
	tb := callchain.NewTable()
	tr := &Trace{
		Program:       "with spaces? no",
		Input:         "x",
		Table:         tb,
		FunctionCalls: 42,
		NonHeapRefs:   7,
	}
	// Program names with spaces would break the text header; the codec
	// is for identifiers, so just verify identifier-style metadata.
	tr.Program = "prog"
	var buf bytes.Buffer
	if err := WriteText(&buf, tr); err != nil {
		t.Fatal(err)
	}
	got, err := ReadText(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.FunctionCalls != 42 || got.NonHeapRefs != 7 || got.Program != "prog" {
		t.Fatalf("metadata lost: %+v", got)
	}
}

func TestKindString(t *testing.T) {
	if KindAlloc.String() != "alloc" || KindFree.String() != "free" {
		t.Fatal("kind strings wrong")
	}
	if Kind(9).String() == "" {
		t.Fatal("unknown kind has empty string")
	}
}

func TestValidateOK(t *testing.T) {
	tr := buildTrace(t)
	if err := Validate(tr); err != nil {
		t.Fatal(err)
	}
}
