package trace

import (
	"bytes"
	"io"
	"testing"

	"repro/internal/callchain"
)

// traceBytes serializes a trace to its LPTRACE2 encoding — the strictest
// available equality: header, table, and every event must match.
func traceBytes(t testing.TB, tr *Trace) []byte {
	t.Helper()
	var b bytes.Buffer
	if err := WriteBinary(&b, tr); err != nil {
		t.Fatalf("WriteBinary: %v", err)
	}
	return b.Bytes()
}

// maxAllocIDs computes, per shard, the maximum object id among alloc
// events — the quantity RebaseOffsets wants, derived the same way Merge
// derives it internally.
func maxAllocIDs(traces []*Trace) []ObjectID {
	out := make([]ObjectID, len(traces))
	for i, tr := range traces {
		for _, ev := range tr.Events {
			if ev.Kind == KindAlloc && ev.Obj > out[i] {
				out[i] = ev.Obj
			}
		}
	}
	return out
}

// diffMerge asserts MergeSources over the given shards streams a trace
// byte-identical to materialized Merge.
func diffMerge(t *testing.T, traces []*Trace) {
	t.Helper()
	want, err := Merge(traces)
	if err != nil {
		t.Fatalf("Merge: %v", err)
	}
	shards := make([]Source, len(traces))
	for i, tr := range traces {
		shards[i] = NewSliceSource(tr)
	}
	ms, err := MergeSources(shards, RebaseOffsets(maxAllocIDs(traces)))
	if err != nil {
		t.Fatalf("MergeSources: %v", err)
	}
	got, err := Collect(ms)
	if err != nil {
		t.Fatalf("Collect: %v", err)
	}
	wb, gb := traceBytes(t, want), traceBytes(t, got)
	if !bytes.Equal(wb, gb) {
		t.Fatalf("streaming merge differs from materialized Merge:\nmerge:   %d bytes, %d events\nstream:  %d bytes, %d events",
			len(wb), len(want.Events), len(gb), len(got.Events))
	}
}

func TestMergeSourcesMatchesMerge(t *testing.T) {
	a := shardTrace(t, "p", []int64{100, 7, 100, 33}, "big")
	b := shardTrace(t, "p", []int64{10, 10, 10, 10, 10, 10, 10, 10}, "small")
	c := shardTrace(t, "p", []int64{1000}, "huge")

	// Shard with interleaved (non-LIFO) frees, sparse ids, and several
	// chains, exercising memoized re-interning and id rebasing.
	tb := callchain.NewTable()
	d := &Trace{Program: "p", Input: "train", Table: tb}
	c1 := tb.InternNames("main", "alpha")
	c2 := tb.InternNames("main", "beta", "gamma")
	d.Events = []Event{
		{Kind: KindAlloc, Obj: 5, Size: 64, Chain: c1},
		{Kind: KindAlloc, Obj: 9, Size: 16, Chain: c2},
		{Kind: KindFree, Obj: 5},
		{Kind: KindAlloc, Obj: 12, Size: 8, Chain: c1, Refs: 3},
		{Kind: KindFree, Obj: 9},
		// Obj 12 never freed.
	}
	d.FunctionCalls = 3
	d.NonHeapRefs = 11

	cases := [][]*Trace{
		{a},
		{a, b},
		{a, b, c},
		{a, b, c, d},
		{d, c, b, a},
		{&Trace{Program: "p", Input: "train", Table: callchain.NewTable()}, a}, // empty shard
	}
	for _, traces := range cases {
		diffMerge(t, traces)
	}
}

func TestMergeSourcesCounted(t *testing.T) {
	a := shardTrace(t, "p", []int64{8, 8}, "f")
	b := shardTrace(t, "p", []int64{8, 8, 8}, "g")
	ms, err := MergeSources([]Source{NewSliceSource(a), NewSliceSource(b)},
		RebaseOffsets(maxAllocIDs([]*Trace{a, b})))
	if err != nil {
		t.Fatal(err)
	}
	n, ok := ms.EventCount()
	if !ok || n != len(a.Events)+len(b.Events) {
		t.Fatalf("EventCount = %d,%v; want %d,true", n, ok, len(a.Events)+len(b.Events))
	}
}

// TestMergeHeaderConvention pins the Program/Input rules: first non-empty
// value wins, empty shards are compatible with anything, conflicting
// non-empty values are an error — on both Merge and MergeSources.
func TestMergeHeaderConvention(t *testing.T) {
	mk := func(program, input string) *Trace {
		tr := shardTrace(t, program, []int64{8}, "f")
		tr.Input = input
		return tr
	}

	// First non-empty wins, including across an empty-headed first shard.
	m, err := Merge([]*Trace{mk("", ""), mk("cfrac", "test")})
	if err != nil {
		t.Fatalf("Merge with empty header: %v", err)
	}
	if m.Program != "cfrac" || m.Input != "test" {
		t.Fatalf("merged header = %q/%q; want cfrac/test", m.Program, m.Input)
	}

	// Conflicting programs error.
	if _, err := Merge([]*Trace{mk("cfrac", "train"), mk("espresso", "train")}); err == nil {
		t.Fatal("Merge accepted conflicting programs")
	}
	// Conflicting inputs error.
	if _, err := Merge([]*Trace{mk("cfrac", "train"), mk("cfrac", "test")}); err == nil {
		t.Fatal("Merge accepted conflicting inputs")
	}
	// Same non-empty values are fine.
	if _, err := Merge([]*Trace{mk("cfrac", "train"), mk("cfrac", "train")}); err != nil {
		t.Fatalf("Merge rejected matching headers: %v", err)
	}

	// MergeSources shares the rule, rejecting at construction.
	bad := []*Trace{mk("cfrac", "train"), mk("espresso", "train")}
	if _, err := MergeSources([]Source{NewSliceSource(bad[0]), NewSliceSource(bad[1])},
		RebaseOffsets(maxAllocIDs(bad))); err == nil {
		t.Fatal("MergeSources accepted conflicting programs")
	}
}

func TestMergeSourcesValidation(t *testing.T) {
	a := shardTrace(t, "p", []int64{8}, "f")
	if _, err := MergeSources(nil, nil); err == nil {
		t.Fatal("MergeSources accepted zero shards")
	}
	if _, err := MergeSources([]Source{NewSliceSource(a)}, nil); err == nil {
		t.Fatal("MergeSources accepted mismatched bases")
	}
}

// TestKeyedInterleaverPermutationInvariance: with string-key tie-breaks,
// permuting the shard slice must not change the merged (key, event)
// sequence — the property the cluster's tenant ordering relies on.
func TestKeyedInterleaverPermutationInvariance(t *testing.T) {
	a := shardTrace(t, "p", []int64{10, 10, 10, 10}, "fa")
	b := shardTrace(t, "p", []int64{10, 25, 5}, "fb")
	c := shardTrace(t, "p", []int64{40, 40}, "fc")
	traces := []*Trace{a, b, c}
	keys := []string{"tenant-a", "tenant-b", "tenant-c"}

	type step struct {
		key string
		ev  Event
	}
	run := func(perm []int) []step {
		shards := make([]Source, len(perm))
		ks := make([]string, len(perm))
		for i, p := range perm {
			shards[i] = NewSliceSource(traces[p])
			ks[i] = keys[p]
		}
		it, err := NewKeyedInterleaver(shards, ks)
		if err != nil {
			t.Fatal(err)
		}
		var out []step
		for {
			shard, ev, err := it.Next()
			if err == io.EOF {
				return out
			}
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, step{key: ks[shard], ev: ev})
		}
	}

	want := run([]int{0, 1, 2})
	for _, perm := range [][]int{{1, 2, 0}, {2, 1, 0}, {0, 2, 1}} {
		got := run(perm)
		if len(got) != len(want) {
			t.Fatalf("perm %v: %d steps, want %d", perm, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("perm %v: step %d = %+v, want %+v", perm, i, got[i], want[i])
			}
		}
	}

	// Duplicate keys are rejected.
	if _, err := NewKeyedInterleaver(
		[]Source{NewSliceSource(a), NewSliceSource(b)},
		[]string{"t", "t"}); err == nil {
		t.Fatal("NewKeyedInterleaver accepted duplicate keys")
	}
}

func TestInterleaverBadKind(t *testing.T) {
	tb := callchain.NewTable()
	tr := &Trace{Program: "p", Table: tb, Events: []Event{{Kind: 99, Obj: 1}}}
	it := NewInterleaver([]Source{NewSliceSource(tr)})
	if _, _, err := it.Next(); err == nil || err == io.EOF {
		t.Fatalf("bad kind: err = %v; want kind error", err)
	}
	// The stream stays dead.
	if _, _, err := it.Next(); err == nil || err == io.EOF {
		t.Fatalf("dead stream: err = %v; want sticky error", err)
	}
}

// FuzzMergeSources builds small legal shard traces from the fuzz input
// and checks the streaming merge against materialized Merge byte for
// byte. The interpreter keeps every generated trace well-formed (dense
// unique alloc ids per shard, frees only of live objects) so any
// divergence is a merge bug, not input garbage.
func FuzzMergeSources(f *testing.F) {
	f.Add([]byte{2, 0, 10, 1, 20, 0, 200, 1, 1, 0, 0, 1, 30})
	f.Add([]byte{3, 0, 5, 1, 5, 2, 5, 0, 200, 2, 200, 1, 200, 0, 7, 1, 9})
	f.Add([]byte{1, 0, 255, 0, 1, 0, 200})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 2 {
			return
		}
		k := int(data[0])%3 + 1
		data = data[1:]
		traces := make([]*Trace, k)
		type shardState struct {
			next ObjectID
			live []ObjectID
		}
		states := make([]*shardState, k)
		chains := []string{"fa", "fb", "fc", "fd"}
		for i := range traces {
			tb := callchain.NewTable()
			traces[i] = &Trace{Program: "p", Input: "train", Table: tb}
			// Pre-intern so chain ids are valid whatever op order the
			// fuzzer picks; Merge re-interns only referenced chains.
			for _, fn := range chains {
				tb.InternNames("main", fn)
			}
			states[i] = &shardState{}
		}
		for j := 0; j+1 < len(data); j += 2 {
			shard := int(data[j]) % k
			op := data[j+1]
			tr, st := traces[shard], states[shard]
			if op >= 200 && len(st.live) > 0 {
				// Free: pick a live object by the op byte.
				pick := int(op) % len(st.live)
				obj := st.live[pick]
				st.live = append(st.live[:pick], st.live[pick+1:]...)
				tr.Events = append(tr.Events, Event{Kind: KindFree, Obj: obj})
				continue
			}
			// Alloc: size in [1, 128], chain by op byte.
			size := int64(op%128) + 1
			chain := tr.Table.InternNames("main", chains[int(op)%len(chains)])
			tr.Events = append(tr.Events, Event{
				Kind: KindAlloc, Obj: st.next, Size: size, Chain: chain,
				Refs: int64(op % 5),
			})
			st.live = append(st.live, st.next)
			st.next++
		}
		for _, tr := range traces {
			if err := Validate(tr); err != nil {
				t.Fatalf("interpreter emitted invalid trace: %v", err)
			}
		}
		diffMerge(t, traces)
	})
}
