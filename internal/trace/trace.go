// Package trace defines the allocation-event traces that drive every
// experiment in this repository, mirroring the role of Larus' AE traces in
// the paper: a trace records, for each allocation, the complete call-chain
// and requested size, and, for each deallocation, which object died.
//
// Time in this package — and everywhere downstream — is measured in *bytes
// allocated*, the paper's lifetime unit (§3.2): the lifetime of an object is
// the number of bytes allocated between its birth and its death.
package trace

import (
	"fmt"

	"repro/internal/callchain"
)

// ObjectID identifies an allocated object within one trace. IDs are
// assigned densely from 0 in birth order by the generators.
type ObjectID uint64

// Kind discriminates trace events.
type Kind uint8

// Event kinds.
const (
	KindAlloc Kind = iota + 1
	KindFree
)

func (k Kind) String() string {
	switch k {
	case KindAlloc:
		return "alloc"
	case KindFree:
		return "free"
	default:
		return fmt.Sprintf("Kind(%d)", uint8(k))
	}
}

// Event is one allocation or deallocation. For KindFree only Obj is
// meaningful.
type Event struct {
	Kind  Kind
	Obj   ObjectID
	Size  int64             // requested bytes (alloc only)
	Chain callchain.ChainID // complete call-chain at birth (alloc only)
	Refs  int64             // modeled heap references to the object over its lifetime (alloc only)
}

// Trace is a full allocation trace plus the interning table its chains live
// in and workload metadata used by the cost and locality models.
type Trace struct {
	Program string // e.g. "cfrac"
	Input   string // e.g. "train" / "test"

	Table  *callchain.Table
	Events []Event

	// FunctionCalls is the total number of function calls the modeled
	// program performed, used to amortize call-chain-encryption cost
	// (paper §5.1 computes CCE cost as calls x 3 instructions / allocs).
	FunctionCalls int64

	// NonHeapRefs is the modeled number of memory references NOT aimed at
	// heap objects, so that Table 2's "Heap Refs %" is computable.
	NonHeapRefs int64
}

// Object is the per-object record produced by Annotate.
type Object struct {
	ID    ObjectID
	Size  int64
	Chain callchain.ChainID
	Refs  int64
	Birth int64 // bytes allocated before this object was born
	// Lifetime is bytes allocated between birth and death. For objects
	// never freed it is total bytes minus birth, and Freed is false.
	Lifetime int64
	Freed    bool
}

// Annotate performs the lifetime computation over a materialized trace:
// it returns one Object per allocation, in birth order, with lifetimes in
// bytes allocated. Objects never freed get a lifetime extending to the
// end of the trace (total bytes allocated minus birth) and Freed == false
// — by construction long-lived for any threshold below the remaining
// allocation volume.
//
// Annotate is the slice-shaped twin of AnnotateStream; the two are pinned
// to produce identical Object records. Use AnnotateStream when the trace
// arrives as a Source and memory must stay bounded by the live set, and
// Annotate (or AnnotateSource) when the full birth-ordered slice is
// genuinely needed.
//
// Annotate returns an error if a free names an unknown or already-freed
// object, which would indicate a corrupted trace or a generator bug.
func Annotate(tr *Trace) ([]Object, error) {
	objs := make([]Object, 0, len(tr.Events)/2+1)
	index := make(map[ObjectID]int, len(tr.Events)/2+1)
	var bytes int64
	for i, ev := range tr.Events {
		switch ev.Kind {
		case KindAlloc:
			if _, dup := index[ev.Obj]; dup {
				return nil, fmt.Errorf("trace: event %d: object %d allocated twice", i, ev.Obj)
			}
			index[ev.Obj] = len(objs)
			objs = append(objs, Object{
				ID:    ev.Obj,
				Size:  ev.Size,
				Chain: ev.Chain,
				Refs:  ev.Refs,
				Birth: bytes,
			})
			bytes += ev.Size
		case KindFree:
			j, ok := index[ev.Obj]
			if !ok {
				return nil, fmt.Errorf("trace: event %d: free of unknown object %d", i, ev.Obj)
			}
			if objs[j].Freed {
				return nil, fmt.Errorf("trace: event %d: double free of object %d", i, ev.Obj)
			}
			objs[j].Freed = true
			objs[j].Lifetime = bytes - objs[j].Birth
		default:
			return nil, fmt.Errorf("trace: event %d: bad kind %d", i, ev.Kind)
		}
	}
	for j := range objs {
		if !objs[j].Freed {
			objs[j].Lifetime = bytes - objs[j].Birth
		}
	}
	return objs, nil
}

// Stats summarizes a trace with the Table 2 metrics.
type Stats struct {
	TotalObjects int64
	TotalBytes   int64
	MaxObjects   int64 // maximum simultaneously live objects
	MaxBytes     int64 // maximum simultaneously live bytes
	FreedObjects int64
	HeapRefs     int64   // sum of per-object modeled references
	HeapRefFrac  float64 // HeapRefs / (HeapRefs + NonHeapRefs)
}

// ComputeStats scans a trace once and returns its summary statistics.
// It reports the same errors as Annotate for malformed traces. It is the
// slice-shaped twin of StatsAccum, which streaming producers fold into
// event by event.
func ComputeStats(tr *Trace) (Stats, error) {
	acc := NewStatsAccum()
	for _, ev := range tr.Events {
		if err := acc.Add(ev); err != nil {
			return Stats{}, err
		}
	}
	return acc.Finish(tr.NonHeapRefs), nil
}

// Validate checks trace well-formedness (every free matches a prior alloc,
// no double alloc/free) without building per-object records.
func Validate(tr *Trace) error {
	_, err := ComputeStats(tr)
	return err
}
