package trace

import (
	"container/heap"
	"fmt"
	"io"

	"repro/internal/callchain"
)

// This file generalizes Merge from whole-trace slices to streaming
// Sources. Two layers:
//
//   - Interleaver is the k-way merge engine: it consumes each shard
//     through the block interface and yields (shard, event) pairs in
//     shared byte-clock order, leaving ids, chains, and tables untouched.
//     The cluster simulator drives it directly — each tenant keeps its
//     own table and oracle, so no re-interning must happen.
//   - MergeSource layers Merge's rewriting on top: object-id rebasing and
//     chain re-interning into one fresh table, producing a stream
//     byte-identical to materialized Merge (the differential test and
//     FuzzMergeSources pin this).

// Interleaver merges k event streams onto one shared virtual byte clock.
// A shard's position in the merge is its local clock — cumulative bytes
// it has allocated so far — and ties break deterministically: by shard
// index (NewInterleaver, matching Merge) or by caller-supplied string
// keys (NewKeyedInterleaver, so the merge order is invariant under
// permutation of the shard slice; the cluster keys by tenant id).
//
// Shards are consumed through AsBlockSource with one buffered block per
// shard, so block-native producers (synth generators, binary readers,
// column views) pay no per-event interface dispatch. Events, ids, and
// chains pass through unmodified; callers that need a single coherent
// trace want MergeSources instead.
type Interleaver struct {
	cursors []*mergeCursor
	h       cursorHeap
	inited  bool
	err     error // terminal error; the merged stream is dead once set
}

// mergeCursor is one shard's streaming state: a buffered block, a read
// position within it, and the shard-local byte clock.
type mergeCursor struct {
	bs    BlockSource
	blk   *EventBlock
	pos   int
	clock int64
	idx   int
	key   string
	byKey bool
}

// NewInterleaver returns an Interleaver over shards with ties broken by
// shard index — the exact event order Merge produces.
func NewInterleaver(shards []Source) *Interleaver {
	it := &Interleaver{cursors: make([]*mergeCursor, len(shards))}
	for i, s := range shards {
		it.cursors[i] = &mergeCursor{
			bs:  AsBlockSource(s),
			blk: NewEventBlock(DefaultBlockLen),
			idx: i,
		}
	}
	return it
}

// NewKeyedInterleaver returns an Interleaver with clock ties broken by
// the given per-shard keys, which must be unique. Because the tie-break
// depends only on the key, permuting (shards, keys) in lockstep permutes
// the shard indices Next reports but leaves the merged event order — and
// every per-key observation derived from it — unchanged.
func NewKeyedInterleaver(shards []Source, keys []string) (*Interleaver, error) {
	if len(keys) != len(shards) {
		return nil, fmt.Errorf("trace: interleaver: %d shards but %d keys", len(shards), len(keys))
	}
	seen := make(map[string]int, len(keys))
	for i, k := range keys {
		if j, dup := seen[k]; dup {
			return nil, fmt.Errorf("trace: interleaver: shards %d and %d share key %q", j, i, k)
		}
		seen[k] = i
	}
	it := NewInterleaver(shards)
	for i, c := range it.cursors {
		c.key = keys[i]
		c.byKey = true
	}
	return it, nil
}

// Next returns the next event in merged order and the index of the shard
// it came from. io.EOF marks the clean end (every shard drained); any
// other error — a malformed shard, or a shard's read failure — kills the
// merged stream, exactly as it would kill a single-shard replay.
func (it *Interleaver) Next() (int, Event, error) {
	if it.err != nil {
		return 0, Event{}, it.err
	}
	if !it.inited {
		it.inited = true
		for _, c := range it.cursors {
			if err := it.fill(c); err != nil {
				it.err = err
				return 0, Event{}, err
			}
			if c.pos < c.blk.N {
				heap.Push(&it.h, c)
			}
		}
	}
	if it.h.Len() == 0 {
		it.err = io.EOF
		return 0, Event{}, io.EOF
	}
	c := it.h[0]
	ev := c.blk.Event(c.pos)
	c.pos++
	switch ev.Kind {
	case KindAlloc:
		c.clock += ev.Size
	case KindFree:
	default:
		it.err = fmt.Errorf("trace: interleaver: shard %d event has bad kind %d", c.idx, ev.Kind)
		return 0, Event{}, it.err
	}
	if c.pos >= c.blk.N {
		if err := it.fill(c); err != nil {
			// The current event is still valid; the error surfaces on the
			// next call, preserving the scalar event-then-error order.
			it.err = err
			heap.Pop(&it.h)
			return c.idx, ev, nil
		}
	}
	if c.pos < c.blk.N {
		heap.Fix(&it.h, 0)
	} else {
		heap.Pop(&it.h)
	}
	return c.idx, ev, nil
}

// fill refills c's buffered block. A clean end leaves the cursor empty
// with a nil error; a non-EOF error is returned.
func (it *Interleaver) fill(c *mergeCursor) error {
	err := c.bs.NextBlock(c.blk)
	c.pos = 0
	if err == io.EOF {
		c.blk.Reset()
		return nil
	}
	return err
}

// cursorHeap is a min-heap on (shard clock, tie-break key).
type cursorHeap []*mergeCursor

func (h cursorHeap) Len() int { return len(h) }
func (h cursorHeap) Less(i, j int) bool {
	if h[i].clock != h[j].clock {
		return h[i].clock < h[j].clock
	}
	if h[i].byKey {
		return h[i].key < h[j].key
	}
	return h[i].idx < h[j].idx
}
func (h cursorHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *cursorHeap) Push(x interface{}) { *h = append(*h, x.(*mergeCursor)) }
func (h *cursorHeap) Pop() interface{} {
	old := *h
	n := len(old)
	v := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return v
}

// MergeSource streams the byte-clock merge of several shards as a single
// coherent trace: object ids rebased by the caller-supplied offsets,
// chains lazily re-interned by function name into a fresh table in
// merged-encounter order. With offsets from RebaseOffsets the stream is
// byte-identical to materialized Merge over the same shards.
//
// Like TextReader, MergeSource's table grows as the stream is consumed
// (a chain is interned the first time any shard's alloc references it),
// so it deliberately implements only the scalar Source interface: the
// BlockSource contract promises a complete table before the first block,
// which a streaming merge cannot honor.
type MergeSource struct {
	it      *Interleaver
	shards  []Source
	bases   []ObjectID
	memos   []map[callchain.ChainID]callchain.ChainID
	tb      *callchain.Table
	program string
	input   string
}

// MergeSources returns a streaming merge of shards — the Source
// counterpart of Merge. bases[i] is added to every object id from shard
// i; callers must pick offsets that keep the rebased id ranges disjoint
// (RebaseOffsets derives Merge's choice from per-shard maximum ids).
// Program and Input follow Merge's header convention: first non-empty
// value wins, conflicting non-empty values are an error.
func MergeSources(shards []Source, bases []ObjectID) (*MergeSource, error) {
	if len(shards) == 0 {
		return nil, fmt.Errorf("trace: MergeSources needs at least one shard")
	}
	if len(bases) != len(shards) {
		return nil, fmt.Errorf("trace: MergeSources: %d shards but %d bases", len(shards), len(bases))
	}
	programs := make([]string, len(shards))
	inputs := make([]string, len(shards))
	for i, s := range shards {
		m := s.Meta()
		programs[i], inputs[i] = m.Program, m.Input
	}
	program, input, err := mergeHeaders(programs, inputs)
	if err != nil {
		return nil, err
	}
	ms := &MergeSource{
		it:      NewInterleaver(shards),
		shards:  shards,
		bases:   append([]ObjectID(nil), bases...),
		memos:   make([]map[callchain.ChainID]callchain.ChainID, len(shards)),
		tb:      callchain.NewTable(),
		program: program,
		input:   input,
	}
	for i := range ms.memos {
		ms.memos[i] = make(map[callchain.ChainID]callchain.ChainID)
	}
	return ms, nil
}

// RebaseOffsets computes the object-id offsets Merge uses: shard i's ids
// shift past every earlier shard's id range, i.e. by the sum of
// (maxAllocID + 1) over shards before it. maxIDs[i] is the maximum
// object id among shard i's alloc events (zero for an empty shard). A
// streaming caller that knows each shard's id range up front (synth
// generators number ids densely from zero, so maxIDs[i] = allocs-1)
// passes it here; otherwise any offsets with disjoint ranges work.
func RebaseOffsets(maxIDs []ObjectID) []ObjectID {
	bases := make([]ObjectID, len(maxIDs))
	var base ObjectID
	for i, m := range maxIDs {
		bases[i] = base
		base += m + 1
	}
	return bases
}

// Meta returns the merged header. Program and Input are valid from the
// start; FunctionCalls and NonHeapRefs are sums over the shards and only
// final after Next has returned io.EOF (trailer metadata, as on any
// streaming Source).
func (ms *MergeSource) Meta() Meta {
	m := Meta{Program: ms.program, Input: ms.input}
	for _, s := range ms.shards {
		sm := s.Meta()
		m.FunctionCalls += sm.FunctionCalls
		m.NonHeapRefs += sm.NonHeapRefs
	}
	return m
}

// Table returns the merged chain table. It grows as events stream (see
// the type comment).
func (ms *MergeSource) Table() *callchain.Table { return ms.tb }

// EventCount implements Counted when every shard knows its count.
func (ms *MergeSource) EventCount() (int, bool) {
	total := 0
	for _, s := range ms.shards {
		c, ok := s.(Counted)
		if !ok {
			return 0, false
		}
		n, known := c.EventCount()
		if !known {
			return 0, false
		}
		total += n
	}
	return total, true
}

// Next implements Source: the next merged event with its id rebased and
// its chain re-interned into the merged table.
func (ms *MergeSource) Next() (Event, error) {
	shard, ev, err := ms.it.Next()
	if err != nil {
		return Event{}, err
	}
	ev.Obj += ms.bases[shard]
	if ev.Kind == KindAlloc {
		mapped, ok := ms.memos[shard][ev.Chain]
		if !ok {
			tb := ms.shards[shard].Table()
			fs := tb.Funcs(ev.Chain)
			names := make([]string, len(fs))
			for j, f := range fs {
				names[j] = tb.FuncName(f)
			}
			mapped = ms.tb.InternNames(names...)
			ms.memos[shard][ev.Chain] = mapped
		}
		ev.Chain = mapped
	}
	return ev, nil
}
