package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// The binary trace format, all integers unsigned varints unless noted:
//
//	magic        "LPTRACE1\n"
//	program      string (varint length + bytes)
//	input        string
//	funcCalls    varint
//	nonHeapRefs  varint
//	numFuncs     varint, then each function name as a string
//	numChains    varint, then each chain as varint length + varint func ids
//	             (chain 0, the empty chain, is implicit and not written)
//	numEvents    varint, then each event:
//	             kind byte; alloc: obj, size, chain, refs; free: obj
const binaryMagic = "LPTRACE1\n"

type countingWriter struct {
	w *bufio.Writer
}

func (cw countingWriter) uvarint(v uint64) error {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	_, err := cw.w.Write(buf[:n])
	return err
}

func (cw countingWriter) str(s string) error {
	if err := cw.uvarint(uint64(len(s))); err != nil {
		return err
	}
	_, err := cw.w.WriteString(s)
	return err
}

// WriteBinary serializes a trace in the compact binary format.
func WriteBinary(w io.Writer, tr *Trace) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	cw := countingWriter{bw}
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return err
	}
	if err := cw.str(tr.Program); err != nil {
		return err
	}
	if err := cw.str(tr.Input); err != nil {
		return err
	}
	if err := cw.uvarint(uint64(tr.FunctionCalls)); err != nil {
		return err
	}
	if err := cw.uvarint(uint64(tr.NonHeapRefs)); err != nil {
		return err
	}
	if err := writeTable(cw, tr.Table); err != nil {
		return err
	}
	if err := cw.uvarint(uint64(len(tr.Events))); err != nil {
		return err
	}
	for _, ev := range tr.Events {
		if err := bw.WriteByte(byte(ev.Kind)); err != nil {
			return err
		}
		if err := cw.uvarint(uint64(ev.Obj)); err != nil {
			return err
		}
		if ev.Kind == KindAlloc {
			if err := cw.uvarint(uint64(ev.Size)); err != nil {
				return err
			}
			if err := cw.uvarint(uint64(ev.Chain)); err != nil {
				return err
			}
			if err := cw.uvarint(uint64(ev.Refs)); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

type countingReader struct {
	r *bufio.Reader
}

func (cr countingReader) uvarint() (uint64, error) {
	return binary.ReadUvarint(cr.r)
}

func (cr countingReader) str() (string, error) {
	n, err := cr.uvarint()
	if err != nil {
		return "", err
	}
	if n > 1<<20 {
		return "", fmt.Errorf("trace: string length %d too large", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(cr.r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

// ReadBinary parses a trace previously written by WriteBinary (or by the
// streaming Writer — both magics are accepted). The trace gets a fresh
// callchain.Table; chain ids are preserved exactly. It is Collect over
// NewReader: the capacity hint is clamped, so a forged event count can
// no longer force a proportional allocation up front.
func ReadBinary(r io.Reader) (*Trace, error) {
	src, err := NewReader(r)
	if err != nil {
		return nil, err
	}
	return Collect(src)
}

// WriteText writes a human-readable rendering of the trace, one event per
// line, for debugging and the lpgen -text mode:
//
//	alloc <obj> size=<n> refs=<n> chain=main>parse>xmalloc
//	free <obj>
func WriteText(w io.Writer, tr *Trace) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# program=%s input=%s calls=%d nonheaprefs=%d\n",
		tr.Program, tr.Input, tr.FunctionCalls, tr.NonHeapRefs)
	for _, ev := range tr.Events {
		switch ev.Kind {
		case KindAlloc:
			fmt.Fprintf(bw, "alloc %d size=%d refs=%d chain=%s\n",
				ev.Obj, ev.Size, ev.Refs, tr.Table.String(ev.Chain))
		case KindFree:
			fmt.Fprintf(bw, "free %d\n", ev.Obj)
		}
	}
	return bw.Flush()
}

// ReadText parses the text rendering produced by WriteText or
// TextWriter. It is Collect over NewTextReader.
func ReadText(r io.Reader) (*Trace, error) {
	return Collect(NewTextReader(r))
}
