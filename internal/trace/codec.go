package trace

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"strings"

	"repro/internal/callchain"
)

// The binary trace format, all integers unsigned varints unless noted:
//
//	magic        "LPTRACE1\n"
//	program      string (varint length + bytes)
//	input        string
//	funcCalls    varint
//	nonHeapRefs  varint
//	numFuncs     varint, then each function name as a string
//	numChains    varint, then each chain as varint length + varint func ids
//	             (chain 0, the empty chain, is implicit and not written)
//	numEvents    varint, then each event:
//	             kind byte; alloc: obj, size, chain, refs; free: obj
const binaryMagic = "LPTRACE1\n"

type countingWriter struct {
	w *bufio.Writer
}

func (cw countingWriter) uvarint(v uint64) error {
	var buf [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(buf[:], v)
	_, err := cw.w.Write(buf[:n])
	return err
}

func (cw countingWriter) str(s string) error {
	if err := cw.uvarint(uint64(len(s))); err != nil {
		return err
	}
	_, err := cw.w.WriteString(s)
	return err
}

// WriteBinary serializes a trace in the compact binary format.
func WriteBinary(w io.Writer, tr *Trace) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	cw := countingWriter{bw}
	if _, err := bw.WriteString(binaryMagic); err != nil {
		return err
	}
	if err := cw.str(tr.Program); err != nil {
		return err
	}
	if err := cw.str(tr.Input); err != nil {
		return err
	}
	if err := cw.uvarint(uint64(tr.FunctionCalls)); err != nil {
		return err
	}
	if err := cw.uvarint(uint64(tr.NonHeapRefs)); err != nil {
		return err
	}
	nf := tr.Table.NumFuncs()
	if err := cw.uvarint(uint64(nf)); err != nil {
		return err
	}
	for i := 0; i < nf; i++ {
		if err := cw.str(tr.Table.FuncName(callchain.FuncID(i))); err != nil {
			return err
		}
	}
	nc := tr.Table.NumChains()
	if err := cw.uvarint(uint64(nc - 1)); err != nil {
		return err
	}
	for i := 1; i < nc; i++ {
		fs := tr.Table.Funcs(callchain.ChainID(i))
		if err := cw.uvarint(uint64(len(fs))); err != nil {
			return err
		}
		for _, f := range fs {
			if err := cw.uvarint(uint64(f)); err != nil {
				return err
			}
		}
	}
	if err := cw.uvarint(uint64(len(tr.Events))); err != nil {
		return err
	}
	for _, ev := range tr.Events {
		if err := bw.WriteByte(byte(ev.Kind)); err != nil {
			return err
		}
		if err := cw.uvarint(uint64(ev.Obj)); err != nil {
			return err
		}
		if ev.Kind == KindAlloc {
			if err := cw.uvarint(uint64(ev.Size)); err != nil {
				return err
			}
			if err := cw.uvarint(uint64(ev.Chain)); err != nil {
				return err
			}
			if err := cw.uvarint(uint64(ev.Refs)); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

type countingReader struct {
	r *bufio.Reader
}

func (cr countingReader) uvarint() (uint64, error) {
	return binary.ReadUvarint(cr.r)
}

func (cr countingReader) str() (string, error) {
	n, err := cr.uvarint()
	if err != nil {
		return "", err
	}
	if n > 1<<20 {
		return "", fmt.Errorf("trace: string length %d too large", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(cr.r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

// ReadBinary parses a trace previously written by WriteBinary. The trace
// gets a fresh callchain.Table; chain ids are preserved exactly.
func ReadBinary(r io.Reader) (*Trace, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	cr := countingReader{br}
	magic := make([]byte, len(binaryMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("trace: reading magic: %w", err)
	}
	if string(magic) != binaryMagic {
		return nil, fmt.Errorf("trace: bad magic %q", magic)
	}
	tr := &Trace{Table: callchain.NewTable()}
	var err error
	if tr.Program, err = cr.str(); err != nil {
		return nil, err
	}
	if tr.Input, err = cr.str(); err != nil {
		return nil, err
	}
	fc, err := cr.uvarint()
	if err != nil {
		return nil, err
	}
	tr.FunctionCalls = int64(fc)
	nhr, err := cr.uvarint()
	if err != nil {
		return nil, err
	}
	tr.NonHeapRefs = int64(nhr)

	nf, err := cr.uvarint()
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < nf; i++ {
		name, err := cr.str()
		if err != nil {
			return nil, err
		}
		if got := tr.Table.Func(name); uint64(got) != i {
			return nil, fmt.Errorf("trace: duplicate function name %q in table", name)
		}
	}
	nc, err := cr.uvarint()
	if err != nil {
		return nil, err
	}
	for i := uint64(0); i < nc; i++ {
		cl, err := cr.uvarint()
		if err != nil {
			return nil, err
		}
		if cl > 1<<16 {
			return nil, fmt.Errorf("trace: chain length %d too large", cl)
		}
		fs := make([]callchain.FuncID, cl)
		for j := range fs {
			v, err := cr.uvarint()
			if err != nil {
				return nil, err
			}
			if v >= nf {
				return nil, fmt.Errorf("trace: chain references unknown function %d", v)
			}
			fs[j] = callchain.FuncID(v)
		}
		if got := tr.Table.Intern(fs); uint64(got) != i+1 {
			return nil, fmt.Errorf("trace: duplicate chain %d in table", i+1)
		}
	}
	ne, err := cr.uvarint()
	if err != nil {
		return nil, err
	}
	tr.Events = make([]Event, 0, ne)
	for i := uint64(0); i < ne; i++ {
		kb, err := br.ReadByte()
		if err != nil {
			return nil, err
		}
		ev := Event{Kind: Kind(kb)}
		obj, err := cr.uvarint()
		if err != nil {
			return nil, err
		}
		ev.Obj = ObjectID(obj)
		switch ev.Kind {
		case KindAlloc:
			sz, err := cr.uvarint()
			if err != nil {
				return nil, err
			}
			ch, err := cr.uvarint()
			if err != nil {
				return nil, err
			}
			if ch >= uint64(tr.Table.NumChains()) {
				return nil, fmt.Errorf("trace: event %d references unknown chain %d", i, ch)
			}
			refs, err := cr.uvarint()
			if err != nil {
				return nil, err
			}
			ev.Size = int64(sz)
			ev.Chain = callchain.ChainID(ch)
			ev.Refs = int64(refs)
		case KindFree:
		default:
			return nil, fmt.Errorf("trace: event %d: bad kind %d", i, kb)
		}
		tr.Events = append(tr.Events, ev)
	}
	return tr, nil
}

// WriteText writes a human-readable rendering of the trace, one event per
// line, for debugging and the lpgen -text mode:
//
//	alloc <obj> size=<n> refs=<n> chain=main>parse>xmalloc
//	free <obj>
func WriteText(w io.Writer, tr *Trace) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# program=%s input=%s calls=%d nonheaprefs=%d\n",
		tr.Program, tr.Input, tr.FunctionCalls, tr.NonHeapRefs)
	for _, ev := range tr.Events {
		switch ev.Kind {
		case KindAlloc:
			fmt.Fprintf(bw, "alloc %d size=%d refs=%d chain=%s\n",
				ev.Obj, ev.Size, ev.Refs, tr.Table.String(ev.Chain))
		case KindFree:
			fmt.Fprintf(bw, "free %d\n", ev.Obj)
		}
	}
	return bw.Flush()
}

// ReadText parses the text rendering produced by WriteText.
func ReadText(r io.Reader) (*Trace, error) {
	tr := &Trace{Table: callchain.NewTable()}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		if strings.HasPrefix(line, "#") {
			for _, field := range strings.Fields(strings.TrimPrefix(line, "#")) {
				k, v, ok := strings.Cut(field, "=")
				if !ok {
					continue
				}
				switch k {
				case "program":
					tr.Program = v
				case "input":
					tr.Input = v
				case "calls":
					fmt.Sscanf(v, "%d", &tr.FunctionCalls)
				case "nonheaprefs":
					fmt.Sscanf(v, "%d", &tr.NonHeapRefs)
				}
			}
			continue
		}
		fields := strings.Fields(line)
		switch fields[0] {
		case "alloc":
			if len(fields) != 5 {
				return nil, fmt.Errorf("trace: line %d: malformed alloc", lineNo)
			}
			var ev Event
			ev.Kind = KindAlloc
			if _, err := fmt.Sscanf(fields[1], "%d", &ev.Obj); err != nil {
				return nil, fmt.Errorf("trace: line %d: %w", lineNo, err)
			}
			if _, err := fmt.Sscanf(fields[2], "size=%d", &ev.Size); err != nil {
				return nil, fmt.Errorf("trace: line %d: %w", lineNo, err)
			}
			if _, err := fmt.Sscanf(fields[3], "refs=%d", &ev.Refs); err != nil {
				return nil, fmt.Errorf("trace: line %d: %w", lineNo, err)
			}
			chainStr, ok := strings.CutPrefix(fields[4], "chain=")
			if !ok {
				return nil, fmt.Errorf("trace: line %d: missing chain", lineNo)
			}
			if chainStr == "" {
				ev.Chain = 0
			} else {
				ev.Chain = tr.Table.InternNames(strings.Split(chainStr, ">")...)
			}
			tr.Events = append(tr.Events, ev)
		case "free":
			if len(fields) != 2 {
				return nil, fmt.Errorf("trace: line %d: malformed free", lineNo)
			}
			var obj ObjectID
			if _, err := fmt.Sscanf(fields[1], "%d", &obj); err != nil {
				return nil, fmt.Errorf("trace: line %d: %w", lineNo, err)
			}
			tr.Events = append(tr.Events, Event{Kind: KindFree, Obj: obj})
		default:
			return nil, fmt.Errorf("trace: line %d: unknown event %q", lineNo, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return tr, nil
}
