package check

import (
	"fmt"

	"repro/internal/callchain"
	"repro/internal/trace"
	"repro/internal/xrand"
)

// GenConfig shapes the random legal traces the property runner feeds the
// harness.
type GenConfig struct {
	// Events is the target event count per case (default 400).
	Events int
	// Sites is how many distinct call chains allocations draw from
	// (default 8).
	Sites int
	// MaxSize bounds request sizes (default 8192, above the 4KB arena
	// size so the big-object path is exercised).
	MaxSize int64
	// FreeFrac is the probability an event frees a live object instead
	// of allocating, when any is live (default 0.45, so traces end with
	// survivors and the never-freed paths run too).
	FreeFrac float64
}

func (c GenConfig) withDefaults() GenConfig {
	if c.Events <= 0 {
		c.Events = 400
	}
	if c.Sites <= 0 {
		c.Sites = 8
	}
	if c.MaxSize <= 0 {
		c.MaxSize = 8192
	}
	if c.FreeFrac <= 0 {
		c.FreeFrac = 0.45
	}
	return c
}

// GenTrace generates a random legal allocation trace from the seed:
// every free names a live object, ids are dense in birth order, sizes
// are skewed small with an occasional arena-overflowing large request.
// The same seed and config always produce the same trace.
func GenTrace(seed uint64, cfg GenConfig) *trace.Trace {
	cfg = cfg.withDefaults()
	r := xrand.New(seed ^ 0x5bd1e995c0ffee11)
	tb := callchain.NewTable()
	chains := make([]callchain.ChainID, cfg.Sites)
	for i := range chains {
		switch i % 3 {
		case 0:
			chains[i] = tb.InternNames("main", fmt.Sprintf("gen_%d", i))
		case 1:
			chains[i] = tb.InternNames("main", "dispatch", fmt.Sprintf("gen_%d", i))
		default:
			chains[i] = tb.InternNames("main", "dispatch", "worker", fmt.Sprintf("gen_%d", i))
		}
	}

	tr := &trace.Trace{
		Program: fmt.Sprintf("gen-%d", seed),
		Input:   "prop",
		Table:   tb,
		Events:  make([]trace.Event, 0, cfg.Events),
	}
	var live []trace.ObjectID
	var next trace.ObjectID
	for len(tr.Events) < cfg.Events {
		if len(live) > 0 && r.Bool(cfg.FreeFrac) {
			i := r.Intn(len(live))
			id := live[i]
			live[i] = live[len(live)-1]
			live = live[:len(live)-1]
			tr.Events = append(tr.Events, trace.Event{Kind: trace.KindFree, Obj: id})
			continue
		}
		size := r.Range(1, 192)
		switch {
		case r.Bool(0.05):
			size = r.Range(cfg.MaxSize/2, cfg.MaxSize) // arena-overflow sized
		case r.Bool(0.25):
			size = r.Range(193, 1024)
		}
		tr.Events = append(tr.Events, trace.Event{
			Kind:  trace.KindAlloc,
			Obj:   next,
			Size:  size,
			Chain: chains[r.Intn(len(chains))],
			Refs:  r.Range(0, 8),
		})
		live = append(live, next)
		next++
	}
	tr.FunctionCalls = int64(len(tr.Events)) * 3
	tr.NonHeapRefs = int64(len(tr.Events))
	return tr
}

// GenPredict returns a deterministic pseudo-predictor for property runs:
// it predicts small requests short-lived, which is wrong often enough on
// random traces to exercise arena pollution, demotion, and fallback.
func GenPredict(threshold int64) Predict {
	return func(_ callchain.ChainID, size int64) bool { return size <= threshold }
}
