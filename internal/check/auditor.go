// Package check is the allocator conformance harness: correctness
// tooling that cross-checks the heapsim simulators against the trace's
// own ground truth and against each other, so that accounting bugs —
// the kind that silently flip allocator-simulation conclusions — are
// caught by construction rather than by eyeballing Table 8.
//
// It has three layers:
//
//   - an invariant auditor (Audit, AuditState) that walks an allocator's
//     block/arena layout through the heapsim.Walker interface and proves
//     no-overlap, free-list well-formedness, live-byte conservation
//     against the replayed trace's ledger, and the HeapSize accounting
//     identity, after every event or on a sampling stride;
//   - a differential replay oracle (Diff) that replays one trace through
//     several allocators in lockstep and asserts policy-independent
//     agreement, plus metamorphic properties (metamorphic.go);
//   - a property-based generator (GenTrace) with a delta-debugging
//     shrinker (Shrink) that minimizes any violating trace to a small
//     replayable repro.
//
// cmd/lpcheck drives all three from the command line and CI.
package check

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/callchain"
	"repro/internal/heapsim"
	"repro/internal/profile"
	"repro/internal/trace"
)

// Predict is the lifetime-prediction hint fed to allocators during a
// replay; nil predicts nothing short-lived.
type Predict func(chain callchain.ChainID, size int64) bool

// Options configures a conformance replay.
type Options struct {
	// Stride audits the allocator state every Stride events; 1 audits
	// after every event, 0 or negative audits only at end of trace.
	Stride int
	// Predict supplies the predictedShort hint; nil predicts nothing.
	Predict Predict
	// DeadSample is how many recently-freed object ids the ledger
	// retains for negative liveness probes (default 32).
	DeadSample int
	// Predictor, when non-nil, is threaded through the block/scalar
	// equivalence replay (CheckBlockEquivalence) so the pred.* accuracy
	// families are part of what must match. Unlike Predict it carries the
	// trained site database the real replay engine consumes.
	Predictor *profile.Predictor
}

func (o Options) deadSample() int {
	if o.DeadSample <= 0 {
		return 32
	}
	return o.DeadSample
}

// Ledger is the trace's own account of what must be live: the ground
// truth every allocator is audited against. It also validates the event
// stream itself (no double alloc, no unknown free), so a malformed trace
// is reported as a trace error, never as an allocator violation.
type Ledger struct {
	live      map[trace.ObjectID]int64
	liveBytes int64
	allocs    int64
	frees     int64

	maxID    trace.ObjectID
	anyAlloc bool
	dead     []trace.ObjectID // ring of recently freed ids
	deadNext int
}

// NewLedger returns an empty ledger retaining deadSample freed ids.
func NewLedger(deadSample int) *Ledger {
	if deadSample <= 0 {
		deadSample = 32
	}
	return &Ledger{
		live: make(map[trace.ObjectID]int64),
		dead: make([]trace.ObjectID, 0, deadSample),
	}
}

// Apply folds one event into the ledger, validating trace legality.
func (l *Ledger) Apply(ev trace.Event) error {
	switch ev.Kind {
	case trace.KindAlloc:
		if ev.Size <= 0 {
			return fmt.Errorf("trace: non-positive allocation size %d", ev.Size)
		}
		if _, dup := l.live[ev.Obj]; dup {
			return fmt.Errorf("trace: object %d allocated while already live", ev.Obj)
		}
		l.live[ev.Obj] = ev.Size
		l.liveBytes += ev.Size
		l.allocs++
		if !l.anyAlloc || ev.Obj > l.maxID {
			l.maxID = ev.Obj
			l.anyAlloc = true
		}
	case trace.KindFree:
		sz, ok := l.live[ev.Obj]
		if !ok {
			return fmt.Errorf("trace: free of unknown or dead object %d", ev.Obj)
		}
		delete(l.live, ev.Obj)
		l.liveBytes -= sz
		l.frees++
		if cap(l.dead) > 0 {
			if len(l.dead) < cap(l.dead) {
				l.dead = append(l.dead, ev.Obj)
			} else {
				l.dead[l.deadNext] = ev.Obj
				l.deadNext = (l.deadNext + 1) % cap(l.dead)
			}
		}
	default:
		return fmt.Errorf("trace: bad event kind %d", ev.Kind)
	}
	return nil
}

// LiveObjects returns how many objects the trace says are live.
func (l *Ledger) LiveObjects() int { return len(l.live) }

// LiveBytes returns the trace's live payload byte total.
func (l *Ledger) LiveBytes() int64 { return l.liveBytes }

// deadIDs returns ids that must not be live: recently freed ones plus
// one id never allocated.
func (l *Ledger) deadIDs() []trace.ObjectID {
	never := l.maxID + 1
	if !l.anyAlloc {
		never = 0
	}
	out := make([]trace.ObjectID, 0, len(l.dead)+1)
	for _, id := range l.dead {
		if _, stillLive := l.live[id]; !stillLive { // id may have been re-allocated
			out = append(out, id)
		}
	}
	return append(out, never)
}

// invariantChecker is the self-check hook the boundary-tag heaps expose.
type invariantChecker interface {
	CheckInvariants() error
}

// AuditState runs one full audit of an allocator's current state against
// the ledger. The name labels violations. Checks, in order:
//
//   - the allocator's own structural self-check (CheckInvariants), when
//     it has one;
//   - operation conservation: Counts().Allocs/Frees equal the ledger's;
//   - when the allocator implements heapsim.Walker, the layout checks:
//     region windows disjoint and summing to HeapSize(), every span
//     inside its region, spans pairwise disjoint, tiled regions gapless,
//     coalesced regions with no adjacent free pairs, and the walked live
//     set identical to the ledger's (same ids, same payload bytes);
//   - liveness agreement: Addr reports every ledger-live id inside its
//     walked span, and reports recently-freed and never-allocated ids
//     dead.
func AuditState(name string, alloc heapsim.Allocator, led *Ledger) error {
	if ic, ok := alloc.(invariantChecker); ok {
		if err := ic.CheckInvariants(); err != nil {
			return fmt.Errorf("%s: self-check: %w", name, err)
		}
	}
	c := alloc.Counts()
	if c.Allocs != led.allocs {
		return fmt.Errorf("%s: Counts().Allocs = %d, trace performed %d", name, c.Allocs, led.allocs)
	}
	if c.Frees != led.frees {
		return fmt.Errorf("%s: Counts().Frees = %d, trace performed %d", name, c.Frees, led.frees)
	}

	w, ok := alloc.(heapsim.Walker)
	if ok {
		if err := auditLayout(name, alloc, w, led); err != nil {
			return err
		}
	} else {
		// Without layout access, at least hold the liveness surface.
		for id := range led.live {
			if _, live := alloc.Addr(id); !live {
				return fmt.Errorf("%s: live object %d reported dead by Addr", name, id)
			}
		}
	}
	for _, id := range led.deadIDs() {
		if a, live := alloc.Addr(id); live {
			return fmt.Errorf("%s: dead object %d reported live at %d by Addr", name, id, a)
		}
	}
	return nil
}

// auditLayout performs the Walker-based layout checks.
func auditLayout(name string, alloc heapsim.Allocator, w heapsim.Walker, led *Ledger) error {
	regions := w.Regions()
	byName := make(map[string]heapsim.Region, len(regions))
	var extent int64
	for _, r := range regions {
		if r.End < r.Base {
			return fmt.Errorf("%s: region %q ends at %d before its base %d", name, r.Name, r.End, r.Base)
		}
		if _, dup := byName[r.Name]; dup {
			return fmt.Errorf("%s: duplicate region %q", name, r.Name)
		}
		byName[r.Name] = r
		extent += r.End - r.Base
	}
	sorted := append([]heapsim.Region(nil), regions...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Base < sorted[j].Base })
	for i := 1; i < len(sorted); i++ {
		if sorted[i].Base < sorted[i-1].End {
			return fmt.Errorf("%s: regions %q and %q overlap", name, sorted[i-1].Name, sorted[i].Name)
		}
	}
	if hs := alloc.HeapSize(); extent != hs {
		return fmt.Errorf("%s: region extents sum to %d bytes, HeapSize() reports %d", name, extent, hs)
	}

	spans := make(map[string][]heapsim.Span, len(regions))
	liveSeen := make(map[trace.ObjectID]heapsim.Span, len(led.live))
	var liveBytes int64
	err := w.Walk(func(s heapsim.Span) error {
		r, ok := byName[s.Region]
		if !ok {
			return fmt.Errorf("span at %d in undeclared region %q", s.Addr, s.Region)
		}
		if s.Size <= 0 {
			return fmt.Errorf("span at %d in %q has size %d", s.Addr, s.Region, s.Size)
		}
		if s.Addr < r.Base || s.Addr+s.Size > r.End {
			return fmt.Errorf("span [%d,%d) escapes region %q [%d,%d)",
				s.Addr, s.Addr+s.Size, r.Name, r.Base, r.End)
		}
		if !s.Free {
			if s.Payload < 0 || s.Payload > s.Size {
				return fmt.Errorf("object %d at %d has payload %d in a %d-byte span",
					s.Obj, s.Addr, s.Payload, s.Size)
			}
			if prev, dup := liveSeen[s.Obj]; dup {
				return fmt.Errorf("object %d walked twice, at %d and %d", s.Obj, prev.Addr, s.Addr)
			}
			liveSeen[s.Obj] = s
			liveBytes += s.Payload
		}
		spans[s.Region] = append(spans[s.Region], s)
		return nil
	})
	if err != nil {
		return fmt.Errorf("%s: %w", name, err)
	}

	for _, r := range regions {
		ss := spans[r.Name]
		sort.Slice(ss, func(i, j int) bool { return ss[i].Addr < ss[j].Addr })
		for i := 1; i < len(ss); i++ {
			prev, cur := ss[i-1], ss[i]
			if cur.Addr < prev.Addr+prev.Size {
				return fmt.Errorf("%s: %q spans [%d,%d) and [%d,%d) overlap", name, r.Name,
					prev.Addr, prev.Addr+prev.Size, cur.Addr, cur.Addr+cur.Size)
			}
			if r.Coalesced && prev.Free && cur.Free && cur.Addr == prev.Addr+prev.Size {
				return fmt.Errorf("%s: %q has adjacent free spans at %d and %d (missed coalesce)",
					name, r.Name, prev.Addr, cur.Addr)
			}
		}
		if r.Tiled {
			at := r.Base
			for _, s := range ss {
				if s.Addr != at {
					return fmt.Errorf("%s: %q gap or overlap: span at %d, expected %d", name, r.Name, s.Addr, at)
				}
				at += s.Size
			}
			if at != r.End {
				return fmt.Errorf("%s: %q spans cover up to %d, region ends at %d", name, r.Name, at, r.End)
			}
		}
	}

	// The walked live set must be the ledger's, byte for byte.
	if len(liveSeen) != len(led.live) {
		return fmt.Errorf("%s: layout holds %d live objects, trace says %d", name, len(liveSeen), len(led.live))
	}
	if liveBytes != led.liveBytes {
		return fmt.Errorf("%s: layout holds %d live payload bytes, trace says %d", name, liveBytes, led.liveBytes)
	}
	for id, size := range led.live {
		s, ok := liveSeen[id]
		if !ok {
			return fmt.Errorf("%s: live object %d missing from walked layout", name, id)
		}
		if s.Payload != size {
			return fmt.Errorf("%s: object %d walked with payload %d, trace allocated %d", name, id, s.Payload, size)
		}
		a, live := alloc.Addr(id)
		if !live {
			return fmt.Errorf("%s: live object %d reported dead by Addr", name, id)
		}
		if a < s.Addr || a+size > s.Addr+s.Size {
			return fmt.Errorf("%s: object %d payload [%d,%d) escapes its span [%d,%d)",
				name, id, a, a+size, s.Addr, s.Addr+s.Size)
		}
	}
	return nil
}

// Audit replays a trace source through one allocator, auditing on the
// configured stride and always at end of trace. Violations carry the
// event index at which they were detected.
func Audit(src trace.Source, name string, alloc heapsim.Allocator, opt Options) error {
	led := NewLedger(opt.deadSample())
	i := 0
	for ; ; i++ {
		ev, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		if err := led.Apply(ev); err != nil {
			return fmt.Errorf("event %d: %w", i, err)
		}
		if err := applyEvent(alloc, ev, opt.Predict); err != nil {
			return fmt.Errorf("event %d: %s rejected legal event: %w", i, name, err)
		}
		if opt.Stride > 0 && (i+1)%opt.Stride == 0 {
			if err := AuditState(name, alloc, led); err != nil {
				return fmt.Errorf("after event %d: %w", i, err)
			}
		}
	}
	if err := AuditState(name, alloc, led); err != nil {
		return fmt.Errorf("at end of trace (%d events): %w", i, err)
	}
	return nil
}

// applyEvent feeds one event to an allocator with the prediction hint.
func applyEvent(alloc heapsim.Allocator, ev trace.Event, pred Predict) error {
	switch ev.Kind {
	case trace.KindAlloc:
		short := false
		if pred != nil {
			short = pred(ev.Chain, ev.Size)
		}
		return alloc.Alloc(ev.Obj, ev.Size, short)
	case trace.KindFree:
		return alloc.Free(ev.Obj)
	default:
		return fmt.Errorf("bad event kind %d", ev.Kind)
	}
}
