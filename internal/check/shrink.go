package check

import (
	"bytes"
	"encoding/hex"
	"fmt"
	"io"

	"repro/internal/trace"
)

// shrinkBudget bounds the number of candidate replays one Shrink call
// may perform, so shrinking a pathological case still terminates fast.
const shrinkBudget = 4000

// Shrink minimizes a failing trace by deterministic delta debugging:
// it repeatedly removes chunks of events (repairing legality, so a
// removed allocation takes its free with it), halving the chunk size
// down to single events, then shrinks the surviving allocation sizes.
// fails must report a non-nil error for the original trace; the returned
// trace still fails and is usually drastically smaller. The predicate is
// called on candidate traces only — never mutated shared state — so any
// replay-based checker is safe to pass.
func Shrink(tr *trace.Trace, fails func(*trace.Trace) error) *trace.Trace {
	cur := tr.Events
	budget := shrinkBudget
	attempt := func(events []trace.Event) bool {
		if budget <= 0 {
			return false
		}
		budget--
		return fails(withEvents(tr, events)) != nil
	}

	// ddmin over event subsets: try removing a window; on success stay
	// at the same offset (new content slid under it), on failure slide
	// on. A pass with no removal halves the window; convergence is a
	// removal-free pass at window 1.
	chunk := max(1, len(cur)/2)
	for budget > 0 {
		removed := false
		for start := 0; start < len(cur) && budget > 0; {
			end := min(start+chunk, len(cur))
			cand := repair(append(append([]trace.Event(nil), cur[:start]...), cur[end:]...))
			if len(cand) < len(cur) && attempt(cand) {
				cur = cand
				removed = true
			} else {
				start += chunk
			}
		}
		if !removed {
			if chunk == 1 {
				break
			}
			chunk = max(1, chunk/2)
		}
	}

	// Size minimization: try 1, then halvings, for each allocation.
	for i := range cur {
		if cur[i].Kind != trace.KindAlloc {
			continue
		}
		for _, smaller := range []int64{1, cur[i].Size / 16, cur[i].Size / 2} {
			if smaller <= 0 || smaller >= cur[i].Size {
				continue
			}
			cand := append([]trace.Event(nil), cur...)
			cand[i].Size = smaller
			if attempt(cand) {
				cur = cand
				break
			}
		}
	}
	return withEvents(tr, cur)
}

// withEvents returns a shallow trace copy holding the given events.
func withEvents(tr *trace.Trace, events []trace.Event) *trace.Trace {
	out := *tr
	out.Events = events
	return &out
}

// repair drops events that lost their partner: a free whose allocation
// was removed (or which became a double free) is dropped, as is any
// duplicate allocation. The result is always a legal trace if the input
// events came from one.
func repair(events []trace.Event) []trace.Event {
	out := events[:0]
	live := make(map[trace.ObjectID]bool)
	born := make(map[trace.ObjectID]bool)
	for _, ev := range events {
		switch ev.Kind {
		case trace.KindAlloc:
			if born[ev.Obj] {
				continue
			}
			born[ev.Obj] = true
			live[ev.Obj] = true
		case trace.KindFree:
			if !live[ev.Obj] {
				continue
			}
			live[ev.Obj] = false
		}
		out = append(out, ev)
	}
	return out
}

// Violation is a minimized conformance failure with everything needed to
// reproduce it without regenerating: the shrunk trace, the seed and case
// index that produced the original, and the underlying error.
type Violation struct {
	Err    error
	Seed   uint64
	Case   int
	Trace  *trace.Trace // shrunk
	Events int          // event count of the original failing trace
}

func (v *Violation) Error() string {
	return fmt.Sprintf("case %d (seed %d): %v (shrunk to %d of %d events)",
		v.Case, v.Seed, v.Err, len(v.Trace.Events), v.Events)
}

// WriteRepro renders a violation as a replayable artifact: the shrunk
// trace in the text format (save it and re-run with `lpcheck -repro
// FILE`) and the equivalent LPTRACE2 bytes hex-encoded, so the repro
// survives channels that mangle whitespace.
func (v *Violation) WriteRepro(w io.Writer) error {
	fmt.Fprintf(w, "violation: %v\n", v.Err)
	fmt.Fprintf(w, "seed %d case %d: shrunk repro, %d events (original %d)\n",
		v.Seed, v.Case, len(v.Trace.Events), v.Events)
	fmt.Fprintf(w, "replay: save the trace between the markers and run: lpcheck -repro FILE\n")
	fmt.Fprintf(w, "--- repro.trc ---\n")
	if err := trace.WriteText(w, v.Trace); err != nil {
		return err
	}
	fmt.Fprintf(w, "--- lptrace2 hex ---\n")
	var bin bytes.Buffer
	tw, err := trace.NewWriter(&bin, trace.Meta{Program: v.Trace.Program, Input: v.Trace.Input}, v.Trace.Table)
	if err != nil {
		return err
	}
	for _, ev := range v.Trace.Events {
		if err := tw.Write(ev); err != nil {
			return err
		}
	}
	if err := tw.Close(v.Trace.FunctionCalls, v.Trace.NonHeapRefs); err != nil {
		return err
	}
	fmt.Fprintf(w, "%s\n", hex.EncodeToString(bin.Bytes()))
	return nil
}
