package check

import (
	"strings"
	"testing"

	"repro/internal/heapsim"
	"repro/internal/trace"
)

// poolOf builds a pool of n fresh members per named factory, cycling
// through names ("firstfit,arena" with n=4 gives ff,ar,ff,ar).
func poolOf(t *testing.T, n int, names ...string) *heapsim.Pool {
	t.Helper()
	fs, err := Factories(names...)
	if err != nil {
		t.Fatal(err)
	}
	members := make([]heapsim.Allocator, n)
	for i := range members {
		members[i] = fs[i%len(fs)].New()
	}
	p, err := heapsim.NewPool("pool:"+strings.Join(names, ","), members...)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestAuditPoolHomogeneous: the pool composition preserves every
// conformance invariant for same-kind members at several pool widths.
func TestAuditPoolHomogeneous(t *testing.T) {
	for _, n := range []int{1, 2, 4} {
		for seed := uint64(1); seed <= 3; seed++ {
			tr := GenTrace(seed, GenConfig{})
			p := poolOf(t, n, "firstfit")
			err := AuditPool(trace.NewSliceSource(tr), "pool", p, Options{
				Stride:  16,
				Predict: GenPredict(1 << 12),
			})
			if err != nil {
				t.Fatalf("n=%d seed=%d: %v", n, seed, err)
			}
		}
	}
}

// TestAuditPoolMixed: one pool mixing every checkable allocator kind —
// the widest arena-pool composition the cluster can build — still
// satisfies the auditor with spans spread across all member windows.
func TestAuditPoolMixed(t *testing.T) {
	names := AllocatorNames()
	for seed := uint64(1); seed <= 3; seed++ {
		tr := GenTrace(seed, GenConfig{Events: 600})
		p := poolOf(t, len(names), names...)
		err := AuditPool(trace.NewSliceSource(tr), "pool-mixed", p, Options{
			Stride:  32,
			Predict: GenPredict(1 << 12),
		})
		if err != nil {
			t.Fatalf("seed=%d: %v", seed, err)
		}
	}
}

// TestAuditPoolDetectsDisagreement: a ledger that disagrees with the
// pool's state is reported, proving the reconciliation has teeth.
func TestAuditPoolDetectsDisagreement(t *testing.T) {
	p := poolOf(t, 2, "firstfit")
	if err := p.AllocOn(1, 7, 64, false); err != nil {
		t.Fatal(err)
	}
	led := NewLedger(8)
	// The ledger never saw the allocation: op conservation must trip.
	if err := AuditState("pool", p, led); err == nil {
		t.Fatal("AuditState accepted a pool/ledger mismatch")
	}
	// And a ledger claiming a live object the pool never placed.
	led2 := NewLedger(8)
	if err := led2.Apply(trace.Event{Kind: trace.KindAlloc, Obj: 7, Size: 64}); err != nil {
		t.Fatal(err)
	}
	if err := led2.Apply(trace.Event{Kind: trace.KindAlloc, Obj: 8, Size: 32}); err != nil {
		t.Fatal(err)
	}
	if err := AuditState("pool", p, led2); err == nil {
		t.Fatal("AuditState accepted a ledger-live object the pool lacks")
	}
}
