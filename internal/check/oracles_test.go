package check

import (
	"strings"
	"testing"

	"repro/internal/heapsim"
	"repro/internal/trace"
)

// TestZooPredictsTrainsEveryPolicy: the gate must produce a callable
// verdict hook for every registered policy, total over every alloc event
// in the trace.
func TestZooPredictsTrainsEveryPolicy(t *testing.T) {
	tr := GenTrace(3, GenConfig{Events: 200})
	preds, err := ZooPredicts(tr)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"paper", "quantile", "window", "learned"} {
		if _, ok := preds[want]; !ok {
			t.Errorf("policy %s missing from gate", want)
		}
	}
	for name, p := range preds {
		n := 0
		for _, ev := range tr.Events {
			if ev.Kind == trace.KindAlloc {
				if p(ev.Chain, ev.Size) {
					n++
				}
			}
		}
		t.Logf("%s predicted %d allocs short", name, n)
	}
}

// TestCheckTraceOraclesAllAllocators is the conformance gate in tier-1
// form: every zoo policy's hints drive every built-in allocator through
// the full differential suite (lockstep diff + audits, relabel and arena
// metamorphic properties, block/scalar equivalence).
func TestCheckTraceOraclesAllAllocators(t *testing.T) {
	fs, err := Factories()
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) < 7 {
		t.Fatalf("gate covers %d allocators, want >= 7", len(fs))
	}
	for seed := uint64(31); seed < 34; seed++ {
		tr := GenTrace(seed, GenConfig{Events: 200})
		if err := CheckTraceOracles(tr, fs, Options{Stride: 16}); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
	}
}

// TestRunOraclesShrinksViolation: the zoo-gated property harness must
// catch a broken allocator under oracle-driven hints, attribute the
// failing policy by name, and ddmin the repro.
func TestRunOraclesShrinksViolation(t *testing.T) {
	fs := []Factory{
		{Name: "firstfit", New: func() heapsim.Allocator { return heapsim.NewFirstFit() }},
		{Name: "leaky", New: func() heapsim.Allocator { return newLeaky(3) }},
	}
	err := RunOracles(1993, 30, GenConfig{Events: 120}, fs, Options{Stride: 4}, nil)
	if err == nil {
		t.Fatal("zoo-gated run passed with a broken participant")
	}
	v, ok := err.(*Violation)
	if !ok {
		t.Fatalf("want *Violation, got %T: %v", err, err)
	}
	if v.Err == nil || !strings.Contains(v.Err.Error(), "oracle ") {
		t.Fatalf("violation not attributed to a policy: %v", v.Err)
	}
	if len(v.Trace.Events) > 20 {
		t.Errorf("repro not minimized: %d events", len(v.Trace.Events))
	}
}

// TestRunOraclesCleanSuite: the real allocator set passes the zoo gate.
func TestRunOraclesCleanSuite(t *testing.T) {
	fs, err := Factories()
	if err != nil {
		t.Fatal(err)
	}
	done := 0
	if err := RunOracles(7, 5, GenConfig{Events: 150}, fs, Options{Stride: 16}, func(n int) { done = n }); err != nil {
		t.Fatalf("clean zoo-gated run failed: %v", err)
	}
	if done != 5 {
		t.Fatalf("progress reported %d cases, want 5", done)
	}
}

// TestFactoriesUnknownNameListsAll: the error for an unknown allocator
// must enumerate every valid name so CLI users see their options.
func TestFactoriesUnknownNameListsAll(t *testing.T) {
	_, err := Factories("slab")
	if err == nil {
		t.Fatal("unknown allocator accepted")
	}
	for _, name := range []string{"firstfit", "bestfit", "bsd", "arena", "sitearena", "custom", "segfit"} {
		if !strings.Contains(err.Error(), name) {
			t.Errorf("error %q does not mention %s", err, name)
		}
	}
	names := AllocatorNames()
	if len(names) != 7 || names[6] != "segfit" {
		t.Fatalf("AllocatorNames = %v", names)
	}
}
