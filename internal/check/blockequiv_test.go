package check

import (
	"strings"
	"testing"

	"repro/internal/profile"
	"repro/internal/synth"
	"repro/internal/trace"
)

// TestBlockEquivalenceAcrossModels replays every synthesis model's test
// trace through all six allocators, block path against the scalar
// oracle, with a trained predictor in play so the pred.* accuracy
// families are compared too. This is the end-to-end guarantee behind the
// columnar refactor: batching changed the engine's inner loop, not one
// observable bit of its output.
func TestBlockEquivalenceAcrossModels(t *testing.T) {
	fs, err := Factories()
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range synth.All() {
		m := m
		t.Run(m.Name, func(t *testing.T) {
			t.Parallel()
			trainSrc, err := m.Source(synth.Config{Input: synth.Train, Seed: 7, Scale: 0.005})
			if err != nil {
				t.Fatal(err)
			}
			db, err := profile.TrainSource(trainSrc, profile.DefaultConfig())
			if err != nil {
				t.Fatal(err)
			}
			testSrc, err := m.Source(synth.Config{Input: synth.Test, Seed: 7, Scale: 0.005})
			if err != nil {
				t.Fatal(err)
			}
			tr, err := trace.Collect(testSrc)
			if err != nil {
				t.Fatal(err)
			}
			if err := CheckBlockEquivalence(tr, fs, db.Predictor()); err != nil {
				t.Error(err)
			}
		})
	}
}

// TestBlockEquivalenceCatchesDivergence feeds the checker a trace whose
// block and scalar replays must agree, then proves the checker is not
// vacuous by checking a malformed trace: both paths must fail with the
// same error at the same event index.
func TestBlockEquivalenceCatchesDivergence(t *testing.T) {
	fs, err := Factories("firstfit")
	if err != nil {
		t.Fatal(err)
	}
	// A double alloc of the same fresh id is rejected by every allocator;
	// both replay paths must surface the identical "core: event N" error,
	// which the checker counts as agreement, not divergence.
	tr := GenTrace(11, GenConfig{Events: 50})
	chain := tr.Events[0].Chain
	tr.Events = append(tr.Events,
		trace.Event{Kind: trace.KindAlloc, Obj: 999999, Size: 8, Chain: chain},
		trace.Event{Kind: trace.KindAlloc, Obj: 999999, Size: 8, Chain: chain})
	if err := CheckBlockEquivalence(tr, fs, nil); err != nil {
		t.Errorf("matching error paths reported as divergence: %v", err)
	}
	// And a healthy generated trace passes through CheckTrace, which now
	// includes the equivalence layer.
	good := GenTrace(11, GenConfig{Events: 400})
	if err := CheckTrace(good, fs, Options{Stride: 100}); err != nil {
		if strings.Contains(err.Error(), "blockequiv") {
			t.Fatalf("block equivalence failed on a legal trace: %v", err)
		}
		t.Fatal(err)
	}
}
