package check

import (
	"fmt"

	"repro/internal/callchain"
	"repro/internal/heapsim"
	"repro/internal/trace"
)

// Relabel returns a copy of the trace whose call-chain table has every
// function renamed to an opaque label, preserving chain structure and
// interning order (so ChainIDs keep their values and the events can be
// shared). Relabeling models recompiling the traced program with
// different symbol names: nothing an allocator may legitimately depend
// on changes.
func Relabel(tr *trace.Trace) *trace.Trace {
	tb := callchain.NewTable()
	rename := make(map[callchain.FuncID]callchain.FuncID, tr.Table.NumFuncs())
	for id := 0; id < tr.Table.NumChains(); id++ {
		old := tr.Table.Funcs(callchain.ChainID(id))
		fs := make([]callchain.FuncID, len(old))
		for i, f := range old {
			nf, ok := rename[f]
			if !ok {
				nf = tb.Func(fmt.Sprintf("relabeled_%d", f))
				rename[f] = nf
			}
			fs[i] = nf
		}
		tb.Intern(fs)
	}
	out := *tr
	out.Table = tb
	return &out
}

// CheckRelabelInvariance asserts the metamorphic property that renaming
// allocation sites never changes first-fit behaviour: FirstFit consults
// only sizes and order, so the original and relabeled traces must
// produce identical placements (every live object at the same address),
// identical operation counts, and identical heap extents. A divergence
// means some layout decision leaked a dependence on chain identity.
func CheckRelabelInvariance(tr *trace.Trace) error {
	a := heapsim.NewFirstFit()
	b := heapsim.NewFirstFit()
	led := NewLedger(1)
	for i, ev := range tr.Events {
		if err := led.Apply(ev); err != nil {
			return fmt.Errorf("event %d: %w", i, err)
		}
		if err := applyEvent(a, ev, nil); err != nil {
			return fmt.Errorf("event %d: %w", i, err)
		}
	}
	for i, ev := range Relabel(tr).Events {
		if err := applyEvent(b, ev, nil); err != nil {
			return fmt.Errorf("relabeled event %d: %w", i, err)
		}
	}
	if a.MaxHeapSize() != b.MaxHeapSize() || a.HeapSize() != b.HeapSize() {
		return fmt.Errorf("relabeling changed firstfit heap extent: %d/%d vs %d/%d",
			a.HeapSize(), a.MaxHeapSize(), b.HeapSize(), b.MaxHeapSize())
	}
	if a.Counts() != b.Counts() {
		return fmt.Errorf("relabeling changed firstfit op counts: %+v vs %+v", a.Counts(), b.Counts())
	}
	for id := range led.live {
		pa, oka := a.Addr(id)
		pb, okb := b.Addr(id)
		if oka != okb || pa != pb {
			return fmt.Errorf("relabeling moved object %d: %d (live=%v) vs %d (live=%v)",
				id, pa, oka, pb, okb)
		}
	}
	return nil
}

// CheckArenaMonotone asserts the metamorphic property that giving the
// arena allocator more arenas never increases ArenaFallbacks: a
// fallback happens only when every arena is pinned by a live object, and
// extra arenas only add places for a bump allocation to land. The trace
// and predictor are held fixed while NumArenas sweeps the given counts
// (ascending).
func CheckArenaMonotone(tr *trace.Trace, pred Predict, counts []int) error {
	prev := int64(-1)
	prevN := 0
	for _, n := range counts {
		ar := &heapsim.Arena{NumArenas: n}
		for i, ev := range tr.Events {
			if err := applyEvent(ar, ev, pred); err != nil {
				return fmt.Errorf("arenas=%d: event %d: %w", n, i, err)
			}
		}
		fb := ar.Counts().ArenaFallbacks
		if prev >= 0 && fb > prev {
			return fmt.Errorf("raising arena count %d -> %d increased ArenaFallbacks %d -> %d",
				prevN, n, prev, fb)
		}
		prev, prevN = fb, n
	}
	return nil
}
