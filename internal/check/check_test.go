package check

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/heapsim"
	"repro/internal/trace"
)

func TestLedgerValidatesTrace(t *testing.T) {
	led := NewLedger(8)
	ok := []trace.Event{
		{Kind: trace.KindAlloc, Obj: 1, Size: 16},
		{Kind: trace.KindFree, Obj: 1},
		{Kind: trace.KindAlloc, Obj: 1, Size: 8}, // id reuse after free is legal
	}
	for i, ev := range ok {
		if err := led.Apply(ev); err != nil {
			t.Fatalf("event %d: %v", i, err)
		}
	}
	if err := led.Apply(trace.Event{Kind: trace.KindAlloc, Obj: 1, Size: 8}); err == nil {
		t.Fatal("double alloc accepted")
	}
	if err := led.Apply(trace.Event{Kind: trace.KindFree, Obj: 99}); err == nil {
		t.Fatal("unknown free accepted")
	}
	if err := led.Apply(trace.Event{Kind: trace.KindAlloc, Obj: 2, Size: 0}); err == nil {
		t.Fatal("zero-size alloc accepted")
	}
	if led.LiveObjects() != 1 || led.LiveBytes() != 8 {
		t.Fatalf("ledger live = %d objs / %d bytes, want 1 / 8", led.LiveObjects(), led.LiveBytes())
	}
}

// TestAuditAllAllocators replays generated traces through every factory
// with a stride-1 audit: the conformance suite must hold on all seven
// built-in simulators.
func TestAuditAllAllocators(t *testing.T) {
	fs, err := Factories()
	if err != nil {
		t.Fatal(err)
	}
	for seed := uint64(1); seed <= 5; seed++ {
		tr := GenTrace(seed, GenConfig{Events: 300})
		for _, f := range fs {
			opt := Options{Stride: 1, Predict: GenPredict(512)}
			if err := Audit(trace.NewSliceSource(tr), f.Name, f.New(), opt); err != nil {
				t.Errorf("seed %d: %v", seed, err)
			}
		}
	}
}

func TestDiffGeneratedTraces(t *testing.T) {
	fs, err := Factories()
	if err != nil {
		t.Fatal(err)
	}
	for seed := uint64(10); seed < 14; seed++ {
		tr := GenTrace(seed, GenConfig{Events: 250})
		if err := Diff(trace.NewSliceSource(tr), fs, Options{Stride: 16, Predict: GenPredict(512)}); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
	}
}

func TestFactoriesSelection(t *testing.T) {
	fs, err := Factories("bsd", "arena")
	if err != nil {
		t.Fatal(err)
	}
	if len(fs) != 2 || fs[0].Name != "bsd" || fs[1].Name != "arena" {
		t.Fatalf("got %+v", fs)
	}
	if _, err := Factories("slab"); err == nil {
		t.Fatal("unknown allocator accepted")
	}
}

func TestMetamorphicProperties(t *testing.T) {
	for seed := uint64(20); seed < 30; seed++ {
		tr := GenTrace(seed, GenConfig{})
		if err := CheckRelabelInvariance(tr); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
		if err := CheckArenaMonotone(tr, GenPredict(512), []int{4, 8, 16, 32}); err != nil {
			t.Errorf("seed %d: %v", seed, err)
		}
	}
}

func TestRelabelPreservesStructure(t *testing.T) {
	tr := GenTrace(7, GenConfig{Events: 50})
	re := Relabel(tr)
	if re.Table.NumChains() != tr.Table.NumChains() {
		t.Fatalf("chain count changed: %d -> %d", tr.Table.NumChains(), re.Table.NumChains())
	}
	if re.Table.String(tr.Events[0].Chain) == tr.Table.String(tr.Events[0].Chain) {
		t.Fatal("relabeling left a chain name unchanged")
	}
	if len(re.Events) != len(tr.Events) {
		t.Fatal("relabeling changed the event list")
	}
}

// leakyFree is a deliberately broken allocator: every leakEvery-th Free
// is silently dropped, while the reported op counts are faked to stay
// ledger-consistent — so only the walked layout can expose the bug. This
// is the stand-in for the "skip one coalesce" class of accounting bug
// the harness exists to catch.
type leakyFree struct {
	*heapsim.FirstFit
	frees     int64
	leakEvery int64
	leaked    int64
}

func newLeaky(every int64) *leakyFree {
	return &leakyFree{FirstFit: heapsim.NewFirstFit(), leakEvery: every}
}

func (l *leakyFree) Free(id trace.ObjectID) error {
	l.frees++
	if l.frees%l.leakEvery == 0 {
		l.leaked++
		return nil // drop the free: the object stays resident
	}
	return l.FirstFit.Free(id)
}

func (l *leakyFree) Counts() heapsim.OpCounts {
	c := l.FirstFit.Counts()
	c.Frees += l.leaked // lie: pretend the dropped frees happened
	return c
}

func TestAuditCatchesLeakyFree(t *testing.T) {
	tr := GenTrace(42, GenConfig{Events: 200})
	err := Audit(trace.NewSliceSource(tr), "leaky", newLeaky(5), Options{Stride: 1})
	if err == nil {
		t.Fatal("audit passed a free-dropping allocator")
	}
	if !strings.Contains(err.Error(), "leaky") {
		t.Fatalf("violation not attributed to the broken allocator: %v", err)
	}
}

// TestShrinkMinimizesInjectedBug is the in-tree half of the acceptance
// demo: a deliberately broken allocator must not only be caught, the
// delta-debugging shrinker must reduce the failing trace to a handful of
// events (5 allocs + 5 frees reaches the fifth, dropped, free).
func TestShrinkMinimizesInjectedBug(t *testing.T) {
	fails := func(tr *trace.Trace) error {
		return Audit(trace.NewSliceSource(tr), "leaky", newLeaky(5), Options{Stride: 1})
	}
	tr := GenTrace(42, GenConfig{Events: 400})
	if fails(tr) == nil {
		t.Fatal("seed trace does not trigger the injected bug")
	}
	shrunk := Shrink(tr, fails)
	if err := fails(shrunk); err == nil {
		t.Fatal("shrunk trace no longer fails")
	}
	if got := len(shrunk.Events); got > 20 {
		t.Fatalf("shrunk repro has %d events, want <= 20", got)
	}
	if got := len(shrunk.Events); got != 10 {
		t.Logf("note: shrunk to %d events (minimum possible is 10)", got)
	}
}

func TestRunReportsShrunkViolation(t *testing.T) {
	fs := []Factory{
		{Name: "firstfit", New: func() heapsim.Allocator { return heapsim.NewFirstFit() }},
		{Name: "leaky", New: func() heapsim.Allocator { return newLeaky(3) }},
	}
	err := Run(1993, 50, GenConfig{Events: 120}, fs, Options{Stride: 4}, nil)
	if err == nil {
		t.Fatal("property run passed with a broken participant")
	}
	v, ok := err.(*Violation)
	if !ok {
		t.Fatalf("want *Violation, got %T: %v", err, err)
	}
	if v.Err == nil || v.Trace == nil || len(v.Trace.Events) == 0 {
		t.Fatalf("violation incomplete: %+v", v)
	}
	if len(v.Trace.Events) > 20 {
		t.Errorf("repro not minimized: %d events", len(v.Trace.Events))
	}

	// The printed repro must itself be a replayable trace.
	var buf bytes.Buffer
	if err := v.WriteRepro(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	start := strings.Index(out, "--- repro.trc ---\n")
	end := strings.Index(out, "--- lptrace2 hex ---")
	if start < 0 || end < 0 {
		t.Fatalf("repro markers missing:\n%s", out)
	}
	text := out[start+len("--- repro.trc ---\n") : end]
	re, err2 := trace.ReadText(strings.NewReader(text))
	if err2 != nil {
		t.Fatalf("repro text does not parse: %v\n%s", err2, text)
	}
	if len(re.Events) != len(v.Trace.Events) {
		t.Fatalf("repro has %d events, violation trace %d", len(re.Events), len(v.Trace.Events))
	}
}

func TestRunCleanSuite(t *testing.T) {
	fs, err := Factories()
	if err != nil {
		t.Fatal(err)
	}
	done := 0
	err = Run(7, 25, GenConfig{Events: 150}, fs, Options{Stride: 8, Predict: GenPredict(512)},
		func(n int) { done = n })
	if err != nil {
		t.Fatalf("clean property run failed: %v", err)
	}
	if done != 25 {
		t.Fatalf("progress reported %d cases, want 25", done)
	}
}

func TestGenTraceDeterministic(t *testing.T) {
	a := GenTrace(99, GenConfig{})
	b := GenTrace(99, GenConfig{})
	if len(a.Events) != len(b.Events) {
		t.Fatal("same seed, different event counts")
	}
	for i := range a.Events {
		if a.Events[i] != b.Events[i] {
			t.Fatalf("same seed diverges at event %d", i)
		}
	}
	if err := trace.Validate(a); err != nil {
		t.Fatalf("generated trace illegal: %v", err)
	}
}
