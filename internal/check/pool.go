package check

import (
	"fmt"
	"io"

	"repro/internal/heapsim"
	"repro/internal/trace"
)

// AuditPool replays a source across a heapsim.Pool, spreading allocations
// round-robin over the members, and audits the pool against the trace's
// own ledger every Options.Stride events (and always at end of trace) —
// the cluster-level counterpart of Audit. The pool's aggregated state
// must satisfy every single-allocator invariant: member self-checks, op
// conservation, region disjointness across the PoolStride windows, the
// walked live set reconciling with the ledger, and dead-id probes. This
// is what licenses the cluster simulator to treat a pool of simulators
// as one allocator.
//
// Round-robin placement is deliberate: it exercises every member and is
// routing-policy-agnostic. Policy behavior is the cluster's concern; the
// pool's invariants must hold under any placement.
func AuditPool(src trace.Source, name string, p *heapsim.Pool, opt Options) error {
	led := NewLedger(opt.deadSample())
	next := 0
	for i := 0; ; i++ {
		ev, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return fmt.Errorf("%s: reading event %d: %w", name, i, err)
		}
		if err := led.Apply(ev); err != nil {
			return fmt.Errorf("%s: event %d: %w", name, i, err)
		}
		switch ev.Kind {
		case trace.KindAlloc:
			short := false
			if opt.Predict != nil {
				short = opt.Predict(ev.Chain, ev.Size)
			}
			member := next % p.Members()
			next++
			if err := p.AllocOn(member, ev.Obj, ev.Size, short); err != nil {
				return fmt.Errorf("%s: event %d: %w", name, i, err)
			}
		case trace.KindFree:
			if err := p.Free(ev.Obj); err != nil {
				return fmt.Errorf("%s: event %d: %w", name, i, err)
			}
		}
		if opt.Stride > 0 && (i+1)%opt.Stride == 0 {
			if err := AuditState(name, p, led); err != nil {
				return fmt.Errorf("after event %d: %w", i, err)
			}
		}
	}
	if err := AuditState(name, p, led); err != nil {
		return fmt.Errorf("at end of trace: %w", err)
	}
	return nil
}
