package check

import (
	"fmt"
	"io"
	"strings"

	"repro/internal/heapsim"
	"repro/internal/trace"
)

// Factory names an allocator construction; the differ and the property
// runner build fresh instances per replay so no state leaks between
// cases.
type Factory struct {
	Name string
	New  func() heapsim.Allocator
}

// defaultHotSizes seeds Custom's per-size fast paths in property runs;
// the models audit derives real hot sizes from the training profile
// instead.
var defaultHotSizes = []int64{16, 24, 32, 48, 64, 96, 128, 256}

// Factories returns construction recipes for the named allocators, or
// all seven in canonical order when names is empty. Unknown names error,
// naming every valid allocator.
func Factories(names ...string) ([]Factory, error) {
	all := []Factory{
		{"firstfit", func() heapsim.Allocator { return heapsim.NewFirstFit() }},
		{"bestfit", func() heapsim.Allocator { return heapsim.NewBestFit() }},
		{"bsd", func() heapsim.Allocator { return heapsim.NewBSD() }},
		{"arena", func() heapsim.Allocator { return heapsim.NewArena() }},
		{"sitearena", func() heapsim.Allocator { return heapsim.NewSiteArena() }},
		{"custom", func() heapsim.Allocator { return heapsim.NewCustom(defaultHotSizes) }},
		{"segfit", func() heapsim.Allocator { return heapsim.NewSegFit() }},
	}
	if len(names) == 0 {
		return all, nil
	}
	byName := make(map[string]Factory, len(all))
	for _, f := range all {
		byName[f.Name] = f
	}
	out := make([]Factory, 0, len(names))
	for _, n := range names {
		f, ok := byName[n]
		if !ok {
			return nil, fmt.Errorf("check: unknown allocator %q (want %s)", n, strings.Join(AllocatorNames(), ", "))
		}
		out = append(out, f)
	}
	return out, nil
}

// AllocatorNames returns the canonical names of every checkable
// allocator, in Factories order.
func AllocatorNames() []string {
	all, _ := Factories()
	names := make([]string, len(all))
	for i, f := range all {
		names[i] = f.Name
	}
	return names
}

// participant is one allocator in a lockstep differential replay.
type participant struct {
	name  string
	alloc heapsim.Allocator
}

// Diff replays one trace source through every factory's allocator in
// lockstep and asserts policy-independent agreement:
//
//   - every allocator accepts every legal event (a rejection any sibling
//     accepted is a divergence, not just an error);
//   - each allocator's state passes the full invariant audit against the
//     shared ledger on the stride — which pins the policy-independent
//     observables to the same values for all of them: identical live
//     sets, identical Allocs/Frees, identical live payload bytes;
//   - Addr liveness agrees across allocators for ledger-live ids and for
//     sampled dead ids.
//
// Policy-dependent observables (placement addresses, heap sizes, probe
// counts) are free to differ; that is the point of comparing policies.
func Diff(src trace.Source, fs []Factory, opt Options) error {
	if len(fs) == 0 {
		return fmt.Errorf("check: no allocators to diff")
	}
	parts := make([]participant, len(fs))
	for i, f := range fs {
		parts[i] = participant{name: f.Name, alloc: f.New()}
	}
	led := NewLedger(opt.deadSample())
	audit := func(i int, when string) error {
		for _, p := range parts {
			if err := AuditState(p.name, p.alloc, led); err != nil {
				return fmt.Errorf("%s: %w", when, err)
			}
		}
		return nil
	}
	i := 0
	for ; ; i++ {
		ev, err := src.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return err
		}
		if err := led.Apply(ev); err != nil {
			return fmt.Errorf("event %d: %w", i, err)
		}
		for _, p := range parts {
			if err := applyEvent(p.alloc, ev, opt.Predict); err != nil {
				return fmt.Errorf("event %d: %s diverged: rejected legal event: %w", i, p.name, err)
			}
		}
		if opt.Stride > 0 && (i+1)%opt.Stride == 0 {
			if err := audit(i, fmt.Sprintf("after event %d", i)); err != nil {
				return err
			}
		}
	}
	if err := audit(i, fmt.Sprintf("at end of trace (%d events)", i)); err != nil {
		return err
	}
	// The audits prove each allocator agrees with the ledger; close the
	// loop with a direct cross-allocator probe of the liveness surface.
	ref := parts[0]
	for id := range led.live {
		for _, p := range parts[1:] {
			_, a := ref.alloc.Addr(id)
			_, b := p.alloc.Addr(id)
			if a != b {
				return fmt.Errorf("liveness disagreement on object %d: %s says %v, %s says %v",
					id, ref.name, a, p.name, b)
			}
		}
	}
	return nil
}
