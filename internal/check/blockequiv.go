package check

import (
	"bytes"
	"fmt"
	"reflect"

	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/profile"
	"repro/internal/trace"
)

// CheckBlockEquivalence proves the batched replay path is observationally
// identical to the scalar one: for every factory it replays tr twice —
// once through core.RunSimSource (the block-driven engine) and once
// through core.RunSimSourceScalar (the retained event-at-a-time oracle) —
// and requires exact agreement on the SimResult and on the full observed
// snapshot, serialized to JSON and compared byte for byte. That covers
// every counter, histogram, timeline sample, phase mark, and pred.*
// accuracy family, so any drift the batching could introduce (a
// mis-offset event index, a dropped observation at a block boundary, a
// reordered prediction) fails loudly instead of skewing results.
//
// pred may be nil (no prediction) — pass one to also exercise the
// predicted-short plumbing and the pred.* confusion families.
func CheckBlockEquivalence(tr *trace.Trace, fs []Factory, pred *profile.Predictor) error {
	for _, f := range fs {
		run := func(scalar bool) (core.SimResult, []byte, error) {
			col := obs.NewCollector(obs.Options{Label: "blockequiv/" + f.Name})
			src := trace.NewSliceSource(tr)
			var res core.SimResult
			var err error
			if scalar {
				res, err = core.RunSimSourceScalar(src, f.New(), pred, col)
			} else {
				res, err = core.RunSimSource(src, f.New(), pred, col)
			}
			if err != nil {
				return res, nil, err
			}
			var buf bytes.Buffer
			if err := obs.WriteJSON(&buf, col.Snapshot()); err != nil {
				return res, nil, err
			}
			return res, buf.Bytes(), nil
		}
		sres, ssnap, serr := run(true)
		bres, bsnap, berr := run(false)
		// The two paths must agree on failure too: same error or none.
		if (serr == nil) != (berr == nil) || (serr != nil && serr.Error() != berr.Error()) {
			return fmt.Errorf("%s: block/scalar error divergence: scalar=%v block=%v", f.Name, serr, berr)
		}
		if serr != nil {
			continue
		}
		if !reflect.DeepEqual(sres, bres) {
			return fmt.Errorf("%s: SimResult diverged between scalar and block replay:\nscalar: %+v\nblock:  %+v", f.Name, sres, bres)
		}
		if !bytes.Equal(ssnap, bsnap) {
			return fmt.Errorf("%s: observed snapshot diverged between scalar and block replay (%d vs %d bytes)", f.Name, len(ssnap), len(bsnap))
		}
	}
	return nil
}
