package check

import (
	"fmt"
	"sort"

	"repro/internal/profile"
	"repro/internal/trace"
)

// This file is the conformance gate for the predictor zoo: before a
// policy may enter a tournament, every registered oracle is trained on
// the trace under test and the full differential suite re-runs with that
// oracle supplying the predictedShort hints. check imports core (for the
// block/scalar equivalence replay), so core cannot import check; the
// tournament runner instead takes this gate as an injected hook (see
// core.TournamentSpec.Gate), which cmd/lptables wires up.

// zooCheckConfig is the site-keying configuration the gate trains under:
// a low threshold so generated traces (a few KB of allocation) actually
// split into short and long populations.
var zooCheckConfig = profile.Config{ShortThreshold: 1 << 10}

// ZooPredicts trains every registered zoo policy on the trace itself and
// returns each policy's Predict hook (self-prediction, own-table chains),
// keyed by policy name. Training errors abort: an oracle that cannot
// train on a legal trace is itself a violation.
func ZooPredicts(tr *trace.Trace) (map[string]Predict, error) {
	out := make(map[string]Predict)
	for _, zt := range profile.ZooTrainers() {
		o, err := zt.Train(tr, zooCheckConfig)
		if err != nil {
			return nil, fmt.Errorf("check: training %s oracle: %w", zt.Name, err)
		}
		out[zt.Name] = o.PredictShort
	}
	return out, nil
}

// CheckTraceOracles runs CheckTrace once per zoo policy, with that
// policy's verdicts driving the predictedShort hint for every allocator
// in the lockstep replay. Policies run in sorted name order so failures
// are deterministic.
func CheckTraceOracles(tr *trace.Trace, fs []Factory, opt Options) error {
	preds, err := ZooPredicts(tr)
	if err != nil {
		return err
	}
	names := make([]string, 0, len(preds))
	for n := range preds {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		o := opt
		o.Predict = preds[name]
		if err := CheckTrace(tr, fs, o); err != nil {
			return fmt.Errorf("oracle %s: %w", name, err)
		}
	}
	return nil
}

// RunOracles is the zoo-gated property harness: like Run, but every
// generated trace is checked under every registered prediction policy,
// and the first violation ddmin-shrinks to a minimal repro that still
// fails CheckTraceOracles.
func RunOracles(seedBase uint64, cases int, gcfg GenConfig, fs []Factory, opt Options, progress func(done int)) error {
	for i := 0; i < cases; i++ {
		seed := seedBase + uint64(i)
		tr := GenTrace(seed, gcfg)
		if err := CheckTraceOracles(tr, fs, opt); err != nil {
			fails := func(cand *trace.Trace) error { return CheckTraceOracles(cand, fs, opt) }
			shrunk := Shrink(tr, fails)
			return &Violation{
				Err:    fails(shrunk),
				Seed:   seed,
				Case:   i,
				Trace:  shrunk,
				Events: len(tr.Events),
			}
		}
		if progress != nil {
			progress(i + 1)
		}
	}
	return nil
}
