package check

import (
	"fmt"

	"repro/internal/trace"
)

// CheckTrace runs the full conformance suite over one materialized
// trace: the differential replay of every factory's allocator with
// invariant audits on the stride, the metamorphic properties (relabel
// invariance; arena-count monotonicity of fallbacks when a predictor is
// in play), and the block/scalar replay equivalence — so a violation in
// any layer, including the batched engine, shrinks to a minimal repro
// through the same Run harness. A nil error means every layer agreed.
func CheckTrace(tr *trace.Trace, fs []Factory, opt Options) error {
	if err := Diff(trace.NewSliceSource(tr), fs, opt); err != nil {
		return err
	}
	if err := CheckRelabelInvariance(tr); err != nil {
		return fmt.Errorf("metamorphic: %w", err)
	}
	if err := CheckBlockEquivalence(tr, fs, opt.Predictor); err != nil {
		return fmt.Errorf("blockequiv: %w", err)
	}
	if opt.Predict != nil {
		if err := CheckArenaMonotone(tr, opt.Predict, []int{4, 8, 16, 32}); err != nil {
			return fmt.Errorf("metamorphic: %w", err)
		}
	}
	return nil
}

// Run is the seeded property harness: it generates cases random legal
// traces from seedBase, runs CheckTrace on each, and on the first
// violation shrinks the trace to a minimal repro and returns it as a
// *Violation (which implements error). progress, when non-nil, is
// called after every case for live reporting.
func Run(seedBase uint64, cases int, gcfg GenConfig, fs []Factory, opt Options, progress func(done int)) error {
	for i := 0; i < cases; i++ {
		seed := seedBase + uint64(i)
		tr := GenTrace(seed, gcfg)
		if err := CheckTrace(tr, fs, opt); err != nil {
			fails := func(cand *trace.Trace) error { return CheckTrace(cand, fs, opt) }
			shrunk := Shrink(tr, fails)
			return &Violation{
				Err:    fails(shrunk),
				Seed:   seed,
				Case:   i,
				Trace:  shrunk,
				Events: len(tr.Events),
			}
		}
		if progress != nil {
			progress(i + 1)
		}
	}
	return nil
}
