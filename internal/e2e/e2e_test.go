// Package e2e exercises the shipped binaries end to end: the full
// lpgen → lpprof → lpsim → lpstats pipeline, the lpsim|lpstats stdin
// pipe, lpdiff's exit-code contract, and lpbench determinism — the way
// a user (or CI) drives them, via exec, asserting on exit codes and key
// output lines rather than internal APIs.
package e2e

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

// binDir builds each needed command once per test binary.
var (
	binOnce sync.Once
	binPath string
	binErr  error
)

var commands = []string{"lpgen", "lpprof", "lpsim", "lpstats", "lpdiff", "lpbench"}

func bins(t *testing.T) string {
	t.Helper()
	binOnce.Do(func() {
		dir, err := os.MkdirTemp("", "lp-e2e-bin")
		if err != nil {
			binErr = err
			return
		}
		for _, cmd := range commands {
			out, err := exec.Command("go", "build", "-o", filepath.Join(dir, cmd), "repro/cmd/"+cmd).CombinedOutput()
			if err != nil {
				binErr = fmt.Errorf("go build %s: %v\n%s", cmd, err, out)
				return
			}
		}
		binPath = dir
	})
	if binErr != nil {
		t.Fatal(binErr)
	}
	return binPath
}

// run executes a built binary and returns stdout, stderr, and the exit
// code (failing the test on anything but a clean exit-status error).
func run(t *testing.T, bin string, name string, args ...string) (string, string, int) {
	t.Helper()
	cmd := exec.Command(filepath.Join(bin, name), args...)
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr
	err := cmd.Run()
	code := 0
	if err != nil {
		ee, ok := err.(*exec.ExitError)
		if !ok {
			t.Fatalf("%s %v: %v", name, args, err)
		}
		code = ee.ExitCode()
	}
	return stdout.String(), stderr.String(), code
}

func TestPipeline(t *testing.T) {
	bin := bins(t)
	dir := t.TempDir()
	train := filepath.Join(dir, "train.trc")
	test := filepath.Join(dir, "test.trc")
	sites := filepath.Join(dir, "sites.json")
	metrics := filepath.Join(dir, "metrics.json")
	heatCSV := filepath.Join(dir, "heatmap.csv")

	// lpgen: one training trace, one test trace.
	if _, stderr, code := run(t, bin, "lpgen",
		"-program", "gawk", "-input", "train", "-scale", "0.02", "-seed", "1", "-o", train); code != 0 {
		t.Fatalf("lpgen train exited %d: %s", code, stderr)
	}
	if _, stderr, code := run(t, bin, "lpgen",
		"-program", "gawk", "-input", "test", "-scale", "0.02", "-seed", "2", "-o", test); code != 0 {
		t.Fatalf("lpgen test exited %d: %s", code, stderr)
	}

	// lpprof: train the predictor.
	if _, stderr, code := run(t, bin, "lpprof", "-trace", train, "-o", sites); code != 0 {
		t.Fatalf("lpprof exited %d: %s", code, stderr)
	}
	var sitesDoc map[string]any
	data, err := os.ReadFile(sites)
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &sitesDoc); err != nil {
		t.Fatalf("lpprof output is not JSON: %v", err)
	}

	// lpsim: replay the test trace with prediction and observability.
	stdout, stderr, code := run(t, bin, "lpsim",
		"-trace", test, "-alloc", "arena", "-sites", sites, "-obs", metrics, "-heapscan")
	if code != 0 {
		t.Fatalf("lpsim exited %d: %s", code, stderr)
	}
	for _, want := range []string{"gawk", "arena"} {
		if !strings.Contains(stdout, want) {
			t.Errorf("lpsim stdout is missing %q:\n%s", want, stdout)
		}
	}

	// lpstats: render the snapshot, writing the heatmap CSV alongside.
	stdout, stderr, code = run(t, bin, "lpstats", "-metrics", metrics, "-heatmap-csv", heatCSV)
	if code != 0 {
		t.Fatalf("lpstats exited %d: %s", code, stderr)
	}
	for _, want := range []string{
		"gawk", "arena", "clock",
		// The accuracy/calibration report: an observed replay with a
		// predictor must render the confusion matrix and site attribution.
		"prediction accuracy", "false positive", "calibration drift",
		// The heap-topology report: a -heapscan replay must render the
		// fragmentation table and the address-space heatmap.
		"fragmentation decomposition", "address-space heatmap",
	} {
		if !strings.Contains(stdout, want) {
			t.Errorf("lpstats report is missing %q", want)
		}
	}

	// The heatmap CSV has the full-width header and at least one data row.
	heatData, err := os.ReadFile(heatCSV)
	if err != nil {
		t.Fatal(err)
	}
	heatLines := strings.Split(strings.TrimSpace(string(heatData)), "\n")
	if !strings.HasPrefix(heatLines[0], "clock,extent,bin0,") {
		t.Errorf("heatmap CSV header = %q", heatLines[0])
	}
	if len(heatLines) < 2 {
		t.Error("heatmap CSV has no data rows")
	}

	// Missing flag is a usage error: exit 2.
	if _, _, code := run(t, bin, "lpstats"); code != 2 {
		t.Errorf("lpstats without -metrics exited %d, want 2", code)
	}
}

// TestStdinPipe drives the documented one-liner:
// lpsim -obs - | lpstats -metrics -
func TestStdinPipe(t *testing.T) {
	bin := bins(t)
	dir := t.TempDir()
	trace := filepath.Join(dir, "t.trc")
	if _, stderr, code := run(t, bin, "lpgen",
		"-program", "cfrac", "-input", "test", "-scale", "0.02", "-o", trace); code != 0 {
		t.Fatalf("lpgen exited %d: %s", code, stderr)
	}

	pipe := fmt.Sprintf("%s -trace %s -alloc arena -obs - | %s -metrics -",
		filepath.Join(bin, "lpsim"), trace, filepath.Join(bin, "lpstats"))
	out, err := exec.Command("sh", "-c", pipe).Output()
	if err != nil {
		t.Fatalf("pipe failed: %v", err)
	}
	for _, want := range []string{"cfrac", "arena", "clock"} {
		if !strings.Contains(string(out), want) {
			t.Errorf("piped lpstats report is missing %q:\n%s", want, out)
		}
	}
}

// TestGenSimPipe pipes lpgen straight into lpsim with no intermediate
// file and requires the simulation result to be byte-identical to the
// file-based run — the constant-memory streaming contract.
func TestGenSimPipe(t *testing.T) {
	bin := bins(t)
	dir := t.TempDir()
	trc := filepath.Join(dir, "t.trc")

	genArgs := "-program gawk -input test -scale 0.02 -seed 3"
	if _, stderr, code := run(t, bin, "lpgen",
		"-program", "gawk", "-input", "test", "-scale", "0.02", "-seed", "3", "-o", trc); code != 0 {
		t.Fatalf("lpgen exited %d: %s", code, stderr)
	}
	fileOut, stderr, code := run(t, bin, "lpsim", "-trace", trc, "-alloc", "arena")
	if code != 0 {
		t.Fatalf("file-based lpsim exited %d: %s", code, stderr)
	}

	pipe := fmt.Sprintf("%s %s -o - | %s -trace - -alloc arena",
		filepath.Join(bin, "lpgen"), genArgs, filepath.Join(bin, "lpsim"))
	pipeOut, err := exec.Command("sh", "-c", pipe).Output()
	if err != nil {
		t.Fatalf("lpgen | lpsim pipe failed: %v", err)
	}
	if fileOut != string(pipeOut) {
		t.Errorf("piped lpsim output differs from file-based run:\nfile:\n%s\npipe:\n%s", fileOut, pipeOut)
	}
}

// TestDiffGate proves the CI contract: lpdiff exits 0 comparing a bench
// file against itself and 1 when a gated metric regresses.
func TestDiffGate(t *testing.T) {
	bin := bins(t)
	dir := t.TempDir()
	base := filepath.Join(dir, "base.json")

	if _, stderr, code := run(t, bin, "lpbench",
		"-matrix", "gawk/arena/true", "-label", "base", "-scale", "0.01", "-o", base); code != 0 {
		t.Fatalf("lpbench exited %d: %s", code, stderr)
	}

	stdout, _, code := run(t, bin, "lpdiff", "-threshold", "sim_bytes_per_op+10%", base, base)
	if code != 0 {
		t.Fatalf("lpdiff on identical files exited %d:\n%s", code, stdout)
	}
	if !strings.Contains(stdout, "threshold(s) hold") {
		t.Errorf("lpdiff pass output missing confirmation:\n%s", stdout)
	}

	// Inject a 25% regression into sim_bytes_per_op and re-gate.
	data, err := os.ReadFile(base)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(data, &doc); err != nil {
		t.Fatal(err)
	}
	runs := doc["runs"].([]any)
	metrics := runs[0].(map[string]any)["metrics"].(map[string]any)
	metrics["sim_bytes_per_op"] = metrics["sim_bytes_per_op"].(float64) * 1.25
	bad, err := json.Marshal(doc)
	if err != nil {
		t.Fatal(err)
	}
	regressed := filepath.Join(dir, "regressed.json")
	if err := os.WriteFile(regressed, bad, 0o644); err != nil {
		t.Fatal(err)
	}

	stdout, _, code = run(t, bin, "lpdiff", "-threshold", "sim_bytes_per_op+10%", base, regressed)
	if code != 1 {
		t.Fatalf("lpdiff on a 25%% regression exited %d, want 1:\n%s", code, stdout)
	}
	if !strings.Contains(stdout, "FAIL") || !strings.Contains(stdout, "sim_bytes_per_op") {
		t.Errorf("lpdiff failure output missing FAIL line:\n%s", stdout)
	}

	// A threshold that matches no metric must also gate (exit 1).
	if _, _, code := run(t, bin, "lpdiff", "-threshold", "no_such_metric+5%", base, base); code != 1 {
		t.Errorf("vacuous gate exited %d, want 1", code)
	}
}

// TestProfileFlags replays a trace under -cpuprofile/-memprofile and
// requires both pprof files to land non-empty, with the simulation
// output unchanged — profiling must observe the run, not perturb it.
func TestProfileFlags(t *testing.T) {
	bin := bins(t)
	dir := t.TempDir()
	trc := filepath.Join(dir, "t.trc")
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")

	if _, stderr, code := run(t, bin, "lpgen",
		"-program", "gawk", "-input", "test", "-scale", "0.02", "-seed", "4", "-o", trc); code != 0 {
		t.Fatalf("lpgen exited %d: %s", code, stderr)
	}
	plain, stderr, code := run(t, bin, "lpsim", "-trace", trc, "-alloc", "arena")
	if code != 0 {
		t.Fatalf("lpsim exited %d: %s", code, stderr)
	}
	profiled, stderr, code := run(t, bin, "lpsim",
		"-trace", trc, "-alloc", "arena", "-cpuprofile", cpu, "-memprofile", mem)
	if code != 0 {
		t.Fatalf("profiled lpsim exited %d: %s", code, stderr)
	}
	if profiled != plain {
		t.Errorf("profiling changed lpsim output:\nplain:\n%s\nprofiled:\n%s", plain, profiled)
	}
	for _, p := range []string{cpu, mem} {
		// pprof files are gzip-compressed protobufs; the two magic bytes
		// are enough to prove a real profile was written, not an empty
		// or truncated file.
		data, err := os.ReadFile(p)
		if err != nil {
			t.Fatalf("profile %s: %v", p, err)
		}
		if len(data) < 2 || data[0] != 0x1f || data[1] != 0x8b {
			t.Errorf("profile %s is not a gzipped pprof file (%d bytes)", p, len(data))
		}
	}

	// lpbench shares the same flags through cliutil.
	memB := filepath.Join(dir, "bench-mem.pprof")
	if _, stderr, code := run(t, bin, "lpbench",
		"-matrix", "gawk/arena/true", "-scale", "0.01", "-o", filepath.Join(dir, "b.json"),
		"-memprofile", memB); code != 0 {
		t.Fatalf("lpbench with -memprofile exited %d: %s", code, stderr)
	}
	if data, err := os.ReadFile(memB); err != nil || len(data) < 2 || data[0] != 0x1f || data[1] != 0x8b {
		t.Errorf("lpbench heap profile missing or malformed (err=%v)", err)
	}
}

// TestBenchDeterminism runs lpbench twice with identical arguments and
// requires byte-identical output — the property that makes a committed
// BENCH_seed.json a usable cross-machine baseline.
func TestBenchDeterminism(t *testing.T) {
	bin := bins(t)
	dir := t.TempDir()
	a, b := filepath.Join(dir, "a.json"), filepath.Join(dir, "b.json")
	for _, out := range []string{a, b} {
		if _, stderr, code := run(t, bin, "lpbench",
			"-matrix", "gawk,cfrac/arena,bsd/true,none", "-label", "seed", "-scale", "0.01", "-o", out); code != 0 {
			t.Fatalf("lpbench exited %d: %s", code, stderr)
		}
	}
	da, err := os.ReadFile(a)
	if err != nil {
		t.Fatal(err)
	}
	db, err := os.ReadFile(b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(da, db) {
		t.Error("two identical lpbench invocations differ — bench output is not deterministic")
	}
}
