package profile

import (
	"fmt"
	"testing"

	"repro/internal/trace"
)

// strictTrainers returns every zoo policy configured to coincide with the
// paper's global all-short rule: quantile at Q=1 with no per-site slack,
// window unbounded with Q=1, learned fitting the paper labels exactly.
// The paper trainer itself is the reference.
func strictTrainers() []OracleTrainer {
	return []OracleTrainer{
		{Name: "paper", Train: func(tr *trace.Trace, cfg Config) (Oracle, error) {
			db, err := Train(tr, cfg)
			if err != nil {
				return nil, err
			}
			return db.Predictor(), nil
		}},
		{Name: "quantile", Train: func(tr *trace.Trace, cfg Config) (Oracle, error) {
			db, err := Train(tr, cfg)
			if err != nil {
				return nil, err
			}
			return NewQuantileOracle(db, QuantileConfig{Q: 1.0}), nil
		}},
		{Name: "window", Train: func(tr *trace.Trace, cfg Config) (Oracle, error) {
			return TrainWindowed(trace.NewSliceSource(tr), cfg, WindowedConfig{Window: 0, Q: 1.0})
		}},
		{Name: "learned", Train: func(tr *trace.Trace, cfg Config) (Oracle, error) {
			db, err := Train(tr, cfg)
			if err != nil {
				return nil, err
			}
			return TrainLearned(db, LearnedConfig{}), nil
		}},
	}
}

// TestZooSingleSiteAgreesWithPaperRule: on single-site traces every zoo
// policy — strict or default tournament configuration — must reproduce
// the paper's global rule, because there is nothing per-site to diverge
// on.
func TestZooSingleSiteAgreesWithPaperRule(t *testing.T) {
	cfg := Config{ShortThreshold: 1000}
	cases := []struct {
		name  string
		specs []allocSpec
		size  int64
		admit bool
	}{
		{
			name: "all-short",
			specs: []allocSpec{
				{[]string{"main", "s", "m"}, 16, 0, 0},
				{[]string{"main", "s", "m"}, 16, 0, 0},
				{[]string{"main", "s", "m"}, 16, 0, 0},
			},
			size:  16,
			admit: true,
		},
		{
			name: "all-long",
			specs: []allocSpec{
				{[]string{"main", "s", "m"}, 16, -1, 0},
				{[]string{"main", "s", "m"}, 16, -1, 0},
				{[]string{"main", "s", "m"}, 50000, 0, 0}, // pad, same site
			},
			size:  16,
			admit: false,
		},
	}
	for _, tc := range cases {
		for _, reg := range []struct {
			name     string
			trainers []OracleTrainer
		}{{"strict", strictTrainers()}, {"default", ZooTrainers()}} {
			for _, tr := range reg.trainers {
				t.Run(fmt.Sprintf("%s/%s/%s", tc.name, reg.name, tr.Name), func(t *testing.T) {
					tt := mkTrace(t, tc.specs)
					o, err := tr.Train(tt, cfg)
					if err != nil {
						t.Fatal(err)
					}
					chain := tt.Table.InternNames("main", "s", "m")
					if got := o.PredictShort(chain, tc.size); got != tc.admit {
						t.Errorf("%s predicts %v, paper rule says %v", tr.Name, got, tc.admit)
					}
					if thr := o.ShortThreshold(); thr != 1000 {
						t.Errorf("ShortThreshold = %d, want 1000", thr)
					}
				})
			}
		}
	}
}

// zooTrace is the shared multi-site fixture: a clean short site, a clean
// long site, a mostly-short site with one long outlier, and padding that
// stretches the byte clock past any threshold.
func zooTrace(t *testing.T) *trace.Trace {
	t.Helper()
	return mkTrace(t, []allocSpec{
		{[]string{"main", "hot", "m"}, 16, 0, 0},
		{[]string{"main", "hot", "m"}, 16, 0, 0},
		{[]string{"main", "hot", "m"}, 16, 0, 0},
		{[]string{"main", "cold", "m"}, 32, -1, 0},
		{[]string{"main", "mix", "m"}, 24, 0, 0},
		{[]string{"main", "mix", "m"}, 24, 0, 0},
		{[]string{"main", "mix", "m"}, 24, -1, 0},
		{[]string{"main", "big", "m"}, 48, 100, 0},
		{[]string{"main", "pad", "m"}, 50000, 0, 0},
	})
}

// TestQuantileAdmissionsMonotoneInThreshold: raising the threshold can
// only grow the admitted site set, at Q=1 (exact max) and at an interior
// quantile (P² estimate) alike.
func TestQuantileAdmissionsMonotoneInThreshold(t *testing.T) {
	tr := zooTrace(t)
	db, err := Train(tr, Config{ShortThreshold: 1000})
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range []float64{1.0, 0.75, 0.5} {
		var prev map[SiteKey]bool
		admittedAny := false
		for _, thr := range []int64{1, 50, 1000, 40000, 1 << 40} {
			cur := make(map[SiteKey]bool)
			o := NewQuantileOracle(db, QuantileConfig{Q: q, Threshold: thr})
			for key := range db.Sites {
				cur[key] = o.AdmitSite(key)
				if cur[key] {
					admittedAny = true
				}
			}
			for key, was := range prev {
				if was && !cur[key] {
					t.Errorf("q=%v: site %+v admitted at lower threshold but not at %d", q, key, thr)
				}
			}
			prev = cur
		}
		for key, ok := range prev {
			if !ok {
				t.Errorf("q=%v: site %+v rejected even at an effectively infinite threshold", q, key)
			}
		}
		if !admittedAny {
			t.Errorf("q=%v: no site ever admitted", q)
		}
	}
}

// TestWindowedUnboundedEqualsQuantile: with an unbounded window and Q=1
// the online policy keeps exactly the batch statistics, so it must agree
// with the batch quantile oracle at Q=1 (and hence the paper rule) on
// every site — including unseen probes.
func TestWindowedUnboundedEqualsQuantile(t *testing.T) {
	tr := zooTrace(t)
	cfg := Config{ShortThreshold: 1000}
	db, err := Train(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	batch := NewQuantileOracle(db, QuantileConfig{Q: 1.0})
	win, err := TrainWindowed(trace.NewSliceSource(tr), cfg, WindowedConfig{Window: 0, Q: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	probes := []struct {
		chain []string
		size  int64
	}{
		{[]string{"main", "hot", "m"}, 16},
		{[]string{"main", "hot", "m"}, 24}, // unseen size at a hot chain
		{[]string{"main", "cold", "m"}, 32},
		{[]string{"main", "mix", "m"}, 24},
		{[]string{"main", "big", "m"}, 48},
		{[]string{"main", "pad", "m"}, 50000},
		{[]string{"main", "never", "m"}, 8}, // unseen site
	}
	for _, p := range probes {
		chain := tr.Table.InternNames(p.chain...)
		b := batch.PredictShort(chain, p.size)
		w := win.PredictShort(chain, p.size)
		if b != w {
			t.Errorf("site %v/%d: batch=%v windowed=%v", p.chain, p.size, b, w)
		}
	}
	if win.NumSites() != db.NumSites() {
		t.Errorf("windowed saw %d sites, batch saw %d", win.NumSites(), db.NumSites())
	}
}

// TestWindowedDrift: a site that turns short after a long-lived phase is
// re-admitted by a bounded window once the long observations age out,
// while the batch rule never forgives.
func TestWindowedDrift(t *testing.T) {
	specs := make([]allocSpec, 0, 40)
	// Phase 1: 8 long-lived objects. They die mid-trace, after the pad
	// stretches the clock, so the online oracle sees their long deaths
	// BEFORE phase 2's short ones (training is in death order).
	for i := 0; i < 8; i++ {
		specs = append(specs, allocSpec{[]string{"main", "phase", "m"}, 16, 30000, 0})
	}
	specs = append(specs, allocSpec{[]string{"main", "pad", "m"}, 40000, 0, 0})
	// Phase 2: 24 short-lived objects at the same site.
	for i := 0; i < 24; i++ {
		specs = append(specs, allocSpec{[]string{"main", "phase", "m"}, 16, 0, 0})
	}
	tr := mkTrace(t, specs)
	cfg := Config{ShortThreshold: 1000}
	chain := tr.Table.InternNames("main", "phase", "m")

	bounded, err := TrainWindowed(trace.NewSliceSource(tr), cfg, WindowedConfig{Window: 16, Q: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if !bounded.PredictShort(chain, 16) {
		t.Error("window=16 still rejects the site after 24 consecutive short deaths")
	}
	unbounded, err := TrainWindowed(trace.NewSliceSource(tr), cfg, WindowedConfig{Window: 0, Q: 1.0})
	if err != nil {
		t.Fatal(err)
	}
	if unbounded.PredictShort(chain, 16) {
		t.Error("unbounded window admitted a site with long-lived history")
	}
}

// TestZooCrossTableMapping: every zoo policy must survive the paper's
// by-name site mapping onto a trace interned in a different order.
func TestZooCrossTableMapping(t *testing.T) {
	train := zooTrace(t)
	cfg := Config{ShortThreshold: 1000}
	// Same program, different intern order, one unseen site.
	test := mkTrace(t, []allocSpec{
		{[]string{"main", "cold", "m"}, 32, -1, 0},
		{[]string{"main", "hot", "m"}, 16, 0, 0},
		{[]string{"main", "fresh", "m"}, 16, 0, 0},
		{[]string{"main", "pad", "m"}, 50000, 0, 0},
	})
	hot := test.Table.InternNames("main", "hot", "m")
	cold := test.Table.InternNames("main", "cold", "m")
	for _, tr := range strictTrainers() {
		t.Run(tr.Name, func(t *testing.T) {
			o, err := tr.Train(train, cfg)
			if err != nil {
				t.Fatal(err)
			}
			bound := BindOracle(o, test.Table)
			if !bound.PredictShort(hot, 16) {
				t.Error("mapped oracle rejects the all-short site")
			}
			if tr.Name != "learned" && bound.PredictShort(cold, 32) {
				t.Error("mapped oracle admits the immortal site")
			}
			if bound.ShortThreshold() != 1000 {
				t.Errorf("mapped ShortThreshold = %d", bound.ShortThreshold())
			}
		})
	}
}

// TestBindOracleIdentity: binding to the oracle's own table is the
// identity for site oracles; predictors always get a Mapper.
func TestBindOracleIdentity(t *testing.T) {
	tr := zooTrace(t)
	cfg := Config{ShortThreshold: 1000}
	db, err := Train(tr, cfg)
	if err != nil {
		t.Fatal(err)
	}
	q := NewQuantileOracle(db, QuantileConfig{})
	if got := BindOracle(q, tr.Table); got != Oracle(q) {
		t.Error("same-table site oracle should bind to itself")
	}
	other := zooTrace(t)
	if _, ok := BindOracle(q, other.Table).(*SiteMapper); !ok {
		t.Error("cross-table site oracle should bind to a SiteMapper")
	}
	p := db.Predictor()
	if _, ok := BindOracle(p, other.Table).(*Mapper); !ok {
		t.Error("predictor should bind to a Mapper")
	}
}

// TestLearnedDeterministicAndTotal: double training yields bit-identical
// weights, and unseen sites still get a verdict.
func TestLearnedDeterministicAndTotal(t *testing.T) {
	tr := zooTrace(t)
	db, err := Train(tr, Config{ShortThreshold: 1000})
	if err != nil {
		t.Fatal(err)
	}
	a := TrainLearned(db, LearnedConfig{})
	b := TrainLearned(db, LearnedConfig{})
	for i := range a.w {
		if a.w[i] != b.w[i] {
			t.Fatalf("weight %d differs across identical trainings: %v vs %v", i, a.w[i], b.w[i])
		}
	}
	// Totality: a never-interned chain id and absurd sizes must not panic.
	fresh := tr.Table.InternNames("totally", "new", "site")
	_ = a.PredictShort(fresh, 7)
	_ = a.PredictShort(fresh, 1<<40)
	// A different seed is a different (but still deterministic) model.
	c := TrainLearned(db, LearnedConfig{Seed: 42})
	d := TrainLearned(db, LearnedConfig{Seed: 42})
	for i := range c.w {
		if c.w[i] != d.w[i] {
			t.Fatalf("seeded weight %d differs across identical trainings", i)
		}
	}
}

// confusion counts object-level prediction outcomes for one oracle over
// an annotated trace.
type confusion struct {
	TP, FP, TN, FN int64
}

// TestZooPinnedConfusionMatrices trains the default tournament zoo on the
// fixture and pins each policy's confusion matrix on a drifted test trace
// (same sites re-interned in a different order, one site flips behaviour,
// one site is new). Any change to a policy's admission semantics shows up
// here as an exact count diff.
func TestZooPinnedConfusionMatrices(t *testing.T) {
	train := zooTrace(t)
	cfg := Config{ShortThreshold: 1000}
	test := mkTrace(t, []allocSpec{
		{[]string{"main", "cold", "m"}, 32, -1, 0},
		{[]string{"main", "hot", "m"}, 16, 0, 0},
		{[]string{"main", "hot", "m"}, 16, 0, 0},
		{[]string{"main", "mix", "m"}, 24, 0, 0},
		{[]string{"main", "mix", "m"}, 24, -1, 0},
		{[]string{"main", "big", "m"}, 48, -1, 0}, // flipped: long in test
		{[]string{"main", "fresh", "m"}, 16, 0, 0},
		{[]string{"main", "pad", "m"}, 50000, 0, 0},
	})
	objs, err := trace.Annotate(test)
	if err != nil {
		t.Fatal(err)
	}
	// The one disagreement is instructive: quantile's per-site slack
	// (8 bytes of threshold per byte of size) admits the 50000-byte pad
	// site that every global-threshold policy rejects, costing it a
	// false positive on the test run.
	want := map[string]confusion{
		"paper":    {TP: 2, FP: 0, TN: 4, FN: 2},
		"quantile": {TP: 2, FP: 1, TN: 3, FN: 2},
		"window":   {TP: 2, FP: 0, TN: 4, FN: 2},
		"learned":  {TP: 2, FP: 0, TN: 4, FN: 2},
	}
	for _, tr := range ZooTrainers() {
		t.Run(tr.Name, func(t *testing.T) {
			o, err := tr.Train(train, cfg)
			if err != nil {
				t.Fatal(err)
			}
			bound := BindOracle(o, test.Table)
			var got confusion
			for i := range objs {
				obj := &objs[i]
				pred := bound.PredictShort(obj.Chain, obj.Size)
				actual := obj.Lifetime < bound.ShortThreshold()
				switch {
				case pred && actual:
					got.TP++
				case pred && !actual:
					got.FP++
				case !pred && !actual:
					got.TN++
				default:
					got.FN++
				}
			}
			if got != want[tr.Name] {
				t.Errorf("confusion matrix = %+v, want %+v", got, want[tr.Name])
			}
		})
	}
}
