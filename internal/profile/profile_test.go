package profile

import (
	"math"
	"testing"

	"repro/internal/callchain"
	"repro/internal/trace"
)

// mkTrace builds a trace where objects' lifetimes are controlled by
// spacing: each entry allocates size bytes at chain and is freed after
// `after` further allocation events complete (-1 = never freed).
type allocSpec struct {
	chain []string
	size  int64
	life  int64 // bytes of later allocation before free; -1 = never
	refs  int64
}

func mkTrace(t *testing.T, specs []allocSpec) *trace.Trace {
	t.Helper()
	tb := callchain.NewTable()
	tr := &trace.Trace{Program: "test", Input: "train", Table: tb}
	var cum int64
	type death struct {
		at  int64
		obj trace.ObjectID
	}
	var deaths []death
	for i, s := range specs {
		// Emit due frees first.
		for _, d := range deaths {
			if d.at <= cum && d.at >= 0 {
				tr.Events = append(tr.Events, trace.Event{Kind: trace.KindFree, Obj: d.obj})
			}
		}
		kept := deaths[:0]
		for _, d := range deaths {
			if !(d.at <= cum && d.at >= 0) {
				kept = append(kept, d)
			}
		}
		deaths = kept
		tr.Events = append(tr.Events, trace.Event{
			Kind:  trace.KindAlloc,
			Obj:   trace.ObjectID(i),
			Size:  s.size,
			Chain: tb.InternNames(s.chain...),
			Refs:  s.refs,
		})
		cum += s.size
		if s.life >= 0 {
			deaths = append(deaths, death{at: cum + s.life, obj: trace.ObjectID(i)})
		}
	}
	for _, d := range deaths {
		if d.at <= cum {
			tr.Events = append(tr.Events, trace.Event{Kind: trace.KindFree, Obj: d.obj})
		}
	}
	if err := trace.Validate(tr); err != nil {
		t.Fatalf("mkTrace built invalid trace: %v", err)
	}
	return tr
}

func TestTrainBasicSiteStats(t *testing.T) {
	// Two sites: "short" objects die immediately, "long" objects never.
	specs := []allocSpec{
		{[]string{"main", "a", "malloc"}, 16, 0, 5},
		{[]string{"main", "a", "malloc"}, 16, 0, 5},
		{[]string{"main", "b", "malloc"}, 32, -1, 9},
		{[]string{"main", "a", "malloc"}, 16, 0, 5},
		// Padding to push the trace length far past the threshold so
		// the long object's observed lifetime exceeds it.
		{[]string{"main", "pad", "malloc"}, 40000, 0, 0},
	}
	tr := mkTrace(t, specs)
	db, err := Train(tr, Config{ShortThreshold: 1000})
	if err != nil {
		t.Fatal(err)
	}
	if db.NumSites() != 3 {
		t.Fatalf("NumSites = %d, want 3", db.NumSites())
	}
	p := db.Predictor()
	aChain := tr.Table.InternNames("main", "a", "malloc")
	bChain := tr.Table.InternNames("main", "b", "malloc")
	if !p.PredictShort(aChain, 16) {
		t.Error("all-short site not predicted")
	}
	if p.PredictShort(bChain, 32) {
		t.Error("immortal site predicted short")
	}
	if p.PredictShort(aChain, 24) {
		t.Error("unseen size predicted short")
	}
}

func TestSizeRoundingInKeys(t *testing.T) {
	// Sizes 13 and 15 round to 16: one site. Size 17 rounds to 20.
	specs := []allocSpec{
		{[]string{"main", "a", "m"}, 13, 0, 0},
		{[]string{"main", "a", "m"}, 15, 0, 0},
		{[]string{"main", "a", "m"}, 17, 0, 0},
	}
	tr := mkTrace(t, specs)
	db, err := Train(tr, Config{ShortThreshold: 1000, SizeRounding: 4})
	if err != nil {
		t.Fatal(err)
	}
	if db.NumSites() != 2 {
		t.Fatalf("NumSites = %d, want 2 (13 and 15 share a rounded site)", db.NumSites())
	}
	p := db.Predictor()
	c := tr.Table.InternNames("main", "a", "m")
	if !p.PredictShort(c, 14) {
		t.Error("size 14 should hit the rounded-16 site")
	}
}

func TestMixedSiteNotAdmitted(t *testing.T) {
	specs := []allocSpec{
		{[]string{"main", "mix", "m"}, 16, 0, 0},
		{[]string{"main", "mix", "m"}, 16, -1, 0}, // long
		{[]string{"main", "mix", "m"}, 16, 0, 0},
		{[]string{"main", "pad", "m"}, 50000, 0, 0},
	}
	tr := mkTrace(t, specs)
	db, _ := Train(tr, Config{ShortThreshold: 1000})
	p := db.Predictor()
	if p.PredictShort(tr.Table.InternNames("main", "mix", "m"), 16) {
		t.Fatal("mixed site admitted under the all-short rule")
	}
	// With a 0.5 admission fraction it should be admitted (2/3 short).
	db2, _ := Train(tr, Config{ShortThreshold: 1000, AdmitFraction: 0.5})
	if !db2.Predictor().PredictShort(tr.Table.InternNames("main", "mix", "m"), 16) {
		t.Fatal("mixed site not admitted at AdmitFraction 0.5")
	}
}

func TestChainLengthConflation(t *testing.T) {
	// Short site ends ...>caller1>xmalloc, long site ends
	// ...>caller2>xmalloc — both with the same size. At length 1 (just
	// xmalloc) they conflate, so nothing is predicted; at length 2 the
	// short site separates.
	specs := []allocSpec{
		{[]string{"main", "work", "caller1", "xmalloc"}, 16, 0, 0},
		{[]string{"main", "work", "caller1", "xmalloc"}, 16, 0, 0},
		{[]string{"main", "boot", "caller2", "xmalloc"}, 16, -1, 0},
		{[]string{"main", "pad", "m"}, 50000, 0, 0},
	}
	tr := mkTrace(t, specs)
	shortChain := tr.Table.InternNames("main", "work", "caller1", "xmalloc")

	db1, _ := Train(tr, Config{ShortThreshold: 1000, ChainLength: 1})
	if db1.Predictor().PredictShort(shortChain, 16) {
		t.Error("length-1 predictor separated conflated sites")
	}
	db2, _ := Train(tr, Config{ShortThreshold: 1000, ChainLength: 2})
	if !db2.Predictor().PredictShort(shortChain, 16) {
		t.Error("length-2 predictor failed to separate sites")
	}
}

func TestRecursionEliminationOnlyForCompleteChains(t *testing.T) {
	// Short site's raw chain [main rec f rec leaf] eliminates to
	// [main rec leaf], which equals the long site's chain. The complete
	// chain conflates them; length-3 sub-chains (no elimination) do not.
	specs := []allocSpec{
		{[]string{"main", "rec", "f", "rec", "leaf"}, 16, 0, 0},
		{[]string{"main", "rec", "f", "rec", "leaf"}, 16, 0, 0},
		{[]string{"main", "rec", "leaf"}, 16, -1, 0},
		{[]string{"main", "pad", "m"}, 50000, 0, 0},
	}
	tr := mkTrace(t, specs)
	shortChain := tr.Table.InternNames("main", "rec", "f", "rec", "leaf")

	dbInf, _ := Train(tr, Config{ShortThreshold: 1000, ChainLength: 0})
	if dbInf.Predictor().PredictShort(shortChain, 16) {
		t.Error("complete-chain predictor should conflate via recursion elimination")
	}
	db3, _ := Train(tr, Config{ShortThreshold: 1000, ChainLength: 3})
	if !db3.Predictor().PredictShort(shortChain, 16) {
		t.Error("length-3 predictor should separate the recursive site")
	}
}

func TestSizeOnlyPredictor(t *testing.T) {
	specs := []allocSpec{
		{[]string{"main", "a", "m"}, 16, 0, 0},  // short, size 16
		{[]string{"main", "b", "m"}, 16, -1, 0}, // long, size 16
		{[]string{"main", "c", "m"}, 64, 0, 0},  // short, size 64 (unique)
		{[]string{"main", "pad", "m"}, 50000, 0, 0},
	}
	tr := mkTrace(t, specs)
	db, _ := Train(tr, Config{ShortThreshold: 1000, SizeOnly: true})
	p := db.Predictor()
	if p.PredictShort(tr.Table.InternNames("main", "a", "m"), 16) {
		t.Error("size 16 is mixed across chains; size-only must reject it")
	}
	if !p.PredictShort(tr.Table.InternNames("zzz"), 64) {
		t.Error("unique all-short size 64 should be predicted regardless of chain")
	}
}

func TestCrossTableMapping(t *testing.T) {
	// Train and test traces in separate tables with different interning
	// orders; mapping must go by function names.
	train := mkTrace(t, []allocSpec{
		{[]string{"main", "hot", "m"}, 16, 0, 0},
		{[]string{"main", "cold", "m"}, 32, -1, 0},
		{[]string{"main", "pad", "m"}, 50000, 0, 0},
	})
	db, _ := Train(train, Config{ShortThreshold: 1000})
	p := db.Predictor()

	test := mkTrace(t, []allocSpec{
		{[]string{"main", "cold", "m"}, 32, -1, 0}, // different intern order
		{[]string{"main", "hot", "m"}, 16, 0, 0},
		{[]string{"main", "hot", "m"}, 16, 0, 0},
		{[]string{"main", "newsite", "m"}, 16, 0, 0},
		{[]string{"main", "pad", "m"}, 50000, 0, 0},
	})
	ev, err := Evaluate(test, p)
	if err != nil {
		t.Fatal(err)
	}
	// hot(16+16) predicted of total 16+16+16+32+50000.
	if ev.PredictedShortBytes != 32 {
		t.Errorf("PredictedShortBytes = %d, want 32", ev.PredictedShortBytes)
	}
	if ev.ErrorBytes != 0 {
		t.Errorf("ErrorBytes = %d, want 0", ev.ErrorBytes)
	}
	if ev.SitesUsed != 1 {
		t.Errorf("SitesUsed = %d, want 1", ev.SitesUsed)
	}
	if ev.TotalSites != 4 {
		t.Errorf("TotalSites = %d, want 4", ev.TotalSites)
	}
}

func TestEvaluateErrorBytes(t *testing.T) {
	train := mkTrace(t, []allocSpec{
		{[]string{"main", "site", "m"}, 16, 0, 0},
		{[]string{"main", "pad", "m"}, 50000, 0, 0},
	})
	db, _ := Train(train, Config{ShortThreshold: 1000})
	p := db.Predictor()

	// In the test run the same site allocates a long-lived object.
	test := mkTrace(t, []allocSpec{
		{[]string{"main", "site", "m"}, 16, 0, 0},
		{[]string{"main", "site", "m"}, 16, -1, 0},
		{[]string{"main", "pad", "m"}, 50000, 0, 0},
	})
	ev, err := Evaluate(test, p)
	if err != nil {
		t.Fatal(err)
	}
	if ev.PredictedShortBytes != 16 {
		t.Errorf("PredictedShortBytes = %d, want 16", ev.PredictedShortBytes)
	}
	if ev.ErrorBytes != 16 {
		t.Errorf("ErrorBytes = %d, want 16", ev.ErrorBytes)
	}
	if ev.PredictedBytes != 32 {
		t.Errorf("PredictedBytes = %d, want 32", ev.PredictedBytes)
	}
}

func TestEvalPercentages(t *testing.T) {
	e := Eval{
		TotalBytes:          1000,
		ActualShortBytes:    900,
		PredictedShortBytes: 800,
		ErrorBytes:          50,
		PredictedRefs:       30,
		TotalRefs:           120,
	}
	if got := e.ActualShortPct(); got != 90 {
		t.Errorf("ActualShortPct = %v", got)
	}
	if got := e.PredictedShortPct(); got != 80 {
		t.Errorf("PredictedShortPct = %v", got)
	}
	if got := e.ErrorPct(); got != 5 {
		t.Errorf("ErrorPct = %v", got)
	}
	if got := e.NewRefPct(); got != 25 {
		t.Errorf("NewRefPct = %v", got)
	}
	var zero Eval
	if zero.ActualShortPct() != 0 || zero.NewRefPct() != 0 {
		t.Error("zero Eval percentages should be 0")
	}
}

func TestSiteHistogramQuartiles(t *testing.T) {
	// A site with exact lifetimes 100, 200, ..., 1000.
	tb := callchain.NewTable()
	c := tb.InternNames("main", "s", "m")
	var objs []trace.Object
	for i := 1; i <= 10; i++ {
		objs = append(objs, trace.Object{
			ID: trace.ObjectID(i), Size: 8, Chain: c,
			Lifetime: int64(i * 100), Freed: true,
		})
	}
	db := TrainObjects(tb, objs, Config{ShortThreshold: 1 << 20})
	key := SiteKey{Chain: db.Config.siteChain(tb, c), Size: 8}
	st := db.Sites[key]
	if st == nil {
		t.Fatal("site not found")
	}
	if st.Objects != 10 {
		t.Fatalf("Objects = %d, want 10", st.Objects)
	}
	med := st.Hist.Quantile(0.5)
	if med < 400 || med > 700 {
		t.Errorf("median lifetime estimate %v, want ~500-600", med)
	}
	if st.MaxLifetime != 1000 {
		t.Errorf("MaxLifetime = %d, want 1000", st.MaxLifetime)
	}
}

func TestLifetimeQuantilesExact(t *testing.T) {
	objs := []trace.Object{
		{Size: 10, Lifetime: 100},
		{Size: 10, Lifetime: 200},
		{Size: 10, Lifetime: 300},
		{Size: 70, Lifetime: 50},
	}
	// Object-weighted median: lifetimes {50,100,200,300} -> ~150.
	q := LifetimeQuantiles(objs, []float64{0.5}, false)
	if q[0] != 100 && q[0] != 200 {
		t.Errorf("object-weighted median = %v", q[0])
	}
	// Byte-weighted: 70 of 100 bytes have lifetime 50, so median is 50.
	q = LifetimeQuantiles(objs, []float64{0.5}, true)
	if q[0] != 50 {
		t.Errorf("byte-weighted median = %v, want 50", q[0])
	}
	// Extremes.
	q = LifetimeQuantiles(objs, []float64{0, 1}, true)
	if q[0] != 50 || q[1] != 300 {
		t.Errorf("min/max = %v/%v, want 50/300", q[0], q[1])
	}
}

func TestLifetimeQuantilesEmpty(t *testing.T) {
	q := LifetimeQuantiles(nil, []float64{0.5}, true)
	if !math.IsNaN(q[0]) {
		t.Fatalf("empty quantile = %v, want NaN", q[0])
	}
}

func TestDefaultConfig(t *testing.T) {
	c := DefaultConfig()
	if c.ShortThreshold != 32<<10 || c.SizeRounding != 4 || c.AdmitFraction != 1.0 {
		t.Fatalf("unexpected defaults: %+v", c)
	}
	// withDefaults fills zero values the same way.
	var z Config
	z = z.withDefaults()
	if z.ShortThreshold != c.ShortThreshold || z.HistCells != c.HistCells {
		t.Fatalf("withDefaults mismatch: %+v vs %+v", z, c)
	}
}

func TestRoundSize(t *testing.T) {
	c := Config{SizeRounding: 4}
	cases := map[int64]int64{1: 4, 4: 4, 5: 8, 17: 20, 0: 0}
	for in, want := range cases {
		if got := c.roundSize(in); got != want {
			t.Errorf("roundSize(%d) = %d, want %d", in, got, want)
		}
	}
	c1 := Config{SizeRounding: 1}
	if got := c1.roundSize(17); got != 17 {
		t.Errorf("rounding 1 should be identity, got %d", got)
	}
}

func TestHistogramRuleMatchesExactAtFullFraction(t *testing.T) {
	specs := []allocSpec{
		{[]string{"main", "hot", "m"}, 16, 0, 0},
		{[]string{"main", "hot", "m"}, 16, 0, 0},
		{[]string{"main", "cold", "m"}, 16, -1, 0},
		{[]string{"main", "pad", "m"}, 50000, 0, 0},
	}
	tr := mkTrace(t, specs)
	exact, _ := Train(tr, Config{ShortThreshold: 1000})
	hist, _ := Train(tr, Config{ShortThreshold: 1000, HistogramRule: true})
	pe, ph := exact.Predictor(), hist.Predictor()
	hot := tr.Table.InternNames("main", "hot", "m")
	cold := tr.Table.InternNames("main", "cold", "m")
	if pe.PredictShort(hot, 16) != ph.PredictShort(hot, 16) {
		t.Fatal("rules disagree on the all-short site at fraction 1.0")
	}
	if ph.PredictShort(cold, 16) {
		t.Fatal("histogram rule admitted the long-lived site")
	}
}

func TestHistogramRuleApproximatesAtLowerFraction(t *testing.T) {
	// A site whose lifetimes are mostly short with a few long outliers:
	// at AdmitFraction 0.9 the histogram's 0.9-quantile estimate decides.
	tb := callchain.NewTable()
	c := tb.InternNames("main", "s", "m")
	// Interleave the 5% long outliers through the stream (P2 smears
	// badly on adversarially ordered input; traces interleave).
	var objs []trace.Object
	for i := 0; i < 100; i++ {
		life := int64(100)
		if i%20 == 10 {
			life = 1 << 20
		}
		objs = append(objs, trace.Object{ID: trace.ObjectID(i), Size: 8, Chain: c, Lifetime: life, Freed: true})
	}
	// With quartile-only markers the 0.9-quantile would interpolate
	// between the 0.75 marker and the extreme maximum and overestimate
	// wildly; give the histogram a marker at 0.9.
	cfg := Config{ShortThreshold: 32 << 10, AdmitFraction: 0.9, HistogramRule: true, HistCells: 10}
	db := TrainObjects(tb, objs, cfg)
	if !db.Predictor().PredictShort(c, 8) {
		t.Fatal("histogram rule rejected a mostly-short site at fraction 0.9")
	}
	strict := cfg
	strict.AdmitFraction = 1.0
	if TrainObjects(tb, objs, strict).Predictor().PredictShort(c, 8) {
		t.Fatal("histogram rule at fraction 1.0 admitted a site with long outliers")
	}
}
