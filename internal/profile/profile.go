// Package profile implements the paper's lifetime-prediction machinery:
// training a per-allocation-site lifetime database from a trace (§4.1),
// selecting the sites whose objects were all short-lived as predictors
// (§4), mapping training sites onto a different execution's sites with
// 4-byte size rounding (§4, "true prediction"), and evaluating a predictor
// against a trace to produce the Table 4/5/6 metrics.
//
// An allocation site is a (call-chain, size) pair. The call-chain used for
// the site key is configurable: the complete chain with recursion cycles
// eliminated (the paper's infinity case), a length-N sub-chain without
// elimination (Table 6's rows), or no chain at all (Table 5's size-only
// predictor).
package profile

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/callchain"
	"repro/internal/quantile"
	"repro/internal/trace"
)

// Config controls site keying and predictor admission.
type Config struct {
	// ShortThreshold is the lifetime (bytes allocated) below which an
	// object counts as short-lived. The paper fixes 32 kilobytes.
	ShortThreshold int64

	// SizeRounding rounds object sizes up to a multiple of this value
	// when forming site keys, which is what lets corresponding sites map
	// across runs (§4: "by rounding the object size to a multiple of
	// four bytes, we found the corresponding sites were more likely to
	// map correctly"). The paper uses 4.
	SizeRounding int64

	// ChainLength selects the call-chain abstraction: 0 uses the
	// complete chain with recursion elimination; N > 0 uses the last N
	// callers without elimination (matching the paper's note that the
	// infinity case alone performs cycle elimination).
	ChainLength int

	// SizeOnly ignores the chain entirely, keying sites by rounded size
	// alone (Table 5).
	SizeOnly bool

	// AdmitFraction is the fraction of a site's training objects that
	// must have been short-lived for the site to be admitted as a
	// predictor. The paper requires all of them (1.0); lower values are
	// an ablation ("how large should this percentage be?", §4.1).
	AdmitFraction float64

	// HistogramRule admits a site by consulting its P² quantile
	// histogram instead of exact short/long counts: the site is admitted
	// iff the estimated AdmitFraction-quantile of its lifetime
	// distribution lies below the threshold. This is how the paper
	// frames the decision ("If a large percentage of the objects
	// allocated at that site are short-lived, we consider that site to
	// be an excellent predictor") — the histogram being the only
	// per-site record its tool keeps. With AdmitFraction 1.0 the rule
	// consults the histogram's tracked maximum, which is exact, so both
	// rules coincide; at lower fractions the P² approximation differs
	// from exact counting.
	HistogramRule bool

	// HistCells sets the number of equiprobable cells in each site's P2
	// lifetime quantile histogram. Zero defaults to 4 (quartiles).
	HistCells int
}

// DefaultConfig returns the paper's configuration: 32KB threshold, 4-byte
// rounding, complete chains, all-short admission, quartile histograms.
func DefaultConfig() Config {
	return Config{
		ShortThreshold: 32 << 10,
		SizeRounding:   4,
		ChainLength:    0,
		AdmitFraction:  1.0,
		HistCells:      4,
	}
}

func (c Config) withDefaults() Config {
	if c.ShortThreshold == 0 {
		c.ShortThreshold = 32 << 10
	}
	if c.SizeRounding == 0 {
		c.SizeRounding = 4
	}
	if c.AdmitFraction == 0 {
		c.AdmitFraction = 1.0
	}
	if c.HistCells == 0 {
		c.HistCells = 4
	}
	return c
}

// roundSize rounds a request size up to the configured multiple.
func (c Config) roundSize(size int64) int64 {
	r := c.SizeRounding
	if r <= 1 {
		return size
	}
	return (size + r - 1) / r * r
}

// siteChain transforms a raw birth chain into the site-key chain under the
// configuration, interning any derived chains into tb.
func (c Config) siteChain(tb *callchain.Table, raw callchain.ChainID) callchain.ChainID {
	if c.SizeOnly {
		return 0
	}
	if c.ChainLength > 0 {
		return tb.SubChain(raw, c.ChainLength)
	}
	return tb.EliminateRecursion(raw)
}

// SiteKey identifies an allocation site under some Config. The chain id is
// relative to the table the DB or Predictor was built with.
type SiteKey struct {
	Chain callchain.ChainID
	Size  int64
}

// SiteStats accumulates the training observations for one site.
type SiteStats struct {
	Objects     int64
	Bytes       int64
	ShortBytes  int64
	ShortCount  int64
	Refs        int64
	MaxLifetime int64
	Hist        *quantile.Histogram
}

// admitted reports whether the site passes the exact-count admission rule.
func (s *SiteStats) admitted(frac float64) bool {
	if s.Objects == 0 {
		return false
	}
	return float64(s.ShortCount) >= frac*float64(s.Objects)
}

// admittedByHistogram applies the quantile-histogram rule instead.
func (s *SiteStats) admittedByHistogram(frac float64, threshold int64) bool {
	if s.Objects == 0 {
		return false
	}
	return s.Hist.Quantile(frac) < float64(threshold)
}

// DB is a trained site database: the output of a training run, mapping
// every site to its lifetime statistics and quantile histogram.
type DB struct {
	Config Config
	Table  *callchain.Table
	Sites  map[SiteKey]*SiteStats
}

// Train builds a site database from a trace. The DB shares the trace's
// chain table (it interns derived sub-chains into it).
func Train(tr *trace.Trace, cfg Config) (*DB, error) {
	objs, err := trace.Annotate(tr)
	if err != nil {
		return nil, err
	}
	return TrainObjects(tr.Table, objs, cfg), nil
}

// TrainSource builds a site database from a streaming event source,
// holding only the live-object set and the per-site statistics — never
// the trace. The source's chain table becomes the DB's table.
//
// Objects reach the database in death order (never-freed objects last)
// rather than Annotate's birth order. The exact-count admission rule is
// order-insensitive, so the resulting Predictor is identical to one
// trained via Train/TrainObjects on the materialized trace; only the P²
// quantile histograms (consulted when Config.HistogramRule is set) are
// insertion-order sensitive and may differ in their interior markers.
func TrainSource(src trace.Source, cfg Config) (*DB, error) {
	cfg = cfg.withDefaults()
	db := &DB{Config: cfg, Table: src.Table(), Sites: make(map[SiteKey]*SiteStats)}
	if err := trace.AnnotateStream(src, func(o trace.Object) error {
		db.addObject(&o)
		return nil
	}); err != nil {
		return nil, err
	}
	return db, nil
}

// TrainObjects builds a site database from pre-annotated objects whose
// chains live in tb.
func TrainObjects(tb *callchain.Table, objs []trace.Object, cfg Config) *DB {
	cfg = cfg.withDefaults()
	db := &DB{Config: cfg, Table: tb, Sites: make(map[SiteKey]*SiteStats)}
	for i := range objs {
		db.addObject(&objs[i])
	}
	return db
}

func (db *DB) addObject(o *trace.Object) {
	key := SiteKey{
		Chain: db.Config.siteChain(db.Table, o.Chain),
		Size:  db.Config.roundSize(o.Size),
	}
	st := db.Sites[key]
	if st == nil {
		h, err := quantile.NewHistogram(db.Config.HistCells)
		if err != nil {
			panic(fmt.Sprintf("profile: bad HistCells: %v", err))
		}
		st = &SiteStats{Hist: h}
		db.Sites[key] = st
	}
	st.Objects++
	st.Bytes += o.Size
	st.Refs += o.Refs
	st.Hist.Add(float64(o.Lifetime))
	if o.Lifetime > st.MaxLifetime {
		st.MaxLifetime = o.Lifetime
	}
	if o.Lifetime < db.Config.ShortThreshold {
		st.ShortCount++
		st.ShortBytes += o.Size
	}
}

// NumSites reports the number of distinct sites observed.
func (db *DB) NumSites() int { return len(db.Sites) }

// Predictor extracts the set of admitted short-lived predictor sites.
func (db *DB) Predictor() *Predictor {
	p := &Predictor{
		Config: db.Config,
		table:  db.Table,
		keys:   make(map[SiteKey]struct{}),
	}
	for k, st := range db.Sites {
		ok := st.admitted(db.Config.AdmitFraction)
		if db.Config.HistogramRule {
			ok = st.admittedByHistogram(db.Config.AdmitFraction, db.Config.ShortThreshold)
		}
		if ok {
			p.keys[k] = struct{}{}
		}
	}
	return p
}

// Predictor is the trained short-lived-site database the allocator
// consults at each allocation (paper §5.1: "the presence of the allocation
// site in the short-lived site database indicates an arena allocation").
type Predictor struct {
	Config Config
	table  *callchain.Table
	keys   map[SiteKey]struct{}
}

// NumSites reports how many predictor sites were admitted.
func (p *Predictor) NumSites() int { return len(p.keys) }

// Table returns the chain table the predictor's keys live in.
func (p *Predictor) Table() *callchain.Table { return p.table }

// PredictShort reports whether an allocation with the given raw chain (in
// p's own table) and size is predicted short-lived.
func (p *Predictor) PredictShort(raw callchain.ChainID, size int64) bool {
	key := SiteKey{
		Chain: p.Config.siteChain(p.table, raw),
		Size:  p.Config.roundSize(size),
	}
	_, ok := p.keys[key]
	return ok
}

// Mapper translates chains from another execution's table into the
// predictor's table by function name — the paper's cross-run site mapping.
// It memoizes per raw chain, so the per-allocation cost is a map hit.
type Mapper struct {
	p     *Predictor
	from  *callchain.Table
	memo  map[callchain.ChainID]callchain.ChainID // raw from-chain -> site chain in p.table
	hits  map[SiteKey]int64                       // predictor sites that matched
	total int64

	// decisions memoizes the final PredictShort outcome per (raw chain,
	// rounded size) pair, packed into one 64-bit key, so the replay's
	// per-alloc cost is a single map probe instead of chain mapping plus
	// a 16-byte-key site lookup. A cached hit only bumps total: the
	// first occurrence of each pair went through the slow path, which
	// already recorded the site in hits, and only the number of distinct
	// matched sites (SitesMatched) is observable. Rounded sizes that
	// do not fit 32 bits bypass the cache.
	decisions map[uint64]bool
}

// NewMapper prepares a mapper from chains interned in from onto p.
func (p *Predictor) NewMapper(from *callchain.Table) *Mapper {
	return &Mapper{
		p:         p,
		from:      from,
		memo:      make(map[callchain.ChainID]callchain.ChainID),
		hits:      make(map[SiteKey]int64),
		decisions: make(map[uint64]bool),
	}
}

// siteChainFrom maps a raw chain in the foreign table to the transformed
// site chain interned in the predictor's table.
func (m *Mapper) siteChainFrom(raw callchain.ChainID) callchain.ChainID {
	if mapped, ok := m.memo[raw]; ok {
		return mapped
	}
	// Transform in the foreign table first (sub-chain / elimination are
	// structural), then re-intern by name in the predictor's table.
	transformed := m.p.Config.siteChain(m.from, raw)
	fs := m.from.Funcs(transformed)
	names := make([]string, len(fs))
	for i, f := range fs {
		names[i] = m.from.FuncName(f)
	}
	mapped := m.p.table.InternNames(names...)
	m.memo[raw] = mapped
	return mapped
}

// PredictShort reports the prediction for an allocation observed in the
// foreign execution, and records site-usage accounting.
func (m *Mapper) PredictShort(raw callchain.ChainID, size int64) bool {
	rounded := m.p.Config.roundSize(size)
	if uint64(rounded)>>32 == 0 {
		ck := uint64(raw)<<32 | uint64(rounded)
		if short, ok := m.decisions[ck]; ok {
			m.total++
			return short
		}
		short := m.predictSlow(raw, rounded)
		m.decisions[ck] = short
		return short
	}
	return m.predictSlow(raw, rounded)
}

// predictSlow is the uncached decision: map the chain, probe the site
// set, and record site-usage accounting.
func (m *Mapper) predictSlow(raw callchain.ChainID, rounded int64) bool {
	key := SiteKey{
		Chain: m.siteChainFrom(raw),
		Size:  rounded,
	}
	m.total++
	if _, ok := m.p.keys[key]; ok {
		m.hits[key]++
		return true
	}
	return false
}

// SitesMatched reports how many distinct predictor sites matched at least
// one allocation — the paper's "Sites Used" under true prediction.
func (m *Mapper) SitesMatched() int { return len(m.hits) }

// Eval holds the prediction-effectiveness metrics of Tables 4, 5 and 6.
type Eval struct {
	TotalSites   int // distinct sites in the evaluated trace
	SitesUsed    int // predictor sites that matched >= 1 allocation
	TotalObjects int64
	TotalBytes   int64

	ActualShortBytes    int64 // objects that really died before the threshold
	PredictedBytes      int64 // bytes predicted short (correct or not)
	PredictedShortBytes int64 // predicted short AND actually short
	ErrorBytes          int64 // predicted short but actually long

	PredictedRefs int64 // heap refs to predicted-short objects
	TotalRefs     int64
}

// ActualShortPct returns 100 * actual-short / total bytes.
func (e Eval) ActualShortPct() float64 { return pct(e.ActualShortBytes, e.TotalBytes) }

// PredictedShortPct returns 100 * correctly-predicted / total bytes — the
// paper's "Predicted Short-lived Bytes (%)".
func (e Eval) PredictedShortPct() float64 { return pct(e.PredictedShortBytes, e.TotalBytes) }

// ErrorPct returns 100 * error bytes / total bytes.
func (e Eval) ErrorPct() float64 { return pct(e.ErrorBytes, e.TotalBytes) }

// NewRefPct returns 100 * refs-to-predicted / total heap refs — Table 6's
// "New Ref" column.
func (e Eval) NewRefPct() float64 { return pct(e.PredictedRefs, e.TotalRefs) }

func pct(part, whole int64) float64 {
	if whole == 0 {
		return 0
	}
	return 100 * float64(part) / float64(whole)
}

// Evaluate runs the predictor over a trace (self prediction when the trace
// is the training trace, true prediction otherwise — the chains are mapped
// by name either way) and returns the effectiveness metrics.
func Evaluate(tr *trace.Trace, p *Predictor) (Eval, error) {
	objs, err := trace.Annotate(tr)
	if err != nil {
		return Eval{}, err
	}
	return EvaluateObjects(tr.Table, objs, p), nil
}

// EvaluateObjects evaluates pre-annotated objects whose chains live in tb.
func EvaluateObjects(tb *callchain.Table, objs []trace.Object, p *Predictor) Eval {
	m := p.NewMapper(tb)
	var ev Eval
	seen := make(map[SiteKey]struct{})
	for i := range objs {
		o := &objs[i]
		key := SiteKey{Chain: m.siteChainFrom(o.Chain), Size: p.Config.roundSize(o.Size)}
		if _, ok := seen[key]; !ok {
			seen[key] = struct{}{}
		}
		ev.TotalObjects++
		ev.TotalBytes += o.Size
		ev.TotalRefs += o.Refs
		short := o.Lifetime < p.Config.ShortThreshold
		if short {
			ev.ActualShortBytes += o.Size
		}
		if m.PredictShort(o.Chain, o.Size) {
			ev.PredictedBytes += o.Size
			ev.PredictedRefs += o.Refs
			if short {
				ev.PredictedShortBytes += o.Size
			} else {
				ev.ErrorBytes += o.Size
			}
		}
	}
	ev.TotalSites = len(seen)
	ev.SitesUsed = m.SitesMatched()
	return ev
}

// LifetimeQuantiles returns exact quantiles of the trace's object-lifetime
// distribution at the given probabilities. When byteWeighted is true each
// object is weighted by its size, which is how the paper's Table 3 reads
// ("each column gives the lifetime for which that percentage of bytes is
// alive"); otherwise objects weigh equally.
func LifetimeQuantiles(objs []trace.Object, probs []float64, byteWeighted bool) []float64 {
	type lw struct {
		life int64
		w    int64
	}
	items := make([]lw, len(objs))
	var totalW int64
	for i := range objs {
		w := int64(1)
		if byteWeighted {
			w = objs[i].Size
		}
		items[i] = lw{objs[i].Lifetime, w}
		totalW += w
	}
	sort.Slice(items, func(i, j int) bool { return items[i].life < items[j].life })
	out := make([]float64, len(probs))
	if len(items) == 0 || totalW == 0 {
		for i := range out {
			out[i] = math.NaN()
		}
		return out
	}
	for pi, p := range probs {
		target := int64(p * float64(totalW))
		var acc int64
		val := items[len(items)-1].life
		for _, it := range items {
			acc += it.w
			if acc >= target {
				val = it.life
				break
			}
		}
		out[pi] = float64(val)
	}
	return out
}

// newTableForPredictor returns the fresh chain table a deserialized
// predictor interns its site chains into.
func newTableForPredictor() *callchain.Table { return callchain.NewTable() }

// TopSizes returns the n most allocation-heavy rounded request sizes in
// the database — the profile a CUSTOMALLOC-style allocator (the paper's
// reference [9]) synthesizes its per-size free lists from.
func (db *DB) TopSizes(n int) []int64 {
	counts := make(map[int64]int64)
	for key, st := range db.Sites {
		counts[key.Size] += st.Objects
	}
	sizes := make([]int64, 0, len(counts))
	for s := range counts {
		sizes = append(sizes, s)
	}
	sort.Slice(sizes, func(i, j int) bool {
		if counts[sizes[i]] != counts[sizes[j]] {
			return counts[sizes[i]] > counts[sizes[j]]
		}
		return sizes[i] < sizes[j]
	})
	if n < len(sizes) {
		sizes = sizes[:n]
	}
	return sizes
}

// Site reports the mapped site key for an allocation observed in the
// foreign execution and whether that site is an admitted short-lived
// predictor. It gives allocators that segregate per site (Hanson-style)
// a stable identity; unlike PredictShort it does not touch the site-usage
// accounting.
func (m *Mapper) Site(raw callchain.ChainID, size int64) (SiteKey, bool) {
	key := SiteKey{
		Chain: m.siteChainFrom(raw),
		Size:  m.p.Config.roundSize(size),
	}
	_, ok := m.p.keys[key]
	return key, ok
}
