package profile

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
)

// SiteRecord is the serialized form of one trained allocation site: the
// call-chain as function names, the rounded size, summary statistics, and
// the quantile-histogram markers. The set of admitted records is the
// paper's "database of allocation sites" that ships with the optimized
// allocator (§5.1).
type SiteRecord struct {
	Chain       []string  `json:"chain"`
	Size        int64     `json:"size"`
	Objects     int64     `json:"objects"`
	Bytes       int64     `json:"bytes"`
	ShortCount  int64     `json:"short_count"`
	MaxLifetime int64     `json:"max_lifetime"`
	Quantiles   []float64 `json:"quantiles"` // histogram marker heights
	Admitted    bool      `json:"admitted"`
}

// DBFile is the serialized site database.
type DBFile struct {
	Config  Config       `json:"config"`
	Program string       `json:"program,omitempty"`
	Sites   []SiteRecord `json:"sites"`
}

// Export converts the database to its serializable form, sites sorted by
// descending byte volume for human inspection.
func (db *DB) Export(program string) DBFile {
	out := DBFile{Config: db.Config, Program: program}
	for key, st := range db.Sites {
		fs := db.Table.Funcs(key.Chain)
		names := make([]string, len(fs))
		for i, f := range fs {
			names[i] = db.Table.FuncName(f)
		}
		_, heights := st.Hist.Markers()
		out.Sites = append(out.Sites, SiteRecord{
			Chain:       names,
			Size:        key.Size,
			Objects:     st.Objects,
			Bytes:       st.Bytes,
			ShortCount:  st.ShortCount,
			MaxLifetime: st.MaxLifetime,
			Quantiles:   heights,
			Admitted:    st.admitted(db.Config.AdmitFraction),
		})
	}
	sort.Slice(out.Sites, func(i, j int) bool {
		a, b := out.Sites[i], out.Sites[j]
		if a.Bytes != b.Bytes {
			return a.Bytes > b.Bytes
		}
		if c := strings.Compare(strings.Join(a.Chain, ">"), strings.Join(b.Chain, ">")); c != 0 {
			return c < 0
		}
		return a.Size < b.Size
	})
	return out
}

// WriteJSON serializes the database as indented JSON.
func (db *DB) WriteJSON(w io.Writer, program string) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(db.Export(program))
}

// ReadPredictor loads a serialized database and reconstructs the predictor
// from its admitted sites. Only the chain, size, and admitted flag are
// needed; statistics are informational.
func ReadPredictor(r io.Reader) (*Predictor, error) {
	var file DBFile
	dec := json.NewDecoder(r)
	if err := dec.Decode(&file); err != nil {
		return nil, fmt.Errorf("profile: decoding site database: %w", err)
	}
	return file.Predictor()
}

// Predictor reconstructs a predictor from a deserialized database file.
func (f DBFile) Predictor() (*Predictor, error) {
	cfg := f.Config.withDefaults()
	p := &Predictor{
		Config: cfg,
		table:  newTableForPredictor(),
		keys:   make(map[SiteKey]struct{}),
	}
	for _, rec := range f.Sites {
		if !rec.Admitted {
			continue
		}
		if rec.Size < 0 {
			return nil, fmt.Errorf("profile: negative size in site record")
		}
		chain := p.table.InternNames(rec.Chain...)
		p.keys[SiteKey{Chain: chain, Size: cfg.roundSize(rec.Size)}] = struct{}{}
	}
	return p, nil
}
