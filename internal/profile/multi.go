package profile

import (
	"fmt"

	"repro/internal/callchain"
	"repro/internal/trace"
)

// Multi-input training. The paper describes profile-based optimization as
// running "with training sets of test data" (plural, §1): a site should
// only be trusted as short-lived if it was short-lived in EVERY training
// run. TrainMulti builds one database per trace and intersects the
// admitted sites by (chain-names, rounded size), exactly the mapping used
// for true prediction.

// TrainMulti trains on several traces (possibly from different executions
// with different chain tables) and returns a predictor admitting only the
// sites that were admitted in every run in which they appeared, and that
// appeared in at least one run. Sites that appear in only a subset of runs
// are judged on those runs alone — an input that never exercises a site
// says nothing about it.
//
// With RequireAllRuns set, a site must additionally appear in every
// training run: the most conservative variant, trading coverage for
// robustness against input-dependent sites.
func TrainMulti(traces []*trace.Trace, cfg Config, requireAllRuns bool) (*Predictor, error) {
	if len(traces) == 0 {
		return nil, fmt.Errorf("profile: TrainMulti needs at least one trace")
	}
	cfg = cfg.withDefaults()

	// Canonical key space: a fresh table shared by the merged predictor.
	merged := &Predictor{
		Config: cfg,
		table:  callchain.NewTable(),
		keys:   make(map[SiteKey]struct{}),
	}

	type agg struct {
		runs     int
		admitted int
	}
	sites := make(map[SiteKey]*agg)

	for ti, tr := range traces {
		objs, err := trace.Annotate(tr)
		if err != nil {
			return nil, fmt.Errorf("profile: training trace %d: %w", ti, err)
		}
		db := TrainObjects(tr.Table, objs, cfg)
		// Re-key this run's sites into the merged table by names.
		for key, st := range db.Sites {
			fs := tr.Table.Funcs(key.Chain)
			names := make([]string, len(fs))
			for i, f := range fs {
				names[i] = tr.Table.FuncName(f)
			}
			mkey := SiteKey{
				Chain: merged.table.InternNames(names...),
				Size:  key.Size,
			}
			a := sites[mkey]
			if a == nil {
				a = &agg{}
				sites[mkey] = a
			}
			a.runs++
			if st.admitted(cfg.AdmitFraction) {
				a.admitted++
			}
		}
	}
	for key, a := range sites {
		if a.admitted != a.runs {
			continue // long-lived in at least one run
		}
		if requireAllRuns && a.runs != len(traces) {
			continue
		}
		merged.keys[key] = struct{}{}
	}
	return merged, nil
}
