package profile

import (
	"repro/internal/callchain"
	"repro/internal/trace"
)

// This file holds the predictor zoo: competing admission policies that all
// speak Oracle so the replay loops, accuracy tracker, and tournament can
// rank them head-to-head against the paper's all-short rule. Each policy
// decides admission per site; SiteMapper carries any of them across
// executions by the same function-name re-interning the paper's Mapper
// uses.

// SiteOracle is the site-level face of a zoo predictor: a verdict per
// SiteKey in the oracle's own chain table, plus the keying configuration
// and table needed to form (and cross-map) those keys. Implementations
// also satisfy Oracle directly by keying raw chains through their own
// table.
type SiteOracle interface {
	// AdmitSite reports whether allocations at the site are predicted
	// short-lived. The key's chain must be interned in Table().
	AdmitSite(key SiteKey) bool
	// ProfileConfig returns the site-keying configuration (threshold,
	// rounding, chain abstraction) the oracle was trained under.
	ProfileConfig() Config
	// Table returns the chain table the oracle's site keys live in.
	Table() *callchain.Table
}

// predictVia keys a raw own-table chain and size under the oracle's
// configuration and asks for the site verdict — the shared PredictShort
// body of every zoo oracle.
func predictVia(o SiteOracle, raw callchain.ChainID, size int64) bool {
	cfg := o.ProfileConfig()
	key := SiteKey{
		Chain: cfg.siteChain(o.Table(), raw),
		Size:  cfg.roundSize(size),
	}
	return o.AdmitSite(key)
}

// SiteMapper adapts a SiteOracle to chains from another execution's table,
// mirroring Mapper: transform the chain structurally in the foreign table,
// re-intern it by function name into the oracle's table, memoize the
// mapping. Unlike Mapper it never caches final decisions — a windowed
// oracle's admissions drift as it keeps training, so only the (stable)
// chain mapping is safe to memoize.
type SiteMapper struct {
	o    SiteOracle
	from *callchain.Table
	memo map[callchain.ChainID]callchain.ChainID
}

// NewSiteMapper prepares a mapper from chains interned in from onto o.
func NewSiteMapper(o SiteOracle, from *callchain.Table) *SiteMapper {
	return &SiteMapper{
		o:    o,
		from: from,
		memo: make(map[callchain.ChainID]callchain.ChainID),
	}
}

func (m *SiteMapper) siteChainFrom(raw callchain.ChainID) callchain.ChainID {
	if mapped, ok := m.memo[raw]; ok {
		return mapped
	}
	transformed := m.o.ProfileConfig().siteChain(m.from, raw)
	fs := m.from.Funcs(transformed)
	names := make([]string, len(fs))
	for i, f := range fs {
		names[i] = m.from.FuncName(f)
	}
	mapped := m.o.Table().InternNames(names...)
	m.memo[raw] = mapped
	return mapped
}

// PredictShort implements Oracle for a foreign execution's chains.
func (m *SiteMapper) PredictShort(raw callchain.ChainID, size int64) bool {
	_, short := m.Site(raw, size)
	return short
}

// Site returns the mapped site key (in the oracle's table) and the admit
// verdict for one allocation — the routing face sited replays need,
// mirroring Mapper.Site.
func (m *SiteMapper) Site(raw callchain.ChainID, size int64) (SiteKey, bool) {
	key := SiteKey{
		Chain: m.siteChainFrom(raw),
		Size:  m.o.ProfileConfig().roundSize(size),
	}
	return key, m.o.AdmitSite(key)
}

// ShortThreshold implements Oracle.
func (m *SiteMapper) ShortThreshold() int64 {
	return m.o.ProfileConfig().ShortThreshold
}

// BindOracle returns an Oracle that accepts raw chains interned in from:
// the oracle itself when it already speaks that table, or a cross-table
// mapper otherwise. This is the one entry point the tournament uses to
// point any trained policy at a test trace.
func BindOracle(o Oracle, from *callchain.Table) Oracle {
	switch t := o.(type) {
	case *Predictor:
		return t.NewMapper(from)
	case SiteOracle:
		if t.Table() == from {
			return o
		}
		return NewSiteMapper(t, from)
	}
	return o
}

// QuantileConfig parameterizes the per-site quantile-threshold policy.
type QuantileConfig struct {
	// Q is the lifetime quantile consulted per site. Values >= 1 use the
	// exact tracked maximum (coinciding with the paper's all-short rule
	// when SlackPerByte is 0); lower values read the site's P² histogram.
	// Zero defaults to 1.
	Q float64
	// Threshold is the base lifetime threshold in allocated bytes. Zero
	// defaults to the training DB's ShortThreshold.
	Threshold int64
	// SlackPerByte makes the threshold per-site: a site keyed at rounded
	// size S is admitted against Threshold + SlackPerByte*S, conceding
	// larger objects proportionally more byte-clock lifetime.
	SlackPerByte int64
}

// QuantileOracle admits a site iff the estimated Q-quantile of its
// training lifetime distribution clears the site's own threshold — the
// histogram-driven generalization of the paper's rule, with a per-site
// (size-dependent) threshold instead of a global one.
type QuantileOracle struct {
	db *DB
	qc QuantileConfig
}

// NewQuantileOracle builds the policy over a trained site database.
func NewQuantileOracle(db *DB, qc QuantileConfig) *QuantileOracle {
	if qc.Q == 0 {
		qc.Q = 1.0
	}
	if qc.Threshold == 0 {
		qc.Threshold = db.Config.ShortThreshold
	}
	return &QuantileOracle{db: db, qc: qc}
}

// SiteThreshold returns the lifetime threshold the site is admitted
// against: the base plus the per-byte slack scaled by the rounded size.
func (q *QuantileOracle) SiteThreshold(key SiteKey) int64 {
	return q.qc.Threshold + q.qc.SlackPerByte*key.Size
}

// AdmitSite implements SiteOracle.
func (q *QuantileOracle) AdmitSite(key SiteKey) bool {
	st := q.db.Sites[key]
	if st == nil || st.Objects == 0 {
		return false
	}
	thr := q.SiteThreshold(key)
	if q.qc.Q >= 1.0 {
		// The tracked maximum is exact, unlike interior P² markers.
		return st.MaxLifetime < thr
	}
	return st.Hist.Quantile(q.qc.Q) < float64(thr)
}

// ProfileConfig implements SiteOracle.
func (q *QuantileOracle) ProfileConfig() Config { return q.db.Config }

// Table implements SiteOracle.
func (q *QuantileOracle) Table() *callchain.Table { return q.db.Table }

// PredictShort implements Oracle over the oracle's own chain table.
func (q *QuantileOracle) PredictShort(raw callchain.ChainID, size int64) bool {
	return predictVia(q, raw, size)
}

// ShortThreshold implements Oracle. Verdicts are scored against the
// training configuration's global threshold regardless of per-site slack.
func (q *QuantileOracle) ShortThreshold() int64 { return q.db.Config.ShortThreshold }

// WindowedConfig parameterizes the decaying online policy.
type WindowedConfig struct {
	// Window is the number of most-recent deaths per site the verdict is
	// computed over. Zero (or negative) keeps every observation, which
	// makes the oracle equal the batch quantile policy at the same Q.
	Window int
	// Q is the fraction of windowed observations that must have been
	// short for the site to be admitted. Zero defaults to 1 (all short,
	// the paper's rule applied to the window).
	Q float64
}

// siteWindow is one site's ring of recent short/long outcomes.
type siteWindow struct {
	ring  []bool
	next  int
	n     int64 // observations currently in the window
	short int64 // short observations among them
}

// WindowedOracle trains incrementally, one object death at a time, and
// admits a site from its recent history only — so admissions drift as the
// program moves between phases. TrainWindowed feeds it from a streaming
// Source; Observe keeps training it online afterwards.
type WindowedOracle struct {
	cfg   Config
	wc    WindowedConfig
	table *callchain.Table
	sites map[SiteKey]*siteWindow
}

// NewWindowedOracle returns an untrained windowed policy keying sites in
// the given table.
func NewWindowedOracle(tb *callchain.Table, cfg Config, wc WindowedConfig) *WindowedOracle {
	cfg = cfg.withDefaults()
	if wc.Q == 0 {
		wc.Q = 1.0
	}
	return &WindowedOracle{
		cfg:   cfg,
		wc:    wc,
		table: tb,
		sites: make(map[SiteKey]*siteWindow),
	}
}

// TrainWindowed streams a source through a fresh windowed oracle: objects
// arrive in death order (the order an online profiler would see them), so
// the final window state reflects each site's most recent behaviour.
func TrainWindowed(src trace.Source, cfg Config, wc WindowedConfig) (*WindowedOracle, error) {
	w := NewWindowedOracle(src.Table(), cfg, wc)
	if err := trace.AnnotateStream(src, func(o trace.Object) error {
		w.Observe(o)
		return nil
	}); err != nil {
		return nil, err
	}
	return w, nil
}

// Observe trains on one annotated object, evicting the oldest windowed
// observation at the object's site once the window is full.
func (w *WindowedOracle) Observe(o trace.Object) {
	key := SiteKey{
		Chain: w.cfg.siteChain(w.table, o.Chain),
		Size:  w.cfg.roundSize(o.Size),
	}
	sw := w.sites[key]
	if sw == nil {
		sw = &siteWindow{}
		if w.wc.Window > 0 {
			sw.ring = make([]bool, w.wc.Window)
		}
		w.sites[key] = sw
	}
	short := o.Lifetime < w.cfg.ShortThreshold
	if w.wc.Window <= 0 {
		sw.n++
	} else {
		if sw.n == int64(w.wc.Window) {
			if sw.ring[sw.next] {
				sw.short--
			}
		} else {
			sw.n++
		}
		sw.ring[sw.next] = short
		sw.next = (sw.next + 1) % w.wc.Window
	}
	if short {
		sw.short++
	}
}

// AdmitSite implements SiteOracle: at least fraction Q of the windowed
// observations were short.
func (w *WindowedOracle) AdmitSite(key SiteKey) bool {
	sw := w.sites[key]
	if sw == nil || sw.n == 0 {
		return false
	}
	return float64(sw.short) >= w.wc.Q*float64(sw.n)
}

// ProfileConfig implements SiteOracle.
func (w *WindowedOracle) ProfileConfig() Config { return w.cfg }

// Table implements SiteOracle.
func (w *WindowedOracle) Table() *callchain.Table { return w.table }

// PredictShort implements Oracle over the oracle's own chain table.
func (w *WindowedOracle) PredictShort(raw callchain.ChainID, size int64) bool {
	return predictVia(w, raw, size)
}

// ShortThreshold implements Oracle.
func (w *WindowedOracle) ShortThreshold() int64 { return w.cfg.ShortThreshold }

// NumSites reports how many distinct sites have been observed.
func (w *WindowedOracle) NumSites() int { return len(w.sites) }

// OracleTrainer names one zoo policy and trains it from a trace under a
// site-keying configuration. The returned Oracle keys raw chains in the
// training trace's own table; use BindOracle to point it at another
// execution.
type OracleTrainer struct {
	Name  string
	Train func(tr *trace.Trace, cfg Config) (Oracle, error)
}

// ZooTrainers returns the registered prediction policies in tournament
// order: the paper's all-short rule plus the three competing policies.
// Every entry must pass internal/check's differential suite before a
// tournament will run it.
func ZooTrainers() []OracleTrainer {
	return []OracleTrainer{
		{Name: "paper", Train: func(tr *trace.Trace, cfg Config) (Oracle, error) {
			db, err := Train(tr, cfg)
			if err != nil {
				return nil, err
			}
			return db.Predictor(), nil
		}},
		{Name: "quantile", Train: func(tr *trace.Trace, cfg Config) (Oracle, error) {
			db, err := Train(tr, cfg)
			if err != nil {
				return nil, err
			}
			return NewQuantileOracle(db, QuantileConfig{Q: 0.95, SlackPerByte: 8}), nil
		}},
		{Name: "window", Train: func(tr *trace.Trace, cfg Config) (Oracle, error) {
			return TrainWindowed(trace.NewSliceSource(tr), cfg, WindowedConfig{Window: 128, Q: 0.95})
		}},
		{Name: "learned", Train: func(tr *trace.Trace, cfg Config) (Oracle, error) {
			db, err := Train(tr, cfg)
			if err != nil {
				return nil, err
			}
			return TrainLearned(db, LearnedConfig{}), nil
		}},
	}
}

var (
	_ Oracle     = (*QuantileOracle)(nil)
	_ Oracle     = (*WindowedOracle)(nil)
	_ Oracle     = (*SiteMapper)(nil)
	_ SiteOracle = (*QuantileOracle)(nil)
	_ SiteOracle = (*WindowedOracle)(nil)
)
