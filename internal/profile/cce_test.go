package profile

import (
	"testing"

	"repro/internal/trace"
)

func TestCCEPredictorBasics(t *testing.T) {
	tr := mkTrace(t, []allocSpec{
		{[]string{"main", "hot", "m"}, 16, 0, 0},
		{[]string{"main", "hot", "m"}, 16, 0, 0},
		{[]string{"main", "cold", "m"}, 16, -1, 0},
		{[]string{"main", "pad", "m"}, 50000, 0, 0},
	})
	objs, err := trace.Annotate(tr)
	if err != nil {
		t.Fatal(err)
	}
	p, collisions := TrainCCE(tr.Table, objs, Config{ShortThreshold: 1000}, 7)
	if collisions != 0 {
		t.Logf("note: %d residual key collisions among 3 chains", collisions)
	}
	hot := tr.Table.InternNames("main", "hot", "m")
	cold := tr.Table.InternNames("main", "cold", "m")
	if !p.PredictShort(hot, 16) && collisions == 0 {
		t.Error("all-short site not predicted by CCE")
	}
	if p.PredictShort(cold, 16) {
		t.Error("long-lived site predicted by CCE")
	}
	ev := EvaluateCCE(objs, p)
	if ev.ErrorBytes != 0 {
		t.Errorf("self CCE evaluation has error bytes: %d", ev.ErrorBytes)
	}
	if ev.TotalBytes != 16+16+16+50000 {
		t.Errorf("TotalBytes = %d", ev.TotalBytes)
	}
}

// TestCCECollisionDisablesNotMisfires builds a forced collision: with only
// two functions and chains a>b vs b>a, XOR keys are identical by
// construction. The short site must then NOT be predicted (the cell mixes
// a long object), rather than the long site being predicted short.
func TestCCECollisionDisablesNotMisfires(t *testing.T) {
	tr := mkTrace(t, []allocSpec{
		{[]string{"a", "b"}, 16, 0, 0},
		{[]string{"a", "b"}, 16, 0, 0},
		{[]string{"b", "a"}, 16, -1, 0},
		{[]string{"pad"}, 50000, 0, 0},
	})
	objs, err := trace.Annotate(tr)
	if err != nil {
		t.Fatal(err)
	}
	p, _ := TrainCCE(tr.Table, objs, Config{ShortThreshold: 1000}, 3)
	short := tr.Table.InternNames("a", "b")
	long := tr.Table.InternNames("b", "a")
	if p.PredictShort(short, 16) {
		t.Error("colliding short site should have been disabled")
	}
	if p.PredictShort(long, 16) {
		t.Error("long site predicted short through collision")
	}
	ev := EvaluateCCE(objs, p)
	if ev.ErrorBytes != 0 {
		t.Errorf("collision produced error bytes: %d", ev.ErrorBytes)
	}
}

// TestCCEApproachesExactPredictor checks on a larger synthetic trace that
// the CCE predictor captures most of what the exact site+size predictor
// captures (the paper's premise for proposing the scheme).
func TestCCEApproachesExactPredictor(t *testing.T) {
	var specs []allocSpec
	// 30 distinct short-lived sites and 5 long-lived ones.
	for i := 0; i < 30; i++ {
		name := "s" + string(rune('a'+i%26)) + string(rune('0'+i/26))
		for j := 0; j < 20; j++ {
			specs = append(specs, allocSpec{[]string{"main", "run", name, "xmalloc"}, 16, 0, 0})
		}
	}
	for i := 0; i < 5; i++ {
		name := "l" + string(rune('a'+i))
		specs = append(specs, allocSpec{[]string{"main", "init", name, "xmalloc"}, 16, -1, 0})
	}
	specs = append(specs, allocSpec{[]string{"main", "pad", "m"}, 100000, 0, 0})
	tr := mkTrace(t, specs)
	objs, err := trace.Annotate(tr)
	if err != nil {
		t.Fatal(err)
	}

	cfg := Config{ShortThreshold: 1000}
	exact := TrainObjects(tr.Table, objs, cfg).Predictor()
	exactEv := EvaluateObjects(tr.Table, objs, exact)

	cce, _ := TrainCCE(tr.Table, objs, cfg, 11)
	cceEv := EvaluateCCE(objs, cce)

	if cceEv.PredictedShortBytes < exactEv.PredictedShortBytes*9/10 {
		t.Errorf("CCE predicted %d bytes, exact %d: too much lost to collisions",
			cceEv.PredictedShortBytes, exactEv.PredictedShortBytes)
	}
	if cceEv.ErrorBytes != 0 {
		t.Errorf("CCE self evaluation misfired: %d error bytes", cceEv.ErrorBytes)
	}
}
