package profile

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/callchain"
	"repro/internal/trace"
)

// fuzzSeedTrace builds the small deterministic trace the fuzz seeds are
// serialized from: three sites with short, long, and mixed behaviour.
func fuzzSeedTrace() *trace.Trace {
	tb := callchain.NewTable()
	tr := &trace.Trace{Program: "fuzz", Input: "seed", Table: tb}
	hot := tb.InternNames("main", "hot", "malloc")
	cold := tb.InternNames("main", "cold", "malloc")
	mix := tb.InternNames("main", "mix", "malloc")
	ev := func(e trace.Event) { tr.Events = append(tr.Events, e) }
	for i := 0; i < 4; i++ {
		ev(trace.Event{Kind: trace.KindAlloc, Obj: trace.ObjectID(i), Size: 16, Chain: hot, Refs: 1})
		ev(trace.Event{Kind: trace.KindFree, Obj: trace.ObjectID(i)})
	}
	ev(trace.Event{Kind: trace.KindAlloc, Obj: 10, Size: 32, Chain: cold, Refs: 2})
	ev(trace.Event{Kind: trace.KindAlloc, Obj: 11, Size: 24, Chain: mix, Refs: 0})
	ev(trace.Event{Kind: trace.KindFree, Obj: 11})
	ev(trace.Event{Kind: trace.KindAlloc, Obj: 12, Size: 24, Chain: mix, Refs: 0})
	ev(trace.Event{Kind: trace.KindAlloc, Obj: 13, Size: 65536, Chain: hot, Refs: 0})
	ev(trace.Event{Kind: trace.KindFree, Obj: 13})
	ev(trace.Event{Kind: trace.KindFree, Obj: 12})
	ev(trace.Event{Kind: trace.KindFree, Obj: 10})
	return tr
}

// fuzzSeedBytes returns the seed trace in both binary framings plus the
// usual corruptions, shared by the fuzz seeds and the corpus generator.
func fuzzSeedBytes() [][]byte {
	tr := fuzzSeedTrace()
	var b1 bytes.Buffer
	if err := trace.WriteBinary(&b1, tr); err != nil {
		panic(err)
	}
	var b2 bytes.Buffer
	w, err := trace.NewWriter(&b2, trace.Meta{Program: tr.Program, Input: tr.Input}, tr.Table)
	if err != nil {
		panic(err)
	}
	for _, ev := range tr.Events {
		if err := w.Write(ev); err != nil {
			panic(err)
		}
	}
	if err := w.Close(0, 0); err != nil {
		panic(err)
	}
	good1, good2 := b1.Bytes(), b2.Bytes()
	bad := append([]byte(nil), good2...)
	if len(bad) > 40 {
		bad[len(bad)/2] ^= 0xFF
	}
	return [][]byte{
		good1,
		good2,
		good2[:len(good2)/2], // truncated mid-events
		bad,                  // corrupted event byte
		[]byte("LPTRACE2\n"), // header only
	}
}

// FuzzTrainOracles trains every registered zoo policy on arbitrary trace
// bytes and checks the training contract: no panic on any accepted input,
// training twice yields an oracle with bit-identical verdicts, and
// PredictShort is total — it answers (rather than panics) for every site
// observed in the fuzzed trace and for never-observed probe keys. Run the
// corpus as a unit test, or explore with
// `go test -fuzz=FuzzTrainOracles ./internal/profile`.
func FuzzTrainOracles(f *testing.F) {
	for _, seed := range fuzzSeedBytes() {
		f.Add(seed)
	}
	cfg := Config{ShortThreshold: 1000}
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := trace.ReadBinary(bytes.NewReader(data))
		if err != nil {
			return // rejected cleanly
		}
		// Collect the alloc-event keys before training mutates the table
		// with derived site chains.
		type key struct {
			chain callchain.ChainID
			size  int64
		}
		var keys []key
		for _, ev := range tr.Events {
			if ev.Kind == trace.KindAlloc {
				keys = append(keys, key{ev.Chain, ev.Size})
			}
		}
		// Probe a chain no trace event mentions plus adversarial sizes.
		// Chain ids are table indices, so a verdict is owed for any id the
		// trace's table actually holds — not for out-of-range ids.
		fresh := tr.Table.InternNames("fuzz", "probe", "site")
		probes := []key{
			{fresh, 0},
			{fresh, -8},
			{fresh, 16},
			{fresh, 1 << 40},
		}
		if len(keys) > 0 {
			probes = append(probes, key{keys[0].chain, keys[0].size + 1})
		}
		for _, zt := range ZooTrainers() {
			o1, err1 := zt.Train(tr, cfg)
			o2, err2 := zt.Train(tr, cfg)
			if (err1 == nil) != (err2 == nil) {
				t.Fatalf("%s: double-train error verdicts differ: %v vs %v", zt.Name, err1, err2)
			}
			if err1 != nil {
				continue // semantically invalid trace, rejected deterministically
			}
			if o1.ShortThreshold() != o2.ShortThreshold() {
				t.Fatalf("%s: thresholds differ across trainings", zt.Name)
			}
			for _, k := range keys {
				if o1.PredictShort(k.chain, k.size) != o2.PredictShort(k.chain, k.size) {
					t.Fatalf("%s: double-train verdicts differ at chain=%d size=%d", zt.Name, k.chain, k.size)
				}
			}
			for _, k := range probes {
				if o1.PredictShort(k.chain, k.size) != o2.PredictShort(k.chain, k.size) {
					t.Fatalf("%s: probe verdicts differ at chain=%d size=%d", zt.Name, k.chain, k.size)
				}
			}
		}
	})
}

// TestFuzzCorpusPresent guards the committed FuzzTrainOracles seed corpus
// (go test runs every entry in unit mode, making it regression coverage):
// it must exist and every entry must be in the corpus v1 encoding.
func TestFuzzCorpusPresent(t *testing.T) {
	dir := filepath.Join("testdata", "fuzz", "FuzzTrainOracles")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("FuzzTrainOracles corpus missing: %v", err)
	}
	if len(entries) < 5 {
		t.Errorf("FuzzTrainOracles corpus has %d entries, want >= 5", len(entries))
	}
	for _, e := range entries {
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if !strings.HasPrefix(string(data), "go test fuzz v1\n") {
			t.Errorf("%s: not in corpus v1 format", e.Name())
		}
	}
}
