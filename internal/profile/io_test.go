package profile

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/callchain"
	"repro/internal/trace"
)

func TestDBExportAndReload(t *testing.T) {
	tr := mkTrace(t, []allocSpec{
		{[]string{"main", "hot", "m"}, 16, 0, 3},
		{[]string{"main", "hot", "m"}, 16, 0, 3},
		{[]string{"main", "cold", "m"}, 32, -1, 9},
		{[]string{"main", "pad", "m"}, 50000, 0, 0},
	})
	db, err := Train(tr, Config{ShortThreshold: 1000})
	if err != nil {
		t.Fatal(err)
	}

	file := db.Export("toy")
	if file.Program != "toy" {
		t.Fatalf("program %q", file.Program)
	}
	if len(file.Sites) != 3 {
		t.Fatalf("%d site records", len(file.Sites))
	}
	// Sorted by descending bytes: pad first.
	if file.Sites[0].Chain[1] != "pad" {
		t.Fatalf("sites not sorted by volume: %+v", file.Sites[0])
	}
	admitted := 0
	for _, s := range file.Sites {
		if s.Admitted {
			admitted++
		}
		if s.Objects == 0 || len(s.Chain) == 0 {
			t.Fatalf("empty record %+v", s)
		}
	}
	// Only "hot" is all-short: pad's lifetime is its own 50000-byte
	// size, which exceeds the 1000-byte threshold.
	if admitted != 1 {
		t.Fatalf("admitted = %d, want 1", admitted)
	}

	var buf bytes.Buffer
	if err := db.WriteJSON(&buf, "toy"); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "\"chain\"") {
		t.Fatal("JSON missing chain field")
	}

	p, err := ReadPredictor(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumSites() != 1 {
		t.Fatalf("reloaded predictor has %d sites, want 1", p.NumSites())
	}
	// The reloaded predictor must behave like the original on a fresh
	// trace (cross-table mapping by names).
	test := mkTrace(t, []allocSpec{
		{[]string{"main", "hot", "m"}, 16, 0, 0},
		{[]string{"main", "cold", "m"}, 32, -1, 0},
		{[]string{"main", "pad", "m"}, 50000, 0, 0},
	})
	ev, err := Evaluate(test, p)
	if err != nil {
		t.Fatal(err)
	}
	if ev.PredictedShortBytes != 16 {
		t.Fatalf("reloaded predictor predicted %d bytes, want 16", ev.PredictedShortBytes)
	}
}

func TestReadPredictorRejectsGarbage(t *testing.T) {
	if _, err := ReadPredictor(strings.NewReader("not json")); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := ReadPredictor(strings.NewReader(`{"config":{},"sites":[{"chain":["a"],"size":-4,"admitted":true}]}`)); err == nil {
		t.Fatal("negative size accepted")
	}
}

func TestExportQuantilesPresent(t *testing.T) {
	tb := tableWith(t)
	var objs []trace.Object
	for i := 0; i < 50; i++ {
		objs = append(objs, trace.Object{
			ID: trace.ObjectID(i), Size: 8,
			Chain:    tb.InternNames("main", "s", "m"),
			Lifetime: int64(10 * (i + 1)), Freed: true,
		})
	}
	db := TrainObjects(tb, objs, Config{ShortThreshold: 1 << 20})
	file := db.Export("")
	if len(file.Sites) != 1 {
		t.Fatalf("%d sites", len(file.Sites))
	}
	q := file.Sites[0].Quantiles
	if len(q) != 5 {
		t.Fatalf("quantile markers: %v", q)
	}
	if q[0] != 10 || q[4] != 500 {
		t.Fatalf("min/max markers %v, want 10/500", q)
	}
}

func tableWith(t *testing.T) *callchain.Table {
	t.Helper()
	return callchain.NewTable()
}
