package profile

import (
	"math/bits"
	"sort"

	"repro/internal/callchain"
)

// LearnedConfig parameterizes the tiny logistic lifetime classifier.
type LearnedConfig struct {
	// Buckets is the number of hashed call-chain feature buckets. Zero
	// defaults to 16.
	Buckets int
	// Epochs is the number of full passes over the training sites. Zero
	// defaults to 8.
	Epochs int
	// Rate is the gradient-descent step size. Zero defaults to 0.5.
	Rate float64
	// Seed mixes the chain-hash bucket assignment, so two seeds give two
	// deterministic but different feature spaces.
	Seed uint64
	// L2 is the per-step weight decay (0 disables it).
	L2 float64
}

func (c LearnedConfig) withDefaults() LearnedConfig {
	if c.Buckets == 0 {
		c.Buckets = 16
	}
	if c.Epochs == 0 {
		c.Epochs = 8
	}
	if c.Rate == 0 {
		c.Rate = 0.5
	}
	return c
}

// LearnedOracle is a logistic classifier over (hashed site chain, rounded
// size magnitude, chain depth) features, trained to reproduce the paper's
// site admission rule from a profiled database. Unlike the lookup-based
// policies it generalizes: a site never seen in training still gets a
// verdict from its size and depth features. Training is pure Go and fully
// deterministic — sites are visited in sorted key order and the sigmoid is
// the algebraic approximation z -> 0.5*(1 + z/(1+|z|)), so no libm calls
// can perturb the committed goldens.
type LearnedOracle struct {
	cfg   Config
	lc    LearnedConfig
	table *callchain.Table
	// w holds [bias, sizeMagnitude, chainDepth, bucket0..bucketN-1].
	w []float64
}

const learnedFixed = 3 // bias, size magnitude, chain depth

// fastSigmoid is a branch-free rational approximation of the logistic
// function: exact at 0, same sign and monotonicity, range (0,1), built
// only from +,*,/ so results are bit-identical on every platform.
func fastSigmoid(z float64) float64 {
	az := z
	if az < 0 {
		az = -az
	}
	return 0.5 * (1 + z/(1+az))
}

// bucketOf assigns a chain to its hashed feature bucket.
func (l *LearnedOracle) bucketOf(chain callchain.ChainID) int {
	h := l.table.Hash(chain) ^ (l.lc.Seed * 0x9e3779b97f4a7c15)
	return int(h % uint64(l.lc.Buckets))
}

// features fills x for a site key. All features are non-negative and the
// bias is 1, so a single-label training set drives the decision to that
// label.
func (l *LearnedOracle) features(key SiteKey, x []float64) {
	for i := range x {
		x[i] = 0
	}
	x[0] = 1
	x[1] = float64(bits.Len64(uint64(key.Size))) / 16
	depth := l.table.Len(key.Chain)
	if depth > 16 {
		depth = 16
	}
	x[2] = float64(depth) / 16
	x[learnedFixed+l.bucketOf(key.Chain)] = 1
}

// score returns the raw decision value w·x for a site.
func (l *LearnedOracle) score(key SiteKey) float64 {
	x := make([]float64, len(l.w))
	l.features(key, x)
	var z float64
	for i, wi := range l.w {
		z += wi * x[i]
	}
	return z
}

// TrainLearned fits the classifier to a trained site database. Labels are
// the paper's exact admission rule per site (all training objects short),
// weighted by each site's object count so hot sites dominate the loss.
func TrainLearned(db *DB, lc LearnedConfig) *LearnedOracle {
	lc = lc.withDefaults()
	l := &LearnedOracle{
		cfg:   db.Config,
		lc:    lc,
		table: db.Table,
		w:     make([]float64, learnedFixed+lc.Buckets),
	}

	keys := make([]SiteKey, 0, len(db.Sites))
	for k := range db.Sites {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Chain != keys[j].Chain {
			return keys[i].Chain < keys[j].Chain
		}
		return keys[i].Size < keys[j].Size
	})

	var total int64
	for _, k := range keys {
		total += db.Sites[k].Objects
	}
	if total == 0 {
		return l
	}

	x := make([]float64, len(l.w))
	for epoch := 0; epoch < lc.Epochs; epoch++ {
		for _, k := range keys {
			st := db.Sites[k]
			y := 0.0
			if st.admitted(db.Config.AdmitFraction) {
				y = 1.0
			}
			// Mean site weight is 1; hot sites count proportionally more.
			wgt := float64(st.Objects) * float64(len(keys)) / float64(total)
			l.features(k, x)
			var z float64
			for i, wi := range l.w {
				z += wi * x[i]
			}
			g := fastSigmoid(z) - y
			for i := range l.w {
				l.w[i] -= lc.Rate * (g*x[i]*wgt + lc.L2*l.w[i])
			}
		}
	}
	return l
}

// AdmitSite implements SiteOracle: positive decision value predicts short.
func (l *LearnedOracle) AdmitSite(key SiteKey) bool { return l.score(key) > 0 }

// ProfileConfig implements SiteOracle.
func (l *LearnedOracle) ProfileConfig() Config { return l.cfg }

// Table implements SiteOracle.
func (l *LearnedOracle) Table() *callchain.Table { return l.table }

// PredictShort implements Oracle over the oracle's own chain table.
func (l *LearnedOracle) PredictShort(raw callchain.ChainID, size int64) bool {
	return predictVia(l, raw, size)
}

// ShortThreshold implements Oracle.
func (l *LearnedOracle) ShortThreshold() int64 { return l.cfg.ShortThreshold }

var (
	_ Oracle     = (*LearnedOracle)(nil)
	_ SiteOracle = (*LearnedOracle)(nil)
)
