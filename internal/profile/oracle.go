package profile

import "repro/internal/callchain"

// Oracle is the per-allocation prediction interface the replay loops
// consult: a short/long verdict for a raw birth chain and request size,
// plus the lifetime threshold the verdict is relative to. All three
// predictor paths implement it — Predictor (own-table lookup), Mapper
// (cross-table lookup by function name), and CCEPredictor (encryption-key
// lookup) — so prediction-quality tracking can score any of them against
// actual lifetimes without knowing which variant is in play.
type Oracle interface {
	PredictShort(raw callchain.ChainID, size int64) bool
	ShortThreshold() int64
}

// ShortThreshold returns the lifetime threshold (bytes allocated) the
// predictor's short/long verdicts are relative to.
func (p *Predictor) ShortThreshold() int64 { return p.Config.ShortThreshold }

// ShortThreshold returns the underlying predictor's lifetime threshold.
func (m *Mapper) ShortThreshold() int64 { return m.p.Config.ShortThreshold }

// ShortThreshold returns the lifetime threshold (bytes allocated) the
// predictor's short/long verdicts are relative to.
func (p *CCEPredictor) ShortThreshold() int64 { return p.Config.ShortThreshold }

var (
	_ Oracle = (*Predictor)(nil)
	_ Oracle = (*Mapper)(nil)
	_ Oracle = (*CCEPredictor)(nil)
)
