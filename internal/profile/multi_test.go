package profile

import (
	"testing"

	"repro/internal/synth"
	"repro/internal/trace"
)

func TestTrainMultiIntersectsAdmission(t *testing.T) {
	// Run A: "site" is all-short. Run B: the same site allocates a
	// long-lived object. The merged predictor must reject it.
	runA := mkTrace(t, []allocSpec{
		{[]string{"main", "site", "m"}, 16, 0, 0},
		{[]string{"main", "other", "m"}, 24, 0, 0},
		{[]string{"main", "pad", "m"}, 50000, 0, 0},
	})
	runB := mkTrace(t, []allocSpec{
		{[]string{"main", "site", "m"}, 16, -1, 0},
		{[]string{"main", "other", "m"}, 24, 0, 0},
		{[]string{"main", "pad", "m"}, 50000, 0, 0},
	})
	p, err := TrainMulti([]*trace.Trace{runA, runB}, Config{ShortThreshold: 1000}, false)
	if err != nil {
		t.Fatal(err)
	}
	m := p.NewMapper(runA.Table)
	if m.PredictShort(runA.Table.InternNames("main", "site", "m"), 16) {
		t.Fatal("site long-lived in run B was still admitted")
	}
	if !m.PredictShort(runA.Table.InternNames("main", "other", "m"), 24) {
		t.Fatal("consistently short site rejected")
	}
}

func TestTrainMultiPartialAppearance(t *testing.T) {
	runA := mkTrace(t, []allocSpec{
		{[]string{"main", "onlyA", "m"}, 16, 0, 0},
		{[]string{"main", "pad", "m"}, 50000, 0, 0},
	})
	runB := mkTrace(t, []allocSpec{
		{[]string{"main", "onlyB", "m"}, 24, 0, 0},
		{[]string{"main", "pad", "m"}, 50000, 0, 0},
	})
	lenient, err := TrainMulti([]*trace.Trace{runA, runB}, Config{ShortThreshold: 1000}, false)
	if err != nil {
		t.Fatal(err)
	}
	strict, err := TrainMulti([]*trace.Trace{runA, runB}, Config{ShortThreshold: 1000}, true)
	if err != nil {
		t.Fatal(err)
	}
	mL := lenient.NewMapper(runA.Table)
	if !mL.PredictShort(runA.Table.InternNames("main", "onlyA", "m"), 16) {
		t.Fatal("lenient mode rejected a single-run site")
	}
	mS := strict.NewMapper(runA.Table)
	if mS.PredictShort(runA.Table.InternNames("main", "onlyA", "m"), 16) {
		t.Fatal("strict mode admitted a site absent from run B")
	}
}

func TestTrainMultiEmpty(t *testing.T) {
	if _, err := TrainMulti(nil, DefaultConfig(), false); err == nil {
		t.Fatal("empty training set accepted")
	}
}

// TestTrainMultiReducesError shows the point of multiple training inputs
// on the CFRAC model: training on BOTH inputs removes the sites that
// misfire on the test input, driving error bytes to zero at some cost in
// predicted volume.
func TestTrainMultiReducesError(t *testing.T) {
	m := synth.ByName("cfrac")
	gen := func(in synth.Input, seed uint64) *trace.Trace {
		tr, err := m.Generate(synth.Config{Input: in, Seed: seed, Scale: 0.02})
		if err != nil {
			t.Fatal(err)
		}
		return tr
	}
	train := gen(synth.Train, 1)
	test := gen(synth.Test, 2)
	test2 := gen(synth.Test, 3) // a second, distinct test-like training run

	cfg := DefaultConfig()
	singleDB, err := Train(train, cfg)
	if err != nil {
		t.Fatal(err)
	}
	single := singleDB.Predictor()
	multi, err := TrainMulti([]*trace.Trace{train, test2}, cfg, false)
	if err != nil {
		t.Fatal(err)
	}

	evSingle, err := Evaluate(test, single)
	if err != nil {
		t.Fatal(err)
	}
	evMulti, err := Evaluate(test, multi)
	if err != nil {
		t.Fatal(err)
	}
	if evSingle.ErrorPct() <= 0.5 {
		t.Fatalf("single-input training shows no error to remove: %.2f", evSingle.ErrorPct())
	}
	if evMulti.ErrorPct() >= evSingle.ErrorPct()/2 {
		t.Fatalf("multi-input training left error at %.2f%% (single: %.2f%%)",
			evMulti.ErrorPct(), evSingle.ErrorPct())
	}
}
