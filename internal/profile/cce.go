package profile

import (
	"repro/internal/callchain"
	"repro/internal/trace"
)

// CCEPredictor is the call-chain-encryption variant of the predictor
// (paper §5.1, Carter's scheme): instead of walking the last four stack
// frames at each allocation, every function call XORs a 16-bit function id
// into a running key, and the allocator indexes its site database with
// (key, rounded size).
//
// The scheme trades precision for per-allocation speed: XOR keys are
// order-insensitive, cancel even recursion, and can collide outright. A
// site is admitted only if ALL objects sharing its (key, size) cell were
// short-lived, so collisions with long-lived sites silently disable
// prediction for the colliding short-lived sites — the scheme degrades
// toward fewer predictions, never toward more errors than the exact
// predictor trained on the same run.
type CCEPredictor struct {
	Config Config
	table  *callchain.Table // owns the encryption ids
	keys   map[cceKey]struct{}
}

type cceKey struct {
	key  uint16
	size int64
}

// TrainCCE trains a CCE predictor from annotated objects whose chains live
// in tb. Encryption ids are assigned with the minimizing heuristic over
// the chains observed in training (the paper's "static call-graph analysis
// may be used to determine the best ids"), seeded deterministically.
// It returns the predictor and the number of distinct observed chains
// whose keys still collide.
func TrainCCE(tb *callchain.Table, objs []trace.Object, cfg Config, seed uint64) (*CCEPredictor, int) {
	cfg = cfg.withDefaults()

	// Collect the distinct chains so id assignment can minimize their
	// key collisions.
	chainSet := make(map[callchain.ChainID]struct{})
	for i := range objs {
		chainSet[objs[i].Chain] = struct{}{}
	}
	chains := make([]callchain.ChainID, 0, len(chainSet))
	for c := range chainSet {
		chains = append(chains, c)
	}
	collisions := tb.AssignEncryptionIDsMinimizing(seed, chains, 4)

	type cell struct {
		objects int64
		short   int64
	}
	cells := make(map[cceKey]*cell)
	for i := range objs {
		o := &objs[i]
		k := cceKey{key: tb.EncryptionKey(o.Chain), size: cfg.roundSize(o.Size)}
		c := cells[k]
		if c == nil {
			c = &cell{}
			cells[k] = c
		}
		c.objects++
		if o.Lifetime < cfg.ShortThreshold {
			c.short++
		}
	}
	p := &CCEPredictor{Config: cfg, table: tb, keys: make(map[cceKey]struct{})}
	for k, c := range cells {
		if c.objects > 0 && float64(c.short) >= cfg.AdmitFraction*float64(c.objects) {
			p.keys[k] = struct{}{}
		}
	}
	return p, collisions
}

// NumSites reports the number of admitted (key, size) cells.
func (p *CCEPredictor) NumSites() int { return len(p.keys) }

// PredictShort reports the prediction for an allocation whose raw chain is
// interned in the predictor's own table.
func (p *CCEPredictor) PredictShort(raw callchain.ChainID, size int64) bool {
	k := cceKey{key: p.table.EncryptionKey(raw), size: p.Config.roundSize(size)}
	_, ok := p.keys[k]
	return ok
}

// EvaluateCCE runs the CCE predictor over annotated objects from the SAME
// execution it was trained on (self prediction; cross-run evaluation would
// additionally need identical id assignments in both binaries, which the
// paper assumes since the ids are compiled in).
func EvaluateCCE(objs []trace.Object, p *CCEPredictor) Eval {
	var ev Eval
	seen := make(map[cceKey]struct{})
	for i := range objs {
		o := &objs[i]
		k := cceKey{key: p.table.EncryptionKey(o.Chain), size: p.Config.roundSize(o.Size)}
		seen[k] = struct{}{}
		ev.TotalObjects++
		ev.TotalBytes += o.Size
		ev.TotalRefs += o.Refs
		short := o.Lifetime < p.Config.ShortThreshold
		if short {
			ev.ActualShortBytes += o.Size
		}
		if _, ok := p.keys[k]; ok {
			ev.PredictedBytes += o.Size
			ev.PredictedRefs += o.Refs
			if short {
				ev.PredictedShortBytes += o.Size
			} else {
				ev.ErrorBytes += o.Size
			}
		}
	}
	ev.TotalSites = len(seen)
	ev.SitesUsed = p.NumSites()
	return ev
}
