package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestDistinctSeedsDiverge(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 produced %d identical draws out of 100", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	parent := New(7)
	child := parent.Split()
	// The child must not replay the parent's upcoming stream.
	p := make([]uint64, 50)
	c := make([]uint64, 50)
	for i := range p {
		p[i] = parent.Uint64()
		c[i] = child.Uint64()
	}
	matches := 0
	for i := range p {
		if p[i] == c[i] {
			matches++
		}
	}
	if matches > 0 {
		t.Fatalf("child replays parent stream: %d matches", matches)
	}
}

func TestZeroSeedUsable(t *testing.T) {
	r := New(0)
	seen := map[uint64]bool{}
	for i := 0; i < 100; i++ {
		seen[r.Uint64()] = true
	}
	if len(seen) < 99 {
		t.Fatalf("seed 0 produced only %d distinct values in 100 draws", len(seen))
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(3)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 200; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestUint64nUniformity(t *testing.T) {
	r := New(11)
	const n, draws = 10, 100000
	counts := make([]int, n)
	for i := 0; i < draws; i++ {
		counts[r.Uint64n(n)]++
	}
	want := float64(draws) / n
	for i, c := range counts {
		if math.Abs(float64(c)-want) > 0.05*want {
			t.Errorf("bucket %d: got %d, want ~%.0f", i, c, want)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(5)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %g out of [0,1)", f)
		}
	}
}

func TestRangeInclusive(t *testing.T) {
	r := New(9)
	sawLo, sawHi := false, false
	for i := 0; i < 10000; i++ {
		v := r.Range(4, 6)
		if v < 4 || v > 6 {
			t.Fatalf("Range(4,6) = %d", v)
		}
		if v == 4 {
			sawLo = true
		}
		if v == 6 {
			sawHi = true
		}
	}
	if !sawLo || !sawHi {
		t.Fatalf("Range(4,6) never hit an endpoint: lo=%v hi=%v", sawLo, sawHi)
	}
}

func TestExpMean(t *testing.T) {
	r := New(13)
	const mean, n = 250.0, 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += r.Exp(mean)
	}
	got := sum / n
	if math.Abs(got-mean) > 0.03*mean {
		t.Fatalf("Exp mean: got %.2f, want ~%.2f", got, mean)
	}
}

func TestParetoMinimumAndTail(t *testing.T) {
	r := New(17)
	const alpha, xm = 1.5, 8.0
	over10x := 0
	const n = 100000
	for i := 0; i < n; i++ {
		v := r.Pareto(alpha, xm)
		if v < xm {
			t.Fatalf("Pareto below minimum: %g < %g", v, xm)
		}
		if v > 10*xm {
			over10x++
		}
	}
	// P(X > 10 xm) = 10^-alpha ~ 3.16%.
	frac := float64(over10x) / n
	if frac < 0.02 || frac > 0.05 {
		t.Fatalf("Pareto tail mass at 10x: got %.4f, want ~0.0316", frac)
	}
}

func TestNormalMoments(t *testing.T) {
	r := New(19)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := r.Normal()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("Normal mean: got %.4f, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("Normal variance: got %.4f, want ~1", variance)
	}
}

func TestLogNormalMedian(t *testing.T) {
	r := New(23)
	const mu, n = 3.0, 100001
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = r.LogNormal(mu, 0.5)
	}
	// Median of lognormal is exp(mu); count how many fall below it.
	below := 0
	for _, v := range vals {
		if v < math.Exp(mu) {
			below++
		}
	}
	frac := float64(below) / n
	if math.Abs(frac-0.5) > 0.02 {
		t.Fatalf("LogNormal median fraction: got %.4f, want ~0.5", frac)
	}
}

func TestGeometricMean(t *testing.T) {
	r := New(29)
	const p, n = 0.2, 200000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += float64(r.Geometric(p))
	}
	got := sum / n
	want := (1 - p) / p
	if math.Abs(got-want) > 0.05*want {
		t.Fatalf("Geometric mean: got %.3f, want ~%.3f", got, want)
	}
}

func TestGeometricEdgeCases(t *testing.T) {
	r := New(31)
	if v := r.Geometric(1); v != 0 {
		t.Fatalf("Geometric(1) = %d, want 0", v)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Geometric(0) did not panic")
		}
	}()
	r.Geometric(0)
}

func TestZipfSkew(t *testing.T) {
	r := New(37)
	z := NewZipf(r, 100, 1.0)
	counts := make([]int, 100)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[z.Next()]++
	}
	if counts[0] <= counts[50] {
		t.Fatalf("Zipf not skewed: rank0=%d rank50=%d", counts[0], counts[50])
	}
	// Rank 0 should receive roughly 1/H(100) ~ 19% of the mass.
	frac := float64(counts[0]) / n
	if frac < 0.15 || frac > 0.25 {
		t.Fatalf("Zipf rank-0 mass: got %.3f, want ~0.19", frac)
	}
}

func TestZipfUniformWhenSZero(t *testing.T) {
	r := New(41)
	z := NewZipf(r, 10, 0)
	counts := make([]int, 10)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[z.Next()]++
	}
	for i, c := range counts {
		if math.Abs(float64(c)-n/10) > 0.05*n/10 {
			t.Errorf("Zipf(s=0) bucket %d: got %d, want ~%d", i, c, n/10)
		}
	}
}

func TestWeightedProportions(t *testing.T) {
	r := New(43)
	w := NewWeighted(r, []float64{1, 0, 3})
	counts := make([]int, 3)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[w.Next()]++
	}
	if counts[1] != 0 {
		t.Fatalf("zero-weight index drawn %d times", counts[1])
	}
	ratio := float64(counts[2]) / float64(counts[0])
	if ratio < 2.8 || ratio > 3.2 {
		t.Fatalf("weighted ratio: got %.2f, want ~3", ratio)
	}
}

func TestWeightedPanics(t *testing.T) {
	cases := [][]float64{nil, {}, {0, 0}, {-1, 2}}
	for _, ws := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewWeighted(%v) did not panic", ws)
				}
			}()
			NewWeighted(New(1), ws)
		}()
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(47)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) invalid: %v", n, p)
			}
			seen[v] = true
		}
	}
}

func TestQuickUint64nInRange(t *testing.T) {
	r := New(53)
	f := func(n uint64) bool {
		if n == 0 {
			return true
		}
		return r.Uint64n(n) < n
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickRangeInBounds(t *testing.T) {
	r := New(59)
	f := func(a, b int32) bool {
		lo, hi := int64(a), int64(b)
		if hi < lo {
			lo, hi = hi, lo
		}
		v := r.Range(lo, hi)
		return v >= lo && v <= hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkExp(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Exp(100)
	}
}
