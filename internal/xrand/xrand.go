// Package xrand provides a small, deterministic pseudo-random number
// generator and the sampling distributions used by the synthetic workload
// models. Every stream is derived from an explicit 64-bit seed so that all
// traces, simulations, and benchmark tables in this repository are exactly
// reproducible.
//
// The generator is xoshiro256** seeded through splitmix64, the combination
// recommended by Blackman and Vigna. It is not cryptographically secure and
// is not meant to be.
package xrand

import "math"

// RNG is a deterministic xoshiro256** pseudo-random number generator.
// The zero value is not usable; construct one with New.
type RNG struct {
	s [4]uint64
}

// splitmix64 advances the state and returns the next value of the
// splitmix64 sequence. It is used only to expand seeds.
func splitmix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// New returns an RNG seeded from seed. Distinct seeds yield independent
// streams for all practical purposes.
func New(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	for i := range r.s {
		r.s[i] = splitmix64(&sm)
	}
	// Guard against the (astronomically unlikely) all-zero state, which
	// xoshiro cannot escape.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

// Split derives an independent child generator from r. The child's stream
// is decorrelated from both r's past and future output, which lets each
// allocation site own a private stream regardless of interleaving.
func (r *RNG) Split() *RNG {
	seed := r.Uint64() ^ 0xd1342543de82ef95
	return New(seed)
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Intn returns a uniform integer in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("xrand: Intn with non-positive n")
	}
	return int(r.Uint64n(uint64(n)))
}

// Uint64n returns a uniform integer in [0, n) using Lemire's multiply-shift
// rejection method. It panics if n == 0.
func (r *RNG) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("xrand: Uint64n with zero n")
	}
	// Fast path: power of two.
	if n&(n-1) == 0 {
		return r.Uint64() & (n - 1)
	}
	// Rejection sampling to remove modulo bias.
	max := math.MaxUint64 - math.MaxUint64%n
	for {
		v := r.Uint64()
		if v < max {
			return v % n
		}
	}
}

// Int63 returns a non-negative 63-bit integer.
func (r *RNG) Int63() int64 { return int64(r.Uint64() >> 1) }

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool { return r.Float64() < p }

// Range returns a uniform integer in [lo, hi]. It panics if hi < lo.
func (r *RNG) Range(lo, hi int64) int64 {
	if hi < lo {
		panic("xrand: Range with hi < lo")
	}
	return lo + int64(r.Uint64n(uint64(hi-lo+1)))
}

// Exp returns an exponentially distributed value with the given mean.
func (r *RNG) Exp(mean float64) float64 {
	// Invert the CDF; avoid log(0).
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// Pareto returns a Pareto(alpha, xm) distributed value: a heavy-tailed
// distribution with minimum xm. Smaller alpha means heavier tails; for
// alpha <= 1 the mean is infinite.
func (r *RNG) Pareto(alpha, xm float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return xm / math.Pow(u, 1/alpha)
}

// LogNormal returns exp(N(mu, sigma^2)).
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.Normal())
}

// Normal returns a standard normal variate via the polar Box-Muller method.
func (r *RNG) Normal() float64 {
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Geometric returns the number of failures before the first success in a
// Bernoulli(p) process; its mean is (1-p)/p. It panics unless 0 < p <= 1.
func (r *RNG) Geometric(p float64) int64 {
	if p <= 0 || p > 1 {
		panic("xrand: Geometric with p outside (0, 1]")
	}
	if p == 1 {
		return 0
	}
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return int64(math.Log(u) / math.Log(1-p))
}

// Zipf samples from a Zipf distribution over {0, ..., n-1} with exponent s,
// using the precomputed table in z.
type Zipf struct {
	cdf []float64
	rng *RNG
}

// NewZipf builds a Zipf sampler over n ranks with exponent s >= 0. Exponent
// 0 degenerates to uniform. It panics if n <= 0.
func NewZipf(rng *RNG, n int, s float64) *Zipf {
	if n <= 0 {
		panic("xrand: NewZipf with non-positive n")
	}
	cdf := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += 1 / math.Pow(float64(i+1), s)
		cdf[i] = sum
	}
	for i := range cdf {
		cdf[i] /= sum
	}
	return &Zipf{cdf: cdf, rng: rng}
}

// Next returns the next Zipf-distributed rank in [0, n).
func (z *Zipf) Next() int {
	u := z.rng.Float64()
	// Binary search for the first cdf entry >= u.
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Weighted selects indices in proportion to fixed non-negative weights.
type Weighted struct {
	cum []float64
	rng *RNG
}

// NewWeighted builds a weighted sampler. It panics if weights is empty, any
// weight is negative, or all weights are zero.
func NewWeighted(rng *RNG, weights []float64) *Weighted {
	if len(weights) == 0 {
		panic("xrand: NewWeighted with no weights")
	}
	cum := make([]float64, len(weights))
	sum := 0.0
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) {
			panic("xrand: NewWeighted with negative or NaN weight")
		}
		sum += w
		cum[i] = sum
	}
	if sum == 0 {
		panic("xrand: NewWeighted with all-zero weights")
	}
	for i := range cum {
		cum[i] /= sum
	}
	return &Weighted{cum: cum, rng: rng}
}

// Next returns an index sampled in proportion to its weight.
func (w *Weighted) Next() int {
	u := w.rng.Float64()
	lo, hi := 0, len(w.cum)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if w.cum[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// Shuffle permutes the first n elements using swap, Fisher-Yates style.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.Shuffle(n, func(i, j int) { p[i], p[j] = p[j], p[i] })
	return p
}
