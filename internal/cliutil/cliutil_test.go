package cliutil

import (
	"bytes"
	"flag"
	"io"
	"os"
	"strings"
	"testing"
)

// withFreshFlags runs fn with a fresh global FlagSet, a fake os.Args, and
// the exit hook replaced by one that records the code and unwinds via
// panic (so code after an "exit" never runs, as in the real tool).
// It returns the recorded exit code, or -1 when exit was never called.
func withFreshFlags(t *testing.T, args []string, fn func()) (code int) {
	t.Helper()
	oldCmd, oldArgs, oldExit := flag.CommandLine, os.Args, exit
	defer func() {
		flag.CommandLine, os.Args, exit = oldCmd, oldArgs, oldExit
		if r := recover(); r != nil && r != exitSentinel {
			panic(r)
		}
	}()
	flag.CommandLine = flag.NewFlagSet(args[0], flag.ContinueOnError)
	os.Args = args
	code = -1
	exit = func(c int) {
		code = c
		panic(exitSentinel)
	}
	fn()
	return code
}

var exitSentinel = "cliutil test exit"

// captureStdout runs fn with os.Stdout redirected to a pipe and returns
// what it printed.
func captureStdout(t *testing.T, fn func()) string {
	t.Helper()
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	old := os.Stdout
	os.Stdout = w
	defer func() { os.Stdout = old }()
	fn()
	w.Close()
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	return string(out)
}

func TestParsePlainRun(t *testing.T) {
	code := withFreshFlags(t, []string{"lptest"}, func() {
		Parse("lptest", "test synopsis")
	})
	if code != -1 {
		t.Fatalf("plain Parse exited with %d", code)
	}
}

func TestParseVersionExitsZero(t *testing.T) {
	var code int
	out := captureStdout(t, func() {
		code = withFreshFlags(t, []string{"lptest", "-version"}, func() {
			Parse("lptest", "test synopsis")
		})
	})
	if code != 0 {
		t.Fatalf("-version exit code = %d, want 0", code)
	}
	if !strings.Contains(out, "lptest") || !strings.Contains(out, Version) {
		t.Fatalf("-version output %q missing tool name or suite version", out)
	}
}

func TestParseToolFlagsAndOrder(t *testing.T) {
	// Tool flags registered before Parse must be honored regardless of
	// the order they appear on the command line.
	for _, args := range [][]string{
		{"lptest", "-n", "7", "-label", "x"},
		{"lptest", "-label", "x", "-n", "7"},
	} {
		var n *int
		var label *string
		code := withFreshFlags(t, args, func() {
			n = flag.Int("n", 1, "count")
			label = flag.String("label", "", "name")
			Parse("lptest", "test synopsis")
		})
		if code != -1 {
			t.Fatalf("args %v: unexpected exit %d", args, code)
		}
		if *n != 7 || *label != "x" {
			t.Fatalf("args %v: parsed n=%d label=%q", args, *n, *label)
		}
	}
}

func TestUsageBanner(t *testing.T) {
	var buf bytes.Buffer
	code := withFreshFlags(t, []string{"lptest"}, func() {
		flag.Int("n", 1, "an example count flag")
		Parse("lptest", "one-line synopsis", "lptest -n 7 example")
		flag.CommandLine.SetOutput(&buf)
		flag.Usage()
	})
	if code != -1 {
		t.Fatalf("unexpected exit %d", code)
	}
	out := buf.String()
	for _, want := range []string{
		"usage: lptest [flags]",
		"one-line synopsis",
		"lptest -n 7 example",
		"an example count flag",
		"-version",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("usage output missing %q:\n%s", want, out)
		}
	}
}

func TestFatalExitsOne(t *testing.T) {
	code := withFreshFlags(t, []string{"lptest"}, func() {
		Fatal("lptest", io.ErrUnexpectedEOF)
	})
	if code != 1 {
		t.Fatalf("Fatal exit code = %d, want 1", code)
	}
}

func TestUsageErrorExitsTwo(t *testing.T) {
	code := withFreshFlags(t, []string{"lptest"}, func() {
		UsageError("lptest", "bad flag combination: %s with %s", "-a", "-b")
	})
	if code != 2 {
		t.Fatalf("UsageError exit code = %d, want 2", code)
	}
}
