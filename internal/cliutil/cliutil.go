// Package cliutil gives every cmd/* tool the same command-line surface:
// a -version flag, a usage banner built from the tool's synopsis, and
// uniform exit codes — 0 success, 1 runtime error, 2 usage error (the
// code flag.Parse itself uses for bad flags).
package cliutil

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Version identifies the tool suite; every tool's -version flag prints
// it. Bump it when the trace or metrics formats change shape.
const Version = "lifetime-repro 1.2 (Barrett & Zorn, PLDI 1993 reproduction)"

// exit is swappable for tests.
var exit = os.Exit

// Parse wires the shared flags and usage text, then parses the command
// line. Call it after the tool registers its own flags, in place of
// flag.Parse. The synopsis is a one-line description shown at the top of
// -help output; extra lines (e.g. examples) may follow via example.
func Parse(name, synopsis string, examples ...string) {
	version := flag.Bool("version", false, "print the tool-suite version and exit")
	flag.Usage = func() {
		w := flag.CommandLine.Output()
		fmt.Fprintf(w, "usage: %s [flags]\n%s\n", name, synopsis)
		for _, ex := range examples {
			fmt.Fprintf(w, "  %s\n", ex)
		}
		fmt.Fprintf(w, "\nflags:\n")
		flag.PrintDefaults()
	}
	flag.Parse()
	if *version {
		fmt.Printf("%s %s\n", name, Version)
		exit(0)
	}
}

// ProfileFlags registers the shared -cpuprofile and -memprofile flags
// for tools whose runs are worth profiling (lpsim, lpbench). Register
// before Parse, like any flag; after Parse, invoke the returned start
// function and defer the stop it hands back:
//
//	startProfiles := cliutil.ProfileFlags(name)
//	cliutil.Parse(name, ...)
//	defer startProfiles()()
//
// With neither flag set, both functions are no-ops. CPU profiling covers
// everything between start and stop; the heap profile is written at stop
// after a forced GC, so it reports live retention rather than transient
// garbage. Profile-file errors are fatal — a profiling run that silently
// drops its profile is worse than one that fails.
func ProfileFlags(name string) func() func() {
	cpu := flag.String("cpuprofile", "", "write a pprof CPU profile of the run to this file")
	mem := flag.String("memprofile", "", "write a pprof heap profile to this file at exit")
	return func() func() {
		var cpuFile *os.File
		if *cpu != "" {
			f, err := os.Create(*cpu)
			if err != nil {
				Fatal(name, err)
			}
			if err := pprof.StartCPUProfile(f); err != nil {
				f.Close()
				Fatal(name, err)
			}
			cpuFile = f
		}
		return func() {
			if cpuFile != nil {
				pprof.StopCPUProfile()
				cpuFile.Close()
			}
			if *mem != "" {
				f, err := os.Create(*mem)
				if err != nil {
					Fatal(name, err)
				}
				runtime.GC()
				if err := pprof.WriteHeapProfile(f); err != nil {
					f.Close()
					Fatal(name, err)
				}
				f.Close()
			}
		}
	}
}

// Fatal reports a runtime error and exits 1.
func Fatal(name string, err error) {
	fmt.Fprintf(os.Stderr, "%s: %v\n", name, err)
	exit(1)
}

// UsageError reports a command-line mistake (missing or inconsistent
// flags), points at -help, and exits 2 — the same code flag.Parse uses.
func UsageError(name, format string, args ...any) {
	fmt.Fprintf(os.Stderr, "%s: %s\n", name, fmt.Sprintf(format, args...))
	fmt.Fprintf(os.Stderr, "run %s -help for usage\n", name)
	exit(2)
}
