// Package callchain represents dynamic call-chains — the paper's
// abstraction of the program call-stack at an allocation event — and the
// operations the predictor needs on them:
//
//   - interning, so a chain is a small integer everywhere else;
//   - recursion-cycle elimination (gprof-style, paper §3.2), applied to
//     complete chains;
//   - length-N sub-chains ("the last N callers", paper §3.2);
//   - call-chain encryption (Carter's XOR-of-16-bit-ids scheme, paper §5.1).
//
// A chain is an ordered list of functions, outermost caller first; the last
// element is the function that directly calls the allocator. Chains are
// chains of *functions*, not return addresses, matching the paper ("our
// tools made it easy to use the former").
package callchain

import (
	"fmt"
	"strings"

	"repro/internal/xrand"
)

// FuncID identifies an interned function name.
type FuncID uint32

// ChainID identifies an interned call-chain. The zero ChainID is the empty
// chain.
type ChainID uint32

// Table interns function names and call-chains. It is not safe for
// concurrent use; simulations are single-goroutine by design.
type Table struct {
	funcNames []string
	funcIndex map[string]FuncID

	chains     [][]FuncID
	chainIndex map[string]ChainID

	// cceIDs[f] is the 16-bit encryption id assigned to function f; the
	// slice is grown lazily and filled by AssignEncryptionIDs.
	cceIDs []uint16
}

// NewTable returns an empty table with the empty chain pre-interned as
// ChainID 0.
func NewTable() *Table {
	t := &Table{
		funcIndex:  make(map[string]FuncID),
		chainIndex: make(map[string]ChainID),
	}
	t.chains = append(t.chains, nil) // ChainID 0 = empty chain
	t.chainIndex[""] = 0
	return t
}

// Func interns a function name and returns its id.
func (t *Table) Func(name string) FuncID {
	if id, ok := t.funcIndex[name]; ok {
		return id
	}
	id := FuncID(len(t.funcNames))
	t.funcNames = append(t.funcNames, name)
	t.funcIndex[name] = id
	return id
}

// FuncName returns the name for a function id. It panics on an unknown id.
func (t *Table) FuncName(id FuncID) string {
	return t.funcNames[id]
}

// NumFuncs reports how many distinct functions have been interned.
func (t *Table) NumFuncs() int { return len(t.funcNames) }

// NumChains reports how many distinct chains have been interned, including
// the empty chain.
func (t *Table) NumChains() int { return len(t.chains) }

func chainKey(fs []FuncID) string {
	var b strings.Builder
	for i, f := range fs {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%d", f)
	}
	return b.String()
}

// Intern interns a chain of function ids (outermost first) and returns its
// ChainID. The input slice is copied.
func (t *Table) Intern(fs []FuncID) ChainID {
	key := chainKey(fs)
	if id, ok := t.chainIndex[key]; ok {
		return id
	}
	id := ChainID(len(t.chains))
	t.chains = append(t.chains, append([]FuncID(nil), fs...))
	t.chainIndex[key] = id
	return id
}

// InternNames interns a chain given as function names, outermost first.
func (t *Table) InternNames(names ...string) ChainID {
	fs := make([]FuncID, len(names))
	for i, n := range names {
		fs[i] = t.Func(n)
	}
	return t.Intern(fs)
}

// Funcs returns the function ids of a chain, outermost first. The returned
// slice must not be modified.
func (t *Table) Funcs(id ChainID) []FuncID { return t.chains[id] }

// Len returns the number of functions in a chain.
func (t *Table) Len(id ChainID) int { return len(t.chains[id]) }

// String renders a chain as "main>parse>xmalloc".
func (t *Table) String(id ChainID) string {
	fs := t.chains[id]
	names := make([]string, len(fs))
	for i, f := range fs {
		names[i] = t.funcNames[f]
	}
	return strings.Join(names, ">")
}

// SubChain returns the chain holding only the last n callers of id (the
// innermost n functions). If n is zero it returns the empty chain; if n
// meets or exceeds the chain length the original id is returned. A negative
// n means "complete chain" and also returns id.
//
// Per the paper's note under Table 6, sub-chains do NOT undergo recursion
// elimination; only complete chains do (see EliminateRecursion). This is
// why the infinity row of Table 6 can predict less than the length-7 row.
func (t *Table) SubChain(id ChainID, n int) ChainID {
	fs := t.chains[id]
	if n < 0 || n >= len(fs) {
		return id
	}
	if n == 0 {
		return 0
	}
	return t.Intern(fs[len(fs)-n:])
}

// EliminateRecursion returns the chain with recursive loops removed: when a
// function reappears, everything from (and including) its previous
// occurrence up to (but excluding) the repeat is dropped, collapsing the
// cycle to a single occurrence. The result contains each function at most
// once. This is the gprof-style cycle collapsing the paper applies to
// complete chains.
func (t *Table) EliminateRecursion(id ChainID) ChainID {
	fs := t.chains[id]
	// Fast path: no duplicates.
	seen := make(map[FuncID]bool, len(fs))
	dup := false
	for _, f := range fs {
		if seen[f] {
			dup = true
			break
		}
		seen[f] = true
	}
	if !dup {
		return id
	}
	out := make([]FuncID, 0, len(fs))
	pos := make(map[FuncID]int, len(fs))
	for _, f := range fs {
		if p, ok := pos[f]; ok {
			// Unwind the cycle: drop out[p:], then re-push f.
			for _, g := range out[p:] {
				delete(pos, g)
			}
			out = out[:p]
		}
		pos[f] = len(out)
		out = append(out, f)
	}
	return t.Intern(out)
}

// Hash returns a 64-bit FNV-1a hash of the chain's function ids. Combined
// with the (rounded) object size this forms the allocation-site key used by
// the predictor database.
func (t *Table) Hash(id ChainID) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, f := range t.chains[id] {
		v := uint32(f)
		for i := 0; i < 4; i++ {
			h ^= uint64(byte(v))
			h *= prime64
			v >>= 8
		}
	}
	return h
}

// AssignEncryptionIDs assigns a pseudo-random 16-bit id to every function
// interned so far, seeding Carter's call-chain encryption. Ids are drawn
// deterministically from seed. The paper suggests static call-graph
// analysis to pick ids that minimize key collisions; see
// AssignEncryptionIDsMinimizing for that variant.
func (t *Table) AssignEncryptionIDs(seed uint64) {
	r := xrand.New(seed)
	t.cceIDs = make([]uint16, len(t.funcNames))
	for i := range t.cceIDs {
		t.cceIDs[i] = uint16(r.Uint64())
	}
}

// AssignEncryptionIDsMinimizing assigns 16-bit ids greedily so that the
// encryption keys of the given chains collide as little as possible: ids
// are assigned function by function, re-drawing (up to tries times) any id
// that introduces a new key collision among the chains seen so far. This
// models the paper's "static call-graph analysis may be used to determine
// the best ids". It returns the number of colliding chain pairs remaining.
func (t *Table) AssignEncryptionIDsMinimizing(seed uint64, chains []ChainID, tries int) int {
	r := xrand.New(seed)
	t.cceIDs = make([]uint16, len(t.funcNames))
	for i := range t.cceIDs {
		t.cceIDs[i] = uint16(r.Uint64())
	}
	collisions := func() int {
		keys := make(map[uint16][]ChainID)
		for _, c := range chains {
			k := t.EncryptionKey(c)
			keys[k] = append(keys[k], c)
		}
		n := 0
		for _, cs := range keys {
			// Count distinct chains sharing a key.
			if len(cs) > 1 {
				n += len(cs) - 1
			}
		}
		return n
	}
	best := collisions()
	for f := 0; f < len(t.cceIDs) && best > 0; f++ {
		saved := t.cceIDs[f]
		for try := 0; try < tries && best > 0; try++ {
			t.cceIDs[f] = uint16(r.Uint64())
			if c := collisions(); c < best {
				best = c
				saved = t.cceIDs[f]
			}
		}
		t.cceIDs[f] = saved
	}
	return best
}

// EncryptionKey returns the call-chain-encryption key of a chain: the XOR
// of the 16-bit ids of its functions, computed incrementally at each call
// in a real implementation (3 instructions per call, paper §5.1). XOR makes
// the key order-insensitive and cancels even recursion — exactly the
// imprecision the paper's scheme accepts. AssignEncryptionIDs (or the
// minimizing variant) must be called first.
func (t *Table) EncryptionKey(id ChainID) uint16 {
	var k uint16
	for _, f := range t.chains[id] {
		k ^= t.cceIDs[f]
	}
	return k
}

// HasEncryptionIDs reports whether encryption ids have been assigned.
func (t *Table) HasEncryptionIDs() bool { return t.cceIDs != nil }
