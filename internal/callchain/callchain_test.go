package callchain

import (
	"testing"
	"testing/quick"
)

func TestFuncInterning(t *testing.T) {
	tb := NewTable()
	a := tb.Func("main")
	b := tb.Func("parse")
	a2 := tb.Func("main")
	if a != a2 {
		t.Fatalf("re-interning main gave %d, want %d", a2, a)
	}
	if a == b {
		t.Fatal("distinct functions share an id")
	}
	if tb.FuncName(a) != "main" || tb.FuncName(b) != "parse" {
		t.Fatal("FuncName round-trip failed")
	}
	if tb.NumFuncs() != 2 {
		t.Fatalf("NumFuncs = %d, want 2", tb.NumFuncs())
	}
}

func TestChainInterning(t *testing.T) {
	tb := NewTable()
	c1 := tb.InternNames("main", "parse", "xmalloc")
	c2 := tb.InternNames("main", "parse", "xmalloc")
	c3 := tb.InternNames("main", "eval", "xmalloc")
	if c1 != c2 {
		t.Fatal("identical chains interned to different ids")
	}
	if c1 == c3 {
		t.Fatal("distinct chains share an id")
	}
	if tb.Len(c1) != 3 {
		t.Fatalf("Len = %d, want 3", tb.Len(c1))
	}
	if tb.String(c1) != "main>parse>xmalloc" {
		t.Fatalf("String = %q", tb.String(c1))
	}
}

func TestEmptyChainIsZero(t *testing.T) {
	tb := NewTable()
	if id := tb.Intern(nil); id != 0 {
		t.Fatalf("empty chain id = %d, want 0", id)
	}
	if tb.Len(0) != 0 {
		t.Fatal("empty chain has nonzero length")
	}
}

func TestChainOrderMatters(t *testing.T) {
	tb := NewTable()
	ab := tb.InternNames("a", "b")
	ba := tb.InternNames("b", "a")
	if ab == ba {
		t.Fatal("a>b and b>a interned to same id")
	}
}

func TestSubChain(t *testing.T) {
	tb := NewTable()
	c := tb.InternNames("main", "run", "parse", "xmalloc")
	cases := []struct {
		n    int
		want string
	}{
		{1, "xmalloc"},
		{2, "parse>xmalloc"},
		{3, "run>parse>xmalloc"},
		{4, "main>run>parse>xmalloc"},
		{7, "main>run>parse>xmalloc"},
		{-1, "main>run>parse>xmalloc"},
	}
	for _, cse := range cases {
		got := tb.String(tb.SubChain(c, cse.n))
		if got != cse.want {
			t.Errorf("SubChain(n=%d) = %q, want %q", cse.n, got, cse.want)
		}
	}
	if tb.SubChain(c, 0) != 0 {
		t.Error("SubChain(0) is not the empty chain")
	}
}

func TestSubChainIdempotentInterning(t *testing.T) {
	tb := NewTable()
	c := tb.InternNames("a", "b", "c")
	s1 := tb.SubChain(c, 2)
	s2 := tb.InternNames("b", "c")
	if s1 != s2 {
		t.Fatal("sub-chain and directly interned chain differ")
	}
}

func TestEliminateRecursionNoCycle(t *testing.T) {
	tb := NewTable()
	c := tb.InternNames("main", "a", "b")
	if got := tb.EliminateRecursion(c); got != c {
		t.Fatalf("cycle-free chain changed: %q", tb.String(got))
	}
}

func TestEliminateRecursionSimpleCycle(t *testing.T) {
	tb := NewTable()
	// main > f > f > f > malloc-caller collapses to main > f > g.
	c := tb.InternNames("main", "f", "f", "f", "g")
	got := tb.String(tb.EliminateRecursion(c))
	if got != "main>f>g" {
		t.Fatalf("EliminateRecursion = %q, want main>f>g", got)
	}
}

func TestEliminateRecursionMutualCycle(t *testing.T) {
	tb := NewTable()
	// a > b > a > b > c: the a..a loop collapses, then b..b.
	c := tb.InternNames("a", "b", "a", "b", "c")
	got := tb.String(tb.EliminateRecursion(c))
	if got != "a>b>c" {
		t.Fatalf("EliminateRecursion = %q, want a>b>c", got)
	}
}

func TestEliminateRecursionInterleaved(t *testing.T) {
	tb := NewTable()
	// main > p > q > p > r: p reappears, dropping p>q, leaving main>p>r.
	c := tb.InternNames("main", "p", "q", "p", "r")
	got := tb.String(tb.EliminateRecursion(c))
	if got != "main>p>r" {
		t.Fatalf("EliminateRecursion = %q, want main>p>r", got)
	}
}

func TestEliminateRecursionResultUnique(t *testing.T) {
	tb := NewTable()
	chains := [][]string{
		{"a", "b", "a", "c", "b", "d"},
		{"x", "x", "x"},
		{"m", "n", "o", "n", "m", "p"},
	}
	for _, names := range chains {
		c := tb.InternNames(names...)
		r := tb.EliminateRecursion(c)
		fs := tb.Funcs(r)
		seen := map[FuncID]bool{}
		for _, f := range fs {
			if seen[f] {
				t.Errorf("chain %v: function repeats after elimination: %q", names, tb.String(r))
			}
			seen[f] = true
		}
		// The innermost function must be preserved.
		orig := tb.Funcs(c)
		if len(fs) == 0 || fs[len(fs)-1] != orig[len(orig)-1] {
			t.Errorf("chain %v: innermost caller lost: %q", names, tb.String(r))
		}
	}
}

func TestHashDistinguishesChains(t *testing.T) {
	tb := NewTable()
	h1 := tb.Hash(tb.InternNames("a", "b"))
	h2 := tb.Hash(tb.InternNames("b", "a"))
	h3 := tb.Hash(tb.InternNames("a", "b"))
	if h1 == h2 {
		t.Fatal("order-swapped chains hash equal")
	}
	if h1 != h3 {
		t.Fatal("equal chains hash differently")
	}
}

func TestEncryptionKeyXORProperties(t *testing.T) {
	tb := NewTable()
	ab := tb.InternNames("a", "b")
	ba := tb.InternNames("b", "a")
	aab := tb.InternNames("a", "a", "b")
	b := tb.InternNames("b")
	tb.AssignEncryptionIDs(99)

	// XOR is order-insensitive: a>b and b>a collide by construction.
	if tb.EncryptionKey(ab) != tb.EncryptionKey(ba) {
		t.Fatal("CCE keys should be order-insensitive")
	}
	// Even recursion cancels: a>a>b == b.
	if tb.EncryptionKey(aab) != tb.EncryptionKey(b) {
		t.Fatal("CCE keys should cancel even recursion")
	}
}

func TestEncryptionKeyDeterministicBySeed(t *testing.T) {
	build := func() *Table {
		tb := NewTable()
		tb.InternNames("a", "b", "c")
		return tb
	}
	t1, t2 := build(), build()
	t1.AssignEncryptionIDs(7)
	t2.AssignEncryptionIDs(7)
	c1 := t1.InternNames("a", "b", "c")
	c2 := t2.InternNames("a", "b", "c")
	if t1.EncryptionKey(c1) != t2.EncryptionKey(c2) {
		t.Fatal("same seed produced different keys")
	}
	t2.AssignEncryptionIDs(8)
	if t1.EncryptionKey(c1) == t2.EncryptionKey(c2) {
		t.Log("note: different seeds coincidentally matched (1/65536 chance)")
	}
}

func TestAssignEncryptionIDsMinimizing(t *testing.T) {
	tb := NewTable()
	var chains []ChainID
	// 40 distinct two-function chains over 12 functions: random ids will
	// often collide in a 16-bit space only rarely, so mostly this checks
	// the collision count is not worse than random.
	names := []string{"a", "b", "c", "d", "e", "f", "g", "h", "i", "j", "k", "l"}
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			chains = append(chains, tb.InternNames(names[i], names[j]))
		}
	}
	left := tb.AssignEncryptionIDsMinimizing(3, chains, 8)
	if !tb.HasEncryptionIDs() {
		t.Fatal("minimizing assignment left no ids")
	}
	if left > 2 {
		t.Fatalf("minimizing assignment left %d collisions", left)
	}
}

func TestQuickSubChainSuffix(t *testing.T) {
	tb := NewTable()
	f := func(raw []uint8, n uint8) bool {
		if len(raw) == 0 {
			return true
		}
		fs := make([]FuncID, len(raw))
		for i, v := range raw {
			fs[i] = FuncID(v % 16)
		}
		c := tb.Intern(fs)
		sub := tb.SubChain(c, int(n%10))
		subFs := tb.Funcs(sub)
		// The sub-chain must be a suffix of the original.
		if len(subFs) > len(fs) {
			return false
		}
		off := len(fs) - len(subFs)
		for i, f := range subFs {
			if fs[off+i] != f {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickEliminateRecursionTerminatesAndDedups(t *testing.T) {
	tb := NewTable()
	f := func(raw []uint8) bool {
		fs := make([]FuncID, len(raw))
		for i, v := range raw {
			fs[i] = FuncID(v % 8) // force many cycles
		}
		c := tb.Intern(fs)
		r := tb.EliminateRecursion(c)
		out := tb.Funcs(r)
		seen := map[FuncID]bool{}
		for _, f := range out {
			if seen[f] {
				return false
			}
			seen[f] = true
		}
		if len(raw) > 0 && len(out) == 0 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkIntern(b *testing.B) {
	tb := NewTable()
	fs := make([]FuncID, 8)
	for i := range fs {
		fs[i] = tb.Func(string(rune('a' + i)))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fs[7] = FuncID(i % 8)
		tb.Intern(fs)
	}
}

func BenchmarkEncryptionKey(b *testing.B) {
	tb := NewTable()
	c := tb.InternNames("main", "run", "interp", "eval", "apply", "cons", "xmalloc")
	tb.AssignEncryptionIDs(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tb.EncryptionKey(c)
	}
}
