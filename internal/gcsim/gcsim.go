// Package gcsim simulates a two-generation copying garbage collector, to
// quantify the paper's related-work claim (§1.1): "Our approach can
// improve the performance of generational collectors by predicting object
// lifetimes when they are born."
//
// The simulator allocates into a fixed-size nursery; when the nursery
// fills, a minor collection copies the still-live nursery objects into the
// old generation (cost proportional to bytes copied — the dominant cost of
// generational collection). When the old generation's occupancy exceeds
// its budget, a major collection compacts it (cost proportional to live
// bytes). Because traces record exact death events, liveness at each
// collection is exact.
//
// Lifetime prediction enables *pretenuring*: objects predicted long-lived
// at birth (NOT in the short-lived site database) are allocated directly
// into the old generation and are never copied out of the nursery.
package gcsim

import (
	"fmt"

	"repro/internal/profile"
	"repro/internal/trace"
)

// Config sizes the generations.
type Config struct {
	// NurserySize is the nursery capacity in bytes (default 256KB).
	NurserySize int64
	// OldBudget triggers a major collection when the old generation's
	// occupancy (live + uncollected garbage) exceeds it (default 4MB).
	OldBudget int64
}

// DefaultConfig returns a 256KB nursery with a 4MB old-generation budget.
func DefaultConfig() Config {
	return Config{NurserySize: 256 << 10, OldBudget: 4 << 20}
}

// Stats reports the work a run performed.
type Stats struct {
	Allocs        int64
	AllocedBytes  int64
	Pretenured    int64 // objects allocated directly into the old gen
	PretenuredBy  int64 // bytes thereof
	MinorGCs      int64
	PromotedBytes int64 // bytes copied nursery -> old across all minor GCs
	PromotedObjs  int64
	MajorGCs      int64
	MajorLiveScan int64 // live bytes traversed by major collections
}

// CopiedBytes is the total copying work (the headline cost metric):
// nursery promotions plus major-collection compaction traffic.
func (s Stats) CopiedBytes() int64 { return s.PromotedBytes + s.MajorLiveScan }

// where an object currently lives.
type where uint8

const (
	inNursery where = iota + 1
	inOld
)

type objState struct {
	size int64
	loc  where
}

// Run replays a trace through the collector. A nil predictor disables
// pretenuring (the baseline generational collector). With a predictor,
// allocations NOT predicted short-lived are pretenured.
func Run(tr *trace.Trace, cfg Config, pred *profile.Predictor) (Stats, error) {
	if cfg.NurserySize <= 0 {
		cfg.NurserySize = 256 << 10
	}
	if cfg.OldBudget <= 0 {
		cfg.OldBudget = 4 << 20
	}
	var (
		st      Stats
		live    = make(map[trace.ObjectID]*objState)
		nursery int64 // bytes bump-allocated in the nursery since last minor GC
		oldOcc  int64 // old-gen occupancy incl. dead-but-uncollected bytes
		oldLive int64 // live bytes in the old generation
		mapper  *profile.Mapper
	)
	if pred != nil {
		mapper = pred.NewMapper(tr.Table)
	}

	minorGC := func() {
		st.MinorGCs++
		// Copy live nursery objects to the old generation.
		for _, o := range live {
			if o.loc == inNursery {
				o.loc = inOld
				st.PromotedBytes += o.size
				st.PromotedObjs++
				oldOcc += o.size
				oldLive += o.size
			}
		}
		nursery = 0
		if oldOcc > cfg.OldBudget {
			st.MajorGCs++
			st.MajorLiveScan += oldLive
			oldOcc = oldLive
		}
	}

	for i, ev := range tr.Events {
		switch ev.Kind {
		case trace.KindAlloc:
			if _, dup := live[ev.Obj]; dup {
				return st, fmt.Errorf("gcsim: event %d: object %d allocated twice", i, ev.Obj)
			}
			st.Allocs++
			st.AllocedBytes += ev.Size
			o := &objState{size: ev.Size}
			pretenure := false
			if mapper != nil && !mapper.PredictShort(ev.Chain, ev.Size) {
				pretenure = true
			}
			// Objects larger than the nursery must go straight to the
			// old generation regardless of prediction.
			if ev.Size > cfg.NurserySize {
				pretenure = true
			}
			if pretenure {
				o.loc = inOld
				st.Pretenured++
				st.PretenuredBy += ev.Size
				oldOcc += ev.Size
				oldLive += ev.Size
				if oldOcc > cfg.OldBudget {
					st.MajorGCs++
					st.MajorLiveScan += oldLive
					oldOcc = oldLive
				}
			} else {
				if nursery+ev.Size > cfg.NurserySize {
					minorGC()
				}
				o.loc = inNursery
				nursery += ev.Size
			}
			live[ev.Obj] = o
		case trace.KindFree:
			o, ok := live[ev.Obj]
			if !ok {
				return st, fmt.Errorf("gcsim: event %d: free of unknown object %d", i, ev.Obj)
			}
			if o.loc == inOld {
				// The space is reclaimed at the next major GC; only the
				// live count drops now.
				oldLive -= o.size
			}
			delete(live, ev.Obj)
		default:
			return st, fmt.Errorf("gcsim: event %d: bad kind %d", i, ev.Kind)
		}
	}
	return st, nil
}
