package gcsim

import (
	"testing"

	"repro/internal/callchain"
	"repro/internal/profile"
	"repro/internal/synth"
	"repro/internal/trace"
)

func genGawk(t *testing.T) (*trace.Trace, *trace.Trace) {
	t.Helper()
	m := synth.ByName("gawk")
	train, err := m.Generate(synth.Config{Input: synth.Train, Seed: 5, Scale: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	test, err := m.Generate(synth.Config{Input: synth.Test, Seed: 6, Scale: 0.01})
	if err != nil {
		t.Fatal(err)
	}
	return train, test
}

func TestBaselineCollectorAccounting(t *testing.T) {
	_, test := genGawk(t)
	st, err := Run(test, DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Allocs == 0 || st.AllocedBytes == 0 {
		t.Fatal("nothing allocated")
	}
	if st.Pretenured != 0 {
		t.Fatal("baseline pretenured objects")
	}
	if st.MinorGCs == 0 {
		t.Fatal("no minor collections despite volume >> nursery")
	}
	// gawk is overwhelmingly short-lived: most nursery objects die
	// before their first collection, so promotion is a small fraction.
	frac := float64(st.PromotedBytes) / float64(st.AllocedBytes)
	if frac > 0.30 {
		t.Fatalf("promoted %.1f%% of bytes; generational hypothesis broken", 100*frac)
	}
}

func TestPretenuringReducesCopying(t *testing.T) {
	train, test := genGawk(t)
	db, err := profile.Train(train, profile.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	pred := db.Predictor()

	base, err := Run(test, DefaultConfig(), nil)
	if err != nil {
		t.Fatal(err)
	}
	pre, err := Run(test, DefaultConfig(), pred)
	if err != nil {
		t.Fatal(err)
	}
	if pre.Pretenured == 0 {
		t.Fatal("prediction pretenured nothing")
	}
	if pre.PromotedBytes >= base.PromotedBytes {
		t.Fatalf("pretenuring did not reduce promotion: %d vs %d",
			pre.PromotedBytes, base.PromotedBytes)
	}
	if pre.CopiedBytes() >= base.CopiedBytes() {
		t.Fatalf("pretenuring did not reduce total copying: %d vs %d",
			pre.CopiedBytes(), base.CopiedBytes())
	}
}

func TestHugeObjectBypassesNursery(t *testing.T) {
	tb := trace.Trace{Table: callchain.NewTable()}
	tb.Events = []trace.Event{
		{Kind: trace.KindAlloc, Obj: 1, Size: 1 << 20, Chain: 0},
		{Kind: trace.KindFree, Obj: 1},
	}
	st, err := Run(&tb, Config{NurserySize: 64 << 10, OldBudget: 8 << 20}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.Pretenured != 1 {
		t.Fatalf("oversized object not pretenured: %+v", st)
	}
	if st.MinorGCs != 0 {
		t.Fatal("oversized object triggered a minor GC")
	}
}

func TestMajorGCTriggered(t *testing.T) {
	tb := trace.Trace{Table: callchain.NewTable()}
	// 100 immortal 64KB objects blow through a 1MB old budget.
	for i := 0; i < 100; i++ {
		tb.Events = append(tb.Events, trace.Event{
			Kind: trace.KindAlloc, Obj: trace.ObjectID(i), Size: 64 << 10,
		})
	}
	st, err := Run(&tb, Config{NurserySize: 32 << 10, OldBudget: 1 << 20}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if st.MajorGCs == 0 {
		t.Fatal("no major collections despite old-gen growth")
	}
}

func TestRunRejectsMalformed(t *testing.T) {
	tb := trace.Trace{Table: callchain.NewTable()}
	tb.Events = []trace.Event{{Kind: trace.KindFree, Obj: 3}}
	if _, err := Run(&tb, DefaultConfig(), nil); err == nil {
		t.Fatal("free of unknown object accepted")
	}
	tb.Events = []trace.Event{
		{Kind: trace.KindAlloc, Obj: 1, Size: 8},
		{Kind: trace.KindAlloc, Obj: 1, Size: 8},
	}
	if _, err := Run(&tb, DefaultConfig(), nil); err == nil {
		t.Fatal("double alloc accepted")
	}
}
