// Package costmodel converts allocator operation counts into per-operation
// instruction averages, reproducing the paper's Table 9 methodology: "The
// numbers for the Arena algorithms were computed using operation counts
// (e.g., allocations, frees, etc), multiplying them by the estimated cost
// per operation."
//
// Fixed per-operation instruction estimates are anchored to the paper's
// published SPARC numbers: 18 instructions to predict a lifetime via the
// length-4 call-chain (10 of which compute the chain), 3 instructions per
// function call for call-chain encryption, and the QP-measured BSD and
// first-fit baselines (BSD free 17; first-fit alloc 56-165 depending on
// search length). Search-dependent costs (first-fit probes, arena scans)
// come from the simulator's measured counts.
package costmodel

import "repro/internal/heapsim"

// Params are the per-operation instruction estimates.
type Params struct {
	// Lifetime prediction (paper §5.1).
	PredictLen4    int64   // full length-4 site check: 18 (10 chain + 8 lookup)
	PredictCCEBase int64   // CCE site check when the key is maintained per call: 8
	CCEPerCall     float64 // per-function-call key maintenance: 3

	// Arena operations.
	ArenaBump     int64 // bump-pointer allocation: space check + add + count
	ArenaFree     int64 // address-range check + count decrement
	ArenaScanStep int64 // per-arena examined while hunting a zero count
	ArenaReset    int64 // resetting a reusable arena

	// First-fit (Knuth) operations.
	FFAllocBase int64 // header setup, list entry
	FFProbe     int64 // per free block examined
	FFSplit     int64 // splitting a block
	FFExtend    int64 // sbrk path
	FFFreeBase  int64 // boundary-tag free
	FFCoalesce  int64 // per neighbor merge

	// BSD (power-of-two) operations.
	BSDAllocBase int64 // list pop + bookkeeping
	BSDPerBucket int64 // bucket-computation shift loop, per index step
	BSDCarve     int64 // slab carve when a list is empty
	BSDFree      int64 // push on bucket list (paper: 17)
}

// DefaultParams returns the paper-anchored estimates.
func DefaultParams() Params {
	return Params{
		PredictLen4:    18,
		PredictCCEBase: 8,
		CCEPerCall:     3,
		ArenaBump:      8,
		ArenaFree:      9,
		ArenaScanStep:  3,
		ArenaReset:     6,
		FFAllocBase:    30,
		FFProbe:        6,
		FFSplit:        6,
		FFExtend:       60,
		FFFreeBase:     52,
		FFCoalesce:     8,
		BSDAllocBase:   42,
		BSDPerBucket:   2,
		BSDCarve:       40,
		BSDFree:        17,
	}
}

// PerOp is an instructions-per-operation summary: one Table 9 cell group.
type PerOp struct {
	Alloc float64 // instructions per allocation
	Free  float64 // instructions per free
}

// Total returns alloc + free (the paper's "a+f" column).
func (p PerOp) Total() float64 { return p.Alloc + p.Free }

func safeDiv(num, den int64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// BSD prices a BSD-malloc run from its operation counts.
func BSD(c heapsim.OpCounts, p Params) PerOp {
	alloc := float64(p.BSDAllocBase) +
		float64(p.BSDPerBucket)*safeDiv(c.BSDBucketSum, c.Allocs) +
		float64(p.BSDCarve)*safeDiv(c.BSDCarves, c.Allocs)
	return PerOp{Alloc: alloc, Free: float64(p.BSDFree)}
}

// FirstFit prices a first-fit run from its operation counts.
func FirstFit(c heapsim.OpCounts, p Params) PerOp {
	alloc := float64(p.FFAllocBase) +
		float64(p.FFProbe)*safeDiv(c.FFProbes, c.FFAllocs) +
		float64(p.FFSplit)*safeDiv(c.FFSplits, c.FFAllocs) +
		float64(p.FFExtend)*safeDiv(c.FFExtends, c.FFAllocs)
	free := float64(p.FFFreeBase) +
		float64(p.FFCoalesce)*safeDiv(c.FFCoalesces, c.FFFrees)
	return PerOp{Alloc: alloc, Free: free}
}

// arena prices the shared (non-prediction) part of an arena run: bump
// allocations, scans, resets, and the first-fit costs of the general heap,
// averaged over all operations.
func arena(c heapsim.OpCounts, p Params) PerOp {
	if c.Allocs == 0 {
		return PerOp{}
	}
	// Work done by arena-path allocations.
	arenaWork := c.ArenaAllocs*p.ArenaBump +
		c.ArenaScanSteps*p.ArenaScanStep +
		c.ArenaResets*p.ArenaReset
	// Work done by general-heap allocations (the first-fit path).
	ffAlloc := c.FFAllocs*p.FFAllocBase +
		c.FFProbes*p.FFProbe +
		c.FFSplits*p.FFSplit +
		c.FFExtends*p.FFExtend
	alloc := float64(arenaWork+ffAlloc) / float64(c.Allocs)

	free := 0.0
	if c.Frees > 0 {
		ffFree := c.FFFrees*p.FFFreeBase + c.FFCoalesces*p.FFCoalesce
		free = float64(c.ArenaFrees*p.ArenaFree+ffFree) / float64(c.Frees)
	}
	return PerOp{Alloc: alloc, Free: free}
}

// ArenaLen4 prices an arena-allocator run whose prediction uses the
// length-4 call-chain computed at each allocation.
func ArenaLen4(c heapsim.OpCounts, p Params) PerOp {
	po := arena(c, p)
	po.Alloc += float64(p.PredictLen4)
	return po
}

// ArenaCCE prices an arena-allocator run whose prediction uses call-chain
// encryption: the per-call key maintenance (3 instructions x function
// calls) is charged per allocation, as the paper does ("factoring the
// per-call call-chain encryption as a per-allocation cost").
func ArenaCCE(c heapsim.OpCounts, p Params, callsPerAlloc float64) PerOp {
	po := arena(c, p)
	po.Alloc += float64(p.PredictCCEBase) + p.CCEPerCall*callsPerAlloc
	return po
}
