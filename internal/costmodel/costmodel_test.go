package costmodel

import (
	"math"
	"testing"

	"repro/internal/heapsim"
)

func TestBSDCost(t *testing.T) {
	p := DefaultParams()
	c := heapsim.OpCounts{Allocs: 100, Frees: 100, BSDBucketSum: 500, BSDCarves: 2}
	po := BSD(c, p)
	// 42 + 2*5 + 40*0.02 = 52.8
	if math.Abs(po.Alloc-52.8) > 1e-9 {
		t.Errorf("BSD alloc = %v, want 52.8", po.Alloc)
	}
	if po.Free != 17 {
		t.Errorf("BSD free = %v, want 17", po.Free)
	}
	if math.Abs(po.Total()-69.8) > 1e-9 {
		t.Errorf("BSD total = %v", po.Total())
	}
}

func TestFirstFitCostGrowsWithProbes(t *testing.T) {
	p := DefaultParams()
	base := heapsim.OpCounts{Allocs: 100, FFAllocs: 100, Frees: 100, FFFrees: 100, FFProbes: 200}
	frag := base
	frag.FFProbes = 2000
	a := FirstFit(base, p).Alloc
	b := FirstFit(frag, p).Alloc
	if b <= a {
		t.Fatalf("more probes should cost more: %v vs %v", a, b)
	}
	// Sanity: with ~4 probes/alloc the paper-range 50-60 should appear.
	mid := heapsim.OpCounts{Allocs: 100, FFAllocs: 100, Frees: 100, FFFrees: 100,
		FFProbes: 400, FFSplits: 50, FFCoalesces: 80}
	po := FirstFit(mid, p)
	if po.Alloc < 40 || po.Alloc > 80 {
		t.Errorf("first-fit alloc %v outside the plausible band", po.Alloc)
	}
	if po.Free < 50 || po.Free > 70 {
		t.Errorf("first-fit free %v outside the plausible band", po.Free)
	}
}

func TestArenaLen4MostlyArena(t *testing.T) {
	p := DefaultParams()
	// 98% arena allocations, cheap frees: the GAWK regime. Expect
	// roughly the paper's 29 alloc / 11 free.
	c := heapsim.OpCounts{
		Allocs: 1000, Frees: 1000,
		ArenaAllocs: 980, ArenaFrees: 980, ArenaResets: 12, ArenaScanSteps: 24,
		FFAllocs: 20, FFFrees: 20, FFProbes: 80, FFSplits: 10, FFCoalesces: 15,
	}
	po := ArenaLen4(c, p)
	if po.Alloc < 24 || po.Alloc > 34 {
		t.Errorf("arena len-4 alloc = %v, want ~29", po.Alloc)
	}
	if po.Free < 8 || po.Free > 14 {
		t.Errorf("arena len-4 free = %v, want ~11", po.Free)
	}
}

func TestArenaLen4PollutedIsExpensive(t *testing.T) {
	p := DefaultParams()
	// The CFRAC regime: almost everything falls back to a fragmented
	// first-fit heap after paying for prediction and a failed scan.
	c := heapsim.OpCounts{
		Allocs: 1000, Frees: 1000,
		ArenaAllocs: 26, ArenaFrees: 26, ArenaScanSteps: 16 * 900, ArenaFallbacks: 900,
		FFAllocs: 974, FFFrees: 974, FFProbes: 974 * 10, FFSplits: 500, FFCoalesces: 700,
	}
	po := ArenaLen4(c, p)
	if po.Alloc < 120 {
		t.Errorf("polluted arena alloc = %v, want > 120 (paper: 134)", po.Alloc)
	}
	ff := FirstFit(heapsim.OpCounts{
		Allocs: 1000, FFAllocs: 1000, Frees: 1000, FFFrees: 1000,
		FFProbes: 6000, FFSplits: 500, FFCoalesces: 700,
	}, p)
	if po.Alloc <= ff.Alloc {
		t.Errorf("polluted arena (%v) should cost more than plain first-fit (%v)",
			po.Alloc, ff.Alloc)
	}
}

func TestArenaCCEAmortization(t *testing.T) {
	p := DefaultParams()
	c := heapsim.OpCounts{Allocs: 1000, Frees: 1000, ArenaAllocs: 1000, ArenaFrees: 1000}
	len4 := ArenaLen4(c, p)
	// Paper: delta(cce - len4) = 3*callsPerAlloc - 10.
	for _, cpa := range []float64{5.3, 16, 31} {
		cce := ArenaCCE(c, p, cpa)
		wantDelta := 3*cpa - 10
		gotDelta := cce.Alloc - len4.Alloc
		if math.Abs(gotDelta-wantDelta) > 1e-9 {
			t.Errorf("cpa=%v: delta = %v, want %v", cpa, gotDelta, wantDelta)
		}
		if cce.Free != len4.Free {
			t.Errorf("cce free %v != len4 free %v", cce.Free, len4.Free)
		}
	}
}

func TestZeroCountsSafe(t *testing.T) {
	p := DefaultParams()
	var c heapsim.OpCounts
	for _, po := range []PerOp{BSD(c, p), FirstFit(c, p), ArenaLen4(c, p), ArenaCCE(c, p, 5)} {
		if math.IsNaN(po.Alloc) || math.IsNaN(po.Free) {
			t.Fatal("NaN cost on zero counts")
		}
	}
}
