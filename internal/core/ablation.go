package core

import (
	"repro/internal/gcsim"
	"repro/internal/heapsim"
	"repro/internal/profile"
)

// This file holds the ablation experiments over the design parameters
// DESIGN.md §5 calls out. They have no direct counterpart table in the
// paper, but each probes a choice the paper discusses in prose: the 32KB
// threshold ("how short is short-lived?"), the all-short admission rule
// ("how large should this percentage be?"), the 16x4KB arena blocking,
// the first-fit search policy, call-chain encryption as a *predictor*
// rather than just a cost, and the generational-collector claim.

// ThresholdRow reports self prediction under one short-lived threshold.
type ThresholdRow struct {
	ThresholdKB int64
	PredPct     float64
	SitesUsed   int
	ActualPct   float64
}

// ThresholdSweep varies the short-lived threshold (paper §4.1).
func (c Config) ThresholdSweep(a *Artifacts, thresholdsKB []int64) []ThresholdRow {
	out := make([]ThresholdRow, 0, len(thresholdsKB))
	for _, kb := range thresholdsKB {
		cfg := c.Profile
		cfg.ShortThreshold = kb << 10
		db := profile.TrainObjects(a.TrainTrace.Table, a.TrainObjs, cfg)
		ev := profile.EvaluateObjects(a.TrainTrace.Table, a.TrainObjs, db.Predictor())
		out = append(out, ThresholdRow{
			ThresholdKB: kb,
			PredPct:     ev.PredictedShortPct(),
			SitesUsed:   ev.SitesUsed,
			ActualPct:   ev.ActualShortPct(),
		})
	}
	return out
}

// AdmitRow reports prediction quality under a relaxed admission rule.
type AdmitRow struct {
	AdmitFraction float64
	SelfPredPct   float64
	TruePredPct   float64
	TrueErrorPct  float64
}

// AdmitSweep relaxes the all-short admission rule (paper §4.1 discusses
// the trade-off: cheaper misprediction would permit lower fractions).
func (c Config) AdmitSweep(a *Artifacts, fractions []float64) []AdmitRow {
	out := make([]AdmitRow, 0, len(fractions))
	for _, f := range fractions {
		cfg := c.Profile
		cfg.AdmitFraction = f
		db := profile.TrainObjects(a.TrainTrace.Table, a.TrainObjs, cfg)
		p := db.Predictor()
		self := profile.EvaluateObjects(a.TrainTrace.Table, a.TrainObjs, p)
		tru := profile.EvaluateObjects(a.TestTrace.Table, a.TestObjs, p)
		out = append(out, AdmitRow{
			AdmitFraction: f,
			SelfPredPct:   self.PredictedShortPct(),
			TruePredPct:   tru.PredictedShortPct(),
			TrueErrorPct:  tru.ErrorPct(),
		})
	}
	return out
}

// GeometryRow reports an arena-geometry simulation at fixed 64KB total.
type GeometryRow struct {
	NumArenas     int
	ArenaSizeKB   int64
	ArenaAllocPct float64
	PinnedArenas  int
	Fallbacks     int64
}

// ArenaGeometrySweep varies arena count x size at a fixed total area (the
// paper motivates 16x4KB blocking: "this blocking reduces the space
// consumed by erroneously predicted long-lived objects").
func (c Config) ArenaGeometrySweep(a *Artifacts, geometries [][2]int) ([]GeometryRow, error) {
	out := make([]GeometryRow, 0, len(geometries))
	for _, g := range geometries {
		ar := &heapsim.Arena{NumArenas: g[0], ArenaSize: int64(g[1]) << 10}
		res, err := RunSim(a.TestTrace, ar, a.TrainPredictor)
		if err != nil {
			return nil, err
		}
		out = append(out, GeometryRow{
			NumArenas:     g[0],
			ArenaSizeKB:   int64(g[1]),
			ArenaAllocPct: res.ArenaAllocPct,
			PinnedArenas:  res.PinnedArenas,
			Fallbacks:     res.Counts.ArenaFallbacks,
		})
	}
	return out, nil
}

// FitRow compares free-list policies on the same trace.
type FitRow struct {
	Policy      string
	MaxHeapKB   int64
	ProbesPerOp float64
}

// FitPolicySweep compares Knuth's A4' next fit, the K&R rover-on-free
// variant, and best fit on the Test input.
func (c Config) FitPolicySweep(a *Artifacts) ([]FitRow, error) {
	mk := []struct {
		name  string
		alloc heapsim.Allocator
	}{
		{"next-fit (A4')", heapsim.NewFirstFit()},
		{"rover-on-free (K&R)", func() heapsim.Allocator {
			ff := heapsim.NewFirstFit()
			ff.RoverOnFree = true
			return ff
		}()},
		{"best-fit", heapsim.NewBestFit()},
	}
	out := make([]FitRow, 0, len(mk))
	for _, m := range mk {
		res, err := RunSim(a.TestTrace, m.alloc, nil)
		if err != nil {
			return nil, err
		}
		probes := 0.0
		if res.Counts.FFAllocs > 0 {
			probes = float64(res.Counts.FFProbes) / float64(res.Counts.FFAllocs)
		}
		out = append(out, FitRow{
			Policy:      m.name,
			MaxHeapKB:   res.MaxHeap >> 10,
			ProbesPerOp: probes,
		})
	}
	return out, nil
}

// CCERow compares the exact site predictor against the call-chain
// encryption predictor trained on the same input (self prediction).
type CCERow struct {
	ExactPredPct  float64
	CCEPredPct    float64
	KeyCollisions int
	ExactSites    int
	CCESites      int
}

// CCEQuality measures how much prediction the XOR-key scheme loses to
// collisions and order-insensitivity.
func (c Config) CCEQuality(a *Artifacts) CCERow {
	exactDB := profile.TrainObjects(a.TrainTrace.Table, a.TrainObjs, c.Profile)
	exact := exactDB.Predictor()
	exactEv := profile.EvaluateObjects(a.TrainTrace.Table, a.TrainObjs, exact)

	cce, collisions := profile.TrainCCE(a.TrainTrace.Table, a.TrainObjs, c.Profile, c.SeedBase)
	cceEv := profile.EvaluateCCE(a.TrainObjs, cce)
	return CCERow{
		ExactPredPct:  exactEv.PredictedShortPct(),
		CCEPredPct:    cceEv.PredictedShortPct(),
		KeyCollisions: collisions,
		ExactSites:    exact.NumSites(),
		CCESites:      cce.NumSites(),
	}
}

// GCRow compares the generational collector with and without pretenuring.
type GCRow struct {
	BaseCopiedKB int64
	PreCopiedKB  int64
	Pretenured   int64
	MinorGCs     int64
}

// GCPretenuring quantifies the paper's generational-collection claim on
// the Test input with true prediction.
func (c Config) GCPretenuring(a *Artifacts) (GCRow, error) {
	base, err := gcsim.Run(a.TestTrace, gcsim.DefaultConfig(), nil)
	if err != nil {
		return GCRow{}, err
	}
	pre, err := gcsim.Run(a.TestTrace, gcsim.DefaultConfig(), a.TrainPredictor)
	if err != nil {
		return GCRow{}, err
	}
	return GCRow{
		BaseCopiedKB: base.CopiedBytes() >> 10,
		PreCopiedKB:  pre.CopiedBytes() >> 10,
		Pretenured:   pre.Pretenured,
		MinorGCs:     pre.MinorGCs,
	}, nil
}

// CustomRow contrasts a CUSTOMALLOC-style profile-synthesized allocator
// (the paper's reference [9]: fast per-size free lists, no lifetime
// prediction) with the lifetime-predicting arena allocator on the Test
// input.
type CustomRow struct {
	CustomFastPct  float64 // allocations on the synthesized fast path
	CustomHeapKB   int64
	ArenaAllocPct  float64
	ArenaHeapKB    int64
	FirstFitHeapKB int64
}

// CustomAllocComparison trains the size profile on the Train input (top 16
// sizes) and simulates both optimized allocators.
//
// Finding (recorded in EXPERIMENTS.md): in these workloads CUSTOMALLOC's
// per-size segregation also removes most fragmentation — size segregation
// approximates lifetime segregation, which is exactly Boehm & Weiser's
// observation quoted in the paper's related work ("uses size to segregate
// objects... memory overhead would be improved if living objects were
// segregated from dead objects"). The models quantize request sizes more
// than 1993 C programs did, which flatters the size-only approach; the
// paper's Table 5 shows real size-lifetime correlation was weak. The
// arena allocator's remaining advantages are the O(1) count-decrement
// free and the bounded 64KB footprint for short-lived data.
func (c Config) CustomAllocComparison(a *Artifacts) (CustomRow, error) {
	sizes := a.TrainDB.TopSizes(16)
	custom := heapsim.NewCustom(sizes)
	cRes, err := RunSim(a.TestTrace, custom, nil)
	if err != nil {
		return CustomRow{}, err
	}
	arRes, err := RunSim(a.TestTrace, heapsim.NewArena(), a.TrainPredictor)
	if err != nil {
		return CustomRow{}, err
	}
	ffRes, err := RunSim(a.TestTrace, heapsim.NewFirstFit(), nil)
	if err != nil {
		return CustomRow{}, err
	}
	return CustomRow{
		CustomFastPct:  100 * custom.FastPathFrac(),
		CustomHeapKB:   cRes.MaxHeap >> 10,
		ArenaAllocPct:  arRes.ArenaAllocPct,
		ArenaHeapKB:    arRes.MaxHeap >> 10,
		FirstFitHeapKB: ffRes.MaxHeap >> 10,
	}, nil
}

// SiteArenaRow contrasts the shared-arena design with per-site pools
// under true prediction.
type SiteArenaRow struct {
	SharedAllocPct float64
	SitedAllocPct  float64
	SharedHeapKB   int64
	SitedHeapKB    int64
	PinnedPools    int
}

// SiteArenaComparison runs both arena designs on the Test input. Per-site
// pools isolate misprediction pollution (CFRAC recovers from ~1% to its
// full predicted fraction) at the cost of an arena area that grows with
// the number of hot sites.
func (c Config) SiteArenaComparison(a *Artifacts) (SiteArenaRow, error) {
	shared, err := RunSim(a.TestTrace, heapsim.NewArena(), a.TrainPredictor)
	if err != nil {
		return SiteArenaRow{}, err
	}
	sited, err := RunSimSited(a.TestTrace, heapsim.NewSiteArena(), a.TrainPredictor)
	if err != nil {
		return SiteArenaRow{}, err
	}
	return SiteArenaRow{
		SharedAllocPct: shared.ArenaAllocPct,
		SitedAllocPct:  sited.ArenaAllocPct,
		SharedHeapKB:   shared.MaxHeap >> 10,
		SitedHeapKB:    sited.MaxHeap >> 10,
		PinnedPools:    sited.PinnedArenas,
	}, nil
}
