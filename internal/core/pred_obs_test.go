package core

import (
	"reflect"
	"testing"

	"repro/internal/callchain"
	"repro/internal/heapsim"
	"repro/internal/obs"
	"repro/internal/profile"
	"repro/internal/trace"
)

// handTraces builds a training trace that admits exactly site A as a
// short-lived predictor, and a test trace whose replay produces one of
// each confusion-matrix outcome plus a big filler object (site C) that
// ages the mispredicted ones past the 32KB threshold.
func handTraces(t *testing.T) (train, test *trace.Trace, siteA, siteB, siteC callchain.ChainID) {
	t.Helper()
	tb := callchain.NewTable()
	siteA = tb.InternNames("main", "a")
	siteB = tb.InternNames("main", "b")
	siteC = tb.InternNames("main", "filler")

	// Training: A dies young (short), B and the filler die old (long).
	train = &trace.Trace{
		Program: "hand", Input: "train", Table: tb,
		Events: []trace.Event{
			{Kind: trace.KindAlloc, Obj: 1, Size: 64, Chain: siteA},
			{Kind: trace.KindFree, Obj: 1}, // lifetime 64: short
			{Kind: trace.KindAlloc, Obj: 2, Size: 64, Chain: siteB},
			{Kind: trace.KindAlloc, Obj: 3, Size: 65536, Chain: siteC},
			{Kind: trace.KindFree, Obj: 2}, // lifetime 65536: long
			{Kind: trace.KindFree, Obj: 3}, // lifetime 65536: long
		},
	}
	// Test replay, clock in comments is bytes allocated after the event:
	test = &trace.Trace{
		Program: "hand", Input: "test", Table: tb,
		Events: []trace.Event{
			{Kind: trace.KindAlloc, Obj: 1, Size: 64, Chain: siteA},    // born 0, clock 64, pred short
			{Kind: trace.KindFree, Obj: 1},                             // lifetime 64       -> TP
			{Kind: trace.KindAlloc, Obj: 2, Size: 64, Chain: siteA},    // born 64, pred short
			{Kind: trace.KindAlloc, Obj: 3, Size: 64, Chain: siteB},    // born 128, pred long
			{Kind: trace.KindFree, Obj: 3},                             // lifetime 64       -> FN
			{Kind: trace.KindAlloc, Obj: 4, Size: 64, Chain: siteB},    // born 192, pred long
			{Kind: trace.KindAlloc, Obj: 5, Size: 65536, Chain: siteC}, // born 256, clock 65792, pred long
			{Kind: trace.KindFree, Obj: 2},                             // lifetime 65728    -> FP
			{Kind: trace.KindFree, Obj: 4},                             // lifetime 65600    -> TN
			// Object 5 is never freed: lifetime 65792-256 = 65536 -> TN at finish.
		},
	}
	return train, test, siteA, siteB, siteC
}

// TestPredTrackingPinned pins the confusion matrix, the misprediction
// cost, the per-site attribution, and the rolling-accuracy channel for a
// hand-built trace whose outcomes are known exactly.
func TestPredTrackingPinned(t *testing.T) {
	train, test, siteA, siteB, _ := handTraces(t)
	pred, err := profile.Train(train, profile.DefaultConfig())
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	p := pred.Predictor()
	if !p.PredictShort(siteA, 64) || p.PredictShort(siteB, 64) {
		t.Fatalf("predictor setup wrong: A short=%v B short=%v",
			p.PredictShort(siteA, 64), p.PredictShort(siteB, 64))
	}

	col := obs.NewCollector(obs.Options{Label: "hand", TimelineInterval: 1})
	res, err := RunSim(test, heapsim.NewFirstFit(), p, col)
	if err != nil {
		t.Fatalf("RunSim: %v", err)
	}
	s := res.Obs

	wantCounters := map[string]int64{
		"pred.tp_objects": 1, "pred.fp_objects": 1,
		"pred.fn_objects": 1, "pred.tn_objects": 2,
		"pred.tp_bytes": 64, "pred.fp_bytes": 64,
		"pred.fn_bytes": 64, "pred.tn_bytes": 64 + 65536,
		// Object 2: size 64, lifetime 65728, threshold 32768.
		"pred.fp_cost_bytelife": 64 * (65728 - 32768),
	}
	for name, want := range wantCounters {
		if got := s.Counters[name]; got != want {
			t.Errorf("counter %s = %d, want %d", name, got, want)
		}
	}
	if got := s.Gauges["pred.threshold_bytes"].Value; got != 32<<10 {
		t.Errorf("threshold gauge = %d, want %d", got, 32<<10)
	}

	// Lifetime histograms split by predicted class: 2 predicted short
	// (lifetimes 64, 65728), 3 predicted long (64, 65600, 65536).
	hs := s.Histograms["pred.lifetime_pred_short"]
	if hs.Count != 2 || hs.Sum != 64+65728 {
		t.Errorf("pred-short histogram n=%d sum=%d, want n=2 sum=%d", hs.Count, hs.Sum, 64+65728)
	}
	hl := s.Histograms["pred.lifetime_pred_long"]
	if hl.Count != 3 || hl.Sum != 64+65600+65536 {
		t.Errorf("pred-long histogram n=%d sum=%d, want n=3 sum=%d", hl.Count, hl.Sum, 64+65600+65536)
	}

	tb := test.Table
	wantSites := []obs.PredSite{
		{Site: tb.String(siteA), FPObjects: 1, FPBytes: 64, FPCost: 64 * (65728 - 32768)},
		{Site: tb.String(siteB), FNObjects: 1, FNBytes: 64},
	}
	if !reflect.DeepEqual(s.PredSites, wantSites) {
		t.Errorf("PredSites = %+v, want %+v", s.PredSites, wantSites)
	}

	// The final timeline sample carries the full rolling-accuracy state:
	// 5 decided, 3 correct (TP + 2 TN).
	if len(s.Timeline) == 0 {
		t.Fatal("no timeline samples")
	}
	last := s.Timeline[len(s.Timeline)-1]
	if last.PredDecidedObjects != 5 || last.PredCorrectObjects != 3 {
		t.Errorf("rolling accuracy = %d/%d, want 3/5",
			last.PredCorrectObjects, last.PredDecidedObjects)
	}
	if last.PredDecidedBytes != 4*64+65536 || last.PredCorrectBytes != 64+64+65536 {
		t.Errorf("rolling byte accuracy = %d/%d, want %d/%d",
			last.PredCorrectBytes, last.PredDecidedBytes, 64+64+65536, 4*64+65536)
	}
}

// TestPredTrackingNoPredictor pins the degenerate matrix for a replay with
// no predictor attached: everything is predicted long against the default
// threshold, so only FN/TN cells fill — and all pred.* families still
// exist so baselines keep a full 60-cell shape.
func TestPredTrackingNoPredictor(t *testing.T) {
	_, test, _, _, _ := handTraces(t)
	col := obs.NewCollector(obs.Options{Label: "hand"})
	res, err := RunSim(test, heapsim.NewFirstFit(), nil, col)
	if err != nil {
		t.Fatalf("RunSim: %v", err)
	}
	s := res.Obs
	want := map[string]int64{
		"pred.tp_objects": 0, "pred.fp_objects": 0,
		"pred.fn_objects": 2, "pred.tn_objects": 3,
		"pred.fp_cost_bytelife": 0,
	}
	for name, wantV := range want {
		got, ok := s.Counters[name]
		if !ok {
			t.Errorf("counter %s missing from snapshot", name)
			continue
		}
		if got != wantV {
			t.Errorf("counter %s = %d, want %d", name, got, wantV)
		}
	}
	if got := s.Gauges["pred.threshold_bytes"].Value; got != 32<<10 {
		t.Errorf("threshold gauge = %d, want %d", got, 32<<10)
	}
}

// TestPredTrackingSited runs the same hand-built trace through the
// per-site arena path, which must score predictions identically.
func TestPredTrackingSited(t *testing.T) {
	train, test, _, _, _ := handTraces(t)
	pred, err := profile.Train(train, profile.DefaultConfig())
	if err != nil {
		t.Fatalf("Train: %v", err)
	}
	col := obs.NewCollector(obs.Options{Label: "hand/sited"})
	res, err := RunSimSited(test, heapsim.NewSiteArena(), pred.Predictor(), col)
	if err != nil {
		t.Fatalf("RunSimSited: %v", err)
	}
	s := res.Obs
	for name, want := range map[string]int64{
		"pred.tp_objects": 1, "pred.fp_objects": 1,
		"pred.fn_objects": 1, "pred.tn_objects": 2,
	} {
		if got := s.Counters[name]; got != want {
			t.Errorf("counter %s = %d, want %d", name, got, want)
		}
	}
}
