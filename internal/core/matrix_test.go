package core

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/profile"
	"repro/internal/synth"
)

func TestParseMatrix(t *testing.T) {
	jobs, err := ParseMatrix("all")
	if err != nil {
		t.Fatalf("ParseMatrix(all): %v", err)
	}
	if want := len(ProgramOrder) * len(AllocatorNames); len(jobs) != want {
		t.Errorf("all expanded to %d jobs, want %d", len(jobs), want)
	}
	for _, j := range jobs {
		if j.Predictor != "true" {
			t.Errorf("default predictor = %q, want true", j.Predictor)
		}
	}

	jobs, err = ParseMatrix("gawk,cfrac/arena/none,true")
	if err != nil {
		t.Fatalf("ParseMatrix: %v", err)
	}
	want := []MatrixJob{
		{Model: "gawk", Allocator: "arena", Predictor: "none"},
		{Model: "gawk", Allocator: "arena", Predictor: "true"},
		{Model: "cfrac", Allocator: "arena", Predictor: "none"},
		{Model: "cfrac", Allocator: "arena", Predictor: "true"},
	}
	if !reflect.DeepEqual(jobs, want) {
		t.Errorf("jobs = %v, want %v", jobs, want)
	}

	for _, bad := range []string{"nosuch", "gawk/nosuch", "gawk/arena/nosuch", "a/b/c/d"} {
		if _, err := ParseMatrix(bad); err == nil {
			t.Errorf("ParseMatrix(%q) accepted", bad)
		}
	}
}

func TestSortJobs(t *testing.T) {
	jobs := []MatrixJob{
		{Model: "perl", Allocator: "arena", Predictor: "true"},
		{Model: "cfrac", Allocator: "bsd", Predictor: "true"},
		{Model: "cfrac", Allocator: "firstfit", Predictor: "self"},
		{Model: "cfrac", Allocator: "firstfit", Predictor: "none"},
	}
	SortJobs(jobs)
	want := []MatrixJob{
		{Model: "cfrac", Allocator: "firstfit", Predictor: "none"},
		{Model: "cfrac", Allocator: "firstfit", Predictor: "self"},
		{Model: "cfrac", Allocator: "bsd", Predictor: "true"},
		{Model: "perl", Allocator: "arena", Predictor: "true"},
	}
	if !reflect.DeepEqual(jobs, want) {
		t.Errorf("sorted = %v, want %v", jobs, want)
	}
}

// TestMatrixRunnerConcurrent runs a small matrix on several workers with
// per-job collectors and checks the observed results agree with direct
// serial replays (the collectors must not perturb the simulation, and
// shared artifacts must be safe to build once under contention).
func TestMatrixRunnerConcurrent(t *testing.T) {
	jobs, err := ParseMatrix("gawk,cfrac/firstfit,arena/true")
	if err != nil {
		t.Fatal(err)
	}
	r := NewMatrixRunner(DefaultConfig(testScale))
	results := r.RunAll(jobs, 4, func(j MatrixJob) *obs.Collector {
		return obs.NewCollector(obs.Options{Label: j.String()})
	})
	if len(results) != len(jobs) {
		t.Fatalf("got %d results, want %d", len(results), len(jobs))
	}
	serial := NewMatrixRunner(DefaultConfig(testScale))
	for i, res := range results {
		if res.Err != nil {
			t.Fatalf("job %s: %v", res.Job, res.Err)
		}
		if res.Job != jobs[i] {
			t.Errorf("result %d out of order: %v", i, res.Job)
		}
		if res.Res.Obs == nil {
			t.Errorf("job %s: no snapshot", res.Job)
			continue
		}
		if res.Res.Obs.Program != res.Job.Model || res.Res.Obs.Allocator != res.Job.Allocator {
			t.Errorf("job %s: snapshot tagged %s/%s", res.Job, res.Res.Obs.Program, res.Res.Obs.Allocator)
		}
		want, err := serial.Run(res.Job, nil)
		if err != nil {
			t.Fatal(err)
		}
		if res.Res.MaxHeap != want.MaxHeap || res.Res.TotalBytes != want.TotalBytes {
			t.Errorf("job %s: observed run (heap %d, bytes %d) != plain run (heap %d, bytes %d)",
				res.Job, res.Res.MaxHeap, res.Res.TotalBytes, want.MaxHeap, want.TotalBytes)
		}
	}
}

// TestMatrixStreamingMatchesMaterialized pins the runner redesign: a
// matrix job replayed through the cached-config streaming path must
// produce the same SimResult — snapshot included — as the old
// materialized path (Build the artifacts, train on annotated objects,
// RunSim over the Test trace). This rests on two equivalences that are
// tested individually elsewhere and composed here: the synth Source is
// bit-identical to Generate, and streaming (death-order) training admits
// exactly the sites that birth-order training admits.
func TestMatrixStreamingMatchesMaterialized(t *testing.T) {
	cfg := DefaultConfig(testScale)
	r := NewMatrixRunner(cfg)
	for _, j := range []MatrixJob{
		{Model: "gawk", Allocator: "arena", Predictor: "true"},
		{Model: "gawk", Allocator: "arena", Predictor: "self"},
		{Model: "cfrac", Allocator: "firstfit", Predictor: "none"},
	} {
		got, err := r.Run(j, obs.NewCollector(obs.Options{Label: j.String()}))
		if err != nil {
			t.Fatalf("%s: %v", j, err)
		}
		a, err := cfg.Build(synth.ByName(j.Model))
		if err != nil {
			t.Fatalf("%s: %v", j, err)
		}
		var pred *profile.Predictor
		switch j.Predictor {
		case "true":
			pred = a.TrainPredictor
		case "self":
			pred = profile.TrainObjects(a.TestTrace.Table, a.TestObjs, cfg.Profile).Predictor()
		}
		want, err := RunSim(a.TestTrace, MustNewAllocator(j.Allocator), pred,
			obs.NewCollector(obs.Options{Label: j.String()}))
		if err != nil {
			t.Fatalf("%s: %v", j, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("%s: streaming matrix run diverges from materialized run", j)
		}
	}
}

func TestNewAllocatorUnknown(t *testing.T) {
	if _, err := NewAllocator("slab"); err == nil {
		t.Error("unknown allocator accepted")
	}
	if err := (MatrixJob{Model: "gawk", Allocator: "arena", Predictor: "maybe"}).Validate(); err == nil {
		t.Error("bad predictor mode accepted")
	}
}

func TestBenchRoundTripAndDeterminism(t *testing.T) {
	jobs, err := ParseMatrix("gawk/arena,firstfit/true")
	if err != nil {
		t.Fatal(err)
	}
	build := func() *BenchFile {
		r := NewMatrixRunner(DefaultConfig(testScale))
		f := &BenchFile{Label: "test", Scale: testScale, SeedBase: DefaultConfig(testScale).SeedBase}
		for _, res := range r.RunAll(jobs, 2, func(j MatrixJob) *obs.Collector {
			return obs.NewCollector(obs.Options{Label: j.String()})
		}) {
			if res.Err != nil {
				t.Fatalf("job %s: %v", res.Job, res.Err)
			}
			f.Runs = append(f.Runs, NewBenchRun(res.Job, res.Res))
		}
		return f
	}
	var a, b bytes.Buffer
	if err := WriteBench(&a, build()); err != nil {
		t.Fatalf("WriteBench: %v", err)
	}
	if err := WriteBench(&b, build()); err != nil {
		t.Fatalf("WriteBench: %v", err)
	}
	if a.String() != b.String() {
		t.Error("two identical bench runs serialized differently — bench output is nondeterministic")
	}

	f, err := ReadBench(bytes.NewReader(a.Bytes()))
	if err != nil {
		t.Fatalf("ReadBench: %v", err)
	}
	if f.Schema != BenchSchema || len(f.Runs) != len(jobs) {
		t.Errorf("read back schema %d with %d runs", f.Schema, len(f.Runs))
	}
	flat := f.Flatten()
	for _, key := range []string{
		"gawk/arena/true/sim_bytes_per_op",
		"gawk/firstfit/true/sim_max_heap_bytes",
		"gawk/arena/true/clock",
	} {
		if _, ok := flat[key]; !ok {
			t.Errorf("Flatten missing %q", key)
		}
	}
	if f.Runs[0].Ops <= 0 || f.Runs[0].TotalBytes <= 0 {
		t.Errorf("degenerate bench run: %+v", f.Runs[0])
	}

	if _, err := ReadBench(strings.NewReader(`{"label":"x"}`)); err == nil {
		t.Error("schemaless bench file accepted")
	}
	if _, err := ReadBench(strings.NewReader(`{"schema":99}`)); err == nil {
		t.Error("future bench schema accepted")
	}
}
