package core

import (
	"repro/internal/heapsim"
	"repro/internal/obs"
)

// freeSpanBuckets sizes the per-region log2 free-span-length histograms:
// 40 buckets cover spans up to half a terabyte before the overflow
// bucket engages, same budget as the lifetime histograms.
const freeSpanBuckets = 40

// heapScanner turns an allocator's Walker layout into the heap.* obs
// families on every timeline sample. Walkers are read-only by contract,
// so scanning never perturbs the replay — it only spends time
// proportional to the tracked block count at each sampling boundary.
//
// Every gauge, counter, and histogram handle is resolved at creation so
// the families appear (as zeros) in snapshots even when a run never
// fragments — a scrape can tell "no fragmentation" from "scanner off".
type heapScanner struct {
	col  *obs.Collector
	w    heapsim.Walker
	bins int

	scans       *obs.Counter // heap.scan_samples, the enabled marker
	livePayload *obs.Gauge
	headerOv    *obs.Gauge
	internal    *obs.Gauge
	external    *obs.Gauge
	holes       *obs.Gauge
	freeSpans   *obs.Gauge
	largestFree *obs.Gauge

	regions map[string]*regionObs
	cells   []int64 // reusable heatmap bin accumulator
}

// regionObs holds one region's resolved handles plus per-scan scratch.
type regionObs struct {
	live, free, hole, extent *obs.Gauge
	spanLen                  *obs.Histogram

	// per-scan scratch, reset at the top of each scan
	liveB, freeB int64
}

// heapScanStats is one scan's decomposition, copied into the timeline
// sample. The identity
// livePayload + header + internal + external + holes == HeapSize()
// holds because region extents sum to HeapSize (the Walker contract).
type heapScanStats struct {
	livePayload int64 // requested bytes of live objects
	header      int64 // modeled per-object header bytes in live spans
	internal    int64 // live-span padding beyond payload and header
	external    int64 // free-span bytes awaiting reuse
	holes       int64 // region bytes in no span (untiled windows, slab tails)
	freeSpans   int64
	largestFree int64
}

// newHeapScanner resolves every handle for the allocator's region set.
func newHeapScanner(col *obs.Collector, w heapsim.Walker) *heapScanner {
	sc := &heapScanner{
		col:         col,
		w:           w,
		bins:        col.HeatmapBins(),
		scans:       col.Counter("heap.scan_samples"),
		livePayload: col.Gauge("heap.live_payload_bytes"),
		headerOv:    col.Gauge("heap.header_bytes"),
		internal:    col.Gauge("heap.internal_frag_bytes"),
		external:    col.Gauge("heap.external_frag_bytes"),
		holes:       col.Gauge("heap.hole_bytes"),
		freeSpans:   col.Gauge("heap.free_spans"),
		largestFree: col.Gauge("heap.largest_free_span_bytes"),
		regions:     make(map[string]*regionObs),
	}
	sc.cells = make([]int64, sc.bins)
	for _, r := range w.Regions() {
		sc.region(r.Name)
	}
	return sc
}

// region resolves (once) the per-region handles. The region set of every
// simulator is fixed from init, so this is a map hit on the scan path.
func (sc *heapScanner) region(name string) *regionObs {
	ro := sc.regions[name]
	if ro == nil {
		prefix := "heap.region." + name
		ro = &regionObs{
			live:    sc.col.Gauge(prefix + ".live_bytes"),
			free:    sc.col.Gauge(prefix + ".free_bytes"),
			hole:    sc.col.Gauge(prefix + ".hole_bytes"),
			extent:  sc.col.Gauge(prefix + ".extent_bytes"),
			spanLen: sc.col.Log2Histogram("heap.free_span_len."+name, freeSpanBuckets),
		}
		sc.regions[name] = ro
	}
	return ro
}

// packedRegion maps one region window into the heatmap's packed address
// space: [off, off+extent) in heatmap coordinates.
type packedRegion struct {
	base, off, extent, header int64
	ro                        *regionObs
}

// scan walks the layout once, updates every heap.* family, records one
// heatmap row, and returns the decomposition for the timeline sample.
func (sc *heapScanner) scan(clock int64) heapScanStats {
	regs := sc.w.Regions()
	packed := make(map[string]*packedRegion, len(regs))
	var extent int64
	for _, r := range regs {
		ro := sc.region(r.Name)
		ro.liveB, ro.freeB = 0, 0
		packed[r.Name] = &packedRegion{
			base: r.Base, off: extent, extent: r.End - r.Base,
			header: r.Header, ro: ro,
		}
		extent += r.End - r.Base
	}
	for i := range sc.cells {
		sc.cells[i] = 0
	}
	binW := int64(1)
	if sc.bins > 0 && extent > 0 {
		binW = (extent + int64(sc.bins) - 1) / int64(sc.bins)
	}

	var st heapScanStats
	// The emit callback never returns an error, so Walk cannot fail.
	sc.w.Walk(func(s heapsim.Span) error {
		pr := packed[s.Region]
		if pr == nil {
			return nil // span outside any declared region; auditor territory
		}
		if s.Free {
			st.external += s.Size
			st.freeSpans++
			if s.Size > st.largestFree {
				st.largestFree = s.Size
			}
			pr.ro.freeB += s.Size
			pr.ro.spanLen.Observe(s.Size)
			return nil
		}
		payload := s.Payload
		if payload < 0 {
			payload = 0 // orphan block: all overhead, no payload
		}
		over := s.Size - payload
		hdr := pr.header
		if hdr > over {
			hdr = over
		}
		st.livePayload += payload
		st.header += hdr
		st.internal += over - hdr
		pr.ro.liveB += s.Size
		// Heatmap: spread the live block's bytes over the bins its packed
		// address range overlaps.
		if extent > 0 && sc.bins > 0 {
			p0 := pr.off + (s.Addr - pr.base)
			p1 := p0 + s.Size
			if p0 < 0 {
				p0 = 0
			}
			if p1 > extent {
				p1 = extent
			}
			for b := p0 / binW; b*binW < p1 && b < int64(sc.bins); b++ {
				lo, hi := b*binW, (b+1)*binW
				if lo < p0 {
					lo = p0
				}
				if hi > p1 {
					hi = p1
				}
				sc.cells[b] += hi - lo
			}
		}
		return nil
	})

	for _, r := range regs {
		pr := packed[r.Name]
		hole := pr.extent - pr.ro.liveB - pr.ro.freeB
		st.holes += hole
		pr.ro.live.Set(pr.ro.liveB)
		pr.ro.free.Set(pr.ro.freeB)
		pr.ro.hole.Set(hole)
		pr.ro.extent.Set(pr.extent)
	}
	sc.livePayload.Set(st.livePayload)
	sc.headerOv.Set(st.header)
	sc.internal.Set(st.internal)
	sc.external.Set(st.external)
	sc.holes.Set(st.holes)
	sc.freeSpans.Set(st.freeSpans)
	sc.largestFree.Set(st.largestFree)
	sc.scans.Add(1)

	sc.col.RecordHeatmapRow(obs.HeatmapRow{
		Clock:  clock,
		Extent: extent,
		Cells:  append([]int64(nil), sc.cells...),
	})
	return st
}
