package core_test

import (
	"testing"

	"repro/internal/check"
	"repro/internal/core"
	"repro/internal/heapsim"
	"repro/internal/synth"
	"repro/internal/trace"
)

// TestExperimentWiringPassesConformance replays one model's Test trace —
// with the same predictor mapping and CUSTOMALLOC hot sizes the paper
// experiments use — through the internal/check auditor for every
// allocator. This is the glue test between the experiment pipeline and
// the conformance harness: if Build's artifacts ever stop satisfying the
// heap invariants, the tables built on them are meaningless.
func TestExperimentWiringPassesConformance(t *testing.T) {
	if testing.Short() {
		t.Skip("conformance replay of a model trace is slow in -short mode")
	}
	cfg := core.DefaultConfig(0.002)
	a, err := cfg.Build(synth.ByName("ghost"))
	if err != nil {
		t.Fatal(err)
	}
	mapper := a.TrainPredictor.NewMapper(a.TestTrace.Table)
	hot := a.TrainDB.TopSizes(16)
	fs, err := check.Factories()
	if err != nil {
		t.Fatal(err)
	}
	for i := range fs {
		if fs[i].Name == "custom" && len(hot) > 0 {
			fs[i].New = func() heapsim.Allocator { return heapsim.NewCustom(hot) }
		}
	}
	opt := check.Options{Stride: 64, Predict: mapper.PredictShort}
	for _, f := range fs {
		if err := check.Audit(trace.NewSliceSource(a.TestTrace), f.Name, f.New(), opt); err != nil {
			t.Errorf("%s: %v", f.Name, err)
		}
	}
	if err := check.Diff(trace.NewSliceSource(a.TestTrace), fs, opt); err != nil {
		t.Errorf("differential replay: %v", err)
	}
}
