package core

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"sync/atomic"
	"testing"
)

// TestTournamentDeterministicAcrossWorkerCounts is the tournament's core
// acceptance property: the rendered report (and every scored cell) is
// byte-identical at any worker count. Two programs keep the -race tier
// fast while still crossing every policy with every allocator.
func TestTournamentDeterministicAcrossWorkerCounts(t *testing.T) {
	eng := newTestEngine()
	programs := []string{"cfrac", "gawk"}
	nCells := len(OraclePolicies()) * len(TournamentAllocators) * len(programs)

	var ref *TournamentResult
	for _, workers := range []int{1, 4, nCells} {
		res, err := eng.RunTournament(TournamentSpec{Programs: programs, Workers: workers})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(res.Cells) != nCells {
			t.Fatalf("workers=%d: %d cells, want %d", workers, len(res.Cells), nCells)
		}
		if ref == nil {
			ref = res
			continue
		}
		if !bytes.Equal(res.Output, ref.Output) {
			t.Errorf("workers=%d: output differs from workers=1:\n%s", workers, firstDiffLine(ref.Output, res.Output))
		}
		for i := range res.Cells {
			if res.Cells[i] != ref.Cells[i] {
				t.Errorf("workers=%d: cell %d = %+v, want %+v", workers, i, res.Cells[i], ref.Cells[i])
			}
		}
	}
}

// firstDiffLine locates the first line where two renderings diverge.
func firstDiffLine(a, b []byte) string {
	al := strings.Split(string(a), "\n")
	bl := strings.Split(string(b), "\n")
	for i := 0; i < len(al) && i < len(bl); i++ {
		if al[i] != bl[i] {
			return fmt.Sprintf("line %d: %q != %q", i+1, al[i], bl[i])
		}
	}
	return "length mismatch"
}

// TestTournamentReportShape pins the structural claims the report makes:
// every policy × allocator pair appears exactly once in the ranking,
// ranks are 1..N, and a winner exists with the lowest mean fragmentation.
func TestTournamentReportShape(t *testing.T) {
	eng := newTestEngine()
	res, err := eng.RunTournament(TournamentSpec{Programs: []string{"cfrac"}, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	nPairs := len(OraclePolicies()) * len(TournamentAllocators)
	if len(res.Ranks) != nPairs {
		t.Fatalf("%d ranked pairs, want %d", len(res.Ranks), nPairs)
	}
	seen := make(map[string]bool, nPairs)
	for i, r := range res.Ranks {
		if r.Rank != i+1 {
			t.Errorf("rank %d at position %d", r.Rank, i)
		}
		k := r.Policy + "/" + r.Allocator
		if seen[k] {
			t.Errorf("pair %s ranked twice", k)
		}
		seen[k] = true
		if i > 0 && r.MeanFragPct < res.Ranks[i-1].MeanFragPct {
			t.Errorf("ranking not sorted: %s frag %.4f after %.4f",
				k, r.MeanFragPct, res.Ranks[i-1].MeanFragPct)
		}
	}
	out := string(res.Output)
	for _, want := range append(PolicyNames(), TournamentAllocators...) {
		if !strings.Contains(out, want) {
			t.Errorf("report does not mention %s", want)
		}
	}
}

// TestTournamentGateRuns: the injected conformance hook runs before any
// cell, and a failing gate aborts the tournament.
func TestTournamentGateRuns(t *testing.T) {
	eng := newTestEngine()
	var calls atomic.Int64
	boom := errors.New("allocator zoo failed conformance")
	_, err := eng.RunTournament(TournamentSpec{
		Programs: []string{"cfrac"},
		Gate:     func() error { calls.Add(1); return boom },
	})
	if !errors.Is(err, boom) {
		t.Fatalf("gate error not propagated: %v", err)
	}
	if calls.Load() != 1 {
		t.Fatalf("gate ran %d times, want 1", calls.Load())
	}
}

// TestTournamentAccuracyAllocatorIndependent: predictions depend only on
// the oracle and the trace, so accuracy must agree across every
// allocator of a (program, policy) row — the report's accuracy table
// relies on this.
func TestTournamentAccuracyAllocatorIndependent(t *testing.T) {
	eng := newTestEngine()
	res, err := eng.RunTournament(TournamentSpec{Programs: []string{"espresso"}, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	byPolicy := make(map[string]TournamentCell)
	for _, c := range res.Cells {
		ref, ok := byPolicy[c.Policy]
		if !ok {
			byPolicy[c.Policy] = c
			continue
		}
		if c.AccuracyPct != ref.AccuracyPct || c.FPBytes != ref.FPBytes || c.FPCost != ref.FPCost {
			t.Errorf("%s/%s accuracy (%.4f, %d, %d) != %s's (%.4f, %d, %d)",
				c.Policy, c.Allocator, c.AccuracyPct, c.FPBytes, c.FPCost,
				ref.Allocator, ref.AccuracyPct, ref.FPBytes, ref.FPCost)
		}
	}
	if len(byPolicy) != len(OraclePolicies()) {
		t.Fatalf("saw %d policies, want %d", len(byPolicy), len(OraclePolicies()))
	}
}
