package core

import (
	"encoding/json"
	"io"
	"sort"
)

// TraceEvent is one Chrome trace_event "complete" event (ph "X"): the
// JSON shape chrome://tracing and Perfetto load directly. Timestamps and
// durations are microseconds from the engine run's start.
type TraceEvent struct {
	Name string `json:"name"`
	Cat  string `json:"cat"`
	Ph   string `json:"ph"`
	Ts   int64  `json:"ts"`
	Dur  int64  `json:"dur"`
	Pid  int    `json:"pid"`
	Tid  int    `json:"tid"`
}

// chromeTrace is the trace_event container object.
type chromeTrace struct {
	TraceEvents     []TraceEvent `json:"traceEvents"`
	DisplayTimeUnit string       `json:"displayTimeUnit"`
}

// TraceEvents converts the run's cell timings into Chrome trace events.
// Tids are lanes: each event takes the lowest lane that was free at its
// start time, so concurrent cells land on different rows and the
// schedule's overlap is visible instead of inferred from totals.
func (r *RunResult) TraceEvents() []TraceEvent {
	idx := make([]int, len(r.Timings))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return r.Timings[idx[a]].Start < r.Timings[idx[b]].Start
	})
	events := make([]TraceEvent, 0, len(r.Timings))
	var laneEnd []int64 // per-lane busy-until, microseconds
	for _, i := range idx {
		t := r.Timings[i]
		ts := t.Start.Microseconds()
		dur := t.Dur.Microseconds()
		lane := -1
		for l, end := range laneEnd {
			if end <= ts {
				lane = l
				break
			}
		}
		if lane < 0 {
			lane = len(laneEnd)
			laneEnd = append(laneEnd, 0)
		}
		laneEnd[lane] = ts + dur
		cat := "cell"
		if t.Cell == "build" {
			cat = "build"
		}
		events = append(events, TraceEvent{
			Name: t.Program + "/" + t.Cell,
			Cat:  cat,
			Ph:   "X",
			Ts:   ts,
			Dur:  dur,
			Pid:  1,
			Tid:  lane + 1,
		})
	}
	return events
}

// WriteChromeTrace writes the run's schedule in the Chrome trace_event
// JSON format; load the file in Perfetto or chrome://tracing to see
// per-lane cell overlap.
func (r *RunResult) WriteChromeTrace(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(chromeTrace{
		TraceEvents:     r.TraceEvents(),
		DisplayTimeUnit: "ms",
	})
}
