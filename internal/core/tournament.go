package core

import (
	"bytes"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"time"

	"repro/internal/callchain"
	"repro/internal/heapsim"
	"repro/internal/obs"
	"repro/internal/profile"
	"repro/internal/table"
	"repro/internal/trace"
)

// This file is the tournament runner: every registered prediction policy
// (the profile zoo) crossed with every simulated allocator, replayed over
// each program's Test input, scored, and ranked. It reuses the engine's
// per-program Artifacts cache — one build and one warm per program no
// matter how many policy × allocator cells run — and the same bounded
// worker pool + deterministic-assembly discipline as Engine.Run, so the
// rendered report is byte-identical at any worker count.

// TournamentAllocators lists every simulator a tournament drives, in
// report order: the four standard-matrix allocators plus segfit, the
// sited arena, and the per-size custom allocator (hot sizes derived from
// the training profile, as in the paper's custom configuration).
var TournamentAllocators = []string{
	"firstfit", "bestfit", "bsd", "arena", "segfit", "sitearena", "custom",
}

// OraclePolicy is one tournament predictor: a name and a trainer over a
// program's built artifacts. The returned Oracle keys chains in the
// Train trace's table; cells bind it to the Test table per replay.
type OraclePolicy struct {
	Name  string
	Train func(a *Artifacts, cfg profile.Config) (profile.Oracle, error)
}

// OraclePolicies returns the tournament's policy registry: every zoo
// trainer, each training on the model's Train input (the paper's honest
// configuration — never the measured input itself).
func OraclePolicies() []OraclePolicy {
	zs := profile.ZooTrainers()
	out := make([]OraclePolicy, len(zs))
	for i, z := range zs {
		z := z
		out[i] = OraclePolicy{
			Name: z.Name,
			Train: func(a *Artifacts, cfg profile.Config) (profile.Oracle, error) {
				return z.Train(a.TrainTrace, cfg)
			},
		}
	}
	return out
}

// PolicyNames lists the registered tournament policies in report order.
func PolicyNames() []string {
	ps := OraclePolicies()
	names := make([]string, len(ps))
	for i, p := range ps {
		names[i] = p.Name
	}
	return names
}

// newTournamentAllocator builds a fresh simulator for one cell. The two
// profile-driven allocators need the program's artifacts: custom derives
// its hot size classes from the training profile, sitearena is driven by
// the replay's per-allocation hints.
func newTournamentAllocator(name string, a *Artifacts) (heapsim.Allocator, error) {
	switch name {
	case "sitearena":
		return heapsim.NewSiteArena(), nil
	case "custom":
		return heapsim.NewCustom(a.TrainDB.TopSizes(16)), nil
	}
	return NewAllocator(name)
}

// TournamentSpec selects and gates one tournament run.
type TournamentSpec struct {
	// Programs subsets the configured models by name (canonical order is
	// always used for output). Nil or empty runs every model.
	Programs []string
	// Workers bounds how many cells run at once; values below 1 clamp to
	// GOMAXPROCS. The rendered report is identical at any value.
	Workers int
	// Gate, when non-nil, runs before any cell: it is the conformance
	// hook (internal/check's differential suite over every policy and
	// allocator) that every participant must pass before the tournament
	// scores it. A gate error aborts the run. The hook is injected here
	// because check imports core for the block/scalar equivalence replay,
	// so core cannot import check; cmd/lptables wires check.RunOracles in.
	Gate func() error
	// Collector, when non-nil, accrues wall-clock timing families
	// ("tournament_cell") as cells complete.
	Collector *obs.Collector
	// Progress, when non-nil, receives one line per scheduling milestone.
	// Calls may come from worker goroutines.
	Progress func(msg string)
}

// TournamentCell is one scored (program, policy, allocator) replay.
type TournamentCell struct {
	Program   string
	Policy    string
	Allocator string
	// FragPeakPct is the worst 1 - live/heap point on the replay
	// timeline, in percent.
	FragPeakPct float64
	// AccuracyPct is the byte-weighted prediction accuracy:
	// (TP+TN bytes) / all allocated bytes, in percent.
	AccuracyPct float64
	// FPBytes counts bytes predicted short that lived long.
	FPBytes int64
	// FPCost is the misprediction cost in byte-lifetime units: for each
	// false positive, lifetime beyond the threshold times size.
	FPCost  int64
	MaxHeap int64
}

// TournamentRank aggregates one (policy, allocator) pair across all
// programs: the tournament's ranked unit.
type TournamentRank struct {
	Rank        int
	Policy      string
	Allocator   string
	MeanFragPct float64
	MeanAccPct  float64
	FPCost      int64 // summed across programs
}

// TournamentResult is one run's deterministic output.
type TournamentResult struct {
	// Output is the rendered report — byte-identical for a given
	// (Config, Programs) at any worker count.
	Output []byte
	Cells  []TournamentCell
	Ranks  []TournamentRank
	Wall   time.Duration
}

// siteKeyer is the routing face a sited replay needs: the mapped site
// key (in the oracle's own table) plus the admit verdict per allocation.
// Both *profile.Mapper and *profile.SiteMapper implement it, so every
// cross-table binding BindOracle produces can route a SiteArena.
type siteKeyer interface {
	Site(raw callchain.ChainID, size int64) (profile.SiteKey, bool)
}

// runSimSitedOracle is RunSimSited generalized over the policy zoo:
// predicted-short allocations route to their site's own pool, with the
// pool identity folded from the oracle-side site key exactly as the
// paper-predictor sited replay does.
func runSimSitedOracle(tr *trace.Trace, alloc *heapsim.SiteArena, keyer siteKeyer, oracle profile.Oracle, col *obs.Collector) (SimResult, error) {
	var ot *obsTracker
	if col != nil {
		ot = newObsTracker(col, alloc, len(tr.Events), oracle.ShortThreshold())
	}
	res := SimResult{}
	for i, ev := range tr.Events {
		short := false
		switch ev.Kind {
		case trace.KindAlloc:
			var key profile.SiteKey
			key, short = keyer.Site(ev.Chain, ev.Size)
			var err error
			if short {
				id := (uint64(key.Chain)+1)*0x9e3779b97f4a7c15 ^
					uint64(key.Size)*0xc2b2ae3d27d4eb4f
				err = alloc.AllocAt(ev.Obj, ev.Size, id)
			} else {
				err = alloc.Alloc(ev.Obj, ev.Size, false)
			}
			if err != nil {
				return res, fmt.Errorf("core: event %d: %w", i, err)
			}
			res.TotalAllocs++
			res.TotalBytes += ev.Size
		case trace.KindFree:
			if err := alloc.Free(ev.Obj); err != nil {
				return res, fmt.Errorf("core: event %d: %w", i, err)
			}
		default:
			return res, fmt.Errorf("core: event %d: bad kind %d", i, ev.Kind)
		}
		if ot != nil {
			ot.step(ev, short)
		}
	}
	finishSim(&res, alloc)
	res.PinnedArenas = alloc.PinnedPools()
	if ot != nil {
		res.Obs = ot.finish(tr.Program, tr.Table)
	}
	return res, nil
}

// runTournamentCell replays one cell: bind the policy's oracle to the
// Test table (a fresh mapper per cell — mappers memoize and are not
// goroutine-safe; the shared tables were pre-warmed by warmArtifacts so
// binding only performs read-only lookups), drive a fresh allocator, and
// score the snapshot.
func runTournamentCell(a *Artifacts, policy string, oracle profile.Oracle, allocName string) (TournamentCell, error) {
	cell := TournamentCell{Program: a.Model.Name, Policy: policy, Allocator: allocName}
	alloc, err := newTournamentAllocator(allocName, a)
	if err != nil {
		return cell, err
	}
	bound := profile.BindOracle(oracle, a.TestTrace.Table)
	col := obs.NewCollector(obs.Options{Label: a.Model.Name + "/" + policy + "/" + allocName})
	var res SimResult
	if sa, ok := alloc.(*heapsim.SiteArena); ok {
		keyer, ok := bound.(siteKeyer)
		if !ok {
			return cell, fmt.Errorf("policy %s binding %T cannot route a sited arena", policy, bound)
		}
		res, err = runSimSitedOracle(a.TestTrace, sa, keyer, bound, col)
	} else {
		res, err = RunSimOracle(trace.NewSliceSource(a.TestTrace), alloc, bound, col)
	}
	if err != nil {
		return cell, err
	}
	m := res.Obs.Flatten()
	tp, fp := m["pred.tp_bytes"], m["pred.fp_bytes"]
	fn, tn := m["pred.fn_bytes"], m["pred.tn_bytes"]
	if total := tp + fp + fn + tn; total > 0 {
		cell.AccuracyPct = 100 * (tp + tn) / total
	}
	cell.FPBytes = int64(fp)
	cell.FPCost = int64(m["pred.fp_cost_bytelife"])
	cell.FragPeakPct = res.Obs.FragPeakPct()
	cell.MaxHeap = res.MaxHeap
	return cell, nil
}

// RunTournament gates, schedules, scores, and ranks the full policy ×
// allocator matrix over the spec's programs. Per program the build and
// all policy training run single-threaded (chain tables are not
// goroutine-safe); the cells then fan out on the worker pool, and the
// report is assembled in fixed order afterwards.
func (e *Engine) RunTournament(spec TournamentSpec) (*TournamentResult, error) {
	start := time.Now()
	progress := spec.Progress
	if progress == nil {
		progress = func(string) {}
	}
	if spec.Gate != nil {
		progress("running conformance gate...")
		if err := spec.Gate(); err != nil {
			return nil, fmt.Errorf("core: tournament gate: %w", err)
		}
		progress("conformance gate passed")
	}
	models, err := e.selectModels(spec.Programs)
	if err != nil {
		return nil, err
	}
	policies := OraclePolicies()
	allocs := TournamentAllocators

	workers := spec.Workers
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}

	nCell := len(policies) * len(allocs)
	type slot struct {
		cell TournamentCell
		err  error
	}
	slots := make([]slot, len(models)*nCell)
	buildErr := make([]error, len(models))

	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for pi, m := range models {
		pi, m := pi, m
		wg.Add(1)
		go func() {
			defer wg.Done()
			sem <- struct{}{}
			progress(fmt.Sprintf("building %s and training %d policies...", m.Name, len(policies)))
			a, err := e.Artifacts(m.Name)
			oracles := make([]profile.Oracle, len(policies))
			if err == nil {
				for qi, p := range policies {
					if oracles[qi], err = p.Train(a, e.cfg.Profile); err != nil {
						err = fmt.Errorf("training %s: %w", p.Name, err)
						break
					}
				}
			}
			<-sem
			if err != nil {
				buildErr[pi] = err
				return
			}
			for qi := range policies {
				for ai := range allocs {
					qi, ai := qi, ai
					wg.Add(1)
					go func() {
						defer wg.Done()
						sem <- struct{}{}
						defer func() { <-sem }()
						t0 := time.Now()
						s := &slots[pi*nCell+qi*len(allocs)+ai]
						s.cell, s.err = runTournamentCell(a, policies[qi].Name, oracles[qi], allocs[ai])
						spec.Collector.ObserveTiming("tournament_cell", time.Since(t0))
					}()
				}
			}
		}()
	}
	wg.Wait()

	for pi, m := range models {
		if buildErr[pi] != nil {
			return nil, fmt.Errorf("core: building %s: %w", m.Name, buildErr[pi])
		}
	}
	cells := make([]TournamentCell, 0, len(slots))
	for pi, m := range models {
		for ci := 0; ci < nCell; ci++ {
			s := &slots[pi*nCell+ci]
			if s.err != nil {
				return nil, fmt.Errorf("core: %s cell %s/%s: %w",
					m.Name, policies[ci/len(allocs)].Name, allocs[ci%len(allocs)], s.err)
			}
			cells = append(cells, s.cell)
		}
	}

	ranks := rankTournament(cells, policies, allocs, len(models))

	// Render: per-program accuracy (allocator-independent — predictions
	// depend only on the oracle and the trace, so the firstfit column
	// speaks for the pair), then the ranked pair table.
	var buf bytes.Buffer
	acc := table.New("Tournament: prediction accuracy by policy (Test input, trained on Train)",
		"program", "policy", "accuracy %", "FP bytes", "FP cost (byte-life)")
	for pi := range models {
		for qi, p := range policies {
			c := cells[pi*nCell+qi*len(allocs)] // allocator 0 = firstfit
			acc.RowStrings(c.Program, p.Name,
				fmt.Sprintf("%.2f", c.AccuracyPct),
				fmt.Sprintf("%d", c.FPBytes),
				fmt.Sprintf("%d", c.FPCost))
		}
	}
	if _, err := acc.WriteTo(&buf); err != nil {
		return nil, fmt.Errorf("core: rendering tournament accuracy: %w", err)
	}
	rk := table.New("Tournament: policy x allocator ranking (mean over programs, best first)",
		"rank", "policy", "allocator", "frag peak %", "accuracy %", "FP cost (byte-life)")
	for _, r := range ranks {
		rk.RowStrings(fmt.Sprintf("%d", r.Rank), r.Policy, r.Allocator,
			fmt.Sprintf("%.2f", r.MeanFragPct),
			fmt.Sprintf("%.2f", r.MeanAccPct),
			fmt.Sprintf("%d", r.FPCost))
	}
	if _, err := rk.WriteTo(&buf); err != nil {
		return nil, fmt.Errorf("core: rendering tournament ranking: %w", err)
	}

	return &TournamentResult{
		Output: buf.Bytes(),
		Cells:  cells,
		Ranks:  ranks,
		Wall:   time.Since(start),
	}, nil
}

// rankTournament aggregates cells into per-(policy, allocator) means and
// orders them best first: lowest mean fragmentation, then highest
// accuracy, then lowest misprediction cost, then registry order — every
// key deterministic, so the ranking is too.
func rankTournament(cells []TournamentCell, policies []OraclePolicy, allocs []string, nModels int) []TournamentRank {
	nCell := len(policies) * len(allocs)
	ranks := make([]TournamentRank, 0, nCell)
	for qi, p := range policies {
		for ai, al := range allocs {
			r := TournamentRank{Policy: p.Name, Allocator: al}
			for pi := 0; pi < nModels; pi++ {
				c := cells[pi*nCell+qi*len(allocs)+ai]
				r.MeanFragPct += c.FragPeakPct
				r.MeanAccPct += c.AccuracyPct
				r.FPCost += c.FPCost
			}
			if nModels > 0 {
				r.MeanFragPct /= float64(nModels)
				r.MeanAccPct /= float64(nModels)
			}
			ranks = append(ranks, r)
		}
	}
	sort.SliceStable(ranks, func(a, b int) bool {
		ra, rb := ranks[a], ranks[b]
		if ra.MeanFragPct != rb.MeanFragPct {
			return ra.MeanFragPct < rb.MeanFragPct
		}
		if ra.MeanAccPct != rb.MeanAccPct {
			return ra.MeanAccPct > rb.MeanAccPct
		}
		return ra.FPCost < rb.FPCost
	})
	for i := range ranks {
		ranks[i].Rank = i + 1
	}
	return ranks
}
