package core

import (
	"reflect"
	"testing"

	"repro/internal/heapsim"
	"repro/internal/obs"
	"repro/internal/synth"
)

// TestNilCollectorIdentical is the acceptance gate for the observability
// layer: attaching a collector must not change a single SimResult value.
// Every model runs twice per allocator — bare and observed — and the
// results must match field-for-field once the snapshot is stripped.
func TestNilCollectorIdentical(t *testing.T) {
	for _, name := range ProgramOrder {
		a := buildArtifacts(t, name)
		allocs := map[string]func() heapsim.Allocator{
			"firstfit": func() heapsim.Allocator { return heapsim.NewFirstFit() },
			"bestfit":  func() heapsim.Allocator { return heapsim.NewBestFit() },
			"bsd":      func() heapsim.Allocator { return heapsim.NewBSD() },
			"arena":    func() heapsim.Allocator { return heapsim.NewArena() },
		}
		for aname, mk := range allocs {
			bare, err := RunSim(a.TestTrace, mk(), a.TrainPredictor)
			if err != nil {
				t.Fatalf("%s/%s bare: %v", name, aname, err)
			}
			col := obs.NewCollector(obs.Options{Label: name + "/" + aname})
			observed, err := RunSim(a.TestTrace, mk(), a.TrainPredictor, col)
			if err != nil {
				t.Fatalf("%s/%s observed: %v", name, aname, err)
			}
			if observed.Obs == nil {
				t.Fatalf("%s/%s: observed run has no snapshot", name, aname)
			}
			observed.Obs = nil
			if !reflect.DeepEqual(bare, observed) {
				t.Errorf("%s/%s: observed SimResult differs:\n bare %+v\n obsd %+v",
					name, aname, bare, observed)
			}
		}
		// Sited replay too.
		bare, err := RunSimSited(a.TestTrace, heapsim.NewSiteArena(), a.TrainPredictor)
		if err != nil {
			t.Fatalf("%s/sitearena bare: %v", name, err)
		}
		col := obs.NewCollector(obs.Options{})
		observed, err := RunSimSited(a.TestTrace, heapsim.NewSiteArena(), a.TrainPredictor, col)
		if err != nil {
			t.Fatalf("%s/sitearena observed: %v", name, err)
		}
		if observed.Obs == nil {
			t.Fatalf("%s/sitearena: observed run has no snapshot", name)
		}
		observed.Obs = nil
		if !reflect.DeepEqual(bare, observed) {
			t.Errorf("%s/sitearena: observed SimResult differs", name)
		}
	}
}

// TestObservedRunSim checks the snapshot core attaches: identity fields,
// the timeline, quartile phases, and the site ranking.
func TestObservedRunSim(t *testing.T) {
	a := buildArtifacts(t, "gawk")
	col := obs.NewCollector(obs.Options{TimelineInterval: 16 << 10})
	res, err := RunSim(a.TestTrace, heapsim.NewArena(), a.TrainPredictor, col)
	if err != nil {
		t.Fatal(err)
	}
	s := res.Obs
	if s == nil {
		t.Fatal("no snapshot")
	}
	if s.Program != "gawk" || s.Allocator != "arena" {
		t.Errorf("identity = %q/%q, want gawk/arena", s.Program, s.Allocator)
	}
	if s.Clock != res.TotalBytes {
		t.Errorf("clock = %d, want total bytes %d", s.Clock, res.TotalBytes)
	}
	if len(s.Timeline) == 0 {
		t.Fatal("no timeline samples")
	}
	last := s.Timeline[len(s.Timeline)-1]
	if last.Clock != res.TotalBytes {
		t.Errorf("final sample clock = %d, want %d", last.Clock, res.TotalBytes)
	}
	for i, p := range s.Timeline {
		if p.HeapBytes <= 0 {
			t.Errorf("sample %d: heap = %d", i, p.HeapBytes)
		}
		if p.LiveBytes < 0 || p.LiveBytes > p.HeapBytes {
			t.Errorf("sample %d: live %d outside [0,heap=%d]", i, p.LiveBytes, p.HeapBytes)
		}
		if p.ArenaOccupancy < 0 || p.ArenaOccupancy > 1 {
			t.Errorf("sample %d: occupancy %g outside [0,1]", i, p.ArenaOccupancy)
		}
	}
	// Quartile phases: 25%, 50%, 75%, end — in clock order.
	if len(s.Phases) != 4 {
		t.Fatalf("phases = %d (%v), want 4", len(s.Phases), s.Phases)
	}
	wantLabels := []string{"25%", "50%", "75%", "end"}
	for i, ph := range s.Phases {
		if ph.Label != wantLabels[i] {
			t.Errorf("phase %d label = %q, want %q", i, ph.Label, wantLabels[i])
		}
		if i > 0 && ph.Clock < s.Phases[i-1].Clock {
			t.Errorf("phase clocks out of order: %d then %d", s.Phases[i-1].Clock, ph.Clock)
		}
	}
	// Sites are ranked by bytes, descending, at most maxObsSites.
	if len(s.Sites) == 0 {
		t.Fatal("no site ranking")
	}
	if len(s.Sites) > maxObsSites {
		t.Errorf("sites = %d, want <= %d", len(s.Sites), maxObsSites)
	}
	for i := 1; i < len(s.Sites); i++ {
		if s.Sites[i].Bytes > s.Sites[i-1].Bytes {
			t.Errorf("sites not sorted by bytes at %d", i)
		}
	}
	if s.Sites[0].Site == "" {
		t.Error("top site has no rendered chain")
	}
}

// TestRunSimSourceIdentity is the tentpole acceptance gate: for every
// model, replaying a streaming synth.Source through RunSimSource must
// produce a SimResult — observability snapshot included — identical to
// the slice-based replay of the materialized trace.
func TestRunSimSourceIdentity(t *testing.T) {
	for _, name := range ProgramOrder {
		m := synth.ByName(name)
		gcfg := synth.Config{Input: synth.Test, Seed: 7, Scale: 0.01}
		tr, err := m.Generate(gcfg)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		for _, aname := range AllocatorNames {
			want, err := RunSim(tr, MustNewAllocator(aname), nil,
				obs.NewCollector(obs.Options{Label: name}))
			if err != nil {
				t.Fatalf("%s/%s slice: %v", name, aname, err)
			}
			src, err := m.Source(gcfg)
			if err != nil {
				t.Fatalf("%s/%s: %v", name, aname, err)
			}
			src.SetCount(len(tr.Events))
			got, err := RunSimSource(src, MustNewAllocator(aname), nil,
				obs.NewCollector(obs.Options{Label: name}))
			if err != nil {
				t.Fatalf("%s/%s stream: %v", name, aname, err)
			}
			if !reflect.DeepEqual(got, want) {
				t.Errorf("%s/%s: streaming SimResult diverges from slice replay", name, aname)
			}
		}
	}
}

// TestObservedRunSimStream checks the streaming replay produces the
// complete snapshot — the counting dry run supplies the event count, so
// the quartile phase marks land exactly where the materialized path puts
// them — and that the whole observed SimResult, snapshot included, is
// identical to replaying the materialized trace.
func TestObservedRunSimStream(t *testing.T) {
	m := synth.ByName("cfrac")
	gcfg := synth.Config{Input: synth.Test, Seed: 7, Scale: 0.01}
	col := obs.NewCollector(obs.Options{})
	res, err := RunSimStream(m, gcfg, heapsim.NewFirstFit(), nil, col)
	if err != nil {
		t.Fatal(err)
	}
	s := res.Obs
	if s == nil {
		t.Fatal("no snapshot")
	}
	if s.Program != "cfrac" {
		t.Errorf("program = %q", s.Program)
	}
	wantLabels := []string{"25%", "50%", "75%", "end"}
	if len(s.Phases) != len(wantLabels) {
		t.Fatalf("stream phases = %+v, want %v", s.Phases, wantLabels)
	}
	for i, ph := range s.Phases {
		if ph.Label != wantLabels[i] {
			t.Errorf("phase %d label = %q, want %q", i, ph.Label, wantLabels[i])
		}
	}
	if len(s.Timeline) == 0 {
		t.Error("no timeline samples")
	}

	// Streaming and materialized observed replays of the same generator
	// must agree on everything, the snapshot included.
	tr, err := m.Generate(gcfg)
	if err != nil {
		t.Fatal(err)
	}
	mat, err := RunSim(tr, heapsim.NewFirstFit(), nil, obs.NewCollector(obs.Options{}))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res, mat) {
		t.Errorf("observed stream diverges from materialized:\n stream %+v\n mater  %+v", res, mat)
	}
}
