package core

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/heapsim"
	"repro/internal/obs"
	"repro/internal/obs/expfmt"
	"repro/internal/synth"
)

// TestHeapScanReconcilesLedger walks every simulator's span layout at each
// timeline sample and checks the scanner's decomposition against the
// replay's own byte ledger:
//
//	live_payload            == timeline LiveBytes (two independent paths)
//	payload+header+internal
//	  +external+holes       == HeapBytes (the decomposition is exhaustive)
//	Σ heatmap cells         == bytes inside live spans
func TestHeapScanReconcilesLedger(t *testing.T) {
	cfg := DefaultConfig(0.01)
	a, err := cfg.Build(synth.ByName("gawk"))
	if err != nil {
		t.Fatal(err)
	}
	hot := a.TrainDB.TopSizes(16)

	cases := []struct {
		name  string
		alloc heapsim.Allocator
	}{
		{"firstfit", heapsim.NewFirstFit()},
		{"bestfit", heapsim.NewBestFit()},
		{"bsd", heapsim.NewBSD()},
		{"arena", heapsim.NewArena()},
		{"custom", heapsim.NewCustom(hot)},
		{"sitearena", heapsim.NewSiteArena()},
		{"segfit", heapsim.NewSegFit()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			col := obs.NewCollector(obs.Options{Label: tc.name, HeapScan: true})
			var err error
			if sa, ok := tc.alloc.(*heapsim.SiteArena); ok {
				_, err = RunSimSited(a.TestTrace, sa, a.TrainPredictor, col)
			} else {
				_, err = RunSim(a.TestTrace, tc.alloc, a.TrainPredictor, col)
			}
			if err != nil {
				t.Fatal(err)
			}
			s := col.Snapshot()
			if len(s.Timeline) == 0 {
				t.Fatal("no timeline samples")
			}
			if got := s.Counters["heap.scan_samples"]; got != int64(len(s.Timeline)) {
				t.Errorf("heap.scan_samples = %d, timeline has %d samples", got, len(s.Timeline))
			}
			if s.Heatmap == nil || len(s.Heatmap.Rows) != len(s.Timeline) {
				t.Fatalf("heatmap rows = %v, want one per timeline sample", s.Heatmap)
			}
			for i, smp := range s.Timeline {
				if smp.HeapLivePayload != smp.LiveBytes {
					t.Errorf("sample %d: walked payload %d != ledger live %d",
						i, smp.HeapLivePayload, smp.LiveBytes)
				}
				sum := smp.HeapLivePayload + smp.HeapHeaderBytes + smp.HeapInternalFrag +
					smp.HeapExternalFrag + smp.HeapHoleBytes
				if sum != smp.HeapBytes {
					t.Errorf("sample %d: decomposition sums to %d, heap is %d "+
						"(payload=%d header=%d internal=%d external=%d holes=%d)",
						i, sum, smp.HeapBytes, smp.HeapLivePayload, smp.HeapHeaderBytes,
						smp.HeapInternalFrag, smp.HeapExternalFrag, smp.HeapHoleBytes)
				}
				row := s.Heatmap.Rows[i]
				if row.Clock != smp.Clock {
					t.Errorf("heatmap row %d clock %d != sample clock %d", i, row.Clock, smp.Clock)
				}
				liveSpanBytes := smp.HeapLivePayload + smp.HeapHeaderBytes + smp.HeapInternalFrag
				var cellSum int64
				for _, c := range row.Cells {
					cellSum += c
				}
				if cellSum != liveSpanBytes {
					t.Errorf("heatmap row %d sums to %d, live spans hold %d", i, cellSum, liveSpanBytes)
				}
				if row.Extent != smp.HeapBytes {
					t.Errorf("heatmap row %d extent %d != heap %d", i, row.Extent, smp.HeapBytes)
				}
			}
		})
	}
}

// TestHeapScanDoesNotPerturbSim proves the scanner is a pure observer: the
// SimResult and every pre-existing metric family are byte-identical whether
// or not the heap walk runs. Only lp_heap_* lines may differ.
func TestHeapScanDoesNotPerturbSim(t *testing.T) {
	cfg := DefaultConfig(0.01)
	a, err := cfg.Build(synth.ByName("cfrac"))
	if err != nil {
		t.Fatal(err)
	}

	run := func(scan bool) (SimResult, *obs.Snapshot) {
		col := obs.NewCollector(obs.Options{Label: "cfrac/firstfit", HeapScan: scan})
		res, err := RunSim(a.TestTrace, heapsim.NewFirstFit(), a.TrainPredictor, col)
		if err != nil {
			t.Fatal(err)
		}
		snap := res.Obs
		res.Obs = nil
		return res, snap
	}
	plainRes, plainSnap := run(false)
	scanRes, scanSnap := run(true)

	if plainRes != scanRes {
		t.Errorf("heap scan perturbed the SimResult:\noff %+v\non  %+v", plainRes, scanRes)
	}

	render := func(s *obs.Snapshot) string {
		var buf bytes.Buffer
		if err := expfmt.Write(&buf, s); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	stripHeap := func(text string) string {
		var keep []string
		for _, line := range strings.Split(text, "\n") {
			if strings.HasPrefix(line, "lp_heap_") ||
				strings.HasPrefix(line, "# HELP lp_heap_") ||
				strings.HasPrefix(line, "# TYPE lp_heap_") {
				continue
			}
			keep = append(keep, line)
		}
		return strings.Join(keep, "\n")
	}
	plainText := render(plainSnap)
	scanText := stripHeap(render(scanSnap))
	if plainText != scanText {
		t.Errorf("scanner changed a pre-existing family:\n--- scanner off ---\n%s\n--- scanner on, lp_heap_ stripped ---\n%s",
			plainText, scanText)
	}
	if !strings.Contains(render(scanSnap), "lp_heap_live_payload_bytes") {
		t.Error("scanner-on exposition lacks lp_heap_ families")
	}
}

// TestFragBenchWorkerSweep locks in the determinism the CI frag gate relies
// on: the heap.* bench file is byte-identical at any worker count.
func TestFragBenchWorkerSweep(t *testing.T) {
	jobs, err := ParseMatrix("gawk,cfrac/firstfit,arena/true")
	if err != nil {
		t.Fatal(err)
	}
	SortJobs(jobs)
	cfg := DefaultConfig(0.005)

	bench := func(workers int) string {
		runner := NewMatrixRunner(cfg)
		results := runner.RunAll(jobs, workers, func(j MatrixJob) *obs.Collector {
			return obs.NewCollector(obs.Options{Label: j.String(), HeapScan: true})
		})
		file := &BenchFile{Label: "sweep", Scale: 0.005, SeedBase: cfg.SeedBase}
		for _, res := range results {
			if res.Err != nil {
				t.Fatalf("job %s: %v", res.Job, res.Err)
			}
			file.Runs = append(file.Runs, NewBenchRun(res.Job, res.Res))
		}
		var buf bytes.Buffer
		if err := WriteBench(&buf, file); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}

	base := bench(1)
	if !strings.Contains(base, "heap.live_payload_bytes") {
		t.Fatal("bench file lacks heap.* families with HeapScan on")
	}
	for _, w := range []int{2, 4} {
		if got := bench(w); got != base {
			t.Errorf("bench file differs between -workers 1 and -workers %d", w)
		}
	}
}
