package core

// The paper's published values, used by cmd/lptables and the benchmarks to
// print paper-vs-measured comparisons. All tables are indexed by program
// name in the paper's order: cfrac, espresso, gawk, ghost, perl.

// ProgramOrder is the paper's program ordering.
var ProgramOrder = []string{"cfrac", "espresso", "gawk", "ghost", "perl"}

// PaperTable2 rows: source lines, instructions (M), calls (M), total bytes
// (M), total objects (M), max KB, max objects, heap refs %.
type PaperTable2Row struct {
	SourceLines   int
	InstructionsM float64
	CallsM        float64
	TotalBytesM   float64
	TotalObjectsM float64
	MaxKB         int64
	MaxObjects    int64
	HeapRefsPct   float64
}

// PaperTable2 is the paper's Table 2.
var PaperTable2 = map[string]PaperTable2Row{
	"cfrac":    {6000, 1490, 18.4, 65.0, 3.8, 83, 5236, 79},
	"espresso": {15500, 2419, 9.55, 105, 1.7, 254, 4387, 80},
	"gawk":     {8500, 2072, 28.7, 167, 4.3, 35, 1384, 47},
	"ghost":    {29500, 1035, 1.21, 89.7, 0.9, 2113, 26467, 69},
	"perl":     {34500, 894, 23.4, 33.5, 1.5, 62, 1826, 48},
}

// PaperTable3 holds the lifetime quartiles (bytes): 0, 25, 50, 75, 100%.
var PaperTable3 = map[string][5]float64{
	"cfrac":    {10, 32, 48, 849, 64994593},
	"espresso": {4, 196, 2379, 25530, 104881499},
	"gawk":     {2, 29, 257, 1192, 167322377},
	"ghost":    {16, 4330, 8052, 393531, 89669104},
	"perl":     {1, 64, 887, 1306, 33528692},
}

// PaperTable4Row mirrors the paper's Table 4.
type PaperTable4Row struct {
	TotalSites     int
	ActualShortPct float64
	SelfSitesUsed  int
	SelfPredPct    float64
	SelfErrorPct   float64
	TrueSitesUsed  int
	TruePredPct    float64
	TrueErrorPct   float64
}

// PaperTable4 is the paper's Table 4.
var PaperTable4 = map[string]PaperTable4Row{
	"cfrac":    {134, 100, 110, 79.0, 0.00, 77, 47.3, 3.65},
	"espresso": {2854, 91, 2291, 41.8, 0.00, 855, 18.1, 0.06},
	"gawk":     {171, 98, 93, 99.3, 0.00, 91, 99.3, 0.00},
	"ghost":    {634, 97, 256, 80.9, 0.00, 211, 71.8, 0.00},
	"perl":     {305, 99, 74, 91.4, 0.00, 29, 20.4, 1.11},
}

// PaperTable5Row mirrors the paper's Table 5 (size-only prediction).
type PaperTable5Row struct {
	ActualShortPct float64
	PredPct        float64
	SitesUsed      int
}

// PaperTable5 is the paper's Table 5.
var PaperTable5 = map[string]PaperTable5Row{
	"cfrac":    {100, 0, 5},
	"espresso": {91, 19, 177},
	"gawk":     {98, 5, 64},
	"ghost":    {97, 36, 106},
	"perl":     {99, 29, 26},
}

// PaperTable6Row holds predicted % and New Ref % for lengths 1..7 and the
// complete chain (index 7).
type PaperTable6Row struct {
	PredPct [8]float64
	NewRef  [8]float64
}

// PaperTable6 is the paper's Table 6.
var PaperTable6 = map[string]PaperTable6Row{
	"cfrac": {
		PredPct: [8]float64{48, 76, 82, 82, 82, 82, 82, 82},
		NewRef:  [8]float64{52, 66, 70, 70, 70, 70, 70, 70},
	},
	"espresso": {
		PredPct: [8]float64{41, 41, 41, 42, 42, 43, 44, 42},
		NewRef:  [8]float64{7, 7, 8, 8, 8, 9, 9, 8},
	},
	"gawk": {
		PredPct: [8]float64{72, 78, 99, 99, 99, 99, 99, 99},
		NewRef:  [8]float64{26, 29, 43, 43, 43, 43, 43, 43},
	},
	"ghost": {
		PredPct: [8]float64{40, 40, 47, 75, 80, 80, 81, 81},
		NewRef:  [8]float64{13, 13, 14, 31, 37, 37, 38, 38},
	},
	"perl": {
		PredPct: [8]float64{31, 63, 63, 91, 94, 94, 95, 92},
		NewRef:  [8]float64{23, 33, 33, 44, 45, 45, 45, 44},
	},
}

// PaperTable7Row mirrors the paper's Table 7 (true prediction).
type PaperTable7Row struct {
	TotalAllocsK  float64
	ArenaAllocPct float64
	ArenaBytePct  float64
	TotalKB       int64
}

// PaperTable7 is the paper's Table 7.
var PaperTable7 = map[string]PaperTable7Row{
	"cfrac":    {3809.2, 2.6, 1.8, 63472},
	"espresso": {1654.2, 19.1, 18.2, 102423},
	"gawk":     {4273.0, 98.2, 99.3, 163401},
	"ghost":    {924.1, 81.3, 37.7, 87567},
	"perl":     {1466.8, 18.0, 20.5, 32743},
}

// PaperTable8Row mirrors the paper's Table 8 (KB).
type PaperTable8Row struct {
	FirstFitKB   int64
	SelfArenaKB  int64
	SelfRatioPct float64
	TrueArenaKB  int64
	TrueRatioPct float64
}

// PaperTable8 is the paper's Table 8.
var PaperTable8 = map[string]PaperTable8Row{
	"cfrac":    {144, 208, 144.4, 208, 144.4},
	"espresso": {280, 344, 122.9, 344, 122.9},
	"gawk":     {56, 112, 200.0, 112, 200.0},
	"ghost":    {5584, 2896, 51.9, 4048, 72.5},
	"perl":     {80, 144, 180.0, 144, 180.0},
}

// PaperTable9Row mirrors the paper's Table 9 (instructions per operation).
type PaperTable9Row struct {
	BSDAlloc, BSDFree   float64
	FFAlloc, FFFree     float64
	Len4Alloc, Len4Free float64
	CCEAlloc, CCEFree   float64
}

// PaperTable9 is the paper's Table 9.
var PaperTable9 = map[string]PaperTable9Row{
	"cfrac":    {52, 17, 66, 64, 134, 62, 140, 62},
	"espresso": {55, 17, 65, 65, 76, 55, 84, 55},
	"gawk":     {54, 17, 56, 64, 29, 11, 29, 11},
	"ghost":    {61, 17, 165, 57, 58, 18, 142, 18},
	"perl":     {51, 17, 70, 65, 82, 55, 120, 55},
}
