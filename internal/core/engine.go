package core

import (
	"bytes"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/callchain"
	"repro/internal/obs"
	"repro/internal/synth"
	"repro/internal/table"
)

// Engine schedules the full paper reproduction (Tables 1-9 plus the
// locality extension and the ablation suite) as a DAG of cells: one
// Artifacts build per program fans out first, then every requested
// table/ablation cell of that program runs as soon as its build lands.
// Cells execute on a bounded worker pool, and the report is assembled in
// fixed table order afterwards, so the rendered output is byte-identical
// to a serial run at any worker count. cmd/lptables, the golden-file
// tests, and the root benchmarks all run through here.
//
// Artifacts are cached per model and pre-warmed (see warmArtifacts) so
// concurrent cells only ever perform read-only lookups on the shared
// callchain tables; an Engine is safe for concurrent use, and repeated
// Runs reuse the cache.
type Engine struct {
	cfg  Config
	mu   sync.Mutex
	arts map[string]*engineArt
}

type engineArt struct {
	once sync.Once
	art  *Artifacts
	err  error
}

// NewEngine returns an engine over one experiment configuration.
func NewEngine(cfg Config) *Engine {
	return &Engine{cfg: cfg, arts: make(map[string]*engineArt)}
}

// Config returns the engine's experiment configuration.
func (e *Engine) Config() Config { return e.cfg }

// modelByName resolves a model within the engine's configured set.
func (e *Engine) modelByName(name string) *synth.Model {
	for _, m := range e.cfg.Models {
		if m.Name == name {
			return m
		}
	}
	return nil
}

// Artifacts returns the cached, table-warmed artifacts for one model,
// building them on first use. The returned Artifacts are safe for
// concurrent read-side use by experiment cells.
func (e *Engine) Artifacts(name string) (*Artifacts, error) {
	m := e.modelByName(name)
	if m == nil {
		return nil, fmt.Errorf("core: unknown model %q (want %s)", name, strings.Join(e.programNames(), ", "))
	}
	e.mu.Lock()
	en, ok := e.arts[name]
	if !ok {
		en = &engineArt{}
		e.arts[name] = en
	}
	e.mu.Unlock()
	en.once.Do(func() {
		en.art, en.err = e.cfg.Build(m)
		if en.err == nil {
			warmArtifacts(en.art)
		}
	})
	return en.art, en.err
}

// warmArtifacts pre-interns every chain and function name an experiment
// cell can derive, while still single-threaded. callchain.Table is not
// goroutine-safe, and training, evaluation, and replay mappers all intern
// lazily (sub-chains, recursion-eliminated chains, cross-table name
// mappings); warming makes those interning calls map hits, so the cells
// that later run concurrently over the shared Artifacts only perform
// read-only lookups. This mirrors the MatrixRunner pre-warm, extended to
// cover every lptables cell:
//
//   - recursion-eliminated site chains in both tables (the default
//     predictor config, used by training, evaluation, and every replay
//     mapper);
//   - Table 6's length-1..7 sub-chains in the train table;
//   - the Test→Train cross-table name mapping (true-prediction mappers
//     intern the eliminated Test chain's names into the predictor's
//     table).
//
// The one remaining table mutation is call-chain-encryption id assignment
// (extension A5); exactly one cell per program touches those ids, and no
// other cell reads them, so it stays on the cell.
func warmArtifacts(a *Artifacts) {
	trainTb, testTb := a.TrainTrace.Table, a.TestTrace.Table
	nTrain := trainTb.NumChains()
	for id := 1; id < nTrain; id++ {
		trainTb.EliminateRecursion(callchain.ChainID(id))
		for l := 1; l <= 7; l++ {
			trainTb.SubChain(callchain.ChainID(id), l)
		}
	}
	nTest := testTb.NumChains()
	names := make([]string, 0, 16)
	for id := 1; id < nTest; id++ {
		t := testTb.EliminateRecursion(callchain.ChainID(id))
		fs := testTb.Funcs(t)
		names = names[:0]
		for _, f := range fs {
			names = append(names, testTb.FuncName(f))
		}
		trainTb.InternNames(names...)
	}
}

// programNames lists the configured model names in canonical order.
func (e *Engine) programNames() []string {
	out := make([]string, len(e.cfg.Models))
	for i, m := range e.cfg.Models {
		out[i] = m.Name
	}
	return out
}

// ParseTables parses a comma-separated -tables spec ("2,7,8") into the
// flag set Spec.Tables wants, rejecting unknown keys.
func ParseTables(spec string) (map[string]bool, error) {
	want := make(map[string]bool)
	for _, k := range strings.Split(spec, ",") {
		k = strings.TrimSpace(k)
		valid := false
		for _, f := range TableFlags {
			if k == f {
				valid = true
				break
			}
		}
		if !valid {
			return nil, fmt.Errorf("core: unknown table %q (want %s)", k, strings.Join(TableFlags, ","))
		}
		want[k] = true
	}
	return want, nil
}

// Spec selects the cells of one engine run.
type Spec struct {
	// Tables holds the enabled -tables keys ("1".."9", "L", "A");
	// nil or empty runs everything.
	Tables map[string]bool
	// Programs subsets the configured models by name; order does not
	// matter (output always follows the configuration's canonical
	// order). Nil or empty runs every model.
	Programs []string
	// Workers bounds how many cells run at once; values below 1 clamp
	// to GOMAXPROCS. The rendered output is identical at any value.
	Workers int
	// Collector, when non-nil, accrues the wall-clock timing families
	// ("engine_build", "engine_cell") as cells complete, so a live
	// scrape shows schedule progress. Timings are also always returned
	// in the RunResult.
	Collector *obs.Collector
	// Progress, when non-nil, receives one human-readable line per
	// scheduling milestone (build start/finish). Calls may come from
	// worker goroutines; the callback must be safe for concurrent use.
	Progress func(msg string)
}

// CellTiming records the wall-clock schedule of one cell: when it
// started relative to the run's start (after acquiring a worker slot)
// and how long it ran. Start offsets make cell overlap reconstructible —
// WriteChromeTrace renders them as a Perfetto-loadable trace.
type CellTiming struct {
	Program string
	Cell    string // "build", "1".."9", "L", "A1".."A8"
	Start   time.Duration
	Dur     time.Duration
}

// RunResult is one engine run's deterministic output plus its schedule
// telemetry.
type RunResult struct {
	// Output is the rendered report — byte-identical for a given
	// (Config, Tables, Programs) at any worker count.
	Output []byte
	// Timings lists per-cell wall-clock durations in deterministic cell
	// order (program-major, build first). Durations are machine- and
	// schedule-dependent; everything else is not.
	Timings []CellTiming
	// Wall is the end-to-end run duration.
	Wall time.Duration
}

// CPUTime sums the per-cell durations — the serial-equivalent work the
// run performed. Comparing it against Wall shows the achieved overlap.
func (r *RunResult) CPUTime() time.Duration {
	var sum time.Duration
	for _, t := range r.Timings {
		sum += t.Dur
	}
	return sum
}

// selectModels resolves and canonically orders the requested programs.
func (e *Engine) selectModels(programs []string) ([]*synth.Model, error) {
	if len(programs) == 0 {
		return e.cfg.Models, nil
	}
	want := make(map[string]bool, len(programs))
	for _, p := range programs {
		p = strings.TrimSpace(p)
		if e.modelByName(p) == nil {
			return nil, fmt.Errorf("core: unknown program %q (want %s)", p, strings.Join(e.programNames(), ", "))
		}
		want[p] = true
	}
	out := make([]*synth.Model, 0, len(want))
	for _, m := range e.cfg.Models {
		if want[m.Name] {
			out = append(out, m)
		}
	}
	return out, nil
}

// Run executes the spec's cells on the worker pool and renders the
// report. Any build or cell error aborts the run; the first error in
// deterministic cell order is returned (the same error a serial run
// would hit first).
func (e *Engine) Run(spec Spec) (*RunResult, error) {
	start := time.Now()
	models, err := e.selectModels(spec.Programs)
	if err != nil {
		return nil, err
	}
	want := spec.Tables
	if len(want) == 0 {
		want = make(map[string]bool, len(TableFlags))
		for _, f := range TableFlags {
			want[f] = true
		}
	}
	for k := range want {
		if _, perr := ParseTables(k); perr != nil {
			return nil, perr
		}
	}

	cells := make([]cellDef, 0, len(cellDefs))
	for _, cd := range cellDefs {
		if want[cd.flag] {
			cells = append(cells, cd)
		}
	}

	workers := spec.Workers
	if workers < 1 {
		workers = runtime.GOMAXPROCS(0)
	}

	nCell := len(cells)
	type slot struct {
		rows  map[string][]string
		err   error
		begin time.Duration
		dur   time.Duration
	}
	slots := make([]slot, len(models)*nCell)
	buildBegin := make([]time.Duration, len(models))
	buildDur := make([]time.Duration, len(models))
	buildErr := make([]error, len(models))

	progress := spec.Progress
	if progress == nil {
		progress = func(string) {}
	}

	// The semaphore bounds how many cells hold a worker slot at once;
	// goroutine fan-out is cheap and the DAG edges are expressed by the
	// build goroutine launching its program's cells only after the build
	// lands.
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	for pi, m := range models {
		pi, m := pi, m
		wg.Add(1)
		go func() {
			defer wg.Done()
			sem <- struct{}{}
			progress(fmt.Sprintf("building %s...", m.Name))
			t0 := time.Now()
			buildBegin[pi] = t0.Sub(start)
			a, err := e.Artifacts(m.Name)
			buildDur[pi] = time.Since(t0)
			<-sem
			spec.Collector.ObserveTiming("engine_build", buildDur[pi])
			if err != nil {
				buildErr[pi] = err
				return
			}
			for ci := range cells {
				ci := ci
				wg.Add(1)
				go func() {
					defer wg.Done()
					sem <- struct{}{}
					defer func() { <-sem }()
					s := &slots[pi*nCell+ci]
					s.rows = make(map[string][]string, 2)
					add := func(tableID string, rowCells ...string) {
						s.rows[tableID] = rowCells
					}
					t0 := time.Now()
					s.begin = t0.Sub(start)
					s.err = cells[ci].run(e.cfg, a, add)
					s.dur = time.Since(t0)
					spec.Collector.ObserveTiming("engine_cell", s.dur)
				}()
			}
		}()
	}
	wg.Wait()

	for pi, m := range models {
		if buildErr[pi] != nil {
			return nil, fmt.Errorf("core: building %s: %w", m.Name, buildErr[pi])
		}
	}
	for pi, m := range models {
		for ci := range cells {
			if err := slots[pi*nCell+ci].err; err != nil {
				return nil, fmt.Errorf("core: %s cell %s: %w", m.Name, cells[ci].name, err)
			}
		}
	}

	// Assemble: tables in render order, rows in program order — the
	// exact bytes of a serial run regardless of completion order above.
	producer := make(map[string]int, len(tableDefs))
	for ci, cd := range cells {
		for _, td := range tableDefs {
			if td.cell == cd.name {
				producer[td.id] = ci
			}
		}
	}
	var buf bytes.Buffer
	for _, td := range tableDefs {
		if !want[td.flag] {
			continue
		}
		tb := table.New(td.title, td.headers...)
		ci := producer[td.id]
		for pi := range models {
			if row, ok := slots[pi*nCell+ci].rows[td.id]; ok {
				tb.RowStrings(row...)
			}
		}
		if _, err := tb.WriteTo(&buf); err != nil {
			return nil, fmt.Errorf("core: rendering %s: %w", td.id, err)
		}
	}

	timings := make([]CellTiming, 0, len(models)*(1+nCell))
	for pi, m := range models {
		timings = append(timings, CellTiming{Program: m.Name, Cell: "build", Start: buildBegin[pi], Dur: buildDur[pi]})
		for ci, cd := range cells {
			s := &slots[pi*nCell+ci]
			timings = append(timings, CellTiming{Program: m.Name, Cell: cd.name, Start: s.begin, Dur: s.dur})
		}
	}
	return &RunResult{Output: buf.Bytes(), Timings: timings, Wall: time.Since(start)}, nil
}

// WriteTimings renders a run's per-cell wall-clock summary, slowest cell
// first (ties broken by schedule order), followed by the work/wall
// overlap line. Wall-clock figures are machine-dependent; this is
// operational telemetry, never part of the pinned report.
func (r *RunResult) WriteTimings(w *bytes.Buffer) {
	idx := make([]int, len(r.Timings))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return r.Timings[idx[a]].Dur > r.Timings[idx[b]].Dur
	})
	fmt.Fprintf(w, "per-cell wall clock (slowest first):\n")
	for _, i := range idx {
		t := r.Timings[i]
		fmt.Fprintf(w, "  %-10s %-6s %10.3fs\n", t.Program, t.Cell, t.Dur.Seconds())
	}
	cpu := r.CPUTime()
	speedup := 1.0
	if r.Wall > 0 {
		speedup = cpu.Seconds() / r.Wall.Seconds()
	}
	fmt.Fprintf(w, "total cell time %.3fs over %.3fs wall (%.2fx overlap)\n",
		cpu.Seconds(), r.Wall.Seconds(), speedup)
}
