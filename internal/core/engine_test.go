package core

import (
	"bytes"
	"strings"
	"sync"
	"testing"

	"repro/internal/obs"
)

// engineScale keeps the scheduler tests fast enough for the -race tier
// while still exercising every cell of every program.
const engineScale = 0.005

func newTestEngine() *Engine {
	return NewEngine(DefaultConfig(engineScale))
}

func TestParseTables(t *testing.T) {
	want, err := ParseTables("2, 7,A")
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []string{"2", "7", "A"} {
		if !want[k] {
			t.Errorf("missing key %s", k)
		}
	}
	if len(want) != 3 {
		t.Fatalf("want 3 keys, got %v", want)
	}
	if _, err := ParseTables("2,Q"); err == nil || !strings.Contains(err.Error(), `unknown table "Q"`) {
		t.Fatalf("bad spec error = %v", err)
	}
	if _, err := ParseTables(""); err == nil {
		t.Fatal("empty spec should be rejected (empty table key)")
	}
}

func TestEngineRejectsUnknownProgram(t *testing.T) {
	eng := newTestEngine()
	if _, err := eng.Run(Spec{Programs: []string{"doom"}}); err == nil ||
		!strings.Contains(err.Error(), `unknown program "doom"`) {
		t.Fatalf("err = %v", err)
	}
	if _, err := eng.Artifacts("doom"); err == nil {
		t.Fatal("Artifacts should reject unknown model")
	}
}

func TestEngineRejectsUnknownTableKey(t *testing.T) {
	eng := newTestEngine()
	if _, err := eng.Run(Spec{Tables: map[string]bool{"Q": true}}); err == nil ||
		!strings.Contains(err.Error(), `unknown table "Q"`) {
		t.Fatalf("err = %v", err)
	}
}

// TestEngineDeterministicAcrossWorkerCounts is the core acceptance
// property: the rendered report is byte-identical at any worker count.
// The engine is shared, so the later runs also exercise cached-artifact
// scheduling (all cells racing for the semaphore immediately) under
// -race.
func TestEngineDeterministicAcrossWorkerCounts(t *testing.T) {
	eng := newTestEngine()
	nCells := len(cellDefs)
	counts := []int{1, 4, nCells}
	var ref []byte
	for _, w := range counts {
		res, err := eng.Run(Spec{Workers: w})
		if err != nil {
			t.Fatalf("workers=%d: %v", w, err)
		}
		if len(res.Output) == 0 {
			t.Fatalf("workers=%d: empty output", w)
		}
		if ref == nil {
			ref = res.Output
			continue
		}
		if !bytes.Equal(ref, res.Output) {
			t.Fatalf("workers=%d output differs from workers=%d (%d vs %d bytes)",
				w, counts[0], len(res.Output), len(ref))
		}
	}
}

// TestEngineFreshBuildDeterminism compares two independent engines — one
// serial, one maximally parallel — so the artifact build path itself
// (not just cached cells) is covered by the byte-identity guarantee.
func TestEngineFreshBuildDeterminism(t *testing.T) {
	progs := []string{"cfrac", "gawk"}
	a, err := NewEngine(DefaultConfig(engineScale)).Run(Spec{Programs: progs, Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewEngine(DefaultConfig(engineScale)).Run(Spec{Programs: progs, Workers: 16})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Output, b.Output) {
		t.Fatalf("fresh engines disagree: %d vs %d bytes", len(a.Output), len(b.Output))
	}
}

// TestEngineProgramSubsetOrder checks -programs is order-insensitive:
// rows always render in the configuration's canonical program order.
func TestEngineProgramSubsetOrder(t *testing.T) {
	eng := newTestEngine()
	spec := Spec{Tables: map[string]bool{"1": true}, Workers: 4}
	spec.Programs = []string{"gawk", "cfrac"}
	a, err := eng.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	spec.Programs = []string{"cfrac", "gawk"}
	b, err := eng.Run(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Output, b.Output) {
		t.Fatal("program order in -programs changed the output")
	}
	out := string(a.Output)
	ci, gi := strings.Index(out, "cfrac"), strings.Index(out, "gawk")
	if ci < 0 || gi < 0 || ci > gi {
		t.Fatalf("canonical order violated: cfrac@%d gawk@%d", ci, gi)
	}
	if strings.Contains(out, "perl") {
		t.Fatal("unselected program leaked into output")
	}
}

// TestEngineTableSubset checks only requested tables render, and that a
// subset run's bytes match the corresponding slice of a full run.
func TestEngineTableSubset(t *testing.T) {
	eng := newTestEngine()
	full, err := eng.Run(Spec{Programs: []string{"cfrac"}, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	sub, err := eng.Run(Spec{
		Programs: []string{"cfrac"},
		Tables:   map[string]bool{"3": true},
		Workers:  2,
	})
	if err != nil {
		t.Fatal(err)
	}
	out := string(sub.Output)
	if !strings.Contains(out, "Table 3:") {
		t.Fatal("requested table missing")
	}
	if strings.Contains(out, "Table 4:") || strings.Contains(out, "Ablation") {
		t.Fatal("unrequested table rendered")
	}
	if !bytes.Contains(full.Output, sub.Output) {
		t.Fatal("subset table bytes differ from the full run's rendering")
	}
}

func TestEngineTimingsAndCollector(t *testing.T) {
	eng := newTestEngine()
	col := obs.NewCollector(obs.Options{Label: "lptables/engine"})
	var mu sync.Mutex
	var msgs []string
	res, err := eng.Run(Spec{
		Programs:  []string{"espresso"},
		Tables:    map[string]bool{"2": true, "5": true},
		Workers:   2,
		Collector: col,
		Progress: func(m string) {
			mu.Lock()
			msgs = append(msgs, m)
			mu.Unlock()
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	// One build plus one timing per selected cell, in deterministic
	// program-major order with the build first.
	if len(res.Timings) != 3 {
		t.Fatalf("timings = %+v", res.Timings)
	}
	if res.Timings[0].Cell != "build" || res.Timings[0].Program != "espresso" {
		t.Fatalf("first timing should be the build: %+v", res.Timings[0])
	}
	if res.Timings[1].Cell != "2" || res.Timings[2].Cell != "5" {
		t.Fatalf("cell timing order: %+v", res.Timings)
	}
	if res.CPUTime() <= 0 || res.Wall <= 0 {
		t.Fatalf("non-positive durations: cpu=%v wall=%v", res.CPUTime(), res.Wall)
	}
	snap := col.Snapshot()
	if snap.Timings["engine_build"].Count != 1 {
		t.Fatalf("engine_build timing = %+v", snap.Timings["engine_build"])
	}
	if snap.Timings["engine_cell"].Count != 2 {
		t.Fatalf("engine_cell timing = %+v", snap.Timings["engine_cell"])
	}
	found := false
	mu.Lock()
	for _, m := range msgs {
		if strings.Contains(m, "building espresso") {
			found = true
		}
	}
	mu.Unlock()
	if !found {
		t.Fatalf("no build progress message in %v", msgs)
	}

	var b bytes.Buffer
	res.WriteTimings(&b)
	s := b.String()
	if !strings.Contains(s, "per-cell wall clock") || !strings.Contains(s, "espresso") ||
		!strings.Contains(s, "overlap") {
		t.Fatalf("timing summary:\n%s", s)
	}
}

func TestEngineBuildErrorIsDeterministic(t *testing.T) {
	cfg := DefaultConfig(engineScale)
	cfg.Scale = -1 // forces every build to fail
	eng := NewEngine(cfg)
	_, err := eng.Run(Spec{Workers: 8})
	if err == nil {
		t.Fatal("expected build failure")
	}
	// The first error in canonical program order wins, regardless of
	// which build failed first on the clock.
	if !strings.Contains(err.Error(), "building cfrac") {
		t.Fatalf("err = %v", err)
	}
	var errAgain error
	if _, errAgain = eng.Run(Spec{Workers: 1}); errAgain == nil {
		t.Fatal("cached build error lost")
	}
	if err.Error() != errAgain.Error() {
		t.Fatalf("error not stable across runs: %v vs %v", err, errAgain)
	}
}

func TestEngineWorkersClampAndZeroValueSpec(t *testing.T) {
	eng := newTestEngine()
	res, err := eng.Run(Spec{
		Programs: []string{"ghost"},
		Tables:   map[string]bool{"1": true},
		Workers:  -3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(res.Output), "ghost") {
		t.Fatal("missing row")
	}
}

func TestEngineArtifactsCachedAndWarmed(t *testing.T) {
	eng := newTestEngine()
	a1, err := eng.Artifacts("cfrac")
	if err != nil {
		t.Fatal(err)
	}
	a2, err := eng.Artifacts("cfrac")
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 {
		t.Fatal("Artifacts not cached")
	}
	// Warming must cover the mapper paths cells use concurrently: after
	// it, deriving eliminated/sub-chains and cross-mapping test names
	// is a pure map hit (chain counts stay put).
	trainTb, testTb := a1.TrainTrace.Table, a1.TestTrace.Table
	nTrain, nTest := trainTb.NumChains(), testTb.NumChains()
	warmArtifacts(a1)
	if trainTb.NumChains() != nTrain || testTb.NumChains() != nTest {
		t.Fatalf("second warm interned new chains: train %d->%d test %d->%d",
			nTrain, trainTb.NumChains(), nTest, testTb.NumChains())
	}
}
